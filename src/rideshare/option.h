// Rider-facing ridesharing options and the dominance relation
// (paper Definition 4).

#ifndef PTAR_RIDESHARE_OPTION_H_
#define PTAR_RIDESHARE_OPTION_H_

#include "graph/types.h"
#include "grid/vehicle_registry.h"

namespace ptar {

/// One result r = <c, dist_pt, price>: vehicle, trip distance from the
/// vehicle's current location to the request's start (the constant-speed
/// proxy for the earliest pick-up time), and the price.
struct Option {
  VehicleId vehicle = kInvalidVehicle;
  Distance pickup_dist = 0.0;
  double price = 0.0;

  friend bool operator==(const Option& a, const Option& b) {
    return a.vehicle == b.vehicle && a.pickup_dist == b.pickup_dist &&
           a.price == b.price;
  }
};

/// r_i dominates r_j iff it is no worse in both dimensions and strictly
/// better in at least one.
inline bool Dominates(const Option& ri, const Option& rj) {
  return (ri.pickup_dist <= rj.pickup_dist && ri.price < rj.price) ||
         (ri.pickup_dist < rj.pickup_dist && ri.price <= rj.price);
}

}  // namespace ptar

#endif  // PTAR_RIDESHARE_OPTION_H_
