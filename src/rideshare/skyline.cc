#include "rideshare/skyline.h"

#include <algorithm>

namespace ptar {

std::vector<Option> SkylineSet::Sorted() const {
  std::vector<Option> out = options_;
  std::sort(out.begin(), out.end(), [](const Option& a, const Option& b) {
    if (a.pickup_dist != b.pickup_dist) return a.pickup_dist < b.pickup_dist;
    if (a.price != b.price) return a.price < b.price;
    return a.vehicle < b.vehicle;
  });
  return out;
}

}  // namespace ptar
