#include "rideshare/matcher_internal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/trace.h"
#include "prune/ellipse_prefilter.h"
#include "rideshare/lemmas.h"

namespace ptar::internal {

namespace {

/// Charges the context's budget, on scope exit, `base_units` plus every
/// compdist the oracle performed inside the scope. Work is charged after it
/// completes, so an exhausted budget never truncates an option mid-flight —
/// the matcher observes exhaustion at its next safe-point check.
class BudgetScope {
 public:
  BudgetScope(MatchContext& ctx, std::uint64_t base_units)
      : ctx_(ctx), base_(base_units), before_(ctx.oracle->compdists()) {}
  ~BudgetScope() {
    if (ctx_.budget != nullptr) {
      ctx_.budget->Charge(base_ + (ctx_.oracle->compdists() - before_));
    }
  }
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  MatchContext& ctx_;
  std::uint64_t base_;
  std::uint64_t before_;
};

/// Oracle faults surface as infinite distances; an option priced off one
/// would be *wrong*, not merely incomplete, so it must never enter the
/// skyline (the fault still flips the result to complete == false).
bool FiniteOption(const Option& option) {
  return std::isfinite(option.pickup_dist) && std::isfinite(option.price);
}

}  // namespace

KineticTree::DistFn OracleDistFn(MatchContext& ctx) {
  DistanceOracle* oracle = ctx.oracle;
  return [oracle](VertexId a, VertexId b) { return oracle->Dist(a, b); };
}

InsertionHooks MakeLemmaHooks(const RequestEnv& env, const GridIndex& grid,
                              const SkylineSet& skyline,
                              LemmaCounters* counters) {
  InsertionHooks hooks;
  if (!env.pruning.insertion_hooks) return hooks;
  const Request* request = env.request;
  const Distance direct = env.direct;
  const double fn = env.fn;

  hooks.prune_s = [request, direct, fn, &grid, &skyline,
                   counters](const SPositionContext& c) {
    const VertexId s = request->start;
    const Distance l_ox = grid.LowerBound(s, c.ox);
    const Distance l_oy = c.tail ? 0.0 : grid.LowerBound(s, c.oy);
    if (lemmas::StartEdgeInfeasible(c.free_seats, request->riders,
                                    c.detour_slack, l_ox, l_oy, c.leg_dist,
                                    c.tail)) {
      ++(*counters)[5];
      return true;  // Lemma 5
    }
    if (!skyline.empty() &&
        lemmas::StartEdgePruned(l_ox, l_oy, c.leg_dist, c.tail, c.dist_tr_ox,
                                skyline.options(), fn, direct)) {
      ++(*counters)[3];
      return true;  // Lemma 3
    }
    return false;
  };

  hooks.prune_d = [request, direct, fn, &grid, &skyline,
                   counters](const DPositionContext& c) {
    const VertexId d = request->destination;
    const Distance l_ox = grid.LowerBound(d, c.ox);
    const Distance l_oy = c.tail ? 0.0 : grid.LowerBound(d, c.oy);
    // Lemma 7 (capacity is enforced exactly by the enumerator, so only the
    // detour clause applies here).
    if (lemmas::DestEdgeInfeasible(std::numeric_limits<int>::max(),
                                   request->riders, c.detour_slack, l_ox,
                                   l_oy, c.leg_dist, c.tail)) {
      ++(*counters)[7];
      return true;
    }
    if (!skyline.empty()) {
      // Lemma 9 models d's predecessor as o_x, which only holds when d
      // targets a later gap than s (Definition 7 case 1). In the same gap
      // d follows s directly, so dist_tr_ox + ldist(o_x, d) is NOT a lower
      // bound on dist_tr'(c.l, d) — it overshoots by up to dist(o_x, s) —
      // and the Definition 7 bound below covers the case instead.
      if (!c.same_gap &&
          lemmas::DestEdgePruned(c.dist_tr_ox, l_ox, l_oy, c.leg_dist,
                                 c.tail, request->epsilon, direct,
                                 skyline.options(), fn)) {
        ++(*counters)[9];
        return true;
      }
      // Lemma 11 with the Definition 7 detour lower bound.
      const Distance detour_lb = lemmas::DetourLowerBound(
          c.same_gap, c.tail, c.dist_ox_s, c.delta_s, l_ox, l_oy, c.leg_dist,
          direct);
      if (lemmas::AfterStartPruned(c.pickup_dist, detour_lb,
                                   skyline.options(), fn, direct)) {
        ++(*counters)[11];
        return true;
      }
    }
    return false;
  };

  return hooks;
}

InsertionHooks MakeEllipseHooks(const RequestEnv& env,
                                const prune::EllipsePrefilter& prefilter,
                                const SkylineSet& skyline, MatchStats* stats) {
  InsertionHooks hooks;
  if (!env.pruning.insertion_hooks) return hooks;
  const Request* request = env.request;
  const Distance direct = env.direct;
  const double fn = env.fn;
  const prune::EllipsePrefilter* filter = &prefilter;

  hooks.prune_s = [request, direct, fn, filter, &skyline,
                   stats](const SPositionContext& c) {
    const VertexId s = request->start;
    ++stats->ellipse_checked;
    const Distance l_ox = filter->LowerBound(s, c.ox);
    const Distance l_oy = c.tail ? 0.0 : filter->LowerBound(s, c.oy);
    // Lemma 5 analog: s outside the feasibility ellipse with foci o_x, o_y
    // and focal-sum bound leg_dist + detour_slack.
    if (lemmas::StartEdgeInfeasible(c.free_seats, request->riders,
                                    c.detour_slack, l_ox, l_oy, c.leg_dist,
                                    c.tail)) {
      ++stats->ellipse_pruned;
      return true;
    }
    if (!skyline.empty() &&
        lemmas::StartEdgePruned(l_ox, l_oy, c.leg_dist, c.tail, c.dist_tr_ox,
                                skyline.options(), fn, direct)) {
      ++stats->ellipse_pruned;
      return true;  // Lemma 3 analog
    }
    return false;
  };

  hooks.prune_d = [request, direct, fn, filter, &skyline,
                   stats](const DPositionContext& c) {
    const VertexId d = request->destination;
    ++stats->ellipse_checked;
    const Distance l_ox = filter->LowerBound(d, c.ox);
    const Distance l_oy = c.tail ? 0.0 : filter->LowerBound(d, c.oy);
    // Lemma 7 analog (capacity is enforced exactly by the enumerator).
    if (lemmas::DestEdgeInfeasible(std::numeric_limits<int>::max(),
                                   request->riders, c.detour_slack, l_ox,
                                   l_oy, c.leg_dist, c.tail)) {
      ++stats->ellipse_pruned;
      return true;
    }
    if (!skyline.empty()) {
      // Same-gap guard as in MakeLemmaHooks: the Lemma 9 model of d's
      // predecessor as o_x only holds when d targets a later gap than s.
      if (!c.same_gap &&
          lemmas::DestEdgePruned(c.dist_tr_ox, l_ox, l_oy, c.leg_dist,
                                 c.tail, request->epsilon, direct,
                                 skyline.options(), fn)) {
        ++stats->ellipse_pruned;
        return true;
      }
      const Distance detour_lb = lemmas::DetourLowerBound(
          c.same_gap, c.tail, c.dist_ox_s, c.delta_s, l_ox, l_oy, c.leg_dist,
          direct);
      if (lemmas::AfterStartPruned(c.pickup_dist, detour_lb,
                                   skyline.options(), fn, direct)) {
        ++stats->ellipse_pruned;
        return true;  // Lemma 11 analog
      }
    }
    return false;
  };

  return hooks;
}

InsertionHooks CombineHooks(InsertionHooks first, InsertionHooks second) {
  InsertionHooks out;
  if (!first.prune_s) {
    out.prune_s = std::move(second.prune_s);
  } else if (!second.prune_s) {
    out.prune_s = std::move(first.prune_s);
  } else {
    out.prune_s = [a = std::move(first.prune_s), b = std::move(second.prune_s)](
                      const SPositionContext& c) { return a(c) || b(c); };
  }
  if (!first.prune_d) {
    out.prune_d = std::move(second.prune_d);
  } else if (!second.prune_d) {
    out.prune_d = std::move(first.prune_d);
  } else {
    out.prune_d = [a = std::move(first.prune_d), b = std::move(second.prune_d)](
                      const DPositionContext& c) { return a(c) || b(c); };
  }
  return out;
}

InsertionHooks MakeContextHooks(const RequestEnv& env, MatchContext& ctx,
                                const SkylineSet& skyline, MatchStats* stats) {
  InsertionHooks hooks =
      MakeLemmaHooks(env, *ctx.grid, skyline, &stats->lemma_hits);
  if (ctx.prune != nullptr) {
    hooks = CombineHooks(std::move(hooks),
                         MakeEllipseHooks(env, *ctx.prune, skyline, stats));
  }
  return hooks;
}

void VerifyEmptyVehicle(KineticTree& tree, const RequestEnv& env,
                        MatchContext& ctx, SkylineSet& skyline,
                        MatchStats& stats) {
  BudgetScope budget(ctx, /*base_units=*/1);
  // GeoPrune: the Lemma 1 dominance bound on the calibrated-Euclidean
  // distance, evaluated at verification time when the skyline is already
  // populated (collection-time checks see an empty skyline for the cells
  // scanned first, which hold exactly the near vehicles worth pruning).
  // Skipping the exact pickup distance is safe because the bound never
  // exceeds it (DESIGN.md §13).
  if (ctx.prune != nullptr && env.pruning.edge_level && !skyline.empty()) {
    ++stats.ellipse_checked;
    if (lemmas::EmptyVehiclePruned(
            ctx.prune->LowerBound(tree.location(), env.request->start),
            skyline.options(), env.fn, env.direct)) {
      ++stats.ellipse_pruned;
      ++stats.pruned_vehicles;
      return;
    }
  }
  ++stats.verified_vehicles;
  if (tree.capacity() < env.request->riders) return;  // group cannot board
  const Distance pickup = ctx.oracle->Dist(tree.location(),
                                           env.request->start);
  if (pickup == kInfDistance) return;  // unreachable vehicle
  Option option;
  option.vehicle = tree.vehicle();
  option.pickup_dist = pickup;
  option.price = ctx.price_model.EmptyVehiclePrice(env.request->riders,
                                                   pickup, env.direct);
  if (FiniteOption(option)) skyline.Insert(option);
}

void VerifyNonEmptyVehicle(KineticTree& tree, const RequestEnv& env,
                           MatchContext& ctx, const InsertionHooks& hooks,
                           SkylineSet& skyline, MatchStats& stats) {
  BudgetScope budget(ctx, /*base_units=*/1);
  ++stats.verified_vehicles;
  obs::TraceSpan span("verify_insertion");
  span.AddArg("vehicle", tree.vehicle());
  const KineticTree::DistFn dist = OracleDistFn(ctx);
  tree.Refresh(dist);
  const Distance base_total = tree.CurrentTotal();
  const std::vector<InsertionCandidate> candidates =
      tree.EnumerateInsertions(*env.request, env.direct, dist, hooks);
  span.AddArg("candidates", static_cast<std::int64_t>(candidates.size()));
  for (const InsertionCandidate& cand : candidates) {
    Option option;
    option.vehicle = tree.vehicle();
    option.pickup_dist = cand.pickup_dist;
    option.price = ctx.price_model.Price(
        env.request->riders, cand.total_dist - base_total, env.direct);
    if (FiniteOption(option)) skyline.Insert(option);
  }
}

std::size_t AppendBoardableEmpties(CellId cell, const RequestEnv& env,
                                   const MatchContext& ctx,
                                   std::span<const char> emitted,
                                   std::vector<VehicleId>* out) {
  std::size_t capacity_skipped = 0;
  for (const VehicleId v : CtxEmptyVehicles(ctx, cell)) {
    if (!emitted.empty() && emitted[v]) continue;
    // Capacity constraint (Definition 2): skip vehicles the group cannot
    // board at all.
    if ((*ctx.fleet)[v].capacity() < env.request->riders) {
      ++capacity_skipped;
      continue;
    }
    out->push_back(v);
  }
  return capacity_skipped;
}

void OrderEmptiesForVerification(const RequestEnv& env,
                                 const MatchContext& ctx,
                                 std::vector<VehicleId>* candidates) {
  if (ctx.prune == nullptr || candidates->size() < 2) return;
  const VertexId s = env.request->start;
  // Key once per candidate (hypot is not free at 10k vehicles), then a
  // stable sort so equal bounds keep their enumeration order — ordering
  // stays deterministic across platforms.
  thread_local std::vector<std::pair<double, VehicleId>> keyed;
  keyed.clear();
  keyed.reserve(candidates->size());
  for (const VehicleId v : *candidates) {
    keyed.emplace_back(ctx.prune->LowerBound((*ctx.fleet)[v].location(), s),
                       v);
  }
  std::stable_sort(
      keyed.begin(), keyed.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  candidates->clear();
  for (const auto& [bound, v] : keyed) candidates->push_back(v);
}

void CollectEmptyCandidates(CellId cell, const RequestEnv& env,
                            MatchContext& ctx, const SkylineSet& skyline,
                            std::vector<char>& emitted, MatchStats& stats,
                            std::vector<VehicleId>* out) {
  const std::span<const VehicleId> list = CtxEmptyVehicles(ctx, cell);
  if (list.empty()) return;
  const VertexId s = env.request->start;
  // Lemma 2: prune the whole empty-vehicle list of the cell.
  if (env.pruning.cell_level && !skyline.empty() &&
      lemmas::EmptyCellPruned(ctx.grid->LowerBoundToCell(s, cell),
                              skyline.options(), env.fn, env.direct)) {
    ++stats.pruned_cells;
    ++stats.lemma_hits[2];
    return;
  }
  thread_local std::vector<VehicleId> boardable;
  boardable.clear();
  stats.pruned_vehicles +=
      AppendBoardableEmpties(cell, env, ctx, emitted, &boardable);
  for (const VehicleId v : boardable) {
    const KineticTree& tree = (*ctx.fleet)[v];
    // Lemma 1, per vehicle.
    if (env.pruning.edge_level && !skyline.empty() &&
        lemmas::EmptyVehiclePruned(ctx.grid->LowerBound(tree.location(), s),
                                   skyline.options(), env.fn, env.direct)) {
      ++stats.pruned_vehicles;
      ++stats.lemma_hits[1];
      continue;
    }
    // GeoPrune: Lemma 1 again on the calibrated-Euclidean bound, which is
    // per-pair tight where the grid bound collapses to zero (same cell).
    if (ctx.prune != nullptr && env.pruning.edge_level && !skyline.empty()) {
      ++stats.ellipse_checked;
      if (lemmas::EmptyVehiclePruned(
              ctx.prune->LowerBound(tree.location(), s), skyline.options(),
              env.fn, env.direct)) {
        ++stats.ellipse_pruned;
        ++stats.pruned_vehicles;
        continue;
      }
    }
    emitted[v] = 1;
    out->push_back(v);
  }
}

void CollectStartCandidates(CellId cell, const RequestEnv& env,
                            MatchContext& ctx, const SkylineSet& skyline,
                            std::vector<char>& emitted, MatchStats& stats,
                            std::vector<VehicleId>* out) {
  const CellAggregates& agg = CtxAggregates(ctx, cell);
  if (!agg.any) return;
  const VertexId s = env.request->start;
  const int riders = env.request->riders;
  const Distance ldist_s_g = ctx.grid->LowerBoundToCell(s, cell);
  // Lemma 6: capacity / detour over the whole cell.
  if (env.pruning.cell_level &&
      lemmas::StartCellInfeasible(agg.max_capacity, riders, agg.max_detour,
                                  ldist_s_g, agg.max_leg_dist)) {
    ++stats.pruned_cells;
    ++stats.lemma_hits[6];
    return;
  }
  // Lemma 4: dominance over the whole cell.
  if (env.pruning.cell_level && !skyline.empty() &&
      lemmas::StartCellPruned(ldist_s_g, agg.min_dist_tr, agg.max_leg_dist,
                              agg.has_tail, skyline.options(), env.fn,
                              env.direct)) {
    ++stats.pruned_cells;
    ++stats.lemma_hits[4];
    return;
  }
  for (const KineticEdgeEntry& entry : CtxNonEmptyEntries(ctx, cell)) {
    if (emitted[entry.vehicle]) continue;
    const Distance l_ox = ctx.grid->LowerBound(s, entry.ox);
    const Distance l_oy =
        entry.tail ? 0.0 : ctx.grid->LowerBound(s, entry.oy);
    // Lemma 5.
    if (env.pruning.edge_level &&
        lemmas::StartEdgeInfeasible(entry.capacity, riders, entry.detour,
                                    l_ox, l_oy, entry.leg_dist, entry.tail)) {
      ++stats.pruned_vehicles;
      ++stats.lemma_hits[5];
      continue;
    }
    // Lemma 3.
    if (env.pruning.edge_level && !skyline.empty() &&
        lemmas::StartEdgePruned(l_ox, l_oy, entry.leg_dist, entry.tail,
                                entry.dist_tr, skyline.options(), env.fn,
                                env.direct)) {
      ++stats.pruned_vehicles;
      ++stats.lemma_hits[3];
      continue;
    }
    // GeoPrune: Lemmas 5 and 3 on the calibrated-Euclidean bounds — the
    // feasibility clause is containment of s in the detour ellipse with
    // foci o_x, o_y.
    if (ctx.prune != nullptr && env.pruning.edge_level) {
      ++stats.ellipse_checked;
      const Distance e_ox = ctx.prune->LowerBound(s, entry.ox);
      const Distance e_oy =
          entry.tail ? 0.0 : ctx.prune->LowerBound(s, entry.oy);
      if (lemmas::StartEdgeInfeasible(entry.capacity, riders, entry.detour,
                                      e_ox, e_oy, entry.leg_dist,
                                      entry.tail)) {
        ++stats.ellipse_pruned;
        ++stats.pruned_vehicles;
        continue;
      }
      if (!skyline.empty() &&
          lemmas::StartEdgePruned(e_ox, e_oy, entry.leg_dist, entry.tail,
                                  entry.dist_tr, skyline.options(), env.fn,
                                  env.direct)) {
        ++stats.ellipse_pruned;
        ++stats.pruned_vehicles;
        continue;
      }
    }
    emitted[entry.vehicle] = 1;
    out->push_back(entry.vehicle);
  }
}

void CollectDestCandidates(CellId cell, const RequestEnv& env,
                           MatchContext& ctx, const SkylineSet& skyline,
                           std::vector<char>& emitted, MatchStats& stats,
                           std::vector<VehicleId>* out) {
  const CellAggregates& agg = CtxAggregates(ctx, cell);
  if (!agg.any) return;
  const VertexId d = env.request->destination;
  const int riders = env.request->riders;
  const double epsilon = env.request->epsilon;
  const Distance ldist_d_g = ctx.grid->LowerBoundToCell(d, cell);
  // Lemma 8.
  if (env.pruning.cell_level &&
      lemmas::DestCellInfeasible(agg.max_capacity, riders, agg.max_detour,
                                 ldist_d_g, agg.max_leg_dist)) {
    ++stats.pruned_cells;
    ++stats.lemma_hits[8];
    return;
  }
  // Lemma 10.
  if (env.pruning.cell_level && !skyline.empty() &&
      lemmas::DestCellPruned(ldist_d_g, agg.min_dist_tr, agg.max_leg_dist,
                             agg.has_tail, epsilon, env.direct,
                             skyline.options(), env.fn)) {
    ++stats.pruned_cells;
    ++stats.lemma_hits[10];
    return;
  }
  for (const KineticEdgeEntry& entry : CtxNonEmptyEntries(ctx, cell)) {
    if (emitted[entry.vehicle]) continue;
    const Distance l_ox = ctx.grid->LowerBound(d, entry.ox);
    const Distance l_oy =
        entry.tail ? 0.0 : ctx.grid->LowerBound(d, entry.oy);
    // Lemma 7.
    if (env.pruning.edge_level &&
        lemmas::DestEdgeInfeasible(entry.capacity, riders, entry.detour,
                                   l_ox, l_oy, entry.leg_dist, entry.tail)) {
      ++stats.pruned_vehicles;
      ++stats.lemma_hits[7];
      continue;
    }
    // Lemma 9.
    if (env.pruning.edge_level && !skyline.empty() &&
        lemmas::DestEdgePruned(entry.dist_tr, l_ox, l_oy, entry.leg_dist,
                               entry.tail, epsilon, env.direct,
                               skyline.options(), env.fn)) {
      ++stats.pruned_vehicles;
      ++stats.lemma_hits[9];
      continue;
    }
    // GeoPrune: Lemmas 7 and 9 on the calibrated-Euclidean bounds.
    if (ctx.prune != nullptr && env.pruning.edge_level) {
      ++stats.ellipse_checked;
      const Distance e_ox = ctx.prune->LowerBound(d, entry.ox);
      const Distance e_oy =
          entry.tail ? 0.0 : ctx.prune->LowerBound(d, entry.oy);
      if (lemmas::DestEdgeInfeasible(entry.capacity, riders, entry.detour,
                                     e_ox, e_oy, entry.leg_dist,
                                     entry.tail)) {
        ++stats.ellipse_pruned;
        ++stats.pruned_vehicles;
        continue;
      }
      if (!skyline.empty() &&
          lemmas::DestEdgePruned(entry.dist_tr, e_ox, e_oy, entry.leg_dist,
                                 entry.tail, epsilon, env.direct,
                                 skyline.options(), env.fn)) {
        ++stats.ellipse_pruned;
        ++stats.pruned_vehicles;
        continue;
      }
    }
    emitted[entry.vehicle] = 1;
    out->push_back(entry.vehicle);
  }
}

void CollectSchedulePoints(const KineticTree& tree,
                           std::vector<VertexId>* out) {
  out->push_back(tree.location());
  tree.ForEachStopLocation([&](VertexId v) { out->push_back(v); });
}

void PrefetchBatchDistances(const RequestEnv& env, MatchContext& ctx,
                            std::span<const VehicleId> empty_candidates,
                            std::span<const VehicleId> nonempty_candidates) {
  if (empty_candidates.empty() && nonempty_candidates.empty()) return;
  // Counted BatchDist pairs are work the serial path would also perform;
  // WarmFrom sweeps are uncounted here and charged on promotion, exactly
  // mirroring the compdists accounting.
  obs::TraceSpan span("prefetch");
  span.AddArg("empty", static_cast<std::int64_t>(empty_candidates.size()));
  span.AddArg("nonempty",
              static_cast<std::int64_t>(nonempty_candidates.size()));
  // Prefetch is advisory: any pair skipped here is computed (and charged)
  // on demand by the verify path, which checks the budget between vehicles.
  // Under a limited budget the fleet-wide batch is skipped outright — a
  // batch against a slow or faulted oracle is uninterruptible and would
  // carry the request far past the cooperative deadline stop, while the
  // on-demand path pays for exactly the pairs the surviving vehicles need.
  if (ctx.budget != nullptr && ctx.budget->limited()) return;
  BudgetScope budget(ctx, /*base_units=*/0);
  if (!empty_candidates.empty()) {
    std::vector<VertexId> locations;
    locations.reserve(empty_candidates.size());
    for (const VehicleId v : empty_candidates) {
      locations.push_back((*ctx.fleet)[v].location());
    }
    std::vector<Distance> dists;
    ctx.oracle->BatchDist(env.request->start, locations, &dists);
  }
  if (!nonempty_candidates.empty()) {
    std::vector<VertexId> points;
    for (const VehicleId v : nonempty_candidates) {
      CollectSchedulePoints((*ctx.fleet)[v], &points);
    }
    ctx.oracle->WarmFrom(env.request->start, points);
    ctx.oracle->WarmFrom(env.request->destination, points);
  }
}

std::size_t VerifiedCellLimit(std::size_t num_cells, double fraction) {
  if (num_cells == 0) return 0;
  const double raw = fraction * static_cast<double>(num_cells);
  auto limit = static_cast<std::size_t>(raw + 0.999999);
  return std::clamp<std::size_t>(limit, 1, num_cells);
}

}  // namespace ptar::internal
