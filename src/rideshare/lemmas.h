// Pruning heuristics: Lemmas 1-11 and Definition 7 of the paper, as pure
// testable predicates.
//
// Conventions shared by all functions:
//  * every "Pruned"/"Infeasible" function returning true means the candidate
//    (vehicle, grid cell, or insertion position) can be skipped *safely*:
//    any result it could produce is either invalid or strictly dominated by
//    a current result;
//  * `fn` is the price ratio f_n, `direct` is dist(s, d);
//  * lower-bound distances (ldist) come from the GridIndex; exact distances
//    are named dist;
//  * comparisons carry a small tolerance so floating-point noise can only
//    make pruning more conservative, never unsound.
//
// Tail positions (inserting after the last stop, o_y empty) use the sound
// modifications discussed in Section V: the detour clauses of Lemmas 5 and 7
// are disabled, and the price lower bounds account for d necessarily
// following s.

#ifndef PTAR_RIDESHARE_LEMMAS_H_
#define PTAR_RIDESHARE_LEMMAS_H_

#include <span>

#include "graph/types.h"
#include "rideshare/option.h"

namespace ptar::lemmas {

inline constexpr Distance kPruneTolerance = 1e-6;

// --------------------------------------------------------------------------
// Empty vehicles.
// --------------------------------------------------------------------------

/// Lemma 1 (pruning clause) against one result: the empty vehicle at lower-
/// bound pickup distance `ldist_cl_s` cannot beat r in either dimension.
bool EmptyVehiclePrunedBy(Distance ldist_cl_s, const Option& r, double fn,
                          Distance direct);

/// Lemma 1 against a whole result set (prune if any result dominates).
bool EmptyVehiclePruned(Distance ldist_cl_s, std::span<const Option> results,
                        double fn, Distance direct);

/// Lemma 1 (removal clause): a result every option of the empty vehicle is
/// guaranteed to dominate or equal, built from the upper bound
/// udist(c.l, s). Feed it to SkylineSet::RemoveDominatedBy.
Option EmptyVehicleUpperBoundOption(VehicleId vehicle, Distance udist_cl_s,
                                    double fn, Distance direct);

/// Lemma 2: whole-cell variant; pass ldist(g_j, s) as the bound.
inline bool EmptyCellPruned(Distance ldist_g_s,
                            std::span<const Option> results, double fn,
                            Distance direct) {
  return EmptyVehiclePruned(ldist_g_s, results, fn, direct);
}

// --------------------------------------------------------------------------
// Non-empty vehicles, inserting the start location s.
// --------------------------------------------------------------------------

/// Lemma 3 against one result: inserting s into edge <o_x, o_y> cannot beat
/// r. `leg` is dist(o_x, o_y); `tail` marks o_y empty.
bool StartEdgePrunedBy(Distance ldist_s_ox, Distance ldist_s_oy, Distance leg,
                       bool tail, Distance dist_tr_ox, const Option& r,
                       double fn, Distance direct);

bool StartEdgePruned(Distance ldist_s_ox, Distance ldist_s_oy, Distance leg,
                     bool tail, Distance dist_tr_ox,
                     std::span<const Option> results, double fn,
                     Distance direct);

/// Lemma 5: capacity / detour feasibility of inserting s into the edge.
bool StartEdgeInfeasible(int edge_capacity, int riders, Distance edge_detour,
                         Distance ldist_s_ox, Distance ldist_s_oy,
                         Distance leg, bool tail);

/// Lemma 4: the whole cell (aggregates min_dist_tr / max_leg) cannot beat
/// any current result when inserting s. `has_tail` weakens the price clause
/// to cover tail edges, whose detour lower bound is ldist + direct rather
/// than 2*ldist - leg.
bool StartCellPruned(Distance ldist_s_g, Distance min_dist_tr,
                     Distance max_leg, bool has_tail,
                     std::span<const Option> results, double fn,
                     Distance direct);

/// Lemma 6: cell-level capacity / detour feasibility for inserting s.
/// (Tail edges carry an infinite detour slack, so a cell containing one is
/// never detour-infeasible — its max_detour aggregate is infinite.)
bool StartCellInfeasible(int max_capacity, int riders, Distance max_detour,
                         Distance ldist_s_g, Distance max_leg);

// --------------------------------------------------------------------------
// Non-empty vehicles, inserting the destination d.
// --------------------------------------------------------------------------

/// Lemma 7: capacity / detour feasibility of inserting d into the edge.
bool DestEdgeInfeasible(int edge_capacity, int riders, Distance edge_detour,
                        Distance ldist_d_ox, Distance ldist_d_oy,
                        Distance leg, bool tail);

/// Lemma 9 against one result. `epsilon` is the request's service
/// constraint.
bool DestEdgePrunedBy(Distance dist_tr_ox, Distance ldist_ox_d,
                      Distance ldist_oy_d, Distance leg, bool tail,
                      double epsilon, Distance direct, const Option& r,
                      double fn);

bool DestEdgePruned(Distance dist_tr_ox, Distance ldist_ox_d,
                    Distance ldist_oy_d, Distance leg, bool tail,
                    double epsilon, Distance direct,
                    std::span<const Option> results, double fn);

/// Lemma 8: cell-level capacity / detour feasibility for inserting d.
bool DestCellInfeasible(int max_capacity, int riders, Distance max_detour,
                        Distance ldist_d_g, Distance max_leg);

/// Lemma 10: cell-level dominance pruning for inserting d. `has_tail`
/// weakens the price clause to ldist for cells holding tail edges.
bool DestCellPruned(Distance ldist_d_g, Distance min_dist_tr,
                    Distance max_leg, bool has_tail, double epsilon,
                    Distance direct, std::span<const Option> results,
                    double fn);

// --------------------------------------------------------------------------
// Definition 7 + Lemma 11 (after s is placed with exact distances).
// --------------------------------------------------------------------------

/// Definition 7: lower bound on the total detour dist_tr' - dist_tr once s
/// is exactly placed and d targets edge <o_x, o_y>.
///  * same_gap: d goes into the same gap as s (case 2); then `dist_ox_s` is
///    the exact dist(o_x, s).
///  * otherwise case 1 applies with `delta_s` the exact detour of s.
Distance DetourLowerBound(bool same_gap, bool d_tail, Distance dist_ox_s,
                          Distance delta_s, Distance ldist_ox_d,
                          Distance ldist_oy_d, Distance leg, Distance direct);

/// Lemma 11: with the pickup distance exact and the Def. 7 detour lower
/// bound, the insertion cannot beat any current result.
bool AfterStartPruned(Distance pickup_dist, Distance detour_lower_bound,
                      std::span<const Option> results, double fn,
                      Distance direct);

}  // namespace ptar::lemmas

#endif  // PTAR_RIDESHARE_LEMMAS_H_
