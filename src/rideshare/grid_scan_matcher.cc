#include "rideshare/grid_scan_matcher.h"

#include "common/timer.h"
#include "obs/trace.h"
#include "rideshare/matcher_internal.h"
#include "rideshare/skyline.h"

namespace ptar {

MatchResult GridScanMatcher::Match(const Request& request, MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  internal::RequestEnv env;
  env.request = &request;
  env.direct = ctx.oracle->Dist(request.start, request.destination);
  env.fn = ctx.price_model.Ratio(request.riders);

  SkylineSet skyline;
  MatchStats stats;
  bool complete = true;
  // Non-empty vehicles are out of scope for this matcher by design; if any
  // exist, their options are missing and the result is partial.
  for (const KineticTree& tree : *ctx.fleet) {
    if (!tree.IsEmpty()) {
      complete = false;
      break;
    }
  }

  const CellId start_cell = ctx.grid->CellOfVertex(request.start);
  const std::span<const CellId> cells = ctx.grid->CellsByDistance(start_cell);

  std::vector<VehicleId> batch;
  for (const CellId cell : cells) {
    if (internal::BudgetExhausted(ctx)) {
      complete = false;
      break;
    }
    ++stats.scanned_cells;
    internal::ChargeBudget(ctx, 1);
    const std::span<const VehicleId> list = CtxEmptyVehicles(ctx, cell);
    if (list.empty()) continue;
    obs::TraceSpan cell_span("grid_scan_cell");
    cell_span.AddArg("cell", cell);
    batch.clear();
    // Shared enumeration with Algorithm 2 (no dedup needed: an empty
    // vehicle registers in exactly one cell), so the ladder fallback and
    // the GeoPrune prefilter agree on the base candidate set by
    // construction.
    internal::AppendBoardableEmpties(cell, env, ctx, {}, &batch);
    cell_span.AddArg("candidates", static_cast<std::int64_t>(batch.size()));
    // Under GeoPrune, verify the tightest-bound empty first so its option
    // seeds the skyline for the dominance check (no-op otherwise).
    internal::OrderEmptiesForVerification(env, ctx, &batch);
    // Same counted batch + verification as the full matchers, so option
    // values are bit-identical to what BA/SSA/DSA emit for these vehicles.
    internal::PrefetchBatchDistances(env, ctx, batch, {});
    for (const VehicleId v : batch) {
      if (internal::BudgetExhausted(ctx)) {
        complete = false;
        break;
      }
      internal::VerifyEmptyVehicle((*ctx.fleet)[v], env, ctx, skyline, stats);
    }
    if (!complete && internal::BudgetExhausted(ctx)) break;
  }

  MatchResult result;
  {
    obs::TraceSpan span("skyline_sort");
    span.AddArg("options", static_cast<std::int64_t>(skyline.size()));
    result.options = skyline.Sorted();
  }
  stats.compdists = ctx.oracle->compdists();
  stats.elapsed_micros = timer.ElapsedMicros();
  result.stats = stats;
  result.complete = complete && ctx.oracle->faults() == 0;
  return result;
}

}  // namespace ptar
