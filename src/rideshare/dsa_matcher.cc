#include "rideshare/dsa_matcher.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/trace.h"
#include "rideshare/matcher_internal.h"
#include "rideshare/skyline.h"

namespace ptar {

MatchResult DsaMatcher::Match(const Request& request, MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  internal::RequestEnv env;
  env.request = &request;
  env.direct = ctx.oracle->Dist(request.start, request.destination);
  env.fn = ctx.price_model.Ratio(request.riders);
  env.pruning = pruning_;

  SkylineSet skyline;
  MatchStats stats;
  const std::size_t fleet_size = ctx.fleet->size();
  std::vector<char> emitted_empty(fleet_size, 0);
  std::vector<char> emitted_s(fleet_size, 0);
  std::vector<char> emitted_d(fleet_size, 0);
  std::vector<char> s_candidate(fleet_size, 0);
  std::vector<char> d_candidate(fleet_size, 0);
  std::vector<char> verified(fleet_size, 0);
  const InsertionHooks hooks =
      internal::MakeContextHooks(env, ctx, skyline, &stats);

  const std::span<const CellId> cells_s =
      ctx.grid->CellsByDistance(ctx.grid->CellOfVertex(request.start));
  const std::span<const CellId> cells_d =
      ctx.grid->CellsByDistance(ctx.grid->CellOfVertex(request.destination));
  const std::size_t limit_s =
      internal::VerifiedCellLimit(cells_s.size(), fraction_);
  const std::size_t limit_d =
      internal::VerifiedCellLimit(cells_d.size(), fraction_);

  bool complete = true;
  std::vector<VehicleId> empty_candidates;
  std::vector<VehicleId> s_new;
  std::vector<VehicleId> d_new;
  std::vector<VehicleId> to_verify;
  for (std::size_t idx = 0; idx < std::max(limit_s, limit_d); ++idx) {
    if (internal::BudgetExhausted(ctx)) {
      complete = false;
      break;
    }
    to_verify.clear();
    if (idx < limit_s) {
      const CellId g_s = cells_s[idx];
      obs::TraceSpan cell_span("expand_cell_s");
      cell_span.AddArg("cell", g_s);
      ++stats.scanned_cells;
      internal::ChargeBudget(ctx, 1);
      empty_candidates.clear();
      s_new.clear();
      {
        PTAR_TRACE_SPAN("collect");
        internal::CollectEmptyCandidates(g_s, env, ctx, skyline,
                                         emitted_empty, stats,
                                         &empty_candidates);
        internal::CollectStartCandidates(g_s, env, ctx, skyline, emitted_s,
                                         stats, &s_new);
      }
      cell_span.AddArg("candidates",
                       static_cast<std::int64_t>(empty_candidates.size() +
                                                 s_new.size()));
      // Under GeoPrune, verify the tightest-bound empty first so its option
      // seeds the skyline for the dominance check (no-op otherwise).
      internal::OrderEmptiesForVerification(env, ctx, &empty_candidates);
      // Counted batch for the empty candidates' pickup distances.
      internal::PrefetchBatchDistances(env, ctx, empty_candidates, {});
      PTAR_TRACE_SPAN("verify");
      for (const VehicleId v : empty_candidates) {
        if (internal::BudgetExhausted(ctx)) {
          complete = false;
          break;
        }
        internal::VerifyEmptyVehicle((*ctx.fleet)[v], env, ctx, skyline,
                                     stats);
      }
      if (!complete) break;
      for (const VehicleId v : s_new) {
        s_candidate[v] = 1;
        if (d_candidate[v] && !verified[v]) to_verify.push_back(v);
      }
    }
    if (idx < limit_d) {
      const CellId g_d = cells_d[idx];
      obs::TraceSpan cell_span("expand_cell_d");
      cell_span.AddArg("cell", g_d);
      ++stats.scanned_cells;
      internal::ChargeBudget(ctx, 1);
      d_new.clear();
      {
        PTAR_TRACE_SPAN("collect");
        internal::CollectDestCandidates(g_d, env, ctx, skyline, emitted_d,
                                        stats, &d_new);
      }
      cell_span.AddArg("candidates", static_cast<std::int64_t>(d_new.size()));
      for (const VehicleId v : d_new) {
        d_candidate[v] = 1;
        if (s_candidate[v] && !verified[v]) to_verify.push_back(v);
      }
    }
    // Warm the intersection batch from both query endpoints before the
    // per-vehicle enumerations (dual-sided: start and destination sweeps).
    internal::PrefetchBatchDistances(env, ctx, {}, to_verify);
    PTAR_TRACE_SPAN("verify");
    for (const VehicleId v : to_verify) {
      if (verified[v]) continue;  // could appear twice in one round
      if (internal::BudgetExhausted(ctx)) {
        complete = false;
        break;
      }
      verified[v] = 1;
      internal::VerifyNonEmptyVehicle((*ctx.fleet)[v], env, ctx, hooks,
                                      skyline, stats);
    }
    if (!complete) break;
  }

  MatchResult result;
  {
    obs::TraceSpan span("skyline_sort");
    span.AddArg("options", static_cast<std::int64_t>(skyline.size()));
    result.options = skyline.Sorted();
  }
  stats.compdists = ctx.oracle->compdists();
  stats.elapsed_micros = timer.ElapsedMicros();
  result.stats = stats;
  result.complete = complete && ctx.oracle->faults() == 0;
  return result;
}

}  // namespace ptar
