// Baseline Algorithm (BA, paper Section VI.A): the kinetic-tree algorithm of
// Huang et al. [17] extended to return all non-dominated (time, price)
// options. Verifies every vehicle and computes every insertion distance —
// no index-based filtering, no lazy distance evaluation.

#ifndef PTAR_RIDESHARE_BASELINE_MATCHER_H_
#define PTAR_RIDESHARE_BASELINE_MATCHER_H_

#include "rideshare/matcher.h"

namespace ptar {

class BaselineMatcher : public Matcher {
 public:
  std::string name() const override { return "BA"; }
  MatchResult Match(const Request& request, MatchContext& ctx) override;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_BASELINE_MATCHER_H_
