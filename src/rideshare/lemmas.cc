#include "rideshare/lemmas.h"

#include <algorithm>

namespace ptar::lemmas {

namespace {

/// a strictly exceeds b beyond floating-point noise.
inline bool StrictlyAbove(Distance a, Distance b) {
  return a > b + kPruneTolerance;
}

}  // namespace

bool EmptyVehiclePrunedBy(Distance ldist_cl_s, const Option& r, double fn,
                          Distance direct) {
  // r_j.dist_pt >= ldist and r_j.price >= fn * (ldist + 2 * direct); prune
  // when both lower bounds already lose to r.
  const Distance threshold =
      std::max(r.pickup_dist, r.price / fn - 2.0 * direct);
  return StrictlyAbove(ldist_cl_s, threshold);
}

bool EmptyVehiclePruned(Distance ldist_cl_s, std::span<const Option> results,
                        double fn, Distance direct) {
  for (const Option& r : results) {
    if (EmptyVehiclePrunedBy(ldist_cl_s, r, fn, direct)) return true;
  }
  return false;
}

Option EmptyVehicleUpperBoundOption(VehicleId vehicle, Distance udist_cl_s,
                                    double fn, Distance direct) {
  Option bound;
  bound.vehicle = vehicle;
  bound.pickup_dist = udist_cl_s;
  bound.price = fn * (udist_cl_s + 2.0 * direct);
  return bound;
}

bool StartEdgePrunedBy(Distance ldist_s_ox, Distance ldist_s_oy, Distance leg,
                       bool tail, Distance dist_tr_ox, const Option& r,
                       double fn, Distance direct) {
  // Pick-up lower bound: dist_tr'(c.l, s) = dist_tr(c.l, o_x) + dist(o_x, s).
  const bool time_lost = StrictlyAbove(ldist_s_ox + dist_tr_ox, r.pickup_dist);
  if (!time_lost) return false;
  // Price lower bound on the detour added by s (and, for a tail position,
  // the d that must follow it).
  const Distance detour_lb =
      tail ? ldist_s_ox + direct : ldist_s_ox + ldist_s_oy - leg;
  return StrictlyAbove(detour_lb, r.price / fn - direct);
}

bool StartEdgePruned(Distance ldist_s_ox, Distance ldist_s_oy, Distance leg,
                     bool tail, Distance dist_tr_ox,
                     std::span<const Option> results, double fn,
                     Distance direct) {
  for (const Option& r : results) {
    if (StartEdgePrunedBy(ldist_s_ox, ldist_s_oy, leg, tail, dist_tr_ox, r,
                          fn, direct)) {
      return true;
    }
  }
  return false;
}

bool StartEdgeInfeasible(int edge_capacity, int riders, Distance edge_detour,
                         Distance ldist_s_ox, Distance ldist_s_oy,
                         Distance leg, bool tail) {
  if (edge_capacity < riders) return true;
  if (tail) return false;  // the detour clause needs a real o_y
  return edge_detour + kPruneTolerance < ldist_s_ox + ldist_s_oy - leg;
}

bool StartCellPruned(Distance ldist_s_g, Distance min_dist_tr,
                     Distance max_leg, bool has_tail,
                     std::span<const Option> results, double fn,
                     Distance direct) {
  // Sound detour lower bound for every edge in the cell: interior edges
  // give 2*ldist - max_leg; a tail edge only gives ldist + dist(s, d)
  // (s appended after the last stop, d after s).
  Distance detour_lb = 2.0 * ldist_s_g - max_leg;
  if (has_tail) detour_lb = std::min(detour_lb, ldist_s_g + direct);
  for (const Option& r : results) {
    if (StrictlyAbove(ldist_s_g + min_dist_tr, r.pickup_dist) &&
        StrictlyAbove(detour_lb, r.price / fn - direct)) {
      return true;
    }
  }
  return false;
}

bool StartCellInfeasible(int max_capacity, int riders, Distance max_detour,
                         Distance ldist_s_g, Distance max_leg) {
  if (max_capacity < riders) return true;
  return max_detour + kPruneTolerance < 2.0 * ldist_s_g - max_leg;
}

bool DestEdgeInfeasible(int edge_capacity, int riders, Distance edge_detour,
                        Distance ldist_d_ox, Distance ldist_d_oy,
                        Distance leg, bool tail) {
  if (edge_capacity < riders) return true;
  if (tail) return false;
  return edge_detour + kPruneTolerance < ldist_d_ox + ldist_d_oy - leg;
}

bool DestEdgePrunedBy(Distance dist_tr_ox, Distance ldist_ox_d,
                      Distance ldist_oy_d, Distance leg, bool tail,
                      double epsilon, Distance direct, const Option& r,
                      double fn) {
  // Service constraint: dist_tr'(c.l, d) <= pickup + (1 + eps) * direct,
  // and dist_tr'(c.l, d) >= dist_tr(c.l, o_x) + dist(o_x, d); hence the
  // pick-up distance of any result through this edge is at least:
  const Distance pickup_lb =
      dist_tr_ox + ldist_ox_d - (1.0 + epsilon) * direct;
  if (!StrictlyAbove(pickup_lb, r.pickup_dist)) return false;
  const Distance detour_lb =
      tail ? ldist_ox_d : ldist_ox_d + ldist_oy_d - leg;
  return StrictlyAbove(detour_lb, r.price / fn - direct);
}

bool DestEdgePruned(Distance dist_tr_ox, Distance ldist_ox_d,
                    Distance ldist_oy_d, Distance leg, bool tail,
                    double epsilon, Distance direct,
                    std::span<const Option> results, double fn) {
  for (const Option& r : results) {
    if (DestEdgePrunedBy(dist_tr_ox, ldist_ox_d, ldist_oy_d, leg, tail,
                         epsilon, direct, r, fn)) {
      return true;
    }
  }
  return false;
}

bool DestCellInfeasible(int max_capacity, int riders, Distance max_detour,
                        Distance ldist_d_g, Distance max_leg) {
  if (max_capacity < riders) return true;
  return max_detour + kPruneTolerance < 2.0 * ldist_d_g - max_leg;
}

bool DestCellPruned(Distance ldist_d_g, Distance min_dist_tr,
                    Distance max_leg, bool has_tail, double epsilon,
                    Distance direct, std::span<const Option> results,
                    double fn) {
  // A tail edge admits appending d after the last stop with detour just
  // dist(o_k, d) >= ldist.
  Distance detour_lb = 2.0 * ldist_d_g - max_leg;
  if (has_tail) detour_lb = std::min(detour_lb, ldist_d_g);
  for (const Option& r : results) {
    if (StrictlyAbove(min_dist_tr + ldist_d_g - (1.0 + epsilon) * direct,
                      r.pickup_dist) &&
        StrictlyAbove(detour_lb, r.price / fn - direct)) {
      return true;
    }
  }
  return false;
}

Distance DetourLowerBound(bool same_gap, bool d_tail, Distance dist_ox_s,
                          Distance delta_s, Distance ldist_ox_d,
                          Distance ldist_oy_d, Distance leg,
                          Distance direct) {
  if (same_gap) {
    // Case 2 of Definition 7: <o_m, o_n> == <o_x, o_y>.
    if (d_tail) return dist_ox_s + direct;
    return dist_ox_s + ldist_oy_d + direct - leg;
  }
  // Case 1: independent gaps; the s part is already exact.
  if (d_tail) return delta_s + ldist_ox_d;
  return delta_s + ldist_ox_d + ldist_oy_d - leg;
}

bool AfterStartPruned(Distance pickup_dist, Distance detour_lower_bound,
                      std::span<const Option> results, double fn,
                      Distance direct) {
  for (const Option& r : results) {
    if (StrictlyAbove(pickup_dist, r.pickup_dist) &&
        StrictlyAbove(detour_lower_bound, r.price / fn - direct)) {
      return true;
    }
  }
  return false;
}

}  // namespace ptar::lemmas
