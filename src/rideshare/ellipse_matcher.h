// GeoPrune wrappers: run any matcher with the ellipse prefilter installed.
//
// PrunedMatcher decorates an inner matcher: on each Match it (lazily)
// builds an EllipsePrefilter for the context's graph, installs it as
// ctx.prune for the duration of the call, and restores the previous value
// on exit. The inner matcher picks the filter up through the shared
// verification helpers (matcher_internal), so BA / SSA / DSA / GRID all
// gain GeoPrune without per-matcher code. EllipseMatcher is the standalone
// ablation configuration: a pruned full-fleet scan (BA + ellipse), i.e.
// GeoPrune with no grid lemma assistance on the empty side.

#ifndef PTAR_RIDESHARE_ELLIPSE_MATCHER_H_
#define PTAR_RIDESHARE_ELLIPSE_MATCHER_H_

#include <memory>
#include <utility>

#include "prune/ellipse_prefilter.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/matcher.h"

namespace ptar {

class PrunedMatcher : public Matcher {
 public:
  /// Wraps `inner` (must not be null). `opts.shrink_factor != 1` is the
  /// ShrinkEllipse fault seam used by the differential harness; production
  /// use keeps the default.
  explicit PrunedMatcher(std::unique_ptr<Matcher> inner,
                         prune::EllipsePrefilter::Options opts = {})
      : inner_(std::move(inner)), opts_(opts) {}

  std::string name() const override { return inner_->name() + "+EL"; }
  MatchResult Match(const Request& request, MatchContext& ctx) override;

  Matcher& inner() { return *inner_; }

 private:
  std::unique_ptr<Matcher> inner_;
  prune::EllipsePrefilter::Options opts_;
  /// Lazily (re)built when the context's graph changes. Matcher instances
  /// are engine- and worker-local (never shared across threads), so plain
  /// members suffice.
  std::unique_ptr<prune::EllipsePrefilter> filter_;
  const RoadNetwork* filter_graph_ = nullptr;
};

class EllipseMatcher : public PrunedMatcher {
 public:
  explicit EllipseMatcher(prune::EllipsePrefilter::Options opts = {})
      : PrunedMatcher(std::make_unique<BaselineMatcher>(), opts) {}

  std::string name() const override { return "ELLIPSE"; }
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_ELLIPSE_MATCHER_H_
