#include "rideshare/classic_dispatcher.h"

#include <limits>

#include "common/timer.h"
#include "rideshare/matcher_internal.h"

namespace ptar {

MatchResult ClassicDispatcher::Match(const Request& request,
                                     MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  internal::RequestEnv env;
  env.request = &request;
  env.direct = ctx.oracle->Dist(request.start, request.destination);
  env.fn = ctx.price_model.Ratio(request.riders);

  MatchStats stats;
  const KineticTree::DistFn dist = internal::OracleDistFn(ctx);
  const InsertionHooks no_hooks;

  bool found = false;
  Option best;
  Distance best_increase = std::numeric_limits<Distance>::infinity();
  auto consider = [&](VehicleId vehicle, Distance increase, Distance pickup,
                      double price) {
    if (increase < best_increase ||
        (increase == best_increase &&
         (pickup < best.pickup_dist ||
          (pickup == best.pickup_dist && vehicle < best.vehicle)))) {
      best_increase = increase;
      best = Option{vehicle, pickup, price};
      found = true;
    }
  };

  for (KineticTree& tree : *ctx.fleet) {
    ++stats.verified_vehicles;
    if (tree.IsEmpty()) {
      const Distance pickup = ctx.oracle->Dist(tree.location(),
                                               request.start);
      if (pickup == kInfDistance) continue;
      // Travel increase of an empty vehicle: drive to s, then to d.
      consider(tree.vehicle(), pickup + env.direct, pickup,
               ctx.price_model.EmptyVehiclePrice(request.riders, pickup,
                                                 env.direct));
      continue;
    }
    tree.Refresh(dist);
    const Distance base_total = tree.CurrentTotal();
    for (const InsertionCandidate& cand :
         tree.EnumerateInsertions(request, env.direct, dist, no_hooks)) {
      const Distance increase = cand.total_dist - base_total;
      consider(tree.vehicle(), increase, cand.pickup_dist,
               ctx.price_model.Price(request.riders, increase, env.direct));
    }
  }

  MatchResult result;
  if (found) result.options.push_back(best);
  stats.compdists = ctx.oracle->compdists();
  stats.elapsed_micros = timer.ElapsedMicros();
  result.stats = stats;
  return result;
}

}  // namespace ptar
