// Shared machinery for the three matching algorithms: vehicle verification
// (Algorithm 4, find_result) and the lemma-based insertion hooks.

#ifndef PTAR_RIDESHARE_MATCHER_INTERNAL_H_
#define PTAR_RIDESHARE_MATCHER_INTERNAL_H_

#include <span>

#include "kinetic/kinetic_tree.h"
#include "rideshare/matcher.h"
#include "rideshare/skyline.h"

namespace ptar::internal {

/// Bundle of per-request quantities threaded through verification.
struct RequestEnv {
  const Request* request = nullptr;
  Distance direct = 0.0;  ///< dist(s, d).
  double fn = 0.0;        ///< Price ratio f_n.
  PruningConfig pruning;  ///< Which lemma families are active.
};

/// Exact distance callback bound to the context's oracle.
KineticTree::DistFn OracleDistFn(MatchContext& ctx);

/// True when the context carries a work budget and it is spent. Matchers
/// call this only at safe points — between cells and between vehicle
/// verifications — so stopping never leaves a half-verified option behind.
inline bool BudgetExhausted(MatchContext& ctx) {
  return ctx.budget != nullptr && ctx.budget->Exhausted();
}

/// Charges `units` deterministic work units (no-op without a budget).
inline void ChargeBudget(MatchContext& ctx, std::uint64_t units) {
  if (ctx.budget != nullptr) ctx.budget->Charge(units);
}

/// Builds insertion hooks that evaluate Lemmas 3/5 (s side) and
/// 7/9/11 + Def. 7 (d side) against the evolving skyline. Returns null
/// hooks (full enumeration) when env.pruning.insertion_hooks is off. The
/// references (including `counters`, which may not be null) must outlive
/// the returned hooks.
InsertionHooks MakeLemmaHooks(const RequestEnv& env, const GridIndex& grid,
                              const SkylineSet& skyline,
                              LemmaCounters* counters);

/// GeoPrune insertion hooks: the same s-side (Lemmas 3/5) and d-side
/// (Lemmas 7/9/11 + Def. 7) predicates evaluated on the prefilter's
/// calibrated-Euclidean lower bounds instead of the grid bounds — including
/// the same-gap guard on the Lemma 9 analog. Rejections are counted into
/// stats->ellipse_checked / ellipse_pruned (not lemma_hits, which stays
/// grid-bound attribution). Used standalone by BA-style matchers under
/// --prune=ellipse and composed with the grid hooks elsewhere.
InsertionHooks MakeEllipseHooks(const RequestEnv& env,
                                const prune::EllipsePrefilter& prefilter,
                                const SkylineSet& skyline, MatchStats* stats);

/// Chains two hook sets: `first` is consulted before `second`, short-
/// circuiting on the first rejection. Null members pass through.
InsertionHooks CombineHooks(InsertionHooks first, InsertionHooks second);

/// The insertion hooks a grid matcher should use for this context: the
/// lemma hooks, chained with the GeoPrune hooks when ctx.prune is set.
InsertionHooks MakeContextHooks(const RequestEnv& env, MatchContext& ctx,
                                const SkylineSet& skyline, MatchStats* stats);

/// Verifies one empty vehicle: computes its single option exactly and
/// inserts it (Algorithm 4, lines 1-2).
void VerifyEmptyVehicle(KineticTree& tree, const RequestEnv& env,
                        MatchContext& ctx, SkylineSet& skyline,
                        MatchStats& stats);

/// Verifies one non-empty vehicle: kinetic-tree insertion with the given
/// hooks, one option per surviving candidate (Algorithm 4, lines 3-4).
void VerifyNonEmptyVehicle(KineticTree& tree, const RequestEnv& env,
                           MatchContext& ctx, const InsertionHooks& hooks,
                           SkylineSet& skyline, MatchStats& stats);

/// The single candidate-enumeration step shared by CollectEmptyCandidates
/// and GridScanMatcher: appends the cell's empty vehicles that can board
/// the group (capacity filter only, no skyline pruning), skipping vehicles
/// marked in `emitted` (pass an empty span for no dedup). Returns the
/// number skipped for capacity, which Algorithm 2 counts as pruned and the
/// grid-scan ladder does not. Sharing this enumeration pins ladder
/// fallbacks and pruned matchers to the same base candidate set
/// (prune_test holds the regression).
std::size_t AppendBoardableEmpties(CellId cell, const RequestEnv& env,
                                   const MatchContext& ctx,
                                   std::span<const char> emitted,
                                   std::vector<VehicleId>* out);

/// When the GeoPrune prefilter is active, stably reorders an empty-vehicle
/// candidate batch by ascending prefilter pickup lower bound. Verifying the
/// tightest-bound candidate first seeds the skyline with the strongest
/// empty-vehicle option, which lets the verify-time GeoPrune dominance
/// check inside VerifyEmptyVehicle reject most of the remaining batch.
/// Ordering never changes the final skyline: each verification computes the
/// same option regardless of position, and pruning removes only dominated
/// candidates. No-op without a prefilter, so unpruned runs keep their
/// original verification order.
void OrderEmptiesForVerification(const RequestEnv& env,
                                 const MatchContext& ctx,
                                 std::vector<VehicleId>* candidates);

/// Algorithm 2 (find_empty_vehicle): appends the cell's empty vehicles that
/// survive Lemmas 1 and 2. `emitted[v]` marks vehicles already produced and
/// is updated for every appended vehicle.
void CollectEmptyCandidates(CellId cell, const RequestEnv& env,
                            MatchContext& ctx, const SkylineSet& skyline,
                            std::vector<char>& emitted, MatchStats& stats,
                            std::vector<VehicleId>* out);

/// Algorithm 3 (find_nonempty_vehicle): appends non-empty vehicles with at
/// least one registered edge in the cell surviving Lemmas 3-6.
void CollectStartCandidates(CellId cell, const RequestEnv& env,
                            MatchContext& ctx, const SkylineSet& skyline,
                            std::vector<char>& emitted, MatchStats& stats,
                            std::vector<VehicleId>* out);

/// Algorithm 5's find_nonempty_vehicle_Dest: destination-side filtering via
/// Lemmas 7-10.
void CollectDestCandidates(CellId cell, const RequestEnv& env,
                           MatchContext& ctx, const SkylineSet& skyline,
                           std::vector<char>& emitted, MatchStats& stats,
                           std::vector<VehicleId>* out);

/// Appends every point an insertion enumeration can query a distance
/// against for `tree`: the current location plus all stops of all branches.
void CollectSchedulePoints(const KineticTree& tree,
                           std::vector<VertexId>* out);

/// Batched distance prologue for one collected candidate batch.
///
/// Empty candidates: one *counted* BatchDist from request.start to their
/// locations — VerifyEmptyVehicle computes exactly those pairs
/// unconditionally (capacity was already filtered during collection), so
/// compdist accounting is unchanged.
///
/// Non-empty candidates: *uncounted* WarmFrom sweeps over their schedule
/// points, from request.start and request.destination. Enumeration may skip
/// any of these pairs (seat checks, lemma hooks), so they are only counted
/// when Dist() actually promotes them — the same moment an unbatched run
/// would have computed them.
///
/// Every matcher must issue the same prefetch shape so that each
/// distance pair is first computed in the same sweep direction everywhere;
/// that keeps option values bit-identical across BA / SSA / DSA, which the
/// skyline-equivalence guarantees rely on for exact dominance ties.
void PrefetchBatchDistances(const RequestEnv& env, MatchContext& ctx,
                            std::span<const VehicleId> empty_candidates,
                            std::span<const VehicleId> nonempty_candidates);

/// Number of cells a partial-grid search visits for the configured fraction
/// (paper Section VII.A, "number of verified grids"): at least one, at most
/// all.
std::size_t VerifiedCellLimit(std::size_t num_cells, double fraction);

}  // namespace ptar::internal

#endif  // PTAR_RIDESHARE_MATCHER_INTERNAL_H_
