// Maintained skyline (non-dominated set) of ridesharing options.

#ifndef PTAR_RIDESHARE_SKYLINE_H_
#define PTAR_RIDESHARE_SKYLINE_H_

#include <span>
#include <vector>

#include "rideshare/option.h"

namespace ptar {

/// The evolving result set S_r of a match: inserting an option drops every
/// existing option it dominates and is rejected if an existing option
/// dominates it. Incomparable duplicates (equal in both dimensions) are
/// kept, as neither dominates the other.
class SkylineSet {
 public:
  /// Returns true iff the option joined the skyline. Exact duplicates
  /// (same vehicle, time, and price — e.g. two schedules of one vehicle
  /// with identical metrics) are rejected.
  bool Insert(const Option& option) {
    for (const Option& existing : options_) {
      if (Dominates(existing, option) || existing == option) return false;
    }
    std::erase_if(options_,
                  [&](const Option& existing) {
                    return Dominates(option, existing);
                  });
    options_.push_back(option);
    return true;
  }

  /// Removes every option dominated by `bound` (used with Lemma 1's
  /// upper-bound clause, where `bound` is a guaranteed-achievable result).
  void RemoveDominatedBy(const Option& bound) {
    std::erase_if(options_, [&](const Option& existing) {
      return Dominates(bound, existing);
    });
  }

  bool empty() const { return options_.empty(); }
  std::size_t size() const { return options_.size(); }
  std::span<const Option> options() const { return options_; }
  void Clear() { options_.clear(); }

  /// Sorted copy (ascending pickup distance, then price, then vehicle) for
  /// deterministic presentation.
  std::vector<Option> Sorted() const;

 private:
  std::vector<Option> options_;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_SKYLINE_H_
