// Grid-lower-bound-only candidate scan — the degradation ladder's cheapest
// real matcher (OverloadController level 2, below SSA).
//
// Scans grid cells in ascending lower-bound distance from the request's
// start and verifies *empty* vehicles only: each costs exactly one
// point-to-point distance and its option value is identical to what BA /
// SSA / DSA would compute for the same vehicle, so every emitted option is
// exact. Non-empty vehicles (kinetic-tree insertions, the expensive part)
// are never enumerated; whenever any exist — or the scan stops on budget —
// the result is tagged `complete = false`. The skyline is therefore always
// a valid subset of the full answer, produced at a small bounded cost.

#ifndef PTAR_RIDESHARE_GRID_SCAN_MATCHER_H_
#define PTAR_RIDESHARE_GRID_SCAN_MATCHER_H_

#include "rideshare/matcher.h"

namespace ptar {

class GridScanMatcher : public Matcher {
 public:
  std::string name() const override { return "GRID"; }
  MatchResult Match(const Request& request, MatchContext& ctx) override;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_GRID_SCAN_MATCHER_H_
