#include "rideshare/ellipse_matcher.h"

namespace ptar {

MatchResult PrunedMatcher::Match(const Request& request, MatchContext& ctx) {
  const RoadNetwork* graph = &ctx.grid->graph();
  if (filter_ == nullptr || filter_graph_ != graph) {
    filter_ = std::make_unique<prune::EllipsePrefilter>(
        prune::EllipsePrefilter::Build(*graph, opts_));
    filter_graph_ = graph;
  }
  const prune::EllipsePrefilter* saved = ctx.prune;
  ctx.prune = filter_.get();
  MatchResult result = inner_->Match(request, ctx);
  ctx.prune = saved;
  return result;
}

}  // namespace ptar
