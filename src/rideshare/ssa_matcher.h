// Single-Side Search Algorithm (SSA, paper Algorithm 1).
//
// Scans grid cells in ascending lower-bound distance from the request's
// start location, filtering empty vehicles with Lemmas 1-2 and non-empty
// vehicles with Lemmas 3-6, then verifies surviving vehicles through the
// kinetic tree with lazy, lemma-guarded distance computation
// (Lemmas 3, 5, 7, 9, 11).

#ifndef PTAR_RIDESHARE_SSA_MATCHER_H_
#define PTAR_RIDESHARE_SSA_MATCHER_H_

#include "rideshare/matcher.h"

namespace ptar {

class SsaMatcher : public Matcher {
 public:
  /// `verified_grid_fraction` is the share of (closest) grid cells the
  /// search visits; the paper's default is 16 %. `pruning` selects the
  /// active lemma families (ablation only; defaults to all).
  explicit SsaMatcher(double verified_grid_fraction = 0.16,
                      const PruningConfig& pruning = PruningConfig{})
      : fraction_(verified_grid_fraction), pruning_(pruning) {}

  std::string name() const override { return "SSA"; }
  MatchResult Match(const Request& request, MatchContext& ctx) override;

  double fraction() const { return fraction_; }
  const PruningConfig& pruning() const { return pruning_; }

 private:
  double fraction_;
  PruningConfig pruning_;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_SSA_MATCHER_H_
