// Matcher interface and shared context for the dynamic-ridesharing
// matching algorithms (paper Section VI).

#ifndef PTAR_RIDESHARE_MATCHER_H_
#define PTAR_RIDESHARE_MATCHER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/distance_oracle.h"
#include "grid/grid_index.h"
#include "grid/vehicle_registry.h"
#include "kinetic/kinetic_tree.h"
#include "kinetic/request.h"
#include "rideshare/option.h"
#include "rideshare/price_model.h"
#include "rideshare/work_budget.h"

namespace ptar {

namespace prune {
class EllipsePrefilter;
}  // namespace prune

/// How often each pruning lemma fired, indexed by the paper's lemma number
/// (1-11; slot 0 is unused). The aggregate pruned_cells / pruned_vehicles
/// counters cannot say *which* bound removed a candidate; these can, which
/// is what the differential harness (src/check) reports when it attributes
/// a skyline divergence to a specific over-aggressive lemma.
struct LemmaCounters {
  static constexpr std::size_t kNumLemmas = 11;
  std::array<std::uint64_t, kNumLemmas + 1> hits{};

  std::uint64_t& operator[](std::size_t lemma) { return hits[lemma]; }
  std::uint64_t operator[](std::size_t lemma) const { return hits[lemma]; }

  std::uint64_t Total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t h : hits) sum += h;
    return sum;
  }

  void Accumulate(const LemmaCounters& other) {
    for (std::size_t i = 0; i < hits.size(); ++i) hits[i] += other.hits[i];
  }

  friend bool operator==(const LemmaCounters& a,
                         const LemmaCounters& b) = default;
};

/// Per-request cost measures — the metrics every experiment in Section VII
/// reports.
struct MatchStats {
  std::uint64_t verified_vehicles = 0;  ///< Vehicles whose tree was probed.
  std::uint64_t compdists = 0;  ///< Shortest-path distance computations.
  std::uint64_t scanned_cells = 0;    ///< Grid cells visited.
  std::uint64_t pruned_cells = 0;     ///< Cells skipped by Lemmas 2/4/6/8/10.
  std::uint64_t pruned_vehicles = 0;  ///< Vehicles skipped by Lemmas 1/3/5.
  std::uint64_t ellipse_checked = 0;  ///< Candidates tested by GeoPrune.
  std::uint64_t ellipse_pruned = 0;   ///< Candidates rejected by GeoPrune.
  LemmaCounters lemma_hits;           ///< Per-lemma attribution of the above.
  double elapsed_micros = 0.0;

  void Accumulate(const MatchStats& other) {
    verified_vehicles += other.verified_vehicles;
    compdists += other.compdists;
    scanned_cells += other.scanned_cells;
    pruned_cells += other.pruned_cells;
    pruned_vehicles += other.pruned_vehicles;
    ellipse_checked += other.ellipse_checked;
    ellipse_pruned += other.ellipse_pruned;
    lemma_hits.Accumulate(other.lemma_hits);
    elapsed_micros += other.elapsed_micros;
  }
};

/// The answer to one request: all non-dominated options plus cost stats.
struct MatchResult {
  std::vector<Option> options;  ///< Skyline, sorted by pickup distance.
  MatchStats stats;
  /// False when the matcher stopped early (work budget / deadline / faults)
  /// before visiting every candidate. The options present are still exact
  /// and valid — a partial result only ever *misses* options, it never
  /// invents or misprices one (tested by the differential harness).
  bool complete = true;
};

/// Everything a matcher needs about the world. The fleet is mutable because
/// verification repairs stale kinetic-tree legs in place (a semantics-
/// preserving operation shared by all matchers).
struct MatchContext {
  const GridIndex* grid = nullptr;
  VehicleRegistry* registry = nullptr;
  std::vector<KineticTree>* fleet = nullptr;  ///< Indexed by VehicleId.
  DistanceOracle* oracle = nullptr;
  PriceModel price_model;
  /// Optional per-request work budget (null = unlimited). The matcher must
  /// check it only at safe points (between cells / vehicles) and tag the
  /// result `complete = false` when it stops early. The budget is owned by
  /// the caller and is not shared across concurrently-running matchers.
  WorkBudget* budget = nullptr;
  /// Optional frozen registry view (request-parallel engine). When set, all
  /// registry reads go through the snapshot instead of the live registry,
  /// so concurrent matcher workers see one consistent fleet view while the
  /// engine keeps the live registry for commits. The live `registry`
  /// pointer stays non-null either way (tree verification repairs still
  /// target live fleet state).
  const RegistrySnapshot* snapshot = nullptr;
  /// Optional GeoPrune prefilter (src/prune). When set, matchers interleave
  /// calibrated-Euclidean ellipse checks with the grid lower bounds: the
  /// same lemma predicates evaluated on a second, per-pair-tight lower
  /// bound. Lossless by construction — the differential harness's
  /// --prune_check mode asserts pruned and unpruned skylines are identical.
  const prune::EllipsePrefilter* prune = nullptr;
};

/// Registry reads routed through the snapshot when one is installed.
/// Matchers must use these instead of touching ctx.registry directly, so
/// the same matcher code serves both the serial engine (live registry) and
/// the parallel pipeline (frozen snapshot).
inline std::span<const VehicleId> CtxEmptyVehicles(const MatchContext& ctx,
                                                   CellId cell) {
  return ctx.snapshot != nullptr ? ctx.snapshot->EmptyVehicles(cell)
                                 : ctx.registry->EmptyVehicles(cell);
}

inline std::span<const KineticEdgeEntry> CtxNonEmptyEntries(
    const MatchContext& ctx, CellId cell) {
  return ctx.snapshot != nullptr ? ctx.snapshot->NonEmptyEntries(cell)
                                 : ctx.registry->NonEmptyEntries(cell);
}

inline const CellAggregates& CtxAggregates(const MatchContext& ctx,
                                           CellId cell) {
  return ctx.snapshot != nullptr ? ctx.snapshot->Aggregates(cell)
                                 : ctx.registry->Aggregates(cell);
}

/// Which lemma families an index-based matcher applies. Used by the
/// ablation bench to quantify each family's contribution; production use
/// keeps everything on.
struct PruningConfig {
  /// Whole-cell pruning: Lemmas 2, 4, 6 (and 8, 10 on the DSA d-side).
  bool cell_level = true;
  /// Per-vehicle / per-edge filtering: Lemmas 1, 3, 5 (and 7, 9).
  bool edge_level = true;
  /// Lazy in-insertion pruning: Lemmas 3, 5, 7, 9, 11 + Definition 7.
  bool insertion_hooks = true;
};

class Matcher {
 public:
  virtual ~Matcher() = default;
  virtual std::string name() const = 0;
  /// Computes the full non-dominated option set for the request. Resets the
  /// oracle's cache and compdists counter for this request.
  virtual MatchResult Match(const Request& request, MatchContext& ctx) = 0;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_MATCHER_H_
