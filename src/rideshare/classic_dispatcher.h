// Classic single-option dispatcher — the "existing systems" strawman from
// the paper's introduction (T-share / kinetic-tree style): every request
// gets exactly ONE assignment, the vehicle+insertion minimizing the
// system-wide travel-distance increase. No rider choice, no skyline.
//
// Used as a comparison point in examples and benches to quantify what the
// price-and-time-aware option set buys riders (see
// examples/options_vs_classic.cpp); it is not part of the paper's
// evaluated algorithms.

#ifndef PTAR_RIDESHARE_CLASSIC_DISPATCHER_H_
#define PTAR_RIDESHARE_CLASSIC_DISPATCHER_H_

#include "rideshare/matcher.h"

namespace ptar {

class ClassicDispatcher : public Matcher {
 public:
  std::string name() const override { return "CLASSIC"; }

  /// Returns at most one option: the minimal-travel-increase assignment
  /// (ties broken by earlier pickup, then vehicle id). Its price is still
  /// computed with the paper's model so rider costs are comparable.
  MatchResult Match(const Request& request, MatchContext& ctx) override;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_CLASSIC_DISPATCHER_H_
