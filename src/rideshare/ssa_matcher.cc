#include "rideshare/ssa_matcher.h"

#include "common/timer.h"
#include "obs/trace.h"
#include "rideshare/matcher_internal.h"
#include "rideshare/skyline.h"

namespace ptar {

MatchResult SsaMatcher::Match(const Request& request, MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  internal::RequestEnv env;
  env.request = &request;
  env.direct = ctx.oracle->Dist(request.start, request.destination);
  env.fn = ctx.price_model.Ratio(request.riders);
  env.pruning = pruning_;

  SkylineSet skyline;
  MatchStats stats;
  std::vector<char> emitted(ctx.fleet->size(), 0);
  const InsertionHooks hooks =
      internal::MakeContextHooks(env, ctx, skyline, &stats);

  const CellId start_cell = ctx.grid->CellOfVertex(request.start);
  const std::span<const CellId> cells =
      ctx.grid->CellsByDistance(start_cell);
  const std::size_t limit =
      internal::VerifiedCellLimit(cells.size(), fraction_);

  bool complete = true;
  std::vector<VehicleId> empty_candidates;
  std::vector<VehicleId> nonempty_candidates;
  for (std::size_t i = 0; i < limit; ++i) {
    if (internal::BudgetExhausted(ctx)) {
      complete = false;
      break;
    }
    const CellId cell = cells[i];
    obs::TraceSpan cell_span("expand_cell");
    cell_span.AddArg("cell", cell);
    ++stats.scanned_cells;
    internal::ChargeBudget(ctx, 1);
    empty_candidates.clear();
    nonempty_candidates.clear();
    {
      // Cell expansion + lemma pruning (Algorithms 2-3).
      PTAR_TRACE_SPAN("collect");
      internal::CollectEmptyCandidates(cell, env, ctx, skyline, emitted,
                                       stats, &empty_candidates);
      internal::CollectStartCandidates(cell, env, ctx, skyline, emitted,
                                       stats, &nonempty_candidates);
    }
    cell_span.AddArg("candidates",
                     static_cast<std::int64_t>(empty_candidates.size() +
                                               nonempty_candidates.size()));
    // Under GeoPrune, verify the tightest-bound empty first so its option
    // seeds the skyline for the dominance check (no-op otherwise).
    internal::OrderEmptiesForVerification(env, ctx, &empty_candidates);
    // One batched sweep per cell batch instead of per-pair searches.
    internal::PrefetchBatchDistances(env, ctx, empty_candidates,
                                     nonempty_candidates);
    PTAR_TRACE_SPAN("verify");
    for (const VehicleId v : empty_candidates) {
      if (internal::BudgetExhausted(ctx)) {
        complete = false;
        break;
      }
      internal::VerifyEmptyVehicle((*ctx.fleet)[v], env, ctx, skyline, stats);
    }
    for (const VehicleId v : nonempty_candidates) {
      if (!complete || internal::BudgetExhausted(ctx)) {
        complete = false;
        break;
      }
      internal::VerifyNonEmptyVehicle((*ctx.fleet)[v], env, ctx, hooks,
                                      skyline, stats);
    }
    if (!complete) break;
  }

  MatchResult result;
  {
    obs::TraceSpan span("skyline_sort");
    span.AddArg("options", static_cast<std::int64_t>(skyline.size()));
    result.options = skyline.Sorted();
  }
  stats.compdists = ctx.oracle->compdists();
  stats.elapsed_micros = timer.ElapsedMicros();
  result.stats = stats;
  // Injected oracle faults may have hidden reachable candidates; report the
  // skyline as partial so consumers know options may be missing.
  result.complete = complete && ctx.oracle->faults() == 0;
  return result;
}

}  // namespace ptar
