// Deterministic, cooperatively-checked work budget for anytime matching.
//
// A WorkBudget lets the engine bound how much search a matcher may spend on
// one request. The primary currency is *work units* — a deterministic count
// of cell expansions plus oracle point-to-point computations (compdists) —
// so a fixed budget yields bit-identical results regardless of wall-clock
// speed or thread count: every matcher slot runs serially over its own
// oracle, charges the same units in the same order, and stops at the same
// boundary. An optional wall-clock deadline rides on top for production use;
// it is explicitly nondeterministic and is off unless a deadline is set.
//
// Matchers check Exhausted() only at safe points — between grid cells and
// between vehicle verifications, never mid-vehicle — so an interrupted
// matcher still returns a *valid partial skyline*: every option it did emit
// was computed exactly; only candidates never visited are missing. The
// matcher tags such results MatchResult::complete = false.

#ifndef PTAR_RIDESHARE_WORK_BUDGET_H_
#define PTAR_RIDESHARE_WORK_BUDGET_H_

#include <cstdint>

#include "common/timer.h"

namespace ptar {

class WorkBudget {
 public:
  /// Unlimited budget (never exhausts). Useful as a do-nothing default.
  WorkBudget() = default;

  /// `max_units` > 0 bounds deterministic work units; 0 means unbounded.
  /// `deadline_micros` > 0 additionally bounds wall-clock time measured from
  /// construction (or the last Arm() call); 0 means no deadline.
  explicit WorkBudget(std::uint64_t max_units, double deadline_micros = 0.0)
      : max_units_(max_units), deadline_micros_(deadline_micros) {}

  /// Restarts the accounting for a new request: zeroes spent units and
  /// restarts the wall clock. Limits are unchanged.
  void Arm() {
    used_ = 0;
    deadline_hit_ = false;
    timer_.Reset();
  }

  /// Records `units` of completed work. Charging never blocks or throws;
  /// exhaustion is only observed at the caller's next Exhausted() check, so
  /// work already charged is work already (validly) done.
  void Charge(std::uint64_t units) { used_ += units; }

  /// True once the budget is spent. The work-unit check is deterministic;
  /// the deadline check (only when a deadline was configured) consults the
  /// wall clock and latches, so one slow probe degrades the rest of the
  /// request too.
  bool Exhausted() {
    if (max_units_ > 0 && used_ >= max_units_) return true;
    if (deadline_micros_ > 0.0 && !deadline_hit_ &&
        timer_.ElapsedMicros() >= deadline_micros_) {
      deadline_hit_ = true;
    }
    return deadline_hit_;
  }

  /// True if any limit is configured (a default-constructed budget is a
  /// no-op and matchers may skip charging entirely).
  bool limited() const { return max_units_ > 0 || deadline_micros_ > 0.0; }

  std::uint64_t used() const { return used_; }
  std::uint64_t max_units() const { return max_units_; }
  double deadline_micros() const { return deadline_micros_; }
  bool deadline_hit() const { return deadline_hit_; }

 private:
  std::uint64_t max_units_ = 0;
  double deadline_micros_ = 0.0;
  std::uint64_t used_ = 0;
  bool deadline_hit_ = false;
  Timer timer_;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_WORK_BUDGET_H_
