#include "rideshare/baseline_matcher.h"

#include "common/timer.h"
#include "rideshare/matcher_internal.h"
#include "rideshare/skyline.h"

namespace ptar {

MatchResult BaselineMatcher::Match(const Request& request, MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  internal::RequestEnv env;
  env.request = &request;
  env.direct = ctx.oracle->Dist(request.start, request.destination);
  env.fn = ctx.price_model.Ratio(request.riders);

  SkylineSet skyline;
  MatchStats stats;
  const InsertionHooks no_hooks;  // BA never prunes

  for (KineticTree& tree : *ctx.fleet) {
    if (tree.IsEmpty()) {
      internal::VerifyEmptyVehicle(tree, env, ctx, skyline, stats);
    } else {
      internal::VerifyNonEmptyVehicle(tree, env, ctx, no_hooks, skyline,
                                      stats);
    }
  }

  MatchResult result;
  result.options = skyline.Sorted();
  stats.compdists = ctx.oracle->compdists();
  stats.elapsed_micros = timer.ElapsedMicros();
  result.stats = stats;
  return result;
}

}  // namespace ptar
