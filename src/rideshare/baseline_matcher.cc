#include "rideshare/baseline_matcher.h"

#include "common/timer.h"
#include "obs/trace.h"
#include "rideshare/matcher_internal.h"
#include "rideshare/skyline.h"

namespace ptar {

MatchResult BaselineMatcher::Match(const Request& request, MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  internal::RequestEnv env;
  env.request = &request;
  env.direct = ctx.oracle->Dist(request.start, request.destination);
  env.fn = ctx.price_model.Ratio(request.riders);

  SkylineSet skyline;
  MatchStats stats;
  // BA never prunes on grid bounds; under --prune=ellipse it still applies
  // the GeoPrune hooks (plus the verify-time empty-vehicle check inside
  // VerifyEmptyVehicle), which is what makes a pruned full scan cheap.
  const InsertionHooks hooks =
      ctx.prune != nullptr
          ? internal::MakeEllipseHooks(env, *ctx.prune, skyline, &stats)
          : InsertionHooks{};

  // BA verifies the whole fleet, so the whole fleet is one candidate batch.
  // Only empty vehicles the group can board go into the counted batch:
  // VerifyEmptyVehicle computes no distance for the others.
  std::vector<VehicleId> batch_empty;
  std::vector<VehicleId> batch_nonempty;
  {
    obs::TraceSpan span("collect");
    for (const KineticTree& tree : *ctx.fleet) {
      if (tree.IsEmpty()) {
        if (tree.capacity() >= request.riders) {
          batch_empty.push_back(tree.vehicle());
        }
      } else {
        batch_nonempty.push_back(tree.vehicle());
      }
    }
    span.AddArg("empty", static_cast<std::int64_t>(batch_empty.size()));
    span.AddArg("nonempty",
                static_cast<std::int64_t>(batch_nonempty.size()));
  }
  internal::PrefetchBatchDistances(env, ctx, batch_empty, batch_nonempty);

  bool complete = true;
  {
    PTAR_TRACE_SPAN("verify");
    if (ctx.prune != nullptr) {
      // GeoPrune path: boardable empties first, tightest lower bound
      // leading, so the verify-time dominance check sees a seeded skyline
      // for the rest of the fleet. Ordering never changes the final
      // skyline — each verification is pure per vehicle and pruning
      // removes only dominated candidates.
      internal::OrderEmptiesForVerification(env, ctx, &batch_empty);
      for (const VehicleId v : batch_empty) {
        if (internal::BudgetExhausted(ctx)) {
          complete = false;
          break;
        }
        internal::VerifyEmptyVehicle((*ctx.fleet)[v], env, ctx, skyline,
                                     stats);
      }
      for (KineticTree& tree : *ctx.fleet) {
        if (!complete || internal::BudgetExhausted(ctx)) {
          complete = false;
          break;
        }
        if (tree.IsEmpty()) {
          // Boardable empties were verified above; the non-boardable rest
          // still pass through VerifyEmptyVehicle so verified accounting
          // matches the unpruned scan.
          if (tree.capacity() >= request.riders) continue;
          internal::VerifyEmptyVehicle(tree, env, ctx, skyline, stats);
        } else {
          internal::VerifyNonEmptyVehicle(tree, env, ctx, hooks, skyline,
                                          stats);
        }
      }
    } else {
      for (KineticTree& tree : *ctx.fleet) {
        if (internal::BudgetExhausted(ctx)) {
          complete = false;
          break;
        }
        if (tree.IsEmpty()) {
          internal::VerifyEmptyVehicle(tree, env, ctx, skyline, stats);
        } else {
          internal::VerifyNonEmptyVehicle(tree, env, ctx, hooks, skyline,
                                          stats);
        }
      }
    }
  }

  MatchResult result;
  {
    obs::TraceSpan span("skyline_sort");
    span.AddArg("options", static_cast<std::int64_t>(skyline.size()));
    result.options = skyline.Sorted();
  }
  stats.compdists = ctx.oracle->compdists();
  stats.elapsed_micros = timer.ElapsedMicros();
  result.stats = stats;
  result.complete = complete && ctx.oracle->faults() == 0;
  return result;
}

}  // namespace ptar
