// Price model (paper Definition 3).
//
// price = f_n * (dist_tr' - dist_tr + dist(s, d)),  f_n = 0.3 + (n-1)*0.1
//
// dist_tr is the vehicle's current (active) trip-schedule distance and
// dist_tr' the distance of the schedule that serves the new request. For an
// empty vehicle this reduces to f_n * (dist(c.l, s) + 2 * dist(s, d)).

#ifndef PTAR_RIDESHARE_PRICE_MODEL_H_
#define PTAR_RIDESHARE_PRICE_MODEL_H_

#include "common/logging.h"
#include "graph/types.h"

namespace ptar {

class PriceModel {
 public:
  /// base = per-rider ratio of a single rider, step = increment per extra
  /// rider. Paper defaults: f_n = 0.3 + (n - 1) * 0.1.
  explicit PriceModel(double base = 0.3, double step = 0.1)
      : base_(base), step_(step) {}

  /// The price ratio f_n for a group of n riders.
  double Ratio(int riders) const {
    PTAR_DCHECK(riders >= 1);
    return base_ + (riders - 1) * step_;
  }

  /// Price for a non-empty vehicle: `added_dist` = dist_tr' - dist_tr,
  /// `direct_dist` = dist(s, d).
  double Price(int riders, Distance added_dist, Distance direct_dist) const {
    return Ratio(riders) * (added_dist + direct_dist);
  }

  /// Price for an empty vehicle at pickup distance dist(c.l, s).
  double EmptyVehiclePrice(int riders, Distance pickup_dist,
                           Distance direct_dist) const {
    return Ratio(riders) * (pickup_dist + 2.0 * direct_dist);
  }

 private:
  double base_;
  double step_;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_PRICE_MODEL_H_
