// Dual-Side Search Algorithm (DSA, paper Algorithm 5).
//
// Expands grid cells from the start location and the destination
// simultaneously. Empty vehicles are verified from the start side
// (Lemmas 1-2). A non-empty vehicle is verified only once it survives the
// start-side filters (Lemmas 3-6) in some scanned cell *and* the
// destination-side filters (Lemmas 7-10) in some scanned cell — the
// intersection I = S1 u (S_s n S3) u (S_d n S2) of Algorithm 5.

#ifndef PTAR_RIDESHARE_DSA_MATCHER_H_
#define PTAR_RIDESHARE_DSA_MATCHER_H_

#include "rideshare/matcher.h"

namespace ptar {

class DsaMatcher : public Matcher {
 public:
  explicit DsaMatcher(double verified_grid_fraction = 0.16,
                      const PruningConfig& pruning = PruningConfig{})
      : fraction_(verified_grid_fraction), pruning_(pruning) {}

  std::string name() const override { return "DSA"; }
  MatchResult Match(const Request& request, MatchContext& ctx) override;

  double fraction() const { return fraction_; }
  const PruningConfig& pruning() const { return pruning_; }

 private:
  double fraction_;
  PruningConfig pruning_;
};

}  // namespace ptar

#endif  // PTAR_RIDESHARE_DSA_MATCHER_H_
