#include "obs/version.h"

namespace ptar::obs {

#ifndef PTAR_GIT_DESCRIBE
#define PTAR_GIT_DESCRIBE "unknown"
#endif

const char* GitDescribe() { return PTAR_GIT_DESCRIBE; }

}  // namespace ptar::obs
