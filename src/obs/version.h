// Build provenance for machine-readable outputs.

#ifndef PTAR_OBS_VERSION_H_
#define PTAR_OBS_VERSION_H_

namespace ptar::obs {

/// `git describe --always --dirty` of the source tree at configure time
/// ("unknown" when the build was configured outside a git checkout). Every
/// versioned JSON artifact (run reports, BENCH_*.json) embeds this so runs
/// can be attributed to a revision after the fact.
const char* GitDescribe();

}  // namespace ptar::obs

#endif  // PTAR_OBS_VERSION_H_
