// Metrics registry: one mergeable home for every cost measure a run
// produces — named counters (CounterSet-compatible), oracle batching stats
// (BatchStats), and fixed log-bucket latency histograms.
//
// Naming convention (relied on by tests and tooling): metric names are
// slash-separated paths, "<subsystem>/<name>" or
// "matcher/<algo>/<phase>/<name>". Names ending in "_us", "_ms" or
// "_micros" hold wall-clock measurements and are NOT deterministic across
// runs; everything else (counts, candidate totals) must be bit-identical
// for identical seeds regardless of thread count. obs_metrics_test
// enforces the split.
//
// The registry itself is single-threaded, like CounterSet: each owner
// (engine, matcher slot, bench row) fills its own and merges after joining.

#ifndef PTAR_OBS_METRICS_H_
#define PTAR_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/counters.h"

namespace ptar::obs {

/// Fixed-size logarithmic-bucket histogram for latency-style positive
/// samples. Unlike SampleSummary it is O(1) memory regardless of sample
/// count and merges across threads by adding bucket arrays; the price is
/// that Percentile() is exact only to one bucket width (buckets grow by
/// kGrowth ~ 19% per step, so quantiles are within ~±9% of the true value).
class LatencyHistogram {
 public:
  /// Bucket 0 is [0, kFirstBound); bucket i >= 1 is
  /// [kFirstBound * kGrowth^(i-1), kFirstBound * kGrowth^i); the last
  /// bucket absorbs overflow. With kFirstBound = 1e-3 and 128 buckets the
  /// covered range spans ~1e-3 .. 4e6 in whatever unit the caller uses
  /// (microseconds here) — sub-microsecond to over an hour.
  static constexpr int kNumBuckets = 128;
  static constexpr double kFirstBound = 1e-3;
  static constexpr double kGrowth = 1.1892071150027210667;  // 2^(1/4)

  void Add(double value);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double Sum() const { return sum_; }
  double Mean() const { return empty() ? 0.0 : sum_ / count_; }
  /// Exact extrema (tracked outside the buckets).
  double Min() const { return empty() ? 0.0 : min_; }
  double Max() const { return empty() ? 0.0 : max_; }

  /// Nearest-rank percentile, linearly interpolated inside the winning
  /// bucket; p in [0, 100]. Monotone in p. Clamped to [Min(), Max()].
  /// Degenerate registries get defined sentinels instead of UB: an empty
  /// histogram returns 0.0 for every p, a 1-sample histogram returns that
  /// sample exactly, and out-of-range p is clamped into [0, 100] (debug
  /// builds additionally DCHECK).
  double Percentile(double p) const;

  void MergeFrom(const LatencyHistogram& other);

  const std::uint64_t* buckets() const { return buckets_; }
  /// Inclusive lower bound of bucket i (0 for i == 0).
  static double BucketLowerBound(int i);

  friend bool operator==(const LatencyHistogram& a,
                         const LatencyHistogram& b) {
    if (a.count_ != b.count_ || a.sum_ != b.sum_ || a.min_ != b.min_ ||
        a.max_ != b.max_) {
      return false;
    }
    for (int i = 0; i < kNumBuckets; ++i) {
      if (a.buckets_[i] != b.buckets_[i]) return false;
    }
    return true;
  }

 private:
  static int BucketIndex(double value);

  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Monotonic named counter (creates at 0 on first touch).
  void AddCounter(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t Counter(const std::string& name) const;

  /// Named histogram, created empty on first access.
  LatencyHistogram& Histogram(const std::string& name);
  /// Null if the histogram was never touched.
  const LatencyHistogram* FindHistogram(const std::string& name) const;

  /// Folds a CounterSet in under `prefix` ("prefix/<counter name>"). This
  /// is the sanctioned hand-off from the per-matcher CounterSet bags into
  /// the unified registry.
  void MergeCounterSet(std::string_view prefix, const CounterSet& set);

  /// Folds the oracle's batching stats in under `prefix` (one counter per
  /// BatchStats field).
  void MergeBatchStats(std::string_view prefix, const BatchStats& stats);

  /// Sums counters and histograms name-by-name.
  void MergeFrom(const MetricsRegistry& other);

  void Reset();

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }

  /// Whether `name` holds a wall-clock measurement (suffix convention
  /// above) and is therefore exempt from cross-run determinism checks.
  static bool IsTimingMetric(std::string_view name);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace ptar::obs

#endif  // PTAR_OBS_METRICS_H_
