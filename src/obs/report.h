// Versioned machine-readable run report.
//
// A run report is the export format for everything the paper's Section VII
// measures: per-matcher totals (compdists, verified vehicles, pruning
// hits), per-request latency histograms, and the unified metrics registry
// (engine phase timings, oracle batching stats, thread-pool queue stats).
// The JSON schema is documented in DESIGN.md "Observability"; bump
// kReportSchemaVersion on any incompatible change.
//
// Layering: obs knows nothing about the simulator, so the report consumes
// a neutral mirror of MatcherAggregate (MatcherReport). sim/run_report.h
// converts RunStats into a RunReport.

#ifndef PTAR_OBS_REPORT_H_
#define PTAR_OBS_REPORT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/windows.h"

namespace ptar::obs {

/// Version history:
///   1 — initial schema (tool/served/unserved/shared, matchers, metrics).
///   2 — adds the "robustness" object (shed_requests, partial_skylines,
///       ladder_requests). Purely additive: readers must treat a missing
///       object as all-zero, which ParseReportSummary does.
///   3 — adds the "pipeline" object (waves, conflicts, rematches,
///       serial_rematches) emitted by the request-parallel engine. Also
///       additive; missing (v1/v2, or a classic serial run) means all-zero.
///   4 — adds the "timeseries" object (window_seconds plus one flattened
///       entry per sim-time window: request/served/shed/conflict counts,
///       ladder occupancy, commit-latency count/p50/p99). Additive;
///       missing (v1-v3, or a producer with telemetry disabled) parses as
///       an empty timeseries.
inline constexpr int kReportSchemaVersion = 4;

/// Per-matcher slice of the report; field-for-field what Section VII's
/// tables need (totals plus the sums means are derived from).
struct MatcherReport {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t options_sum = 0;
  std::uint64_t verified_vehicles = 0;
  std::uint64_t compdists = 0;
  std::uint64_t scanned_cells = 0;
  std::uint64_t pruned_cells = 0;
  std::uint64_t pruned_vehicles = 0;
  double elapsed_micros = 0.0;
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  LatencyHistogram latency_ms;  ///< Per-request matching latency.
};

struct RunReport {
  std::string tool;  ///< Producing surface, e.g. "ptar_cli simulate".
  std::uint64_t served = 0;
  std::uint64_t unserved = 0;
  std::uint64_t shared = 0;
  /// Robustness block (schema v2): overload-shed requests, committing
  /// results truncated by a work budget, and per-degradation-level request
  /// counts (index = sim DegradeLevel: full / ssa / grid_scan / shed).
  std::uint64_t shed_requests = 0;
  std::uint64_t partial_skylines = 0;
  std::array<std::uint64_t, 4> ladder_requests{};
  /// Pipeline block (schema v3): request-parallel engine wave and
  /// conflict/re-match accounting. All-zero for classic serial runs.
  std::uint64_t waves = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t rematches = 0;
  std::uint64_t serial_rematches = 0;
  /// Timeseries block (schema v4): per-sim-time-window deltas from the
  /// engine's WindowedTelemetry. window_seconds == 0 (telemetry disabled)
  /// omits the block from the JSON.
  TimeseriesExport timeseries;
  std::vector<MatcherReport> matchers;
  MetricsRegistry metrics;
};

/// Renders the report (schema_version and git describe included).
std::string RunReportToJson(const RunReport& report);

/// Writes the report's fields (tool .. metrics, no schema envelope) into an
/// already-open JSON object. Lets multi-row emitters (the bench harness)
/// embed one report per row under a single schema header.
void WriteRunReportFieldsJson(class JsonWriter& writer,
                              const RunReport& report);

Status WriteRunReport(const RunReport& report, const std::string& path);

/// Headline fields a consumer can pull back out of a serialized report
/// without a JSON library.
struct ReportSummary {
  int schema_version = 0;
  std::uint64_t served = 0;
  std::uint64_t unserved = 0;
  std::uint64_t shared = 0;
  std::uint64_t shed_requests = 0;
  std::uint64_t partial_skylines = 0;
  std::array<std::uint64_t, 4> ladder_requests{};
  std::uint64_t waves = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t rematches = 0;
  std::uint64_t serial_rematches = 0;
};

/// Extracts the summary from report JSON produced by RunReportToJson.
/// Back-compat: v1 reports (no "robustness" object) parse with the
/// robustness fields zero. Fails on a missing/garbled schema_version or a
/// version newer than kReportSchemaVersion. This is a targeted scanner for
/// the report's own layout, not a general JSON parser.
StatusOr<ReportSummary> ParseReportSummary(const std::string& json);

/// One parsed window of the v4 "timeseries" block — mirrors what the
/// writer flattens out of a WindowExport.
struct WindowSummary {
  double start = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t unserved = 0;
  std::uint64_t shed = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t rematches = 0;
  std::uint64_t partial = 0;
  std::array<std::uint64_t, 4> ladder{};
  std::uint64_t commit_count = 0;
  double commit_p50_us = 0.0;
  double commit_p99_us = 0.0;
};

struct TimeseriesSummary {
  double window_seconds = 0.0;  ///< 0 = block absent (pre-v4 or disabled).
  std::vector<WindowSummary> windows;
};

/// Extracts the "timeseries" block from report JSON. A report without the
/// block (v1-v3, or telemetry disabled) parses OK as an empty summary —
/// same additive-evolution contract as ParseReportSummary's blocks.
StatusOr<TimeseriesSummary> ParseTimeseries(const std::string& json);

/// Serializes one histogram as an object ({count, sum, min, max, mean,
/// p50, p95, p99, buckets: [[index, count], ...]}). Shared with the bench
/// emitter.
void WriteHistogramJson(class JsonWriter& writer,
                        const LatencyHistogram& histogram);

/// Serializes a registry as {"counters": {...}, "histograms": {...}}.
void WriteMetricsJson(class JsonWriter& writer,
                      const MetricsRegistry& metrics);

}  // namespace ptar::obs

#endif  // PTAR_OBS_REPORT_H_
