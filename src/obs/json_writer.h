// Minimal streaming JSON writer used by the run-report and bench emitters.
//
// Produces deterministic, human-diffable output: two-space indentation,
// keys in insertion order, doubles via "%.6f" unless written as raw. The
// writer checks nesting with DCHECKs; it is for trusted internal emitters,
// not a general-purpose serializer.

#ifndef PTAR_OBS_JSON_WRITER_H_
#define PTAR_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ptar::obs {

class JsonWriter {
 public:
  std::string TakeResult();

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Starts a named value inside an object; follow with a value or Begin*.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void UInt(std::uint64_t value);
  void Double(double value);
  void Bool(bool value);

  // Conveniences for the common key/value cases.
  void KV(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void KV(std::string_view key, std::int64_t value) {
    Key(key);
    Int(value);
  }
  void KV(std::string_view key, std::uint64_t value) {
    Key(key);
    UInt(value);
  }
  void KV(std::string_view key, double value) {
    Key(key);
    Double(value);
  }

  static std::string Escape(std::string_view raw);

 private:
  /// One frame per open container: whether it is an array and whether a
  /// value has been emitted (for comma placement).
  struct Frame {
    bool is_array = false;
    bool has_value = false;
  };

  void BeforeValue();
  void Indent();

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace ptar::obs

#endif  // PTAR_OBS_JSON_WRITER_H_
