#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json_writer.h"
#include "obs/version.h"

namespace ptar::obs {

void WriteHistogramJson(JsonWriter& writer,
                        const LatencyHistogram& histogram) {
  writer.BeginObject();
  writer.KV("count", histogram.count());
  writer.KV("sum", histogram.Sum());
  writer.KV("min", histogram.Min());
  writer.KV("max", histogram.Max());
  writer.KV("mean", histogram.Mean());
  writer.KV("p50", histogram.Percentile(50));
  writer.KV("p95", histogram.Percentile(95));
  writer.KV("p99", histogram.Percentile(99));
  // Sparse bucket encoding: [index, count] pairs for non-empty buckets;
  // bucket i covers [BucketLowerBound(i), BucketLowerBound(i + 1)).
  writer.Key("buckets");
  writer.BeginArray();
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    if (histogram.buckets()[i] == 0) continue;
    writer.BeginArray();
    writer.Int(i);
    writer.UInt(histogram.buckets()[i]);
    writer.EndArray();
  }
  writer.EndArray();
  writer.EndObject();
}

void WriteMetricsJson(JsonWriter& writer, const MetricsRegistry& metrics) {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : metrics.counters()) {
    writer.KV(name, value);
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, histogram] : metrics.histograms()) {
    writer.Key(name);
    WriteHistogramJson(writer, histogram);
  }
  writer.EndObject();
  writer.EndObject();
}

void WriteRunReportFieldsJson(JsonWriter& writer, const RunReport& report) {
  writer.KV("tool", report.tool);
  writer.KV("served", report.served);
  writer.KV("unserved", report.unserved);
  writer.KV("shared", report.shared);
  writer.Key("robustness");
  writer.BeginObject();
  writer.KV("shed_requests", report.shed_requests);
  writer.KV("partial_skylines", report.partial_skylines);
  writer.Key("ladder_requests");
  writer.BeginArray();
  for (const std::uint64_t n : report.ladder_requests) writer.UInt(n);
  writer.EndArray();
  writer.EndObject();
  writer.Key("pipeline");
  writer.BeginObject();
  writer.KV("waves", report.waves);
  writer.KV("conflicts", report.conflicts);
  writer.KV("rematches", report.rematches);
  writer.KV("serial_rematches", report.serial_rematches);
  writer.EndObject();
  // v4 timeseries block; omitted entirely when telemetry was disabled so
  // pre-v4 consumers and minimal producers keep byte-stable output.
  if (report.timeseries.window_seconds > 0.0) {
    writer.Key("timeseries");
    writer.BeginObject();
    writer.KV("window_seconds", report.timeseries.window_seconds);
    writer.Key("windows");
    writer.BeginArray();
    for (const WindowExport& w : report.timeseries.windows) {
      writer.BeginObject();
      writer.KV("start", w.start);
      writer.KV("requests", w.requests);
      writer.KV("served", w.served);
      writer.KV("unserved", w.unserved);
      writer.KV("shed", w.shed);
      writer.KV("conflicts", w.conflicts);
      writer.KV("rematches", w.rematches);
      writer.KV("partial", w.partial);
      writer.Key("ladder");
      writer.BeginArray();
      for (const std::uint64_t n : w.ladder) writer.UInt(n);
      writer.EndArray();
      writer.KV("commit_count", w.commit_latency_us.count());
      writer.KV("commit_p50_us", w.commit_latency_us.Percentile(50));
      writer.KV("commit_p99_us", w.commit_latency_us.Percentile(99));
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.Key("matchers");
  writer.BeginArray();
  for (const MatcherReport& m : report.matchers) {
    writer.BeginObject();
    writer.KV("name", m.name);
    writer.KV("requests", m.requests);
    writer.KV("options_sum", m.options_sum);
    writer.KV("verified_vehicles", m.verified_vehicles);
    writer.KV("compdists", m.compdists);
    writer.KV("scanned_cells", m.scanned_cells);
    writer.KV("pruned_cells", m.pruned_cells);
    writer.KV("pruned_vehicles", m.pruned_vehicles);
    writer.KV("elapsed_micros", m.elapsed_micros);
    writer.KV("precision_sum", m.precision_sum);
    writer.KV("recall_sum", m.recall_sum);
    writer.Key("latency_ms");
    WriteHistogramJson(writer, m.latency_ms);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  WriteMetricsJson(writer, report.metrics);
}

std::string RunReportToJson(const RunReport& report) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema_version",
            static_cast<std::int64_t>(kReportSchemaVersion));
  writer.KV("git_describe", GitDescribe());
  WriteRunReportFieldsJson(writer, report);
  writer.EndObject();
  return writer.TakeResult();
}

namespace {

/// Finds `"key":` and parses the unsigned integer after it. Keys are
/// matched with their opening quote, so metric names that merely end in
/// `key` (e.g. "degrade/shed_requests") cannot shadow a report field.
bool ScanUInt(const std::string& json, const std::string& key,
              std::uint64_t* out, std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  const char* start = json.c_str() + pos + needle.size();
  const unsigned long long value = std::strtoull(start, &end, 10);
  if (end == start) return false;
  *out = value;
  return true;
}

/// Like ScanUInt but only accepts a match strictly inside [from, until) —
/// the bound that makes per-window scanning safe even though window fields
/// reuse top-level key names ("requests", "served", ...).
bool ScanUIntWithin(const std::string& json, const std::string& key,
                    std::size_t from, std::size_t until,
                    std::uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle, from);
  if (pos == std::string::npos || pos >= until) return false;
  char* end = nullptr;
  const char* start = json.c_str() + pos + needle.size();
  const unsigned long long value = std::strtoull(start, &end, 10);
  if (end == start) return false;
  *out = value;
  return true;
}

bool ScanDoubleWithin(const std::string& json, const std::string& key,
                      std::size_t from, std::size_t until, double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle, from);
  if (pos == std::string::npos || pos >= until) return false;
  char* end = nullptr;
  const char* start = json.c_str() + pos + needle.size();
  const double value = std::strtod(start, &end);
  if (end == start) return false;
  *out = value;
  return true;
}

}  // namespace

StatusOr<ReportSummary> ParseReportSummary(const std::string& json) {
  ReportSummary summary;
  std::uint64_t version = 0;
  if (!ScanUInt(json, "schema_version", &version)) {
    return Status::InvalidArgument("report has no parsable schema_version");
  }
  summary.schema_version = static_cast<int>(version);
  if (summary.schema_version < 1 ||
      summary.schema_version > kReportSchemaVersion) {
    return Status::InvalidArgument(
        "unsupported report schema_version " +
        std::to_string(summary.schema_version) + " (reader supports 1.." +
        std::to_string(kReportSchemaVersion) + ")");
  }
  ScanUInt(json, "served", &summary.served);
  ScanUInt(json, "unserved", &summary.unserved);
  ScanUInt(json, "shared", &summary.shared);
  // v2 robustness block; absent (v1) means all-zero.
  const std::size_t robustness = json.find("\"robustness\":");
  if (robustness != std::string::npos) {
    ScanUInt(json, "shed_requests", &summary.shed_requests, robustness);
    ScanUInt(json, "partial_skylines", &summary.partial_skylines,
             robustness);
    const std::size_t ladder = json.find("\"ladder_requests\":", robustness);
    if (ladder != std::string::npos) {
      const char* cursor = json.c_str() + ladder;
      cursor = std::strchr(cursor, '[');
      for (std::size_t i = 0;
           cursor != nullptr && i < summary.ladder_requests.size(); ++i) {
        char* end = nullptr;
        summary.ladder_requests[i] = std::strtoull(cursor + 1, &end, 10);
        cursor = (end != nullptr && *end == ',') ? end : nullptr;
      }
    }
  }
  // v3 pipeline block; absent (v1/v2) means all-zero.
  const std::size_t pipeline = json.find("\"pipeline\":");
  if (pipeline != std::string::npos) {
    ScanUInt(json, "waves", &summary.waves, pipeline);
    ScanUInt(json, "conflicts", &summary.conflicts, pipeline);
    ScanUInt(json, "rematches", &summary.rematches, pipeline);
    ScanUInt(json, "serial_rematches", &summary.serial_rematches, pipeline);
  }
  return summary;
}

StatusOr<TimeseriesSummary> ParseTimeseries(const std::string& json) {
  TimeseriesSummary ts;
  std::uint64_t version = 0;
  if (!ScanUInt(json, "schema_version", &version)) {
    return Status::InvalidArgument("report has no parsable schema_version");
  }
  if (version < 1 || version > static_cast<std::uint64_t>(
                                   kReportSchemaVersion)) {
    return Status::InvalidArgument(
        "unsupported report schema_version " + std::to_string(version) +
        " (reader supports 1.." + std::to_string(kReportSchemaVersion) +
        ")");
  }
  const std::size_t block = json.find("\"timeseries\":");
  if (block == std::string::npos) return ts;  // pre-v4 or disabled: empty.
  // The block is emitted right before "matchers"; that key (or the end of
  // the document, for hand-rolled fixtures) bounds every scan below.
  std::size_t block_end = json.find("\"matchers\":", block);
  if (block_end == std::string::npos) block_end = json.size();
  if (!ScanDoubleWithin(json, "window_seconds", block, block_end,
                        &ts.window_seconds)) {
    return Status::InvalidArgument(
        "timeseries block has no parsable window_seconds");
  }
  // Each window object starts with its "start" key; consecutive
  // occurrences delimit the per-window scan regions.
  std::size_t pos = json.find("\"start\":", block);
  while (pos != std::string::npos && pos < block_end) {
    std::size_t next = json.find("\"start\":", pos + 1);
    const std::size_t end =
        (next == std::string::npos || next > block_end) ? block_end : next;
    WindowSummary w;
    ScanDoubleWithin(json, "start", pos, end, &w.start);
    ScanUIntWithin(json, "requests", pos, end, &w.requests);
    ScanUIntWithin(json, "served", pos, end, &w.served);
    ScanUIntWithin(json, "unserved", pos, end, &w.unserved);
    ScanUIntWithin(json, "shed", pos, end, &w.shed);
    ScanUIntWithin(json, "conflicts", pos, end, &w.conflicts);
    ScanUIntWithin(json, "rematches", pos, end, &w.rematches);
    ScanUIntWithin(json, "partial", pos, end, &w.partial);
    const std::size_t ladder = json.find("\"ladder\":", pos);
    if (ladder != std::string::npos && ladder < end) {
      const char* cursor = std::strchr(json.c_str() + ladder, '[');
      for (std::size_t i = 0; cursor != nullptr && i < w.ladder.size();
           ++i) {
        char* num_end = nullptr;
        w.ladder[i] = std::strtoull(cursor + 1, &num_end, 10);
        cursor = (num_end != nullptr && *num_end == ',') ? num_end : nullptr;
      }
    }
    ScanUIntWithin(json, "commit_count", pos, end, &w.commit_count);
    ScanDoubleWithin(json, "commit_p50_us", pos, end, &w.commit_p50_us);
    ScanDoubleWithin(json, "commit_p99_us", pos, end, &w.commit_p99_us);
    ts.windows.push_back(w);
    pos = next;
  }
  return ts;
}

Status WriteRunReport(const RunReport& report, const std::string& path) {
  const std::string json = RunReportToJson(report);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open report file: " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return Status::IoError("error writing report file: " + path);
  }
  return Status::OK();
}

}  // namespace ptar::obs
