#include "obs/report.h"

#include <cstdio>

#include "obs/json_writer.h"
#include "obs/version.h"

namespace ptar::obs {

void WriteHistogramJson(JsonWriter& writer,
                        const LatencyHistogram& histogram) {
  writer.BeginObject();
  writer.KV("count", histogram.count());
  writer.KV("sum", histogram.Sum());
  writer.KV("min", histogram.Min());
  writer.KV("max", histogram.Max());
  writer.KV("mean", histogram.Mean());
  writer.KV("p50", histogram.Percentile(50));
  writer.KV("p95", histogram.Percentile(95));
  writer.KV("p99", histogram.Percentile(99));
  // Sparse bucket encoding: [index, count] pairs for non-empty buckets;
  // bucket i covers [BucketLowerBound(i), BucketLowerBound(i + 1)).
  writer.Key("buckets");
  writer.BeginArray();
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    if (histogram.buckets()[i] == 0) continue;
    writer.BeginArray();
    writer.Int(i);
    writer.UInt(histogram.buckets()[i]);
    writer.EndArray();
  }
  writer.EndArray();
  writer.EndObject();
}

void WriteMetricsJson(JsonWriter& writer, const MetricsRegistry& metrics) {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : metrics.counters()) {
    writer.KV(name, value);
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, histogram] : metrics.histograms()) {
    writer.Key(name);
    WriteHistogramJson(writer, histogram);
  }
  writer.EndObject();
  writer.EndObject();
}

void WriteRunReportFieldsJson(JsonWriter& writer, const RunReport& report) {
  writer.KV("tool", report.tool);
  writer.KV("served", report.served);
  writer.KV("unserved", report.unserved);
  writer.KV("shared", report.shared);
  writer.Key("matchers");
  writer.BeginArray();
  for (const MatcherReport& m : report.matchers) {
    writer.BeginObject();
    writer.KV("name", m.name);
    writer.KV("requests", m.requests);
    writer.KV("options_sum", m.options_sum);
    writer.KV("verified_vehicles", m.verified_vehicles);
    writer.KV("compdists", m.compdists);
    writer.KV("scanned_cells", m.scanned_cells);
    writer.KV("pruned_cells", m.pruned_cells);
    writer.KV("pruned_vehicles", m.pruned_vehicles);
    writer.KV("elapsed_micros", m.elapsed_micros);
    writer.KV("precision_sum", m.precision_sum);
    writer.KV("recall_sum", m.recall_sum);
    writer.Key("latency_ms");
    WriteHistogramJson(writer, m.latency_ms);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  WriteMetricsJson(writer, report.metrics);
}

std::string RunReportToJson(const RunReport& report) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema_version",
            static_cast<std::int64_t>(kReportSchemaVersion));
  writer.KV("git_describe", GitDescribe());
  WriteRunReportFieldsJson(writer, report);
  writer.EndObject();
  return writer.TakeResult();
}

Status WriteRunReport(const RunReport& report, const std::string& path) {
  const std::string json = RunReportToJson(report);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open report file: " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return Status::IoError("error writing report file: " + path);
  }
  return Status::OK();
}

}  // namespace ptar::obs
