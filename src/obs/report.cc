#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json_writer.h"
#include "obs/version.h"

namespace ptar::obs {

void WriteHistogramJson(JsonWriter& writer,
                        const LatencyHistogram& histogram) {
  writer.BeginObject();
  writer.KV("count", histogram.count());
  writer.KV("sum", histogram.Sum());
  writer.KV("min", histogram.Min());
  writer.KV("max", histogram.Max());
  writer.KV("mean", histogram.Mean());
  writer.KV("p50", histogram.Percentile(50));
  writer.KV("p95", histogram.Percentile(95));
  writer.KV("p99", histogram.Percentile(99));
  // Sparse bucket encoding: [index, count] pairs for non-empty buckets;
  // bucket i covers [BucketLowerBound(i), BucketLowerBound(i + 1)).
  writer.Key("buckets");
  writer.BeginArray();
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    if (histogram.buckets()[i] == 0) continue;
    writer.BeginArray();
    writer.Int(i);
    writer.UInt(histogram.buckets()[i]);
    writer.EndArray();
  }
  writer.EndArray();
  writer.EndObject();
}

void WriteMetricsJson(JsonWriter& writer, const MetricsRegistry& metrics) {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : metrics.counters()) {
    writer.KV(name, value);
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginObject();
  for (const auto& [name, histogram] : metrics.histograms()) {
    writer.Key(name);
    WriteHistogramJson(writer, histogram);
  }
  writer.EndObject();
  writer.EndObject();
}

void WriteRunReportFieldsJson(JsonWriter& writer, const RunReport& report) {
  writer.KV("tool", report.tool);
  writer.KV("served", report.served);
  writer.KV("unserved", report.unserved);
  writer.KV("shared", report.shared);
  writer.Key("robustness");
  writer.BeginObject();
  writer.KV("shed_requests", report.shed_requests);
  writer.KV("partial_skylines", report.partial_skylines);
  writer.Key("ladder_requests");
  writer.BeginArray();
  for (const std::uint64_t n : report.ladder_requests) writer.UInt(n);
  writer.EndArray();
  writer.EndObject();
  writer.Key("pipeline");
  writer.BeginObject();
  writer.KV("waves", report.waves);
  writer.KV("conflicts", report.conflicts);
  writer.KV("rematches", report.rematches);
  writer.KV("serial_rematches", report.serial_rematches);
  writer.EndObject();
  writer.Key("matchers");
  writer.BeginArray();
  for (const MatcherReport& m : report.matchers) {
    writer.BeginObject();
    writer.KV("name", m.name);
    writer.KV("requests", m.requests);
    writer.KV("options_sum", m.options_sum);
    writer.KV("verified_vehicles", m.verified_vehicles);
    writer.KV("compdists", m.compdists);
    writer.KV("scanned_cells", m.scanned_cells);
    writer.KV("pruned_cells", m.pruned_cells);
    writer.KV("pruned_vehicles", m.pruned_vehicles);
    writer.KV("elapsed_micros", m.elapsed_micros);
    writer.KV("precision_sum", m.precision_sum);
    writer.KV("recall_sum", m.recall_sum);
    writer.Key("latency_ms");
    WriteHistogramJson(writer, m.latency_ms);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  WriteMetricsJson(writer, report.metrics);
}

std::string RunReportToJson(const RunReport& report) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema_version",
            static_cast<std::int64_t>(kReportSchemaVersion));
  writer.KV("git_describe", GitDescribe());
  WriteRunReportFieldsJson(writer, report);
  writer.EndObject();
  return writer.TakeResult();
}

namespace {

/// Finds `"key":` and parses the unsigned integer after it. Keys are
/// matched with their opening quote, so metric names that merely end in
/// `key` (e.g. "degrade/shed_requests") cannot shadow a report field.
bool ScanUInt(const std::string& json, const std::string& key,
              std::uint64_t* out, std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  const char* start = json.c_str() + pos + needle.size();
  const unsigned long long value = std::strtoull(start, &end, 10);
  if (end == start) return false;
  *out = value;
  return true;
}

}  // namespace

StatusOr<ReportSummary> ParseReportSummary(const std::string& json) {
  ReportSummary summary;
  std::uint64_t version = 0;
  if (!ScanUInt(json, "schema_version", &version)) {
    return Status::InvalidArgument("report has no parsable schema_version");
  }
  summary.schema_version = static_cast<int>(version);
  if (summary.schema_version < 1 ||
      summary.schema_version > kReportSchemaVersion) {
    return Status::InvalidArgument(
        "unsupported report schema_version " +
        std::to_string(summary.schema_version) + " (reader supports 1.." +
        std::to_string(kReportSchemaVersion) + ")");
  }
  ScanUInt(json, "served", &summary.served);
  ScanUInt(json, "unserved", &summary.unserved);
  ScanUInt(json, "shared", &summary.shared);
  // v2 robustness block; absent (v1) means all-zero.
  const std::size_t robustness = json.find("\"robustness\":");
  if (robustness != std::string::npos) {
    ScanUInt(json, "shed_requests", &summary.shed_requests, robustness);
    ScanUInt(json, "partial_skylines", &summary.partial_skylines,
             robustness);
    const std::size_t ladder = json.find("\"ladder_requests\":", robustness);
    if (ladder != std::string::npos) {
      const char* cursor = json.c_str() + ladder;
      cursor = std::strchr(cursor, '[');
      for (std::size_t i = 0;
           cursor != nullptr && i < summary.ladder_requests.size(); ++i) {
        char* end = nullptr;
        summary.ladder_requests[i] = std::strtoull(cursor + 1, &end, 10);
        cursor = (end != nullptr && *end == ',') ? end : nullptr;
      }
    }
  }
  // v3 pipeline block; absent (v1/v2) means all-zero.
  const std::size_t pipeline = json.find("\"pipeline\":");
  if (pipeline != std::string::npos) {
    ScanUInt(json, "waves", &summary.waves, pipeline);
    ScanUInt(json, "conflicts", &summary.conflicts, pipeline);
    ScanUInt(json, "rematches", &summary.rematches, pipeline);
    ScanUInt(json, "serial_rematches", &summary.serial_rematches, pipeline);
  }
  return summary;
}

Status WriteRunReport(const RunReport& report, const std::string& path) {
  const std::string json = RunReportToJson(report);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open report file: " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return Status::IoError("error writing report file: " + path);
  }
  return Status::OK();
}

}  // namespace ptar::obs
