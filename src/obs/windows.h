// Windowed telemetry: a bounded ring of per-sim-time-window
// MetricsRegistry deltas, so a run's service quality is visible as a time
// series (requests/s, shed rate, conflict rate, commit-latency percentiles,
// ladder occupancy per window) instead of one whole-run aggregate.
//
// The engine asks for the registry of the window containing the current
// sim time (`At(sim_time)`) and bumps plain counters/histograms into it;
// everything else — window creation, gap skipping, and capacity — lives
// here. When the ring exceeds `max_windows`, the window width doubles and
// adjacent windows merge (MetricsRegistry is mergeable by construction),
// so memory stays O(max_windows) for arbitrarily long runs while the
// whole run remains covered.
//
// Window boundaries are sim-time, not wall-clock, so the window structure
// and every count in it are deterministic; only the timing-suffixed
// histograms inside (commit_latency_us) vary between equal-seed runs,
// matching the MetricsRegistry naming convention.

#ifndef PTAR_OBS_WINDOWS_H_
#define PTAR_OBS_WINDOWS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ptar::obs {

/// Metric vocabulary the engine records into each window; Export() reads
/// these names back out. Ladder occupancy counters are
/// "ladder/<level name>" using the sim layer's DegradeLevelName strings.
inline constexpr const char* kWindowRequests = "requests";
inline constexpr const char* kWindowServed = "served";
inline constexpr const char* kWindowUnserved = "unserved";
inline constexpr const char* kWindowShed = "shed";
inline constexpr const char* kWindowConflicts = "conflicts";
inline constexpr const char* kWindowRematches = "rematches";
inline constexpr const char* kWindowPartial = "partial";
inline constexpr const char* kWindowCommitLatencyUs = "commit_latency_us";
inline constexpr std::array<const char*, 4> kWindowLadderLevels = {
    "ladder/full", "ladder/ssa", "ladder/grid_scan", "ladder/shed"};

struct TelemetryOptions {
  /// Initial sim-time window width; <= 0 disables the aggregator entirely
  /// (At() then returns null and Export() is empty).
  double window_seconds = 60.0;
  /// Ring capacity. Exceeding it doubles the width and merges neighbours,
  /// so long runs keep full coverage at bounded memory.
  int max_windows = 256;
};

/// Flattened view of one window — the fields the report's "timeseries"
/// block serializes.
struct WindowExport {
  double start = 0.0;  ///< Window start, sim seconds.
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t unserved = 0;
  std::uint64_t shed = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t rematches = 0;
  std::uint64_t partial = 0;
  std::array<std::uint64_t, 4> ladder{};
  LatencyHistogram commit_latency_us;
};

struct TimeseriesExport {
  double window_seconds = 0.0;  ///< 0 = aggregator disabled / absent.
  std::vector<WindowExport> windows;
};

/// Headline signals of the newest window, for SLO feedback.
struct WindowSlo {
  std::uint64_t requests = 0;
  double p99_commit_us = 0.0;
  double shed_rate = 0.0;
};

class WindowedTelemetry {
 public:
  /// Disabled aggregator (window_seconds 0).
  WindowedTelemetry() : WindowedTelemetry(TelemetryOptions{0.0, 1}) {}
  explicit WindowedTelemetry(const TelemetryOptions& options);

  bool enabled() const { return options_.window_seconds > 0.0; }
  /// Current window width (>= the configured width; doubles on overflow).
  double window_seconds() const { return width_; }
  std::size_t num_windows() const { return windows_.size(); }

  /// Registry of the window containing `sim_time`, creating it on first
  /// touch (and coalescing the ring if that exceeds capacity). Null when
  /// disabled. Sim time is expected to be (weakly) monotone; an earlier
  /// time lands in its own window if it still exists, else the oldest.
  MetricsRegistry* At(double sim_time);

  /// True when At(sim_time) would open a new (newer) window — the moment
  /// the previous window's stats are final and may feed SLO decisions.
  bool WouldOpenNew(double sim_time) const;

  /// Flattens the ring for the run report. Windows are in time order;
  /// empty (never-touched) spans between them are simply absent.
  TimeseriesExport Export() const;

  /// Newest window's headline signals (zero when empty/disabled).
  WindowSlo CurrentSlo() const;

 private:
  struct Window {
    std::int64_t index = 0;  ///< floor(start / width_).
    MetricsRegistry metrics;
  };

  void CoalesceIfNeeded();

  TelemetryOptions options_;
  double width_ = 0.0;
  std::vector<Window> windows_;  ///< Sorted by index (appended in order).
};

}  // namespace ptar::obs

#endif  // PTAR_OBS_WINDOWS_H_
