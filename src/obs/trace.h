// Structured tracing: a thread-safe, lock-cheap recorder of timed spans
// that serializes to Chrome trace-event JSON (loadable in chrome://tracing
// and Perfetto).
//
// Design constraints (see DESIGN.md "Observability"):
//  - Disabled is the default and must cost a single relaxed atomic load per
//    span site: no allocation, no lock, no clock read. Benches run with
//    tracing off, so the hot path may be instrumented freely.
//  - Enabled recording is lock-free on the steady path: every thread owns a
//    private event buffer (registered once under a mutex on first use) and
//    appends without synchronization. Buffers are merged at WriteJson time,
//    after all spans have closed.
//  - Span nesting is implicit: RAII spans on one thread open/close in stack
//    order, so the emitted complete events ("ph":"X") nest by construction.
//
// Usage:
//   TraceRecorder::Global().Start();
//   { PTAR_TRACE_SPAN("verify"); ... }            // anonymous scoped span
//   { TraceSpan span("collect"); span.AddArg("candidates", n); ... }
//   TraceRecorder::Global().Stop();
//   TraceRecorder::Global().WriteJson("trace.json");

#ifndef PTAR_OBS_TRACE_H_
#define PTAR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ptar::obs {

/// One recorded span: a Chrome trace-event "complete" event. Args are a
/// fixed-capacity set of integer key/values (candidate counts and the like)
/// so recording never allocates per-arg.
struct TraceEvent {
  static constexpr int kMaxArgs = 3;
  const char* name = "";            ///< Static string (macro literal).
  std::int64_t ts_micros = 0;       ///< Start, relative to Start().
  std::int64_t dur_micros = 0;
  /// 'X' = complete (RAII span, stack-nested); 'i' = thread-scoped instant
  /// (point measurements like queue waits, which may overlap freely).
  char ph = 'X';
  int num_args = 0;
  const char* arg_keys[kMaxArgs] = {nullptr, nullptr, nullptr};
  std::int64_t arg_values[kMaxArgs] = {0, 0, 0};
};

namespace internal {

/// Per-thread event sink. Owned by the recorder (so it outlives the thread);
/// appended to by exactly one thread while recording is enabled.
struct TraceBuffer {
  int tid = 0;                      ///< Dense track id, registration order.
  std::vector<TraceEvent> events;
};

}  // namespace internal

class TraceRecorder {
 public:
  /// Process-wide recorder; span macros record here. Never destroyed.
  static TraceRecorder& Global();

  /// Enables recording and clears previously recorded events. Thread
  /// buffers (and their track ids) persist across Start() calls.
  void Start();

  /// Disables recording. Spans still open keep their buffer pointer and
  /// will append on close; call this only after joining instrumented work.
  void Stop();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The calling thread's buffer, registering it on first use. Only valid
  /// to append from that thread.
  internal::TraceBuffer* ThisThreadBuffer();

  /// Records a thread-scoped instant event stamped now, carrying
  /// `dur_micros` as a "wait_us" arg (for intervals measured after the
  /// fact, like queue waits — they may overlap on a track, so they must
  /// not be complete events). No-op when disabled.
  void RecordEndingNow(const char* name, double dur_micros);

  std::int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - epoch_)
        .count();
  }

  /// Serializes every buffer as Chrome trace-event JSON. Call after Stop();
  /// events appended concurrently with the write are not guaranteed to
  /// appear.
  Status WriteJson(const std::string& path);

  // --- Introspection (tests; see obs_overhead_test). ---
  /// Events appended since the last Start() across all threads. O(threads).
  std::uint64_t events_recorded();
  /// Thread buffers ever registered (never shrinks).
  std::size_t buffer_count();

 private:
  using Clock = std::chrono::steady_clock;

  TraceRecorder() : epoch_(Clock::now()) {}

  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;  ///< ts base; fixed for the process lifetime.
  std::mutex mu_;            ///< Guards buffers_ registration / iteration.
  std::vector<std::unique_ptr<internal::TraceBuffer>> buffers_;
};

/// RAII scoped span. Inactive (a single branch, no clock read) when the
/// global recorder is disabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    TraceRecorder& rec = TraceRecorder::Global();
    if (!rec.enabled()) return;
    buffer_ = rec.ThisThreadBuffer();
    event_.name = name;
    event_.ts_micros = rec.NowMicros();
  }

  ~TraceSpan() {
    if (buffer_ == nullptr) return;
    event_.dur_micros =
        TraceRecorder::Global().NowMicros() - event_.ts_micros;
    buffer_->events.push_back(event_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an integer annotation (candidate counts, cell ids, ...).
  /// `key` must be a static string. Silently drops args past kMaxArgs and
  /// is a no-op on an inactive span.
  void AddArg(const char* key, std::int64_t value) {
    if (buffer_ == nullptr || event_.num_args >= TraceEvent::kMaxArgs) {
      return;
    }
    event_.arg_keys[event_.num_args] = key;
    event_.arg_values[event_.num_args] = value;
    ++event_.num_args;
  }

 private:
  internal::TraceBuffer* buffer_ = nullptr;  ///< Null => span is inactive.
  TraceEvent event_;
};

/// Returns a process-lifetime stable copy of `name` for use as a span
/// name. Span events store raw `const char*`s, so dynamic names (e.g.
/// "match_" + matcher->name()) must be interned. Intended for a small
/// bounded set of names, not per-event payloads: entries are never freed.
const char* InternSpanName(std::string_view name);

}  // namespace ptar::obs

#define PTAR_TRACE_CONCAT_INNER(a, b) a##b
#define PTAR_TRACE_CONCAT(a, b) PTAR_TRACE_CONCAT_INNER(a, b)

/// Anonymous scoped span covering the rest of the enclosing block.
#define PTAR_TRACE_SPAN(name) \
  ::ptar::obs::TraceSpan PTAR_TRACE_CONCAT(ptar_trace_span_, __LINE__)(name)

#endif  // PTAR_OBS_TRACE_H_
