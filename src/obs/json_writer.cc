#include "obs/json_writer.h"

#include <cstdio>

#include "common/logging.h"

namespace ptar::obs {

std::string JsonWriter::TakeResult() {
  PTAR_DCHECK(stack_.empty()) << "unclosed JSON container";
  out_.push_back('\n');
  return std::move(out_);
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string escaped;
  escaped.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          escaped += buf;
        } else {
          escaped.push_back(c);
        }
    }
  }
  return escaped;
}

void JsonWriter::Indent() {
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;  // top-level value
  if (pending_key_) {
    pending_key_ = false;
    return;  // Key() already positioned us
  }
  PTAR_DCHECK(stack_.back().is_array) << "object member needs a Key()";
  if (stack_.back().has_value) out_.push_back(',');
  out_.push_back('\n');
  Indent();
  stack_.back().has_value = true;
}

void JsonWriter::Key(std::string_view key) {
  PTAR_DCHECK(!stack_.empty() && !stack_.back().is_array);
  if (stack_.back().has_value) out_.push_back(',');
  out_.push_back('\n');
  Indent();
  out_ += "\"" + Escape(key) + "\": ";
  stack_.back().has_value = true;
  pending_key_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back({/*is_array=*/false, /*has_value=*/false});
}

void JsonWriter::EndObject() {
  PTAR_DCHECK(!stack_.empty() && !stack_.back().is_array);
  const bool had_values = stack_.back().has_value;
  stack_.pop_back();
  if (had_values) {
    out_.push_back('\n');
    Indent();
  }
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back({/*is_array=*/true, /*has_value=*/false});
}

void JsonWriter::EndArray() {
  PTAR_DCHECK(!stack_.empty() && stack_.back().is_array);
  const bool had_values = stack_.back().has_value;
  stack_.pop_back();
  if (had_values) {
    out_.push_back('\n');
    Indent();
  }
  out_.push_back(']');
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += "\"" + Escape(value) + "\"";
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

}  // namespace ptar::obs
