#include "obs/windows.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ptar::obs {

namespace {

std::int64_t WindowIndex(double sim_time, double width) {
  return static_cast<std::int64_t>(std::floor(sim_time / width));
}

}  // namespace

WindowedTelemetry::WindowedTelemetry(const TelemetryOptions& options)
    : options_(options), width_(options.window_seconds) {
  PTAR_CHECK(options.max_windows >= 1)
      << "telemetry ring needs at least one window";
}

bool WindowedTelemetry::WouldOpenNew(double sim_time) const {
  if (!enabled()) return false;
  return windows_.empty() ||
         WindowIndex(sim_time, width_) > windows_.back().index;
}

MetricsRegistry* WindowedTelemetry::At(double sim_time) {
  if (!enabled()) return nullptr;
  const std::int64_t idx = WindowIndex(sim_time, width_);
  if (windows_.empty() || idx > windows_.back().index) {
    windows_.push_back(Window{idx, MetricsRegistry{}});
    CoalesceIfNeeded();
    return &windows_.back().metrics;
  }
  if (idx == windows_.back().index) return &windows_.back().metrics;
  // Out-of-order time (rare; sim time is weakly monotone). Reuse the
  // window if it still exists, else charge the oldest surviving one.
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (it->index == idx) return &it->metrics;
    if (it->index < idx) break;
  }
  return &windows_.front().metrics;
}

void WindowedTelemetry::CoalesceIfNeeded() {
  while (windows_.size() > static_cast<std::size_t>(options_.max_windows)) {
    width_ *= 2.0;
    std::vector<Window> merged;
    merged.reserve(windows_.size() / 2 + 1);
    for (Window& w : windows_) {
      // floor division keeps negative indices on the correct side.
      const std::int64_t idx =
          w.index >= 0 ? w.index / 2 : (w.index - 1) / 2;
      if (!merged.empty() && merged.back().index == idx) {
        merged.back().metrics.MergeFrom(w.metrics);
      } else {
        merged.push_back(Window{idx, std::move(w.metrics)});
      }
    }
    windows_ = std::move(merged);
  }
}

TimeseriesExport WindowedTelemetry::Export() const {
  TimeseriesExport out;
  if (!enabled()) return out;
  out.window_seconds = width_;
  out.windows.reserve(windows_.size());
  for (const Window& w : windows_) {
    WindowExport e;
    e.start = static_cast<double>(w.index) * width_;
    e.requests = w.metrics.Counter(kWindowRequests);
    e.served = w.metrics.Counter(kWindowServed);
    e.unserved = w.metrics.Counter(kWindowUnserved);
    e.shed = w.metrics.Counter(kWindowShed);
    e.conflicts = w.metrics.Counter(kWindowConflicts);
    e.rematches = w.metrics.Counter(kWindowRematches);
    e.partial = w.metrics.Counter(kWindowPartial);
    for (std::size_t i = 0; i < kWindowLadderLevels.size(); ++i) {
      e.ladder[i] = w.metrics.Counter(kWindowLadderLevels[i]);
    }
    if (const LatencyHistogram* h =
            w.metrics.FindHistogram(kWindowCommitLatencyUs)) {
      e.commit_latency_us = *h;
    }
    out.windows.push_back(std::move(e));
  }
  return out;
}

WindowSlo WindowedTelemetry::CurrentSlo() const {
  WindowSlo slo;
  if (windows_.empty()) return slo;
  const MetricsRegistry& m = windows_.back().metrics;
  slo.requests = m.Counter(kWindowRequests);
  if (slo.requests > 0) {
    slo.shed_rate = static_cast<double>(m.Counter(kWindowShed)) /
                    static_cast<double>(slo.requests);
  }
  if (const LatencyHistogram* h = m.FindHistogram(kWindowCommitLatencyUs)) {
    slo.p99_commit_us = h->Percentile(99.0);
  }
  return slo;
}

}  // namespace ptar::obs
