#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ptar::obs {

namespace {

/// log(kGrowth), precomputed for BucketIndex.
const double kLogGrowth = std::log(LatencyHistogram::kGrowth);

}  // namespace

int LatencyHistogram::BucketIndex(double value) {
  if (!(value >= kFirstBound)) return 0;  // also catches NaN and negatives
  const int i =
      1 + static_cast<int>(std::log(value / kFirstBound) / kLogGrowth);
  return std::min(i, kNumBuckets - 1);
}

double LatencyHistogram::BucketLowerBound(int i) {
  if (i <= 0) return 0.0;
  return kFirstBound * std::pow(kGrowth, i - 1);
}

void LatencyHistogram::Add(double value) {
  if (empty()) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
  ++buckets_[BucketIndex(value)];
}

double LatencyHistogram::Percentile(double p) const {
  if (empty()) return 0.0;  // sentinel: no samples, no quantile
  PTAR_DCHECK(p >= 0.0 && p <= 100.0 && !std::isnan(p));
  // Clamp in release builds too: a negative or NaN p would otherwise feed
  // a negative value into the uint64 cast below, which is UB.
  if (!(p > 0.0)) p = 0.0;
  if (p > 100.0) p = 100.0;
  if (count_ == 1) return min_;  // the single sample, exactly
  // Nearest-rank position among count_ samples (0-based), matching
  // SampleSummary's interpolated rank rounded to a sample.
  const auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] > rank) {
      // Interpolate inside the bucket by the rank's offset into it.
      const double lo = BucketLowerBound(i);
      const double hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : max_;
      const double frac = buckets_[i] == 1
                              ? 0.5
                              : static_cast<double>(rank - seen) /
                                    static_cast<double>(buckets_[i] - 1);
      const double value = lo + (std::max(hi, lo) - lo) * frac;
      return std::clamp(value, min_, max_);
    }
    seen += buckets_[i];
  }
  return max_;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (other.empty()) return;
  if (empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void MetricsRegistry::AddCounter(const std::string& name,
                                 std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

LatencyHistogram& MetricsRegistry::Histogram(const std::string& name) {
  return histograms_[name];
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::MergeCounterSet(std::string_view prefix,
                                      const CounterSet& set) {
  for (const auto& [name, value] : set.counters()) {
    counters_[std::string(prefix) + "/" + name] += value;
  }
}

void MetricsRegistry::MergeBatchStats(std::string_view prefix,
                                      const BatchStats& stats) {
  const std::string base(prefix);
  counters_[base + "/batch_calls"] += stats.batch_calls;
  counters_[base + "/sweeps"] += stats.sweeps;
  counters_[base + "/pairs_requested"] += stats.pairs_requested;
  counters_[base + "/pairs_from_cache"] += stats.pairs_from_cache;
  counters_[base + "/pairs_swept"] += stats.pairs_swept;
  counters_[base + "/warm_hits"] += stats.warm_hits;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].MergeFrom(histogram);
  }
}

void MetricsRegistry::Reset() {
  counters_.clear();
  histograms_.clear();
}

bool MetricsRegistry::IsTimingMetric(std::string_view name) {
  return name.ends_with("_us") || name.ends_with("_ms") ||
         name.ends_with("_micros");
}

}  // namespace ptar::obs
