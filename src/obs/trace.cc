#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_set>

namespace ptar::obs {

const char* InternSpanName(std::string_view name) {
  static std::mutex* mu = new std::mutex();
  static auto* interned = new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(*mu);
  return interned->emplace(name).first->c_str();
}

namespace {

/// Thread-local cache of this thread's buffer. The raw pointer stays valid
/// for the process lifetime because the recorder owns the buffer; a dying
/// thread simply abandons its (recorder-owned) buffer.
thread_local internal::TraceBuffer* tls_buffer = nullptr;

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) buffer->events.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
}

internal::TraceBuffer* TraceRecorder::ThisThreadBuffer() {
  if (tls_buffer != nullptr) return tls_buffer;
  std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_unique<internal::TraceBuffer>();
  buffer->tid = static_cast<int>(buffers_.size());
  buffer->events.reserve(1024);
  tls_buffer = buffer.get();
  buffers_.push_back(std::move(buffer));
  return tls_buffer;
}

void TraceRecorder::RecordEndingNow(const char* name, double dur_micros) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.ph = 'i';
  event.ts_micros = NowMicros();
  event.arg_keys[0] = "wait_us";
  event.arg_values[0] = static_cast<std::int64_t>(dur_micros);
  event.num_args = 1;
  ThisThreadBuffer()->events.push_back(event);
}

std::uint64_t TraceRecorder::events_recorded() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  return total;
}

std::size_t TraceRecorder::buffer_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

Status TraceRecorder::WriteJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  std::fprintf(f, "{\"traceEvents\":[\n");
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      for (const TraceEvent& e : buffer->events) {
        if (e.ph == 'X') {
          std::fprintf(
              f,
              "%s{\"name\":\"%s\",\"cat\":\"ptar\",\"ph\":\"X\","
              "\"ts\":%" PRId64 ",\"dur\":%" PRId64 ",\"pid\":1,\"tid\":%d",
              first ? "" : ",\n", e.name, e.ts_micros, e.dur_micros,
              buffer->tid);
        } else {
          // Thread-scoped instant ("s":"t"): a point on the track.
          std::fprintf(
              f,
              "%s{\"name\":\"%s\",\"cat\":\"ptar\",\"ph\":\"i\","
              "\"s\":\"t\",\"ts\":%" PRId64 ",\"pid\":1,\"tid\":%d",
              first ? "" : ",\n", e.name, e.ts_micros, buffer->tid);
        }
        if (e.num_args > 0) {
          std::fprintf(f, ",\"args\":{");
          for (int a = 0; a < e.num_args; ++a) {
            std::fprintf(f, "%s\"%s\":%" PRId64, a > 0 ? "," : "",
                         e.arg_keys[a], e.arg_values[a]);
          }
          std::fprintf(f, "}");
        }
        std::fprintf(f, "}");
        first = false;
      }
    }
  }
  std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\"}\n");
  if (std::fclose(f) != 0) {
    return Status::IoError("error writing trace file: " + path);
  }
  return Status::OK();
}

}  // namespace ptar::obs
