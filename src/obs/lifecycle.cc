#include "obs/lifecycle.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"
#include "obs/json_writer.h"

namespace ptar::obs {

namespace {

/// SplitMix64 finalizer over (seed, id): a pure, well-mixed sampling hash,
/// the same construction the fault injector uses for per-pair faults.
std::uint64_t MixId(std::uint64_t id, std::uint64_t seed) {
  std::uint64_t z = id + seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void AppendKV(std::string* out, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, value);
  *out += buf;
}

void AppendKV(std::string* out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6f", key, value);
  *out += buf;
}

void AppendKV(std::string* out, const char* key, const std::string& value) {
  *out += '"';
  *out += key;
  *out += "\":\"";
  *out += JsonWriter::Escape(value);
  *out += '"';
}

}  // namespace

std::string LifecycleEventToJsonLine(const LifecycleEvent& event,
                                     bool include_timing) {
  std::string line;
  line.reserve(256);
  line += '{';
  AppendKV(&line, "schema",
           static_cast<std::uint64_t>(kLifecycleSchemaVersion));
  line += ',';
  AppendKV(&line, "req", event.request);
  line += ',';
  AppendKV(&line, "t", event.submit_time);
  line += ',';
  AppendKV(&line, "wave", event.wave);
  line += ',';
  AppendKV(&line, "epoch", event.snapshot_epoch);
  line += ',';
  AppendKV(&line, "level", event.level);
  line += ',';
  AppendKV(&line, "matcher", event.matcher);
  line += ',';
  AppendKV(&line, "budget_limit", event.budget_limit);
  line += ',';
  AppendKV(&line, "budget_spent", event.budget_spent);
  line += ',';
  AppendKV(&line, "budget_exhausted",
           static_cast<std::uint64_t>(event.budget_exhausted ? 1 : 0));
  line += ',';
  AppendKV(&line, "partial",
           static_cast<std::uint64_t>(event.partial ? 1 : 0));
  line += ',';
  AppendKV(&line, "options", event.options);
  line += ',';
  AppendKV(&line, "conflicts", event.conflicts);
  line += ',';
  AppendKV(&line, "rematch_rounds", event.rematch_rounds);
  line += ',';
  AppendKV(&line, "serial_tail",
           static_cast<std::uint64_t>(event.serial_tail ? 1 : 0));
  line += ',';
  AppendKV(&line, "disposition", event.disposition);
  if (event.disposition == "served") {
    line += ',';
    AppendKV(&line, "vehicle", event.vehicle);
    line += ',';
    AppendKV(&line, "pickup_dist", event.pickup_dist);
    line += ',';
    AppendKV(&line, "price", event.price);
  }
  if (include_timing) {
    line += ',';
    AppendKV(&line, "match_us", event.match_us);
    line += ',';
    AppendKV(&line, "deadline_slack_us", event.deadline_slack_us);
  }
  line += '}';
  return line;
}

LifecycleRecorder::LifecycleRecorder(const LifecycleOptions& options)
    : options_(options) {
  PTAR_CHECK(options.sample_rate >= 0.0 && options.sample_rate <= 1.0)
      << "lifecycle sample rate must be in [0, 1]";
}

bool LifecycleRecorder::Sampled(std::uint64_t request_id) const {
  if (!enabled() || options_.sample_rate <= 0.0) return false;
  if (options_.sample_rate >= 1.0) return true;
  // Compare the hash against the rate's slice of the 64-bit space; the
  // decision is a pure function of (seed, id), so every thread count and
  // every engine samples the same ids.
  const double threshold =
      options_.sample_rate * 18446744073709551616.0;  // 2^64
  return static_cast<double>(MixId(request_id, options_.seed)) < threshold;
}

void LifecycleRecorder::Record(const LifecycleEvent& event) {
  if (!Sampled(event.request)) return;
  buffer_ += LifecycleEventToJsonLine(event, options_.include_timing);
  buffer_ += '\n';
  ++events_recorded_;
}

Status LifecycleRecorder::Flush() {
  if (!enabled()) return Status::OK();
  if (buffer_.empty() && file_created_) return Status::OK();
  std::FILE* f =
      std::fopen(options_.path.c_str(), file_created_ ? "a" : "w");
  if (f == nullptr) {
    return Status::IoError("cannot open lifecycle file: " + options_.path);
  }
  file_created_ = true;
  const std::size_t written =
      std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (!close_ok || written != buffer_.size()) {
    return Status::IoError("error writing lifecycle file: " + options_.path);
  }
  buffer_.clear();
  return Status::OK();
}

}  // namespace ptar::obs
