// Per-request lifecycle recorder: a sampled, structured JSONL log of each
// request's causal timeline through the dispatcher — admission, wave,
// registry snapshot epoch, ladder level, matcher, budget accounting,
// conflict losses and re-match rounds, and the final disposition.
//
// Design rules (DESIGN.md "Lifecycle events & windowed telemetry"):
//  - One JSON object per line per request, versioned via a "schema" field
//    on every line so a log survives being split or concatenated.
//  - Sampling is a pure hash of (seed, request id) — kept deterministic so
//    the same requests are sampled at every thread count and the sampled
//    set of a production incident can be re-run locally.
//  - Record() is called only from serial sections (the engine's id-ordered
//    admission and commit passes), so the emitted byte stream is identical
//    across engine_threads values. Wall-clock fields (match_us,
//    deadline_slack_us) are emitted only when `include_timing` is set,
//    because they are the one thing that cannot be byte-reproducible.
//  - Records buffer in memory; Flush() appends them to `path`. The bench
//    ObsSession flushes on abnormal exit too, so crashed runs still leave
//    partial telemetry.

#ifndef PTAR_OBS_LIFECYCLE_H_
#define PTAR_OBS_LIFECYCLE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace ptar::obs {

/// Bump on any incompatible change to the per-line record layout; purely
/// additive fields may ride on the same version.
inline constexpr int kLifecycleSchemaVersion = 1;

/// One request's flattened lifecycle. Producers fill what they know; the
/// serializer writes every deterministic field and omits only the timing
/// overlay when disabled. String fields use the engine's stable
/// vocabularies (DegradeLevelName, Matcher::name).
struct LifecycleEvent {
  std::uint64_t request = 0;
  double submit_time = 0.0;  ///< Sim seconds (admission tick).
  /// 1-based wave the request was admitted in; 0 = classic serial engine
  /// (no waves).
  std::uint64_t wave = 0;
  /// Registry global epoch of the snapshot the committing match ran
  /// against (0 when the request never matched, i.e. shed).
  std::uint64_t snapshot_epoch = 0;
  std::string level;    ///< Ladder level at admission ("full", "ssa", ...).
  std::string matcher;  ///< Matcher that produced the committing result.
  std::uint64_t budget_limit = 0;  ///< Work units granted (0 = unlimited).
  std::uint64_t budget_spent = 0;  ///< Work units charged by the matcher.
  bool budget_exhausted = false;
  bool partial = false;  ///< Committing skyline was budget-truncated.
  std::uint64_t options = 0;       ///< Non-dominated options returned.
  std::uint64_t conflicts = 0;     ///< Times a lower-id request won the
                                   ///< chosen vehicle (pipeline only).
  std::uint64_t rematch_rounds = 0;
  bool serial_tail = false;  ///< Exhausted the re-match bound.
  std::string disposition;   ///< "served" | "unserved" | "shed".
  std::uint64_t vehicle = 0;  ///< Committed vehicle (served only).
  double pickup_dist = 0.0;
  double price = 0.0;
  // --- Timing overlay (emitted only with LifecycleOptions::include_timing;
  // wall-clock, never byte-reproducible). ---
  double match_us = 0.0;
  double deadline_slack_us = 0.0;  ///< max(0, deadline - elapsed).
};

struct LifecycleOptions {
  std::string path;  ///< Output file; empty leaves the recorder disabled.
  /// Fraction of requests recorded, decided per request id by a seeded
  /// hash (thread-count independent). 1 = all, 0 = none.
  double sample_rate = 1.0;
  std::uint64_t seed = 0;  ///< Sampling hash seed.
  /// Emit the wall-clock overlay fields. Off by default: the log is then
  /// byte-identical across equal-seed runs at any engine_threads.
  bool include_timing = false;
};

class LifecycleRecorder {
 public:
  /// Disabled recorder: every call is a cheap no-op.
  LifecycleRecorder() = default;
  explicit LifecycleRecorder(const LifecycleOptions& options);

  LifecycleRecorder(const LifecycleRecorder&) = delete;
  LifecycleRecorder& operator=(const LifecycleRecorder&) = delete;

  bool enabled() const { return !options_.path.empty(); }

  /// Whether `request_id` falls in the sampled set. Pure: depends only on
  /// the id, the seed, and the rate.
  bool Sampled(std::uint64_t request_id) const;

  /// Serializes one record into the buffer if the recorder is enabled and
  /// the id is sampled. Call only from serial engine sections so record
  /// order (and therefore the file) is deterministic.
  void Record(const LifecycleEvent& event);

  /// Appends buffered lines to the output file and clears the buffer.
  /// Idempotent between Record() calls; safe to call repeatedly (the bench
  /// session calls it from an abnormal-exit hook).
  Status Flush();

  const std::string& path() const { return options_.path; }
  std::uint64_t events_recorded() const { return events_recorded_; }
  /// Buffered-but-unflushed serialized bytes (tests).
  const std::string& buffered() const { return buffer_; }

 private:
  LifecycleOptions options_;
  std::string buffer_;
  std::uint64_t events_recorded_ = 0;
  bool file_created_ = false;  ///< First Flush truncates, later ones append.
};

/// Serializes one event as a single JSON line (no trailing newline) — the
/// exact layout Record() buffers; exposed for tests and external emitters.
std::string LifecycleEventToJsonLine(const LifecycleEvent& event,
                                     bool include_timing);

}  // namespace ptar::obs

#endif  // PTAR_OBS_LIFECYCLE_H_
