#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace ptar {

namespace {

std::atomic<int> g_log_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(g_log_threshold.load(std::memory_order_relaxed));
}

void SetLogThreshold(LogLevel level) {
  g_log_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    stream_ << "\n";
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace ptar
