// Small sample-summary helper (mean / percentiles / extrema) for
// latency-style measurements.

#ifndef PTAR_COMMON_STATS_H_
#define PTAR_COMMON_STATS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace ptar {

/// Accumulates double samples and answers summary queries. Percentile
/// queries sort a scratch copy lazily; suitable for thousands of samples,
/// not millions.
class SampleSummary {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const {
    double sum = 0.0;
    for (const double v : samples_) sum += v;
    return sum;
  }

  double Mean() const { return empty() ? 0.0 : Sum() / count(); }

  double Min() const {
    return empty() ? 0.0
                   : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return empty() ? 0.0
                   : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Nearest-rank percentile; p in [0, 100].
  double Percentile(double p) const {
    if (empty()) return 0.0;
    PTAR_DCHECK(p >= 0.0 && p <= 100.0);
    EnsureSorted();
    const double rank = p / 100.0 * (sorted_samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_samples_.size() - 1);
    const double frac = rank - lo;
    return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
  }

  void MergeFrom(const SampleSummary& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const {
    if (!sorted_) {
      sorted_samples_ = samples_;
      std::sort(sorted_samples_.begin(), sorted_samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

}  // namespace ptar

#endif  // PTAR_COMMON_STATS_H_
