// Small sample-summary helper (mean / percentiles / extrema) for
// latency-style measurements.

#ifndef PTAR_COMMON_STATS_H_
#define PTAR_COMMON_STATS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace ptar {

/// Accumulates double samples and answers summary queries. Percentile
/// queries sort a scratch copy lazily; suitable for thousands of samples,
/// not millions.
class SampleSummary {
 public:
  void Add(double value) { samples_.push_back(value); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const {
    double sum = 0.0;
    for (const double v : samples_) sum += v;
    return sum;
  }

  double Mean() const { return empty() ? 0.0 : Sum() / count(); }

  double Min() const {
    return empty() ? 0.0
                   : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return empty() ? 0.0
                   : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Nearest-rank percentile; p in [0, 100].
  double Percentile(double p) const {
    if (empty()) return 0.0;
    PTAR_DCHECK(p >= 0.0 && p <= 100.0);
    EnsureSorted();
    const double rank = p / 100.0 * (sorted_samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_samples_.size() - 1);
    const double frac = rank - lo;
    return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
  }

  void MergeFrom(const SampleSummary& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  /// Incremental: only the samples added since the last query are sorted
  /// and merged into the already-sorted prefix, so an Add/Percentile
  /// interleaving costs O(k log k + n) per query (k = new samples) instead
  /// of re-sorting all n every time.
  void EnsureSorted() const {
    if (sorted_samples_.size() == samples_.size()) return;
    const std::size_t prefix = sorted_samples_.size();
    sorted_samples_.insert(sorted_samples_.end(),
                           samples_.begin() + prefix, samples_.end());
    std::sort(sorted_samples_.begin() + prefix, sorted_samples_.end());
    std::inplace_merge(sorted_samples_.begin(),
                       sorted_samples_.begin() + prefix,
                       sorted_samples_.end());
  }

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
};

}  // namespace ptar

#endif  // PTAR_COMMON_STATS_H_
