// Deterministic pseudo-random number generation.
//
// Every stochastic component in the project takes an explicit seed and draws
// from an Rng instance, so test and bench runs are reproducible bit-for-bit.

#ifndef PTAR_COMMON_RANDOM_H_
#define PTAR_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

#include "common/logging.h"

namespace ptar {

/// Seeded PRNG wrapper around std::mt19937_64 with the handful of draw
/// shapes the project needs. Copyable so call sites can fork substreams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    PTAR_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t UniformIndex(std::size_t n) {
    PTAR_DCHECK(n > 0);
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_));
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw; p is clamped to [0, 1].
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential draw with the given rate (events per unit). Requires
  /// rate > 0.
  double Exponential(double rate) {
    PTAR_DCHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Derives an independent child stream; successive calls yield different
  /// streams.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ptar

#endif  // PTAR_COMMON_RANDOM_H_
