// Lightweight logging and assertion macros.
//
// PTAR_LOG(INFO) << ...;        leveled logging to stderr
// PTAR_CHECK(cond) << ...;      fatal assertion, always on
// PTAR_DCHECK(cond) << ...;     fatal assertion, debug builds only

#ifndef PTAR_COMMON_LOGGING_H_
#define PTAR_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ptar {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Minimum level that is actually emitted; defaults to kInfo.
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (and possibly aborts) on
/// destruction. Not for direct use; see the macros below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Turns the streamed expression into void so it can sit on the right-hand
/// side of a ternary whose other branch is (void)0. operator& binds looser
/// than operator<<, so trailing "<< msg" attaches to the stream first.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace ptar

#define PTAR_LOG(severity)                                        \
  ::ptar::internal::LogMessage(::ptar::LogLevel::k##severity,     \
                               __FILE__, __LINE__)                \
      .stream()

#define PTAR_CHECK(cond)                                                    \
  (cond) ? (void)0                                                          \
         : ::ptar::internal::LogMessageVoidify() &                          \
               ::ptar::internal::LogMessage(::ptar::LogLevel::kFatal,       \
                                            __FILE__, __LINE__)             \
                       .stream()                                            \
                   << "Check failed: " #cond " "

#define PTAR_CHECK_OK(expr)                                  \
  do {                                                       \
    const auto& _ptar_st = (expr);                           \
    PTAR_CHECK(_ptar_st.ok()) << _ptar_st.ToString();        \
  } while (false)

#ifdef NDEBUG
#define PTAR_DCHECK(cond) \
  while (false) PTAR_CHECK(cond)
#else
#define PTAR_DCHECK(cond) PTAR_CHECK(cond)
#endif

#endif  // PTAR_COMMON_LOGGING_H_
