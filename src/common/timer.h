// Wall-clock timing helper for benches and match statistics.

#ifndef PTAR_COMMON_TIMER_H_
#define PTAR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ptar {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ptar

#endif  // PTAR_COMMON_TIMER_H_
