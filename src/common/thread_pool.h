// Fixed-size thread pool for evaluating independent shadow matchers.
//
// Deliberately minimal: a single mutex-guarded FIFO queue drained by N
// std::jthread workers, no work stealing, no task priorities. The engine
// submits a handful of coarse tasks per request (one per matcher), so a
// simple queue is contention-free in practice and keeps the execution order
// — and therefore every scheduling-independent result — easy to reason
// about. Determinism note: tasks may *finish* in any order; callers that
// need deterministic output must write results into pre-assigned slots and
// join via the returned futures.

#ifndef PTAR_COMMON_THREAD_POOL_H_
#define PTAR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ptar {

class ThreadPool {
 public:
  /// Called on the worker thread right before a task runs, with the time
  /// the task spent queued (microseconds). Lets observability layers
  /// record queue-wait spans on the worker's own track without the pool
  /// depending on them.
  using TaskWaitObserver = std::function<void(double wait_micros)>;

  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Requests stop and joins all workers. Tasks already dequeued run to
  /// completion; queued-but-unstarted tasks are abandoned (their futures
  /// are broken), so callers should drain their futures before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future that becomes ready when it finishes.
  /// Exceptions thrown by `fn` propagate through future::get().
  std::future<void> Submit(std::function<void()> fn);

  int size() const { return static_cast<int>(workers_.size()); }

  /// Installs (or clears, with nullptr) the queue-wait observer. Not
  /// thread-safe against concurrent Submit; set it while the pool is idle
  /// (typically right after construction).
  void SetTaskWaitObserver(TaskWaitObserver observer);

  /// Lifetime aggregates of queue dwell time, readable at any time (the
  /// counters are atomic). wait is reported in integer microseconds.
  std::uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_wait_micros() const {
    return total_wait_micros_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Queue entry: the task plus its enqueue time for wait accounting.
  struct QueuedTask {
    std::packaged_task<void()> task;
    Clock::time_point enqueued;
  };

  void Worker(std::stop_token stop);

  std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<QueuedTask> queue_;
  TaskWaitObserver wait_observer_;  ///< May be empty; see setter.
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> total_wait_micros_{0};
  std::vector<std::jthread> workers_;  // last member: joins before teardown
};

}  // namespace ptar

#endif  // PTAR_COMMON_THREAD_POOL_H_
