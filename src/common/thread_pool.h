// Fixed-size thread pool for evaluating independent shadow matchers.
//
// Deliberately minimal: a single mutex-guarded FIFO queue drained by N
// std::jthread workers, no work stealing, no task priorities. The engine
// submits a handful of coarse tasks per request (one per matcher), so a
// simple queue is contention-free in practice and keeps the execution order
// — and therefore every scheduling-independent result — easy to reason
// about. Determinism note: tasks may *finish* in any order; callers that
// need deterministic output must write results into pre-assigned slots and
// join via the returned futures.

#ifndef PTAR_COMMON_THREAD_POOL_H_
#define PTAR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ptar {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Requests stop and joins all workers. Tasks already dequeued run to
  /// completion; queued-but-unstarted tasks are abandoned (their futures
  /// are broken), so callers should drain their futures before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future that becomes ready when it finishes.
  /// Exceptions thrown by `fn` propagate through future::get().
  std::future<void> Submit(std::function<void()> fn);

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void Worker(std::stop_token stop);

  std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::jthread> workers_;  // last member: joins before teardown
};

}  // namespace ptar

#endif  // PTAR_COMMON_THREAD_POOL_H_
