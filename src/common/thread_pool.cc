#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ptar {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { Worker(std::move(stop)); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& w : workers_) w.request_stop();
  cv_.notify_all();
  // std::jthread joins on destruction.
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  PTAR_CHECK(fn != nullptr);
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::Worker(std::stop_token stop) {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait(lock, stop, [this] { return !queue_.empty(); })) {
        return;  // stop requested and queue empty
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ptar
