#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ptar {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { Worker(std::move(stop)); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& w : workers_) w.request_stop();
  cv_.notify_all();
  // std::jthread joins on destruction.
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  PTAR_CHECK(fn != nullptr);
  QueuedTask entry{std::packaged_task<void()>(std::move(fn)), Clock::now()};
  std::future<void> future = entry.task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(entry));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::SetTaskWaitObserver(TaskWaitObserver observer) {
  std::lock_guard<std::mutex> lock(mu_);
  wait_observer_ = std::move(observer);
}

void ThreadPool::Worker(std::stop_token stop) {
  while (true) {
    QueuedTask entry;
    TaskWaitObserver observer;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait(lock, stop, [this] { return !queue_.empty(); })) {
        return;  // stop requested and queue empty
      }
      entry = std::move(queue_.front());
      queue_.pop_front();
      observer = wait_observer_;  // copy under the lock; cheap when unset
    }
    const double wait_micros =
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  entry.enqueued)
            .count();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    total_wait_micros_.fetch_add(static_cast<std::uint64_t>(wait_micros),
                                 std::memory_order_relaxed);
    if (observer) observer(wait_micros);
    entry.task();
  }
}

}  // namespace ptar
