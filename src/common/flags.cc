#include "common/flags.h"

#include <cstdlib>

namespace ptar {

StatusOr<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || arg.rfind("--", 0) != 0) {
      parser.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    if (name.empty()) {
      return Status::InvalidArgument("malformed flag: " + arg);
    }
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    auto [it, inserted] =
        parser.flags_.emplace(name, std::make_pair(value, false));
    if (!inserted) {
      return Status::InvalidArgument("flag repeated: --" + name);
    }
  }
  return parser;
}

bool FlagParser::Has(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  it->second.second = true;
  return true;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  it->second.second = true;
  return it->second.first;
}

StatusOr<std::int64_t> FlagParser::GetInt(const std::string& name,
                                          std::int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  it->second.second = true;
  const std::string& value = it->second.first;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   value + "'");
  }
  return static_cast<std::int64_t>(parsed);
}

StatusOr<double> FlagParser::GetDouble(const std::string& name,
                                       double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  it->second.second = true;
  const std::string& value = it->second.first;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   value + "'");
  }
  return parsed;
}

StatusOr<bool> FlagParser::GetBool(const std::string& name,
                                   bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  it->second.second = true;
  const std::string& value = it->second.first;
  if (value.empty() || value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  return Status::InvalidArgument("--" + name + " expects a boolean, got '" +
                                 value + "'");
}

StatusOr<int> GetThreadsFlag(const FlagParser& flags, int default_value) {
  auto threads = flags.GetInt("threads", default_value);
  if (!threads.ok()) return threads.status();
  if (*threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  return static_cast<int>(*threads);
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, state] : flags_) {
    if (!state.second) unused.push_back(name);
  }
  return unused;
}

}  // namespace ptar
