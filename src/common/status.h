// Minimal Status / StatusOr error-propagation types.
//
// The project does not use exceptions (Google C++ style); fallible operations
// return Status or StatusOr<T>. Internal invariant violations use CHECK from
// common/logging.h instead.

#ifndef PTAR_COMMON_STATUS_H_
#define PTAR_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace ptar {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kUnimplemented = 8,
  kResourceExhausted = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic error descriptor. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of T or an error Status. Accessing the value of an errored
/// StatusOr is a fatal error.
template <typename T>
class StatusOr {
 public:
  // Implicit construction from both T and Status keeps call sites readable
  // ("return Status::InvalidArgument(...)" / "return value").
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    PTAR_CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    PTAR_CHECK(ok()) << "value() on errored StatusOr: " << status();
    return std::get<T>(rep_);
  }
  T& value() & {
    PTAR_CHECK(ok()) << "value() on errored StatusOr: " << status();
    return std::get<T>(rep_);
  }
  T&& value() && {
    PTAR_CHECK(ok()) << "value() on errored StatusOr: " << status();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller.
#define PTAR_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::ptar::Status _ptar_status = (expr);       \
    if (!_ptar_status.ok()) return _ptar_status; \
  } while (false)

}  // namespace ptar

#endif  // PTAR_COMMON_STATUS_H_
