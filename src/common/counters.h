// Named metric counters used to report the paper's cost measures
// (compdists, verified vehicles, pruning hits, ...).

#ifndef PTAR_COMMON_COUNTERS_H_
#define PTAR_COMMON_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

namespace ptar {

/// A bag of named monotonically increasing counters. Not thread-safe; each
/// matcher / engine owns its own set.
class CounterSet {
 public:
  void Add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  std::uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Reset() { counters_.clear(); }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Merges another set into this one by summing matching names.
  void MergeFrom(const CounterSet& other) {
    for (const auto& [name, value] : other.counters_) {
      counters_[name] += value;
    }
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace ptar

#endif  // PTAR_COMMON_COUNTERS_H_
