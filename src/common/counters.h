// Named metric counters used to report the paper's cost measures
// (compdists, verified vehicles, pruning hits, ...).

#ifndef PTAR_COMMON_COUNTERS_H_
#define PTAR_COMMON_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "common/logging.h"

namespace ptar {

/// Instrumentation for batched one-to-many distance queries
/// (DistanceOracle::BatchDist / WarmFrom). Tracks how well the batching
/// amortizes Dijkstra sweeps: one sweep serving k pairs replaces k
/// point-to-point searches. compdists accounting is separate and unchanged
/// by batching; these counters only describe *how* pairs were produced.
struct BatchStats {
  /// BatchDist invocations (WarmFrom calls are counted via sweeps only).
  std::uint64_t batch_calls = 0;
  /// One-to-many Dijkstra sweeps actually run (0-target batches run none).
  std::uint64_t sweeps = 0;
  /// Total pairs requested across all BatchDist calls (incl. duplicates).
  std::uint64_t pairs_requested = 0;
  /// Pairs answered from the memo cache without any search.
  std::uint64_t pairs_from_cache = 0;
  /// Pairs settled by a one-to-many sweep (each counted one compdist).
  std::uint64_t pairs_swept = 0;
  /// Dist() calls served from a WarmFrom prefetch (counted one compdist at
  /// that moment, exactly when an unbatched run would have computed them).
  std::uint64_t warm_hits = 0;

  double MeanPairsPerSweep() const {
    return sweeps == 0 ? 0.0
                       : static_cast<double>(pairs_swept) /
                             static_cast<double>(sweeps);
  }

  void MergeFrom(const BatchStats& other) {
    batch_calls += other.batch_calls;
    sweeps += other.sweeps;
    pairs_requested += other.pairs_requested;
    pairs_from_cache += other.pairs_from_cache;
    pairs_swept += other.pairs_swept;
    warm_hits += other.warm_hits;
  }
};

/// A bag of named monotonically increasing counters. Not thread-safe; each
/// matcher / engine owns its own set. Debug builds enforce the ownership
/// contract: the first mutating call pins the set to the calling thread and
/// every later mutation DCHECKs it, so a refactor that starts mutating a
/// shared set from pool workers fails loudly instead of silently racing.
/// Legitimate cross-thread hand-off (merge after a pool join) goes through
/// AdoptByCurrentThread(). The thread-safe aggregation path is
/// obs::MetricsRegistry::MergeCounterSet, which each joining owner calls
/// from the merging thread.
class CounterSet {
 public:
  void Add(const std::string& name, std::uint64_t delta = 1) {
    AssertOwnedByCurrentThread();
    counters_[name] += delta;
  }

  std::uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Reset() {
    AssertOwnedByCurrentThread();
    counters_.clear();
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Merges another set into this one by summing matching names. Both sets
  /// must be quiescent: the writer threads that filled `other` must have
  /// been joined before the merge.
  void MergeFrom(const CounterSet& other) {
    AssertOwnedByCurrentThread();
    for (const auto& [name, value] : other.counters_) {
      counters_[name] += value;
    }
  }

  /// Re-homes the set to the calling thread after a legitimate hand-off
  /// (e.g. a worker-filled set merged on the main thread post-join).
  void AdoptByCurrentThread() {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }

 private:
  void AssertOwnedByCurrentThread() {
#ifndef NDEBUG
    if (owner_ == std::thread::id{}) {
      owner_ = std::this_thread::get_id();
    } else {
      PTAR_DCHECK(owner_ == std::this_thread::get_id())
          << "CounterSet mutated from a second thread without "
             "AdoptByCurrentThread(); CounterSet is not thread-safe";
    }
#endif
  }

  std::map<std::string, std::uint64_t> counters_;
#ifndef NDEBUG
  std::thread::id owner_{};  ///< Pinned by the first mutation.
#endif
};

}  // namespace ptar

#endif  // PTAR_COMMON_COUNTERS_H_
