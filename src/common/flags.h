// Minimal command-line flag parsing for the tools and examples.
//
// Supports --key=value plus bare boolean switches (--verbose); the
// unambiguous '=' form is required for values. Positional arguments are
// collected in order. No global registry — a parser instance is explicit
// state (Google style: no static initialization surprises).

#ifndef PTAR_COMMON_FLAGS_H_
#define PTAR_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ptar {

class FlagParser {
 public:
  /// Parses argv[1..) into flags and positionals. Returns an error on
  /// malformed input (e.g. "--=x") or a repeated flag. "--" ends flag
  /// parsing; everything after it is positional.
  static StatusOr<FlagParser> Parse(int argc, const char* const* argv);

  /// Whether the flag appeared at all.
  bool Has(const std::string& name) const;

  /// Typed accessors with defaults. Type errors (e.g. --count=abc) are
  /// reported via Status.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  StatusOr<std::int64_t> GetInt(const std::string& name,
                                std::int64_t default_value) const;
  StatusOr<double> GetDouble(const std::string& name,
                             double default_value) const;
  /// Bare switch or explicit --flag=true/false/1/0.
  StatusOr<bool> GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never read by any accessor; lets tools
  /// reject typos ("--vehicels").
  std::vector<std::string> UnusedFlags() const;

 private:
  FlagParser() = default;

  mutable std::map<std::string, std::pair<std::string, bool>> flags_;
  std::vector<std::string> positional_;
};

/// Reads the standard `--threads` flag: worker threads for evaluating the
/// shadow matchers of one request concurrently (1 = serial, the default).
/// Rejects values < 1.
StatusOr<int> GetThreadsFlag(const FlagParser& flags, int default_value = 1);

}  // namespace ptar

#endif  // PTAR_COMMON_FLAGS_H_
