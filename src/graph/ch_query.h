// Query workspace over a CHGraph: bidirectional point-to-point, bucket-based
// one-to-many, and shortest-path unpacking.
//
// All searches run on the upward graph only (the network is undirected, so
// the backward/downward side of a query is an upward search from the other
// endpoint). One workspace owns the per-vertex scratch arrays, reused across
// queries via version stamps, exactly like DijkstraEngine; a CHGraph may be
// shared by any number of workspaces concurrently.
//
// The one-to-many query picks between two exact strategies by batch size:
//
//  - Small batches use the bucket scheme from the ridesharing-routing
//    literature (BCH, Buchhold et al.): every target seeds *buckets* along
//    its upward search space (entries (target, dist) parked at each reached
//    vertex), then a single upward search from the source joins against the
//    buckets it passes — t + 1 small hierarchy searches, no full sweep.
//  - Large batches use a PHAST-style downward sweep: one upward search from
//    the source, then one linear pass over the vertices in descending rank
//    order relaxing each vertex from its (already-final) upward neighbors.
//    The pass costs O(n + m) with zero heap operations, so for city-scale
//    graphs it beats t per-target upward searches as soon as t exceeds a
//    small constant — per-target searches are what makes pure BCH lose to
//    a single Dijkstra drain when buckets cannot be amortized across many
//    sources.
//
// Both strategies return exact distances; they may differ from each other
// and from PointToPoint in the low bits because floating-point path sums
// associate differently (bucket joins add fwd + bwd halves, the sweep
// accumulates top-down). Callers that need bit-stability get it from
// DistanceOracle's per-epoch memo cache, not from the raw query layer.
//
// Stall-on-demand prunes the *expansion* of provably suboptimal vertices
// but keeps their labels, and joins consider every reached vertex, so the
// results are exact regardless of stalling; the downward sweep recovers any
// stalled vertex's true distance through its higher-ranked neighbors.

#ifndef PTAR_GRAPH_CH_QUERY_H_
#define PTAR_GRAPH_CH_QUERY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/ch_graph.h"
#include "graph/types.h"

namespace ptar {

class CHQuery {
 public:
  explicit CHQuery(const CHGraph* ch);

  CHQuery(const CHQuery&) = delete;
  CHQuery& operator=(const CHQuery&) = delete;

  /// Exact shortest-path distance from s to t (kInfDistance if
  /// unreachable).
  Distance PointToPoint(VertexId s, VertexId t);

  /// Exact shortest path s..t as an original-graph vertex sequence, with
  /// every shortcut unpacked. Empty if t is unreachable; {s} if s == t.
  /// `dist`, if non-null, receives the path length.
  std::vector<VertexId> Path(VertexId s, VertexId t,
                             Distance* dist = nullptr);

  /// Batch sizes up to this run the bucket strategy; larger ones the
  /// downward sweep (see the file comment for the trade-off).
  static constexpr std::size_t kBucketBatchLimit = 8;

  /// Exact distances from `source` to every target. `out` must have
  /// targets.size() slots; unreachable targets report kInfDistance.
  /// Duplicate targets are fine (each slot is filled).
  void OneToMany(VertexId source, std::span<const VertexId> targets,
                 std::span<Distance> out);

  /// Vertices settled across both sides of the most recent query (work
  /// measure; compare with DijkstraEngine::last_settled_count()).
  std::size_t last_settled_count() const { return last_settled_count_; }

  const CHGraph& ch() const { return *ch_; }

 private:
  struct QueueEntry {
    Distance dist;
    VertexId vertex;
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
      return a.dist > b.dist || (a.dist == b.dist && a.vertex > b.vertex);
    }
  };

  /// One direction of a bidirectional search (also the whole of a
  /// single-sided upward search).
  struct Side {
    std::vector<Distance> dist;
    std::vector<std::uint32_t> parent_arc;  ///< Pool index, kNoChild at seed.
    std::vector<VertexId> parent;
    std::vector<std::uint32_t> stamp;
    std::uint32_t run = 0;
    std::vector<QueueEntry> heap;

    void Begin(std::size_t n);
    bool Reached(VertexId v) const { return stamp[v] == run; }
  };

  /// Settles the next vertex of `side` (if any); returns whether a vertex
  /// was settled and fills *settled_vertex / *settled_dist. Skips stalled
  /// vertices' expansions but still reports them settled.
  bool SettleNext(Side& side, VertexId* settled_vertex,
                  Distance* settled_dist);

  /// Runs the bidirectional query, leaving labels in fwd_/bwd_. Returns
  /// the best meeting vertex (kInvalidVertex if none) and sets *best.
  VertexId RunBidirectional(VertexId s, VertexId t, Distance* best);

  /// Runs the forward upward search from `source` to exhaustion, leaving
  /// labels in fwd_.
  void RunUpwardFrom(VertexId source);

  void BucketOneToMany(VertexId source, std::span<const VertexId> targets,
                       std::span<Distance> out);
  void SweepOneToMany(VertexId source, std::span<const VertexId> targets,
                      std::span<Distance> out);

  const CHGraph* ch_;
  Side fwd_;
  Side bwd_;
  std::size_t last_settled_count_ = 0;

  // Bucket storage for OneToMany: a stamped per-vertex head index into a
  // per-call entry pool chained with `next` (cleared in O(1) by bumping the
  // stamp, filled in O(search space) per target).
  struct BucketEntry {
    std::uint32_t target_index;
    Distance dist;
    std::uint32_t next;  ///< Index into bucket_entries_, or kNoEntry.
  };
  static constexpr std::uint32_t kNoEntry = 0xFFFFFFFFu;
  std::vector<std::uint32_t> bucket_head_;
  std::vector<std::uint32_t> bucket_stamp_;
  std::uint32_t bucket_run_ = 0;
  std::vector<BucketEntry> bucket_entries_;

  /// Downward-sweep scratch, indexed by sweep position (descending rank):
  /// every slot is overwritten on each sweep, so it needs no stamps or
  /// clearing.
  std::vector<Distance> sweep_dist_;
};

}  // namespace ptar

#endif  // PTAR_GRAPH_CH_QUERY_H_
