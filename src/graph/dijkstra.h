// Reusable Dijkstra engine over a RoadNetwork.
//
// One engine owns the per-vertex scratch arrays (distance, parent, source
// label) and reuses them across runs via version stamps, so repeated queries
// do not pay O(|V|) re-initialization. All variants compute exact
// shortest-path distances; there is no approximation anywhere in this layer.

#ifndef PTAR_GRAPH_DIJKSTRA_H_
#define PTAR_GRAPH_DIJKSTRA_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/road_network.h"
#include "graph/types.h"

namespace ptar {

/// A (vertex, initial distance) pair used to seed multi-source searches.
struct DijkstraSource {
  VertexId vertex = kInvalidVertex;
  Distance offset = 0.0;
  /// Caller-chosen label propagated to every vertex this source settles
  /// first; used to recover witness border vertices in the grid index.
  std::uint32_t label = 0;
};

/// Single-threaded Dijkstra workspace. Results of the most recent run are
/// readable until the next run starts.
class DijkstraEngine {
 public:
  explicit DijkstraEngine(const RoadNetwork* graph);

  DijkstraEngine(const DijkstraEngine&) = delete;
  DijkstraEngine& operator=(const DijkstraEngine&) = delete;
  DijkstraEngine(DijkstraEngine&&) = default;
  DijkstraEngine& operator=(DijkstraEngine&&) = default;

  /// Shortest-path distance from s to t with early termination as soon as t
  /// is settled. Returns kInfDistance if t is unreachable.
  Distance PointToPoint(VertexId s, VertexId t);

  /// Full single-source run; afterwards Dist(v) is valid for every vertex.
  void SingleSource(VertexId s);

  /// Single-source run that stops once every target is settled. Unreached
  /// targets (disconnected) report kInfDistance.
  void SingleSourceToTargets(VertexId s, std::span<const VertexId> targets);

  /// Single-source run that only settles vertices within `radius` of s.
  void BoundedSingleSource(VertexId s, Distance radius);

  /// Full multi-source run seeded with per-source offsets and labels.
  void MultiSource(std::span<const DijkstraSource> sources);

  /// Distance of v from the source set of the most recent run, or
  /// kInfDistance if v was not reached.
  Distance Dist(VertexId v) const {
    return stamp_[v] == run_stamp_ ? dist_[v] : kInfDistance;
  }

  /// Whether v was settled (finalized) in the most recent run.
  bool Settled(VertexId v) const {
    return stamp_[v] == run_stamp_ && settled_[v];
  }

  /// Label of the source that first reaches v (multi-source runs), or 0.
  std::uint32_t SourceLabel(VertexId v) const {
    return stamp_[v] == run_stamp_ ? label_[v] : 0;
  }

  /// Predecessor of v on its shortest path, or kInvalidVertex for sources
  /// and unreached vertices.
  VertexId Parent(VertexId v) const {
    return stamp_[v] == run_stamp_ ? parent_[v] : kInvalidVertex;
  }

  /// Reconstructs the vertex sequence source..t from the most recent run.
  /// Returns an empty vector if t was not reached.
  std::vector<VertexId> PathTo(VertexId t) const;

  /// Number of vertices settled by the most recent run (work measure).
  std::size_t last_settled_count() const { return last_settled_count_; }

  const RoadNetwork& graph() const { return *graph_; }

 private:
  struct QueueEntry {
    Distance dist;
    VertexId vertex;
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
      return a.dist > b.dist;
    }
  };

  void BeginRun();
  void Seed(VertexId v, Distance dist, std::uint32_t label);
  /// Core loop. Stops when `stop_vertex` is settled (if valid), when the
  /// frontier exceeds `radius`, or when `targets_remaining` hits zero.
  void Run(VertexId stop_vertex, Distance radius);

  const RoadNetwork* graph_;
  std::vector<Distance> dist_;
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> label_;
  std::vector<std::uint8_t> settled_;
  std::vector<std::uint8_t> is_target_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> target_stamp_;
  std::uint32_t run_stamp_ = 0;
  std::size_t targets_remaining_ = 0;
  std::size_t last_settled_count_ = 0;
  std::vector<QueueEntry> heap_;
};

}  // namespace ptar

#endif  // PTAR_GRAPH_DIJKSTRA_H_
