#include "graph/road_network.h"

#include <cmath>
#include <string>

namespace ptar {

VertexId RoadNetwork::Builder::AddVertex(Coord position) {
  coords_.push_back(position);
  return static_cast<VertexId>(coords_.size() - 1);
}

EdgeId RoadNetwork::Builder::AddEdge(VertexId u, VertexId v, Distance weight) {
  edge_us_.push_back(u);
  edge_vs_.push_back(v);
  edge_weights_.push_back(weight);
  return static_cast<EdgeId>(edge_us_.size() - 1);
}

EdgeId RoadNetwork::Builder::AddEdgeEuclidean(VertexId u, VertexId v) {
  PTAR_CHECK(u < coords_.size() && v < coords_.size());
  const double dx = coords_[u].x - coords_[v].x;
  const double dy = coords_[u].y - coords_[v].y;
  return AddEdge(u, v, std::sqrt(dx * dx + dy * dy));
}

StatusOr<RoadNetwork> RoadNetwork::Builder::Build() && {
  const std::size_t n = coords_.size();
  const std::size_t m = edge_us_.size();

  for (std::size_t e = 0; e < m; ++e) {
    if (edge_us_[e] >= n || edge_vs_[e] >= n) {
      return Status::InvalidArgument("edge " + std::to_string(e) +
                                     " references an unknown vertex");
    }
    if (edge_us_[e] == edge_vs_[e]) {
      return Status::InvalidArgument("edge " + std::to_string(e) +
                                     " is a self-loop");
    }
    if (!(edge_weights_[e] > 0.0) || !std::isfinite(edge_weights_[e])) {
      return Status::InvalidArgument("edge " + std::to_string(e) +
                                     " has non-positive or non-finite weight");
    }
  }

  RoadNetwork g;
  g.coords_ = std::move(coords_);
  g.edge_us_ = std::move(edge_us_);
  g.edge_vs_ = std::move(edge_vs_);
  g.edge_weights_ = std::move(edge_weights_);

  // Counting sort of the 2m arcs into CSR.
  g.offsets_.assign(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++g.offsets_[g.edge_us_[e] + 1];
    ++g.offsets_[g.edge_vs_[e] + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  g.arcs_.resize(2 * m);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    const VertexId u = g.edge_us_[e];
    const VertexId v = g.edge_vs_[e];
    const Distance w = g.edge_weights_[e];
    g.arcs_[cursor[u]++] = Arc{v, w, static_cast<EdgeId>(e)};
    g.arcs_[cursor[v]++] = Arc{u, w, static_cast<EdgeId>(e)};
  }
  return g;
}

double RoadNetwork::EuclideanDistance(VertexId u, VertexId v) const {
  const double dx = position(u).x - position(v).x;
  const double dy = position(u).y - position(v).y;
  return std::sqrt(dx * dx + dy * dy);
}

std::size_t RoadNetwork::MemoryBytes() const {
  return coords_.capacity() * sizeof(Coord) +
         offsets_.capacity() * sizeof(std::size_t) +
         arcs_.capacity() * sizeof(Arc) +
         edge_us_.capacity() * sizeof(VertexId) +
         edge_vs_.capacity() * sizeof(VertexId) +
         edge_weights_.capacity() * sizeof(Distance);
}

}  // namespace ptar
