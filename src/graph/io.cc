#include "graph/io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

namespace ptar {

namespace {

constexpr char kMagic[] = "ptar-network";
constexpr int kVersion = 1;

/// Reads the next non-comment, non-empty line into `line`. Returns false at
/// EOF.
bool NextLine(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    const std::size_t first = line->find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if ((*line)[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Status SaveNetwork(const RoadNetwork& graph, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";
  out << graph.num_vertices() << " " << graph.num_edges() << "\n";
  out << std::setprecision(17);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Coord& c = graph.position(v);
    out << "v " << c.x << " " << c.y << "\n";
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    out << "e " << graph.EdgeU(e) << " " << graph.EdgeV(e) << " "
        << graph.EdgeWeight(e) << "\n";
  }
  if (!out) return Status::IoError("write failed");
  return Status::OK();
}

Status SaveNetworkToFile(const RoadNetwork& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveNetwork(graph, out);
}

StatusOr<RoadNetwork> LoadNetwork(std::istream& in) {
  std::string line;
  if (!NextLine(in, &line)) return Status::IoError("empty input");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic) {
      return Status::InvalidArgument("bad magic: expected '" +
                                     std::string(kMagic) + "'");
    }
    if (version != kVersion) {
      return Status::InvalidArgument("unsupported version " +
                                     std::to_string(version));
    }
  }

  if (!NextLine(in, &line)) return Status::IoError("missing size line");
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> num_vertices >> num_edges)) {
      return Status::InvalidArgument("bad size line: " + line);
    }
  }

  RoadNetwork::Builder builder;
  for (std::size_t i = 0; i < num_vertices; ++i) {
    if (!NextLine(in, &line)) return Status::IoError("truncated vertex list");
    std::istringstream rec(line);
    char tag = 0;
    Coord c;
    if (!(rec >> tag >> c.x >> c.y) || tag != 'v') {
      return Status::InvalidArgument("bad vertex record: " + line);
    }
    builder.AddVertex(c);
  }
  for (std::size_t i = 0; i < num_edges; ++i) {
    if (!NextLine(in, &line)) return Status::IoError("truncated edge list");
    std::istringstream rec(line);
    char tag = 0;
    VertexId u = 0;
    VertexId v = 0;
    Distance w = 0;
    if (!(rec >> tag >> u >> v >> w) || tag != 'e') {
      return Status::InvalidArgument("bad edge record: " + line);
    }
    builder.AddEdge(u, v, w);
  }
  return std::move(builder).Build();
}

StatusOr<RoadNetwork> LoadNetworkFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return LoadNetwork(in);
}

}  // namespace ptar
