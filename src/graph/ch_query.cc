#include "graph/ch_query.h"

#include <algorithm>

#include "common/logging.h"

namespace ptar {

CHQuery::CHQuery(const CHGraph* ch) : ch_(ch) {
  PTAR_CHECK(ch != nullptr);
  const std::size_t n = ch->num_vertices();
  bucket_head_.assign(n, kNoEntry);
  bucket_stamp_.assign(n, 0);
}

void CHQuery::Side::Begin(std::size_t n) {
  if (dist.size() != n) {
    dist.assign(n, kInfDistance);
    parent_arc.assign(n, CHGraph::kNoChild);
    parent.assign(n, kInvalidVertex);
    stamp.assign(n, 0);
    run = 0;
  }
  ++run;
  if (run == 0) {
    std::fill(stamp.begin(), stamp.end(), 0);
    run = 1;
  }
  heap.clear();
}

bool CHQuery::SettleNext(Side& side, VertexId* settled_vertex,
                         Distance* settled_dist) {
  while (!side.heap.empty()) {
    std::pop_heap(side.heap.begin(), side.heap.end(), std::greater<>());
    const QueueEntry top = side.heap.back();
    side.heap.pop_back();
    const VertexId u = top.vertex;
    if (top.dist > side.dist[u]) continue;  // stale entry
    ++last_settled_count_;
    // Stall-on-demand: a reached higher-ranked neighbor proving a shorter
    // path to u means no shortest up-down path peaks above u through here,
    // so skip the expansion. u's label stays valid (it is a real path
    // length), so callers may still use it for meets and bucket joins.
    bool stalled = false;
    for (const CHGraph::UpArc& arc : ch_->UpArcs(u)) {
      if (side.Reached(arc.head) &&
          side.dist[arc.head] + arc.weight < top.dist) {
        stalled = true;
        break;
      }
    }
    if (!stalled) {
      for (const CHGraph::UpArc& arc : ch_->UpArcs(u)) {
        const VertexId v = arc.head;
        const Distance nd = top.dist + arc.weight;
        if (!side.Reached(v) || nd < side.dist[v]) {
          side.stamp[v] = side.run;
          side.dist[v] = nd;
          side.parent[v] = u;
          side.parent_arc[v] = arc.pool;
          side.heap.push_back({nd, v});
          std::push_heap(side.heap.begin(), side.heap.end(),
                         std::greater<>());
        }
      }
    }
    *settled_vertex = u;
    *settled_dist = top.dist;
    return true;
  }
  return false;
}

VertexId CHQuery::RunBidirectional(VertexId s, VertexId t, Distance* best) {
  const std::size_t n = ch_->num_vertices();
  fwd_.Begin(n);
  bwd_.Begin(n);
  fwd_.stamp[s] = fwd_.run;
  fwd_.dist[s] = 0.0;
  fwd_.parent[s] = kInvalidVertex;
  fwd_.parent_arc[s] = CHGraph::kNoChild;
  fwd_.heap.push_back({0.0, s});
  bwd_.stamp[t] = bwd_.run;
  bwd_.dist[t] = 0.0;
  bwd_.parent[t] = kInvalidVertex;
  bwd_.parent_arc[t] = CHGraph::kNoChild;
  bwd_.heap.push_back({0.0, t});

  *best = kInfDistance;
  VertexId meet = kInvalidVertex;
  while (!fwd_.heap.empty() || !bwd_.heap.empty()) {
    const Distance fmin =
        fwd_.heap.empty() ? kInfDistance : fwd_.heap.front().dist;
    const Distance bmin =
        bwd_.heap.empty() ? kInfDistance : bwd_.heap.front().dist;
    if (std::min(fmin, bmin) >= *best) break;
    Side& side = fmin <= bmin ? fwd_ : bwd_;
    Side& other = fmin <= bmin ? bwd_ : fwd_;
    VertexId v = kInvalidVertex;
    Distance d = 0.0;
    if (!SettleNext(side, &v, &d)) continue;
    if (other.Reached(v)) {
      const Distance candidate = d + other.dist[v];
      if (candidate < *best) {
        *best = candidate;
        meet = v;
      }
    }
  }
  return meet;
}

Distance CHQuery::PointToPoint(VertexId s, VertexId t) {
  last_settled_count_ = 0;
  if (s == t) return 0.0;
  Distance best = kInfDistance;
  RunBidirectional(s, t, &best);
  return best;
}

std::vector<VertexId> CHQuery::Path(VertexId s, VertexId t, Distance* dist) {
  last_settled_count_ = 0;
  if (s == t) {
    if (dist != nullptr) *dist = 0.0;
    return {s};
  }
  Distance best = kInfDistance;
  const VertexId meet = RunBidirectional(s, t, &best);
  if (dist != nullptr) *dist = best;
  if (meet == kInvalidVertex) return {};

  // Hierarchy arcs s..meet, recovered backwards from the forward tree.
  std::vector<std::uint32_t> up_chain;
  for (VertexId v = meet; v != s; v = fwd_.parent[v]) {
    up_chain.push_back(fwd_.parent_arc[v]);
  }
  std::reverse(up_chain.begin(), up_chain.end());

  std::vector<VertexId> path{s};
  for (const std::uint32_t arc : up_chain) {
    ch_->UnpackArc(arc, path.back(), &path);
  }
  PTAR_DCHECK(path.back() == meet);
  // meet..t follows the backward tree toward its seed t.
  for (VertexId v = meet; v != t; v = bwd_.parent[v]) {
    ch_->UnpackArc(bwd_.parent_arc[v], path.back(), &path);
  }
  PTAR_DCHECK(path.back() == t);
  return path;
}

void CHQuery::RunUpwardFrom(VertexId source) {
  fwd_.Begin(ch_->num_vertices());
  fwd_.stamp[source] = fwd_.run;
  fwd_.dist[source] = 0.0;
  fwd_.heap.push_back({0.0, source});
  VertexId v = kInvalidVertex;
  Distance d = 0.0;
  while (SettleNext(fwd_, &v, &d)) {
  }
}

void CHQuery::OneToMany(VertexId source, std::span<const VertexId> targets,
                        std::span<Distance> out) {
  PTAR_CHECK(out.size() == targets.size());
  last_settled_count_ = 0;
  if (targets.size() <= kBucketBatchLimit) {
    BucketOneToMany(source, targets, out);
  } else {
    SweepOneToMany(source, targets, out);
  }
}

void CHQuery::SweepOneToMany(VertexId source,
                             std::span<const VertexId> targets,
                             std::span<Distance> out) {
  RunUpwardFrom(source);
  // Downward sweep: visiting vertices in descending rank order, every
  // upward neighbor is already final, so one pass computes
  // min(up-label, min over up-arcs (final[head] + weight)) for all n
  // vertices without a heap. The sweep CSR indexes arcs and distances by
  // rank position, so offsets, arcs, and the writes all stream forward;
  // the only scattered reads are the (position-local) head slots.
  const std::size_t n = ch_->num_vertices();
  if (sweep_dist_.size() != n) sweep_dist_.resize(n);
  const std::span<const VertexId> by_rank = ch_->VerticesByRankDescending();
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const VertexId v = by_rank[pos];
    Distance best = fwd_.Reached(v) ? fwd_.dist[v] : kInfDistance;
    for (const CHGraph::SweepArc& arc : ch_->SweepArcs(pos)) {
      const Distance candidate = sweep_dist_[arc.head_pos] + arc.weight;
      if (candidate < best) best = candidate;
    }
    sweep_dist_[pos] = best;
  }
  for (std::size_t j = 0; j < targets.size(); ++j) {
    out[j] =
        targets[j] == source ? 0.0 : sweep_dist_[ch_->SweepPos(targets[j])];
  }
}

void CHQuery::BucketOneToMany(VertexId source,
                              std::span<const VertexId> targets,
                              std::span<Distance> out) {
  const std::size_t n = ch_->num_vertices();
  std::fill(out.begin(), out.end(), kInfDistance);

  // Bucket phase: one upward search per target; every reached vertex gets
  // a (target, dist-to-target) entry on its chain.
  ++bucket_run_;
  if (bucket_run_ == 0) {
    std::fill(bucket_stamp_.begin(), bucket_stamp_.end(), 0);
    bucket_run_ = 1;
  }
  bucket_entries_.clear();
  for (std::size_t j = 0; j < targets.size(); ++j) {
    const VertexId t = targets[j];
    if (t == source) {
      out[j] = 0.0;
      continue;
    }
    bwd_.Begin(n);
    bwd_.stamp[t] = bwd_.run;
    bwd_.dist[t] = 0.0;
    bwd_.heap.push_back({0.0, t});
    VertexId v = kInvalidVertex;
    Distance d = 0.0;
    while (SettleNext(bwd_, &v, &d)) {
      if (bucket_stamp_[v] != bucket_run_) {
        bucket_stamp_[v] = bucket_run_;
        bucket_head_[v] = kNoEntry;
      }
      bucket_entries_.push_back(
          {static_cast<std::uint32_t>(j), d, bucket_head_[v]});
      bucket_head_[v] = static_cast<std::uint32_t>(bucket_entries_.size()) - 1;
    }
  }

  // Join phase: one upward search from the source, scanning the bucket
  // chain of every vertex it settles.
  fwd_.Begin(n);
  fwd_.stamp[source] = fwd_.run;
  fwd_.dist[source] = 0.0;
  fwd_.heap.push_back({0.0, source});
  VertexId v = kInvalidVertex;
  Distance d = 0.0;
  while (SettleNext(fwd_, &v, &d)) {
    if (bucket_stamp_[v] != bucket_run_) continue;
    for (std::uint32_t e = bucket_head_[v]; e != kNoEntry;
         e = bucket_entries_[e].next) {
      const BucketEntry& entry = bucket_entries_[e];
      const Distance candidate = d + entry.dist;
      if (candidate < out[entry.target_index]) {
        out[entry.target_index] = candidate;
      }
    }
  }
}

}  // namespace ptar
