#include "graph/generators.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/random.h"

namespace ptar {

namespace {

double Jitter(Rng& rng, double base, double frac) {
  if (frac <= 0.0) return base;
  return base * (1.0 + rng.UniformReal(-frac, frac));
}

}  // namespace

StatusOr<RoadNetwork> MakeGridCity(const GridCityOptions& options) {
  if (options.rows < 2 || options.cols < 2) {
    return Status::InvalidArgument("grid city needs at least 2x2 vertices");
  }
  if (options.spacing_meters <= 0.0) {
    return Status::InvalidArgument("spacing must be positive");
  }
  Rng rng(options.seed);
  RoadNetwork::Builder builder;

  const int rows = options.rows;
  const int cols = options.cols;
  const double s = options.spacing_meters;
  const double j = options.coord_jitter * s;

  auto vertex_at = [cols](int r, int c) {
    return static_cast<VertexId>(r * cols + c);
  };

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = c * s + (j > 0 ? rng.UniformReal(-j, j) : 0.0);
      const double y = r * s + (j > 0 ? rng.UniformReal(-j, j) : 0.0);
      builder.AddVertex(Coord{x, y});
    }
  }

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Horizontal and vertical grid edges, each independently removable.
      if (c + 1 < cols && !rng.Bernoulli(options.removal_prob)) {
        builder.AddEdge(vertex_at(r, c), vertex_at(r, c + 1),
                        Jitter(rng, s, options.weight_jitter));
      }
      if (r + 1 < rows && !rng.Bernoulli(options.removal_prob)) {
        builder.AddEdge(vertex_at(r, c), vertex_at(r + 1, c),
                        Jitter(rng, s, options.weight_jitter));
      }
      // Occasional diagonal shortcut.
      if (r + 1 < rows && c + 1 < cols &&
          rng.Bernoulli(options.diagonal_prob)) {
        builder.AddEdge(vertex_at(r, c), vertex_at(r + 1, c + 1),
                        Jitter(rng, s * std::numbers::sqrt2,
                               options.weight_jitter));
      }
    }
  }

  auto built = std::move(builder).Build();
  if (!built.ok()) return built.status();
  return LargestComponent(*built, nullptr);
}

StatusOr<RoadNetwork> MakeRingRadialCity(
    const RingRadialCityOptions& options) {
  if (options.rings < 1 || options.spokes < 3) {
    return Status::InvalidArgument(
        "ring-radial city needs >= 1 ring and >= 3 spokes");
  }
  if (options.ring_spacing_meters <= 0.0) {
    return Status::InvalidArgument("ring spacing must be positive");
  }
  Rng rng(options.seed);
  RoadNetwork::Builder builder;

  const VertexId hub = builder.AddVertex(Coord{0.0, 0.0});
  auto vertex_at = [&](int ring, int spoke) {
    // Ring vertices are laid out ring-major right after the hub.
    return static_cast<VertexId>(1 + ring * options.spokes + spoke);
  };

  for (int ring = 0; ring < options.rings; ++ring) {
    const double radius = (ring + 1) * options.ring_spacing_meters;
    for (int spoke = 0; spoke < options.spokes; ++spoke) {
      const double angle =
          2.0 * std::numbers::pi * spoke / options.spokes;
      builder.AddVertex(
          Coord{radius * std::cos(angle), radius * std::sin(angle)});
    }
  }

  for (int ring = 0; ring < options.rings; ++ring) {
    const double radius = (ring + 1) * options.ring_spacing_meters;
    const double arc =
        2.0 * std::numbers::pi * radius / options.spokes;
    for (int spoke = 0; spoke < options.spokes; ++spoke) {
      const int next_spoke = (spoke + 1) % options.spokes;
      builder.AddEdge(vertex_at(ring, spoke), vertex_at(ring, next_spoke),
                      Jitter(rng, arc, options.weight_jitter));
      if (ring == 0) {
        builder.AddEdge(hub, vertex_at(0, spoke),
                        Jitter(rng, options.ring_spacing_meters,
                               options.weight_jitter));
      } else {
        builder.AddEdge(vertex_at(ring - 1, spoke), vertex_at(ring, spoke),
                        Jitter(rng, options.ring_spacing_meters,
                               options.weight_jitter));
      }
    }
  }

  return std::move(builder).Build();
}

ComponentLabels ConnectedComponents(const RoadNetwork& graph) {
  const std::size_t n = graph.num_vertices();
  ComponentLabels out;
  out.label.assign(n, -1);
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (out.label[start] != -1) continue;
    const int id = out.count++;
    out.label[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const Arc& arc : graph.OutArcs(u)) {
        if (out.label[arc.head] == -1) {
          out.label[arc.head] = id;
          stack.push_back(arc.head);
        }
      }
    }
  }
  return out;
}

bool IsConnected(const RoadNetwork& graph) {
  if (graph.num_vertices() == 0) return true;
  return ConnectedComponents(graph).count == 1;
}

StatusOr<RoadNetwork> LargestComponent(const RoadNetwork& graph,
                                       std::vector<VertexId>* old_to_new) {
  const std::size_t n = graph.num_vertices();
  if (n == 0) {
    return Status::InvalidArgument("empty graph has no components");
  }
  const ComponentLabels components = ConnectedComponents(graph);
  std::vector<std::size_t> sizes(components.count, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++sizes[components.label[v]];
  }
  int best = 0;
  for (int c = 1; c < components.count; ++c) {
    if (sizes[c] > sizes[best]) best = c;
  }

  std::vector<VertexId> mapping(n, kInvalidVertex);
  RoadNetwork::Builder builder;
  for (VertexId v = 0; v < n; ++v) {
    if (components.label[v] == best) {
      mapping[v] = builder.AddVertex(graph.position(v));
    }
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const VertexId u = graph.EdgeU(e);
    const VertexId v = graph.EdgeV(e);
    if (mapping[u] != kInvalidVertex && mapping[v] != kInvalidVertex) {
      builder.AddEdge(mapping[u], mapping[v], graph.EdgeWeight(e));
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return std::move(builder).Build();
}

}  // namespace ptar
