#include "graph/ch_preprocessor.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace ptar {

namespace {

/// Far endpoint of an undirected pool arc seen from `from`.
VertexId Other(const CHGraph::PoolArc& arc, VertexId from) {
  return arc.u == from ? arc.v : arc.u;
}

/// Lazy priority-queue entry; ties broken on vertex id so the contraction
/// order is a pure function of the graph.
struct OrderEntry {
  double priority;
  VertexId vertex;
  friend bool operator>(const OrderEntry& a, const OrderEntry& b) {
    return a.priority > b.priority ||
           (a.priority == b.priority && a.vertex > b.vertex);
  }
};

}  // namespace

std::size_t CHPreprocessor::ContractionShortcuts(VertexId v, bool simulate) {
  // Gather the uncontracted neighbors of v, compacting stale adjacency
  // entries in place and collapsing parallel arcs to the lightest one (the
  // only one shortest paths can use).
  neighbors_.clear();
  neighbor_weight_.clear();
  neighbor_arc_.clear();
  std::vector<std::uint32_t>& adj = adj_[v];
  std::size_t live = 0;
  for (const std::uint32_t p : adj) {
    const CHGraph::PoolArc& arc = pool_[p];
    const VertexId u = Other(arc, v);
    if (contracted_[u]) continue;
    adj[live++] = p;
    bool merged = false;
    for (std::size_t i = 0; i < neighbors_.size(); ++i) {
      if (neighbors_[i] != u) continue;
      if (arc.weight < neighbor_weight_[i]) {
        neighbor_weight_[i] = arc.weight;
        neighbor_arc_[i] = p;
      }
      merged = true;
      break;
    }
    if (!merged) {
      neighbors_.push_back(u);
      neighbor_weight_.push_back(arc.weight);
      neighbor_arc_.push_back(p);
    }
  }
  adj.resize(live);
  if (neighbors_.size() < 2) return 0;

  // Deterministic pair order (and final arc order) regardless of how the
  // adjacency list happened to be permuted.
  std::vector<std::size_t> order(neighbors_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) {
              return neighbors_[a] < neighbors_[b];
            });

  std::size_t shortcuts = 0;
  for (std::size_t oi = 0; oi + 1 < order.size(); ++oi) {
    const std::size_t i = order[oi];
    const VertexId a = neighbors_[i];
    const Distance wav = neighbor_weight_[i];

    // One bounded witness search from a covers every partner b: Dijkstra in
    // the remaining graph with v removed, stopped at the largest detour
    // length or at the settle budget. Tentative labels are genuine path
    // lengths, so they certify witnesses even when the budget ran out
    // before settling b.
    Distance limit = 0.0;
    for (std::size_t oj = oi + 1; oj < order.size(); ++oj) {
      limit = std::max(limit, wav + neighbor_weight_[order[oj]]);
    }
    ++wrun_;
    if (wrun_ == 0) {
      std::fill(wstamp_.begin(), wstamp_.end(), 0);
      wrun_ = 1;
    }
    wheap_.clear();
    wdist_[a] = 0.0;
    wstamp_[a] = wrun_;
    wheap_.push_back({0.0, a});
    std::size_t settled = 0;
    while (!wheap_.empty() && settled < options_.witness_settle_limit) {
      std::pop_heap(wheap_.begin(), wheap_.end(), std::greater<>());
      const WitnessQueueEntry top = wheap_.back();
      wheap_.pop_back();
      if (top.dist > wdist_[top.vertex]) continue;  // stale entry
      if (top.dist > limit) break;
      ++settled;
      for (const std::uint32_t p : adj_[top.vertex]) {
        const CHGraph::PoolArc& arc = pool_[p];
        const VertexId f = Other(arc, top.vertex);
        if (f == v || contracted_[f]) continue;
        const Distance nd = top.dist + arc.weight;
        if (nd > limit) continue;
        if (wstamp_[f] != wrun_ || nd < wdist_[f]) {
          wstamp_[f] = wrun_;
          wdist_[f] = nd;
          wheap_.push_back({nd, f});
          std::push_heap(wheap_.begin(), wheap_.end(), std::greater<>());
        }
      }
    }

    for (std::size_t oj = oi + 1; oj < order.size(); ++oj) {
      const std::size_t j = order[oj];
      const VertexId b = neighbors_[j];
      const Distance needed = wav + neighbor_weight_[j];
      if (wstamp_[b] == wrun_ && wdist_[b] <= needed) continue;  // witness
      ++shortcuts;
      if (simulate) continue;
      CHGraph::PoolArc shortcut;
      shortcut.u = a;
      shortcut.v = b;
      shortcut.weight = needed;
      shortcut.child_a = neighbor_arc_[i];
      shortcut.child_b = neighbor_arc_[j];
      const std::uint32_t idx = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(shortcut);
      adj_[a].push_back(idx);
      adj_[b].push_back(idx);
    }
  }
  return shortcuts;
}

double CHPreprocessor::Priority(VertexId v) {
  const std::size_t shortcuts = ContractionShortcuts(v, /*simulate=*/true);
  return static_cast<double>(shortcuts) -
         static_cast<double>(neighbors_.size()) +
         options_.deleted_neighbor_weight * deleted_neighbors_[v];
}

CHGraph CHPreprocessor::Build(const RoadNetwork& graph) {
  obs::TraceSpan span("ch_preprocess");
  const std::size_t n = graph.num_vertices();
  graph_ = &graph;
  pool_.clear();
  pool_.reserve(graph.num_edges() * 2);  // edges + a shortcut allowance
  adj_.assign(n, {});
  contracted_.assign(n, 0);
  deleted_neighbors_.assign(n, 0);
  wdist_.assign(n, kInfDistance);
  wstamp_.assign(n, 0);
  wrun_ = 0;

  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    CHGraph::PoolArc arc;
    arc.u = graph.EdgeU(e);
    arc.v = graph.EdgeV(e);
    arc.weight = graph.EdgeWeight(e);
    const std::uint32_t idx = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(arc);
    adj_[arc.u].push_back(idx);
    adj_[arc.v].push_back(idx);
  }

  CHGraph ch;
  ch.graph_ = &graph;
  ch.rank_.assign(n, 0);

  // Lazy edge-difference ordering: recompute the popped vertex's priority;
  // contract it only if it is still (deterministically) the minimum.
  std::vector<OrderEntry> heap;
  heap.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    heap.push_back({Priority(v), v});
  }
  std::make_heap(heap.begin(), heap.end(), std::greater<>());

  std::uint32_t next_rank = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    const OrderEntry top = heap.back();
    heap.pop_back();
    const VertexId v = top.vertex;
    if (contracted_[v]) continue;  // stale duplicate entry
    const double priority = Priority(v);
    if (!heap.empty()) {
      const OrderEntry& next = heap.front();
      if (priority > next.priority ||
          (priority == next.priority && v > next.vertex)) {
        heap.push_back({priority, v});
        std::push_heap(heap.begin(), heap.end(), std::greater<>());
        continue;
      }
    }
    ContractionShortcuts(v, /*simulate=*/false);
    contracted_[v] = 1;
    ch.rank_[v] = next_rank++;
    for (const VertexId u : neighbors_) ++deleted_neighbors_[u];
  }
  PTAR_CHECK(next_rank == n);
  ch.by_rank_desc_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    ch.by_rank_desc_[n - 1 - ch.rank_[v]] = v;
  }

  // Flatten the pool into the upward CSR: every arc hangs off its
  // lower-ranked endpoint. Arc order within a vertex is (head rank, pool
  // index) — fixed by construction, so queries are deterministic.
  ch.pool_ = std::move(pool_);
  ch.num_shortcuts_ = ch.pool_.size() - graph.num_edges();
  ch.up_offsets_.assign(n + 1, 0);
  for (const CHGraph::PoolArc& arc : ch.pool_) {
    const VertexId tail = ch.rank_[arc.u] < ch.rank_[arc.v] ? arc.u : arc.v;
    ++ch.up_offsets_[tail + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    ch.up_offsets_[v + 1] += ch.up_offsets_[v];
  }
  ch.up_arcs_.resize(ch.pool_.size());
  std::vector<std::size_t> cursor(ch.up_offsets_.begin(),
                                  ch.up_offsets_.end() - 1);
  for (std::uint32_t p = 0; p < ch.pool_.size(); ++p) {
    const CHGraph::PoolArc& arc = ch.pool_[p];
    const bool u_low = ch.rank_[arc.u] < ch.rank_[arc.v];
    const VertexId tail = u_low ? arc.u : arc.v;
    const VertexId head = u_low ? arc.v : arc.u;
    ch.up_arcs_[cursor[tail]++] = {head, arc.weight, p};
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(ch.up_arcs_.begin() + ch.up_offsets_[v],
              ch.up_arcs_.begin() + ch.up_offsets_[v + 1],
              [&ch](const CHGraph::UpArc& a, const CHGraph::UpArc& b) {
                const std::uint32_t ra = ch.rank_[a.head];
                const std::uint32_t rb = ch.rank_[b.head];
                return ra < rb || (ra == rb && a.pool < b.pool);
              });
  }

  // Sweep CSR: the upward CSR re-laid-out in descending rank order with
  // heads as sweep positions, so the downward sweep touches offsets, arcs,
  // and the distance array in a single forward streaming pass.
  ch.sweep_offsets_.assign(n + 1, 0);
  ch.sweep_arcs_.reserve(ch.up_arcs_.size());
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const VertexId v = ch.by_rank_desc_[pos];
    for (const CHGraph::UpArc& arc : ch.UpArcs(v)) {
      ch.sweep_arcs_.push_back({ch.SweepPos(arc.head), arc.weight});
    }
    ch.sweep_offsets_[pos + 1] = ch.sweep_arcs_.size();
  }

  span.AddArg("vertices", static_cast<std::int64_t>(n));
  span.AddArg("shortcuts", static_cast<std::int64_t>(ch.num_shortcuts_));
  adj_.clear();
  return ch;
}

}  // namespace ptar
