#include "graph/dijkstra.h"

#include <algorithm>

namespace ptar {

DijkstraEngine::DijkstraEngine(const RoadNetwork* graph) : graph_(graph) {
  PTAR_CHECK(graph != nullptr);
  const std::size_t n = graph->num_vertices();
  dist_.assign(n, kInfDistance);
  parent_.assign(n, kInvalidVertex);
  label_.assign(n, 0);
  settled_.assign(n, 0);
  is_target_.assign(n, 0);
  stamp_.assign(n, 0);
  target_stamp_.assign(n, 0);
}

void DijkstraEngine::BeginRun() {
  ++run_stamp_;
  if (run_stamp_ == 0) {
    // Stamp wrapped around: hard-reset so stale entries cannot alias.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    run_stamp_ = 1;
  }
  heap_.clear();
  targets_remaining_ = 0;
  last_settled_count_ = 0;
}

void DijkstraEngine::Seed(VertexId v, Distance dist, std::uint32_t label) {
  PTAR_DCHECK(graph_->IsValidVertex(v));
  if (stamp_[v] == run_stamp_ && dist_[v] <= dist) return;
  stamp_[v] = run_stamp_;
  dist_[v] = dist;
  parent_[v] = kInvalidVertex;
  label_[v] = label;
  settled_[v] = 0;
  heap_.push_back(QueueEntry{dist, v});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void DijkstraEngine::Run(VertexId stop_vertex, Distance radius) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const QueueEntry top = heap_.back();
    heap_.pop_back();
    const VertexId u = top.vertex;
    if (settled_[u] && stamp_[u] == run_stamp_) continue;  // stale entry
    if (top.dist > dist_[u]) continue;                     // stale entry
    if (top.dist > radius) return;
    settled_[u] = 1;
    ++last_settled_count_;
    if (target_stamp_[u] == run_stamp_ && is_target_[u]) {
      is_target_[u] = 0;
      if (--targets_remaining_ == 0 && stop_vertex == kInvalidVertex) return;
    }
    if (u == stop_vertex) return;
    for (const Arc& arc : graph_->OutArcs(u)) {
      const VertexId v = arc.head;
      const Distance nd = top.dist + arc.weight;
      if (stamp_[v] != run_stamp_ || nd < dist_[v]) {
        if (stamp_[v] != run_stamp_) {
          stamp_[v] = run_stamp_;
          settled_[v] = 0;
        }
        dist_[v] = nd;
        parent_[v] = u;
        label_[v] = label_[u];
        heap_.push_back(QueueEntry{nd, v});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
      }
    }
  }
}

Distance DijkstraEngine::PointToPoint(VertexId s, VertexId t) {
  PTAR_DCHECK(graph_->IsValidVertex(s) && graph_->IsValidVertex(t));
  if (s == t) {
    BeginRun();
    Seed(s, 0.0, 0);
    settled_[s] = 1;
    last_settled_count_ = 1;
    return 0.0;
  }
  BeginRun();
  Seed(s, 0.0, 0);
  Run(t, kInfDistance);
  return Dist(t);
}

void DijkstraEngine::SingleSource(VertexId s) {
  BeginRun();
  Seed(s, 0.0, 0);
  Run(kInvalidVertex, kInfDistance);
}

void DijkstraEngine::SingleSourceToTargets(VertexId s,
                                           std::span<const VertexId> targets) {
  BeginRun();
  for (VertexId t : targets) {
    PTAR_DCHECK(graph_->IsValidVertex(t));
    if (target_stamp_[t] != run_stamp_ || !is_target_[t]) {
      target_stamp_[t] = run_stamp_;
      is_target_[t] = 1;
      ++targets_remaining_;
    }
  }
  Seed(s, 0.0, 0);
  if (targets_remaining_ > 0) {
    Run(kInvalidVertex, kInfDistance);
  }
}

void DijkstraEngine::BoundedSingleSource(VertexId s, Distance radius) {
  BeginRun();
  Seed(s, 0.0, 0);
  Run(kInvalidVertex, radius);
}

void DijkstraEngine::MultiSource(std::span<const DijkstraSource> sources) {
  BeginRun();
  for (const DijkstraSource& src : sources) {
    Seed(src.vertex, src.offset, src.label);
  }
  Run(kInvalidVertex, kInfDistance);
}

std::vector<VertexId> DijkstraEngine::PathTo(VertexId t) const {
  std::vector<VertexId> path;
  if (stamp_[t] != run_stamp_ || dist_[t] == kInfDistance) return path;
  for (VertexId v = t; v != kInvalidVertex; v = Parent(v)) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace ptar
