// Fundamental identifier and measurement types for the road-network layer.

#ifndef PTAR_GRAPH_TYPES_H_
#define PTAR_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace ptar {

/// Index of a vertex (road intersection) in a RoadNetwork.
using VertexId = std::uint32_t;

/// Index of an undirected edge (road segment) in a RoadNetwork.
using EdgeId = std::uint32_t;

/// Network distance in meters. The paper converts between time and distance
/// with a constant speed; see kDefaultSpeedMetersPerSec.
using Distance = double;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Sentinel for "unreachable" / "unknown" distances.
inline constexpr Distance kInfDistance =
    std::numeric_limits<Distance>::infinity();

/// The paper's constant vehicle speed: 48 km/h.
inline constexpr double kDefaultSpeedMetersPerSec = 48.0 * 1000.0 / 3600.0;

/// Planar coordinate of a vertex, in meters. Coordinates only drive the grid
/// partitioning and the synthetic generators; all distances used by the
/// algorithms are network (shortest-path) distances.
struct Coord {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Coord& a, const Coord& b) {
    return a.x == b.x && a.y == b.y;
  }
};

}  // namespace ptar

#endif  // PTAR_GRAPH_TYPES_H_
