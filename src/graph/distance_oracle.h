// Counting, caching front-end for exact shortest-path distance queries.
//
// The paper's main cost measure besides wall-clock time is "compdists": the
// number of shortest-path distance computations an algorithm performs. Every
// matcher draws distances exclusively through a DistanceOracle so the count
// is uniform across BA / SSA / DSA. A per-oracle memo cache means a pair is
// computed (and counted) at most once until the cache is cleared; matchers
// clear it per request.

#ifndef PTAR_GRAPH_DISTANCE_ORACLE_H_
#define PTAR_GRAPH_DISTANCE_ORACLE_H_

#include <cstdint>
#include <unordered_map>

#include "graph/dijkstra.h"
#include "graph/road_network.h"
#include "graph/types.h"

namespace ptar {

class DistanceOracle {
 public:
  explicit DistanceOracle(const RoadNetwork* graph)
      : graph_(graph), engine_(graph) {}

  DistanceOracle(const DistanceOracle&) = delete;
  DistanceOracle& operator=(const DistanceOracle&) = delete;

  /// Exact shortest-path distance between a and b (undirected, so symmetric).
  /// Counts one compdist unless the pair is already cached.
  Distance Dist(VertexId a, VertexId b);

  /// Shortest path (vertex sequence) between a and b. Counts one compdist and
  /// caches the endpoint distance.
  std::vector<VertexId> Path(VertexId a, VertexId b);

  /// Number of actual point-to-point computations since construction or the
  /// last ResetStats().
  std::uint64_t compdists() const { return compdists_; }
  void ResetStats() { compdists_ = 0; }

  /// Drops all memoized pairs (typically between requests).
  void ClearCache() { cache_.clear(); }
  std::size_t cache_size() const { return cache_.size(); }

  const RoadNetwork& graph() const { return *graph_; }

 private:
  static std::uint64_t Key(VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  const RoadNetwork* graph_;
  DijkstraEngine engine_;
  std::unordered_map<std::uint64_t, Distance> cache_;
  std::uint64_t compdists_ = 0;
};

}  // namespace ptar

#endif  // PTAR_GRAPH_DISTANCE_ORACLE_H_
