// Counting, caching front-end for exact shortest-path distance queries.
//
// The paper's main cost measure besides wall-clock time is "compdists": the
// number of shortest-path distance computations an algorithm performs. Every
// matcher draws distances exclusively through a DistanceOracle so the count
// is uniform across BA / SSA / DSA. A per-oracle memo cache means a pair is
// computed (and counted) at most once until the cache is cleared; matchers
// clear it per request.
//
// Two interchangeable exact backends sit below the cache:
//  - kDijkstra (default): plain Dijkstra sweeps (DijkstraEngine), one
//    one-to-many sweep per batch.
//  - kCH: contraction-hierarchy queries (CHQuery over a shared prebuilt
//    CHGraph) — bidirectional point-to-point; one-to-many via buckets for
//    small batches or a PHAST-style downward sweep for large ones.
// Both are exact; compdist accounting and BatchStats semantics are
// backend-independent. Values may differ between backends in the low bits
// (floating-point sums associate differently along shortcuts), which is
// inside the tolerance every cross-implementation comparison in this
// codebase already applies.
//
// Bit-determinism contract: within one cache epoch (between ClearCache
// calls) every query for a pair returns the exact same double, because the
// first computation is memoized under a symmetric key. The value is the
// backend's result in the direction the pair was first asked, which is
// itself deterministic for a deterministic query sequence. On kDijkstra,
// BatchDist(s, ts) is additionally bit-identical to the equivalent serial
// Dist calls: a sweep settles every target with exactly the value
// PointToPoint(s, t) would produce (the heap evolution up to t's
// settlement does not depend on the stopping rule). On kCH, batch and
// serial answers for the same pair may differ in the low bits when the
// batch takes the downward-sweep path (its sums associate top-down while
// the bidirectional query adds fwd + bwd halves) — the memo cache still
// makes whichever value was computed first the epoch-stable answer.
//
// Two tiers of batching:
//  - BatchDist: for pairs the caller is *guaranteed* to need. Counts one
//    compdist per uncached pair, exactly like the equivalent serial Dist
//    calls, so the paper's Section VII accounting is unchanged.
//  - WarmFrom: speculative prefetch for pairs a pruning hook may skip.
//    Sweeps the targets but parks the results in an uncounted side store;
//    Dist() promotes a warmed pair into the real cache and counts it at
//    that moment — the same moment a serial run would have computed it.
//
// Connected-component labels (computed once at construction) short-circuit
// unreachable pairs: they are answered kInfDistance — still cached and
// counted exactly as before — without running a search, so a sweep with
// unreachable targets no longer drains the whole component's queue.

#ifndef PTAR_GRAPH_DISTANCE_ORACLE_H_
#define PTAR_GRAPH_DISTANCE_ORACLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/status.h"
#include "graph/ch_graph.h"
#include "graph/ch_query.h"
#include "graph/dijkstra.h"
#include "graph/road_network.h"
#include "graph/types.h"

namespace ptar {

/// Which exact shortest-path engine serves a DistanceOracle's misses.
enum class DistanceBackend {
  kDijkstra,  ///< Plain Dijkstra sweeps; no preprocessing.
  kCH,        ///< Contraction hierarchy + bucket one-to-many queries.
};

/// "dijkstra" / "ch" (the --distance_backend flag vocabulary).
const char* DistanceBackendName(DistanceBackend backend);
StatusOr<DistanceBackend> ParseDistanceBackend(const std::string& name);

class DistanceOracle {
 public:
  /// Expected live pairs per request; used to pre-size the memo cache so the
  /// per-request fill never rehashes.
  static constexpr std::size_t kDefaultCacheReserve = 1024;

  /// Dijkstra-backed oracle.
  explicit DistanceOracle(const RoadNetwork* graph)
      : DistanceOracle(graph, nullptr) {}

  /// CH-backed oracle when `ch` is non-null (it must be built over `graph`
  /// and outlive the oracle); Dijkstra-backed otherwise.
  DistanceOracle(const RoadNetwork* graph, const CHGraph* ch);

  DistanceOracle(const DistanceOracle&) = delete;
  DistanceOracle& operator=(const DistanceOracle&) = delete;

  DistanceBackend backend() const {
    return ch_ == nullptr ? DistanceBackend::kDijkstra : DistanceBackend::kCH;
  }

  /// Exact shortest-path distance between a and b (undirected, so symmetric).
  /// Counts one compdist unless the pair is already cached.
  Distance Dist(VertexId a, VertexId b);

  /// Distances from `source` to every target, in target order, via (at most)
  /// one one-to-many query. Semantically identical — including compdist
  /// accounting and returned bits — to calling Dist(source, t) for each t in
  /// order: cached pairs are served from the cache, every distinct uncached
  /// pair counts exactly one compdist, duplicates count once, and
  /// source==target pairs are 0.0 and free. `out` is resized to
  /// targets.size().
  void BatchDist(VertexId source, std::span<const VertexId> targets,
                 std::vector<Distance>* out);

  /// Speculative prefetch: one sweep from `source` covering every target not
  /// already cached or warmed. Counts **no** compdists and does not populate
  /// the memo cache; results wait in a side store until a Dist() call
  /// promotes (and counts) them. Safe to over-approximate the target set —
  /// pairs never asked for are never counted.
  void WarmFrom(VertexId source, std::span<const VertexId> targets);

  /// Shortest path (vertex sequence) between a and b. Counts one compdist and
  /// caches the endpoint distance. Empty if b is unreachable.
  std::vector<VertexId> Path(VertexId a, VertexId b);

  /// Number of actual point-to-point computations since construction or the
  /// last ResetStats().
  std::uint64_t compdists() const { return compdists_; }
  void ResetStats() {
    compdists_ = 0;
    faults_ = 0;
  }

  /// Fault-injection seam (src/check): the hook is consulted once per pair
  /// on every *actual* backend computation (point-to-point or per sweep
  /// target) — never for cached, warmed, or different-component pairs.
  /// Returning true makes the oracle answer kInfDistance for that pair,
  /// which is then cached and counted exactly like a real computation; the
  /// hook body may also sleep to emulate a slow backend. Decisions must be
  /// a pure function of the pair (plus hook-internal seeds) to preserve
  /// the oracle's determinism contract. Pass nullptr to uninstall.
  using FaultHook = std::function<bool(VertexId, VertexId)>;
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }
  bool has_fault_hook() const { return static_cast<bool>(fault_hook_); }

  /// Number of computations the fault hook failed since ResetStats().
  /// Matchers use a nonzero count to tag their result `complete = false`.
  std::uint64_t faults() const { return faults_; }

  /// Batching instrumentation (sweeps run, pairs per sweep, warm hits).
  const BatchStats& batch_stats() const { return batch_stats_; }
  void ResetBatchStats() { batch_stats_ = BatchStats{}; }

  /// Drops all memoized pairs (typically between requests) but keeps the
  /// tables' bucket capacity, so steady-state request processing does not
  /// rehash every request.
  void ClearCache() {
    cache_.clear();
    warm_.clear();
  }
  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_bucket_count() const { return cache_.bucket_count(); }

  const RoadNetwork& graph() const { return *graph_; }

 private:
  static std::uint64_t Key(VertexId a, VertexId b) {
    static_assert(sizeof(VertexId) <= sizeof(std::uint32_t),
                  "Key() packs two VertexIds into 64 bits; widen the key "
                  "before widening VertexId");
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  bool SameComponent(VertexId a, VertexId b) const {
    return component_[a] == component_[b];
  }

  /// Backend dispatch for an uncached point-to-point pair (reachability
  /// already checked).
  Distance ComputePointToPoint(VertexId a, VertexId b);

  /// Backend dispatch for one one-to-many query over `sweep_targets_`;
  /// results land in `sweep_dists_` (same order).
  void ComputeSweep(VertexId source);

  /// Consults the fault hook for every sweep target, overriding failed
  /// targets in `sweep_dists_` with kInfDistance.
  void ApplyFaultHookToSweep(VertexId source);

  const RoadNetwork* graph_;
  const CHGraph* ch_;
  DijkstraEngine engine_;
  /// Per-oracle CH workspace (null on the Dijkstra backend); the CHGraph
  /// itself is shared and immutable, so concurrent oracles never contend.
  std::unique_ptr<CHQuery> ch_query_;
  /// Connected-component label per vertex; pairs in different components
  /// are answered without a search.
  std::vector<int> component_;
  std::unordered_map<std::uint64_t, Distance> cache_;
  /// Uncounted prefetch results from WarmFrom; promoted into cache_ (and
  /// counted) on first Dist() use.
  std::unordered_map<std::uint64_t, Distance> warm_;
  std::uint64_t compdists_ = 0;
  std::uint64_t faults_ = 0;
  FaultHook fault_hook_;
  BatchStats batch_stats_;
  /// Scratch for BatchDist/WarmFrom (avoids per-call allocation).
  std::vector<VertexId> sweep_targets_;
  std::vector<Distance> sweep_dists_;
};

}  // namespace ptar

#endif  // PTAR_GRAPH_DISTANCE_ORACLE_H_
