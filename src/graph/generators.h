// Synthetic road-network generators.
//
// The paper evaluates on the Shanghai road network (122,319 vertices /
// 188,426 edges), which is not redistributable. These generators produce
// connected, planar-ish undirected weighted networks with the same structural
// role: a dense urban grid with irregularities (missing segments, diagonal
// shortcuts, jittered geometry) or a ring-radial downtown. All randomness is
// seed-driven and reproducible.

#ifndef PTAR_GRAPH_GENERATORS_H_
#define PTAR_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/road_network.h"

namespace ptar {

/// Options for MakeGridCity. Defaults give a ~2.5k-vertex, 5 km x 5 km city.
struct GridCityOptions {
  int rows = 50;               ///< Intersection rows.
  int cols = 50;               ///< Intersection columns.
  double spacing_meters = 100.0;  ///< Block edge length.
  double coord_jitter = 0.25;  ///< Vertex position jitter, fraction of spacing.
  double removal_prob = 0.08;  ///< Probability of deleting a grid edge.
  double diagonal_prob = 0.05; ///< Probability of adding a diagonal shortcut.
  double weight_jitter = 0.15; ///< Multiplicative edge-weight jitter.
  std::uint64_t seed = 42;
};

/// Perturbed Manhattan grid. Always returns the largest connected component,
/// so the result may have slightly fewer than rows*cols vertices.
StatusOr<RoadNetwork> MakeGridCity(const GridCityOptions& options);

/// Options for MakeRingRadialCity (a downtown with ring roads and radial
/// avenues, denser near the center).
struct RingRadialCityOptions {
  int rings = 12;
  int spokes = 24;
  double ring_spacing_meters = 250.0;
  double weight_jitter = 0.1;
  std::uint64_t seed = 42;
};

/// Ring-and-radial city; includes a central hub vertex.
StatusOr<RoadNetwork> MakeRingRadialCity(const RingRadialCityOptions& options);

/// Component id per vertex (0-based) and the number of components.
struct ComponentLabels {
  std::vector<int> label;
  int count = 0;
};
ComponentLabels ConnectedComponents(const RoadNetwork& graph);

bool IsConnected(const RoadNetwork& graph);

/// Restricts the graph to its largest connected component. `old_to_new`, if
/// non-null, receives the vertex mapping (kInvalidVertex for dropped
/// vertices).
StatusOr<RoadNetwork> LargestComponent(const RoadNetwork& graph,
                                       std::vector<VertexId>* old_to_new);

}  // namespace ptar

#endif  // PTAR_GRAPH_GENERATORS_H_
