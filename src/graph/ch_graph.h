// Contraction-hierarchy search structure.
//
// A CHGraph is the immutable output of CHPreprocessor: every vertex carries
// a contraction rank, and the arc pool holds the original undirected edges
// plus every shortcut added during contraction. Because the road network is
// undirected, a single *upward* CSR (arcs from each vertex to its
// higher-ranked neighbors) serves both the forward and the backward side of
// a bidirectional query — the downward graph is exactly the upward graph
// with arcs reversed, so a "downward search toward t" is an upward search
// *from* t.
//
// Shortcuts remember the two pool arcs they replaced, so any query-time arc
// can be unpacked recursively into the original-edge vertex sequence it
// represents (used by DistanceOracle::Path).
//
// A CHGraph is plain immutable data after construction: concurrent readers
// (one CHQuery workspace per DistanceOracle) need no synchronization.

#ifndef PTAR_GRAPH_CH_GRAPH_H_
#define PTAR_GRAPH_CH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/road_network.h"
#include "graph/types.h"

namespace ptar {

class CHGraph {
 public:
  /// Sentinel pool index: the arc is an original edge, not a shortcut.
  static constexpr std::uint32_t kNoChild = 0xFFFFFFFFu;

  /// One undirected arc of the hierarchy. Original edges have
  /// child_a == child_b == kNoChild; a shortcut (u, v) created while
  /// contracting m stores its two halves (u, m) and (m, v) as pool indices.
  struct PoolArc {
    VertexId u = kInvalidVertex;
    VertexId v = kInvalidVertex;
    Distance weight = 0.0;
    std::uint32_t child_a = kNoChild;
    std::uint32_t child_b = kNoChild;
  };

  /// One entry of the upward CSR: an arc from a vertex to a strictly
  /// higher-ranked neighbor. `pool` indexes the PoolArc for unpacking.
  struct UpArc {
    VertexId head = kInvalidVertex;
    Distance weight = 0.0;
    std::uint32_t pool = kNoChild;
  };

  CHGraph() = default;

  std::size_t num_vertices() const { return rank_.size(); }
  std::size_t num_arcs() const { return pool_.size(); }
  std::size_t num_shortcuts() const { return num_shortcuts_; }

  /// Contraction order position of v: 0 = contracted first (least
  /// important), n-1 = contracted last. Ranks are a permutation of [0, n).
  std::uint32_t rank(VertexId v) const { return rank_[v]; }

  /// Arcs from v to its higher-ranked neighbors (original + shortcuts).
  std::span<const UpArc> UpArcs(VertexId v) const {
    return {up_arcs_.data() + up_offsets_[v],
            up_offsets_[v + 1] - up_offsets_[v]};
  }

  /// Every vertex, ordered by descending rank (most important first). The
  /// PHAST-style downward sweep scans this order: when a vertex is visited,
  /// all its upward neighbors already hold final distances.
  std::span<const VertexId> VerticesByRankDescending() const {
    return by_rank_desc_;
  }

  /// One entry of the sweep CSR: the upward CSR re-indexed by descending
  /// rank so the downward sweep streams memory linearly. `head_pos` is the
  /// *position* of the arc head in VerticesByRankDescending() — always
  /// strictly smaller than the tail's position, so a single forward pass
  /// over positions reads only already-final slots.
  struct SweepArc {
    std::uint32_t head_pos = 0;
    Distance weight = 0.0;
  };

  /// Position of v in VerticesByRankDescending() (0 = highest rank).
  std::uint32_t SweepPos(VertexId v) const {
    return static_cast<std::uint32_t>(rank_.size()) - 1 - rank_[v];
  }

  /// Upward arcs of the vertex at sweep position `pos`, heads given as
  /// sweep positions (same arcs as UpArcs(by_rank_desc_[pos])).
  std::span<const SweepArc> SweepArcs(std::uint32_t pos) const {
    return {sweep_arcs_.data() + sweep_offsets_[pos],
            sweep_offsets_[pos + 1] - sweep_offsets_[pos]};
  }

  const PoolArc& pool_arc(std::uint32_t p) const { return pool_[p]; }

  /// Appends the original-graph vertex sequence of pool arc `p`, walked
  /// starting from endpoint `from`, to *out. `from` itself is not appended;
  /// the far endpoint is. Every consecutive pair of the appended sequence
  /// (including `from` -> first appended vertex) is an original edge.
  void UnpackArc(std::uint32_t p, VertexId from,
                 std::vector<VertexId>* out) const;

  /// Approximate resident memory of the hierarchy, in bytes.
  std::size_t MemoryBytes() const;

  const RoadNetwork& graph() const { return *graph_; }

 private:
  friend class CHPreprocessor;

  const RoadNetwork* graph_ = nullptr;
  std::vector<std::uint32_t> rank_;
  std::vector<VertexId> by_rank_desc_;  ///< Inverse rank permutation.
  std::vector<PoolArc> pool_;
  std::vector<std::size_t> up_offsets_;
  std::vector<UpArc> up_arcs_;
  std::vector<std::size_t> sweep_offsets_;
  std::vector<SweepArc> sweep_arcs_;
  std::size_t num_shortcuts_ = 0;
};

}  // namespace ptar

#endif  // PTAR_GRAPH_CH_GRAPH_H_
