#include "graph/ch_graph.h"

#include "common/logging.h"

namespace ptar {

void CHGraph::UnpackArc(std::uint32_t p, VertexId from,
                        std::vector<VertexId>* out) const {
  const PoolArc& arc = pool_[p];
  PTAR_DCHECK(arc.u == from || arc.v == from);
  if (arc.child_a == kNoChild) {
    out->push_back(arc.u == from ? arc.v : arc.u);
    return;
  }
  // The two halves share the contracted middle vertex; exactly one of them
  // touches `from` (the middle differs from both shortcut endpoints).
  const PoolArc& first = pool_[arc.child_a];
  const std::uint32_t near_half =
      (first.u == from || first.v == from) ? arc.child_a : arc.child_b;
  const std::uint32_t far_half =
      near_half == arc.child_a ? arc.child_b : arc.child_a;
  UnpackArc(near_half, from, out);
  UnpackArc(far_half, out->back(), out);
}

std::size_t CHGraph::MemoryBytes() const {
  return rank_.size() * sizeof(std::uint32_t) +
         by_rank_desc_.size() * sizeof(VertexId) +
         pool_.size() * sizeof(PoolArc) +
         up_offsets_.size() * sizeof(std::size_t) +
         up_arcs_.size() * sizeof(UpArc) +
         sweep_offsets_.size() * sizeof(std::size_t) +
         sweep_arcs_.size() * sizeof(SweepArc);
}

}  // namespace ptar
