#include "graph/distance_oracle.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace ptar {

Distance DistanceOracle::Dist(VertexId a, VertexId b) {
  if (a == b) return 0.0;
  const std::uint64_t key = Key(a, b);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  if (!warm_.empty()) {
    auto wit = warm_.find(key);
    if (wit != warm_.end()) {
      // Promote a prefetched pair: this is the moment an unbatched run
      // would have computed it, so this is the moment it counts.
      ++compdists_;
      ++batch_stats_.warm_hits;
      cache_.emplace(key, wit->second);
      return wit->second;
    }
  }
  // Only the real search gets a span: cache and warm hits are nanosecond
  // paths and are accounted by BatchStats counters instead.
  PTAR_TRACE_SPAN("oracle_p2p");
  const Distance d = engine_.PointToPoint(a, b);
  ++compdists_;
  cache_.emplace(key, d);
  return d;
}

void DistanceOracle::BatchDist(VertexId source,
                               std::span<const VertexId> targets,
                               std::vector<Distance>* out) {
  ++batch_stats_.batch_calls;
  batch_stats_.pairs_requested += targets.size();
  out->clear();
  out->resize(targets.size(), kInfDistance);

  // Pass 1: serve what the cache (or warm store) already has and collect the
  // distinct pairs that genuinely need a search.
  sweep_targets_.clear();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const VertexId t = targets[i];
    if (t == source) {
      (*out)[i] = 0.0;
      continue;
    }
    const std::uint64_t key = Key(source, t);
    if (auto it = cache_.find(key); it != cache_.end()) {
      (*out)[i] = it->second;
      ++batch_stats_.pairs_from_cache;
      continue;
    }
    if (auto wit = warm_.find(key); wit != warm_.end()) {
      // Same promotion rule as Dist(): counted on first real use.
      ++compdists_;
      ++batch_stats_.warm_hits;
      cache_.emplace(key, wit->second);
      (*out)[i] = wit->second;
      continue;
    }
    // Mark as pending so a duplicate later in `targets` is not swept (or
    // counted) twice; resolved in pass 2.
    if (cache_.emplace(key, kInfDistance).second) {
      sweep_targets_.push_back(t);
    }
  }

  if (!sweep_targets_.empty()) {
    // One sweep settles every pending target with bit-identical values to
    // per-target PointToPoint(source, t) runs: Dijkstra's heap evolution up
    // to each settlement is independent of the stopping rule.
    obs::TraceSpan span("oracle_sweep");
    span.AddArg("targets", static_cast<std::int64_t>(sweep_targets_.size()));
    engine_.SingleSourceToTargets(source, sweep_targets_);
    ++batch_stats_.sweeps;
    batch_stats_.pairs_swept += sweep_targets_.size();
    compdists_ += sweep_targets_.size();
    for (const VertexId t : sweep_targets_) {
      cache_[Key(source, t)] = engine_.Dist(t);
    }
  }

  // Pass 2: fill the slots that were pending (including duplicates).
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const VertexId t = targets[i];
    if (t == source || (*out)[i] != kInfDistance) continue;
    const auto it = cache_.find(Key(source, t));
    PTAR_DCHECK(it != cache_.end());
    (*out)[i] = it->second;
  }
}

void DistanceOracle::WarmFrom(VertexId source,
                              std::span<const VertexId> targets) {
  sweep_targets_.clear();
  for (const VertexId t : targets) {
    if (t == source) continue;
    const std::uint64_t key = Key(source, t);
    if (cache_.contains(key)) continue;
    // emplace doubles as the dedup check within this batch.
    if (warm_.emplace(key, kInfDistance).second) {
      sweep_targets_.push_back(t);
    }
  }
  if (sweep_targets_.empty()) return;
  obs::TraceSpan span("oracle_warm_sweep");
  span.AddArg("targets", static_cast<std::int64_t>(sweep_targets_.size()));
  engine_.SingleSourceToTargets(source, sweep_targets_);
  ++batch_stats_.sweeps;
  for (const VertexId t : sweep_targets_) {
    warm_[Key(source, t)] = engine_.Dist(t);
  }
}

std::vector<VertexId> DistanceOracle::Path(VertexId a, VertexId b) {
  if (a == b) return {a};
  PTAR_TRACE_SPAN("oracle_path");
  const Distance d = engine_.PointToPoint(a, b);
  ++compdists_;
  cache_[Key(a, b)] = d;
  return engine_.PathTo(b);
}

}  // namespace ptar
