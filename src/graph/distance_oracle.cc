#include "graph/distance_oracle.h"

#include <algorithm>

namespace ptar {

Distance DistanceOracle::Dist(VertexId a, VertexId b) {
  if (a == b) return 0.0;
  const std::uint64_t key = Key(a, b);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  // Always search from the smaller id: dist(a, b) and dist(b, a) are equal
  // mathematically but can differ in the last ulp (different float
  // summation order), and callers compare prices for exact dominance ties.
  // A canonical direction makes every caller see bit-identical values.
  const Distance d = engine_.PointToPoint(std::min(a, b), std::max(a, b));
  ++compdists_;
  cache_.emplace(key, d);
  return d;
}

std::vector<VertexId> DistanceOracle::Path(VertexId a, VertexId b) {
  if (a == b) return {a};
  const Distance d = engine_.PointToPoint(a, b);
  ++compdists_;
  cache_[Key(a, b)] = d;
  return engine_.PathTo(b);
}

}  // namespace ptar
