#include "graph/distance_oracle.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/generators.h"
#include "obs/trace.h"

namespace ptar {

const char* DistanceBackendName(DistanceBackend backend) {
  switch (backend) {
    case DistanceBackend::kDijkstra:
      return "dijkstra";
    case DistanceBackend::kCH:
      return "ch";
  }
  return "unknown";
}

StatusOr<DistanceBackend> ParseDistanceBackend(const std::string& name) {
  if (name == "dijkstra") return DistanceBackend::kDijkstra;
  if (name == "ch") return DistanceBackend::kCH;
  return Status::InvalidArgument("unknown distance backend '" + name +
                                 "' (expected dijkstra or ch)");
}

DistanceOracle::DistanceOracle(const RoadNetwork* graph, const CHGraph* ch)
    : graph_(graph), ch_(ch), engine_(graph) {
  if (ch_ != nullptr) {
    PTAR_CHECK(&ch_->graph() == graph);
    ch_query_ = std::make_unique<CHQuery>(ch_);
  }
  component_ = ConnectedComponents(*graph).label;
  cache_.reserve(kDefaultCacheReserve);
  warm_.reserve(kDefaultCacheReserve);
}

Distance DistanceOracle::ComputePointToPoint(VertexId a, VertexId b) {
  if (fault_hook_ && fault_hook_(a, b)) {
    ++faults_;
    return kInfDistance;
  }
  if (ch_query_ != nullptr) return ch_query_->PointToPoint(a, b);
  return engine_.PointToPoint(a, b);
}

void DistanceOracle::ApplyFaultHookToSweep(VertexId source) {
  if (!fault_hook_) return;
  for (std::size_t i = 0; i < sweep_targets_.size(); ++i) {
    if (fault_hook_(source, sweep_targets_[i])) {
      sweep_dists_[i] = kInfDistance;
      ++faults_;
    }
  }
}

void DistanceOracle::ComputeSweep(VertexId source) {
  sweep_dists_.assign(sweep_targets_.size(), kInfDistance);
  if (ch_query_ != nullptr) {
    ch_query_->OneToMany(source, sweep_targets_,
                         std::span<Distance>(sweep_dists_));
    ApplyFaultHookToSweep(source);
    return;
  }
  engine_.SingleSourceToTargets(source, sweep_targets_);
  for (std::size_t i = 0; i < sweep_targets_.size(); ++i) {
    sweep_dists_[i] = engine_.Dist(sweep_targets_[i]);
  }
  ApplyFaultHookToSweep(source);
}

Distance DistanceOracle::Dist(VertexId a, VertexId b) {
  if (a == b) return 0.0;
  const std::uint64_t key = Key(a, b);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  if (!warm_.empty()) {
    auto wit = warm_.find(key);
    if (wit != warm_.end()) {
      // Promote a prefetched pair: this is the moment an unbatched run
      // would have computed it, so this is the moment it counts.
      ++compdists_;
      ++batch_stats_.warm_hits;
      cache_.emplace(key, wit->second);
      return wit->second;
    }
  }
  if (!SameComponent(a, b)) {
    // Unreachable: counted and cached like any computation, no search.
    ++compdists_;
    cache_.emplace(key, kInfDistance);
    return kInfDistance;
  }
  // Only the real search gets a span: cache and warm hits are nanosecond
  // paths and are accounted by BatchStats counters instead.
  PTAR_TRACE_SPAN("oracle_p2p");
  const Distance d = ComputePointToPoint(a, b);
  ++compdists_;
  cache_.emplace(key, d);
  return d;
}

void DistanceOracle::BatchDist(VertexId source,
                               std::span<const VertexId> targets,
                               std::vector<Distance>* out) {
  ++batch_stats_.batch_calls;
  batch_stats_.pairs_requested += targets.size();
  out->clear();
  out->resize(targets.size(), kInfDistance);

  // Pass 1: serve what the cache (or warm store) already has and collect the
  // distinct pairs that genuinely need a search.
  sweep_targets_.clear();
  std::size_t pending = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const VertexId t = targets[i];
    if (t == source) {
      (*out)[i] = 0.0;
      continue;
    }
    const std::uint64_t key = Key(source, t);
    if (auto it = cache_.find(key); it != cache_.end()) {
      (*out)[i] = it->second;
      ++batch_stats_.pairs_from_cache;
      continue;
    }
    if (auto wit = warm_.find(key); wit != warm_.end()) {
      // Same promotion rule as Dist(): counted on first real use.
      ++compdists_;
      ++batch_stats_.warm_hits;
      cache_.emplace(key, wit->second);
      (*out)[i] = wit->second;
      continue;
    }
    // Mark as pending so a duplicate later in `targets` is not swept (or
    // counted) twice; resolved in pass 2. For a different-component target
    // the pending marker kInfDistance *is* the answer, so it never joins
    // the sweep.
    if (cache_.emplace(key, kInfDistance).second) {
      ++pending;
      if (SameComponent(source, t)) sweep_targets_.push_back(t);
    }
  }

  if (pending > 0) {
    // Every distinct pending pair counts as one computation whether it was
    // resolved by the sweep or by the component labels — identical to the
    // pre-label accounting, where unreachable targets rode the sweep.
    ++batch_stats_.sweeps;
    batch_stats_.pairs_swept += pending;
    compdists_ += pending;
    if (!sweep_targets_.empty()) {
      // One sweep settles every pending target with bit-identical values to
      // per-target PointToPoint(source, t) runs: Dijkstra's heap evolution
      // up to each settlement is independent of the stopping rule, and the
      // CH bucket join minimizes the same label sums as the bidirectional
      // query.
      obs::TraceSpan span("oracle_sweep");
      span.AddArg("targets",
                  static_cast<std::int64_t>(sweep_targets_.size()));
      ComputeSweep(source);
      for (std::size_t i = 0; i < sweep_targets_.size(); ++i) {
        cache_[Key(source, sweep_targets_[i])] = sweep_dists_[i];
      }
    }
  }

  // Pass 2: fill the slots that were pending (including duplicates).
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const VertexId t = targets[i];
    if (t == source || (*out)[i] != kInfDistance) continue;
    const auto it = cache_.find(Key(source, t));
    PTAR_DCHECK(it != cache_.end());
    (*out)[i] = it->second;
  }
}

void DistanceOracle::WarmFrom(VertexId source,
                              std::span<const VertexId> targets) {
  sweep_targets_.clear();
  std::size_t pending = 0;
  for (const VertexId t : targets) {
    if (t == source) continue;
    const std::uint64_t key = Key(source, t);
    if (cache_.contains(key)) continue;
    // emplace doubles as the dedup check within this batch; as in
    // BatchDist, the kInfDistance marker is already correct for
    // different-component targets.
    if (warm_.emplace(key, kInfDistance).second) {
      ++pending;
      if (SameComponent(source, t)) sweep_targets_.push_back(t);
    }
  }
  if (pending > 0) ++batch_stats_.sweeps;
  if (sweep_targets_.empty()) return;
  obs::TraceSpan span("oracle_warm_sweep");
  span.AddArg("targets", static_cast<std::int64_t>(sweep_targets_.size()));
  ComputeSweep(source);
  for (std::size_t i = 0; i < sweep_targets_.size(); ++i) {
    warm_[Key(source, sweep_targets_[i])] = sweep_dists_[i];
  }
}

std::vector<VertexId> DistanceOracle::Path(VertexId a, VertexId b) {
  if (a == b) return {a};
  if (!SameComponent(a, b)) {
    ++compdists_;
    cache_[Key(a, b)] = kInfDistance;
    return {};
  }
  PTAR_TRACE_SPAN("oracle_path");
  ++compdists_;
  if (fault_hook_ && fault_hook_(a, b)) {
    ++faults_;
    cache_[Key(a, b)] = kInfDistance;
    return {};
  }
  if (ch_query_ != nullptr) {
    Distance d = kInfDistance;
    std::vector<VertexId> path = ch_query_->Path(a, b, &d);
    cache_[Key(a, b)] = d;
    return path;
  }
  const Distance d = engine_.PointToPoint(a, b);
  cache_[Key(a, b)] = d;
  return engine_.PathTo(b);
}

}  // namespace ptar
