// Immutable undirected weighted road network in CSR (compressed sparse row)
// form, plus a mutable Builder.
//
// This is the paper's G = <V, E, W>: vertices are road intersections with
// planar coordinates, edges are road segments weighted by travel distance
// (convertible to travel time at constant speed).

#ifndef PTAR_GRAPH_ROAD_NETWORK_H_
#define PTAR_GRAPH_ROAD_NETWORK_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace ptar {

/// One directed arc in the CSR adjacency structure. Each undirected edge
/// contributes two arcs that share an EdgeId.
struct Arc {
  VertexId head = kInvalidVertex;  ///< Target vertex of this arc.
  Distance weight = 0.0;           ///< Travel distance in meters.
  EdgeId edge = kInvalidEdge;      ///< Undirected edge this arc belongs to.
};

/// Immutable road network. Construct through RoadNetwork::Builder.
class RoadNetwork {
 public:
  /// Incrementally accumulates vertices and undirected edges, then
  /// validates and freezes them into a RoadNetwork.
  class Builder {
   public:
    /// Adds a vertex at the given planar position and returns its id.
    VertexId AddVertex(Coord position);

    /// Adds an undirected edge between two existing vertices.
    /// Returns the edge id. Self-loops and non-positive weights are
    /// rejected at Build() time.
    EdgeId AddEdge(VertexId u, VertexId v, Distance weight);

    /// Convenience: adds an edge weighted by the Euclidean distance between
    /// the endpoint coordinates.
    EdgeId AddEdgeEuclidean(VertexId u, VertexId v);

    std::size_t num_vertices() const { return coords_.size(); }
    std::size_t num_edges() const { return edge_us_.size(); }

    /// Validates the accumulated data and produces the immutable network.
    StatusOr<RoadNetwork> Build() &&;

   private:
    std::vector<Coord> coords_;
    std::vector<VertexId> edge_us_;
    std::vector<VertexId> edge_vs_;
    std::vector<Distance> edge_weights_;
  };

  RoadNetwork() = default;

  RoadNetwork(const RoadNetwork&) = default;
  RoadNetwork& operator=(const RoadNetwork&) = default;
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;

  std::size_t num_vertices() const { return coords_.size(); }
  std::size_t num_edges() const { return edge_us_.size(); }

  bool IsValidVertex(VertexId v) const { return v < coords_.size(); }

  const Coord& position(VertexId v) const {
    PTAR_DCHECK(IsValidVertex(v));
    return coords_[v];
  }

  /// Outgoing arcs of v (one per incident undirected edge).
  std::span<const Arc> OutArcs(VertexId v) const {
    PTAR_DCHECK(IsValidVertex(v));
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  std::size_t Degree(VertexId v) const { return OutArcs(v).size(); }

  /// Endpoints / weight of an undirected edge.
  VertexId EdgeU(EdgeId e) const { return edge_us_[e]; }
  VertexId EdgeV(EdgeId e) const { return edge_vs_[e]; }
  Distance EdgeWeight(EdgeId e) const { return edge_weights_[e]; }

  /// Straight-line distance between the coordinates of two vertices. This is
  /// a geometric helper only — never a substitute for network distance.
  double EuclideanDistance(VertexId u, VertexId v) const;

  /// Approximate resident memory of the CSR structure, in bytes.
  std::size_t MemoryBytes() const;

 private:
  friend class Builder;

  std::vector<Coord> coords_;
  // CSR adjacency: arcs_[offsets_[v] .. offsets_[v+1]) are v's arcs.
  std::vector<std::size_t> offsets_;
  std::vector<Arc> arcs_;
  // Per-undirected-edge data.
  std::vector<VertexId> edge_us_;
  std::vector<VertexId> edge_vs_;
  std::vector<Distance> edge_weights_;
};

}  // namespace ptar

#endif  // PTAR_GRAPH_ROAD_NETWORK_H_
