// Text serialization of road networks.
//
// Format (one record per line, '#' comments allowed anywhere):
//   ptar-network 1
//   <num_vertices> <num_edges>
//   v <x> <y>              repeated num_vertices times, in vertex-id order
//   e <u> <v> <weight>     repeated num_edges times
//
// The same format can load third-party data (e.g. OSM extracts converted to
// an edge list) as a substitute for the paper's Shanghai network.

#ifndef PTAR_GRAPH_IO_H_
#define PTAR_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/road_network.h"

namespace ptar {

Status SaveNetwork(const RoadNetwork& graph, std::ostream& out);
Status SaveNetworkToFile(const RoadNetwork& graph, const std::string& path);

StatusOr<RoadNetwork> LoadNetwork(std::istream& in);
StatusOr<RoadNetwork> LoadNetworkFromFile(const std::string& path);

}  // namespace ptar

#endif  // PTAR_GRAPH_IO_H_
