// Offline contraction-hierarchy construction.
//
// Contracts the vertices of a RoadNetwork one by one in lazy
// edge-difference order: the next vertex contracted is (approximately) the
// one whose removal adds the fewest shortcuts relative to the arcs it
// removes, re-evaluated lazily at pop time so the priority queue never has
// to be rebuilt. For every pair of uncontracted neighbors (a, b) of the
// contracted vertex v, a *witness search* — a bounded local Dijkstra from a
// that ignores v — decides whether the detour through v is needed; only
// when no witness path of length <= w(a,v) + w(v,b) is found is the
// shortcut (a, b) added. The witness search is capped (settled-vertex
// budget), which can only *add* unnecessary shortcuts, never miss a needed
// one, so the hierarchy stays exact.
//
// All tie-breaking is on vertex id, so the contraction order — and hence
// every downstream query result — is deterministic for a given graph.

#ifndef PTAR_GRAPH_CH_PREPROCESSOR_H_
#define PTAR_GRAPH_CH_PREPROCESSOR_H_

#include <cstdint>
#include <vector>

#include "graph/ch_graph.h"
#include "graph/road_network.h"

namespace ptar {

struct CHPreprocessorOptions {
  /// Settled-vertex budget per witness search. Larger values find more
  /// witnesses (fewer shortcuts, slower preprocessing); smaller values
  /// preprocess faster but emit more shortcuts. Exactness is unaffected.
  std::size_t witness_settle_limit = 64;
  /// Weight of the deleted-neighbors term in the lazy priority (favors
  /// spreading contractions uniformly over the graph).
  double deleted_neighbor_weight = 1.0;
};

class CHPreprocessor {
 public:
  explicit CHPreprocessor(const CHPreprocessorOptions& options = {})
      : options_(options) {}

  /// Contracts every vertex of `graph` and returns the finished hierarchy.
  /// The graph must outlive the returned CHGraph.
  CHGraph Build(const RoadNetwork& graph);

 private:
  /// Live (uncontracted-endpoint) arcs incident to v, as pool indices.
  struct WitnessSearch;

  /// Counts (simulate == true) or materializes (simulate == false) the
  /// shortcuts required to contract v. Returns the number of shortcuts.
  std::size_t ContractionShortcuts(VertexId v, bool simulate);

  /// Lazy priority of v: edge difference plus the deleted-neighbors term.
  double Priority(VertexId v);

  CHPreprocessorOptions options_;

  // --- Build-time state (reset per Build call). ---
  const RoadNetwork* graph_ = nullptr;
  std::vector<CHGraph::PoolArc> pool_;
  /// Per-vertex live adjacency: pool indices of arcs whose far endpoint is
  /// not yet contracted.
  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<std::uint8_t> contracted_;
  std::vector<std::uint32_t> deleted_neighbors_;

  // Witness-search scratch (stamped so clears are O(touched)).
  std::vector<Distance> wdist_;
  std::vector<std::uint32_t> wstamp_;
  std::uint32_t wrun_ = 0;
  struct WitnessQueueEntry {
    Distance dist;
    VertexId vertex;
    friend bool operator>(const WitnessQueueEntry& a,
                          const WitnessQueueEntry& b) {
      return a.dist > b.dist || (a.dist == b.dist && a.vertex > b.vertex);
    }
  };
  std::vector<WitnessQueueEntry> wheap_;

  // Scratch for ContractionShortcuts.
  std::vector<VertexId> neighbors_;
  std::vector<Distance> neighbor_weight_;
  std::vector<std::uint32_t> neighbor_arc_;
};

}  // namespace ptar

#endif  // PTAR_GRAPH_CH_PREPROCESSOR_H_
