#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/random.h"

namespace ptar {

namespace {

/// Per-hotspot discrete distribution over vertices, weighted by a Gaussian
/// of the Euclidean distance to the hotspot center.
class HotspotSampler {
 public:
  HotspotSampler(const RoadNetwork& graph, const Coord& center,
                 double stddev) {
    const std::size_t n = graph.num_vertices();
    std::vector<double> weights(n);
    const double inv_two_var = 1.0 / (2.0 * stddev * stddev);
    for (VertexId v = 0; v < n; ++v) {
      const Coord& p = graph.position(v);
      const double dx = p.x - center.x;
      const double dy = p.y - center.y;
      weights[v] = std::exp(-(dx * dx + dy * dy) * inv_two_var);
    }
    dist_ = std::discrete_distribution<std::size_t>(weights.begin(),
                                                    weights.end());
  }

  VertexId Sample(Rng& rng) {
    return static_cast<VertexId>(dist_(rng.engine()));
  }

 private:
  std::discrete_distribution<std::size_t> dist_;
};

}  // namespace

StatusOr<std::vector<Request>> GenerateWorkload(
    const RoadNetwork& graph, const WorkloadOptions& options) {
  if (graph.num_vertices() < 2) {
    return Status::InvalidArgument("workload needs at least two vertices");
  }
  if (options.num_requests == 0) {
    return std::vector<Request>{};
  }
  if (options.duration_seconds <= 0.0 || options.speed_mps <= 0.0) {
    return Status::InvalidArgument("duration and speed must be positive");
  }
  if (options.riders < 1) {
    return Status::InvalidArgument("riders must be >= 1");
  }

  Rng rng(options.seed);

  std::vector<HotspotSampler> hotspots;
  hotspots.reserve(options.num_hotspots);
  for (int h = 0; h < options.num_hotspots; ++h) {
    const VertexId center =
        static_cast<VertexId>(rng.UniformIndex(graph.num_vertices()));
    hotspots.emplace_back(graph, graph.position(center),
                          options.hotspot_stddev_meters);
  }

  auto sample_vertex = [&]() -> VertexId {
    if (!hotspots.empty() && rng.Bernoulli(options.hotspot_prob)) {
      return hotspots[rng.UniformIndex(hotspots.size())].Sample(rng);
    }
    return static_cast<VertexId>(rng.UniformIndex(graph.num_vertices()));
  };

  // Arrival times: uniform, or rejection-sampled from a two-peak rush-hour
  // intensity (1 + sharpness * (N(0.3T) + N(0.75T))).
  const double duration = options.duration_seconds;
  auto intensity = [&](double t) {
    const double u = t / duration;
    auto bump = [](double x, double center) {
      const double z = (x - center) / 0.08;
      return std::exp(-0.5 * z * z);
    };
    return 1.0 + options.peak_sharpness * (bump(u, 0.3) + bump(u, 0.75));
  };
  const double intensity_max = 1.0 + 2.0 * options.peak_sharpness;
  std::vector<double> times;
  times.reserve(options.num_requests);
  while (times.size() < options.num_requests) {
    const double t = rng.UniformReal(0.0, duration);
    if (options.peak_sharpness <= 0.0 ||
        rng.UniformReal(0.0, intensity_max) <= intensity(t)) {
      times.push_back(t);
    }
  }
  std::sort(times.begin(), times.end());

  const Distance max_wait_dist =
      options.waiting_minutes * 60.0 * options.speed_mps;

  std::vector<Request> requests;
  requests.reserve(options.num_requests);
  for (std::size_t i = 0; i < options.num_requests; ++i) {
    Request r;
    r.id = static_cast<RequestId>(i);
    r.start = sample_vertex();
    do {
      r.destination = sample_vertex();
    } while (r.destination == r.start);
    r.riders = options.riders;
    r.max_wait_dist = max_wait_dist;
    r.epsilon = options.epsilon;
    r.submit_time = times[i];
    requests.push_back(r);
  }
  return requests;
}

}  // namespace ptar
