#include "sim/trace_io.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace ptar {

namespace {

constexpr char kHeader[] =
    "id,submit_time,start,destination,riders,max_wait_dist,epsilon";

bool NextLine(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    const std::size_t first = line->find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if ((*line)[first] == '#') continue;
    // Strip trailing CR for files written on other platforms.
    while (!line->empty() && line->back() == '\r') line->pop_back();
    return true;
  }
  return false;
}

}  // namespace

Status SaveRequests(const std::vector<Request>& requests, std::ostream& out) {
  out << kHeader << "\n";
  out << std::setprecision(17);
  for (const Request& r : requests) {
    out << r.id << ',' << r.submit_time << ',' << r.start << ','
        << r.destination << ',' << r.riders << ',' << r.max_wait_dist << ','
        << r.epsilon << "\n";
  }
  if (!out) return Status::IoError("write failed");
  return Status::OK();
}

Status SaveRequestsToFile(const std::vector<Request>& requests,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveRequests(requests, out);
}

StatusOr<std::vector<Request>> LoadRequests(std::istream& in,
                                            const RoadNetwork& graph) {
  std::string line;
  if (!NextLine(in, &line)) return Status::IoError("empty trace");
  if (line != kHeader) {
    return Status::InvalidArgument("bad trace header: '" + line +
                                   "' (expected '" + kHeader + "')");
  }
  std::vector<Request> requests;
  while (NextLine(in, &line)) {
    std::istringstream row(line);
    Request r;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    char c4 = 0;
    char c5 = 0;
    char c6 = 0;
    if (!(row >> r.id >> c1 >> r.submit_time >> c2 >> r.start >> c3 >>
          r.destination >> c4 >> r.riders >> c5 >> r.max_wait_dist >> c6 >>
          r.epsilon) ||
        c1 != ',' || c2 != ',' || c3 != ',' || c4 != ',' || c5 != ',' ||
        c6 != ',') {
      return Status::InvalidArgument("bad trace row: " + line);
    }
    if (!graph.IsValidVertex(r.start) || !graph.IsValidVertex(r.destination)) {
      return Status::OutOfRange("trace row references unknown vertex: " +
                                line);
    }
    if (r.start == r.destination) {
      return Status::InvalidArgument("trace row with start == destination: " +
                                     line);
    }
    if (r.riders < 1 || r.max_wait_dist < 0.0 || r.epsilon < 0.0 ||
        r.submit_time < 0.0) {
      return Status::InvalidArgument("trace row with invalid parameters: " +
                                     line);
    }
    requests.push_back(r);
  }
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.submit_time < b.submit_time;
                   });
  return requests;
}

StatusOr<std::vector<Request>> LoadRequestsFromFile(const std::string& path,
                                                    const RoadNetwork& graph) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return LoadRequests(in, graph);
}

}  // namespace ptar
