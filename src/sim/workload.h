// Synthetic ridesharing workload generator.
//
// Stand-in for the paper's Shanghai taxi trace (432,327 trips over one day):
// the paper uses the trace only as a stream of <submit-time, start, end>
// triples, so we generate the same shape — arrivals spread over a time
// window and origins/destinations drawn from a mixture of Gaussian spatial
// hotspots (dense urban attractors) and a uniform background. Requests carry
// the experiment-fixed n / w / eps (paper Section VII). Fully seeded.

#ifndef PTAR_SIM_WORKLOAD_H_
#define PTAR_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "kinetic/request.h"

namespace ptar {

struct WorkloadOptions {
  std::size_t num_requests = 1000;
  double duration_seconds = 3600.0;  ///< Arrival window [0, duration).
  int riders = 1;                    ///< n, fixed per experiment.
  double waiting_minutes = 2.0;      ///< w (paper default 2 min).
  double epsilon = 0.2;              ///< Service constraint (default 0.2).
  double speed_mps = kDefaultSpeedMetersPerSec;  ///< For w -> distance.
  /// Time-of-day demand shape: 0 gives uniform arrivals; larger values
  /// concentrate arrivals into two rush peaks (at 30 % and 75 % of the
  /// window), mimicking a day of taxi demand.
  double peak_sharpness = 0.0;
  int num_hotspots = 4;
  double hotspot_stddev_meters = 800.0;
  /// Probability that an endpoint is drawn from a hotspot rather than
  /// uniformly.
  double hotspot_prob = 0.7;
  std::uint64_t seed = 7;
};

/// Generates a request stream sorted by submit time, with ids 0..n-1.
StatusOr<std::vector<Request>> GenerateWorkload(const RoadNetwork& graph,
                                                const WorkloadOptions& options);

}  // namespace ptar

#endif  // PTAR_SIM_WORKLOAD_H_
