// Request-parallel pipeline (DESIGN.md §12).
//
// The classic Run() mirrors the paper's online setting literally: one
// request at a time, one matcher latency per request, throughput capped at
// 1/latency regardless of core count. RunPipelined overlaps many
// independent dispatch queries instead: the stream is cut into waves,
// every request in a wave is matched concurrently against one frozen
// registry snapshot, and the results are committed serially in request-id
// order with conflict-aware arbitration.
//
//   admission -> advance -> refresh -> snapshot -> parallel match
//            -> id-ordered commit -> (losers re-match, bounded) -> next wave
//
// Determinism contract: for a fixed wave_size, committed assignments are
// identical at every engine_threads value. Matcher workers read only the
// immutable snapshot and their own per-worker oracle/budget/matcher, the
// arbiter is id-ordered, and all rng and overload-ladder draws happen
// serially in id order on the pipeline thread. The only documented
// exception is a configured wall-clock deadline (overload.deadline_ms),
// which is nondeterministic by design. `--serial_check` re-runs the
// workload at engine_threads=1 and compares CommitRecords to enforce this.

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace ptar {

namespace {

/// One admitted request travelling through a wave.
struct InFlight {
  const Request* request = nullptr;
  /// Ladder level captured at admission; fixes this request's budget and
  /// matcher even if the ladder moves before its worker runs.
  DegradeLevel level = DegradeLevel::kFull;
  MatchResult result;
  double elapsed_micros = 0.0;  ///< Worker-measured match wall time.
  bool budget_exhausted = false;
  bool deadline_hit = false;  ///< Worker budget's latched wall deadline.
  // --- Lifecycle attribution (deterministic; recorded at commit). ---
  std::uint64_t wave = 0;            ///< 1-based admission wave.
  std::uint64_t snapshot_epoch = 0;  ///< Epoch of the committing match.
  std::uint64_t budget_limit = 0;
  std::uint64_t budget_spent = 0;
  std::uint64_t conflicts = 0;       ///< Times a lower id took the vehicle.
  std::uint64_t rematch_rounds = 0;  ///< Snapshot re-matches run.
  bool serial_tail = false;          ///< Exhausted the re-match bound.
};

/// Everything one matcher worker owns. Nothing here is shared between
/// workers, so the parallel phase reads only the snapshot and writes only
/// pre-assigned InFlight slots.
struct WorkerCtx {
  std::unique_ptr<Matcher> matcher;  ///< Full-level matcher (factory-built).
  SsaMatcher ssa{0.16};              ///< kSsa fallback (paper default).
  GridScanMatcher grid_scan;         ///< kGridScan fallback.
  std::unique_ptr<DistanceOracle> oracle;
  WorkBudget budget;
};

}  // namespace

int Engine::ResolvedWaveSize() const {
  if (options_.wave_size > 0) return options_.wave_size;
  return std::max(1, 2 * options_.engine_threads);
}

RunStats Engine::RunPipelined(std::span<const Request> requests,
                              const MatcherFactory& make_matcher,
                              std::vector<CommitRecord>* commit_log) {
  PTAR_CHECK(make_matcher != nullptr);
  const int workers = options_.engine_threads;
  const std::size_t wave_size = static_cast<std::size_t>(ResolvedWaveSize());
  if (workers > 1 && engine_pool_ == nullptr) {
    engine_pool_ = std::make_unique<ThreadPool>(workers);
    engine_pool_->SetTaskWaitObserver([](double wait_micros) {
      obs::TraceRecorder::Global().RecordEndingNow("pool_queue_wait",
                                                   wait_micros);
    });
  }

  // Per-worker state. Built per call: the factory may capture caller
  // configuration, and per-call construction keeps the engine free of
  // matcher-type state. Worker w's oracle takes fault hook slot w, mirroring
  // the classic engine's slot-per-concurrent-oracle convention.
  std::vector<WorkerCtx> worker_ctxs(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    worker_ctxs[w].matcher = make_matcher();
    PTAR_CHECK(worker_ctxs[w].matcher != nullptr);
    worker_ctxs[w].oracle =
        std::make_unique<DistanceOracle>(graph_, ch_graph_.get());
    if (fault_hook_factory_) {
      worker_ctxs[w].oracle->SetFaultHook(
          fault_hook_factory_(static_cast<std::size_t>(w)));
    }
  }

  RunStats stats;
  stats.matchers.resize(1);
  stats.matchers[0].name = worker_ctxs[0].matcher->name();
  MatcherAggregate& agg = stats.matchers[0];

  // Histogram slots are resolved under the quiesce lock: metrics_ is part
  // of the quiesced state a concurrent AuditFleet may touch.
  obs::LatencyHistogram* matcher_latency_us;
  obs::LatencyHistogram* matcher_compdists;
  obs::LatencyHistogram* matcher_options;
  obs::LatencyHistogram* queue_depth;
  obs::LatencyHistogram* wave_advance_us;
  obs::LatencyHistogram* wave_match_us;
  obs::LatencyHistogram* wave_commit_us;
  obs::LatencyHistogram* snapshot_us;
  obs::LatencyHistogram* request_latency_us;
  {
    std::lock_guard<std::mutex> setup_guard(quiesce_mu_);
    const std::string matcher_base = "matcher/" + agg.name;
    matcher_latency_us = &metrics_.Histogram(matcher_base + "/latency_us");
    matcher_compdists = &metrics_.Histogram(matcher_base + "/compdists");
    matcher_options = &metrics_.Histogram(matcher_base + "/options");
    queue_depth = &metrics_.Histogram("pipeline/queue_depth");
    wave_advance_us = &metrics_.Histogram("pipeline/wave_advance_us");
    wave_match_us = &metrics_.Histogram("pipeline/wave_match_us");
    wave_commit_us = &metrics_.Histogram("pipeline/wave_commit_us");
    snapshot_us = &metrics_.Histogram("pipeline/snapshot_us");
    request_latency_us = &metrics_.Histogram("pipeline/request_latency_us");
  }

  // Runs `fn(w)` for every worker index owning at least one of `count`
  // requests (round-robin: request i belongs to worker i % workers), on the
  // pool when present, inline otherwise. One task per worker, not per
  // request: coarse tasks keep queue traffic negligible.
  const auto parallel_match = [&](std::size_t count, auto&& fn) {
    const int active =
        static_cast<int>(std::min<std::size_t>(count, workers));
    if (engine_pool_ == nullptr || active <= 1) {
      for (int w = 0; w < active; ++w) fn(w);
      return;
    }
    std::vector<std::future<void>> pending;
    pending.reserve(active);
    for (int w = 0; w < active; ++w) {
      pending.push_back(engine_pool_->Submit([&fn, w] { fn(w); }));
    }
    for (std::future<void>& f : pending) f.get();
  };

  // Matches `inflight[i]` on worker `w`'s private state against the frozen
  // snapshot. Called concurrently, one invocation per (worker, request).
  const auto match_one = [&](InFlight& inf, WorkerCtx& wctx,
                             const RegistrySnapshot& snapshot) {
    // Request and wave ids ride on the span so a Perfetto track can be
    // correlated with the lifecycle log's records.
    obs::TraceSpan span("pipeline_match");
    span.AddArg("request", static_cast<std::int64_t>(inf.request->id));
    span.AddArg("wave", static_cast<std::int64_t>(inf.wave));
    inf.snapshot_epoch = snapshot.global_epoch();
    MatchContext ctx;
    ctx.grid = grid_;
    ctx.registry = &registry_;
    ctx.fleet = &fleet_;
    ctx.oracle = wctx.oracle.get();
    ctx.price_model = PriceModel{};
    ctx.snapshot = &snapshot;
    if (overload_.enabled()) {
      wctx.budget = WorkBudget(overload_.BudgetForLevel(inf.level),
                               overload_.DeadlineMicros());
      // Armed on the worker so a wall deadline starts when the matcher
      // does, not while the request waits for its worker's earlier slice.
      wctx.budget.Arm();
      ctx.budget = &wctx.budget;
    }
    Matcher* matcher = wctx.matcher.get();
    if (inf.level == DegradeLevel::kSsa) matcher = &wctx.ssa;
    if (inf.level == DegradeLevel::kGridScan) matcher = &wctx.grid_scan;
    Timer timer;
    inf.result = matcher->Match(*inf.request, ctx);
    inf.elapsed_micros = timer.ElapsedMicros();
    if (overload_.enabled()) {
      inf.budget_exhausted = wctx.budget.Exhausted();
      inf.deadline_hit = wctx.budget.deadline_hit();
      // Captured per request: the worker reuses its budget object for its
      // next slice, so the committing values must be latched here.
      inf.budget_limit = wctx.budget.max_units();
      inf.budget_spent = wctx.budget.used();
    }
  };

  // Final-disposition observability, called only from the serial commit
  // pass (and the serial tail) so record order — and therefore the
  // lifecycle file — is identical at every engine_threads value.
  // `latency_micros` is the admission-to-commit wall time of the wave
  // timer, the pipeline's per-request commit latency.
  const auto record_outcome = [&](const InFlight& inf, const Option* chosen,
                                  double latency_micros) {
    if (obs::MetricsRegistry* w =
            TelemetryWindowFor(inf.request->submit_time)) {
      w->AddCounter(obs::kWindowRequests);
      w->AddCounter(chosen != nullptr ? obs::kWindowServed
                                      : obs::kWindowUnserved);
      if (!inf.result.complete) w->AddCounter(obs::kWindowPartial);
      w->AddCounter(obs::kWindowLadderLevels[static_cast<int>(inf.level)]);
      if (inf.conflicts > 0) {
        w->AddCounter(obs::kWindowConflicts, inf.conflicts);
      }
      if (inf.rematch_rounds > 0) {
        w->AddCounter(obs::kWindowRematches, inf.rematch_rounds);
      }
      w->Histogram(obs::kWindowCommitLatencyUs).Add(latency_micros);
    }
    if (lifecycle_ != nullptr && lifecycle_->enabled() &&
        lifecycle_->Sampled(inf.request->id)) {
      obs::LifecycleEvent event;
      event.request = inf.request->id;
      event.submit_time = inf.request->submit_time;
      event.wave = inf.wave;
      event.snapshot_epoch = inf.snapshot_epoch;
      event.level = DegradeLevelName(inf.level);
      event.matcher = inf.level == DegradeLevel::kFull
                          ? agg.name
                          : (inf.level == DegradeLevel::kSsa
                                 ? worker_ctxs[0].ssa.name()
                                 : worker_ctxs[0].grid_scan.name());
      event.budget_limit = inf.budget_limit;
      event.budget_spent = inf.budget_spent;
      event.budget_exhausted = inf.budget_exhausted;
      event.partial = !inf.result.complete;
      event.options = inf.result.options.size();
      event.conflicts = inf.conflicts;
      event.rematch_rounds = inf.rematch_rounds;
      event.serial_tail = inf.serial_tail;
      event.disposition = chosen != nullptr ? "served" : "unserved";
      if (chosen != nullptr) {
        event.vehicle = chosen->vehicle;
        event.pickup_dist = chosen->pickup_dist;
        event.price = chosen->price;
      }
      event.match_us = inf.elapsed_micros;
      if (overload_.DeadlineMicros() > 0.0) {
        event.deadline_slack_us = std::max(
            0.0, overload_.DeadlineMicros() - inf.elapsed_micros);
      }
      lifecycle_->Record(event);
    }
  };

  std::vector<CommitRecord> records;
  records.reserve(requests.size());

  std::size_t next = 0;
  while (next < requests.size()) {
    // One wave per lock hold: outside threads (AuditFleet) observe the
    // world only at wave boundaries — the quiesced epoch.
    std::lock_guard<std::mutex> wave_guard(quiesce_mu_);
    obs::TraceSpan wave_span("pipeline_wave");
    const std::span<const Request> wave =
        requests.subspan(next, std::min(wave_size, requests.size() - next));
    next += wave.size();
    ++stats.waves;
    wave_span.AddArg("wave", static_cast<std::int64_t>(stats.waves));
    Timer wave_timer;

    // --- Admission (id order): shed or capture the ladder level. ---
    std::vector<InFlight> admitted;
    admitted.reserve(wave.size());
    for (const Request& request : wave) {
      const DegradeLevel level = overload_.level();
      stats.ladder_requests[static_cast<int>(level)] += 1;
      if (overload_.enabled()) {
        metrics_.AddCounter("degrade/level" +
                                std::to_string(static_cast<int>(level)) +
                                "_requests",
                            1);
      }
      if (level == DegradeLevel::kShed) {
        ++stats.shed_requests;
        ++stats.unserved;
        metrics_.AddCounter("degrade/shed_requests", 1);
        records.push_back({.request = request.id, .shed = true});
        // Shedding is (nearly) free, so it counts as a good signal; the
        // ladder can recover mid-admission and later requests of the same
        // wave then match again.
        ObserveOverload(0.0, /*budget_exhausted=*/false);
        if (obs::MetricsRegistry* w =
                TelemetryWindowFor(request.submit_time)) {
          w->AddCounter(obs::kWindowRequests);
          w->AddCounter(obs::kWindowShed);
          w->AddCounter(
              obs::kWindowLadderLevels[static_cast<int>(level)]);
        }
        if (lifecycle_ != nullptr && lifecycle_->enabled()) {
          obs::LifecycleEvent event;
          event.request = request.id;
          event.submit_time = request.submit_time;
          event.wave = stats.waves;
          event.level = DegradeLevelName(level);
          event.disposition = "shed";
          lifecycle_->Record(event);
        }
        continue;
      }
      InFlight inf;
      inf.request = &request;
      inf.level = level;
      inf.wave = stats.waves;
      admitted.push_back(std::move(inf));
    }
    queue_depth->Add(static_cast<double>(admitted.size()));

    // --- Advance the world to the wave's horizon, once per wave. ---
    {
      Timer timer;
      AdvanceTo(wave.back().submit_time);
      RefreshStaleTrees();
      wave_advance_us->Add(timer.ElapsedMicros());
    }

    // --- Match / commit rounds. ---
    std::vector<InFlight> pending = std::move(admitted);
    std::unordered_set<VehicleId> touched;
    int round = 0;
    while (!pending.empty()) {
      RegistrySnapshot snapshot;
      {
        Timer timer;
        snapshot = registry_.TakeSnapshot();
        snapshot_us->Add(timer.ElapsedMicros());
      }
      {
        PTAR_TRACE_SPAN("pipeline_match_round");
        Timer timer;
        parallel_match(pending.size(), [&](int w) {
          for (std::size_t i = static_cast<std::size_t>(w);
               i < pending.size(); i += workers) {
            match_one(pending[i], worker_ctxs[w], snapshot);
          }
        });
        wave_match_us->Add(timer.ElapsedMicros());
      }
      // Commits mutate the registry in place once no snapshot shares its
      // shards; drop the view before the commit pass so the steady state
      // never pays a COW clone.
      snapshot = RegistrySnapshot();

      Timer commit_timer;
      touched.clear();
      std::vector<InFlight> losers;
      for (InFlight& inf : pending) {
        if (round == 0) {
          // Ladder signals are fed once per request, in id order, from the
          // request's own worker-side measurements.
          ObserveOverload(inf.elapsed_micros, inf.budget_exhausted,
                          inf.deadline_hit);
          if (!inf.result.complete) {
            ++stats.partial_skylines;
            metrics_.AddCounter("degrade/partial_skylines", 1);
          }
          if (inf.level == DegradeLevel::kFull) {
            // Aggregates describe the configured matcher, so degraded
            // requests (fallback matchers) are excluded, like the classic
            // engine excludes them from slot 0.
            agg.totals.Accumulate(inf.result.stats);
            agg.latency_ms.Add(inf.result.stats.elapsed_micros / 1e3);
            ++agg.requests;
            agg.options_sum += inf.result.options.size();
            agg.precision_sum += 1.0;  // committing matcher is its own
            agg.recall_sum += 1.0;     // reference
            matcher_latency_us->Add(inf.result.stats.elapsed_micros);
            matcher_compdists->Add(
                static_cast<double>(inf.result.stats.compdists));
            matcher_options->Add(
                static_cast<double>(inf.result.options.size()));
          }
        }
        const Option* chosen = ChooseOption(inf.result.options);
        if (chosen == nullptr) {
          ++stats.unserved;
          records.push_back({.request = inf.request->id});
          request_latency_us->Add(wave_timer.ElapsedMicros());
          record_outcome(inf, nullptr, wave_timer.ElapsedMicros());
          continue;
        }
        if (touched.contains(chosen->vehicle)) {
          // Conflict: a lower-id request of this round already took the
          // vehicle, so this result is stale. Re-match against a fresh
          // snapshot next round. The first loser of the next round faces
          // an empty touched set, so every round commits >= 1 request.
          ++stats.conflicts;
          ++inf.conflicts;
          losers.push_back(std::move(inf));
          continue;
        }
        touched.insert(chosen->vehicle);
        ++stats.served;
        CommitChoice(*inf.request, *chosen);
        records.push_back({.request = inf.request->id,
                           .served = true,
                           .vehicle = chosen->vehicle,
                           .pickup_dist = chosen->pickup_dist,
                           .price = chosen->price});
        request_latency_us->Add(wave_timer.ElapsedMicros());
        record_outcome(inf, chosen, wave_timer.ElapsedMicros());
        if (options_.audit_after_commit) AuditAfterCommit(chosen->vehicle);
      }
      wave_commit_us->Add(commit_timer.ElapsedMicros());

      if (losers.empty()) break;
      if (round >= options_.max_rematch_rounds) {
        // Re-match bound exhausted: the stragglers match serially against
        // live state, which cannot conflict.
        for (InFlight& inf : losers) {
          ++stats.serial_rematches;
          inf.serial_tail = true;
          match_one(inf, worker_ctxs[0], registry_.TakeSnapshot());
          const Option* chosen = ChooseOption(inf.result.options);
          if (chosen == nullptr) {
            ++stats.unserved;
            records.push_back({.request = inf.request->id});
          } else {
            ++stats.served;
            CommitChoice(*inf.request, *chosen);
            records.push_back({.request = inf.request->id,
                               .served = true,
                               .vehicle = chosen->vehicle,
                               .pickup_dist = chosen->pickup_dist,
                               .price = chosen->price});
            if (options_.audit_after_commit) {
              AuditAfterCommit(chosen->vehicle);
            }
          }
          request_latency_us->Add(wave_timer.ElapsedMicros());
          record_outcome(inf, chosen, wave_timer.ElapsedMicros());
        }
        break;
      }
      stats.rematches += losers.size();
      for (InFlight& inf : losers) ++inf.rematch_rounds;
      pending = std::move(losers);
      ++round;
    }
  }

  stats.shared = shared_requests_.size();
  std::lock_guard<std::mutex> harvest_guard(quiesce_mu_);
  metrics_.AddCounter("pipeline/waves", stats.waves);
  metrics_.AddCounter("pipeline/conflicts", stats.conflicts);
  metrics_.AddCounter("pipeline/rematches", stats.rematches);
  metrics_.AddCounter("pipeline/serial_rematches", stats.serial_rematches);

  // Worker oracle batching stats merge into ONE key: the sum over requests
  // is identical at every thread count (each request's match work is
  // deterministic and worker assignment only partitions it).
  for (WorkerCtx& wctx : worker_ctxs) {
    metrics_.MergeBatchStats("pipeline/match/batch",
                             wctx.oracle->batch_stats());
    wctx.oracle->ResetBatchStats();
  }
  if (engine_pool_ != nullptr) {
    const std::uint64_t tasks = engine_pool_->tasks_run();
    const std::uint64_t wait = engine_pool_->total_wait_micros();
    metrics_.AddCounter("pool/engine_tasks_run",
                        tasks - engine_pool_tasks_harvested_);
    metrics_.AddCounter("pool/engine_queue_wait_micros",
                        wait - engine_pool_wait_harvested_);
    engine_pool_tasks_harvested_ = tasks;
    engine_pool_wait_harvested_ = wait;
  }

  if (commit_log != nullptr) {
    // Id order, not commit order: the serial_check contract compares each
    // request's final disposition, independent of the internal schedule.
    std::sort(records.begin(), records.end(),
              [](const CommitRecord& a, const CommitRecord& b) {
                return a.request < b.request;
              });
    *commit_log = std::move(records);
  }
  return stats;
}

}  // namespace ptar
