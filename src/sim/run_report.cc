#include "sim/run_report.h"

namespace ptar {

obs::RunReport BuildRunReport(const RunStats& stats,
                              const obs::MetricsRegistry& metrics,
                              const std::string& tool) {
  obs::RunReport report;
  report.tool = tool;
  report.served = stats.served;
  report.unserved = stats.unserved;
  report.shared = stats.shared;
  report.shed_requests = stats.shed_requests;
  report.partial_skylines = stats.partial_skylines;
  report.ladder_requests = stats.ladder_requests;
  report.waves = stats.waves;
  report.conflicts = stats.conflicts;
  report.rematches = stats.rematches;
  report.serial_rematches = stats.serial_rematches;
  report.matchers.reserve(stats.matchers.size());
  for (const MatcherAggregate& agg : stats.matchers) {
    obs::MatcherReport m;
    m.name = agg.name;
    m.requests = agg.requests;
    m.options_sum = agg.options_sum;
    m.verified_vehicles = agg.totals.verified_vehicles;
    m.compdists = agg.totals.compdists;
    m.scanned_cells = agg.totals.scanned_cells;
    m.pruned_cells = agg.totals.pruned_cells;
    m.pruned_vehicles = agg.totals.pruned_vehicles;
    m.elapsed_micros = agg.totals.elapsed_micros;
    m.precision_sum = agg.precision_sum;
    m.recall_sum = agg.recall_sum;
    m.latency_ms = agg.latency_ms;
    report.matchers.push_back(std::move(m));
  }
  report.metrics.MergeFrom(metrics);
  return report;
}

obs::RunReport BuildRunReport(const RunStats& stats,
                              const obs::MetricsRegistry& metrics,
                              const obs::TimeseriesExport& timeseries,
                              const std::string& tool) {
  obs::RunReport report = BuildRunReport(stats, metrics, tool);
  report.timeseries = timeseries;
  return report;
}

}  // namespace ptar
