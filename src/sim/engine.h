// Time-stepped dynamic ridesharing engine.
//
// The engine owns the fleet (kinetic trees + grid registrations), drives
// vehicle movement at a constant speed (paper Section VII: vehicles follow
// their schedule when occupied and random-walk on road segments otherwise),
// feeds the request stream to one or more matchers evaluated on an
// *identical* world state (shadow evaluation), and commits one option per
// request chosen by a configurable rider policy.
//
// Index maintenance (vehicle movement updates, kinetic-tree refreshes,
// re-registrations, commits) runs through a dedicated maintenance oracle so
// per-matcher compdists measure matching work only, like the paper's
// Section VII metrics.

#ifndef PTAR_SIM_ENGINE_H_
#define PTAR_SIM_ENGINE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/distance_oracle.h"
#include "obs/lifecycle.h"
#include "obs/metrics.h"
#include "obs/windows.h"
#include "grid/grid_index.h"
#include "grid/vehicle_registry.h"
#include "kinetic/kinetic_tree.h"
#include "kinetic/tree_auditor.h"
#include "prune/ellipse_prefilter.h"
#include "rideshare/grid_scan_matcher.h"
#include "rideshare/matcher.h"
#include "rideshare/ssa_matcher.h"
#include "rideshare/work_budget.h"
#include "sim/overload.h"

namespace ptar {

/// How a rider picks among the returned non-dominated options.
enum class ChoicePolicy {
  kMinPrice,   ///< Cheapest option (earliest pickup breaks ties).
  kMinTime,    ///< Earliest pickup (cheaper breaks ties).
  kBalanced,   ///< Minimal normalized price + pickup sum.
  kRandom,     ///< Uniform over the skyline (seeded).
};

/// Candidate-prefilter stage in front of the matchers (EngineOptions::
/// prune, CLI --prune=MODE).
enum class PruneMode {
  kNone,     ///< Grid lower bounds only (the paper's configuration).
  kEllipse,  ///< GeoPrune detour-ellipse prefilter (DESIGN.md §13).
};

/// Parses "none" / "ellipse" (case-sensitive, like the backend parser).
/// Returns false on anything else.
bool ParsePruneMode(const std::string& text, PruneMode* out);

struct EngineOptions {
  int num_vehicles = 500;
  int vehicle_capacity = 4;  ///< Paper default: 4 seats.
  double speed_mps = kDefaultSpeedMetersPerSec;
  double tick_seconds = 1.0;
  ChoicePolicy policy = ChoicePolicy::kMinPrice;
  std::uint64_t seed = 13;
  /// When non-empty, vehicle i starts at start_vertices[i] instead of a
  /// seed-derived random vertex, and the list's size overrides
  /// num_vehicles. Replay files (src/check) use this so that removing one
  /// vehicle during shrinking does not reshuffle every other start.
  std::vector<VertexId> start_vertices;
  /// Worker threads for evaluating the shadow matchers of one request
  /// concurrently (one task per matcher; each matcher gets its own
  /// DistanceOracle). 1 = serial. Results are bit-identical either way:
  /// matchers only read shared state and write into pre-assigned slots.
  int threads = 1;
  /// Matcher workers for the request-parallel pipeline (RunPipelined): a
  /// wave of concurrent requests is matched by this many workers against
  /// one frozen registry snapshot, then committed serially in request-id
  /// order. 1 = the canonical serial replay (same wave structure, same
  /// arbitration, no pool). Committed assignments are identical at every
  /// thread count for a fixed wave_size (the `--serial_check` contract);
  /// only execution overlaps. Ignored by the classic Run()/ProcessRequest
  /// path.
  int engine_threads = 1;
  /// Requests admitted per pipeline wave. 0 = auto (2 * engine_threads,
  /// at least 1). NOTE: the auto value depends on engine_threads, so
  /// cross-thread-count determinism comparisons must pin wave_size
  /// explicitly (serial_check replays with the parallel run's resolved
  /// value).
  int wave_size = 0;
  /// Bounded re-match: a request whose chosen vehicle was taken by an
  /// earlier (lower-id) concurrent request re-matches against a fresh
  /// snapshot at most this many times; survivors then match serially
  /// against live state. Every round commits at least one request, so the
  /// pipeline never livelocks regardless of this bound.
  int max_rematch_rounds = 3;
  /// Exact shortest-path engine behind every oracle. kCH builds one
  /// contraction hierarchy at engine construction (counted in
  /// "ch/preprocess_us") shared read-only by all oracles; queries then use
  /// bidirectional / bucket searches instead of Dijkstra sweeps. Matching
  /// results are equivalent up to floating-point association of path sums.
  DistanceBackend distance_backend = DistanceBackend::kDijkstra;
  /// Per-request work budgets, deadlines, and the degradation ladder
  /// (sim/overload.h). Disabled by default (no budget, no deadline): the
  /// engine then hands matchers no budget at all and behavior is unchanged.
  OverloadOptions overload;
  /// Windowed service-quality telemetry (obs/windows.h): per-sim-time-
  /// window request/shed/conflict counts, ladder occupancy, and commit
  /// latency, exported as the run report's "timeseries" block (schema v4)
  /// and — when overload.slo_p99_us is set — fed back into the overload
  /// ladder at window boundaries. On by default (60 s windows); set
  /// window_seconds <= 0 to disable.
  obs::TelemetryOptions telemetry;
  /// Audits the committed vehicle's kinetic tree (and, on findings, repairs
  /// it) after every commit — one exact distance per leg, so it is on by
  /// default only in debug builds. Findings/repairs surface as "audit/*"
  /// counters; release runs can instead call Engine::AuditFleet on demand.
  bool audit_after_commit =
#ifndef NDEBUG
      true;
#else
      false;
#endif
  /// GeoPrune candidate prefilter (src/prune). kEllipse builds one
  /// EllipsePrefilter at engine construction and installs it on every
  /// MatchContext, so all matchers (including ladder fallbacks) interleave
  /// calibrated-Euclidean ellipse checks with the grid lower bounds.
  /// Lossless: committed assignments and skylines are identical to kNone
  /// (the differential harness's --prune_check mode enforces this).
  PruneMode prune = PruneMode::kNone;
  /// Per-vehicle kinetic-tree branch cap (CLI --tree_max_branches). The
  /// default keeps every valid schedule — the paper's c.S_tr — so results
  /// are exactly the unbounded tree's. A finite cap bounds per-vehicle
  /// fan-out with best-branch retention (active branch + the
  /// (total, first-leg) skyline always kept); dropped branches surface as
  /// the "tree/branches_dropped" and "tree/cap_hits" run counters.
  std::size_t tree_max_branches = KineticTree::kUnlimitedBranches;
};

/// Aggregated per-matcher measurements across a run.
struct MatcherAggregate {
  std::string name;
  MatchStats totals;
  std::uint64_t requests = 0;
  std::uint64_t options_sum = 0;
  double precision_sum = 0.0;  ///< vs. the first matcher's option set.
  double recall_sum = 0.0;
  /// Per-request matching latency distribution. A fixed log-bucket
  /// histogram (O(1) memory, mergeable), not a sample list: percentiles
  /// are exact to one bucket width (~19%).
  obs::LatencyHistogram latency_ms;

  double MeanMillis() const {
    return requests == 0 ? 0.0 : totals.elapsed_micros / 1e3 / requests;
  }
  double MeanVerified() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(totals.verified_vehicles) / requests;
  }
  double MeanCompdists() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(totals.compdists) / requests;
  }
  double MeanOptions() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(options_sum) / requests;
  }
  double MeanPrecision() const {
    return requests == 0 ? 1.0 : precision_sum / requests;
  }
  double MeanRecall() const {
    return requests == 0 ? 1.0 : recall_sum / requests;
  }
};

struct RunStats {
  std::vector<MatcherAggregate> matchers;
  std::uint64_t served = 0;
  std::uint64_t unserved = 0;
  std::uint64_t shared = 0;  ///< Served requests that rode with others.
  /// Requests refused outright at overload level 3 (counted in unserved).
  std::uint64_t shed_requests = 0;
  /// Requests whose committing result was budget-truncated
  /// (MatchResult::complete == false on slot 0).
  std::uint64_t partial_skylines = 0;
  /// Requests processed at each degradation level (index = DegradeLevel).
  std::array<std::uint64_t, kNumDegradeLevels> ladder_requests{};

  // --- Request-parallel pipeline (RunPipelined; zero for classic Run). ---
  /// Waves the stream was processed in.
  std::uint64_t waves = 0;
  /// Conflict events: a request's chosen vehicle was already committed to
  /// a lower-id request of the same wave round.
  std::uint64_t conflicts = 0;
  /// Re-matches against a fresh snapshot (rounds 1..max_rematch_rounds).
  std::uint64_t rematches = 0;
  /// Requests that exhausted the re-match bound and fell back to a serial
  /// match against live state.
  std::uint64_t serial_rematches = 0;

  double SharingRate() const {
    return served == 0 ? 0.0 : static_cast<double>(shared) / served;
  }
};

/// One request's final disposition in the request-parallel pipeline, in the
/// exact shape the `--serial_check` mode compares: a parallel run and its
/// engine_threads=1 replay must produce equal records for every request.
struct CommitRecord {
  RequestId request = 0;
  bool served = false;
  bool shed = false;
  VehicleId vehicle = kInvalidVehicle;  ///< Committed vehicle when served.
  double pickup_dist = 0.0;
  double price = 0.0;

  friend bool operator==(const CommitRecord&, const CommitRecord&) = default;
};

/// Builds one matcher instance per pipeline worker, so concurrently-running
/// workers never share a matcher object. Matchers are configuration-only in
/// Match() (no mutable state), hence results do not depend on which worker
/// instance served a request.
using MatcherFactory = std::function<std::unique_ptr<Matcher>()>;

class Engine {
 public:
  /// The graph and grid must outlive the engine. Vehicles start at
  /// uniformly random vertices unless options.start_vertices pins them.
  Engine(const RoadNetwork* graph, const GridIndex* grid,
         const EngineOptions& options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Accessors. ---
  std::vector<KineticTree>& fleet() { return fleet_; }
  const std::vector<KineticTree>& fleet() const { return fleet_; }
  VehicleRegistry& registry() { return registry_; }
  const GridIndex& grid() const { return *grid_; }
  double now() const { return now_; }

  /// Context bound to the counted matching oracle.
  MatchContext MakeMatchContext();

  /// Sum of the fleet's kinetic-tree memory (Table IV's second row).
  std::size_t KineticTreeMemoryBytes() const;

  /// Current degradation level (kFull unless overload control is enabled
  /// and the ladder has moved).
  DegradeLevel degrade_level() const { return overload_.level(); }

  /// Audits the whole fleet plus the registry aggregates against the
  /// trusted maintenance oracle (kinetic/tree_auditor.h). On-demand
  /// release-build counterpart of EngineOptions::audit_after_commit.
  ///
  /// Safe to call from another thread while RunPipelined is in flight: the
  /// audit takes the pipeline's quiesce lock, so it observes the fleet only
  /// at a wave boundary — a quiesced epoch where no matcher worker is
  /// running and no commit is half-applied — and never a torn tree. When no
  /// pipeline is active the lock is uncontended and this behaves as before.
  AuditReport AuditFleet();

  /// Installs `factory(slot)` as the fault hook on the counted matching
  /// oracle (slot 0) and every shadow-matcher oracle (present and future;
  /// slot m) — but never on the maintenance oracle, which stays a trusted
  /// distance source for commits, refreshes, and audits. A factory (rather
  /// than one hook) keeps per-hook state unshared across concurrently-used
  /// oracles, and the slot argument lets callers exempt chosen slots (the
  /// differential harness keeps its reference matcher clean) by returning
  /// a null hook. Pass nullptr to uninstall everywhere.
  void SetFaultHookFactory(
      std::function<DistanceOracle::FaultHook(std::size_t slot)> factory);

  /// Unified run metrics: engine phase-latency histograms
  /// ("engine/<phase>_us"), per-matcher per-request distributions and
  /// totals ("matcher/<name>/..."), oracle batching counters
  /// ("matcher/<name>/batch/..."), and thread-pool queue stats ("pool/...").
  /// Accumulates across Run() calls. Names follow the determinism
  /// convention of obs::MetricsRegistry: only "pool/" entries and the
  /// timing-suffixed ones may differ between equal-seed runs.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Windowed service-quality telemetry, accumulated across runs (engine
  /// sim time never rewinds). Export() feeds the report's v4 "timeseries"
  /// block.
  const obs::WindowedTelemetry& telemetry() const { return telemetry_; }

  /// Attaches (or, with nullptr, detaches) a per-request lifecycle
  /// recorder; not owned, must outlive the runs it observes. Both engines
  /// record events only from their serial sections (classic per-request
  /// path; pipeline admission/commit passes), so the recorded stream is
  /// identical at every threads / engine_threads value.
  void SetLifecycleRecorder(obs::LifecycleRecorder* recorder) {
    lifecycle_ = recorder;
  }

  // --- Simulation. ---

  /// Advances the world to absolute time `time` (seconds).
  void AdvanceTo(double time);

  struct RequestOutcome {
    std::vector<MatchResult> results;  ///< One per matcher, same order.
    /// Parallel to `results`: whether that slot actually ran. At degraded
    /// overload levels only slot 0 runs (via an engine-owned fallback
    /// matcher); shed requests run nothing. Unevaluated slots hold
    /// default-constructed results and must be excluded from statistics.
    std::vector<char> evaluated;
    bool served = false;
    Option chosen;
    /// Degradation level this request was processed at.
    DegradeLevel degrade_level = DegradeLevel::kFull;
    bool shed = false;  ///< True iff the request was refused unmatched.
    /// OK normally; kResourceExhausted when shed.
    Status status = Status::OK();
  };

  /// Advances to the request's submit time, repairs stale state, evaluates
  /// every matcher on the identical snapshot, and commits the option chosen
  /// (by policy) from the first matcher's result set.
  RequestOutcome ProcessRequest(const Request& request,
                                std::span<Matcher* const> matchers);

  /// Replays a whole (time-sorted) request stream; the first matcher is the
  /// committing one and the precision/recall reference.
  RunStats Run(std::span<const Request> requests,
               std::span<Matcher* const> matchers);

  /// Request-parallel pipeline (DESIGN.md §12). The stream is processed in
  /// waves of ResolvedWaveSize() requests: admission (overload shed +
  /// level capture, in request-id order) → advance world to the wave's
  /// latest submit time → refresh stale trees → freeze a registry snapshot
  /// → match every admitted request concurrently on engine_threads workers
  /// (per-worker matcher from `make_matcher`, per-worker DistanceOracle and
  /// WorkBudget) → commit serially in request-id order. When two requests
  /// picked the same vehicle, the lower id commits and the loser re-matches
  /// against a fresh snapshot (at most max_rematch_rounds times, then a
  /// serial tail against live state).
  ///
  /// Determinism: committed assignments depend on wave_size but not on
  /// engine_threads — workers read only the frozen snapshot, arbitration is
  /// id-ordered, and rng/ladder draws happen serially in id order — except
  /// when a wall-clock deadline (overload.deadline_ms > 0) is configured,
  /// which is nondeterministic by design. `commit_log`, when non-null,
  /// receives one record per request, sorted by request id.
  RunStats RunPipelined(std::span<const Request> requests,
                        const MatcherFactory& make_matcher,
                        std::vector<CommitRecord>* commit_log = nullptr);

  /// Wave size actually used by RunPipelined: options.wave_size, or
  /// 2 * engine_threads (at least 1) when 0.
  int ResolvedWaveSize() const;

 private:
  struct VehicleRuntime {
    std::vector<VertexId> route;  ///< Vertex path being driven.
    std::size_t pos = 0;          ///< Index of the current vertex in route.
    double edge_progress = 0.0;   ///< Meters advanced into the next edge.
    double budget = 0.0;          ///< Unspent movement distance.
    std::unordered_set<RequestId> onboard;  ///< For sharing-rate tracking.
  };

  KineticTree::DistFn MaintenanceDistFn();
  /// Context for matcher slot `m`: slot 0 gets match_oracle_, every other
  /// slot its own oracle (created by EnsureMatcherOracles) so concurrent
  /// matcher evaluations never share mutable state.
  MatchContext MakeMatchContextFor(std::size_t m);
  void EnsureMatcherOracles(std::size_t num_matchers);
  /// Per-slot work budgets (only allocated when overload control is on).
  void EnsureSlotBudgets(std::size_t num_matchers);
  /// Arms slot `m`'s budget at the current degradation level and returns
  /// it, or nullptr when overload control is disabled.
  WorkBudget* ArmSlotBudget(std::size_t m);
  /// Feeds the finished request's signals to the overload controller and
  /// records the degrade/* transition counters and deadline slack.
  /// `worker_deadline_hit` is the request's own budget-latched wall
  /// deadline signal (see OverloadController::Observe).
  void ObserveOverload(double match_elapsed_micros, bool budget_exhausted,
                       bool worker_deadline_hit = false);
  /// Telemetry window for sim time `t` (null when telemetry is disabled).
  /// When `t` opens a new window and an SLO is configured, the just-closed
  /// window's p99 commit latency and shed rate first feed
  /// OverloadController::ObserveWindow — always from a serial section, so
  /// ladder moves stay ordered even though the signal is wall-clock.
  obs::MetricsRegistry* TelemetryWindowFor(double t);
  /// Post-commit single-vehicle audit (EngineOptions::audit_after_commit);
  /// repairs on findings and bumps the audit/* counters.
  void AuditAfterCommit(VehicleId v);
  Distance ArcWeight(VertexId u, VertexId v) const;
  void TickVehicle(VehicleId v, double budget_meters);
  /// Serves co-located stops, fixes the vehicle's registry membership, and
  /// replans its driving route. Called after any kinetic-tree change.
  void SyncAfterTreeChange(VehicleId v);
  void ReRegister(VehicleId v);
  void RefreshStaleTrees();
  const Option* ChooseOption(std::span<const Option> options);
  void CommitChoice(const Request& request, const Option& option);
  /// Folds per-run oracle batching stats and pool queue stats into
  /// metrics_ (and resets the sources so a later Run() adds only deltas).
  void HarvestRunMetrics(std::span<Matcher* const> matchers);

  /// Builds the contraction hierarchy when `options` selects the CH
  /// backend (null otherwise); *out_micros receives the build time.
  static std::unique_ptr<CHGraph> MaybeBuildCH(const RoadNetwork* graph,
                                               const EngineOptions& options,
                                               double* out_micros);

  const RoadNetwork* graph_;
  const GridIndex* grid_;
  EngineOptions options_;
  Rng rng_;
  double now_ = 0.0;

  std::vector<KineticTree> fleet_;
  std::vector<VehicleRuntime> runtimes_;
  std::vector<char> registered_empty_;  ///< Vehicle is in an empty list.
  VehicleRegistry registry_;

  double ch_preprocess_micros_ = 0.0;
  /// Shared hierarchy for the kCH backend (null on kDijkstra); declared
  /// before the oracles, which capture a pointer to it at construction.
  std::unique_ptr<CHGraph> ch_graph_;
  DistanceOracle match_oracle_;        ///< Counted, cleared per request.
  DistanceOracle maintenance_oracle_;  ///< Engine bookkeeping, uncounted.
  /// Per-matcher oracles for slots >= 1 (slot 0 keeps match_oracle_).
  std::vector<std::unique_ptr<DistanceOracle>> matcher_oracles_;
  /// Re-invoked for every oracle that matching may touch (see
  /// SetFaultHookFactory); null when no faults are injected.
  std::function<DistanceOracle::FaultHook(std::size_t)> fault_hook_factory_;

  OverloadController overload_;
  /// One budget per matcher slot so pooled shadow evaluation stays
  /// bit-identical to serial: each slot charges only its own work.
  std::vector<std::unique_ptr<WorkBudget>> slot_budgets_;
  /// Engine-owned fallback matchers for degraded levels (paper-default SSA
  /// fraction; GRID verifies empty vehicles only).
  SsaMatcher fallback_ssa_;
  GridScanMatcher fallback_grid_;
  /// GeoPrune prefilter, built once at construction when options_.prune is
  /// kEllipse and installed on every MatchContext (null otherwise).
  std::unique_ptr<prune::EllipsePrefilter> prune_filter_;
  /// Workers for shadow-matcher evaluation; null when options.threads == 1.
  std::unique_ptr<ThreadPool> pool_;
  /// Workers for the request-parallel pipeline; created lazily on the
  /// first RunPipelined call when options.engine_threads > 1.
  std::unique_ptr<ThreadPool> engine_pool_;
  /// Held by RunPipelined across each whole wave (admission through
  /// commit) and by AuditFleet. Between waves — and whenever no pipeline
  /// runs — the fleet, registry, and metrics are quiesced, which is the
  /// only state an outside thread may observe.
  std::mutex quiesce_mu_;

  std::unordered_set<RequestId> shared_requests_;
  std::uint64_t served_ = 0;

  obs::MetricsRegistry metrics_;
  /// Per-window service-quality deltas (EngineOptions::telemetry).
  obs::WindowedTelemetry telemetry_;
  /// Per-request lifecycle recorder; not owned, null when detached.
  obs::LifecycleRecorder* lifecycle_ = nullptr;
  /// Cached phase-histogram slots (map values are address-stable), so the
  /// per-request path does one string lookup per phase at construction
  /// instead of per request.
  obs::LatencyHistogram* phase_advance_us_;
  obs::LatencyHistogram* phase_refresh_us_;
  obs::LatencyHistogram* phase_match_us_;
  obs::LatencyHistogram* phase_commit_us_;
  /// max(0, deadline - elapsed) per request; only fed when a wall-clock
  /// deadline is configured (timing-suffixed, determinism-exempt).
  obs::LatencyHistogram* deadline_slack_us_;
  /// Pool counter values already folded into metrics_ (the pool's atomics
  /// are cumulative; HarvestRunMetrics adds only the delta).
  std::uint64_t pool_tasks_harvested_ = 0;
  std::uint64_t pool_wait_harvested_ = 0;
  /// Same, for engine_pool_ (folded as "pool/engine_*").
  std::uint64_t engine_pool_tasks_harvested_ = 0;
  /// Kinetic-tree cap counters already folded into metrics_ (per-tree
  /// counters are cumulative; HarvestRunMetrics adds only the delta).
  std::uint64_t tree_dropped_harvested_ = 0;
  std::uint64_t tree_cap_hits_harvested_ = 0;
  std::uint64_t engine_pool_wait_harvested_ = 0;
};

}  // namespace ptar

#endif  // PTAR_SIM_ENGINE_H_
