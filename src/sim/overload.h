// Engine-level overload control: per-request budgets and a degradation
// ladder with hysteresis.
//
// A production dispatcher must answer every request within a latency
// budget, even when one request explodes the search space or the distance
// backend misbehaves. The controller tracks a degradation level:
//
//   level 0 (kFull)     — the configured matchers, full work budget
//   level 1 (kSsa)      — engine-owned SSA only, half budget
//   level 2 (kGridScan) — grid-lower-bound empty-vehicle scan, quarter budget
//   level 3 (kShed)     — no matching; the request is shed with an explicit
//                         kResourceExhausted Status
//
// A request is "bad" when it exhausted its work budget or (if a wall-clock
// deadline is configured) overran it. `degrade_after` consecutive bad
// requests step the ladder one level toward shedding; `recover_after`
// consecutive good ones step it back. Streaks reset on every transition, so
// the ladder moves at most one level per request and flaps only as fast as
// the hysteresis allows.
//
// Determinism: with `deadline_ms == 0` every signal is a deterministic work
// count, so ladder positions, shed decisions, and all degrade/* counters
// are bit-reproducible across runs and thread counts. Wall-clock deadlines
// are an explicitly nondeterministic overlay for production use.

#ifndef PTAR_SIM_OVERLOAD_H_
#define PTAR_SIM_OVERLOAD_H_

#include <cstdint>

namespace ptar {

enum class DegradeLevel {
  kFull = 0,
  kSsa = 1,
  kGridScan = 2,
  kShed = 3,
};
inline constexpr int kNumDegradeLevels = 4;

/// "full" / "ssa" / "grid_scan" / "shed" (metric + report vocabulary).
const char* DegradeLevelName(DegradeLevel level);

struct OverloadOptions {
  /// Deterministic work units (cell expansions + oracle computations) each
  /// request may spend at level 0; deeper levels get half and a quarter.
  /// 0 = unlimited (the controller can then only react to deadlines).
  std::uint64_t request_budget = 0;
  /// Wall-clock per-request matching deadline; 0 = none. Also armed into
  /// the per-slot work budgets so matchers stop cooperatively instead of
  /// merely being observed to overrun.
  double deadline_ms = 0.0;
  /// Consecutive bad requests before degrading one level.
  int degrade_after = 2;
  /// Consecutive good requests before recovering one level.
  int recover_after = 8;
  /// SLO target for windowed p99 commit latency (microseconds); 0 = off.
  /// When set, ObserveWindow() becomes an additional early-degrade /
  /// early-recover signal on top of the per-request streaks. Like
  /// deadline_ms this is a wall-clock-driven, explicitly nondeterministic
  /// overlay for production use.
  double slo_p99_us = 0.0;
};

class OverloadController {
 public:
  explicit OverloadController(const OverloadOptions& options);

  /// False when neither a budget nor a deadline is configured; the engine
  /// then bypasses the controller entirely (no budgets handed to matchers).
  bool enabled() const { return enabled_; }

  DegradeLevel level() const { return level_; }

  /// Work-unit budget at the current level: request_budget shifted right by
  /// the level (at least 1 so a configured budget never degrades back into
  /// "unlimited"). 0 when no budget is configured.
  std::uint64_t LevelBudget() const;

  /// Budget at an explicit ladder level (same halving schedule). The
  /// request-parallel pipeline admits a wave of requests at once: each one
  /// captures the level in force at its admission and arms a budget for
  /// *that* level inside its worker, even if the ladder has since moved.
  std::uint64_t BudgetForLevel(DegradeLevel level) const;

  /// Configured deadline in microseconds (0 = none).
  double DeadlineMicros() const { return options_.deadline_ms * 1e3; }

  struct Observation {
    bool bad = false;
    bool deadline_missed = false;
    /// +1 = degraded one level, -1 = recovered one level, 0 = no move.
    int level_delta = 0;
  };

  /// Feeds one telemetry window's headline signals (p99 commit latency
  /// and shed rate, from WindowedTelemetry::CurrentSlo) and moves the
  /// ladder ahead of the per-request streaks. A window whose p99 violates
  /// `slo_p99_us` degrades one level immediately — a whole window over
  /// target is stronger evidence than any single bad request — and a
  /// clearly healthy window (p99 under half the target, nothing shed)
  /// recovers one level immediately. Both reset the request streaks so the
  /// two mechanisms don't double-count the same episode. No-op when
  /// `slo_p99_us` is 0 or the window saw no requests.
  Observation ObserveWindow(double p99_commit_us, double shed_rate,
                            std::uint64_t window_requests);

  /// Feeds one completed (or shed) request's signals and moves the ladder.
  ///
  /// In the serial engine `elapsed_micros` is the request's matching wall
  /// time, measured inline. In the request-parallel pipeline many requests
  /// match concurrently, so the global inter-request wall clock says
  /// nothing about any one worker's health; the pipeline instead passes
  /// each request's *own* worker-measured elapsed time plus
  /// `worker_deadline_hit` — the worker budget's latched wall-deadline
  /// signal — so ladder transitions are driven by per-worker overruns.
  Observation Observe(double elapsed_micros, bool budget_exhausted,
                      bool worker_deadline_hit = false);

 private:
  OverloadOptions options_;
  bool enabled_;
  DegradeLevel level_ = DegradeLevel::kFull;
  int bad_streak_ = 0;
  int good_streak_ = 0;
};

}  // namespace ptar

#endif  // PTAR_SIM_OVERLOAD_H_
