// RunStats -> obs::RunReport conversion (the sim side of the report
// layering: obs defines the neutral report structs, sim knows how to fill
// them from a finished run).

#ifndef PTAR_SIM_RUN_REPORT_H_
#define PTAR_SIM_RUN_REPORT_H_

#include <string>

#include "obs/report.h"
#include "sim/engine.h"

namespace ptar {

/// Builds a report from a finished run: per-matcher aggregates from
/// `stats`, the unified metrics registry snapshot from `metrics`
/// (typically engine.metrics()), and `tool` naming the producing surface.
obs::RunReport BuildRunReport(const RunStats& stats,
                              const obs::MetricsRegistry& metrics,
                              const std::string& tool);

/// Same, plus the engine's windowed telemetry export
/// (engine.telemetry().Export()), which becomes the report's schema-v4
/// "timeseries" block.
obs::RunReport BuildRunReport(const RunStats& stats,
                              const obs::MetricsRegistry& metrics,
                              const obs::TimeseriesExport& timeseries,
                              const std::string& tool);

}  // namespace ptar

#endif  // PTAR_SIM_RUN_REPORT_H_
