#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"
#include "graph/ch_preprocessor.h"
#include "obs/trace.h"

namespace ptar {

namespace {

constexpr double kTimeEps = 1e-9;
constexpr Distance kDistEps = 1e-9;

/// Option-set overlap with a small numeric tolerance (used for Table III's
/// precision / recall against the exact result set).
bool ContainsOption(std::span<const Option> set, const Option& o) {
  for (const Option& x : set) {
    if (x.vehicle == o.vehicle &&
        std::abs(x.pickup_dist - o.pickup_dist) < 1e-6 &&
        std::abs(x.price - o.price) < 1e-6) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::unique_ptr<CHGraph> Engine::MaybeBuildCH(const RoadNetwork* graph,
                                              const EngineOptions& options,
                                              double* out_micros) {
  *out_micros = 0.0;
  if (options.distance_backend != DistanceBackend::kCH) return nullptr;
  PTAR_CHECK(graph != nullptr);
  Timer timer;
  auto ch = std::make_unique<CHGraph>(
      CHPreprocessor(CHPreprocessorOptions{}).Build(*graph));
  *out_micros = timer.ElapsedMicros();
  return ch;
}

bool ParsePruneMode(const std::string& text, PruneMode* out) {
  if (text.empty() || text == "none") {
    *out = PruneMode::kNone;
    return true;
  }
  if (text == "ellipse") {
    *out = PruneMode::kEllipse;
    return true;
  }
  return false;
}

Engine::Engine(const RoadNetwork* graph, const GridIndex* grid,
               const EngineOptions& options)
    : graph_(graph),
      grid_(grid),
      options_(options),
      rng_(options.seed),
      registry_(grid),
      ch_graph_(MaybeBuildCH(graph, options, &ch_preprocess_micros_)),
      match_oracle_(graph, ch_graph_.get()),
      maintenance_oracle_(graph, ch_graph_.get()),
      overload_(options.overload),
      telemetry_(options.telemetry) {
  PTAR_CHECK(graph != nullptr && grid != nullptr);
  if (!options_.start_vertices.empty()) {
    options_.num_vehicles =
        static_cast<int>(options_.start_vertices.size());
    for (const VertexId v : options_.start_vertices) {
      PTAR_CHECK(v < static_cast<VertexId>(graph->num_vertices()));
    }
  }
  PTAR_CHECK(options_.num_vehicles >= 1);
  PTAR_CHECK(options.vehicle_capacity >= 1);
  PTAR_CHECK(options.threads >= 1);
  PTAR_CHECK(options.engine_threads >= 1);
  PTAR_CHECK(options.wave_size >= 0);
  PTAR_CHECK(options.max_rematch_rounds >= 0);
  if (ch_graph_ != nullptr) {
    metrics_.AddCounter("ch/shortcuts", ch_graph_->num_shortcuts());
    metrics_.Histogram("ch/preprocess_us").Add(ch_preprocess_micros_);
  }
  if (options_.prune == PruneMode::kEllipse) {
    prune_filter_ = std::make_unique<prune::EllipsePrefilter>(
        prune::EllipsePrefilter::Build(*graph));
    // The calibrated factor, scaled for counter precision: alpha == 1 maps
    // to 1e6. Zero means the graph had no usable edge (filter inert).
    metrics_.AddCounter(
        "prune/alpha_ppm",
        static_cast<std::uint64_t>(prune_filter_->alpha() * 1e6));
  }
  phase_advance_us_ = &metrics_.Histogram("engine/advance_us");
  phase_refresh_us_ = &metrics_.Histogram("engine/refresh_us");
  phase_match_us_ = &metrics_.Histogram("engine/match_us");
  phase_commit_us_ = &metrics_.Histogram("engine/commit_us");
  // Only registered when a deadline exists, so default runs keep their
  // metric name set unchanged.
  deadline_slack_us_ = options.overload.deadline_ms > 0.0
                           ? &metrics_.Histogram("engine/deadline_slack_us")
                           : nullptr;
  if (options.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options.threads);
    // Queue-wait intervals land on the worker's own trace track; the
    // recorder drops them (one branch) when tracing is off.
    pool_->SetTaskWaitObserver([](double wait_micros) {
      obs::TraceRecorder::Global().RecordEndingNow("pool_queue_wait",
                                                   wait_micros);
    });
  }
  fleet_.reserve(options_.num_vehicles);
  runtimes_.resize(options_.num_vehicles);
  for (int i = 0; i < options_.num_vehicles; ++i) {
    const auto start =
        options_.start_vertices.empty()
            ? static_cast<VertexId>(rng_.UniformIndex(graph->num_vertices()))
            : options_.start_vertices[i];
    fleet_.emplace_back(static_cast<VehicleId>(i), start,
                        options.vehicle_capacity, options.tree_max_branches);
    runtimes_[i].route.assign(1, start);
    registry_.AddEmptyVehicle(static_cast<VehicleId>(i), start);
    registered_empty_.push_back(true);
  }
}

MatchContext Engine::MakeMatchContext() {
  MatchContext ctx;
  ctx.grid = grid_;
  ctx.registry = &registry_;
  ctx.fleet = &fleet_;
  ctx.oracle = &match_oracle_;
  ctx.price_model = PriceModel{};
  ctx.prune = prune_filter_.get();
  return ctx;
}

MatchContext Engine::MakeMatchContextFor(std::size_t m) {
  MatchContext ctx = MakeMatchContext();
  if (m > 0) {
    PTAR_DCHECK(m - 1 < matcher_oracles_.size());
    ctx.oracle = matcher_oracles_[m - 1].get();
  }
  return ctx;
}

void Engine::EnsureMatcherOracles(std::size_t num_matchers) {
  while (matcher_oracles_.size() + 1 < num_matchers) {
    matcher_oracles_.push_back(
        std::make_unique<DistanceOracle>(graph_, ch_graph_.get()));
    if (fault_hook_factory_) {
      // matcher_oracles_[i] serves slot i + 1.
      matcher_oracles_.back()->SetFaultHook(
          fault_hook_factory_(matcher_oracles_.size()));
    }
  }
}

void Engine::EnsureSlotBudgets(std::size_t num_matchers) {
  if (!overload_.enabled()) return;
  while (slot_budgets_.size() < num_matchers) {
    slot_budgets_.push_back(std::make_unique<WorkBudget>());
  }
}

WorkBudget* Engine::ArmSlotBudget(std::size_t m) {
  if (!overload_.enabled()) return nullptr;
  PTAR_DCHECK(m < slot_budgets_.size());
  WorkBudget* budget = slot_budgets_[m].get();
  *budget = WorkBudget(overload_.LevelBudget(), overload_.DeadlineMicros());
  budget->Arm();
  return budget;
}

void Engine::ObserveOverload(double match_elapsed_micros,
                             bool budget_exhausted,
                             bool worker_deadline_hit) {
  if (!overload_.enabled()) return;
  const OverloadController::Observation obs = overload_.Observe(
      match_elapsed_micros, budget_exhausted, worker_deadline_hit);
  if (obs.deadline_missed) metrics_.AddCounter("degrade/deadline_missed", 1);
  if (obs.level_delta > 0) metrics_.AddCounter("degrade/level_up", 1);
  if (obs.level_delta < 0) metrics_.AddCounter("degrade/level_down", 1);
  if (deadline_slack_us_ != nullptr) {
    deadline_slack_us_->Add(
        std::max(0.0, overload_.DeadlineMicros() - match_elapsed_micros));
  }
}

obs::MetricsRegistry* Engine::TelemetryWindowFor(double t) {
  if (!telemetry_.enabled()) return nullptr;
  if (options_.overload.slo_p99_us > 0.0 && telemetry_.WouldOpenNew(t) &&
      telemetry_.num_windows() > 0) {
    const obs::WindowSlo slo = telemetry_.CurrentSlo();
    const OverloadController::Observation obs = overload_.ObserveWindow(
        slo.p99_commit_us, slo.shed_rate, slo.requests);
    if (obs.bad) metrics_.AddCounter("degrade/slo_violations", 1);
    if (obs.level_delta > 0) metrics_.AddCounter("degrade/slo_level_up", 1);
    if (obs.level_delta < 0) {
      metrics_.AddCounter("degrade/slo_level_down", 1);
    }
  }
  return telemetry_.At(t);
}

void Engine::SetFaultHookFactory(
    std::function<DistanceOracle::FaultHook(std::size_t)> factory) {
  fault_hook_factory_ = std::move(factory);
  match_oracle_.SetFaultHook(fault_hook_factory_
                                 ? fault_hook_factory_(0)
                                 : DistanceOracle::FaultHook{});
  for (std::size_t i = 0; i < matcher_oracles_.size(); ++i) {
    matcher_oracles_[i]->SetFaultHook(fault_hook_factory_
                                          ? fault_hook_factory_(i + 1)
                                          : DistanceOracle::FaultHook{});
  }
}

AuditReport Engine::AuditFleet() {
  // Quiesce the pipeline: waits for the in-flight wave (if any) to finish
  // its commit pass, so the audit never sees a torn tree or a half-applied
  // commit. Uncontended when RunPipelined is not active.
  std::lock_guard<std::mutex> quiesced(quiesce_mu_);
  // Clean aggregates first so the audit covers every cell (the auditor
  // legitimately skips dirty ones).
  registry_.RebuildDirtyAggregates();
  KineticTreeAuditor auditor(MaintenanceDistFn());
  AuditReport report = auditor.AuditFleet(fleet_, &registry_);
  metrics_.AddCounter("audit/trees_checked", report.trees_checked);
  metrics_.AddCounter("audit/branches_checked", report.branches_checked);
  metrics_.AddCounter("audit/aggregate_cells_checked",
                      report.aggregate_cells_checked);
  if (!report.ok()) {
    metrics_.AddCounter("audit/findings", report.findings.size());
  }
  return report;
}

void Engine::AuditAfterCommit(VehicleId v) {
  KineticTreeAuditor auditor(MaintenanceDistFn());
  const AuditReport report = auditor.AuditTree(fleet_[v]);
  metrics_.AddCounter("audit/trees_checked", report.trees_checked);
  metrics_.AddCounter("audit/branches_checked", report.branches_checked);
  if (report.ok()) return;
  metrics_.AddCounter("audit/findings", report.findings.size());
  if (auditor.RepairTree(fleet_[v]).ok()) {
    metrics_.AddCounter("audit/repairs", 1);
    // The repair may have changed the active branch; re-sync route,
    // registration, and served stops.
    SyncAfterTreeChange(v);
  }
}

std::size_t Engine::KineticTreeMemoryBytes() const {
  std::size_t bytes = 0;
  for (const KineticTree& tree : fleet_) bytes += tree.MemoryBytes();
  return bytes;
}

KineticTree::DistFn Engine::MaintenanceDistFn() {
  DistanceOracle* oracle = &maintenance_oracle_;
  return [oracle](VertexId a, VertexId b) { return oracle->Dist(a, b); };
}

Distance Engine::ArcWeight(VertexId u, VertexId v) const {
  Distance best = kInfDistance;
  for (const Arc& arc : graph_->OutArcs(u)) {
    if (arc.head == v) best = std::min(best, arc.weight);
  }
  PTAR_CHECK(best != kInfDistance)
      << "no edge between " << u << " and " << v;
  return best;
}

void Engine::ReRegister(VehicleId v) {
  KineticTree& tree = fleet_[v];
  auto entries = tree.BuildRegistration(*grid_);
  // Paper Section IV.B registers an edge <o_x, o_y> in every cell its
  // shortest path intersects. BuildRegistration only knows endpoints; the
  // engine knows the driven route for the first leg, so augment the
  // first-leg entries with the route's cells (purely additive: extra
  // registrations can only surface the vehicle earlier, never unsoundly
  // prune it).
  const VehicleRuntime& rt = runtimes_[v];
  if (!tree.IsEmpty() && rt.route.size() > 2) {
    std::vector<CellId> route_cells;
    grid_->CollectCells(rt.route, &route_cells);
    const std::size_t base_count = entries.size();
    for (std::size_t i = 0; i < base_count; ++i) {
      const KineticEdgeEntry entry = entries[i].second;
      if (entry.ox != tree.location() || entry.tail) continue;
      for (const CellId cell : route_cells) {
        if (cell != entries[i].first) entries.emplace_back(cell, entry);
      }
      break;  // one copy of the first-leg entry per route cell suffices
    }
  }
  registry_.SetVehicleEdges(v, entries);
}

void Engine::SyncAfterTreeChange(VehicleId v) {
  KineticTree& tree = fleet_[v];
  VehicleRuntime& rt = runtimes_[v];

  // Serve every stop co-located with the vehicle.
  while (!tree.IsEmpty() &&
         tree.NextStopLocation() == tree.location()) {
    auto event = tree.ArriveAtNextStop();
    PTAR_CHECK(event.ok()) << event.status();
    if (event->type == StopType::kPickup) {
      if (!rt.onboard.empty()) {
        shared_requests_.insert(event->request);
        for (const RequestId other : rt.onboard) {
          shared_requests_.insert(other);
        }
      }
      rt.onboard.insert(event->request);
    } else {
      rt.onboard.erase(event->request);
    }
  }

  if (tree.IsEmpty()) {
    PTAR_CHECK(rt.onboard.empty());
    if (!registered_empty_[v]) {
      registry_.ClearVehicleEdges(v);
      registry_.AddEmptyVehicle(v, tree.location());
      registered_empty_[v] = true;
    }
    rt.route.assign(1, tree.location());
    rt.pos = 0;
    rt.edge_progress = 0.0;
    return;
  }

  ReRegister(v);
  const VertexId target = tree.NextStopLocation();
  PTAR_DCHECK(target != tree.location());
  rt.route = maintenance_oracle_.Path(tree.location(), target);
  PTAR_CHECK(rt.route.size() >= 2)
      << "scheduled stop unreachable from vehicle location";
  rt.pos = 0;
  rt.edge_progress = 0.0;
}

void Engine::TickVehicle(VehicleId v, double budget_meters) {
  VehicleRuntime& rt = runtimes_[v];
  rt.budget += budget_meters;

  while (true) {
    KineticTree& tree = fleet_[v];
    if (rt.pos + 1 >= rt.route.size()) {
      if (!tree.IsEmpty()) {
        // Route exhausted but stops remain: replan (can happen right after
        // external tree changes).
        SyncAfterTreeChange(v);
        if (rt.pos + 1 >= rt.route.size()) return;  // became idle
        continue;
      }
      // Idle vehicle: wander onto a random incident road segment.
      const std::span<const Arc> arcs = graph_->OutArcs(tree.location());
      if (arcs.empty()) return;  // stranded on an isolated vertex
      const VertexId next = arcs[rng_.UniformIndex(arcs.size())].head;
      rt.route.assign({tree.location(), next});
      rt.pos = 0;
      rt.edge_progress = 0.0;
    }

    const VertexId from = rt.route[rt.pos];
    const VertexId to = rt.route[rt.pos + 1];
    const Distance edge_len = ArcWeight(from, to);
    const Distance need = edge_len - rt.edge_progress;
    if (rt.budget + kDistEps < need) {
      rt.edge_progress += rt.budget;
      rt.budget = 0.0;
      return;
    }
    rt.budget -= need;
    rt.edge_progress = 0.0;
    ++rt.pos;

    const bool was_empty = tree.IsEmpty();
    tree.MoveTo(to, edge_len);
    if (was_empty) {
      registry_.MoveEmptyVehicle(v, to);
    } else {
      registry_.AdjustVehicleDistTr(v, edge_len);
      if (rt.pos + 1 == rt.route.size()) {
        // Reached the scheduled stop: serve it and replan.
        SyncAfterTreeChange(v);
      }
    }
  }
}

void Engine::AdvanceTo(double time) {
  while (now_ + kTimeEps < time) {
    const double dt = std::min(options_.tick_seconds, time - now_);
    const double budget = options_.speed_mps * dt;
    for (VehicleId v = 0; v < fleet_.size(); ++v) {
      TickVehicle(v, budget);
    }
    now_ += dt;
  }
}

void Engine::RefreshStaleTrees() {
  const KineticTree::DistFn dist = MaintenanceDistFn();
  for (VehicleId v = 0; v < fleet_.size(); ++v) {
    if (fleet_[v].stale()) {
      fleet_[v].Refresh(dist);
      SyncAfterTreeChange(v);
    }
  }
}

const Option* Engine::ChooseOption(std::span<const Option> options) {
  if (options.empty()) return nullptr;
  switch (options_.policy) {
    case ChoicePolicy::kMinPrice: {
      const Option* best = &options[0];
      for (const Option& o : options) {
        if (o.price < best->price ||
            (o.price == best->price && o.pickup_dist < best->pickup_dist)) {
          best = &o;
        }
      }
      return best;
    }
    case ChoicePolicy::kMinTime: {
      const Option* best = &options[0];
      for (const Option& o : options) {
        if (o.pickup_dist < best->pickup_dist ||
            (o.pickup_dist == best->pickup_dist && o.price < best->price)) {
          best = &o;
        }
      }
      return best;
    }
    case ChoicePolicy::kBalanced: {
      double max_pickup = 0.0;
      double max_price = 0.0;
      for (const Option& o : options) {
        max_pickup = std::max(max_pickup, o.pickup_dist);
        max_price = std::max(max_price, o.price);
      }
      const Option* best = &options[0];
      double best_score = std::numeric_limits<double>::infinity();
      for (const Option& o : options) {
        const double score =
            (max_pickup > 0 ? o.pickup_dist / max_pickup : 0.0) +
            (max_price > 0 ? o.price / max_price : 0.0);
        if (score < best_score) {
          best_score = score;
          best = &o;
        }
      }
      return best;
    }
    case ChoicePolicy::kRandom:
      return &options[rng_.UniformIndex(options.size())];
  }
  return nullptr;
}

void Engine::CommitChoice(const Request& request, const Option& option) {
  const VehicleId v = option.vehicle;
  PTAR_CHECK(v < fleet_.size());
  KineticTree& tree = fleet_[v];
  const bool was_empty = tree.IsEmpty();
  const Distance direct =
      maintenance_oracle_.Dist(request.start, request.destination);
  PTAR_CHECK_OK(
      tree.Commit(request, direct, option.pickup_dist, MaintenanceDistFn()));
  if (was_empty) {
    registry_.RemoveEmptyVehicle(v);
    registered_empty_[v] = false;
  }
  ++served_;
  SyncAfterTreeChange(v);
}

Engine::RequestOutcome Engine::ProcessRequest(
    const Request& request, std::span<Matcher* const> matchers) {
  PTAR_CHECK(!matchers.empty());
  PTAR_TRACE_SPAN("request");
  {
    PTAR_TRACE_SPAN("advance");
    Timer timer;
    AdvanceTo(request.submit_time);
    phase_advance_us_->Add(timer.ElapsedMicros());
  }
  {
    PTAR_TRACE_SPAN("refresh");
    Timer timer;
    RefreshStaleTrees();
    phase_refresh_us_->Add(timer.ElapsedMicros());
  }

  RequestOutcome outcome;
  outcome.results.resize(matchers.size());
  outcome.evaluated.assign(matchers.size(), 0);
  const DegradeLevel level = overload_.level();
  outcome.degrade_level = level;
  if (overload_.enabled()) {
    metrics_.AddCounter("degrade/level" +
                            std::to_string(static_cast<int>(level)) +
                            "_requests",
                        1);
  }

  if (level == DegradeLevel::kShed) {
    outcome.shed = true;
    outcome.status = Status::ResourceExhausted(
        "overload ladder at shed level: request refused unmatched");
    metrics_.AddCounter("degrade/shed_requests", 1);
    // Shedding is (nearly) free, so it counts as a good signal: after
    // recover_after consecutive sheds the ladder steps back to matching.
    ObserveOverload(0.0, /*budget_exhausted=*/false);
    if (obs::MetricsRegistry* w = TelemetryWindowFor(request.submit_time)) {
      w->AddCounter(obs::kWindowRequests);
      w->AddCounter(obs::kWindowShed);
      w->AddCounter(obs::kWindowLadderLevels[static_cast<int>(level)]);
    }
    if (lifecycle_ != nullptr && lifecycle_->enabled()) {
      obs::LifecycleEvent event;
      event.request = request.id;
      event.submit_time = request.submit_time;
      event.level = DegradeLevelName(level);
      event.disposition = "shed";
      lifecycle_->Record(event);
    }
    return outcome;
  }

  EnsureMatcherOracles(matchers.size());
  EnsureSlotBudgets(matchers.size());
  // The epoch of the world state this request matches against (trees are
  // refreshed; commits below bump it) — the lifecycle log's correlation
  // key with registry snapshots.
  const std::uint64_t snapshot_epoch = registry_.GlobalEpoch();
  // Per-slot span names carry the matcher name; interning is only paid
  // while tracing is enabled (the spans would drop the name otherwise).
  const bool tracing = obs::TraceRecorder::Global().enabled();
  Timer match_timer;
  if (level != DegradeLevel::kFull) {
    // Degraded: only slot 0 runs, through an engine-owned cheaper matcher;
    // shadow matchers are skipped entirely to shed their load too.
    Matcher* fallback = level == DegradeLevel::kSsa
                            ? static_cast<Matcher*>(&fallback_ssa_)
                            : &fallback_grid_;
    obs::TraceSpan span(
        tracing ? obs::InternSpanName("match_" + fallback->name())
                : "match");
    span.AddArg("slot", static_cast<std::int64_t>(0));
    MatchContext ctx = MakeMatchContextFor(0);
    ctx.budget = ArmSlotBudget(0);
    outcome.results[0] = fallback->Match(request, ctx);
    outcome.evaluated[0] = 1;
  } else if (pool_ != nullptr && matchers.size() > 1) {
    PTAR_TRACE_SPAN("shadow_match");
    // Matchers only read the shared world state (trees were refreshed
    // above, so Refresh() is a no-op), but the registry's cell aggregates
    // rebuild lazily through mutable members — make them clean so
    // Aggregates() is a pure read during the concurrent phase.
    registry_.RebuildDirtyAggregates();
    std::vector<std::future<void>> pending;
    pending.reserve(matchers.size());
    for (std::size_t m = 0; m < matchers.size(); ++m) {
      const char* span_name =
          tracing ? obs::InternSpanName("match_" + matchers[m]->name())
                  : "match";
      outcome.evaluated[m] = 1;
      pending.push_back(pool_->Submit([this, m, span_name, &request,
                                       &outcome, matchers] {
        obs::TraceSpan span(span_name);
        span.AddArg("slot", static_cast<std::int64_t>(m));
        MatchContext ctx = MakeMatchContextFor(m);
        // Armed inside the task so a wall-clock deadline starts when the
        // matcher does, not while it waits in the pool queue. Each slot
        // touches only its own budget, so this stays race-free.
        ctx.budget = ArmSlotBudget(m);
        outcome.results[m] = matchers[m]->Match(request, ctx);
      }));
    }
    for (std::future<void>& f : pending) f.get();
  } else {
    for (std::size_t m = 0; m < matchers.size(); ++m) {
      obs::TraceSpan span(
          tracing ? obs::InternSpanName("match_" + matchers[m]->name())
                  : "match");
      span.AddArg("slot", static_cast<std::int64_t>(m));
      MatchContext ctx = MakeMatchContextFor(m);
      ctx.budget = ArmSlotBudget(m);
      outcome.results[m] = matchers[m]->Match(request, ctx);
      outcome.evaluated[m] = 1;
    }
  }
  const double match_elapsed = match_timer.ElapsedMicros();
  phase_match_us_->Add(match_elapsed);

  const bool slot0_exhausted =
      overload_.enabled() && slot_budgets_[0]->Exhausted();
  const bool slot0_deadline_hit =
      overload_.enabled() && slot_budgets_[0]->deadline_hit();
  ObserveOverload(match_elapsed, slot0_exhausted, slot0_deadline_hit);
  if (!outcome.results[0].complete) {
    metrics_.AddCounter("degrade/partial_skylines", 1);
  }

  {
    PTAR_TRACE_SPAN("commit");
    Timer timer;
    const Option* chosen = ChooseOption(outcome.results[0].options);
    if (chosen != nullptr) {
      outcome.served = true;
      outcome.chosen = *chosen;
      CommitChoice(request, *chosen);
    }
    phase_commit_us_->Add(timer.ElapsedMicros());
  }
  if (outcome.served && options_.audit_after_commit) {
    AuditAfterCommit(outcome.chosen.vehicle);
  }

  if (obs::MetricsRegistry* w = TelemetryWindowFor(request.submit_time)) {
    w->AddCounter(obs::kWindowRequests);
    w->AddCounter(outcome.served ? obs::kWindowServed
                                 : obs::kWindowUnserved);
    if (!outcome.results[0].complete) w->AddCounter(obs::kWindowPartial);
    w->AddCounter(obs::kWindowLadderLevels[static_cast<int>(level)]);
    w->Histogram(obs::kWindowCommitLatencyUs).Add(match_elapsed);
  }
  if (lifecycle_ != nullptr && lifecycle_->enabled() &&
      lifecycle_->Sampled(request.id)) {
    obs::LifecycleEvent event;
    event.request = request.id;
    event.submit_time = request.submit_time;
    event.snapshot_epoch = snapshot_epoch;
    event.level = DegradeLevelName(level);
    event.matcher = level == DegradeLevel::kFull
                        ? matchers[0]->name()
                        : (level == DegradeLevel::kSsa
                               ? fallback_ssa_.name()
                               : fallback_grid_.name());
    if (overload_.enabled()) {
      event.budget_limit = slot_budgets_[0]->max_units();
      event.budget_spent = slot_budgets_[0]->used();
      event.budget_exhausted = slot0_exhausted;
    }
    event.partial = !outcome.results[0].complete;
    event.options = outcome.results[0].options.size();
    event.disposition = outcome.served ? "served" : "unserved";
    if (outcome.served) {
      event.vehicle = outcome.chosen.vehicle;
      event.pickup_dist = outcome.chosen.pickup_dist;
      event.price = outcome.chosen.price;
    }
    event.match_us = match_elapsed;
    if (overload_.DeadlineMicros() > 0.0) {
      event.deadline_slack_us =
          std::max(0.0, overload_.DeadlineMicros() - match_elapsed);
    }
    lifecycle_->Record(event);
  }
  return outcome;
}

RunStats Engine::Run(std::span<const Request> requests,
                     std::span<Matcher* const> matchers) {
  RunStats stats;
  stats.matchers.resize(matchers.size());
  for (std::size_t m = 0; m < matchers.size(); ++m) {
    stats.matchers[m].name = matchers[m]->name();
  }

  // Per-request distributions, one set per matcher. Resolved once before
  // the request loop (map values are address-stable). The latency one is
  // timing-suffixed; compdists/options are deterministic and feed the
  // threads=1 vs threads=N equality check in obs_trace_test.
  struct PerMatcherHist {
    obs::LatencyHistogram* latency_us;
    obs::LatencyHistogram* compdists;
    obs::LatencyHistogram* options;
  };
  std::vector<PerMatcherHist> hists;
  hists.reserve(matchers.size());
  for (std::size_t m = 0; m < matchers.size(); ++m) {
    const std::string base = "matcher/" + matchers[m]->name();
    hists.push_back({&metrics_.Histogram(base + "/latency_us"),
                     &metrics_.Histogram(base + "/compdists"),
                     &metrics_.Histogram(base + "/options")});
  }

  for (const Request& request : requests) {
    const RequestOutcome outcome = ProcessRequest(request, matchers);
    stats.ladder_requests[static_cast<int>(outcome.degrade_level)] += 1;
    if (outcome.shed) ++stats.shed_requests;
    if (outcome.evaluated[0] && !outcome.results[0].complete) {
      ++stats.partial_skylines;
    }
    const std::span<const Option> exact(outcome.results[0].options);
    for (std::size_t m = 0; m < matchers.size(); ++m) {
      // Per-matcher aggregates describe the *configured* matchers; at
      // degraded levels slot 0 ran an engine-owned fallback instead (and
      // shadow slots ran nothing), so those requests are excluded.
      if (outcome.degrade_level != DegradeLevel::kFull ||
          !outcome.evaluated[m]) {
        continue;
      }
      MatcherAggregate& agg = stats.matchers[m];
      agg.totals.Accumulate(outcome.results[m].stats);
      agg.latency_ms.Add(outcome.results[m].stats.elapsed_micros / 1e3);
      ++agg.requests;
      agg.options_sum += outcome.results[m].options.size();
      hists[m].latency_us->Add(outcome.results[m].stats.elapsed_micros);
      hists[m].compdists->Add(
          static_cast<double>(outcome.results[m].stats.compdists));
      hists[m].options->Add(
          static_cast<double>(outcome.results[m].options.size()));
      // Precision / recall vs. the committing matcher (Table III).
      const std::span<const Option> approx(outcome.results[m].options);
      std::size_t hit = 0;
      for (const Option& o : approx) {
        if (ContainsOption(exact, o)) ++hit;
      }
      agg.precision_sum +=
          approx.empty() ? 1.0 : static_cast<double>(hit) / approx.size();
      std::size_t covered = 0;
      for (const Option& o : exact) {
        if (ContainsOption(approx, o)) ++covered;
      }
      agg.recall_sum +=
          exact.empty() ? 1.0 : static_cast<double>(covered) / exact.size();
    }
    // GeoPrune observability (slot 0, the committing path — including
    // ladder fallbacks, which also run with the prefilter installed). The
    // counters land in the run report's metrics block; the histogram gives
    // the per-request pruned-vs-(pruned+verified) share in percent.
    if (prune_filter_ != nullptr && outcome.evaluated[0]) {
      const MatchStats& st = outcome.results[0].stats;
      metrics_.AddCounter("prune/ellipse_checked", st.ellipse_checked);
      metrics_.AddCounter("prune/ellipse_pruned", st.ellipse_pruned);
      metrics_.AddCounter("prune/verified_vehicles", st.verified_vehicles);
      const std::uint64_t denom = st.ellipse_pruned + st.verified_vehicles;
      if (denom > 0) {
        metrics_.Histogram("prune/pruned_share_pct")
            .Add(100.0 * static_cast<double>(st.ellipse_pruned) /
                 static_cast<double>(denom));
      }
    }
    if (outcome.served) {
      ++stats.served;
    } else {
      ++stats.unserved;
    }
  }
  stats.shared = shared_requests_.size();
  HarvestRunMetrics(matchers);
  return stats;
}

void Engine::HarvestRunMetrics(std::span<Matcher* const> matchers) {
  for (std::size_t m = 0; m < matchers.size(); ++m) {
    const std::string base = "matcher/" + matchers[m]->name();
    // Oracle batching stats accumulate per oracle since construction;
    // merge the delta since the last harvest and reset the source so two
    // Run() calls don't double count.
    DistanceOracle* oracle =
        m == 0 ? &match_oracle_ : matcher_oracles_[m - 1].get();
    metrics_.MergeBatchStats(base + "/batch", oracle->batch_stats());
    oracle->ResetBatchStats();
  }
  if (pool_ != nullptr) {
    const std::uint64_t tasks = pool_->tasks_run();
    const std::uint64_t wait = pool_->total_wait_micros();
    metrics_.AddCounter("pool/tasks_run", tasks - pool_tasks_harvested_);
    metrics_.AddCounter("pool/queue_wait_micros",
                        wait - pool_wait_harvested_);
    pool_tasks_harvested_ = tasks;
    pool_wait_harvested_ = wait;
  }
  if (options_.tree_max_branches != KineticTree::kUnlimitedBranches) {
    // Attribute capped-enumeration option loss. Per-tree counters are
    // lifetime-cumulative, so fold only the delta since the last harvest.
    std::uint64_t dropped = 0;
    std::uint64_t cap_hits = 0;
    for (const KineticTree& tree : fleet_) {
      dropped += tree.branches_dropped();
      cap_hits += tree.cap_hits();
    }
    metrics_.AddCounter("tree/branches_dropped",
                        dropped - tree_dropped_harvested_);
    metrics_.AddCounter("tree/cap_hits", cap_hits - tree_cap_hits_harvested_);
    tree_dropped_harvested_ = dropped;
    tree_cap_hits_harvested_ = cap_hits;
  }
}

}  // namespace ptar
