#include "sim/overload.h"

#include <algorithm>

#include "common/logging.h"

namespace ptar {

const char* DegradeLevelName(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kFull:
      return "full";
    case DegradeLevel::kSsa:
      return "ssa";
    case DegradeLevel::kGridScan:
      return "grid_scan";
    case DegradeLevel::kShed:
      return "shed";
  }
  return "unknown";
}

OverloadController::OverloadController(const OverloadOptions& options)
    : options_(options),
      enabled_(options.request_budget > 0 || options.deadline_ms > 0.0 ||
               options.slo_p99_us > 0.0) {
  PTAR_CHECK(options.deadline_ms >= 0.0);
  PTAR_CHECK(options.degrade_after >= 1);
  PTAR_CHECK(options.recover_after >= 1);
  PTAR_CHECK(options.slo_p99_us >= 0.0);
}

std::uint64_t OverloadController::LevelBudget() const {
  return BudgetForLevel(level_);
}

std::uint64_t OverloadController::BudgetForLevel(DegradeLevel level) const {
  if (options_.request_budget == 0) return 0;
  const auto shift = static_cast<unsigned>(level);
  return std::max<std::uint64_t>(1, options_.request_budget >> shift);
}

OverloadController::Observation OverloadController::ObserveWindow(
    double p99_commit_us, double shed_rate, std::uint64_t window_requests) {
  Observation obs;
  if (!enabled_ || options_.slo_p99_us <= 0.0 || window_requests == 0) {
    return obs;
  }
  if (p99_commit_us > options_.slo_p99_us) {
    obs.bad = true;
    obs.deadline_missed = true;
    if (level_ != DegradeLevel::kShed) {
      level_ = static_cast<DegradeLevel>(static_cast<int>(level_) + 1);
      obs.level_delta = 1;
    }
    bad_streak_ = 0;
    good_streak_ = 0;
  } else if (p99_commit_us < options_.slo_p99_us * 0.5 &&
             shed_rate == 0.0) {
    if (level_ != DegradeLevel::kFull) {
      level_ = static_cast<DegradeLevel>(static_cast<int>(level_) - 1);
      obs.level_delta = -1;
    }
    bad_streak_ = 0;
    good_streak_ = 0;
  }
  return obs;
}

OverloadController::Observation OverloadController::Observe(
    double elapsed_micros, bool budget_exhausted, bool worker_deadline_hit) {
  Observation obs;
  if (!enabled_) return obs;
  obs.deadline_missed =
      worker_deadline_hit ||
      (options_.deadline_ms > 0.0 && elapsed_micros > DeadlineMicros());
  obs.bad = budget_exhausted || obs.deadline_missed;
  if (obs.bad) {
    ++bad_streak_;
    good_streak_ = 0;
    if (bad_streak_ >= options_.degrade_after &&
        level_ != DegradeLevel::kShed) {
      level_ = static_cast<DegradeLevel>(static_cast<int>(level_) + 1);
      bad_streak_ = 0;
      obs.level_delta = 1;
    }
  } else {
    ++good_streak_;
    bad_streak_ = 0;
    if (good_streak_ >= options_.recover_after &&
        level_ != DegradeLevel::kFull) {
      level_ = static_cast<DegradeLevel>(static_cast<int>(level_) - 1);
      good_streak_ = 0;
      obs.level_delta = -1;
    }
  }
  return obs;
}

}  // namespace ptar
