// CSV serialization of request traces.
//
// Format (header line required, '#' comments allowed):
//   id,submit_time,start,destination,riders,max_wait_dist,epsilon
//
// This is both the export format of the synthetic workload generator and
// the import path for external demand data (e.g. a public taxi-trip dataset
// mapped to network vertices), standing in for the paper's Shanghai trace.

#ifndef PTAR_SIM_TRACE_IO_H_
#define PTAR_SIM_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "kinetic/request.h"

namespace ptar {

Status SaveRequests(const std::vector<Request>& requests, std::ostream& out);
Status SaveRequestsToFile(const std::vector<Request>& requests,
                          const std::string& path);

/// Loads and validates a trace: endpoints must be vertices of `graph`,
/// riders >= 1, waits/epsilons non-negative. The result is sorted by
/// submit time.
StatusOr<std::vector<Request>> LoadRequests(std::istream& in,
                                            const RoadNetwork& graph);
StatusOr<std::vector<Request>> LoadRequestsFromFile(const std::string& path,
                                                    const RoadNetwork& graph);

}  // namespace ptar

#endif  // PTAR_SIM_TRACE_IO_H_
