#include "check/tree_twin.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "check/scenario.h"
#include "common/logging.h"
#include "graph/ch_graph.h"
#include "graph/ch_preprocessor.h"
#include "graph/dijkstra.h"
#include "graph/distance_oracle.h"
#include "kinetic/tree_auditor.h"

namespace ptar::check {

namespace {

/// Numeric slack for floating-point distance comparisons (matches the
/// production tree's tolerance).
constexpr Distance kDistTolerance = 1e-6;

/// Deterministic branch order: shorter total first, ties by stop sequence.
bool BranchLess(const Schedule& a, const Schedule& b) {
  const Distance ta = a.total();
  const Distance tb = b.total();
  if (ta != tb) return ta < tb;
  const std::size_t n = std::min(a.stops.size(), b.stops.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Stop& x = a.stops[i];
    const Stop& y = b.stops[i];
    if (x.request != y.request) return x.request < y.request;
    if (x.type != y.type) return x.type < y.type;
    if (x.location != y.location) return x.location < y.location;
  }
  return a.stops.size() < b.stops.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// LegacyKineticTree — verbatim port of the pre-arena implementation. Changes
// are limited to the class name, the unlimited default cap, and the honest
// MemoryBytes accounting; all behavior-bearing code is unmodified so the
// twin compares against exactly what shipped before the overhaul.
// ---------------------------------------------------------------------------

LegacyKineticTree::LegacyKineticTree(VehicleId vehicle, VertexId location,
                                     int capacity, std::size_t max_branches)
    : vehicle_(vehicle),
      location_(location),
      capacity_(capacity),
      max_branches_(max_branches) {
  PTAR_CHECK(capacity >= 1);
  PTAR_CHECK(max_branches >= 1);
  schedules_.push_back(Schedule{});  // the idle (empty) schedule
}

VertexId LegacyKineticTree::NextStopLocation() const {
  const Schedule& active = ActiveSchedule();
  return active.stops.empty() ? kInvalidVertex : active.stops[0].location;
}

void LegacyKineticTree::RecomputeActive() {
  PTAR_CHECK(!schedules_.empty());
  active_index_ = 0;
  Distance best = schedules_[0].total();
  for (std::size_t i = 1; i < schedules_.size(); ++i) {
    const Distance t = schedules_[i].total();
    if (t < best) {
      best = t;
      active_index_ = i;
    }
  }
}

const AssignedRequest* LegacyKineticTree::FindAssigned(RequestId id) const {
  for (const AssignedRequest& a : assigned_) {
    if (a.request.id == id) return &a;
  }
  return nullptr;
}

bool LegacyKineticTree::IsValidSchedule(const Schedule& schedule,
                                        const AssignedRequest* extra) const {
  PTAR_DCHECK(schedule.stops.size() == schedule.legs.size());

  struct StopIndex {
    int pickup = -1;
    int dropoff = -1;
  };
  std::map<RequestId, StopIndex> positions;
  for (std::size_t i = 0; i < schedule.stops.size(); ++i) {
    const Stop& stop = schedule.stops[i];
    StopIndex& pos = positions[stop.request];
    if (stop.type == StopType::kPickup) {
      if (pos.pickup != -1) return false;  // duplicate pickup
      pos.pickup = static_cast<int>(i);
    } else {
      if (pos.dropoff != -1) return false;  // duplicate dropoff
      pos.dropoff = static_cast<int>(i);
    }
  }

  auto check_request = [&](const AssignedRequest& a) {
    auto it = positions.find(a.request.id);
    if (it == positions.end()) return false;  // request missing entirely
    const StopIndex& pos = it->second;
    if (pos.dropoff == -1) return false;
    if (a.picked_up) {
      if (pos.pickup != -1) return false;
      const Distance travelled = odometer_ - a.pickup_odometer;
      if (travelled + schedule.PrefixDistance(pos.dropoff) >
          (1.0 + a.request.epsilon) * a.direct_dist + kDistTolerance) {
        return false;
      }
    } else {
      if (pos.pickup == -1 || pos.pickup > pos.dropoff) return false;
      if (odometer_ + schedule.PrefixDistance(pos.pickup) >
          a.deadline_odometer + kDistTolerance) {
        return false;
      }
      if (schedule.PrefixDistance(pos.dropoff) -
              schedule.PrefixDistance(pos.pickup) >
          (1.0 + a.request.epsilon) * a.direct_dist + kDistTolerance) {
        return false;
      }
    }
    return true;
  };

  std::size_t expected_stops = 0;
  for (const AssignedRequest& a : assigned_) {
    if (!check_request(a)) return false;
    expected_stops += a.picked_up ? 1 : 2;
  }
  if (extra != nullptr) {
    if (!check_request(*extra)) return false;
    expected_stops += extra->picked_up ? 1 : 2;
  }
  if (schedule.stops.size() != expected_stops) return false;  // strays

  int onboard = onboard_;
  for (const Stop& stop : schedule.stops) {
    const AssignedRequest* a =
        (extra != nullptr && extra->request.id == stop.request) ? extra
        : FindAssigned(stop.request);
    if (a == nullptr) return false;
    if (stop.type == StopType::kPickup) {
      onboard += a->request.riders;
      if (onboard > capacity_) return false;
    } else {
      onboard -= a->request.riders;
      if (onboard < 0) return false;
    }
  }
  return true;
}

std::vector<Distance> LegacyKineticTree::GapSlacks(
    const Schedule& schedule) const {
  const std::size_t k = schedule.stops.size();
  std::vector<Distance> prefix(k);
  {
    Distance acc = 0;
    for (std::size_t m = 0; m < k; ++m) {
      acc += schedule.legs[m];
      prefix[m] = acc;
    }
  }
  std::vector<Distance> slack(k + 1, kInfDistance);

  for (const AssignedRequest& a : assigned_) {
    int mp = -1;
    int mq = -1;
    for (std::size_t m = 0; m < k; ++m) {
      if (schedule.stops[m].request == a.request.id) {
        if (schedule.stops[m].type == StopType::kPickup) {
          mp = static_cast<int>(m);
        } else {
          mq = static_cast<int>(m);
        }
      }
    }
    if (mq == -1) continue;
    if (!a.picked_up && mp != -1) {
      const Distance sw = a.deadline_odometer - odometer_ - prefix[mp];
      for (int j = 0; j <= mp; ++j) slack[j] = std::min(slack[j], sw);
      const Distance ss = (1.0 + a.request.epsilon) * a.direct_dist -
                          (prefix[mq] - prefix[mp]);
      for (int j = mp + 1; j <= mq; ++j) slack[j] = std::min(slack[j], ss);
    } else if (a.picked_up) {
      const Distance travelled = odometer_ - a.pickup_odometer;
      const Distance ss = (1.0 + a.request.epsilon) * a.direct_dist -
                          travelled - prefix[mq];
      for (int j = 0; j <= mq; ++j) slack[j] = std::min(slack[j], ss);
    }
  }
  return slack;
}

std::vector<int> LegacyKineticTree::GapFreeSeats(
    const Schedule& schedule) const {
  const std::size_t k = schedule.stops.size();
  std::vector<int> free(k + 1, 0);
  int onboard = onboard_;
  free[0] = capacity_ - onboard;
  for (std::size_t m = 0; m < k; ++m) {
    const Stop& stop = schedule.stops[m];
    const AssignedRequest* a = FindAssigned(stop.request);
    const int riders = (a != nullptr) ? a->request.riders : 0;
    onboard += (stop.type == StopType::kPickup) ? riders : -riders;
    free[m + 1] = capacity_ - onboard;
  }
  return free;
}

void LegacyKineticTree::EnumerateIntoBranch(
    const Schedule& branch, const Request& request, Distance direct_dist,
    const DistFn& dist, const InsertionHooks& hooks,
    std::vector<InsertionCandidate>* out) const {
  const std::size_t k = branch.stops.size();
  const std::vector<Distance> slacks = GapSlacks(branch);
  const std::vector<int> seats = GapFreeSeats(branch);

  std::vector<Distance> prefix_point(k + 1, 0.0);
  for (std::size_t m = 0; m < k; ++m) {
    prefix_point[m + 1] = prefix_point[m] + branch.legs[m];
  }
  auto point = [&](std::size_t j) -> VertexId {
    return j == 0 ? location_ : branch.stops[j - 1].location;
  };

  const VertexId s = request.start;
  const VertexId d = request.destination;

  AssignedRequest extra;
  extra.request = request;
  extra.direct_dist = direct_dist;
  extra.deadline_odometer = kInfDistance;

  for (std::size_t i = 0; i <= k; ++i) {
    const bool s_tail = (i == k);
    if (seats[i] < request.riders) continue;

    if (hooks.prune_s) {
      SPositionContext ctx;
      ctx.ox = point(i);
      ctx.oy = s_tail ? kInvalidVertex : branch.stops[i].location;
      ctx.tail = s_tail;
      ctx.dist_tr_ox = prefix_point[i];
      ctx.leg_dist = s_tail ? 0.0 : branch.legs[i];
      ctx.detour_slack = slacks[i];
      ctx.free_seats = seats[i];
      if (hooks.prune_s(ctx)) continue;
    }

    const Distance a = dist(point(i), s);
    const Distance b = s_tail ? 0.0 : dist(s, branch.stops[i].location);
    const Distance delta_s = s_tail ? a : a + b - branch.legs[i];
    if (delta_s > slacks[i] + kDistTolerance) continue;
    const Distance pickup_dist = prefix_point[i] + a;

    for (std::size_t j = i; j <= k; ++j) {
      const bool d_tail = (j == k);
      if (j > i && seats[j] < request.riders) break;

      if (hooks.prune_d) {
        DPositionContext ctx;
        ctx.ox = point(j);
        ctx.oy = d_tail ? kInvalidVertex : branch.stops[j].location;
        ctx.tail = d_tail;
        ctx.dist_tr_ox = (j == i) ? pickup_dist : prefix_point[j] + delta_s;
        ctx.leg_dist = d_tail ? 0.0 : branch.legs[j];
        ctx.detour_slack = slacks[j];
        ctx.pickup_dist = pickup_dist;
        ctx.delta_s = delta_s;
        ctx.same_gap = (j == i);
        ctx.dist_ox_s = a;
        if (hooks.prune_d(ctx)) continue;
      }

      Schedule candidate;
      candidate.stops.reserve(k + 2);
      candidate.legs.reserve(k + 2);
      const Stop s_stop{StopType::kPickup, request.id, s};
      const Stop d_stop{StopType::kDropoff, request.id, d};

      if (j == i) {
        const Distance c1 = dist(s, d);
        const Distance c2 = d_tail ? 0.0 : dist(d, branch.stops[i].location);
        candidate.stops.assign(branch.stops.begin(),
                               branch.stops.begin() + i);
        candidate.legs.assign(branch.legs.begin(), branch.legs.begin() + i);
        candidate.stops.push_back(s_stop);
        candidate.legs.push_back(a);
        candidate.stops.push_back(d_stop);
        candidate.legs.push_back(c1);
        if (!d_tail) {
          candidate.stops.insert(candidate.stops.end(),
                                 branch.stops.begin() + i,
                                 branch.stops.end());
          candidate.legs.push_back(c2);
          candidate.legs.insert(candidate.legs.end(),
                                branch.legs.begin() + i + 1,
                                branch.legs.end());
        }
      } else {
        const Distance e1 = dist(branch.stops[j - 1].location, d);
        const Distance e2 = d_tail ? 0.0 : dist(d, branch.stops[j].location);
        candidate.stops.assign(branch.stops.begin(),
                               branch.stops.begin() + i);
        candidate.legs.assign(branch.legs.begin(), branch.legs.begin() + i);
        candidate.stops.push_back(s_stop);
        candidate.legs.push_back(a);
        candidate.stops.insert(candidate.stops.end(),
                               branch.stops.begin() + i,
                               branch.stops.begin() + j);
        candidate.legs.push_back(b);
        candidate.legs.insert(candidate.legs.end(),
                              branch.legs.begin() + i + 1,
                              branch.legs.begin() + j);
        candidate.stops.push_back(d_stop);
        candidate.legs.push_back(e1);
        if (!d_tail) {
          candidate.stops.insert(candidate.stops.end(),
                                 branch.stops.begin() + j,
                                 branch.stops.end());
          candidate.legs.push_back(e2);
          candidate.legs.insert(candidate.legs.end(),
                                branch.legs.begin() + j + 1,
                                branch.legs.end());
        }
      }
      PTAR_DCHECK(candidate.stops.size() == k + 2);
      PTAR_DCHECK(candidate.legs.size() == k + 2);

      if (!IsValidSchedule(candidate, &extra)) continue;

      InsertionCandidate result;
      result.pickup_dist = pickup_dist;
      result.total_dist = candidate.total();
      result.schedule = std::move(candidate);
      out->push_back(std::move(result));
    }
  }
}

std::vector<InsertionCandidate> LegacyKineticTree::EnumerateInsertions(
    const Request& request, Distance direct_dist, const DistFn& dist,
    const InsertionHooks& hooks) const {
  PTAR_CHECK(!stale_) << "Refresh() the tree before enumerating insertions";
  std::vector<InsertionCandidate> out;
  for (const Schedule& branch : schedules_) {
    EnumerateIntoBranch(branch, request, direct_dist, dist, hooks, &out);
  }
  std::set<std::vector<std::uint64_t>> seen;
  std::vector<InsertionCandidate> unique;
  unique.reserve(out.size());
  for (auto& cand : out) {
    std::vector<std::uint64_t> key;
    key.reserve(2 * cand.schedule.stops.size());
    for (const Stop& stop : cand.schedule.stops) {
      key.push_back((static_cast<std::uint64_t>(stop.type) << 32) |
                    stop.request);
      key.push_back(stop.location);
    }
    if (seen.insert(std::move(key)).second) {
      unique.push_back(std::move(cand));
    }
  }
  return unique;
}

Status LegacyKineticTree::Commit(const Request& request, Distance direct_dist,
                                 Distance planned_pickup_dist,
                                 const DistFn& dist) {
  PTAR_CHECK(!stale_) << "Refresh() the tree before committing";
  std::vector<InsertionCandidate> candidates =
      EnumerateInsertions(request, direct_dist, dist, InsertionHooks{});
  const Distance deadline = planned_pickup_dist + request.max_wait_dist;
  std::erase_if(candidates, [&](const InsertionCandidate& c) {
    return c.pickup_dist > deadline + 1e-6;
  });
  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "no valid schedule can serve the request within its constraints");
  }
  AssignedRequest assigned;
  assigned.request = request;
  assigned.direct_dist = direct_dist;
  assigned.deadline_odometer = odometer_ + deadline;
  assigned_.push_back(assigned);

  schedules_.clear();
  schedules_.reserve(candidates.size());
  for (auto& c : candidates) {
    schedules_.push_back(std::move(c.schedule));
  }
  if (schedules_.size() > max_branches_) {
    std::sort(schedules_.begin(), schedules_.end(), BranchLess);
    schedules_.resize(max_branches_);
  }
  RecomputeActive();
  return Status::OK();
}

void LegacyKineticTree::MoveTo(VertexId new_location, Distance driven) {
  PTAR_DCHECK(driven >= 0.0);
  odometer_ += driven;
  location_ = new_location;
  Schedule& active = schedules_[active_index_];
  if (!active.stops.empty()) {
    active.legs[0] = std::max<Distance>(0.0, active.legs[0] - driven);
    if (schedules_.size() > 1) stale_ = true;
  }
}

StatusOr<KineticTree::StopEvent> LegacyKineticTree::ArriveAtNextStop() {
  Schedule& active = schedules_[active_index_];
  if (active.stops.empty()) {
    return Status::FailedPrecondition("vehicle has no scheduled stop");
  }
  const Stop served = active.stops[0];
  if (served.location != location_) {
    return Status::FailedPrecondition(
        "vehicle is not at the next scheduled stop");
  }

  KineticTree::StopEvent event;
  event.request = served.request;
  event.type = served.type;

  bool found = false;
  for (std::size_t idx = 0; idx < assigned_.size(); ++idx) {
    AssignedRequest& a = assigned_[idx];
    if (a.request.id != served.request) continue;
    found = true;
    event.riders = a.request.riders;
    if (served.type == StopType::kPickup) {
      PTAR_CHECK(!a.picked_up);
      a.picked_up = true;
      a.pickup_odometer = odometer_;
      onboard_ += a.request.riders;
      PTAR_CHECK(onboard_ <= capacity_);
    } else {
      PTAR_CHECK(a.picked_up);
      onboard_ -= a.request.riders;
      PTAR_CHECK(onboard_ >= 0);
      assigned_.erase(assigned_.begin() + idx);
    }
    break;
  }
  PTAR_CHECK(found) << "served stop references an unknown request";

  std::vector<Schedule> survivors;
  for (Schedule& schedule : schedules_) {
    if (schedule.stops.empty() || !(schedule.stops[0] == served)) continue;
    schedule.stops.erase(schedule.stops.begin());
    schedule.legs.erase(schedule.legs.begin());
    bool duplicate = false;
    for (const Schedule& kept : survivors) {
      if (kept.SameStops(schedule)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) survivors.push_back(std::move(schedule));
  }
  PTAR_CHECK(!survivors.empty()) << "active branch must survive its own stop";

  std::vector<Schedule> valid;
  for (Schedule& schedule : survivors) {
    if (IsValidSchedule(schedule, nullptr)) {
      valid.push_back(std::move(schedule));
    }
  }
  PTAR_CHECK(!valid.empty()) << "no valid schedule after serving a stop";
  schedules_ = std::move(valid);

  if (assigned_.empty()) {
    PTAR_CHECK(schedules_.size() == 1 && schedules_[0].stops.empty());
  }
  stale_ = false;
  RecomputeActive();
  return event;
}

void LegacyKineticTree::Refresh(const DistFn& dist) {
  if (!stale_) return;
  std::vector<Schedule> valid;
  valid.reserve(schedules_.size());
  for (std::size_t i = 0; i < schedules_.size(); ++i) {
    Schedule& schedule = schedules_[i];
    if (i != active_index_ && !schedule.stops.empty()) {
      schedule.legs[0] = dist(location_, schedule.stops[0].location);
    }
    if (IsValidSchedule(schedule, nullptr)) {
      valid.push_back(std::move(schedule));
    } else {
      PTAR_CHECK(i != active_index_) << "active branch became invalid";
    }
  }
  PTAR_CHECK(!valid.empty());
  schedules_ = std::move(valid);
  stale_ = false;
  RecomputeActive();
}

Status LegacyKineticTree::RebuildBranches(const DistFn& dist) {
  if (assigned_.empty()) {
    schedules_.clear();
    schedules_.push_back(Schedule{});
    active_index_ = 0;
    stale_ = false;
    return Status::OK();
  }
  std::vector<Schedule> rebuilt;
  rebuilt.reserve(schedules_.size());
  for (Schedule& branch : schedules_) {
    branch.legs.clear();
    branch.legs.reserve(branch.stops.size());
    VertexId prev = location_;
    bool reachable = true;
    for (const Stop& stop : branch.stops) {
      const Distance leg = dist(prev, stop.location);
      if (leg == kInfDistance) {
        reachable = false;
        break;
      }
      branch.legs.push_back(leg);
      prev = stop.location;
    }
    if (!reachable || !IsValidSchedule(branch, nullptr)) continue;
    bool duplicate = false;
    for (const Schedule& kept : rebuilt) {
      if (kept.SameStops(branch)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) rebuilt.push_back(std::move(branch));
  }
  if (rebuilt.empty()) {
    return Status::Internal("no valid branch survived rebuild for vehicle " +
                            std::to_string(vehicle_));
  }
  std::sort(rebuilt.begin(), rebuilt.end(), BranchLess);
  schedules_ = std::move(rebuilt);
  stale_ = false;
  RecomputeActive();
  return Status::OK();
}

std::size_t LegacyKineticTree::MemoryBytes(std::size_t alloc_overhead) const {
  std::size_t bytes = sizeof(*this);
  auto block = [&](std::size_t cap, std::size_t elem) {
    if (cap != 0) bytes += cap * elem + alloc_overhead;
  };
  block(schedules_.capacity(), sizeof(Schedule));
  for (const Schedule& schedule : schedules_) {
    block(schedule.stops.capacity(), sizeof(Stop));
    block(schedule.legs.capacity(), sizeof(Distance));
  }
  block(assigned_.capacity(), sizeof(AssignedRequest));
  return bytes;
}

// ---------------------------------------------------------------------------
// Twin harness.
// ---------------------------------------------------------------------------

namespace {

/// SplitMix64: deterministic op-stream generator.
std::uint64_t NextRand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string StopString(const Stop& stop) {
  std::ostringstream os;
  os << (stop.type == StopType::kPickup ? "s" : "d") << stop.request << "@"
     << stop.location;
  return os.str();
}

std::string ScheduleString(const Schedule& schedule) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < schedule.stops.size(); ++i) {
    if (i != 0) os << " ";
    os << StopString(schedule.stops[i]);
  }
  os << "] total=" << schedule.total();
  return os.str();
}

/// Collects divergence findings for one seeded run; formats every line with
/// the (seed, op) coordinates needed to replay it.
class TwinChecker {
 public:
  TwinChecker(std::uint64_t seed, TreeTwinOutcome* outcome)
      : seed_(seed), outcome_(outcome) {}

  void SetOp(std::uint64_t op, const char* what) {
    op_ = op;
    what_ = what;
  }

  bool failed() const { return failed_; }

  void Fail(const std::string& detail) {
    std::ostringstream os;
    os << "seed=" << seed_ << " op=" << op_ << " (" << what_ << "): "
       << detail;
    outcome_->findings.push_back(os.str());
    outcome_->divergences++;
    failed_ = true;
  }

  /// Legacy-vs-arena full state equality (branch order is construction
  /// order in both representations, so branches compare element-wise).
  void CompareState(const LegacyKineticTree& legacy, const KineticTree& tree) {
    if (failed_) return;
    if (legacy.location() != tree.location()) {
      return Fail("location mismatch");
    }
    if (legacy.onboard() != tree.onboard()) return Fail("onboard mismatch");
    if (legacy.odometer() != tree.odometer()) return Fail("odometer mismatch");
    if (legacy.stale() != tree.stale()) return Fail("stale flag mismatch");
    if (legacy.IsEmpty() != tree.IsEmpty()) return Fail("IsEmpty mismatch");
    const auto& la = legacy.assigned();
    const auto& na = tree.assigned();
    if (la.size() != na.size()) return Fail("assigned count mismatch");
    for (std::size_t i = 0; i < la.size(); ++i) {
      if (la[i].request.id != na[i].request.id ||
          la[i].picked_up != na[i].picked_up ||
          la[i].direct_dist != na[i].direct_dist ||
          la[i].deadline_odometer != na[i].deadline_odometer ||
          la[i].pickup_odometer != na[i].pickup_odometer) {
        return Fail("assigned[" + std::to_string(i) + "] mismatch for request " +
                    std::to_string(la[i].request.id));
      }
    }
    const std::vector<Schedule>& lb = legacy.schedules();
    const std::vector<Schedule> nb = tree.Schedules();
    if (lb.size() != nb.size()) {
      return Fail("branch count mismatch: legacy=" + std::to_string(lb.size()) +
                  " arena=" + std::to_string(nb.size()));
    }
    const Schedule& active = nb[tree.active_index()];
    const Stop* active_first =
        active.stops.empty() ? nullptr : &active.stops[0];
    for (std::size_t b = 0; b < lb.size(); ++b) {
      if (!lb[b].SameStops(nb[b])) {
        return Fail("branch " + std::to_string(b) + " stop sequence: legacy=" +
                    ScheduleString(lb[b]) + " arena=" + ScheduleString(nb[b]));
      }
      for (std::size_t m = 0; m < lb[b].legs.size(); ++m) {
        // While stale (mid-drive), the arena's shared first leg is already
        // decremented for every branch through the active's first stop; the
        // legacy tree leaves non-active copies stale until Refresh(). The
        // arena value is the more accurate one — both agree again (within
        // tolerance) after the next Refresh/arrival, which this checker
        // still verifies exactly.
        // (The twins may even disagree on which of two ulp-tied branches
        // is active, so the skip covers every branch through that stop.)
        if (tree.stale() && m == 0 && active_first != nullptr &&
            !nb[b].stops.empty() && nb[b].stops[0] == *active_first) {
          continue;
        }
        if (std::abs(lb[b].legs[m] - nb[b].legs[m]) > kDistTolerance) {
          return Fail("branch " + std::to_string(b) + " leg " +
                      std::to_string(m) + " drift: legacy=" +
                      std::to_string(lb[b].legs[m]) + " arena=" +
                      std::to_string(nb[b].legs[m]));
        }
      }
    }
    if (std::abs(legacy.CurrentTotal() - tree.CurrentTotal()) >
        kDistTolerance) {
      return Fail("active total drift");
    }
  }

  /// Candidate-list equality; enumeration order is deterministic and shared.
  void CompareCandidates(const std::vector<InsertionCandidate>& a,
                         const std::vector<InsertionCandidate>& b) {
    if (failed_) return;
    if (a.size() != b.size()) {
      return Fail("candidate count mismatch: legacy=" +
                  std::to_string(a.size()) + " arena=" +
                  std::to_string(b.size()));
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!a[i].schedule.SameStops(b[i].schedule)) {
        return Fail("candidate " + std::to_string(i) + " stop sequence");
      }
      if (std::abs(a[i].pickup_dist - b[i].pickup_dist) > kDistTolerance ||
          std::abs(a[i].total_dist - b[i].total_dist) > kDistTolerance) {
        return Fail("candidate " + std::to_string(i) + " metric drift");
      }
    }
  }

  /// Every capped branch must appear (same stops, legs within tolerance) in
  /// the uncapped tree's branch set — the retention guarantee.
  void CompareSubset(const KineticTree& capped, const KineticTree& full) {
    if (failed_) return;
    const std::vector<Schedule> cb = capped.Schedules();
    const std::vector<Schedule> fb = full.Schedules();
    if (cb.size() > fb.size()) {
      return Fail("capped tree has more branches than uncapped");
    }
    for (const Schedule& c : cb) {
      bool found = false;
      for (const Schedule& f : fb) {
        if (!c.SameStops(f)) continue;
        found = true;
        // While stale, each tree has decremented the shared first leg of
        // its *own* active path, which need not be the same stop in the
        // two trees; legs[0] re-aligns at the next Refresh.
        for (std::size_t m = capped.stale() ? 1 : 0; m < c.legs.size(); ++m) {
          if (std::abs(c.legs[m] - f.legs[m]) > kDistTolerance) {
            return Fail("capped branch leg drift vs uncapped: " +
                        ScheduleString(c));
          }
        }
        break;
      }
      if (!found) {
        return Fail("capped branch not in uncapped set: " + ScheduleString(c));
      }
    }
    // Subset minimum can never beat the superset minimum; a capped active
    // total below the uncapped one means a branch exists only in the
    // capped tree. (Not checkable while stale: only each tree's own active
    // first leg is decremented, so stored totals are transiently skewed.)
    if (!capped.stale() &&
        capped.CurrentTotal() < full.CurrentTotal() - kDistTolerance) {
      return Fail("capped tree drives a branch the uncapped tree lacks: "
                  "capped total=" + std::to_string(capped.CurrentTotal()) +
                  " uncapped=" + std::to_string(full.CurrentTotal()));
    }
  }

 private:
  std::uint64_t seed_;
  TreeTwinOutcome* outcome_;
  std::uint64_t op_ = 0;
  const char* what_ = "";
  bool failed_ = false;
};

bool SameFirstStop(const Schedule& a, const Schedule& b) {
  if (a.stops.empty() || b.stops.empty()) return a.stops.empty() == b.stops.empty();
  return a.stops[0] == b.stops[0];
}

}  // namespace

TreeTwinOutcome RunTreeTwin(std::uint64_t seed, DistanceBackend backend,
                            std::size_t cap) {
  TreeTwinOutcome outcome;
  TwinChecker check(seed, &outcome);

  ScenarioSpec spec = MakeRandomSpec(seed);
  StatusOr<BuiltScenario> built = BuildScenario(spec);
  PTAR_CHECK(built.ok()) << built.status().message();
  const RoadNetwork& graph = *built->graph;

  std::unique_ptr<CHGraph> ch;
  if (backend == DistanceBackend::kCH) {
    CHPreprocessor preprocessor;
    ch = std::make_unique<CHGraph>(preprocessor.Build(graph));
  }
  DistanceOracle oracle =
      ch ? DistanceOracle(&graph, ch.get()) : DistanceOracle(&graph);
  const KineticTree::DistFn dist = [&oracle](VertexId a, VertexId b) {
    return oracle.Dist(a, b);
  };
  DijkstraEngine router(&graph);
  const KineticTreeAuditor auditor(dist);

  const VertexId start = spec.vehicle_starts.empty()
                             ? static_cast<VertexId>(seed % graph.num_vertices())
                             : spec.vehicle_starts[0];
  const int capacity = spec.vehicle_capacity;

  LegacyKineticTree legacy(0, start, capacity);
  KineticTree tree(0, start, capacity);
  KineticTree capped(0, start, capacity,
                     cap > 0 ? cap : KineticTree::kUnlimitedBranches);
  // The capped twin is comparable until its branch set stops being a
  // superset-equal (exact while nothing dropped) or its active path departs
  // from the uncapped tree's (it then physically drives elsewhere).
  bool capped_live = cap > 0;
  bool capped_exact = capped_live;

  std::uint64_t rng = seed * 0x9e3779b97f4a7c15ULL + 1;
  std::size_t next_spec_request = 0;
  RequestId synth_id = 1u << 20;

  auto make_request = [&]() -> Request {
    if (next_spec_request < spec.requests.size()) {
      return spec.requests[next_spec_request++];
    }
    Request r;
    r.id = synth_id++;
    r.start = static_cast<VertexId>(NextRand(rng) % graph.num_vertices());
    r.destination =
        static_cast<VertexId>(NextRand(rng) % graph.num_vertices());
    r.riders = 1 + static_cast<int>(NextRand(rng) % 2);
    r.epsilon = 1.2 + 0.1 * static_cast<double>(NextRand(rng) % 9);
    r.max_wait_dist = 500.0 + static_cast<double>(NextRand(rng) % 2000);
    return r;
  };

  auto refresh_all = [&]() {
    legacy.Refresh(dist);
    tree.Refresh(dist);
    if (capped_live) capped.Refresh(dist);
  };

  auto audit_arena = [&]() {
    if (check.failed() || tree.stale()) return;
    const AuditReport report = auditor.AuditTree(tree);
    if (!report.ok()) {
      check.Fail("auditor flagged the arena tree: " + report.findings[0]);
    }
  };

  auto compare_all = [&]() {
    check.CompareState(legacy, tree);
    if (check.failed() || !capped_live) return;
    if (capped_exact) {
      check.CompareState(legacy, capped);
    } else {
      check.CompareSubset(capped, tree);
    }
  };

  constexpr std::uint64_t kOps = 160;
  for (std::uint64_t op = 0; op < kOps && !check.failed(); ++op) {
    outcome.ops++;
    const std::uint64_t roll = NextRand(rng) % 100;

    if (roll < 40 && legacy.assigned().size() < 6) {
      check.SetOp(op, "commit");
      if (legacy.stale()) refresh_all();
      const Request request = make_request();
      if (request.start == request.destination) continue;
      const Distance direct = dist(request.start, request.destination);
      if (!(direct < kInfDistance)) continue;

      const auto legacy_cands =
          legacy.EnumerateInsertions(request, direct, dist, InsertionHooks{});
      const auto arena_cands =
          tree.EnumerateInsertions(request, direct, dist, InsertionHooks{});
      check.CompareCandidates(legacy_cands, arena_cands);
      if (check.failed()) break;
      if (capped_live && capped_exact) {
        const auto capped_cands =
            capped.EnumerateInsertions(request, direct, dist,
                                       InsertionHooks{});
        check.CompareCandidates(legacy_cands, capped_cands);
        if (check.failed()) break;
      }
      if (legacy_cands.empty()) continue;

      Distance planned = legacy_cands[0].pickup_dist;
      for (const InsertionCandidate& c : legacy_cands) {
        planned = std::min(planned, c.pickup_dist);
      }
      const Status ls = legacy.Commit(request, direct, planned, dist);
      const Status ns = tree.Commit(request, direct, planned, dist);
      if (ls.ok() != ns.ok()) {
        check.Fail("commit status mismatch: legacy=" +
                   std::string(ls.ok() ? "ok" : ls.message()) + " arena=" +
                   std::string(ns.ok() ? "ok" : ns.message()));
        break;
      }
      if (ls.ok()) outcome.commits++;
      if (capped_live) {
        const Status cs = capped.Commit(request, direct, planned, dist);
        if (cs.ok()) {
          capped_exact = capped_exact && capped.branches_dropped() == 0;
        } else if (capped.branches_dropped() > 0) {
          // The feasible insertion lived only in dropped branches: an
          // attributed option loss, after which the capped tree's rider set
          // diverges and the comparison window closes.
          outcome.capped_losses++;
          capped_live = false;
        } else {
          check.Fail("capped commit failed without any dropped branch: " +
                     std::string(cs.message()));
          break;
        }
      }
    } else if (roll < 70) {
      check.SetOp(op, "move");
      const VertexId target = tree.NextStopLocation();
      if (target == kInvalidVertex) continue;
      if (legacy.NextStopLocation() != target) {
        // Branch sets match (CompareState), so a next-stop mismatch can
        // only be an active-selection tie flip from sub-tolerance leg
        // drift. Rebuilding recomputes all legs identically and realigns.
        if (std::abs(legacy.CurrentTotal() - tree.CurrentTotal()) >
            kDistTolerance) {
          check.Fail("next stop mismatch beyond tie tolerance");
          break;
        }
        check.SetOp(op, "move-realign");
        PTAR_CHECK(legacy.RebuildBranches(dist).ok());
        PTAR_CHECK(tree.RebuildBranches(dist).ok());
        if (capped_live) PTAR_CHECK(capped.RebuildBranches(dist).ok());
        compare_all();
        audit_arena();
        continue;
      }
      if (tree.location() == target) continue;  // already there; arrive op
      if (capped_live && capped.NextStopLocation() != target) {
        // The capped tree would drive a different branch; its physical
        // trajectory departs here, so the comparison window closes.
        capped_live = false;
      }
      (void)router.PointToPoint(tree.location(), target);
      const std::vector<VertexId> path = router.PathTo(target);
      if (path.size() < 2) continue;  // unreachable (cannot happen in-city)
      const VertexId hop = path[1];
      Distance hop_dist = 0.0;
      for (const Arc& arc : graph.OutArcs(tree.location())) {
        if (arc.head == hop) {
          hop_dist = arc.weight;
          break;
        }
      }
      PTAR_CHECK(hop_dist > 0.0);
      legacy.MoveTo(hop, hop_dist);
      tree.MoveTo(hop, hop_dist);
      if (capped_live) capped.MoveTo(hop, hop_dist);
    } else if (roll < 80) {
      check.SetOp(op, "arrive");
      const VertexId target = tree.NextStopLocation();
      if (target == kInvalidVertex || target != tree.location()) continue;
      if (!SameFirstStop(legacy.ActiveSchedule(), tree.ActiveSchedule())) {
        if (std::abs(legacy.CurrentTotal() - tree.CurrentTotal()) >
            kDistTolerance) {
          check.Fail("served stop mismatch beyond tie tolerance");
          break;
        }
        continue;  // tie flip; a later rebuild or refresh realigns
      }
      if (capped_live &&
          !SameFirstStop(capped.ActiveSchedule(), tree.ActiveSchedule())) {
        capped_live = false;  // would serve a different stop
      }
      const auto le = legacy.ArriveAtNextStop();
      const auto ne = tree.ArriveAtNextStop();
      if (le.ok() != ne.ok()) {
        check.Fail("arrive status mismatch");
        break;
      }
      if (le.ok()) {
        outcome.arrivals++;
        if (le->request != ne->request || le->type != ne->type ||
            le->riders != ne->riders) {
          check.Fail("stop event mismatch");
          break;
        }
        if (capped_live) {
          const auto ce = capped.ArriveAtNextStop();
          if (!ce.ok() || ce->request != le->request) {
            check.Fail("capped arrive diverged on a shared stop");
            break;
          }
        }
      }
    } else if (roll < 90) {
      check.SetOp(op, "refresh");
      refresh_all();
    } else {
      check.SetOp(op, "rebuild");
      const Status ls = legacy.RebuildBranches(dist);
      const Status ns = tree.RebuildBranches(dist);
      if (ls.ok() != ns.ok()) {
        check.Fail("rebuild status mismatch");
        break;
      }
      if (capped_live && !capped.RebuildBranches(dist).ok()) {
        check.Fail("capped rebuild failed");
        break;
      }
    }

    compare_all();
    audit_arena();
  }

  if (cap > 0) outcome.capped_drops += capped.branches_dropped();
  return outcome;
}

}  // namespace ptar::check
