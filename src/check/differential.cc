#include "check/differential.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "check/reference_matcher.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"

namespace ptar::check {

namespace {

bool NearlyEqual(double a, double b, double tolerance) {
  return std::abs(a - b) <= tolerance;
}

bool SameOption(const Option& a, const Option& b, double tolerance) {
  return a.vehicle == b.vehicle &&
         NearlyEqual(a.pickup_dist, b.pickup_dist, tolerance) &&
         NearlyEqual(a.price, b.price, tolerance);
}

}  // namespace

const char* DivergenceTypeName(DivergenceType type) {
  switch (type) {
    case DivergenceType::kMissingOption:
      return "missing-option";
    case DivergenceType::kSpuriousOption:
      return "spurious-option";
    case DivergenceType::kWrongPrice:
      return "wrong-price";
    case DivergenceType::kWrongPickupDist:
      return "wrong-pickup-dist";
  }
  return "unknown";
}

std::string Divergence::Describe() const {
  std::ostringstream out;
  out << matcher << " request#" << request_index << " (id " << request
      << "): " << DivergenceTypeName(type);
  const auto describe_option = [&out](const char* label, const Option& o) {
    out << ' ' << label << "=<vehicle " << o.vehicle << ", pickup "
        << o.pickup_dist << ", price " << o.price << '>';
  };
  if (type != DivergenceType::kSpuriousOption) {
    describe_option("expected", expected);
  }
  if (type != DivergenceType::kMissingOption) {
    describe_option("actual", actual);
  }
  bool any_lemma = false;
  for (std::size_t l = 1; l <= LemmaCounters::kNumLemmas; ++l) {
    if (lemma_hits[l] == 0) continue;
    out << (any_lemma ? "," : " lemma-hits:") << " L" << l << "="
        << lemma_hits[l];
    any_lemma = true;
  }
  if (ellipse_pruned > 0) {
    out << " prune-hits: ellipse=" << ellipse_pruned;
  }
  return out.str();
}

std::vector<Option> NormalizeSkyline(std::span<const Option> options,
                                     double tolerance) {
  std::vector<Option> kept;
  kept.reserve(options.size());
  for (std::size_t i = 0; i < options.size(); ++i) {
    const Option& a = options[i];
    bool dominated = false;
    for (std::size_t j = 0; j < options.size() && !dominated; ++j) {
      if (j == i) continue;
      const Option& e = options[j];
      dominated = e.pickup_dist <= a.pickup_dist + tolerance &&
                  e.price <= a.price + tolerance &&
                  (e.pickup_dist < a.pickup_dist - tolerance ||
                   e.price < a.price - tolerance);
    }
    if (!dominated) kept.push_back(a);
  }
  return kept;
}

std::vector<Divergence> DiffSubset(std::span<const Option> superset,
                                   std::span<const Option> actual,
                                   double tolerance) {
  std::vector<Divergence> out;
  for (const Option& a : actual) {
    bool matched = false;
    for (const Option& e : superset) {
      if (SameOption(e, a, tolerance)) {
        matched = true;
        break;
      }
    }
    if (matched) continue;
    Divergence d;
    d.type = DivergenceType::kSpuriousOption;
    d.actual = a;
    for (const Option& e : superset) {
      if (e.vehicle != a.vehicle) continue;
      if (NearlyEqual(e.pickup_dist, a.pickup_dist, tolerance)) {
        d.type = DivergenceType::kWrongPrice;
      } else if (NearlyEqual(e.price, a.price, tolerance)) {
        d.type = DivergenceType::kWrongPickupDist;
      } else {
        continue;
      }
      d.expected = e;
      break;
    }
    out.push_back(d);
  }
  return out;
}

std::vector<Divergence> DiffSkylines(std::span<const Option> reference,
                                     std::span<const Option> actual,
                                     double tolerance) {
  const std::vector<Option> ref = NormalizeSkyline(reference, tolerance);
  const std::vector<Option> act = NormalizeSkyline(actual, tolerance);

  // First pass: an option is matched when the other side has *some* option
  // agreeing in vehicle and both dimensions. Matching is deliberately not
  // one-to-one: when one side's exact dedup merges a near-duplicate pair
  // the other side kept, the multiplicity difference is FP noise.
  std::vector<char> actual_used(act.size(), 0);
  std::vector<const Option*> unmatched_expected;
  for (const Option& e : ref) {
    bool matched = false;
    for (const Option& a : act) {
      if (SameOption(e, a, tolerance)) {
        matched = true;
        break;
      }
    }
    if (!matched) unmatched_expected.push_back(&e);
  }
  for (std::size_t i = 0; i < act.size(); ++i) {
    for (const Option& e : ref) {
      if (SameOption(e, act[i], tolerance)) {
        actual_used[i] = 1;
        break;
      }
    }
  }

  // Second pass: attribute leftovers. A same-vehicle pair agreeing in one
  // dimension is a wrong-value divergence; anything else is missing or
  // spurious.
  std::vector<Divergence> out;
  for (const Option* e : unmatched_expected) {
    Divergence d;
    d.expected = *e;
    d.type = DivergenceType::kMissingOption;
    for (std::size_t i = 0; i < act.size(); ++i) {
      if (actual_used[i] || act[i].vehicle != e->vehicle) continue;
      if (NearlyEqual(act[i].pickup_dist, e->pickup_dist, tolerance)) {
        d.type = DivergenceType::kWrongPrice;
      } else if (NearlyEqual(act[i].price, e->price, tolerance)) {
        d.type = DivergenceType::kWrongPickupDist;
      } else {
        continue;
      }
      d.actual = act[i];
      actual_used[i] = 1;
      break;
    }
    out.push_back(d);
  }
  for (std::size_t i = 0; i < act.size(); ++i) {
    if (actual_used[i]) continue;
    Divergence d;
    d.type = DivergenceType::kSpuriousOption;
    d.actual = act[i];
    out.push_back(d);
  }
  return out;
}

std::vector<std::unique_ptr<Matcher>> MakeDefaultMatchers() {
  std::vector<std::unique_ptr<Matcher>> matchers;
  matchers.push_back(std::make_unique<BaselineMatcher>());
  matchers.push_back(std::make_unique<SsaMatcher>(1.0));
  matchers.push_back(std::make_unique<DsaMatcher>(1.0));
  return matchers;
}

StatusOr<DifferentialOutcome> RunDifferential(
    const ScenarioSpec& spec, const DifferentialConfig& config,
    const MatcherFactory& factory) {
  auto built = BuildScenario(spec);
  if (!built.ok()) return built.status();

  std::vector<std::unique_ptr<Matcher>> owned =
      factory ? factory() : MakeDefaultMatchers();
  if (owned.empty()) {
    return Status::InvalidArgument("matcher factory produced no matchers");
  }
  const std::size_t num_tested = owned.size();
  auto reference_owner = std::make_unique<ReferenceMatcher>();
  ReferenceMatcher* reference_matcher = reference_owner.get();
  owned.push_back(std::move(reference_owner));
  std::vector<Matcher*> matchers;
  matchers.reserve(owned.size());
  for (const auto& m : owned) matchers.push_back(m.get());

  EngineOptions eopts;
  eopts.vehicle_capacity = spec.vehicle_capacity;
  eopts.seed = spec.engine_seed;
  eopts.start_vertices = spec.vehicle_starts;
  eopts.distance_backend = config.distance_backend;
  eopts.tree_max_branches = config.tree_max_branches;
  if (config.request_budget > 0) {
    eopts.overload.request_budget = config.request_budget;
    // Freeze the ladder at kFull: the harness wants every matcher (and the
    // reference) evaluated on every request, not the engine's fallback.
    eopts.overload.degrade_after = std::numeric_limits<int>::max();
  }
  Engine engine(built.value().graph.get(), built.value().grid.get(), eopts);
  if (config.faults.active()) {
    const FaultPlan plan = config.faults;
    engine.SetFaultHookFactory(
        [plan, num_tested](std::size_t slot) -> DistanceOracle::FaultHook {
          // Tested slots only: the reference slot stays clean so the
          // subset check runs against ground truth.
          if (slot >= num_tested) return nullptr;
          return MakeFaultHook(plan);
        });
  }

  DifferentialOutcome outcome;
  outcome.matchers.resize(num_tested);
  for (std::size_t m = 0; m < num_tested; ++m) {
    outcome.matchers[m].name = matchers[m]->name();
  }

  for (std::size_t r = 0; r < spec.requests.size(); ++r) {
    const Request& request = spec.requests[r];
    const Engine::RequestOutcome result =
        engine.ProcessRequest(request, matchers);
    ++outcome.requests_run;
    const std::vector<Option>& reference = result.results.back().options;
    bool diverged = false;
    for (std::size_t m = 0; m < num_tested; ++m) {
      const MatchResult& mr = result.results[m];
      outcome.matchers[m].options_sum += mr.options.size();
      outcome.matchers[m].totals.Accumulate(mr.stats);
      std::vector<Divergence> diffs;
      if (mr.complete) {
        diffs = DiffSkylines(reference, mr.options, config.tolerance);
      } else {
        // Truncated result: only membership in the reference's full
        // pre-skyline option set is required (see DiffSubset).
        ++outcome.partial_results;
        diffs = DiffSubset(reference_matcher->last_full_options(),
                           mr.options, config.tolerance);
      }
      for (Divergence& d : diffs) {
        d.matcher = matchers[m]->name();
        d.request_index = r;
        d.request = request.id;
        d.lemma_hits = mr.stats.lemma_hits;
        d.ellipse_pruned = mr.stats.ellipse_pruned;
        outcome.divergences.push_back(std::move(d));
        diverged = true;
      }
    }
    if (diverged &&
        outcome.first_divergent_request == DifferentialOutcome::kNoDivergence) {
      outcome.first_divergent_request = r;
    }
    if (diverged && config.stop_at_first) break;
  }
  return outcome;
}

}  // namespace ptar::check
