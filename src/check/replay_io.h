// Versioned text serialization of differential scenarios.
//
// Format (version 1, '#' comments and blank lines allowed outside the
// request block):
//
//   ptar-replay 1
//   city grid rows=10 cols=10 seed=17      # or: city ring rings=6 spokes=12 seed=17
//   cell_size 300
//   capacity 4
//   engine_seed 13
//   vehicles 3
//   v 37
//   v 102
//   v 5
//   requests
//   id,submit_time,start,destination,riders,max_wait_dist,epsilon
//   0,0.5,12,87,1,900,1.5
//   end
//
// The request block between `requests` and `end` is exactly the trace_io
// CSV format, so shrunk repros double as request traces.

#ifndef PTAR_CHECK_REPLAY_IO_H_
#define PTAR_CHECK_REPLAY_IO_H_

#include <iosfwd>
#include <string>

#include "check/scenario.h"
#include "common/status.h"

namespace ptar::check {

inline constexpr int kReplayFormatVersion = 1;

Status SaveReplay(const ScenarioSpec& spec, std::ostream& out);
Status SaveReplayToFile(const ScenarioSpec& spec, const std::string& path);

/// Parses and validates a replay: the city is rebuilt to validate request
/// endpoints (through trace_io) and vehicle starts.
StatusOr<ScenarioSpec> LoadReplay(std::istream& in);
StatusOr<ScenarioSpec> LoadReplayFromFile(const std::string& path);

}  // namespace ptar::check

#endif  // PTAR_CHECK_REPLAY_IO_H_
