// Deliberately broken matchers for validating the differential harness.
//
// A correctness harness that has never caught a bug is untested itself.
// BrokenLemmaMatcher is a full-coverage matcher (scans the whole fleet
// like BA) whose pruning hook applies one chosen lemma with its grid lower
// bounds inflated by a factor — the exact over-aggressive-bound bug class
// the harness exists to catch. With a factor comfortably above the
// network's distance/lower-bound ratio the "bound" exceeds true distances,
// the lemma prunes options the reference keeps, and the harness must
// report missing-option divergences attributed to that lemma's counter.

// FaultPlan / MakeFaultHook extend the same philosophy to the substrate:
// a declarative description of distance-oracle misbehavior (failing pairs,
// slow computations, periodic stalls) compiled into a
// DistanceOracle::FaultHook. Failure decisions are a pure hash of the
// vertex pair and the plan seed, so the same pair fails in every oracle,
// every thread, and every replay — injected runs stay reproducible. The
// degradation machinery (work budgets, the engine's overload ladder, the
// kinetic-tree auditor) is exercised against these plans by ptar_check and
// the robustness test suite.

#ifndef PTAR_CHECK_FAULT_INJECTION_H_
#define PTAR_CHECK_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/distance_oracle.h"
#include "kinetic/kinetic_tree.h"
#include "rideshare/matcher.h"

namespace ptar::check {

class BrokenLemmaMatcher : public Matcher {
 public:
  /// `lemma` selects the sabotaged predicate: 1 (empty-vehicle dominance),
  /// 3 (start-edge dominance hook), or 11 (after-start dominance hook).
  /// `inflation` scales the grid lower bounds fed to it.
  explicit BrokenLemmaMatcher(int lemma = 3, double inflation = 3.0);

  std::string name() const override {
    return "BROKEN-L" + std::to_string(lemma_);
  }
  MatchResult Match(const Request& request, MatchContext& ctx) override;

  int lemma() const { return lemma_; }

 private:
  int lemma_;
  double inflation_;
};

/// Declarative oracle-fault description, parsed from the `--inject` flag
/// (comma-separated key=value pairs: fail_rate, seed, slow_us, stall_every,
/// stall_us; e.g. "fail_rate=0.05,seed=7,slow_us=200").
struct FaultPlan {
  /// Fraction (0..1) of distance computations that fail (answer
  /// kInfDistance). Decided per vertex pair by a pure hash with `seed`, so
  /// a pair fails identically across oracles, threads, and replays.
  double fail_rate = 0.0;
  std::uint64_t seed = 1;
  /// Busy-wait inside every hooked computation (slow-backend emulation for
  /// deadline/shedding tests; wall-clock, inherently nondeterministic).
  double slow_micros = 0.0;
  /// Every `stall_every`-th hooked computation (0 = never) additionally
  /// busy-waits `stall_micros` — emulates a thread losing the CPU.
  std::uint64_t stall_every = 0;
  double stall_micros = 0.0;

  bool active() const {
    return fail_rate > 0.0 || slow_micros > 0.0 ||
           (stall_every > 0 && stall_micros > 0.0);
  }
};

StatusOr<FaultPlan> ParseFaultPlan(const std::string& spec);

/// Compiles the plan into a hook for DistanceOracle::SetFaultHook. Install
/// a separate hook per oracle: the stall counter is per-hook state and each
/// oracle is single-threaded, keeping injected runs race-free. Returns a
/// null hook for an inactive plan.
DistanceOracle::FaultHook MakeFaultHook(const FaultPlan& plan);

/// Deterministically corrupts one leg of one non-empty tree (schedule
/// corruption for auditor tests). Returns the corrupted vehicle, or
/// kInvalidVehicle when every tree is empty.
VehicleId CorruptRandomLeg(std::vector<KineticTree>& fleet,
                           std::uint64_t seed);

}  // namespace ptar::check

#endif  // PTAR_CHECK_FAULT_INJECTION_H_
