// Deliberately broken matchers for validating the differential harness.
//
// A correctness harness that has never caught a bug is untested itself.
// BrokenLemmaMatcher is a full-coverage matcher (scans the whole fleet
// like BA) whose pruning hook applies one chosen lemma with its grid lower
// bounds inflated by a factor — the exact over-aggressive-bound bug class
// the harness exists to catch. With a factor comfortably above the
// network's distance/lower-bound ratio the "bound" exceeds true distances,
// the lemma prunes options the reference keeps, and the harness must
// report missing-option divergences attributed to that lemma's counter.

#ifndef PTAR_CHECK_FAULT_INJECTION_H_
#define PTAR_CHECK_FAULT_INJECTION_H_

#include <string>

#include "rideshare/matcher.h"

namespace ptar::check {

class BrokenLemmaMatcher : public Matcher {
 public:
  /// `lemma` selects the sabotaged predicate: 1 (empty-vehicle dominance),
  /// 3 (start-edge dominance hook), or 11 (after-start dominance hook).
  /// `inflation` scales the grid lower bounds fed to it.
  explicit BrokenLemmaMatcher(int lemma = 3, double inflation = 3.0);

  std::string name() const override {
    return "BROKEN-L" + std::to_string(lemma_);
  }
  MatchResult Match(const Request& request, MatchContext& ctx) override;

  int lemma() const { return lemma_; }

 private:
  int lemma_;
  double inflation_;
};

}  // namespace ptar::check

#endif  // PTAR_CHECK_FAULT_INJECTION_H_
