#include "check/shrinker.h"

#include <utility>

#include "common/logging.h"

namespace ptar::check {

namespace {

/// The reduction-preserving signature: a candidate counts as "still
/// failing" only when the same matcher produces the same kind of
/// divergence, so shrinking never wanders onto an unrelated bug.
struct Signature {
  std::string matcher;
  DivergenceType type = DivergenceType::kMissingOption;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.matcher == b.matcher && a.type == b.type;
  }
};

Signature SignatureOf(const Divergence& d) {
  return Signature{d.matcher, d.type};
}

/// Truncates the stream right after the first divergent request — the
/// suffix cannot influence it (requests are processed in order).
void TruncateAfterDivergence(ScenarioSpec* spec,
                             const DifferentialOutcome& outcome) {
  if (outcome.first_divergent_request == DifferentialOutcome::kNoDivergence) {
    return;
  }
  const std::size_t keep = outcome.first_divergent_request + 1;
  if (keep < spec->requests.size()) spec->requests.resize(keep);
}

}  // namespace

ShrinkResult ShrinkScenario(const ScenarioSpec& spec,
                            const ShrinkOptions& options,
                            const MatcherFactory& factory) {
  DifferentialConfig config = options.config;
  config.stop_at_first = true;

  ShrinkResult result;
  result.spec = spec;

  const auto run = [&](const ScenarioSpec& candidate)
      -> StatusOr<DifferentialOutcome> {
    ++result.evals;
    return RunDifferential(candidate, config, factory);
  };

  auto initial = run(spec);
  if (!initial.ok() || initial.value().ok()) return result;
  result.reproduced = true;
  Signature signature = SignatureOf(initial.value().divergences.front());
  result.divergence = initial.value().divergences.front();
  TruncateAfterDivergence(&result.spec, initial.value());

  // Accepts `candidate` if it still fails with the original signature;
  // keeps the (possibly further truncated) candidate and its divergence.
  const auto try_accept = [&](ScenarioSpec candidate) {
    if (result.evals >= options.max_evals) return false;
    auto outcome = run(candidate);
    if (!outcome.ok() || outcome.value().ok()) return false;
    const Divergence* match = nullptr;
    for (const Divergence& d : outcome.value().divergences) {
      if (SignatureOf(d) == signature) {
        match = &d;
        break;
      }
    }
    if (match == nullptr) return false;
    result.divergence = *match;
    TruncateAfterDivergence(&candidate, outcome.value());
    result.spec = std::move(candidate);
    return true;
  };

  bool progress = true;
  while (progress && result.evals < options.max_evals) {
    progress = false;

    // Drop requests, scanning from the end so indices stay valid. The
    // divergent request itself is included: another request may diverge
    // the same way without it.
    for (std::size_t r = result.spec.requests.size(); r-- > 0;) {
      if (result.spec.requests.size() <= 1) break;
      ScenarioSpec candidate = result.spec;
      candidate.requests.erase(candidate.requests.begin() +
                               static_cast<std::ptrdiff_t>(r));
      if (try_accept(std::move(candidate))) progress = true;
    }

    // Drop vehicles.
    for (std::size_t v = result.spec.vehicle_starts.size(); v-- > 0;) {
      if (result.spec.vehicle_starts.size() <= 1) break;
      ScenarioSpec candidate = result.spec;
      candidate.vehicle_starts.erase(candidate.vehicle_starts.begin() +
                                     static_cast<std::ptrdiff_t>(v));
      if (try_accept(std::move(candidate))) progress = true;
    }

    // Collapse the time horizon: all requests submitted at t=0 (vehicles
    // never move, which also makes the repro easier to reason about).
    bool at_zero = true;
    for (const Request& r : result.spec.requests) {
      if (r.submit_time != 0.0) at_zero = false;
    }
    if (!at_zero) {
      ScenarioSpec candidate = result.spec;
      for (Request& r : candidate.requests) r.submit_time = 0.0;
      if (try_accept(std::move(candidate))) progress = true;
    }
  }
  return result;
}

}  // namespace ptar::check
