#include "check/reference_matcher.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "kinetic/kinetic_tree.h"
#include "kinetic/schedule.h"

namespace ptar::check {

namespace {

/// All options one non-empty vehicle offers: every (s-gap, d-gap) insertion
/// of every branch, with every leg recomputed from scratch.
void EnumerateVehicleOptions(const KineticTree& tree, const Request& request,
                             Distance direct, MatchContext& ctx,
                             std::vector<Option>* out) {
  const Distance base_total = tree.CurrentTotal();

  AssignedRequest extra;
  extra.request = request;
  extra.direct_dist = direct;
  // The new request's waiting constraint is trivially satisfied at creation
  // (planned == actual pickup), matching the production enumerator.
  extra.deadline_odometer = kInfDistance;

  const Stop s_stop{StopType::kPickup, request.id, request.start};
  const Stop d_stop{StopType::kDropoff, request.id, request.destination};

  const std::vector<Schedule> schedules = tree.Schedules();
  for (const Schedule& branch : schedules) {
    const std::size_t k = branch.stops.size();
    for (std::size_t i = 0; i <= k; ++i) {
      for (std::size_t j = i; j <= k; ++j) {
        // New stop order: branch[0..i) s branch[i..j) d branch[j..k).
        Schedule candidate;
        candidate.stops.reserve(k + 2);
        candidate.stops.assign(branch.stops.begin(),
                               branch.stops.begin() + i);
        candidate.stops.push_back(s_stop);
        candidate.stops.insert(candidate.stops.end(),
                               branch.stops.begin() + i,
                               branch.stops.begin() + j);
        candidate.stops.push_back(d_stop);
        candidate.stops.insert(candidate.stops.end(),
                               branch.stops.begin() + j, branch.stops.end());

        candidate.legs.reserve(k + 2);
        VertexId prev = tree.location();
        bool reachable = true;
        for (const Stop& stop : candidate.stops) {
          const Distance leg = ctx.oracle->Dist(prev, stop.location);
          if (leg == kInfDistance) {
            reachable = false;
            break;
          }
          candidate.legs.push_back(leg);
          prev = stop.location;
        }
        if (!reachable) continue;
        if (!tree.IsValidSchedule(candidate, &extra)) continue;

        Option option;
        option.vehicle = tree.vehicle();
        option.pickup_dist = candidate.PrefixDistance(i);
        option.price = ctx.price_model.Price(
            request.riders, candidate.total() - base_total, direct);
        out->push_back(option);
      }
    }
  }
}

}  // namespace

std::vector<Option> NaiveSkyline(std::vector<Option> options) {
  std::vector<Option> kept;
  kept.reserve(options.size());
  for (std::size_t a = 0; a < options.size(); ++a) {
    bool dropped = false;
    for (std::size_t b = 0; b < options.size() && !dropped; ++b) {
      if (b != a && Dominates(options[b], options[a])) dropped = true;
    }
    if (!dropped) kept.push_back(options[a]);
  }
  std::sort(kept.begin(), kept.end(), [](const Option& a, const Option& b) {
    if (a.pickup_dist != b.pickup_dist) return a.pickup_dist < b.pickup_dist;
    if (a.price != b.price) return a.price < b.price;
    return a.vehicle < b.vehicle;
  });
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

MatchResult ReferenceMatcher::Match(const Request& request,
                                    MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  const Distance direct =
      ctx.oracle->Dist(request.start, request.destination);
  const KineticTree::DistFn dist = [&ctx](VertexId a, VertexId b) {
    return ctx.oracle->Dist(a, b);
  };

  MatchResult result;
  std::vector<Option> options;
  for (KineticTree& tree : *ctx.fleet) {
    ++result.stats.verified_vehicles;
    if (tree.IsEmpty()) {
      if (tree.capacity() < request.riders) continue;
      const Distance pickup = ctx.oracle->Dist(tree.location(),
                                               request.start);
      if (pickup == kInfDistance) continue;
      Option option;
      option.vehicle = tree.vehicle();
      option.pickup_dist = pickup;
      option.price = ctx.price_model.EmptyVehiclePrice(request.riders,
                                                       pickup, direct);
      options.push_back(option);
    } else {
      tree.Refresh(dist);
      EnumerateVehicleOptions(tree, request, direct, ctx, &options);
    }
  }

  last_full_options_ = std::move(options);
  result.options = NaiveSkyline(last_full_options_);
  result.stats.compdists = ctx.oracle->compdists();
  result.stats.elapsed_micros = timer.ElapsedMicros();
  return result;
}

}  // namespace ptar::check
