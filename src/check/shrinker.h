// Greedy scenario minimization for failing differential seeds.
//
// Given a scenario whose differential run diverges, the shrinker looks for
// a smaller scenario that still diverges with the same signature
// (matcher name + divergence type of the first divergence), trying in
// order: truncating the request stream after the first divergent request,
// dropping individual requests, dropping individual vehicles, and
// collapsing the time horizon (shifting all submit times to zero). Each
// accepted reduction restarts the greedy passes until a fixpoint or the
// evaluation budget is reached.

#ifndef PTAR_CHECK_SHRINKER_H_
#define PTAR_CHECK_SHRINKER_H_

#include <cstddef>

#include "check/differential.h"
#include "check/scenario.h"

namespace ptar::check {

struct ShrinkOptions {
  /// Maximum number of differential runs the shrinker may spend.
  std::size_t max_evals = 400;
  DifferentialConfig config;  ///< stop_at_first is forced on.
};

struct ShrinkResult {
  /// False when the input scenario did not diverge at all (nothing to
  /// shrink; `spec` is the unmodified input).
  bool reproduced = false;
  ScenarioSpec spec;        ///< The minimized scenario.
  Divergence divergence;    ///< First divergence of the minimized scenario.
  std::size_t evals = 0;    ///< Differential runs spent.
};

ShrinkResult ShrinkScenario(const ScenarioSpec& spec,
                            const ShrinkOptions& options,
                            const MatcherFactory& factory = nullptr);

}  // namespace ptar::check

#endif  // PTAR_CHECK_SHRINKER_H_
