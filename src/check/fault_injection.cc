#include "check/fault_injection.h"

#include <cstdlib>
#include <limits>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "rideshare/lemmas.h"
#include "rideshare/matcher_internal.h"
#include "rideshare/skyline.h"

namespace ptar::check {

BrokenLemmaMatcher::BrokenLemmaMatcher(int lemma, double inflation)
    : lemma_(lemma), inflation_(inflation) {
  PTAR_CHECK(lemma == 1 || lemma == 3 || lemma == 11)
      << "unsupported broken lemma " << lemma;
  PTAR_CHECK(inflation > 1.0);
}

namespace {

/// SplitMix64 finalizer: a pure, well-mixed hash of the pair + seed.
std::uint64_t MixPair(VertexId a, VertexId b, std::uint64_t seed) {
  if (a > b) std::swap(a, b);
  std::uint64_t z = (static_cast<std::uint64_t>(a) << 32 |
                     static_cast<std::uint64_t>(b)) +
                    seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void BusyWaitMicros(double micros) {
  if (micros <= 0.0) return;
  Timer timer;
  while (timer.ElapsedMicros() < micros) {
    // Busy-wait: sleeping is too coarse for the sub-millisecond delays the
    // robustness tests inject.
  }
}

}  // namespace

StatusOr<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("--inject token '" + token +
                                     "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    char* parse_end = nullptr;
    const double num = std::strtod(value.c_str(), &parse_end);
    if (value.empty() || parse_end != value.c_str() + value.size()) {
      return Status::InvalidArgument("--inject value for '" + key +
                                     "' is not a number: '" + value + "'");
    }
    if (key == "fail_rate") {
      if (num < 0.0 || num > 1.0) {
        return Status::InvalidArgument("--inject fail_rate must be in [0,1]");
      }
      plan.fail_rate = num;
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(num);
    } else if (key == "slow_us") {
      if (num < 0.0) {
        return Status::InvalidArgument("--inject slow_us must be >= 0");
      }
      plan.slow_micros = num;
    } else if (key == "stall_every") {
      if (num < 0.0) {
        return Status::InvalidArgument("--inject stall_every must be >= 0");
      }
      plan.stall_every = static_cast<std::uint64_t>(num);
    } else if (key == "stall_us") {
      if (num < 0.0) {
        return Status::InvalidArgument("--inject stall_us must be >= 0");
      }
      plan.stall_micros = num;
    } else {
      return Status::InvalidArgument(
          "--inject key '" + key +
          "' unknown (expected fail_rate, seed, slow_us, stall_every, "
          "stall_us)");
    }
  }
  return plan;
}

DistanceOracle::FaultHook MakeFaultHook(const FaultPlan& plan) {
  if (!plan.active()) return nullptr;
  // Failure threshold in hash space; the hash is uniform, so the observed
  // fail fraction converges on fail_rate. fail_rate == 1.0 is pinned to the
  // max: the product rounds to 2^64, whose uint64 cast is undefined.
  const std::uint64_t threshold =
      plan.fail_rate >= 1.0
          ? std::numeric_limits<std::uint64_t>::max()
          : static_cast<std::uint64_t>(
                plan.fail_rate *
                static_cast<double>(
                    std::numeric_limits<std::uint64_t>::max()));
  // Per-hook stall counter (each oracle is single-threaded).
  auto calls = std::make_shared<std::uint64_t>(0);
  return [plan, threshold, calls](VertexId a, VertexId b) {
    BusyWaitMicros(plan.slow_micros);
    if (plan.stall_every > 0 && ++*calls % plan.stall_every == 0) {
      BusyWaitMicros(plan.stall_micros);
    }
    return plan.fail_rate > 0.0 && MixPair(a, b, plan.seed) < threshold;
  };
}

VehicleId CorruptRandomLeg(std::vector<KineticTree>& fleet,
                           std::uint64_t seed) {
  std::vector<VehicleId> candidates;
  for (const KineticTree& tree : fleet) {
    if (!tree.IsEmpty()) candidates.push_back(tree.vehicle());
  }
  if (candidates.empty()) return kInvalidVehicle;
  const VehicleId victim =
      candidates[MixPair(1, 2, seed) % candidates.size()];
  KineticTree& tree = fleet[victim];
  const std::size_t branch = MixPair(3, 4, seed) % tree.num_branches();
  const Schedule schedule = tree.BranchSchedule(branch);
  const std::size_t legs = schedule.legs.size();
  if (legs == 0) return kInvalidVehicle;
  const std::size_t leg = MixPair(5, 6, seed) % legs;
  // A hugely inflated (but finite) leg: breaks leg exactness, validity, and
  // the active-branch minimality the auditor checks.
  tree.CorruptLegForTest(branch, leg, schedule.legs[leg] + 1e7);
  return victim;
}

MatchResult BrokenLemmaMatcher::Match(const Request& request,
                                      MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  internal::RequestEnv env;
  env.request = &request;
  env.direct = ctx.oracle->Dist(request.start, request.destination);
  env.fn = ctx.price_model.Ratio(request.riders);

  SkylineSet skyline;
  MatchStats stats;
  const GridIndex& grid = *ctx.grid;
  const double inflation = inflation_;
  const int lemma = lemma_;
  const double fn = env.fn;
  const Distance direct = env.direct;

  InsertionHooks hooks;
  if (lemma == 3) {
    hooks.prune_s = [&request, &grid, &skyline, &stats, inflation, fn,
                     direct](const SPositionContext& c) {
      if (skyline.empty()) return false;
      const VertexId s = request.start;
      const Distance l_ox = inflation * grid.LowerBound(s, c.ox);
      const Distance l_oy =
          c.tail ? 0.0 : inflation * grid.LowerBound(s, c.oy);
      if (lemmas::StartEdgePruned(l_ox, l_oy, c.leg_dist, c.tail,
                                  c.dist_tr_ox, skyline.options(), fn,
                                  direct)) {
        ++stats.lemma_hits[3];
        return true;
      }
      return false;
    };
  } else if (lemma == 11) {
    hooks.prune_d = [&request, &grid, &skyline, &stats, inflation, fn,
                     direct](const DPositionContext& c) {
      if (skyline.empty()) return false;
      const VertexId d = request.destination;
      const Distance l_ox = inflation * grid.LowerBound(d, c.ox);
      const Distance l_oy =
          c.tail ? 0.0 : inflation * grid.LowerBound(d, c.oy);
      const Distance detour_lb = lemmas::DetourLowerBound(
          c.same_gap, c.tail, c.dist_ox_s, c.delta_s, l_ox, l_oy, c.leg_dist,
          direct);
      if (lemmas::AfterStartPruned(c.pickup_dist, detour_lb,
                                   skyline.options(), fn, direct)) {
        ++stats.lemma_hits[11];
        return true;
      }
      return false;
    };
  }

  for (KineticTree& tree : *ctx.fleet) {
    if (tree.IsEmpty()) {
      if (lemma == 1 && !skyline.empty() &&
          lemmas::EmptyVehiclePruned(
              inflation * grid.LowerBound(tree.location(), request.start),
              skyline.options(), fn, direct)) {
        ++stats.pruned_vehicles;
        ++stats.lemma_hits[1];
        continue;
      }
      internal::VerifyEmptyVehicle(tree, env, ctx, skyline, stats);
    } else {
      internal::VerifyNonEmptyVehicle(tree, env, ctx, hooks, skyline, stats);
    }
  }

  MatchResult result;
  result.options = skyline.Sorted();
  stats.compdists = ctx.oracle->compdists();
  stats.elapsed_micros = timer.ElapsedMicros();
  result.stats = stats;
  return result;
}

}  // namespace ptar::check
