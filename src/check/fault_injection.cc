#include "check/fault_injection.h"

#include "common/logging.h"
#include "common/timer.h"
#include "rideshare/lemmas.h"
#include "rideshare/matcher_internal.h"
#include "rideshare/skyline.h"

namespace ptar::check {

BrokenLemmaMatcher::BrokenLemmaMatcher(int lemma, double inflation)
    : lemma_(lemma), inflation_(inflation) {
  PTAR_CHECK(lemma == 1 || lemma == 3 || lemma == 11)
      << "unsupported broken lemma " << lemma;
  PTAR_CHECK(inflation > 1.0);
}

MatchResult BrokenLemmaMatcher::Match(const Request& request,
                                      MatchContext& ctx) {
  Timer timer;
  ctx.oracle->ClearCache();
  ctx.oracle->ResetStats();

  internal::RequestEnv env;
  env.request = &request;
  env.direct = ctx.oracle->Dist(request.start, request.destination);
  env.fn = ctx.price_model.Ratio(request.riders);

  SkylineSet skyline;
  MatchStats stats;
  const GridIndex& grid = *ctx.grid;
  const double inflation = inflation_;
  const int lemma = lemma_;
  const double fn = env.fn;
  const Distance direct = env.direct;

  InsertionHooks hooks;
  if (lemma == 3) {
    hooks.prune_s = [&request, &grid, &skyline, &stats, inflation, fn,
                     direct](const SPositionContext& c) {
      if (skyline.empty()) return false;
      const VertexId s = request.start;
      const Distance l_ox = inflation * grid.LowerBound(s, c.ox);
      const Distance l_oy =
          c.tail ? 0.0 : inflation * grid.LowerBound(s, c.oy);
      if (lemmas::StartEdgePruned(l_ox, l_oy, c.leg_dist, c.tail,
                                  c.dist_tr_ox, skyline.options(), fn,
                                  direct)) {
        ++stats.lemma_hits[3];
        return true;
      }
      return false;
    };
  } else if (lemma == 11) {
    hooks.prune_d = [&request, &grid, &skyline, &stats, inflation, fn,
                     direct](const DPositionContext& c) {
      if (skyline.empty()) return false;
      const VertexId d = request.destination;
      const Distance l_ox = inflation * grid.LowerBound(d, c.ox);
      const Distance l_oy =
          c.tail ? 0.0 : inflation * grid.LowerBound(d, c.oy);
      const Distance detour_lb = lemmas::DetourLowerBound(
          c.same_gap, c.tail, c.dist_ox_s, c.delta_s, l_ox, l_oy, c.leg_dist,
          direct);
      if (lemmas::AfterStartPruned(c.pickup_dist, detour_lb,
                                   skyline.options(), fn, direct)) {
        ++stats.lemma_hits[11];
        return true;
      }
      return false;
    };
  }

  for (KineticTree& tree : *ctx.fleet) {
    if (tree.IsEmpty()) {
      if (lemma == 1 && !skyline.empty() &&
          lemmas::EmptyVehiclePruned(
              inflation * grid.LowerBound(tree.location(), request.start),
              skyline.options(), fn, direct)) {
        ++stats.pruned_vehicles;
        ++stats.lemma_hits[1];
        continue;
      }
      internal::VerifyEmptyVehicle(tree, env, ctx, skyline, stats);
    } else {
      internal::VerifyNonEmptyVehicle(tree, env, ctx, hooks, skyline, stats);
    }
  }

  MatchResult result;
  result.options = skyline.Sorted();
  stats.compdists = ctx.oracle->compdists();
  stats.elapsed_micros = timer.ElapsedMicros();
  result.stats = stats;
  return result;
}

}  // namespace ptar::check
