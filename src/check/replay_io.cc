#include "check/replay_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/trace_io.h"

namespace ptar::check {

namespace {

/// Next content line: skips blanks and '#' comments, strips trailing CR.
/// `*lineno` counts every physical line consumed (1-based), so error
/// messages can point at the offending line.
bool NextLine(std::istream& in, std::string* line, int* lineno) {
  while (std::getline(in, *line)) {
    ++*lineno;
    while (!line->empty() && line->back() == '\r') line->pop_back();
    const std::size_t first = line->find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if ((*line)[first] == '#') continue;
    return true;
  }
  return false;
}

Status ParseError(const std::string& what, const std::string& line,
                  int lineno) {
  return Status::InvalidArgument("replay parse error at line " +
                                 std::to_string(lineno) + ": " + what +
                                 ": '" + line + "'");
}

/// Parses one "key=value" token into an integer field.
bool ParseKeyInt(const std::string& token, const std::string& key,
                 std::int64_t* out) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  std::istringstream value(token.substr(prefix.size()));
  return static_cast<bool>(value >> *out) && value.eof();
}

}  // namespace

Status SaveReplay(const ScenarioSpec& spec, std::ostream& out) {
  out << "ptar-replay " << kReplayFormatVersion << "\n";
  out << std::setprecision(17);
  if (spec.city == ScenarioSpec::CityKind::kGrid) {
    out << "city grid rows=" << spec.rows << " cols=" << spec.cols
        << " seed=" << spec.city_seed << "\n";
  } else {
    out << "city ring rings=" << spec.rings << " spokes=" << spec.spokes
        << " seed=" << spec.city_seed << "\n";
  }
  out << "cell_size " << spec.cell_size_meters << "\n";
  out << "capacity " << spec.vehicle_capacity << "\n";
  out << "engine_seed " << spec.engine_seed << "\n";
  out << "vehicles " << spec.vehicle_starts.size() << "\n";
  for (const VertexId v : spec.vehicle_starts) out << "v " << v << "\n";
  out << "requests\n";
  const Status saved = SaveRequests(spec.requests, out);
  if (!saved.ok()) return saved;
  out << "end\n";
  if (!out) return Status::IoError("replay write failed");
  return Status::OK();
}

Status SaveReplayToFile(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveReplay(spec, out);
}

StatusOr<ScenarioSpec> LoadReplay(std::istream& in) {
  std::string line;
  int lineno = 0;
  if (!NextLine(in, &line, &lineno)) return Status::IoError("empty replay");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != "ptar-replay") {
      return ParseError("bad header", line, lineno);
    }
    if (version != kReplayFormatVersion) {
      return Status::InvalidArgument("unsupported replay version " +
                                     std::to_string(version) + " at line " +
                                     std::to_string(lineno));
    }
  }

  ScenarioSpec spec;
  spec.vehicle_starts.clear();
  std::size_t expected_vehicles = 0;
  bool saw_city = false;
  bool saw_requests = false;

  while (NextLine(in, &line, &lineno)) {
    std::istringstream row(line);
    std::string key;
    row >> key;
    if (key == "city") {
      std::string kind;
      row >> kind;
      std::vector<std::string> tokens;
      for (std::string t; row >> t;) tokens.push_back(t);
      std::int64_t a = 0;
      std::int64_t b = 0;
      std::int64_t s = 0;
      bool ok = tokens.size() == 3;
      if (ok && kind == "grid") {
        spec.city = ScenarioSpec::CityKind::kGrid;
        ok = ParseKeyInt(tokens[0], "rows", &a) &&
             ParseKeyInt(tokens[1], "cols", &b) &&
             ParseKeyInt(tokens[2], "seed", &s);
        spec.rows = static_cast<int>(a);
        spec.cols = static_cast<int>(b);
      } else if (ok && kind == "ring") {
        spec.city = ScenarioSpec::CityKind::kRing;
        ok = ParseKeyInt(tokens[0], "rings", &a) &&
             ParseKeyInt(tokens[1], "spokes", &b) &&
             ParseKeyInt(tokens[2], "seed", &s);
        spec.rings = static_cast<int>(a);
        spec.spokes = static_cast<int>(b);
      } else {
        ok = false;
      }
      if (!ok) return ParseError("bad city line", line, lineno);
      spec.city_seed = static_cast<std::uint64_t>(s);
      saw_city = true;
    } else if (key == "cell_size") {
      if (!(row >> spec.cell_size_meters)) {
        return ParseError("bad cell_size", line, lineno);
      }
    } else if (key == "capacity") {
      if (!(row >> spec.vehicle_capacity)) {
        return ParseError("bad capacity", line, lineno);
      }
    } else if (key == "engine_seed") {
      if (!(row >> spec.engine_seed)) {
        return ParseError("bad engine_seed", line, lineno);
      }
    } else if (key == "vehicles") {
      if (!(row >> expected_vehicles)) {
        return ParseError("bad vehicles count", line, lineno);
      }
    } else if (key == "v") {
      VertexId v = kInvalidVertex;
      if (!(row >> v)) return ParseError("bad vehicle start", line, lineno);
      spec.vehicle_starts.push_back(v);
    } else if (key == "requests") {
      saw_requests = true;
      break;
    } else {
      return ParseError("unknown key", line, lineno);
    }
  }
  if (!saw_city) return Status::InvalidArgument("replay missing city line");
  if (!saw_requests) {
    return Status::InvalidArgument("replay missing requests section");
  }
  if (spec.vehicle_starts.size() != expected_vehicles) {
    return Status::InvalidArgument(
        "replay vehicle count mismatch: declared " +
        std::to_string(expected_vehicles) + ", found " +
        std::to_string(spec.vehicle_starts.size()));
  }

  // Collect the CSV block verbatim up to the `end` sentinel; LoadRequests
  // reads its stream to EOF, so it gets a bounded copy.
  std::ostringstream csv;
  const int csv_first_line = lineno + 1;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++lineno;
    while (!line.empty() && line.back() == '\r') line.pop_back();
    if (line == "end") {
      saw_end = true;
      break;
    }
    csv << line << "\n";
  }
  if (!saw_end) return Status::InvalidArgument("replay missing end sentinel");

  auto city = BuildCity(spec);
  if (!city.ok()) return city.status();
  for (const VertexId v : spec.vehicle_starts) {
    if (!city.value().IsValidVertex(v)) {
      return Status::OutOfRange("replay vehicle start is not a city vertex: " +
                                std::to_string(v));
    }
  }
  std::istringstream csv_in(csv.str());
  auto requests = LoadRequests(csv_in, city.value());
  if (!requests.ok()) {
    // LoadRequests reports positions relative to the CSV block; re-anchor
    // them to the replay file so the caller can jump straight to the line.
    return Status(requests.status().code(),
                  "in requests block (lines " +
                      std::to_string(csv_first_line) + ".." +
                      std::to_string(lineno) + "): " +
                      requests.status().message());
  }
  spec.requests = std::move(requests).value();
  return spec;
}

StatusOr<ScenarioSpec> LoadReplayFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  auto spec = LoadReplay(in);
  if (!spec.ok()) {
    // Prefix the path so errors bubbling through RunDifferential (and the
    // CLIs) name the exact file and line.
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

}  // namespace ptar::check
