// Self-contained differential-testing scenarios.
//
// A ScenarioSpec pins everything a differential run needs to be exactly
// reproducible *and* shrinkable: the city is regenerated from a few
// parameters, while vehicle starts and the request stream are stored
// explicitly (so removing one vehicle or request does not reshuffle the
// rest, unlike seed-derived placement).

#ifndef PTAR_CHECK_SCENARIO_H_
#define PTAR_CHECK_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "grid/grid_index.h"
#include "kinetic/request.h"

namespace ptar::check {

struct ScenarioSpec {
  enum class CityKind { kGrid, kRing };

  CityKind city = CityKind::kGrid;
  // Grid-city shape (CityKind::kGrid); other GridCityOptions fields keep
  // their defaults so the replay format stays small.
  int rows = 10;
  int cols = 10;
  // Ring-radial shape (CityKind::kRing).
  int rings = 6;
  int spokes = 12;
  std::uint64_t city_seed = 1;

  double cell_size_meters = 300.0;
  int vehicle_capacity = 4;
  std::uint64_t engine_seed = 13;
  /// Explicit start vertex per vehicle (EngineOptions::start_vertices).
  std::vector<VertexId> vehicle_starts;
  /// Explicit request stream, sorted by submit time.
  std::vector<Request> requests;
};

/// The regenerated world for a spec. Heap-held so the GridIndex's pointer
/// to the graph stays valid across moves.
struct BuiltScenario {
  std::unique_ptr<RoadNetwork> graph;
  std::unique_ptr<GridIndex> grid;
};

/// Regenerates the spec's city (for request validation during load).
StatusOr<RoadNetwork> BuildCity(const ScenarioSpec& spec);

/// Regenerates city + grid and validates the spec's vehicle starts and
/// request endpoints against the city.
StatusOr<BuiltScenario> BuildScenario(const ScenarioSpec& spec);

/// Deterministically derives a small random scenario from `seed`,
/// alternating city styles and sweeping the paper's parameter ranges
/// (capacity 2-6, eps 1.2-2.0, waiting 3-10 min). Sized so a differential
/// run over the whole stream takes well under a second.
ScenarioSpec MakeRandomSpec(std::uint64_t seed);

}  // namespace ptar::check

#endif  // PTAR_CHECK_SCENARIO_H_
