// Differential runner: replays one scenario through the matchers under
// test and the brute-force reference in lockstep and classifies every
// per-request skyline disagreement.

#ifndef PTAR_CHECK_DIFFERENTIAL_H_
#define PTAR_CHECK_DIFFERENTIAL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "check/fault_injection.h"
#include "check/scenario.h"
#include "graph/distance_oracle.h"
#include "rideshare/matcher.h"

namespace ptar::check {

enum class DivergenceType {
  kMissingOption,    ///< Reference has an option the matcher lacks.
  kSpuriousOption,   ///< Matcher has an option the reference lacks.
  kWrongPrice,       ///< Same vehicle and pickup distance, price differs.
  kWrongPickupDist,  ///< Same vehicle and price, pickup distance differs.
};

const char* DivergenceTypeName(DivergenceType type);

/// One classified disagreement between a matcher's skyline and the
/// reference skyline for one request.
struct Divergence {
  std::string matcher;
  std::size_t request_index = 0;  ///< Position in ScenarioSpec::requests.
  RequestId request = kInvalidRequest;
  DivergenceType type = DivergenceType::kMissingOption;
  /// The reference's option (valid for missing / wrong-*).
  Option expected;
  /// The matcher's option (valid for spurious / wrong-*).
  Option actual;
  /// The matcher's per-lemma prune counters for this request. The
  /// reference never prunes, so any non-zero entry names a lemma that
  /// could have removed the lost option (the attribution the harness
  /// reports for missing-option divergences).
  LemmaCounters lemma_hits;
  /// The matcher's GeoPrune rejection count for this request. Non-zero on
  /// a missing-option divergence attributes the loss to the ellipse
  /// prefilter stage (e.g. a ShrinkEllipse fault), parallel to lemma_hits.
  std::uint64_t ellipse_pruned = 0;

  std::string Describe() const;
};

/// Drops every option *clearly* dominated by another option of the same
/// set: not worse than the dominator by more than `tolerance` in either
/// dimension, and better by more than `tolerance` in at least one.
///
/// Exact dominance is ill-conditioned at ties: when two insertions have
/// mathematically equal pickup distances, an ulp of summation-order noise
/// decides whether a skyline keeps one option or both, so the *exact* sets
/// legitimately differ between implementations. Both sides of a diff are
/// normalized with this filter first, which erases those tie ghosts while
/// leaving every beyond-tolerance disagreement intact.
std::vector<Option> NormalizeSkyline(std::span<const Option> options,
                                     double tolerance);

/// Subset-mode diff for budget-truncated (complete == false) results: a
/// partial skyline may *miss* arbitrarily many options (an unvisited
/// vehicle could even dominate what it kept), so missing options are not
/// divergences. What it must never do is invent or misprice one — every
/// actual option has to match some member of the reference's full
/// pre-skyline option set (`superset`, from
/// ReferenceMatcher::last_full_options) within `tolerance`. Unmatched
/// options classify as spurious, or wrong-price / wrong-pickup-dist when a
/// same-vehicle superset option agrees in the other dimension.
std::vector<Divergence> DiffSubset(std::span<const Option> superset,
                                   std::span<const Option> actual,
                                   double tolerance);

/// Classifies the disagreement between two canonically sorted skylines,
/// normalizing both with NormalizeSkyline first. Options are equal when
/// vehicles match and both dimensions agree within `tolerance` (per-slot
/// oracles may first compute a pair in different sweep directions, so
/// cross-matcher values can differ in low bits); matching ignores
/// multiplicity, so FP-merged near-duplicates never flag. Only `type`,
/// `expected`, and `actual` are filled in.
std::vector<Divergence> DiffSkylines(std::span<const Option> reference,
                                     std::span<const Option> actual,
                                     double tolerance);

struct DifferentialConfig {
  double tolerance = 1e-6;  ///< Same as the engine's precision/recall.
  bool stop_at_first = false;  ///< Stop after the first divergent request.
  /// Backend for every oracle in the run — matchers under test *and* the
  /// reference share it, so a divergence is always a matcher bug, never a
  /// backend rounding mismatch.
  DistanceBackend distance_backend = DistanceBackend::kDijkstra;
  /// Deterministic work-unit budget armed into every tested matcher's slot
  /// (0 = unlimited). The reference never charges or checks budgets, so it
  /// still produces the full answer; tested results that come back
  /// complete == false are then diffed in subset mode (DiffSubset). The
  /// engine's degradation ladder is frozen at kFull for the whole run so
  /// every matcher is evaluated on every request.
  std::uint64_t request_budget = 0;
  /// Oracle faults injected into every *tested* matcher's oracle — never
  /// the reference's and never the engine's maintenance oracle. Faulted
  /// results are incomplete by definition and must still pass DiffSubset
  /// against the unfaulted reference: faults may only remove options.
  FaultPlan faults;
  /// Per-vehicle kinetic-tree branch cap for the scenario engine. The
  /// harness pins a finite cap (the seed's shipped default) instead of the
  /// engine's unlimited default: the brute-force reference enumerates every
  /// branch of every vehicle per request, so an adversarial seed's
  /// factorial fan-out would make the sweep intractable. All slots —
  /// tested matchers and the reference — share the same capped trees, so
  /// parity semantics are unchanged.
  std::size_t tree_max_branches = 64;
};

/// Builds the matchers under test; the reference is appended by the
/// runner. Slot 0 commits, so it should be a full-coverage matcher.
using MatcherFactory =
    std::function<std::vector<std::unique_ptr<Matcher>>()>;

/// BA + SSA(1.0) + DSA(1.0) — full cell coverage, where the lemmas must
/// be answer-preserving.
std::vector<std::unique_ptr<Matcher>> MakeDefaultMatchers();

struct MatcherSummary {
  std::string name;
  std::uint64_t options_sum = 0;
  MatchStats totals;
};

struct DifferentialOutcome {
  static constexpr std::size_t kNoDivergence = static_cast<std::size_t>(-1);

  std::size_t requests_run = 0;
  std::size_t first_divergent_request = kNoDivergence;
  /// Tested results tagged complete == false (budget- or fault-truncated);
  /// each was checked in subset mode instead of full-equality mode.
  std::size_t partial_results = 0;
  std::vector<Divergence> divergences;
  /// One entry per matcher under test (the reference is excluded).
  std::vector<MatcherSummary> matchers;

  bool ok() const { return divergences.empty(); }
};

/// Rebuilds the scenario's world and replays its request stream through
/// the matchers (from `factory`, or MakeDefaultMatchers when null) plus
/// the reference, committing slot 0's choice per request.
StatusOr<DifferentialOutcome> RunDifferential(
    const ScenarioSpec& spec, const DifferentialConfig& config,
    const MatcherFactory& factory = nullptr);

}  // namespace ptar::check

#endif  // PTAR_CHECK_DIFFERENTIAL_H_
