// Differential twin for the kinetic-tree representation overhaul.
//
// The arena/SoA BranchStore (kinetic/branch_store.h) replaced the original
// flat representation — every branch a full Schedule (vector<Stop> +
// vector<Distance>) in a flat vector. This header keeps that original
// representation alive as LegacyKineticTree, a verbatim behavioral port,
// for two jobs:
//
//  1. RunTreeTwin: seeded fuzz runs feeding identical op sequences
//     (commit / move / arrive / refresh / rebuild) to a legacy tree and an
//     arena tree, asserting identical branch sets, identical bookkeeping,
//     and auditor-clean arena state after every op. Wired into ptar_check
//     (--tree_twin=N) and the differential-nightly sweep on both distance
//     backends.
//  2. table04_memory: the legacy tree is the honest memory baseline the
//     >=4x bytes/vehicle bar is measured against, and the insert-latency
//     no-regression bar races the two representations in one process.

#ifndef PTAR_CHECK_TREE_TWIN_H_
#define PTAR_CHECK_TREE_TWIN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/distance_oracle.h"
#include "graph/types.h"
#include "kinetic/kinetic_tree.h"

namespace ptar::check {

/// The pre-arena kinetic tree: branches stored as whole Schedule copies.
/// Port of the representation BranchStore replaced; its observable behavior
/// (branch sets, validity verdicts, active selection, statuses) is the twin
/// oracle. Shares the public vocabulary types (AssignedRequest,
/// InsertionCandidate, InsertionHooks, StopEvent) with KineticTree.
class LegacyKineticTree {
 public:
  using DistFn = KineticTree::DistFn;

  LegacyKineticTree(
      VehicleId vehicle, VertexId location, int capacity,
      std::size_t max_branches = std::numeric_limits<std::size_t>::max());

  VehicleId vehicle() const { return vehicle_; }
  VertexId location() const { return location_; }
  int capacity() const { return capacity_; }
  int onboard() const { return onboard_; }
  Distance odometer() const { return odometer_; }
  bool IsEmpty() const { return assigned_.empty(); }
  const std::vector<AssignedRequest>& assigned() const { return assigned_; }
  const std::vector<Schedule>& schedules() const { return schedules_; }
  const Schedule& ActiveSchedule() const { return schedules_[active_index_]; }
  std::size_t active_index() const { return active_index_; }
  Distance CurrentTotal() const { return ActiveSchedule().total(); }
  bool stale() const { return stale_; }
  VertexId NextStopLocation() const;

  std::vector<InsertionCandidate> EnumerateInsertions(
      const Request& request, Distance direct_dist, const DistFn& dist,
      const InsertionHooks& hooks) const;
  Status Commit(const Request& request, Distance direct_dist,
                Distance planned_pickup_dist, const DistFn& dist);
  void MoveTo(VertexId new_location, Distance driven);
  StatusOr<KineticTree::StopEvent> ArriveAtNextStop();
  void Refresh(const DistFn& dist);
  Status RebuildBranches(const DistFn& dist);
  bool IsValidSchedule(const Schedule& schedule,
                       const AssignedRequest* extra) const;

  /// Honest heap footprint of this representation: every owned vector block
  /// at capacity() * element size, plus `alloc_overhead` bytes of allocator
  /// bookkeeping per non-empty block (glibc malloc spends ~16). This is
  /// what the flat representation actually costs, unlike the pre-overhaul
  /// MemoryBytes() which ignored the schedules vector itself and the
  /// per-allocation overhead of its 2B+1 heap blocks.
  std::size_t MemoryBytes(std::size_t alloc_overhead = 16) const;

 private:
  void RecomputeActive();
  const AssignedRequest* FindAssigned(RequestId id) const;
  std::vector<Distance> GapSlacks(const Schedule& schedule) const;
  std::vector<int> GapFreeSeats(const Schedule& schedule) const;
  void EnumerateIntoBranch(const Schedule& branch, const Request& request,
                           Distance direct_dist, const DistFn& dist,
                           const InsertionHooks& hooks,
                           std::vector<InsertionCandidate>* out) const;

  VehicleId vehicle_;
  VertexId location_;
  int capacity_;
  std::size_t max_branches_;
  int onboard_ = 0;
  Distance odometer_ = 0.0;
  std::vector<AssignedRequest> assigned_;
  std::vector<Schedule> schedules_;
  std::size_t active_index_ = 0;
  bool stale_ = false;
};

/// Aggregated result of twin runs. `findings` carries one line per
/// divergence (empty = the representations agreed everywhere).
struct TreeTwinOutcome {
  std::uint64_t ops = 0;
  std::uint64_t commits = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t divergences = 0;
  /// Capped-twin option losses, each attributed to a nonzero drop counter.
  std::uint64_t capped_losses = 0;
  /// Total branches the capped twin dropped (tree/branches_dropped).
  std::uint64_t capped_drops = 0;
  std::vector<std::string> findings;

  bool ok() const { return divergences == 0; }

  void Fold(const TreeTwinOutcome& other) {
    ops += other.ops;
    commits += other.commits;
    arrivals += other.arrivals;
    divergences += other.divergences;
    capped_losses += other.capped_losses;
    capped_drops += other.capped_drops;
    findings.insert(findings.end(), other.findings.begin(),
                    other.findings.end());
  }
};

/// Runs one seeded twin scenario on a generated city: one vehicle's legacy
/// and arena trees are fed an identical random op sequence; after every op
/// the branch sets (in branch order; stop sequences exact, legs within
/// 1e-6), rider bookkeeping, and statuses must match, and the arena tree
/// must be auditor-clean. A capped arena tree (`cap` branches; 0 = skip)
/// rides along: it must match exactly until its first drop, stay a
/// branch-subset of the uncapped tree afterwards, and attribute every lost
/// commit to its drop counters.
TreeTwinOutcome RunTreeTwin(std::uint64_t seed, DistanceBackend backend,
                            std::size_t cap);

}  // namespace ptar::check

#endif  // PTAR_CHECK_TREE_TWIN_H_
