#include "check/scenario.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/random.h"
#include "graph/generators.h"
#include "sim/workload.h"

namespace ptar::check {

StatusOr<RoadNetwork> BuildCity(const ScenarioSpec& spec) {
  if (spec.city == ScenarioSpec::CityKind::kGrid) {
    GridCityOptions opts;
    opts.rows = spec.rows;
    opts.cols = spec.cols;
    opts.seed = spec.city_seed;
    return MakeGridCity(opts);
  }
  RingRadialCityOptions opts;
  opts.rings = spec.rings;
  opts.spokes = spec.spokes;
  opts.seed = spec.city_seed;
  return MakeRingRadialCity(opts);
}

StatusOr<BuiltScenario> BuildScenario(const ScenarioSpec& spec) {
  auto city = BuildCity(spec);
  if (!city.ok()) return city.status();
  BuiltScenario built;
  built.graph = std::make_unique<RoadNetwork>(std::move(city).value());
  auto grid = GridIndex::Build(built.graph.get(),
                               {.cell_size_meters = spec.cell_size_meters});
  if (!grid.ok()) return grid.status();
  built.grid = std::make_unique<GridIndex>(std::move(grid).value());

  if (spec.vehicle_starts.empty()) {
    return Status::InvalidArgument("scenario has no vehicles");
  }
  for (const VertexId v : spec.vehicle_starts) {
    if (!built.graph->IsValidVertex(v)) {
      return Status::OutOfRange("vehicle start is not a city vertex: " +
                                std::to_string(v));
    }
  }
  for (const Request& r : spec.requests) {
    if (!built.graph->IsValidVertex(r.start) ||
        !built.graph->IsValidVertex(r.destination)) {
      return Status::OutOfRange("request references unknown vertex: id " +
                                std::to_string(r.id));
    }
  }
  return built;
}

ScenarioSpec MakeRandomSpec(std::uint64_t seed) {
  // Decorrelate from the workload generator's own use of the seed.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);

  ScenarioSpec spec;
  spec.city = (seed % 2 == 0) ? ScenarioSpec::CityKind::kGrid
                              : ScenarioSpec::CityKind::kRing;
  spec.rows = static_cast<int>(rng.UniformInt(8, 12));
  spec.cols = static_cast<int>(rng.UniformInt(8, 12));
  spec.rings = static_cast<int>(rng.UniformInt(4, 7));
  spec.spokes = static_cast<int>(rng.UniformInt(8, 16));
  spec.city_seed = seed + 1;
  spec.cell_size_meters = 100.0 * rng.UniformInt(2, 4);
  spec.vehicle_capacity = static_cast<int>(rng.UniformInt(2, 6));
  spec.engine_seed = seed * 31 + 7;

  auto city = BuildCity(spec);
  PTAR_CHECK(city.ok()) << city.status().message();
  const RoadNetwork& graph = city.value();

  const int vehicles = static_cast<int>(rng.UniformInt(4, 10));
  spec.vehicle_starts.reserve(vehicles);
  for (int i = 0; i < vehicles; ++i) {
    spec.vehicle_starts.push_back(
        static_cast<VertexId>(rng.UniformIndex(graph.num_vertices())));
  }

  WorkloadOptions wopts;
  wopts.num_requests = static_cast<std::size_t>(rng.UniformInt(18, 30));
  wopts.duration_seconds = 600.0;
  wopts.riders = static_cast<int>(
      rng.UniformInt(1, std::min(3, spec.vehicle_capacity)));
  wopts.waiting_minutes = rng.UniformReal(3.0, 10.0);
  wopts.epsilon = rng.UniformReal(1.2, 2.0);
  wopts.seed = seed * 7 + 3;
  auto requests = GenerateWorkload(graph, wopts);
  PTAR_CHECK(requests.ok()) << requests.status().message();
  spec.requests = std::move(requests).value();
  return spec;
}

}  // namespace ptar::check
