// Brute-force reference matcher: ground truth for BA / SSA / DSA.
//
// Independence from the production path is the point. The production
// matchers share KineticTree::EnumerateInsertions, the lemma hooks, and
// SkylineSet; a bug in any of those would make "BA == SSA" vacuous. The
// reference enumerates every (pickup, dropoff) insertion pair of every
// branch itself, splices the stop sequences itself, recomputes *all* legs
// through plain oracle distances (no splicing of cached branch legs, no
// grid lower bounds, no lemma pruning), and keeps the non-dominated set via
// a naive quadratic end-filter instead of the incremental SkylineSet. The
// only production code it reuses is KineticTree::IsValidSchedule — the
// authoritative Definition-2 validator that tests exercise directly.

#ifndef PTAR_CHECK_REFERENCE_MATCHER_H_
#define PTAR_CHECK_REFERENCE_MATCHER_H_

#include <string>
#include <vector>

#include "rideshare/matcher.h"

namespace ptar::check {

/// Removes dominated options and exact duplicates (same vehicle and
/// values), then sorts canonically (pickup, price, vehicle). Quadratic;
/// exposed for the skyline property tests, which diff it against
/// SkylineSet's incremental maintenance.
std::vector<Option> NaiveSkyline(std::vector<Option> options);

class ReferenceMatcher : public Matcher {
 public:
  std::string name() const override { return "REF"; }
  MatchResult Match(const Request& request, MatchContext& ctx) override;
};

}  // namespace ptar::check

#endif  // PTAR_CHECK_REFERENCE_MATCHER_H_
