// Brute-force reference matcher: ground truth for BA / SSA / DSA.
//
// Independence from the production path is the point. The production
// matchers share KineticTree::EnumerateInsertions, the lemma hooks, and
// SkylineSet; a bug in any of those would make "BA == SSA" vacuous. The
// reference enumerates every (pickup, dropoff) insertion pair of every
// branch itself, splices the stop sequences itself, recomputes *all* legs
// through plain oracle distances (no splicing of cached branch legs, no
// grid lower bounds, no lemma pruning), and keeps the non-dominated set via
// a naive quadratic end-filter instead of the incremental SkylineSet. The
// only production code it reuses is KineticTree::IsValidSchedule — the
// authoritative Definition-2 validator that tests exercise directly.

#ifndef PTAR_CHECK_REFERENCE_MATCHER_H_
#define PTAR_CHECK_REFERENCE_MATCHER_H_

#include <string>
#include <vector>

#include "rideshare/matcher.h"

namespace ptar::check {

/// Removes dominated options and exact duplicates (same vehicle and
/// values), then sorts canonically (pickup, price, vehicle). Quadratic;
/// exposed for the skyline property tests, which diff it against
/// SkylineSet's incremental maintenance.
std::vector<Option> NaiveSkyline(std::vector<Option> options);

class ReferenceMatcher : public Matcher {
 public:
  std::string name() const override { return "REF"; }
  MatchResult Match(const Request& request, MatchContext& ctx) override;

  /// Every option the last Match() enumerated, *before* skyline filtering.
  /// A budget- or fault-truncated production matcher may legally return an
  /// option that the full skyline dominates (the dominating vehicle was
  /// never visited), so partial results are checked for membership in this
  /// set rather than in the reference skyline.
  const std::vector<Option>& last_full_options() const {
    return last_full_options_;
  }

 private:
  std::vector<Option> last_full_options_;
};

}  // namespace ptar::check

#endif  // PTAR_CHECK_REFERENCE_MATCHER_H_
