// Grid index over a road network (paper Section IV.A).
//
// The network bounding box is partitioned into uniform cells. Endpoints of
// edges that span two cells are *border vertices* of both cells. The index
// precomputes, per vertex, the exact network distances to the border vertices
// of its own cell (and their minimum, `v.min`), and a matrix M of lower-bound
// distances D_ij between every pair of non-empty cells together with the
// witness border pair (x_ij, y_ij) realizing D_ij. From these it answers in
// O(1) / O(|BV|):
//
//   ldist(u, v) = D_ij + u.min + v.min          (0 if same cell)
//   udist(u, v) = D_ij + dist(u, x_ij) + dist(v, y_ij)
//                 (same cell: min_b dist(u,b) + dist(v,b))
//   ldist(u, g) = u.min + D_ij                  (0 if u in g)
//
// Each cell also carries the list of all other non-empty cells sorted in
// ascending order of D — the search order used by SSA / DSA.

#ifndef PTAR_GRID_GRID_INDEX_H_
#define PTAR_GRID_GRID_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "graph/types.h"

namespace ptar {

/// Raw row-major cell identifier within the grid geometry.
using CellId = std::uint32_t;
inline constexpr CellId kInvalidCell = std::numeric_limits<CellId>::max();

/// Axis-aligned uniform grid over the network bounding box.
class GridGeometry {
 public:
  GridGeometry() = default;
  GridGeometry(double min_x, double min_y, double cell_size, int cols,
               int rows)
      : min_x_(min_x),
        min_y_(min_y),
        cell_size_(cell_size),
        cols_(cols),
        rows_(rows) {}

  /// Cell containing a point; points outside the box clamp to the boundary
  /// cells.
  CellId CellOfPoint(const Coord& p) const;

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  std::size_t num_cells() const {
    return static_cast<std::size_t>(cols_) * rows_;
  }
  double cell_size() const { return cell_size_; }

 private:
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double cell_size_ = 1.0;
  int cols_ = 1;
  int rows_ = 1;
};

class GridIndex {
 public:
  struct Options {
    /// Side length of a square grid cell, in meters (paper Table II sweeps
    /// 3333 m down to 909 m on the ~40 km Shanghai box).
    double cell_size_meters = 500.0;
  };

  /// Quadtree partitioning options (the paper's future-work alternative:
  /// an index "adaptive to the network structure and density").
  struct AdaptiveOptions {
    /// A quadrant splits while it holds more vertices than this.
    std::size_t max_vertices_per_cell = 64;
    /// ... unless it is already this small (meters).
    double min_cell_size_meters = 50.0;
  };

  /// How the vertex set was partitioned into cells.
  enum class PartitionKind { kUniformGrid, kQuadtree };

  /// Builds the full index over a uniform grid: cell assignment, border
  /// detection, per-vertex border distances, the M matrix with witnesses,
  /// and sorted cell lists. The graph must outlive the index.
  static StatusOr<GridIndex> Build(const RoadNetwork* graph,
                                   const Options& options);

  /// Same index machinery over a quadtree partition whose leaves adapt to
  /// vertex density: dense downtown areas get small cells (tight bounds),
  /// sparse outskirts get large ones (fewer cells). Every GridIndex
  /// consumer (registry, matchers) works unchanged. geometry() is not
  /// meaningful for adaptive builds.
  static StatusOr<GridIndex> BuildAdaptive(const RoadNetwork* graph,
                                           const AdaptiveOptions& options);

  PartitionKind partition_kind() const { return partition_kind_; }

  GridIndex(GridIndex&&) = default;
  GridIndex& operator=(GridIndex&&) = default;
  GridIndex(const GridIndex&) = delete;
  GridIndex& operator=(const GridIndex&) = delete;

  const RoadNetwork& graph() const { return *graph_; }
  const GridGeometry& geometry() const { return geometry_; }

  CellId CellOfVertex(VertexId v) const { return cell_of_vertex_[v]; }

  /// Whether the cell contains at least one vertex.
  bool IsActive(CellId cell) const {
    return cell < active_index_.size() && active_index_[cell] >= 0;
  }
  std::size_t num_active_cells() const { return active_cells_.size(); }
  std::span<const CellId> active_cells() const { return active_cells_; }

  std::span<const VertexId> CellVertices(CellId cell) const;
  std::span<const VertexId> BorderVertices(CellId cell) const;

  /// min distance from v to any border vertex of its own cell (`v.min`);
  /// kInfDistance if the cell has no border vertices.
  Distance VertexMin(VertexId v) const { return v_min_[v]; }

  /// Exact distances from v to the border vertices of its own cell, aligned
  /// with BorderVertices(CellOfVertex(v)).
  std::span<const Distance> BorderDistances(VertexId v) const;

  /// D_ij: lower bound on the distance between any vertex of cell a and any
  /// vertex of cell b. Both cells must be active. D_aa is 0.
  Distance CellPairLowerBound(CellId a, CellId b) const;

  /// Lower bound on dist(u, v). Never exceeds the true distance.
  Distance LowerBound(VertexId u, VertexId v) const;

  /// Upper bound on dist(u, v) (kInfDistance when no bound is derivable,
  /// e.g. a borderless cell). Never below the true distance.
  Distance UpperBound(VertexId u, VertexId v) const;

  /// ldist(u, g): lower bound on the distance from u to any vertex in cell g.
  Distance LowerBoundToCell(VertexId u, CellId cell) const;

  /// All active cells in ascending order of D from `cell`; the first entry is
  /// `cell` itself (D = 0). Unreachable cells (D = inf) come last.
  std::span<const CellId> CellsByDistance(CellId cell) const;

  /// Approximate resident memory of the static index, in bytes (Table IV's
  /// "grid index" row).
  std::size_t MemoryBytes() const;

  /// Appends to `out` the distinct active cells covered by a vertex
  /// sequence (used to register kinetic-tree edges whose scheduled path
  /// crosses several cells).
  void CollectCells(std::span<const VertexId> path,
                    std::vector<CellId>* out) const;

 private:
  GridIndex() = default;

  /// Shared pipeline: takes a vertex -> raw-cell assignment (raw ids dense
  /// or sparse, < num_raw_cells) and computes everything else.
  static StatusOr<GridIndex> BuildFromAssignment(
      const RoadNetwork* graph, std::vector<CellId> cell_of_vertex,
      std::size_t num_raw_cells, PartitionKind kind, GridGeometry geometry);

  int DenseIndex(CellId cell) const {
    PTAR_DCHECK(IsActive(cell));
    return active_index_[cell];
  }

  const RoadNetwork* graph_ = nullptr;
  GridGeometry geometry_;
  PartitionKind partition_kind_ = PartitionKind::kUniformGrid;

  std::vector<CellId> cell_of_vertex_;
  std::vector<CellId> active_cells_;     // dense -> raw cell id
  std::vector<std::int32_t> active_index_;  // raw cell id -> dense (-1)

  // Vertices grouped by cell (dense order), CSR-style.
  std::vector<std::size_t> cell_vertex_offsets_;
  std::vector<VertexId> cell_vertices_;

  // Border vertices grouped by cell (dense order), CSR-style.
  std::vector<std::size_t> cell_border_offsets_;
  std::vector<VertexId> cell_borders_;

  // Per vertex: distances to own-cell borders, aligned with the cell's
  // border list; CSR by vertex id.
  std::vector<std::size_t> vertex_border_dist_offsets_;
  std::vector<Distance> vertex_border_dists_;
  std::vector<Distance> v_min_;

  // Dense n_a x n_a matrices.
  std::vector<Distance> d_matrix_;
  struct WitnessPair {
    VertexId x = kInvalidVertex;  // border vertex in the row cell
    VertexId y = kInvalidVertex;  // border vertex in the column cell
  };
  std::vector<WitnessPair> witnesses_;

  // Per dense cell: all active cells sorted ascending by D (self first).
  std::vector<CellId> sorted_cells_;  // n_a * n_a, row-major
};

}  // namespace ptar

#endif  // PTAR_GRID_GRID_INDEX_H_
