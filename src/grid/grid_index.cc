#include "grid/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/dijkstra.h"

namespace ptar {

CellId GridGeometry::CellOfPoint(const Coord& p) const {
  int col = static_cast<int>(std::floor((p.x - min_x_) / cell_size_));
  int row = static_cast<int>(std::floor((p.y - min_y_) / cell_size_));
  col = std::clamp(col, 0, cols_ - 1);
  row = std::clamp(row, 0, rows_ - 1);
  return static_cast<CellId>(row) * cols_ + col;
}

namespace {

/// Network bounding box with symmetric accessors.
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
};

BoundingBox ComputeBoundingBox(const RoadNetwork& graph) {
  BoundingBox box;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Coord& c = graph.position(v);
    box.min_x = std::min(box.min_x, c.x);
    box.min_y = std::min(box.min_y, c.y);
    box.max_x = std::max(box.max_x, c.x);
    box.max_y = std::max(box.max_y, c.y);
  }
  return box;
}

/// Recursive quadtree split: assigns a leaf id to every vertex. Quadrants
/// split while they hold more than `max_vertices` vertices and are larger
/// than `min_size` on a side.
void QuadtreeAssign(const RoadNetwork& graph,
                    std::vector<VertexId>& vertices, double min_x,
                    double min_y, double size, std::size_t max_vertices,
                    double min_size, std::vector<CellId>* assignment,
                    CellId* next_leaf) {
  if (vertices.size() > max_vertices && size > min_size) {
    const double half = size / 2.0;
    std::vector<VertexId> quadrant[4];
    for (const VertexId v : vertices) {
      const Coord& c = graph.position(v);
      const int qx = (c.x >= min_x + half) ? 1 : 0;
      const int qy = (c.y >= min_y + half) ? 1 : 0;
      quadrant[qy * 2 + qx].push_back(v);
    }
    vertices.clear();
    vertices.shrink_to_fit();
    for (int q = 0; q < 4; ++q) {
      if (quadrant[q].empty()) continue;
      QuadtreeAssign(graph, quadrant[q], min_x + (q % 2) * half,
                     min_y + (q / 2) * half, half, max_vertices, min_size,
                     assignment, next_leaf);
    }
    return;
  }
  const CellId leaf = (*next_leaf)++;
  for (const VertexId v : vertices) {
    (*assignment)[v] = leaf;
  }
}

}  // namespace

StatusOr<GridIndex> GridIndex::Build(const RoadNetwork* graph,
                                     const Options& options) {
  if (graph == nullptr) return Status::InvalidArgument("null graph");
  if (graph->num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (!(options.cell_size_meters > 0.0)) {
    return Status::InvalidArgument("cell size must be positive");
  }
  const std::size_t n = graph->num_vertices();

  // Geometry from the bounding box (with a hair of padding so boundary
  // vertices fall strictly inside).
  const BoundingBox box = ComputeBoundingBox(*graph);
  const double size = options.cell_size_meters;
  const int cols = std::max(
      1, static_cast<int>(std::ceil((box.max_x - box.min_x) / size + 1e-9)));
  const int rows = std::max(
      1, static_cast<int>(std::ceil((box.max_y - box.min_y) / size + 1e-9)));
  const GridGeometry geometry(box.min_x, box.min_y, size, cols, rows);

  std::vector<CellId> assignment(n);
  for (VertexId v = 0; v < n; ++v) {
    assignment[v] = geometry.CellOfPoint(graph->position(v));
  }
  return BuildFromAssignment(graph, std::move(assignment),
                             geometry.num_cells(),
                             PartitionKind::kUniformGrid, geometry);
}

StatusOr<GridIndex> GridIndex::BuildAdaptive(const RoadNetwork* graph,
                                             const AdaptiveOptions& options) {
  if (graph == nullptr) return Status::InvalidArgument("null graph");
  if (graph->num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (options.max_vertices_per_cell == 0) {
    return Status::InvalidArgument("max_vertices_per_cell must be positive");
  }
  if (!(options.min_cell_size_meters > 0.0)) {
    return Status::InvalidArgument("min cell size must be positive");
  }
  const std::size_t n = graph->num_vertices();
  const BoundingBox box = ComputeBoundingBox(*graph);
  // Square root box so quadrants stay square.
  const double size =
      std::max({box.max_x - box.min_x, box.max_y - box.min_y, 1.0}) + 1e-6;

  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) all[v] = v;
  std::vector<CellId> assignment(n, kInvalidCell);
  CellId next_leaf = 0;
  QuadtreeAssign(*graph, all, box.min_x, box.min_y, size,
                 options.max_vertices_per_cell, options.min_cell_size_meters,
                 &assignment, &next_leaf);

  // The quadtree has no uniform geometry; store a 1x1 placeholder.
  const GridGeometry geometry(box.min_x, box.min_y, size, 1, 1);
  return BuildFromAssignment(graph, std::move(assignment), next_leaf,
                             PartitionKind::kQuadtree, geometry);
}

StatusOr<GridIndex> GridIndex::BuildFromAssignment(
    const RoadNetwork* graph, std::vector<CellId> cell_of_vertex,
    std::size_t num_raw_cells, PartitionKind kind, GridGeometry geometry) {
  GridIndex index;
  index.graph_ = graph;
  index.geometry_ = geometry;
  index.partition_kind_ = kind;
  const std::size_t n = graph->num_vertices();

  // --- Cell assignment and active cells. ---
  index.cell_of_vertex_ = std::move(cell_of_vertex);
  std::vector<std::size_t> cell_population(num_raw_cells, 0);
  for (VertexId v = 0; v < n; ++v) {
    PTAR_CHECK(index.cell_of_vertex_[v] < num_raw_cells);
    ++cell_population[index.cell_of_vertex_[v]];
  }
  index.active_index_.assign(num_raw_cells, -1);
  for (CellId cell = 0; cell < num_raw_cells; ++cell) {
    if (cell_population[cell] > 0) {
      index.active_index_[cell] =
          static_cast<std::int32_t>(index.active_cells_.size());
      index.active_cells_.push_back(cell);
    }
  }
  const std::size_t na = index.active_cells_.size();

  // --- Vertices grouped by (dense) cell. ---
  index.cell_vertex_offsets_.assign(na + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++index.cell_vertex_offsets_[index.DenseIndex(index.cell_of_vertex_[v]) +
                                 1];
  }
  for (std::size_t i = 0; i < na; ++i) {
    index.cell_vertex_offsets_[i + 1] += index.cell_vertex_offsets_[i];
  }
  index.cell_vertices_.resize(n);
  {
    std::vector<std::size_t> cursor(index.cell_vertex_offsets_.begin(),
                                    index.cell_vertex_offsets_.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      index.cell_vertices_[cursor[index.DenseIndex(
          index.cell_of_vertex_[v])]++] = v;
    }
  }

  // --- Border vertices: endpoints of cell-crossing edges. ---
  std::vector<std::uint8_t> is_border(n, 0);
  for (EdgeId e = 0; e < graph->num_edges(); ++e) {
    const VertexId u = graph->EdgeU(e);
    const VertexId v = graph->EdgeV(e);
    if (index.cell_of_vertex_[u] != index.cell_of_vertex_[v]) {
      is_border[u] = 1;
      is_border[v] = 1;
    }
  }
  index.cell_border_offsets_.assign(na + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (is_border[v]) {
      ++index.cell_border_offsets_[index.DenseIndex(
                                       index.cell_of_vertex_[v]) +
                                   1];
    }
  }
  for (std::size_t i = 0; i < na; ++i) {
    index.cell_border_offsets_[i + 1] += index.cell_border_offsets_[i];
  }
  index.cell_borders_.resize(index.cell_border_offsets_[na]);
  {
    std::vector<std::size_t> cursor(index.cell_border_offsets_.begin(),
                                    index.cell_border_offsets_.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      if (is_border[v]) {
        index.cell_borders_[cursor[index.DenseIndex(
            index.cell_of_vertex_[v])]++] = v;
      }
    }
  }

  DijkstraEngine engine(graph);

  // --- Per-vertex exact distances to own-cell borders. One early-stopping
  // Dijkstra per border vertex (it halts once the whole cell is settled). ---
  index.vertex_border_dist_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    const int dense = index.DenseIndex(index.cell_of_vertex_[v]);
    const std::size_t nb = index.cell_border_offsets_[dense + 1] -
                           index.cell_border_offsets_[dense];
    index.vertex_border_dist_offsets_[v + 1] =
        index.vertex_border_dist_offsets_[v] + nb;
  }
  index.vertex_border_dists_.assign(index.vertex_border_dist_offsets_[n],
                                    kInfDistance);
  index.v_min_.assign(n, kInfDistance);
  for (std::size_t dense = 0; dense < na; ++dense) {
    const auto cell_vertices = std::span<const VertexId>(
        index.cell_vertices_.data() + index.cell_vertex_offsets_[dense],
        index.cell_vertex_offsets_[dense + 1] -
            index.cell_vertex_offsets_[dense]);
    const std::size_t border_begin = index.cell_border_offsets_[dense];
    const std::size_t border_end = index.cell_border_offsets_[dense + 1];
    for (std::size_t bi = border_begin; bi < border_end; ++bi) {
      const VertexId b = index.cell_borders_[bi];
      engine.SingleSourceToTargets(b, cell_vertices);
      const std::size_t local = bi - border_begin;
      for (const VertexId v : cell_vertices) {
        const Distance d = engine.Dist(v);
        index.vertex_border_dists_[index.vertex_border_dist_offsets_[v] +
                                   local] = d;
        index.v_min_[v] = std::min(index.v_min_[v], d);
      }
    }
  }

  // --- M matrix: D_ij with witness border pairs, via one multi-source
  // Dijkstra per active cell (sources = its borders, labeled). Rows are
  // symmetric, so only the upper triangle is computed and then mirrored. ---
  index.d_matrix_.assign(na * na, kInfDistance);
  index.witnesses_.assign(na * na, WitnessPair{});
  std::vector<DijkstraSource> sources;
  for (std::size_t a = 0; a < na; ++a) {
    index.d_matrix_[a * na + a] = 0.0;
    const std::size_t border_begin = index.cell_border_offsets_[a];
    const std::size_t border_end = index.cell_border_offsets_[a + 1];
    if (border_begin == border_end) continue;  // borderless cell: D stays inf
    sources.clear();
    for (std::size_t bi = border_begin; bi < border_end; ++bi) {
      sources.push_back(DijkstraSource{
          index.cell_borders_[bi], 0.0,
          static_cast<std::uint32_t>(bi - border_begin + 1)});
    }
    engine.MultiSource(sources);
    for (std::size_t b = a + 1; b < na; ++b) {
      Distance best = kInfDistance;
      VertexId best_y = kInvalidVertex;
      for (std::size_t bj = index.cell_border_offsets_[b];
           bj < index.cell_border_offsets_[b + 1]; ++bj) {
        const VertexId y = index.cell_borders_[bj];
        const Distance d = engine.Dist(y);
        if (d < best) {
          best = d;
          best_y = y;
        }
      }
      index.d_matrix_[a * na + b] = best;
      index.d_matrix_[b * na + a] = best;
      if (best_y != kInvalidVertex) {
        const std::uint32_t label = engine.SourceLabel(best_y);
        PTAR_DCHECK(label >= 1);
        const VertexId x = index.cell_borders_[border_begin + label - 1];
        index.witnesses_[a * na + b] = WitnessPair{x, best_y};
        index.witnesses_[b * na + a] = WitnessPair{best_y, x};
      }
    }
  }

  // --- Per-cell search order: all active cells ascending by D, self first
  // (D_aa = 0 sorts it to the front; ties broken by raw id for
  // determinism). ---
  index.sorted_cells_.resize(na * na);
  std::vector<std::size_t> order(na);
  for (std::size_t a = 0; a < na; ++a) {
    std::iota(order.begin(), order.end(), 0);
    const Distance* row = index.d_matrix_.data() + a * na;
    std::sort(order.begin(), order.end(),
              [&](std::size_t lhs, std::size_t rhs) {
                if (row[lhs] != row[rhs]) return row[lhs] < row[rhs];
                if ((lhs == a) != (rhs == a)) return lhs == a;
                return lhs < rhs;
              });
    for (std::size_t i = 0; i < na; ++i) {
      index.sorted_cells_[a * na + i] = index.active_cells_[order[i]];
    }
  }

  return index;
}

std::span<const VertexId> GridIndex::CellVertices(CellId cell) const {
  const int dense = DenseIndex(cell);
  return {cell_vertices_.data() + cell_vertex_offsets_[dense],
          cell_vertex_offsets_[dense + 1] - cell_vertex_offsets_[dense]};
}

std::span<const VertexId> GridIndex::BorderVertices(CellId cell) const {
  const int dense = DenseIndex(cell);
  return {cell_borders_.data() + cell_border_offsets_[dense],
          cell_border_offsets_[dense + 1] - cell_border_offsets_[dense]};
}

std::span<const Distance> GridIndex::BorderDistances(VertexId v) const {
  return {vertex_border_dists_.data() + vertex_border_dist_offsets_[v],
          vertex_border_dist_offsets_[v + 1] -
              vertex_border_dist_offsets_[v]};
}

Distance GridIndex::CellPairLowerBound(CellId a, CellId b) const {
  const std::size_t na = active_cells_.size();
  return d_matrix_[static_cast<std::size_t>(DenseIndex(a)) * na +
                   DenseIndex(b)];
}

Distance GridIndex::LowerBound(VertexId u, VertexId v) const {
  const CellId cu = cell_of_vertex_[u];
  const CellId cv = cell_of_vertex_[v];
  if (cu == cv) return 0.0;
  return CellPairLowerBound(cu, cv) + v_min_[u] + v_min_[v];
}

Distance GridIndex::UpperBound(VertexId u, VertexId v) const {
  if (u == v) return 0.0;
  const CellId cu = cell_of_vertex_[u];
  const CellId cv = cell_of_vertex_[v];
  const std::size_t na = active_cells_.size();
  if (cu == cv) {
    // min over shared borders of dist(u,b) + dist(v,b).
    const std::span<const Distance> du = BorderDistances(u);
    const std::span<const Distance> dv = BorderDistances(v);
    Distance best = kInfDistance;
    for (std::size_t i = 0; i < du.size(); ++i) {
      best = std::min(best, du[i] + dv[i]);
    }
    return best;
  }
  const std::size_t idx =
      static_cast<std::size_t>(DenseIndex(cu)) * na + DenseIndex(cv);
  const WitnessPair& w = witnesses_[idx];
  if (w.x == kInvalidVertex) return kInfDistance;
  // Locate the witness borders in each endpoint's own border list.
  const std::span<const VertexId> borders_u = BorderVertices(cu);
  const std::span<const VertexId> borders_v = BorderVertices(cv);
  const auto iu = std::find(borders_u.begin(), borders_u.end(), w.x);
  const auto iv = std::find(borders_v.begin(), borders_v.end(), w.y);
  PTAR_DCHECK(iu != borders_u.end() && iv != borders_v.end());
  const Distance du = BorderDistances(u)[iu - borders_u.begin()];
  const Distance dv = BorderDistances(v)[iv - borders_v.begin()];
  return d_matrix_[idx] + du + dv;
}

Distance GridIndex::LowerBoundToCell(VertexId u, CellId cell) const {
  const CellId cu = cell_of_vertex_[u];
  if (cu == cell) return 0.0;
  return v_min_[u] + CellPairLowerBound(cu, cell);
}

std::span<const CellId> GridIndex::CellsByDistance(CellId cell) const {
  const std::size_t na = active_cells_.size();
  return {sorted_cells_.data() + static_cast<std::size_t>(DenseIndex(cell)) *
                                     na,
          na};
}

std::size_t GridIndex::MemoryBytes() const {
  return cell_of_vertex_.capacity() * sizeof(CellId) +
         active_cells_.capacity() * sizeof(CellId) +
         active_index_.capacity() * sizeof(std::int32_t) +
         cell_vertex_offsets_.capacity() * sizeof(std::size_t) +
         cell_vertices_.capacity() * sizeof(VertexId) +
         cell_border_offsets_.capacity() * sizeof(std::size_t) +
         cell_borders_.capacity() * sizeof(VertexId) +
         vertex_border_dist_offsets_.capacity() * sizeof(std::size_t) +
         vertex_border_dists_.capacity() * sizeof(Distance) +
         v_min_.capacity() * sizeof(Distance) +
         d_matrix_.capacity() * sizeof(Distance) +
         witnesses_.capacity() * sizeof(WitnessPair) +
         sorted_cells_.capacity() * sizeof(CellId);
}

void GridIndex::CollectCells(std::span<const VertexId> path,
                             std::vector<CellId>* out) const {
  std::vector<CellId> cells;
  cells.reserve(path.size());
  for (const VertexId v : path) {
    cells.push_back(cell_of_vertex_[v]);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  out->insert(out->end(), cells.begin(), cells.end());
}

}  // namespace ptar
