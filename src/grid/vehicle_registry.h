// Dynamic per-cell vehicle lists layered on the static GridIndex
// (paper Section IV.B).
//
// Every grid cell maintains (iv) an empty-vehicle list and (v) a non-empty
// vehicle list holding the kinetic-tree edges <o_x, o_y> whose scheduled path
// intersects the cell, each carrying the node annotations
// (capacity, detour, dist_tr) plus the leg length dist(o_x, o_y). Per cell,
// the registry exposes the aggregates the cell-level pruning lemmas
// (2, 4, 6, 8, 10) need:
//
//   max capacity, max detour, min dist_tr, max dist(o_x, o_y).
//
// Aggregates are maintained lazily: mutations mark the cell dirty and the
// next Aggregates() call rebuilds them in one pass over the cell's entries.
//
// Sharding & epoch snapshots (request-parallel engine). Cell state is
// partitioned into `num_shards` shards by cell id; each shard's state lives
// behind a copy-on-write shared_ptr and carries a monotonically increasing
// epoch (bumped on every mutation that touches the shard). TakeSnapshot()
// captures all shard pointers plus their epochs in O(num_shards); the
// snapshot is an immutable, consistent view that concurrent matcher workers
// read without any lock. A writer mutating a shard whose state is shared
// with an open snapshot first clones that shard (never the whole registry),
// so snapshots are isolated from later writes at shard granularity while
// the steady state — no snapshot open — mutates in place at the same cost
// as the unsharded registry.

#ifndef PTAR_GRID_VEHICLE_REGISTRY_H_
#define PTAR_GRID_VEHICLE_REGISTRY_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "grid/grid_index.h"

namespace ptar {

using VehicleId = std::uint32_t;
inline constexpr VehicleId kInvalidVehicle =
    std::numeric_limits<VehicleId>::max();

/// One kinetic-tree edge <o_x, o_y> as registered in a grid cell.
struct KineticEdgeEntry {
  VehicleId vehicle = kInvalidVehicle;
  /// Seats still free when the vehicle traverses this leg (o_x.capacity).
  int capacity = 0;
  /// Maximum extra distance insertable on this leg without violating any
  /// assigned request's waiting/service constraint (o_x.detour).
  Distance detour = 0.0;
  /// Trip distance from the vehicle's current location to o_x (o_x.dist_tr).
  Distance dist_tr = 0.0;
  /// Shortest-path length of the leg, dist(o_x, o_y); 0 for the tail edge
  /// <o_k, empty>.
  Distance leg_dist = 0.0;
  /// Whether o_y is the empty tail sentinel (insertion after the last stop).
  bool tail = false;
  /// Endpoints, for per-edge lemma evaluation during matching.
  VertexId ox = kInvalidVertex;
  VertexId oy = kInvalidVertex;  // kInvalidVertex when tail
};

/// Cell-level aggregates over the registered kinetic edges, in the exact
/// form the cell pruning lemmas (4, 6, 8, 10) consume.
///
/// The lemmas bound dist(x, o_x) and dist(x, o_y) from below by
/// ldist(x, cell), which is only valid for endpoints *inside* the cell. For
/// an edge registered in a cell that contains only one endpoint (or none,
/// for a pass-through registration), the other endpoint still lies within
/// leg_dist of a point inside the cell, so dist(x, endpoint) >=
/// ldist(x, cell) - leg_dist by the triangle inequality. The aggregates
/// bake those corrections in:
///
///   min_dist_tr  = min over edges of (dist_tr - (o_x in cell ? 0 : leg))
///   max_leg_dist = max over edges of ((3 - #endpoints-in-cell) * leg)
///
/// so that "ldist + min_dist_tr" and "2*ldist - max_leg_dist" are sound
/// lower bounds for *every* registered edge, whatever its endpoints' cells.
struct CellAggregates {
  friend bool operator==(const CellAggregates&,
                         const CellAggregates&) = default;

  bool any = false;
  /// Whether any registered edge is a tail edge <o_k, empty>. Tail edges
  /// admit insertions *after* the last stop, whose detour lower bound is
  /// just ldist (plus dist(s, d) on the start side) rather than
  /// 2*ldist - leg; the cell-level price clauses must weaken accordingly.
  bool has_tail = false;
  int max_capacity = 0;
  Distance max_detour = 0.0;
  Distance min_dist_tr = kInfDistance;  ///< Adjusted; may be negative.
  Distance max_leg_dist = 0.0;          ///< Adjusted (see above).
};

class VehicleRegistry {
 public:
  /// Default shard count: enough that the COW clone paid when a snapshot
  /// is open touches ~1/16 of the cells, small enough that TakeSnapshot()
  /// stays a handful of pointer copies.
  static constexpr int kDefaultNumShards = 16;

  explicit VehicleRegistry(const GridIndex* grid,
                           int num_shards = kDefaultNumShards);

  VehicleRegistry(const VehicleRegistry&) = delete;
  VehicleRegistry& operator=(const VehicleRegistry&) = delete;
  VehicleRegistry(VehicleRegistry&&) = default;
  VehicleRegistry& operator=(VehicleRegistry&&) = default;

  // --- Empty vehicles (keyed by current location's cell). ---

  void AddEmptyVehicle(VehicleId vehicle, VertexId location);
  void RemoveEmptyVehicle(VehicleId vehicle);
  /// Updates the location of an already-registered empty vehicle.
  void MoveEmptyVehicle(VehicleId vehicle, VertexId new_location);
  std::span<const VehicleId> EmptyVehicles(CellId cell) const;

  // --- Non-empty vehicles (kinetic-tree edge registrations). ---

  /// Replaces all registrations of `vehicle` with the given (cell, entry)
  /// pairs. Typically called after every kinetic-tree change.
  void SetVehicleEdges(
      VehicleId vehicle,
      const std::vector<std::pair<CellId, KineticEdgeEntry>>& entries);

  /// Removes all non-empty registrations of `vehicle`.
  void ClearVehicleEdges(VehicleId vehicle);

  /// Lowers the registered dist_tr of every edge of `vehicle` by `driven`
  /// (clamped at zero). By the network triangle inequality the result stays
  /// a valid lower bound on the true trip distance for every branch, which
  /// keeps the cell-level pruning lemmas sound between full
  /// re-registrations (see DESIGN.md).
  void AdjustVehicleDistTr(VehicleId vehicle, Distance driven);

  std::span<const KineticEdgeEntry> NonEmptyEntries(CellId cell) const;

  /// Aggregates for the cell-level pruning lemmas; rebuilt lazily.
  ///
  /// The lazy rebuild writes through `mutable` members, so concurrent
  /// readers (parallel shadow matchers) must call RebuildDirtyAggregates()
  /// first; afterwards this is a pure read until the next mutation.
  const CellAggregates& Aggregates(CellId cell) const;

  /// Eagerly rebuilds every dirty cell's aggregates. Aggregate values only
  /// depend on the cell's registered edges, so eager and lazy rebuilds
  /// produce identical results; this just moves the work before a parallel
  /// read phase.
  void RebuildDirtyAggregates();

  /// Consistency audit (kinetic/tree_auditor): recomputes every *clean*
  /// cell's aggregates from its registered edges and compares bit-for-bit
  /// with the stored values (a rebuild from identical entries is
  /// deterministic, so any difference is corruption, not rounding). Dirty
  /// cells are skipped — they are rebuilt before their next use by
  /// contract. Appends one line per inconsistent cell to `findings` (may be
  /// null) and returns the number of clean cells checked; the stored
  /// aggregates are repaired as a side effect of the recompute.
  std::size_t AuditAggregates(std::vector<std::string>* findings) const;

  /// Approximate resident memory of the dynamic lists, in bytes.
  std::size_t MemoryBytes() const;

  const GridIndex& grid() const { return *grid_; }

  // --- Sharding & epoch snapshots. ---

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardOfCell(CellId cell) const {
    return static_cast<int>(cell % shards_.size());
  }
  /// Monotonic per-shard mutation counter (bumped before every write that
  /// touches the shard). Never decreases; equal epochs imply an unchanged
  /// shard.
  std::uint64_t ShardEpoch(int shard) const { return shards_[shard].epoch; }
  /// Sum of all shard epochs; equal global epochs imply an unchanged
  /// registry. A "quiesced epoch" in the engine sense is a global epoch
  /// observed while no pipeline wave is in flight.
  std::uint64_t GlobalEpoch() const;

 private:
  struct CellState {
    std::vector<VehicleId> empty_vehicles;
    std::vector<KineticEdgeEntry> edges;
    mutable CellAggregates aggregates;
    mutable bool aggregates_dirty = true;
  };

  /// Value-type shard payload; cloned wholesale by the COW write path.
  struct ShardState {
    // Sparse: only cells that ever held a vehicle get state.
    std::unordered_map<CellId, CellState> cells;
  };

  struct Shard {
    std::shared_ptr<ShardState> state;
    std::uint64_t epoch = 0;
  };

 public:
  /// Immutable, consistent view of the whole registry, captured in
  /// O(num_shards). Readers need no lock: a writer that mutates a shard
  /// shared with this snapshot clones the shard first, so the view is
  /// frozen at capture time. Aggregates must be clean at capture
  /// (TakeSnapshot() rebuilds dirty cells first) — snapshot reads never
  /// rebuild, they are pure.
  class Snapshot {
   public:
    Snapshot() = default;

    std::span<const VehicleId> EmptyVehicles(CellId cell) const;
    std::span<const KineticEdgeEntry> NonEmptyEntries(CellId cell) const;
    const CellAggregates& Aggregates(CellId cell) const;

    int num_shards() const { return static_cast<int>(shards_.size()); }
    /// Epoch of `shard` at capture time.
    std::uint64_t ShardEpoch(int shard) const { return epochs_[shard]; }
    /// Sum of all shard epochs at capture time.
    std::uint64_t global_epoch() const { return global_epoch_; }

   private:
    friend class VehicleRegistry;
    const CellState* FindCell(CellId cell) const;

    std::vector<std::shared_ptr<const ShardState>> shards_;
    std::vector<std::uint64_t> epochs_;
    std::uint64_t global_epoch_ = 0;
  };

  /// Captures a consistent view of every shard. Rebuilds dirty aggregates
  /// first so the snapshot is pure-read for concurrent matchers. Cheap:
  /// num_shards shared_ptr copies (no cell data is copied unless a later
  /// write lands on a shard the snapshot still references).
  Snapshot TakeSnapshot();

 private:
  /// Write-path access to a cell's shard: clones the shard state if any
  /// snapshot still shares it (COW) and bumps the shard epoch.
  ShardState& MutableShard(int shard);
  CellState& StateFor(CellId cell);
  const CellState* FindState(CellId cell) const;
  void RebuildAggregates(CellId cell, const CellState& state) const;

  const GridIndex* grid_;
  std::vector<Shard> shards_;
  // Reverse maps for O(entries) removal (writer-side bookkeeping only;
  // snapshots never need them).
  std::unordered_map<VehicleId, CellId> empty_vehicle_cell_;
  std::unordered_map<VehicleId, std::vector<CellId>> vehicle_edge_cells_;
};

/// Engine-facing alias: matchers reading from a frozen fleet view take a
/// `const RegistrySnapshot*` (see MatchContext::snapshot).
using RegistrySnapshot = VehicleRegistry::Snapshot;

}  // namespace ptar

#endif  // PTAR_GRID_VEHICLE_REGISTRY_H_
