// Dynamic per-cell vehicle lists layered on the static GridIndex
// (paper Section IV.B).
//
// Every grid cell maintains (iv) an empty-vehicle list and (v) a non-empty
// vehicle list holding the kinetic-tree edges <o_x, o_y> whose scheduled path
// intersects the cell, each carrying the node annotations
// (capacity, detour, dist_tr) plus the leg length dist(o_x, o_y). Per cell,
// the registry exposes the aggregates the cell-level pruning lemmas
// (2, 4, 6, 8, 10) need:
//
//   max capacity, max detour, min dist_tr, max dist(o_x, o_y).
//
// Aggregates are maintained lazily: mutations mark the cell dirty and the
// next Aggregates() call rebuilds them in one pass over the cell's entries.

#ifndef PTAR_GRID_VEHICLE_REGISTRY_H_
#define PTAR_GRID_VEHICLE_REGISTRY_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "grid/grid_index.h"

namespace ptar {

using VehicleId = std::uint32_t;
inline constexpr VehicleId kInvalidVehicle =
    std::numeric_limits<VehicleId>::max();

/// One kinetic-tree edge <o_x, o_y> as registered in a grid cell.
struct KineticEdgeEntry {
  VehicleId vehicle = kInvalidVehicle;
  /// Seats still free when the vehicle traverses this leg (o_x.capacity).
  int capacity = 0;
  /// Maximum extra distance insertable on this leg without violating any
  /// assigned request's waiting/service constraint (o_x.detour).
  Distance detour = 0.0;
  /// Trip distance from the vehicle's current location to o_x (o_x.dist_tr).
  Distance dist_tr = 0.0;
  /// Shortest-path length of the leg, dist(o_x, o_y); 0 for the tail edge
  /// <o_k, empty>.
  Distance leg_dist = 0.0;
  /// Whether o_y is the empty tail sentinel (insertion after the last stop).
  bool tail = false;
  /// Endpoints, for per-edge lemma evaluation during matching.
  VertexId ox = kInvalidVertex;
  VertexId oy = kInvalidVertex;  // kInvalidVertex when tail
};

/// Cell-level aggregates over the registered kinetic edges, in the exact
/// form the cell pruning lemmas (4, 6, 8, 10) consume.
///
/// The lemmas bound dist(x, o_x) and dist(x, o_y) from below by
/// ldist(x, cell), which is only valid for endpoints *inside* the cell. For
/// an edge registered in a cell that contains only one endpoint (or none,
/// for a pass-through registration), the other endpoint still lies within
/// leg_dist of a point inside the cell, so dist(x, endpoint) >=
/// ldist(x, cell) - leg_dist by the triangle inequality. The aggregates
/// bake those corrections in:
///
///   min_dist_tr  = min over edges of (dist_tr - (o_x in cell ? 0 : leg))
///   max_leg_dist = max over edges of ((3 - #endpoints-in-cell) * leg)
///
/// so that "ldist + min_dist_tr" and "2*ldist - max_leg_dist" are sound
/// lower bounds for *every* registered edge, whatever its endpoints' cells.
struct CellAggregates {
  friend bool operator==(const CellAggregates&,
                         const CellAggregates&) = default;

  bool any = false;
  /// Whether any registered edge is a tail edge <o_k, empty>. Tail edges
  /// admit insertions *after* the last stop, whose detour lower bound is
  /// just ldist (plus dist(s, d) on the start side) rather than
  /// 2*ldist - leg; the cell-level price clauses must weaken accordingly.
  bool has_tail = false;
  int max_capacity = 0;
  Distance max_detour = 0.0;
  Distance min_dist_tr = kInfDistance;  ///< Adjusted; may be negative.
  Distance max_leg_dist = 0.0;          ///< Adjusted (see above).
};

class VehicleRegistry {
 public:
  explicit VehicleRegistry(const GridIndex* grid);

  VehicleRegistry(const VehicleRegistry&) = delete;
  VehicleRegistry& operator=(const VehicleRegistry&) = delete;
  VehicleRegistry(VehicleRegistry&&) = default;
  VehicleRegistry& operator=(VehicleRegistry&&) = default;

  // --- Empty vehicles (keyed by current location's cell). ---

  void AddEmptyVehicle(VehicleId vehicle, VertexId location);
  void RemoveEmptyVehicle(VehicleId vehicle);
  /// Updates the location of an already-registered empty vehicle.
  void MoveEmptyVehicle(VehicleId vehicle, VertexId new_location);
  std::span<const VehicleId> EmptyVehicles(CellId cell) const;

  // --- Non-empty vehicles (kinetic-tree edge registrations). ---

  /// Replaces all registrations of `vehicle` with the given (cell, entry)
  /// pairs. Typically called after every kinetic-tree change.
  void SetVehicleEdges(
      VehicleId vehicle,
      const std::vector<std::pair<CellId, KineticEdgeEntry>>& entries);

  /// Removes all non-empty registrations of `vehicle`.
  void ClearVehicleEdges(VehicleId vehicle);

  /// Lowers the registered dist_tr of every edge of `vehicle` by `driven`
  /// (clamped at zero). By the network triangle inequality the result stays
  /// a valid lower bound on the true trip distance for every branch, which
  /// keeps the cell-level pruning lemmas sound between full
  /// re-registrations (see DESIGN.md).
  void AdjustVehicleDistTr(VehicleId vehicle, Distance driven);

  std::span<const KineticEdgeEntry> NonEmptyEntries(CellId cell) const;

  /// Aggregates for the cell-level pruning lemmas; rebuilt lazily.
  ///
  /// The lazy rebuild writes through `mutable` members, so concurrent
  /// readers (parallel shadow matchers) must call RebuildDirtyAggregates()
  /// first; afterwards this is a pure read until the next mutation.
  const CellAggregates& Aggregates(CellId cell) const;

  /// Eagerly rebuilds every dirty cell's aggregates. Aggregate values only
  /// depend on the cell's registered edges, so eager and lazy rebuilds
  /// produce identical results; this just moves the work before a parallel
  /// read phase.
  void RebuildDirtyAggregates();

  /// Consistency audit (kinetic/tree_auditor): recomputes every *clean*
  /// cell's aggregates from its registered edges and compares bit-for-bit
  /// with the stored values (a rebuild from identical entries is
  /// deterministic, so any difference is corruption, not rounding). Dirty
  /// cells are skipped — they are rebuilt before their next use by
  /// contract. Appends one line per inconsistent cell to `findings` (may be
  /// null) and returns the number of clean cells checked; the stored
  /// aggregates are repaired as a side effect of the recompute.
  std::size_t AuditAggregates(std::vector<std::string>* findings) const;

  /// Approximate resident memory of the dynamic lists, in bytes.
  std::size_t MemoryBytes() const;

  const GridIndex& grid() const { return *grid_; }

 private:
  struct CellState {
    std::vector<VehicleId> empty_vehicles;
    std::vector<KineticEdgeEntry> edges;
    mutable CellAggregates aggregates;
    mutable bool aggregates_dirty = true;
  };

  CellState& StateFor(CellId cell);
  const CellState* FindState(CellId cell) const;
  void RebuildAggregates(CellId cell, const CellState& state) const;

  const GridIndex* grid_;
  // Sparse: only cells that ever held a vehicle get state.
  std::unordered_map<CellId, CellState> cells_;
  // Reverse maps for O(entries) removal.
  std::unordered_map<VehicleId, CellId> empty_vehicle_cell_;
  std::unordered_map<VehicleId, std::vector<CellId>> vehicle_edge_cells_;
};

}  // namespace ptar

#endif  // PTAR_GRID_VEHICLE_REGISTRY_H_
