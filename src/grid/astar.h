// A* point-to-point search guided by the grid index.
//
// The grid's ldist(u, v) never exceeds the true shortest-path distance
// (tested property), so it is an admissible — and, being derived from a
// single lower-bound matrix, consistent enough in practice — heuristic for
// goal-directed search. This is an optional accelerator for the distance
// oracle on large networks; Dijkstra remains the default engine, and the
// contraction-hierarchy backend (--distance_backend=ch, src/graph/ch_*) is
// the preprocessing-based alternative when queries dominate.

#ifndef PTAR_GRID_ASTAR_H_
#define PTAR_GRID_ASTAR_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"
#include "grid/grid_index.h"

namespace ptar {

/// Reusable A* workspace over a RoadNetwork + GridIndex. Exact: returns the
/// same distances as Dijkstra, typically settling far fewer vertices.
class AStarEngine {
 public:
  /// Both the graph and the grid must outlive the engine; the grid must
  /// have been built over the same graph.
  AStarEngine(const RoadNetwork* graph, const GridIndex* grid);

  AStarEngine(const AStarEngine&) = delete;
  AStarEngine& operator=(const AStarEngine&) = delete;

  /// Exact shortest-path distance from s to t (kInfDistance if
  /// unreachable).
  Distance PointToPoint(VertexId s, VertexId t);

  /// Vertex sequence of the most recent PointToPoint run (empty if the
  /// target was unreachable).
  std::vector<VertexId> LastPath() const;

  /// Vertices settled by the most recent run (work measure; compare with
  /// DijkstraEngine::last_settled_count()).
  std::size_t last_settled_count() const { return last_settled_count_; }

 private:
  struct QueueEntry {
    Distance f;  // g + heuristic
    VertexId vertex;
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
      return a.f > b.f;
    }
  };

  const RoadNetwork* graph_;
  const GridIndex* grid_;
  std::vector<Distance> g_;
  std::vector<Distance> h_;  ///< Per-run heuristic cache.
  std::vector<VertexId> parent_;
  std::vector<std::uint8_t> settled_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t run_stamp_ = 0;
  std::vector<QueueEntry> heap_;
  VertexId last_target_ = kInvalidVertex;
  bool last_reached_ = false;
  std::size_t last_settled_count_ = 0;
};

}  // namespace ptar

#endif  // PTAR_GRID_ASTAR_H_
