#include "grid/astar.h"

#include <algorithm>

namespace ptar {

AStarEngine::AStarEngine(const RoadNetwork* graph, const GridIndex* grid)
    : graph_(graph), grid_(grid) {
  PTAR_CHECK(graph != nullptr && grid != nullptr);
  PTAR_CHECK(&grid->graph() == graph)
      << "grid index was built over a different graph";
  const std::size_t n = graph->num_vertices();
  g_.assign(n, kInfDistance);
  h_.assign(n, 0.0);
  parent_.assign(n, kInvalidVertex);
  settled_.assign(n, 0);
  stamp_.assign(n, 0);
}

Distance AStarEngine::PointToPoint(VertexId s, VertexId t) {
  PTAR_DCHECK(graph_->IsValidVertex(s) && graph_->IsValidVertex(t));
  ++run_stamp_;
  if (run_stamp_ == 0) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    run_stamp_ = 1;
  }
  heap_.clear();
  last_target_ = t;
  last_reached_ = false;
  last_settled_count_ = 0;
  if (s == t) {
    stamp_[s] = run_stamp_;
    g_[s] = 0.0;
    parent_[s] = kInvalidVertex;
    last_reached_ = true;
    return 0.0;
  }

  stamp_[s] = run_stamp_;
  g_[s] = 0.0;
  h_[s] = grid_->LowerBound(s, t);
  parent_[s] = kInvalidVertex;
  settled_[s] = 0;
  heap_.push_back(QueueEntry{h_[s], s});

  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const QueueEntry top = heap_.back();
    heap_.pop_back();
    const VertexId u = top.vertex;
    if (settled_[u] && top.f > g_[u] + h_[u]) {
      continue;  // stale entry
    }
    // The heuristic is admissible but not necessarily consistent, so a
    // vertex may be re-expanded when a shorter g is discovered; exactness
    // at the target still holds because h(t) = 0.
    settled_[u] = 1;
    ++last_settled_count_;
    if (u == t) {
      last_reached_ = true;
      return g_[t];
    }
    for (const Arc& arc : graph_->OutArcs(u)) {
      const VertexId v = arc.head;
      const Distance ng = g_[u] + arc.weight;
      if (stamp_[v] != run_stamp_ || ng < g_[v]) {
        if (stamp_[v] != run_stamp_) {
          stamp_[v] = run_stamp_;
          h_[v] = grid_->LowerBound(v, t);
        }
        g_[v] = ng;
        parent_[v] = u;
        settled_[v] = 0;
        heap_.push_back(QueueEntry{ng + h_[v], v});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
      }
    }
  }
  return kInfDistance;
}

std::vector<VertexId> AStarEngine::LastPath() const {
  std::vector<VertexId> path;
  if (!last_reached_ || last_target_ == kInvalidVertex) return path;
  for (VertexId v = last_target_; v != kInvalidVertex;) {
    path.push_back(v);
    v = (stamp_[v] == run_stamp_) ? parent_[v] : kInvalidVertex;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace ptar
