#include "grid/vehicle_registry.h"

#include <algorithm>
#include <string>

namespace ptar {

namespace {

const CellAggregates kEmptyAggregates{};

}  // namespace

VehicleRegistry::VehicleRegistry(const GridIndex* grid, int num_shards)
    : grid_(grid) {
  PTAR_CHECK(grid != nullptr);
  PTAR_CHECK(num_shards >= 1) << "num_shards must be positive";
  shards_.resize(static_cast<std::size_t>(num_shards));
  for (Shard& shard : shards_) {
    shard.state = std::make_shared<ShardState>();
  }
}

VehicleRegistry::ShardState& VehicleRegistry::MutableShard(int shard) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  // COW: only pays when a snapshot still references this shard's state.
  if (s.state.use_count() > 1) {
    s.state = std::make_shared<ShardState>(*s.state);
  }
  ++s.epoch;
  return *s.state;
}

VehicleRegistry::CellState& VehicleRegistry::StateFor(CellId cell) {
  return MutableShard(ShardOfCell(cell)).cells[cell];
}

const VehicleRegistry::CellState* VehicleRegistry::FindState(
    CellId cell) const {
  const ShardState& shard =
      *shards_[static_cast<std::size_t>(ShardOfCell(cell))].state;
  auto it = shard.cells.find(cell);
  return it == shard.cells.end() ? nullptr : &it->second;
}

void VehicleRegistry::AddEmptyVehicle(VehicleId vehicle, VertexId location) {
  PTAR_CHECK(!empty_vehicle_cell_.contains(vehicle))
      << "vehicle " << vehicle << " already registered as empty";
  const CellId cell = grid_->CellOfVertex(location);
  StateFor(cell).empty_vehicles.push_back(vehicle);
  empty_vehicle_cell_.emplace(vehicle, cell);
}

void VehicleRegistry::RemoveEmptyVehicle(VehicleId vehicle) {
  auto it = empty_vehicle_cell_.find(vehicle);
  PTAR_CHECK(it != empty_vehicle_cell_.end())
      << "vehicle " << vehicle << " is not registered as empty";
  std::vector<VehicleId>& list = StateFor(it->second).empty_vehicles;
  auto pos = std::find(list.begin(), list.end(), vehicle);
  PTAR_DCHECK(pos != list.end());
  *pos = list.back();
  list.pop_back();
  empty_vehicle_cell_.erase(it);
}

void VehicleRegistry::MoveEmptyVehicle(VehicleId vehicle,
                                       VertexId new_location) {
  auto it = empty_vehicle_cell_.find(vehicle);
  PTAR_CHECK(it != empty_vehicle_cell_.end())
      << "vehicle " << vehicle << " is not registered as empty";
  const CellId new_cell = grid_->CellOfVertex(new_location);
  if (it->second == new_cell) return;
  RemoveEmptyVehicle(vehicle);
  StateFor(new_cell).empty_vehicles.push_back(vehicle);
  empty_vehicle_cell_.emplace(vehicle, new_cell);
}

std::span<const VehicleId> VehicleRegistry::EmptyVehicles(CellId cell) const {
  const CellState* state = FindState(cell);
  if (state == nullptr) return {};
  return state->empty_vehicles;
}

void VehicleRegistry::SetVehicleEdges(
    VehicleId vehicle,
    const std::vector<std::pair<CellId, KineticEdgeEntry>>& entries) {
  ClearVehicleEdges(vehicle);
  std::vector<CellId>& cells = vehicle_edge_cells_[vehicle];
  for (const auto& [cell, entry] : entries) {
    PTAR_DCHECK(entry.vehicle == vehicle);
    CellState& state = StateFor(cell);
    state.edges.push_back(entry);
    state.aggregates_dirty = true;
    cells.push_back(cell);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
}

void VehicleRegistry::ClearVehicleEdges(VehicleId vehicle) {
  auto it = vehicle_edge_cells_.find(vehicle);
  if (it == vehicle_edge_cells_.end()) return;
  for (const CellId cell : it->second) {
    CellState& state = StateFor(cell);
    std::erase_if(state.edges, [vehicle](const KineticEdgeEntry& entry) {
      return entry.vehicle == vehicle;
    });
    state.aggregates_dirty = true;
  }
  vehicle_edge_cells_.erase(it);
}

void VehicleRegistry::AdjustVehicleDistTr(VehicleId vehicle,
                                          Distance driven) {
  if (driven <= 0.0) return;
  auto it = vehicle_edge_cells_.find(vehicle);
  if (it == vehicle_edge_cells_.end()) return;
  for (const CellId cell : it->second) {
    CellState& state = StateFor(cell);
    for (KineticEdgeEntry& entry : state.edges) {
      if (entry.vehicle == vehicle) {
        entry.dist_tr = std::max<Distance>(0.0, entry.dist_tr - driven);
      }
    }
    state.aggregates_dirty = true;
  }
}

std::span<const KineticEdgeEntry> VehicleRegistry::NonEmptyEntries(
    CellId cell) const {
  const CellState* state = FindState(cell);
  if (state == nullptr) return {};
  return state->edges;
}

void VehicleRegistry::RebuildAggregates(CellId cell,
                                        const CellState& state) const {
  CellAggregates agg;
  for (const KineticEdgeEntry& entry : state.edges) {
    agg.any = true;
    agg.has_tail = agg.has_tail || entry.tail;
    agg.max_capacity = std::max(agg.max_capacity, entry.capacity);
    agg.max_detour = std::max(agg.max_detour, entry.detour);
    // Triangle-inequality corrections for endpoints outside this cell
    // (see the CellAggregates contract in the header).
    const bool ox_in = grid_->CellOfVertex(entry.ox) == cell;
    const bool oy_in = !entry.tail && grid_->CellOfVertex(entry.oy) == cell;
    const Distance adj_dist_tr =
        entry.dist_tr - (ox_in ? 0.0 : entry.leg_dist);
    const int endpoints_in = (ox_in ? 1 : 0) + (oy_in ? 1 : 0);
    const Distance adj_leg = (3 - endpoints_in) * entry.leg_dist;
    agg.min_dist_tr = std::min(agg.min_dist_tr, adj_dist_tr);
    agg.max_leg_dist = std::max(agg.max_leg_dist, adj_leg);
  }
  state.aggregates = agg;
  state.aggregates_dirty = false;
}

const CellAggregates& VehicleRegistry::Aggregates(CellId cell) const {
  const CellState* state = FindState(cell);
  if (state == nullptr) return kEmptyAggregates;
  if (state->aggregates_dirty) RebuildAggregates(cell, *state);
  return state->aggregates;
}

void VehicleRegistry::RebuildDirtyAggregates() {
  // Rebuilds write through `mutable` members only — cell contents and shard
  // membership are untouched, so no epoch bump and no COW: an open snapshot
  // sharing the shard sees the same (clean) aggregate values by definition,
  // since rebuilds are deterministic in the entries.
  for (const Shard& shard : shards_) {
    for (const auto& [cell, state] : shard.state->cells) {
      if (state.aggregates_dirty) RebuildAggregates(cell, state);
    }
  }
}

VehicleRegistry::Snapshot VehicleRegistry::TakeSnapshot() {
  // Snapshot reads must be pure (no mutable-rebuild races across worker
  // threads), so flush lazy aggregate work up front.
  RebuildDirtyAggregates();
  Snapshot snap;
  snap.shards_.reserve(shards_.size());
  snap.epochs_.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    snap.shards_.push_back(shard.state);
    snap.epochs_.push_back(shard.epoch);
    snap.global_epoch_ += shard.epoch;
  }
  return snap;
}

std::uint64_t VehicleRegistry::GlobalEpoch() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.epoch;
  return total;
}

const VehicleRegistry::CellState* VehicleRegistry::Snapshot::FindCell(
    CellId cell) const {
  const ShardState& shard = *shards_[cell % shards_.size()];
  auto it = shard.cells.find(cell);
  return it == shard.cells.end() ? nullptr : &it->second;
}

std::span<const VehicleId> VehicleRegistry::Snapshot::EmptyVehicles(
    CellId cell) const {
  const CellState* state = FindCell(cell);
  if (state == nullptr) return {};
  return state->empty_vehicles;
}

std::span<const KineticEdgeEntry> VehicleRegistry::Snapshot::NonEmptyEntries(
    CellId cell) const {
  const CellState* state = FindCell(cell);
  if (state == nullptr) return {};
  return state->edges;
}

const CellAggregates& VehicleRegistry::Snapshot::Aggregates(
    CellId cell) const {
  const CellState* state = FindCell(cell);
  if (state == nullptr) return kEmptyAggregates;
  // TakeSnapshot() rebuilt dirty aggregates before capture; a dirty cell
  // here means someone snapshotted state that was mutated through a
  // non-registry path, which the design forbids.
  PTAR_DCHECK(!state->aggregates_dirty)
      << "snapshot observed dirty aggregates for cell " << cell;
  return state->aggregates;
}

std::size_t VehicleRegistry::AuditAggregates(
    std::vector<std::string>* findings) const {
  std::size_t checked = 0;
  for (const Shard& shard : shards_) {
    for (const auto& [cell, state] : shard.state->cells) {
      if (state.aggregates_dirty) continue;  // rebuilt before next use
      ++checked;
      const CellAggregates stored = state.aggregates;
      RebuildAggregates(cell, state);
      if (!(stored == state.aggregates) && findings != nullptr) {
        findings->push_back("cell " + std::to_string(cell) +
                            ": stored aggregates diverge from a fresh "
                            "rebuild of its registered edges");
      }
    }
  }
  return checked;
}

std::size_t VehicleRegistry::MemoryBytes() const {
  // Actual heap footprint, not just payload: every hash table owns its
  // bucket array plus one individually allocated node (entry + chain
  // pointer) per element, and every non-empty vector owns one block of
  // capacity() elements. kAllocOverhead is the per-malloc bookkeeping the
  // kinetic accounting uses (verified against a counting allocator in
  // kinetic_memory_test).
  constexpr std::size_t kAllocOverhead = 16;
  std::size_t bytes = 0;
  const auto block = [&](std::size_t cap, std::size_t elem) {
    if (cap != 0) bytes += cap * elem + kAllocOverhead;
  };
  const auto table = [&](std::size_t buckets, std::size_t nodes,
                         std::size_t entry) {
    block(buckets, sizeof(void*));
    bytes += nodes * (entry + sizeof(void*) + kAllocOverhead);
  };
  for (const Shard& shard : shards_) {
    bytes += sizeof(Shard) + sizeof(ShardState) + kAllocOverhead;
    table(shard.state->cells.bucket_count(), shard.state->cells.size(),
          sizeof(std::pair<const CellId, CellState>));
    for (const auto& [cell, state] : shard.state->cells) {
      block(state.empty_vehicles.capacity(), sizeof(VehicleId));
      block(state.edges.capacity(), sizeof(KineticEdgeEntry));
    }
  }
  table(vehicle_edge_cells_.bucket_count(), vehicle_edge_cells_.size(),
        sizeof(std::pair<const VehicleId, std::vector<CellId>>));
  for (const auto& [vehicle, cells] : vehicle_edge_cells_) {
    block(cells.capacity(), sizeof(CellId));
  }
  table(empty_vehicle_cell_.bucket_count(), empty_vehicle_cell_.size(),
        sizeof(std::pair<const VehicleId, CellId>));
  return bytes;
}

}  // namespace ptar
