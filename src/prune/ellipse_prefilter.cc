#include "prune/ellipse_prefilter.h"

#include <limits>

namespace ptar::prune {
namespace {

// Relative shave applied to the calibrated alpha so that rounding in the
// Euclidean evaluations can never push a lower bound above the true
// distance. One part in 1e9 dwarfs double rounding error at these
// magnitudes while costing nothing measurable in pruning power.
constexpr double kCalibrationShave = 1e-9;

}  // namespace

EllipsePrefilter EllipsePrefilter::Build(const RoadNetwork& graph,
                                         const Options& opts) {
  EllipsePrefilter filter;
  filter.graph_ = &graph;
  filter.shrink_ = opts.shrink_factor;

  double alpha = std::numeric_limits<double>::infinity();
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const double chord = graph.EuclideanDistance(graph.EdgeU(e),
                                                 graph.EdgeV(e));
    if (chord <= 0.0) continue;  // zero-length chords constrain nothing
    const double ratio = graph.EdgeWeight(e) / chord;
    if (ratio < alpha) alpha = ratio;
  }
  if (!std::isfinite(alpha)) alpha = 0.0;  // no usable edge: disable filter
  filter.alpha_ = alpha;
  filter.scale_ = alpha * (1.0 - kCalibrationShave) / opts.shrink_factor;
  return filter;
}

Ellipse EllipsePrefilter::FeasibleEllipse(VertexId a, VertexId b,
                                          Distance max_sum) const {
  Ellipse e;
  e.f1 = graph_->position(a);
  e.f2 = graph_->position(b);
  e.sum_bound = scale_ > 0.0 ? max_sum / scale_
                             : std::numeric_limits<double>::infinity();
  return e;
}

}  // namespace ptar::prune
