// Calibrated Euclidean lower bounds for the GeoPrune prefilter.
//
// The synthetic generators jitter edge weights, so the raw Euclidean
// distance between two vertices is NOT guaranteed to underestimate their
// network distance. Build() therefore calibrates a per-graph factor
//
//   alpha = min over edges (u,v) with euc(u,v) > 0 of weight(u,v)/euc(u,v)
//
// For any path P from a to b, len(P) = sum of weights >= alpha * sum of
// edge Euclidean lengths >= alpha * euc(a,b) by the triangle inequality, so
// alpha * euc(a,b) <= dist(a,b) for every reachable pair (unreachable pairs
// have dist = kInfDistance and are trivially consistent). alpha may exceed
// 1 when every edge is longer than its chord. A relative shave absorbs
// floating-point error in the calibration itself; the lemma predicates'
// kPruneTolerance adds an absolute cushion on top (DESIGN.md §13).

#ifndef PTAR_PRUNE_ELLIPSE_PREFILTER_H_
#define PTAR_PRUNE_ELLIPSE_PREFILTER_H_

#include "graph/road_network.h"
#include "graph/types.h"
#include "prune/ellipse.h"

namespace ptar::prune {

class EllipsePrefilter {
 public:
  struct Options {
    /// ShrinkEllipse fault seam: factors < 1 under-size every feasibility
    /// ellipse (equivalently, inflate LowerBound by 1/shrink_factor),
    /// deliberately making the filter unsound so the differential harness
    /// can prove it detects and attributes a miscalibrated bound. 1.0 is
    /// the only sound setting.
    double shrink_factor = 1.0;
  };

  EllipsePrefilter() = default;

  /// Calibrates alpha over the graph's edges. O(E); the result borrows
  /// `graph`, which must outlive the prefilter.
  static EllipsePrefilter Build(const RoadNetwork& graph,
                                const Options& opts);
  static EllipsePrefilter Build(const RoadNetwork& graph) {
    return Build(graph, Options{});
  }

  /// Lower bound on the network distance u -> v. Sound (never exceeds the
  /// true shortest-path distance) when shrink_factor == 1; returns 0 on
  /// graphs where no edge has positive chord length (filter disabled).
  Distance LowerBound(VertexId u, VertexId v) const {
    return scale_ * graph_->EuclideanDistance(u, v);
  }

  /// LowerBound(a,via) + LowerBound(via,b): the scaled focal sum. A value
  /// above `budget` (plus tolerance) proves no route a -> via -> b fits in
  /// `budget` — this is exactly containment of via in FeasibleEllipse(a, b,
  /// budget), in the form the lemma predicates consume.
  Distance DetourLowerBound(VertexId a, VertexId via, VertexId b) const {
    return LowerBound(a, via) + LowerBound(via, b);
  }

  /// The feasible-detour ellipse admitting network routes a -> p -> b of
  /// length <= max_sum, in raw coordinate space: containment of
  /// position(p) is necessary for dist(a,p) + dist(p,b) <= max_sum.
  /// Exposed for the ablation suite and property tests; the matcher
  /// integration uses DetourLowerBound directly (same predicate, no
  /// division). An uncalibrated graph (scale 0) yields an all-containing
  /// ellipse.
  Ellipse FeasibleEllipse(VertexId a, VertexId b, Distance max_sum) const;

  double alpha() const { return alpha_; }
  double shrink_factor() const { return shrink_; }
  const RoadNetwork& graph() const { return *graph_; }

 private:
  const RoadNetwork* graph_ = nullptr;
  double alpha_ = 0.0;   ///< min weight / chord over edges, pre-shave
  double shrink_ = 1.0;  ///< Options::shrink_factor as built
  double scale_ = 0.0;   ///< alpha * (1 - shave) / shrink_factor
};

}  // namespace ptar::prune

#endif  // PTAR_PRUNE_ELLIPSE_PREFILTER_H_
