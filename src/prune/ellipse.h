// Detour-ellipse geometry for the GeoPrune candidate prefilter.
//
// A request with source s, destination d, and a total detour allowance B
// admits a vehicle waypoint p only if dist(s,p) + dist(p,d) <= B. Replacing
// the network distances with a lower bound that is proportional to the
// Euclidean distance turns that necessary condition into containment in an
// ellipse with foci at s and d and focal-sum bound B (in scaled Euclidean
// space). This header holds the pure geometry; the calibration that makes
// Euclidean distances a *sound* lower bound on network distances lives in
// ellipse_prefilter.h (see DESIGN.md §13).

#ifndef PTAR_PRUNE_ELLIPSE_H_
#define PTAR_PRUNE_ELLIPSE_H_

#include <cmath>

#include "graph/types.h"

namespace ptar::prune {

/// Absolute slack used by containment checks so boundary points (focal sum
/// exactly equal to the bound) are always inside, matching the strict
/// comparisons of the lemma predicates (rideshare/lemmas.h).
inline constexpr double kContainmentTolerance = 1e-6;

/// The locus of points p with |p-f1| + |p-f2| <= sum_bound. Degenerate
/// shapes are meaningful: coincident foci give a disc of radius
/// sum_bound / 2, sum_bound == |f1-f2| gives the focal segment, and
/// sum_bound < |f1-f2| is the empty set.
struct Ellipse {
  Coord f1;
  Coord f2;
  double sum_bound = 0.0;
};

inline double EuclideanDistance(const Coord& a, const Coord& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// |p-f1| + |p-f2|: the quantity the containment predicate bounds.
inline double FocalSum(const Ellipse& e, const Coord& p) {
  return EuclideanDistance(p, e.f1) + EuclideanDistance(p, e.f2);
}

/// Distance between the foci — the minimum possible focal sum, so the
/// ellipse is empty iff sum_bound < FocalDistance (beyond tolerance).
inline double FocalDistance(const Ellipse& e) {
  return EuclideanDistance(e.f1, e.f2);
}

inline bool IsEmpty(const Ellipse& e,
                    double tolerance = kContainmentTolerance) {
  return e.sum_bound + tolerance < FocalDistance(e);
}

/// Containment with tolerance. The early return is a fast reject — the
/// focal sum is at least the distance to either focus alone — and must
/// agree with the brute-force sum (prune_test fuzzes this equivalence).
inline bool Contains(const Ellipse& e, const Coord& p,
                     double tolerance = kContainmentTolerance) {
  const double d1 = EuclideanDistance(p, e.f1);
  if (d1 > e.sum_bound + tolerance) return false;
  return d1 + EuclideanDistance(p, e.f2) <= e.sum_bound + tolerance;
}

}  // namespace ptar::prune

#endif  // PTAR_PRUNE_ELLIPSE_H_
