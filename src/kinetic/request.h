// Ridesharing request type (paper Definition 1).

#ifndef PTAR_KINETIC_REQUEST_H_
#define PTAR_KINETIC_REQUEST_H_

#include <cstdint>
#include <limits>

#include "graph/types.h"

namespace ptar {

using RequestId = std::uint32_t;
inline constexpr RequestId kInvalidRequest =
    std::numeric_limits<RequestId>::max();

/// R = <s, d, n, w, eps>. The waiting-time budget is stored in distance
/// units (the paper converts time <-> distance at constant speed), so all
/// constraint arithmetic happens in meters.
struct Request {
  RequestId id = kInvalidRequest;
  VertexId start = kInvalidVertex;        ///< s: pickup location.
  VertexId destination = kInvalidVertex;  ///< d: dropoff location.
  int riders = 1;                         ///< n: group size.
  /// w: maximal waiting distance between planned and actual pickup
  /// (minutes * 60 * speed when converting from the paper's minutes).
  Distance max_wait_dist = 0.0;
  /// eps: the trip from s to d may be at most (1 + eps) * dist(s, d) long.
  double epsilon = 0.0;
  /// Submission time in seconds (used by the simulator's arrival stream).
  double submit_time = 0.0;
};

}  // namespace ptar

#endif  // PTAR_KINETIC_REQUEST_H_
