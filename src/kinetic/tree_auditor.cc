#include "kinetic/tree_auditor.h"

#include <cmath>
#include <string>

namespace ptar {

namespace {

std::string Prefix(const KineticTree& tree, std::size_t branch) {
  return "vehicle " + std::to_string(tree.vehicle()) + " branch " +
         std::to_string(branch) + ": ";
}

}  // namespace

AuditReport KineticTreeAuditor::AuditTree(const KineticTree& tree) const {
  AuditReport report;
  ++report.trees_checked;

  if (tree.IsEmpty()) {
    if (tree.num_branches() != 1 || !tree.BranchSchedule(0).stops.empty()) {
      report.findings.push_back(
          "vehicle " + std::to_string(tree.vehicle()) +
          ": empty tree must hold exactly one empty schedule");
    }
    if (tree.onboard() != 0) {
      report.findings.push_back("vehicle " + std::to_string(tree.vehicle()) +
                                ": empty tree with riders on board");
    }
    return report;
  }

  // Riders on board must equal the picked-up assigned groups.
  int expected_onboard = 0;
  for (const AssignedRequest& a : tree.assigned()) {
    if (a.picked_up) expected_onboard += a.request.riders;
  }
  if (expected_onboard != tree.onboard()) {
    report.findings.push_back(
        "vehicle " + std::to_string(tree.vehicle()) + ": onboard=" +
        std::to_string(tree.onboard()) + " but picked-up assignments sum to " +
        std::to_string(expected_onboard));
  }

  if (tree.active_index() >= tree.num_branches()) {
    report.findings.push_back("vehicle " + std::to_string(tree.vehicle()) +
                              ": active_index out of range");
    return report;  // nothing below is meaningful
  }

  // While stale(), non-active first legs are legitimately outdated (Refresh
  // repairs them lazily) and a drifted branch may legally fail validation;
  // only the active branch carries hard guarantees then.
  const bool stale = tree.stale();
  Distance min_total = kInfDistance;
  const std::vector<Schedule> schedules = tree.Schedules();
  for (std::size_t b = 0; b < schedules.size(); ++b) {
    const Schedule& branch = schedules[b];
    ++report.branches_checked;
    const bool is_active = b == tree.active_index();

    if (branch.legs.size() != branch.stops.size()) {
      report.findings.push_back(
          Prefix(tree, b) + std::to_string(branch.legs.size()) + " legs for " +
          std::to_string(branch.stops.size()) + " stops");
      continue;
    }
    min_total = std::min(min_total, branch.total());

    VertexId prev = tree.location();
    for (std::size_t i = 0; i < branch.stops.size(); ++i) {
      const bool may_be_stale = stale && !is_active && i == 0;
      if (!may_be_stale) {
        const Distance exact = dist_(prev, branch.stops[i].location);
        if (std::abs(branch.legs[i] - exact) > tolerance_) {
          report.findings.push_back(
              Prefix(tree, b) + "leg " + std::to_string(i) + " stores " +
              std::to_string(branch.legs[i]) + " but dist(" +
              std::to_string(prev) + ", " +
              std::to_string(branch.stops[i].location) + ") = " +
              std::to_string(exact));
        }
      }
      prev = branch.stops[i].location;
    }

    if ((is_active || !stale) && !tree.IsValidSchedule(branch, nullptr)) {
      report.findings.push_back(Prefix(tree, b) +
                                "fails the Definition-2 validity check");
    }
  }

  // The active branch must be (one of) the shortest.
  const Distance active_total = schedules[tree.active_index()].total();
  if (active_total > min_total + tolerance_) {
    report.findings.push_back(
        "vehicle " + std::to_string(tree.vehicle()) + ": active total " +
        std::to_string(active_total) + " exceeds shortest branch total " +
        std::to_string(min_total));
  }

  return report;
}

AuditReport KineticTreeAuditor::AuditFleet(
    const std::vector<KineticTree>& fleet,
    const VehicleRegistry* registry) const {
  AuditReport report;
  for (const KineticTree& tree : fleet) {
    report.Accumulate(AuditTree(tree));
  }
  if (registry != nullptr) {
    report.aggregate_cells_checked +=
        registry->AuditAggregates(&report.findings);
  }
  return report;
}

Status KineticTreeAuditor::RepairTree(KineticTree& tree) const {
  return tree.RebuildBranches(dist_);
}

}  // namespace ptar
