#include "kinetic/branch_store.h"

#include <algorithm>

namespace ptar {

void BranchStore::Clear() {
  type_.clear();
  request_.clear();
  location_.clear();
  leg_.clear();
  delta_onboard_.clear();
  parent_.clear();
  first_child_.clear();
  next_sibling_.clear();
  free_.clear();
  leaves_.clear();
  root_child_head_ = kNilNode;
  live_nodes_ = 0;
  root_delta_ = 0;
}

BranchStore::NodeId BranchStore::FindChild(NodeId parent, const Stop& stop,
                                           Distance leg) const {
  for (NodeId c = ChildHead(parent); c != kNilNode; c = next_sibling_[Idx(c)]) {
    const std::size_t i = Idx(c);
    if (request_[i] == stop.request &&
        static_cast<StopType>(type_[i]) == stop.type &&
        location_[i] == stop.location && leg_[i] == leg) {
      return c;
    }
  }
  return kNilNode;
}

BranchStore::NodeId BranchStore::NewNode(NodeId parent, const Stop& stop,
                                         Distance leg, std::int32_t delta) {
  NodeId n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    n = static_cast<NodeId>(type_.size());
    type_.push_back(0);
    request_.push_back(kInvalidRequest);
    location_.push_back(kInvalidVertex);
    leg_.push_back(0.0);
    delta_onboard_.push_back(0);
    parent_.push_back(kNilNode);
    first_child_.push_back(kNilNode);
    next_sibling_.push_back(kNilNode);
  }
  const std::size_t i = Idx(n);
  type_[i] = static_cast<std::uint8_t>(stop.type);
  request_[i] = stop.request;
  location_[i] = stop.location;
  leg_[i] = leg;
  delta_onboard_[i] = delta;
  parent_[i] = parent;
  first_child_[i] = kNilNode;
  // Prepend to the parent's child list (O(1); child order is immaterial —
  // branch order lives in leaves_).
  next_sibling_[i] = ChildHead(parent);
  SetChildHead(parent, n);
  ++live_nodes_;
  return n;
}

BranchStore::NodeId BranchStore::FirstOnPath(NodeId leaf) const {
  NodeId n = leaf;
  while (parent_[Idx(n)] != kRootNode) n = parent_[Idx(n)];
  return n;
}

std::size_t BranchStore::Depth(NodeId leaf) const {
  std::size_t depth = 0;
  for (NodeId n = leaf; n != kRootNode; n = parent_[Idx(n)]) ++depth;
  return depth;
}

void BranchStore::Materialize(NodeId leaf, Schedule* out) const {
  const std::size_t depth = Depth(leaf);
  out->stops.resize(depth);
  out->legs.resize(depth);
  std::size_t m = depth;
  for (NodeId n = leaf; n != kRootNode; n = parent_[Idx(n)]) {
    --m;
    const std::size_t i = Idx(n);
    out->stops[m] =
        Stop{static_cast<StopType>(type_[i]), request_[i], location_[i]};
    out->legs[m] = leg_[i];
  }
  PTAR_DCHECK(m == 0);
}

void BranchStore::MaterializePath(NodeId leaf,
                                  std::vector<NodeId>* out) const {
  const std::size_t depth = Depth(leaf);
  out->resize(depth);
  std::size_t m = depth;
  for (NodeId n = leaf; n != kRootNode; n = parent_[Idx(n)]) {
    (*out)[--m] = n;
  }
}

Distance BranchStore::PathTotal(NodeId leaf) const {
  // Two passes to keep the summation in root-to-leaf order without scratch:
  // find the path head depth, then accumulate by re-walking from each
  // depth... a reverse walk would change the float association, so instead
  // collect into a fixed-size window on the stack for typical depths and
  // fall back to a heap walk for deep paths.
  constexpr std::size_t kInlineDepth = 64;
  Distance window[kInlineDepth];
  std::size_t depth = 0;
  bool inline_ok = true;
  for (NodeId n = leaf; n != kRootNode; n = parent_[Idx(n)]) {
    if (depth < kInlineDepth) {
      window[depth] = leg_[Idx(n)];
    } else {
      inline_ok = false;
    }
    ++depth;
  }
  if (inline_ok) {
    Distance total = 0.0;
    for (std::size_t m = depth; m > 0; --m) total += window[m - 1];
    return total;
  }
  std::vector<Distance> legs(depth);
  std::size_t m = depth;
  for (NodeId n = leaf; n != kRootNode; n = parent_[Idx(n)]) {
    legs[--m] = leg_[Idx(n)];
  }
  Distance total = 0.0;
  for (const Distance leg : legs) total += leg;
  return total;
}

void BranchStore::UnlinkFromParent(NodeId n) {
  const NodeId p = parent_[Idx(n)];
  NodeId c = ChildHead(p);
  if (c == n) {
    SetChildHead(p, next_sibling_[Idx(n)]);
    return;
  }
  while (c != kNilNode) {
    const NodeId next = next_sibling_[Idx(c)];
    if (next == n) {
      next_sibling_[Idx(c)] = next_sibling_[Idx(n)];
      return;
    }
    c = next;
  }
  PTAR_CHECK(false) << "node missing from its parent's child list";
}

void BranchStore::FreeNode(NodeId n) {
  const std::size_t i = Idx(n);
  parent_[i] = kNilNode;
  first_child_[i] = kNilNode;
  next_sibling_[i] = kNilNode;
  request_[i] = kInvalidRequest;
  free_.push_back(n);
  PTAR_DCHECK(live_nodes_ > 0);
  --live_nodes_;
}

void BranchStore::FreeSubtree(NodeId n) {
  scratch_stack_.clear();
  scratch_stack_.push_back(n);
  while (!scratch_stack_.empty()) {
    const NodeId cur = scratch_stack_.back();
    scratch_stack_.pop_back();
    for (NodeId c = first_child_[Idx(cur)]; c != kNilNode;
         c = next_sibling_[Idx(c)]) {
      scratch_stack_.push_back(c);
    }
    FreeNode(cur);
  }
}

void BranchStore::RemoveLeavesNotUnder(NodeId first) {
  std::size_t kept = 0;
  for (std::size_t b = 0; b < leaves_.size(); ++b) {
    if (FirstOnPath(leaves_[b]) == first) leaves_[kept++] = leaves_[b];
  }
  leaves_.resize(kept);
}

void BranchStore::AdvanceRoot(NodeId first) {
  PTAR_DCHECK(parent_[Idx(first)] == kRootNode);
  // Rebase onboard deltas to the new root without sweeping the arrays.
  root_delta_ = delta_onboard_[Idx(first)];
  // Free every sibling subtree of the served node.
  NodeId c = root_child_head_;
  while (c != kNilNode) {
    const NodeId next = next_sibling_[Idx(c)];
    if (c != first) FreeSubtree(c);
    c = next;
  }
  // Promote the served node's children and retire the node itself.
  const NodeId promoted = first_child_[Idx(first)];
  for (NodeId p = promoted; p != kNilNode; p = next_sibling_[Idx(p)]) {
    parent_[Idx(p)] = kRootNode;
  }
  root_child_head_ = promoted;
  first_child_[Idx(first)] = kNilNode;
  FreeNode(first);
  if (promoted == kNilNode) {
    PTAR_DCHECK(live_nodes_ == 0);
    leaves_.clear();
  }
}

void BranchStore::RemoveLeaf(std::size_t branch_index) {
  PTAR_DCHECK(branch_index < leaves_.size());
  NodeId n = leaves_[branch_index];
  leaves_.erase(leaves_.begin() + static_cast<std::ptrdiff_t>(branch_index));
  // Free the unshared suffix: walk up while the node has no children (no
  // other branch runs through it; branches share depth, so no leaf is an
  // inner node of another branch).
  while (n != kRootNode && first_child_[Idx(n)] == kNilNode) {
    const NodeId p = parent_[Idx(n)];
    UnlinkFromParent(n);
    FreeNode(n);
    n = p;
  }
}

std::size_t BranchStore::HeapBytes() const {
  return type_.capacity() * sizeof(std::uint8_t) +
         request_.capacity() * sizeof(RequestId) +
         location_.capacity() * sizeof(VertexId) +
         leg_.capacity() * sizeof(Distance) +
         delta_onboard_.capacity() * sizeof(std::int32_t) +
         parent_.capacity() * sizeof(NodeId) +
         first_child_.capacity() * sizeof(NodeId) +
         next_sibling_.capacity() * sizeof(NodeId) +
         free_.capacity() * sizeof(NodeId) +
         leaves_.capacity() * sizeof(NodeId) +
         scratch_stack_.capacity() * sizeof(NodeId);
}

}  // namespace ptar
