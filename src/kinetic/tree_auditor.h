// Invariant auditor for kinetic trees and their grid registrations.
//
// The matchers lean on a set of structural invariants that are cheap to
// state but scattered across the codebase: every branch of a tree is a
// valid Definition-2 schedule with exact legs, the active branch is the
// shortest, an empty tree is exactly one empty schedule, and the registry's
// per-cell aggregates match a fresh rebuild from the registered edges. A
// bug — or an injected fault (src/check) poisoning a leg through the
// distance oracle — violates them silently and surfaces much later as a
// wrong skyline. The auditor checks all of them directly against a trusted
// distance function, and RepairTree() rebuilds a corrupted tree in place.
//
// Cost: one exact distance per schedule leg, so auditing a fleet is about
// as expensive as one BA request. The engine runs it after every commit in
// debug builds (EngineOptions::audit_after_commit) and on demand in release
// (Engine::AuditFleet).

#ifndef PTAR_KINETIC_TREE_AUDITOR_H_
#define PTAR_KINETIC_TREE_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "grid/vehicle_registry.h"
#include "kinetic/kinetic_tree.h"

namespace ptar {

/// Outcome of one audit pass. `findings` holds one human-readable line per
/// violated invariant (empty means everything held).
struct AuditReport {
  std::uint64_t trees_checked = 0;
  std::uint64_t branches_checked = 0;
  std::uint64_t aggregate_cells_checked = 0;
  std::vector<std::string> findings;

  bool ok() const { return findings.empty(); }

  void Accumulate(const AuditReport& other) {
    trees_checked += other.trees_checked;
    branches_checked += other.branches_checked;
    aggregate_cells_checked += other.aggregate_cells_checked;
    findings.insert(findings.end(), other.findings.begin(),
                    other.findings.end());
  }
};

class KineticTreeAuditor {
 public:
  /// `dist` must be a trusted exact distance source (the engine uses its
  /// maintenance oracle, which fault injection never touches).
  /// `tolerance` bounds acceptable floating-point drift on stored legs.
  explicit KineticTreeAuditor(KineticTree::DistFn dist,
                              double tolerance = 1e-6)
      : dist_(std::move(dist)), tolerance_(tolerance) {}

  /// Audits one tree: leg-count and leg-exactness per branch, Definition-2
  /// validity of every branch, active-branch minimality, and the canonical
  /// empty-tree shape (one empty schedule, nobody on board).
  AuditReport AuditTree(const KineticTree& tree) const;

  /// Audits every tree of the fleet plus (when `registry` is non-null) the
  /// registry's per-cell aggregate consistency.
  AuditReport AuditFleet(const std::vector<KineticTree>& fleet,
                         const VehicleRegistry* registry) const;

  /// Rebuilds a corrupted tree in place through the trusted distance
  /// function (exact legs, invalid branches dropped, active recomputed).
  /// Fails iff no valid branch survives — the tree is then unusable and the
  /// caller must shed its assignments.
  Status RepairTree(KineticTree& tree) const;

 private:
  KineticTree::DistFn dist_;
  double tolerance_;
};

}  // namespace ptar

#endif  // PTAR_KINETIC_TREE_AUDITOR_H_
