// Arena-backed structure-of-arrays branch store for the kinetic tree.
//
// The paper's kinetic tree [17] is a node-sharing prefix tree: branches that
// agree on a stop prefix share those nodes. This store is that tree laid out
// as flat pooled arrays (DESIGN.md §14): every per-stop field — stop
// identity, leg distance, onboard delta, parent/child/sibling links — lives
// in its own vector indexed by NodeId, so a tree with B branches of depth k
// holds the shared prefix nodes exactly once instead of B full
// `std::vector<Stop>` copies, and the whole branch set costs a handful of
// heap blocks instead of 2B+1.
//
// The root (the vehicle's current location) is implicit: depth-1 nodes form
// a sibling list headed by `root_child_head_` and carry `kRootNode` as their
// parent. A branch is the root-to-leaf path of one entry of `leaves_`
// (branch order = insertion order, mirroring the old flat vector). An empty
// store represents the idle vehicle and owns zero heap.
//
// Root advancement (`AdvanceRoot`) is copy-free: serving the first stop of
// the driven branch frees the other root subtrees into the slot free list
// and promotes the served node's children to root children — no branch is
// re-materialized. First-leg updates (`set_leg` on a root child) are shared:
// one write refreshes every branch driving through that stop.
//
// Not thread-safe for mutation; const traversals are safe concurrently
// (matcher workers enumerate insertions against a frozen fleet).

#ifndef PTAR_KINETIC_BRANCH_STORE_H_
#define PTAR_KINETIC_BRANCH_STORE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "graph/types.h"
#include "kinetic/schedule.h"

namespace ptar {

class BranchStore {
 public:
  using NodeId = std::int32_t;
  static constexpr NodeId kNilNode = -1;
  /// Parent sentinel of depth-1 nodes (the implicit root).
  static constexpr NodeId kRootNode = -2;

  // --- Shape. ---

  /// True iff the store holds no branch (the idle vehicle).
  bool empty() const { return leaves_.empty(); }
  std::size_t num_leaves() const { return leaves_.size(); }
  NodeId leaf(std::size_t branch) const {
    PTAR_DCHECK(branch < leaves_.size());
    return leaves_[branch];
  }
  NodeId root_child_head() const { return root_child_head_; }

  // --- Per-node fields (SoA). ---

  StopType type(NodeId n) const { return static_cast<StopType>(type_[Idx(n)]); }
  RequestId request(NodeId n) const { return request_[Idx(n)]; }
  VertexId location(NodeId n) const { return location_[Idx(n)]; }
  Distance leg(NodeId n) const { return leg_[Idx(n)]; }
  void set_leg(NodeId n, Distance d) { leg_[Idx(n)] = d; }
  /// Sum of signed rider deltas over the root-to-n path (inclusive): the
  /// paper's o_x.capacity annotation is capacity - onboard - delta. Values
  /// are stored relative to the root at insertion time and rebased lazily:
  /// AdvanceRoot only moves `root_delta_`, never sweeps the arrays.
  std::int32_t delta_onboard(NodeId n) const {
    return delta_onboard_[Idx(n)] - root_delta_;
  }
  NodeId parent(NodeId n) const { return parent_[Idx(n)]; }
  NodeId first_child(NodeId n) const { return first_child_[Idx(n)]; }
  NodeId next_sibling(NodeId n) const { return next_sibling_[Idx(n)]; }
  Stop StopOf(NodeId n) const {
    return Stop{type(n), request(n), location(n)};
  }

  // --- Building. ---

  /// Drops every node and leaf; keeps array capacity for reuse.
  void Clear();

  /// Appends `schedule` as a new branch, sharing the longest existing
  /// prefix whose stops and leg values match exactly (bit-equal legs, so a
  /// materialized branch reproduces its input). `riders(request)` supplies
  /// the onboard delta of each stop. Returns the new leaf. The schedule
  /// must be distinct from every existing branch (callers deduplicate).
  template <typename RidersFn>
  NodeId AddBranch(const Schedule& schedule, RidersFn&& riders) {
    PTAR_DCHECK(schedule.stops.size() == schedule.legs.size());
    NodeId cur = kRootNode;
    std::int32_t raw_delta = root_delta_;
    std::size_t m = 0;
    // Walk the shared prefix.
    for (; m < schedule.stops.size(); ++m) {
      const Stop& stop = schedule.stops[m];
      const NodeId child = FindChild(cur, stop, schedule.legs[m]);
      if (child == kNilNode) break;
      raw_delta = delta_onboard_[Idx(child)];
      cur = child;
    }
    // Append the unshared suffix.
    for (; m < schedule.stops.size(); ++m) {
      const Stop& stop = schedule.stops[m];
      const int r = riders(stop.request);
      raw_delta += (stop.type == StopType::kPickup) ? r : -r;
      cur = NewNode(cur, stop, schedule.legs[m], raw_delta);
    }
    PTAR_DCHECK(cur != kRootNode) << "empty branches are implicit";
    leaves_.push_back(cur);
    return cur;
  }

  // --- Traversal. ---

  /// Visits every live node once, in slot order (free-listed slots are
  /// skipped by their kInvalidRequest marker). A flat SoA scan: no pointer
  /// chasing, shared prefixes visited once — not once per branch.
  template <typename Fn>
  void ForEachLiveNode(Fn&& fn) const {
    for (std::size_t i = 0; i < type_.size(); ++i) {
      if (request_[i] == kInvalidRequest) continue;
      fn(static_cast<NodeId>(i));
    }
  }

  /// Depth-1 ancestor of `leaf` (the branch's first stop).
  NodeId FirstOnPath(NodeId leaf) const;
  std::size_t Depth(NodeId leaf) const;
  /// Fills `out` with the branch's stops and legs in root-to-leaf order
  /// (reuses out's capacity; no allocation once warmed up).
  void Materialize(NodeId leaf, Schedule* out) const;
  /// Fills `out` with the path's NodeIds in root-to-leaf order.
  void MaterializePath(NodeId leaf, std::vector<NodeId>* out) const;
  /// Total branch distance, summed in root-to-leaf order (the same float
  /// association as Schedule::total(), so totals are bit-stable across the
  /// flat-vector and arena representations).
  Distance PathTotal(NodeId leaf) const;

  // --- Surgery. ---

  /// Serves root child `first`: frees every other root subtree, promotes
  /// first's children to root children, and frees `first` itself. Callers
  /// must first drop (RemoveLeavesNotUnder) the leaves of the doomed
  /// subtrees. If `first` was a leaf the store ends empty.
  void AdvanceRoot(NodeId first);
  /// Removes every leaf whose branch does not pass through root child
  /// `first`, preserving branch order. Node freeing is left to AdvanceRoot.
  void RemoveLeavesNotUnder(NodeId first);
  /// Removes branch `branch_index` and frees its unshared suffix.
  void RemoveLeaf(std::size_t branch_index);

  // --- Memory accounting (KineticTree::MemoryBytes). ---

  /// Exact heap footprint of the arenas: sum over every internal vector of
  /// capacity() * element size. Matches what a malloc-counting allocator
  /// observes for a freshly copied store (vector copies allocate exactly
  /// size() elements).
  std::size_t HeapBytes() const;
  /// Nodes currently reachable (excludes free-listed slots).
  std::size_t live_nodes() const { return live_nodes_; }
  /// Node slots ever allocated (live + free-listed): the arena's high-water
  /// mark. live_nodes()/slots() is the utilization table04 reports.
  std::size_t slots() const { return type_.size(); }

 private:
  static std::size_t Idx(NodeId n) {
    PTAR_DCHECK(n >= 0);
    return static_cast<std::size_t>(n);
  }

  NodeId ChildHead(NodeId parent) const {
    return parent == kRootNode ? root_child_head_ : first_child_[Idx(parent)];
  }
  void SetChildHead(NodeId parent, NodeId head) {
    if (parent == kRootNode) {
      root_child_head_ = head;
    } else {
      first_child_[Idx(parent)] = head;
    }
  }

  /// Child of `parent` with the same stop identity and a bit-equal leg, or
  /// kNilNode. Bit-equality keeps materialization lossless; legs of a
  /// shared prefix come from the same distance computation, so sharing is
  /// the common case and a mismatch just costs an unshared node.
  NodeId FindChild(NodeId parent, const Stop& stop, Distance leg) const;
  NodeId NewNode(NodeId parent, const Stop& stop, Distance leg,
                 std::int32_t delta);
  void UnlinkFromParent(NodeId n);
  void FreeNode(NodeId n);
  /// Frees `n` and its whole subtree (iterative; reuses scratch_stack_).
  void FreeSubtree(NodeId n);

  std::vector<std::uint8_t> type_;
  std::vector<RequestId> request_;
  std::vector<VertexId> location_;
  std::vector<Distance> leg_;
  std::vector<std::int32_t> delta_onboard_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> free_;    ///< Recycled slots (LIFO).
  std::vector<NodeId> leaves_;  ///< Branch order.
  std::vector<NodeId> scratch_stack_;  ///< FreeSubtree working set.
  NodeId root_child_head_ = kNilNode;
  std::size_t live_nodes_ = 0;
  /// Onboard-delta origin of the current root (see delta_onboard).
  std::int32_t root_delta_ = 0;
};

}  // namespace ptar

#endif  // PTAR_KINETIC_BRANCH_STORE_H_
