// Trip schedules: ordered stop sequences with exact leg distances
// (paper Definition 2).

#ifndef PTAR_KINETIC_SCHEDULE_H_
#define PTAR_KINETIC_SCHEDULE_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "graph/types.h"
#include "kinetic/request.h"

namespace ptar {

enum class StopType : std::uint8_t {
  kPickup = 0,
  kDropoff = 1,
};

/// One scheduled waypoint: pick up or drop off the riders of a request.
struct Stop {
  StopType type = StopType::kPickup;
  RequestId request = kInvalidRequest;
  VertexId location = kInvalidVertex;

  friend bool operator==(const Stop& a, const Stop& b) {
    return a.type == b.type && a.request == b.request &&
           a.location == b.location;
  }
};

/// A trip schedule tr = <o_1, ..., o_k>: the vehicle's current location
/// (implicit, held by the owning KineticTree) followed by `stops`.
/// legs[i] is the shortest-path distance from the previous point to
/// stops[i] (legs[0] starts at the current location), so
/// legs.size() == stops.size() and total() is the paper's dist_tr.
struct Schedule {
  std::vector<Stop> stops;
  std::vector<Distance> legs;

  Distance total() const {
    return std::accumulate(legs.begin(), legs.end(), Distance{0});
  }

  /// Trip distance from the current location to stops[stop_index]
  /// (inclusive).
  Distance PrefixDistance(std::size_t stop_index) const {
    PTAR_DCHECK(stop_index < stops.size());
    Distance d = 0;
    for (std::size_t i = 0; i <= stop_index; ++i) d += legs[i];
    return d;
  }

  bool SameStops(const Schedule& other) const {
    return stops == other.stops;
  }
};

}  // namespace ptar

#endif  // PTAR_KINETIC_SCHEDULE_H_
