// Kinetic tree: the per-vehicle index of all valid trip schedules
// (paper Section IV.B, after Huang et al. [17]).
//
// Representation. The tree is stored as its set of branches — every branch
// is one valid Schedule. This is semantically identical to the node-sharing
// tree of [17] (see DESIGN.md) and lets validity be checked against a single
// authoritative ValidateSchedule routine. The per-node annotations the paper
// stores (o_x.capacity, o_x.detour, o_x.dist_tr) are derived on demand for
// pruning hooks and grid registration.
//
// Movement model. The vehicle keeps a distance odometer. Each assigned
// request stores its pickup deadline as an odometer value
// (odometer-at-assignment + planned-pickup-distance + w), so the paper's
// waiting-time constraint "actual - planned <= w" becomes
//   odometer_now + remaining-trip-distance-to-s <= deadline_odometer,
// which is exact while driving and trivially monotone. The service
// constraint similarly uses the pickup odometer once riders are on board.
//
// While the vehicle drives along the active (shortest total) branch, that
// branch's first leg shrinks exactly; other branches' first legs go stale
// and are repaired lazily by Refresh() (through the caller's distance
// function, so repairs count as compdists exactly like the paper's
// "update the nodes connected to the root").

#ifndef PTAR_KINETIC_KINETIC_TREE_H_
#define PTAR_KINETIC_KINETIC_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "graph/types.h"
#include "grid/grid_index.h"
#include "grid/vehicle_registry.h"
#include "kinetic/request.h"
#include "kinetic/schedule.h"

namespace ptar {

/// A request currently assigned to a vehicle and not yet completed.
struct AssignedRequest {
  Request request;
  Distance direct_dist = 0.0;  ///< dist(s, d), computed at admission.
  /// Odometer value by which the pickup must happen:
  /// odometer-at-assignment + planned pickup distance + max_wait_dist.
  Distance deadline_odometer = 0.0;
  bool picked_up = false;
  /// Odometer when the riders boarded (valid once picked_up).
  Distance pickup_odometer = 0.0;
};

/// Context handed to the s-insertion pruning hook: one candidate gap
/// <o_x, o_y> of one branch, before any real distance is computed for it.
struct SPositionContext {
  VertexId ox = kInvalidVertex;  ///< Previous point (location or a stop).
  VertexId oy = kInvalidVertex;  ///< Next point; kInvalidVertex if tail.
  bool tail = false;             ///< Insertion after the last stop.
  Distance dist_tr_ox = 0.0;     ///< Trip distance from location to o_x.
  Distance leg_dist = 0.0;       ///< dist(o_x, o_y); 0 for tail.
  Distance detour_slack = 0.0;   ///< o_x.detour (kInfDistance if unbounded).
  int free_seats = 0;            ///< o_x.capacity.
};

/// Context for the d-insertion pruning hook; s has already been placed with
/// exact distances.
struct DPositionContext {
  VertexId ox = kInvalidVertex;
  VertexId oy = kInvalidVertex;
  bool tail = false;
  Distance dist_tr_ox = 0.0;    ///< Along the new schedule (s inserted).
  Distance leg_dist = 0.0;      ///< dist(o_x, o_y) in the original branch.
  Distance detour_slack = 0.0;  ///< Pre-insertion slack (upper bound).
  Distance pickup_dist = 0.0;   ///< Exact dist_tr'(location, s).
  Distance delta_s = 0.0;       ///< Exact detour added by placing s.
  /// True when d targets the same gap s was inserted into (Def. 7 case 2).
  bool same_gap = false;
  Distance dist_ox_s = 0.0;  ///< Exact dist(o_x, s) of the s-insertion.
};

/// Pruning hooks supplied by matchers (lemma evaluations). A hook returning
/// true means "skip this position without computing real distances". Null
/// hooks mean full enumeration (used by the baseline and by Commit).
struct InsertionHooks {
  std::function<bool(const SPositionContext&)> prune_s;
  std::function<bool(const DPositionContext&)> prune_d;
};

/// One feasible way to serve a new request: the full new schedule plus the
/// metrics that define the rider-facing option.
struct InsertionCandidate {
  Schedule schedule;
  Distance pickup_dist = 0.0;  ///< dist_tr'(location, s): the option's time.
  Distance total_dist = 0.0;   ///< dist_tr' of the new schedule.
};

class KineticTree {
 public:
  /// Exact shortest-path distance callback (normally a DistanceOracle).
  using DistFn = std::function<Distance(VertexId, VertexId)>;

  /// Default bound on the number of kept branches. The paper observes the
  /// worst case is (2 n_r)! but "the actual number of branches is much
  /// lower ... due to the constraints"; with deliberately loose constraints
  /// it is not, so the tree keeps only the `max_branches` shortest valid
  /// schedules (deterministic: ties broken by stop sequence). The active
  /// (shortest) schedule is always retained.
  static constexpr std::size_t kDefaultMaxBranches = 64;

  KineticTree(VehicleId vehicle, VertexId location, int capacity,
              std::size_t max_branches = kDefaultMaxBranches);

  KineticTree(const KineticTree&) = default;
  KineticTree& operator=(const KineticTree&) = default;
  KineticTree(KineticTree&&) = default;
  KineticTree& operator=(KineticTree&&) = default;

  // --- Observers. ---

  VehicleId vehicle() const { return vehicle_; }
  VertexId location() const { return location_; }
  int capacity() const { return capacity_; }
  /// Riders currently inside the vehicle.
  int onboard() const { return onboard_; }
  Distance odometer() const { return odometer_; }
  /// True iff no unfinished request is assigned (paper's "empty vehicle").
  bool IsEmpty() const { return assigned_.empty(); }
  const std::vector<AssignedRequest>& assigned() const { return assigned_; }
  const std::vector<Schedule>& schedules() const { return schedules_; }
  /// The branch the vehicle actually drives: minimal total distance.
  const Schedule& ActiveSchedule() const;
  std::size_t active_index() const { return active_index_; }
  /// dist_tr of the current (active) schedule — the price baseline.
  Distance CurrentTotal() const { return ActiveSchedule().total(); }
  /// True if some non-active branch's first leg may be outdated; call
  /// Refresh() before relying on exact branch distances.
  bool stale() const { return stale_; }

  /// First waypoint of the active schedule, or kInvalidVertex if idle.
  VertexId NextStopLocation() const;

  // --- Matching. ---

  /// Enumerates all valid insertions of `request` into every branch,
  /// subject to the pruning hooks. Requires !stale(). Candidates are
  /// deduplicated by stop sequence. `direct_dist` is dist(s, d).
  std::vector<InsertionCandidate> EnumerateInsertions(
      const Request& request, Distance direct_dist, const DistFn& dist,
      const InsertionHooks& hooks) const;

  /// Assigns the request: replaces the branch set with every valid new
  /// schedule (full, unpruned enumeration per the paper's definition of
  /// c.S_tr) and records the waiting deadline from `planned_pickup_dist`.
  /// Fails if no valid schedule exists. Requires !stale().
  Status Commit(const Request& request, Distance direct_dist,
                Distance planned_pickup_dist, const DistFn& dist);

  // --- Movement (driven by the simulator). ---

  /// The vehicle moved `driven` meters and is now at `new_location`, which
  /// must lie on the shortest path of the active branch's first leg (or be
  /// any vertex if the vehicle is idle). Non-active branches go stale.
  void MoveTo(VertexId new_location, Distance driven);

  struct StopEvent {
    RequestId request = kInvalidRequest;
    StopType type = StopType::kPickup;
    int riders = 0;
  };

  /// Serves the active schedule's first stop. The vehicle must be located
  /// exactly at it. Branches that begin with a different stop are pruned;
  /// matching branches pop their head. Returns what happened.
  StatusOr<StopEvent> ArriveAtNextStop();

  /// Repairs stale first legs with exact distances and drops branches that
  /// became invalid; recomputes the active branch.
  void Refresh(const DistFn& dist);

  // --- Audit & repair (kinetic/tree_auditor, src/check fault injection). ---

  /// Rebuilds the branch set from scratch: recomputes every leg of every
  /// branch exactly via `dist`, drops branches that are unreachable or fail
  /// Definition 2, deduplicates by stop sequence, and recomputes the active
  /// branch. Clears stale(). A healthy tree is semantically unchanged; a
  /// corrupted one (e.g. legs poisoned by an injected oracle fault) is
  /// restored in place. Fails iff no valid branch survives.
  Status RebuildBranches(const DistFn& dist);

  /// Test seam for the auditor/fault-injection suites: overwrites one leg
  /// distance so corruption detection has something to find. CHECKs bounds.
  void CorruptLegForTest(std::size_t branch, std::size_t leg, Distance value);

  // --- Derived data for the grid index. ---

  /// Builds the (cell, edge entry) registrations for every branch edge
  /// <o_x, o_y> including the tail edge. Edges are registered in the cells
  /// of both endpoints; exact duplicates are merged.
  std::vector<std::pair<CellId, KineticEdgeEntry>> BuildRegistration(
      const GridIndex& grid) const;

  // --- Validation (also used heavily by tests). ---

  /// Exhaustively checks Definition 2 for `schedule` given the current
  /// assigned set plus optionally one extra (not yet assigned) request.
  /// All legs must already be exact.
  bool IsValidSchedule(const Schedule& schedule,
                       const AssignedRequest* extra) const;

  /// Detour slack of each insertion gap j (0..stops; gap j sits between
  /// point j and point j+1 of the branch; the last gap is the tail). This
  /// is the paper's o_x.detour. Exposed for tests and registration.
  std::vector<Distance> GapSlacks(const Schedule& schedule) const;

  /// Free seats while traversing each gap j (the paper's o_x.capacity).
  std::vector<int> GapFreeSeats(const Schedule& schedule) const;

  /// Approximate resident memory of the branch set, in bytes (Table IV's
  /// "kinetic trees" row).
  std::size_t MemoryBytes() const;

 private:
  void RecomputeActive();
  const AssignedRequest* FindAssigned(RequestId id) const;

  /// Enumeration core shared by EnumerateInsertions and Commit.
  void EnumerateIntoBranch(const Schedule& branch, const Request& request,
                           Distance direct_dist, const DistFn& dist,
                           const InsertionHooks& hooks,
                           std::vector<InsertionCandidate>* out) const;

  VehicleId vehicle_;
  VertexId location_;
  int capacity_;
  std::size_t max_branches_;
  int onboard_ = 0;
  Distance odometer_ = 0.0;
  std::vector<AssignedRequest> assigned_;
  std::vector<Schedule> schedules_;
  std::size_t active_index_ = 0;
  bool stale_ = false;
};

}  // namespace ptar

#endif  // PTAR_KINETIC_KINETIC_TREE_H_
