// Kinetic tree: the per-vehicle index of all valid trip schedules
// (paper Section IV.B, after Huang et al. [17]).
//
// Representation (DESIGN.md §14). The tree is a node-sharing prefix tree
// held in an arena-backed structure-of-arrays BranchStore: every stop node
// lives once in flat pooled arrays (stop identity, leg distance, onboard
// delta, parent/child/sibling links), branches are the root-to-leaf paths,
// and sibling branches share their common prefix nodes. This replaces the
// earlier flat set of per-branch `std::vector<Stop>` copies: a tree with B
// branches of depth k costs O(distinct nodes) instead of O(B * k) stop
// copies across 2B+1 heap blocks. Validity is still checked against the
// single authoritative IsValidSchedule routine on materialized branches,
// and the per-node annotations the paper stores (o_x.capacity via the
// onboard delta, o_x.detour, o_x.dist_tr) are derived from the arrays.
//
// Movement model. The vehicle keeps a distance odometer. Each assigned
// request stores its pickup deadline as an odometer value
// (odometer-at-assignment + planned-pickup-distance + w), so the paper's
// waiting-time constraint "actual - planned <= w" becomes
//   odometer_now + remaining-trip-distance-to-s <= deadline_odometer,
// which is exact while driving and trivially monotone. The service
// constraint similarly uses the pickup odometer once riders are on board.
//
// While the vehicle drives along the active (shortest total) branch, the
// shared first-leg node of every branch through the same first stop shrinks
// exactly in place (one write, all sharers); branches through a different
// first stop go stale and are repaired lazily by Refresh() — one distance
// per distinct first stop, through the caller's distance function, so
// repairs count as compdists exactly like the paper's "update the nodes
// connected to the root". Serving a stop advances the root copy-free:
// sibling subtrees are recycled into the arena free list and the served
// node's children become the new root children (no branch is re-copied).
//
// Bounded enumeration. By default the tree keeps every valid schedule (the
// paper's c.S_tr). An opt-in cap (`--tree_max_branches`) bounds the
// branch set with best-branch retention: the active (shortest) branch and
// every skyline-supporting branch — the Pareto-minimal set under
// (total distance, first-leg distance) — are always kept, and drops are
// counted (branches_dropped/cap_hits, surfaced as tree/* run counters).

#ifndef PTAR_KINETIC_KINETIC_TREE_H_
#define PTAR_KINETIC_KINETIC_TREE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/status.h"
#include "graph/types.h"
#include "grid/grid_index.h"
#include "grid/vehicle_registry.h"
#include "kinetic/branch_store.h"
#include "kinetic/request.h"
#include "kinetic/schedule.h"

namespace ptar {

/// A request currently assigned to a vehicle and not yet completed.
struct AssignedRequest {
  Request request;
  Distance direct_dist = 0.0;  ///< dist(s, d), computed at admission.
  /// Odometer value by which the pickup must happen:
  /// odometer-at-assignment + planned pickup distance + max_wait_dist.
  Distance deadline_odometer = 0.0;
  bool picked_up = false;
  /// Odometer when the riders boarded (valid once picked_up).
  Distance pickup_odometer = 0.0;
};

/// Context handed to the s-insertion pruning hook: one candidate gap
/// <o_x, o_y> of one branch, before any real distance is computed for it.
struct SPositionContext {
  VertexId ox = kInvalidVertex;  ///< Previous point (location or a stop).
  VertexId oy = kInvalidVertex;  ///< Next point; kInvalidVertex if tail.
  bool tail = false;             ///< Insertion after the last stop.
  Distance dist_tr_ox = 0.0;     ///< Trip distance from location to o_x.
  Distance leg_dist = 0.0;       ///< dist(o_x, o_y); 0 for tail.
  Distance detour_slack = 0.0;   ///< o_x.detour (kInfDistance if unbounded).
  int free_seats = 0;            ///< o_x.capacity.
};

/// Context for the d-insertion pruning hook; s has already been placed with
/// exact distances.
struct DPositionContext {
  VertexId ox = kInvalidVertex;
  VertexId oy = kInvalidVertex;
  bool tail = false;
  Distance dist_tr_ox = 0.0;    ///< Along the new schedule (s inserted).
  Distance leg_dist = 0.0;      ///< dist(o_x, o_y) in the original branch.
  Distance detour_slack = 0.0;  ///< Pre-insertion slack (upper bound).
  Distance pickup_dist = 0.0;   ///< Exact dist_tr'(location, s).
  Distance delta_s = 0.0;       ///< Exact detour added by placing s.
  /// True when d targets the same gap s was inserted into (Def. 7 case 2).
  bool same_gap = false;
  Distance dist_ox_s = 0.0;  ///< Exact dist(o_x, s) of the s-insertion.
};

/// Pruning hooks supplied by matchers (lemma evaluations). A hook returning
/// true means "skip this position without computing real distances". Null
/// hooks mean full enumeration (used by the baseline and by Commit).
struct InsertionHooks {
  std::function<bool(const SPositionContext&)> prune_s;
  std::function<bool(const DPositionContext&)> prune_d;
};

/// One feasible way to serve a new request: the full new schedule plus the
/// metrics that define the rider-facing option.
struct InsertionCandidate {
  Schedule schedule;
  Distance pickup_dist = 0.0;  ///< dist_tr'(location, s): the option's time.
  Distance total_dist = 0.0;   ///< dist_tr' of the new schedule.
};

class KineticTree {
 public:
  /// Exact shortest-path distance callback (normally a DistanceOracle).
  using DistFn = std::function<Distance(VertexId, VertexId)>;

  /// Default branch bound: none. The paper observes the worst case is
  /// (2 n_r)! but "the actual number of branches is much lower ... due to
  /// the constraints", and the tree's definition of c.S_tr keeps *all*
  /// valid schedules. Opt-in caps (`--tree_max_branches`) trade option
  /// coverage for memory with best-branch retention (see Commit).
  static constexpr std::size_t kUnlimitedBranches =
      std::numeric_limits<std::size_t>::max();

  KineticTree(VehicleId vehicle, VertexId location, int capacity,
              std::size_t max_branches = kUnlimitedBranches);

  KineticTree(const KineticTree&) = default;
  KineticTree& operator=(const KineticTree&) = default;
  KineticTree(KineticTree&&) = default;
  KineticTree& operator=(KineticTree&&) = default;

  // --- Observers. ---

  VehicleId vehicle() const { return vehicle_; }
  VertexId location() const { return location_; }
  int capacity() const { return capacity_; }
  /// Riders currently inside the vehicle.
  int onboard() const { return onboard_; }
  Distance odometer() const { return odometer_; }
  /// True iff no unfinished request is assigned (paper's "empty vehicle").
  bool IsEmpty() const { return assigned_.empty(); }
  const std::vector<AssignedRequest>& assigned() const { return assigned_; }

  /// Number of branches. An idle tree has exactly one (empty) branch.
  std::size_t num_branches() const {
    return store_.empty() ? 1 : store_.num_leaves();
  }
  /// Materializes branch `b` (stops and exact legs) out of the arena.
  Schedule BranchSchedule(std::size_t b) const;
  /// Materializes every branch in branch order. Convenience for audits,
  /// tests and the reference matcher; hot paths iterate num_branches() and
  /// reuse a scratch Schedule instead.
  std::vector<Schedule> Schedules() const;
  /// The branch the vehicle actually drives: minimal total distance.
  Schedule ActiveSchedule() const { return BranchSchedule(active_index_); }
  std::size_t active_index() const { return active_index_; }
  /// dist_tr of the current (active) schedule — the price baseline.
  Distance CurrentTotal() const;
  /// True if some non-active branch's first leg may be outdated; call
  /// Refresh() before relying on exact branch distances.
  bool stale() const { return stale_; }

  /// First waypoint of the active schedule, or kInvalidVertex if idle.
  VertexId NextStopLocation() const;

  /// Visits the location of every live stop node exactly once (a shared
  /// prefix is not repeated per branch). Cheaper than materializing
  /// branches when only the set of points matters, e.g. distance prefetch
  /// warmup.
  template <typename Fn>
  void ForEachStopLocation(Fn&& fn) const {
    store_.ForEachLiveNode(
        [&](BranchStore::NodeId n) { fn(store_.location(n)); });
  }

  /// Branch cap in force (kUnlimitedBranches by default).
  std::size_t max_branches() const { return max_branches_; }
  /// Branches discarded by the cap across the tree's lifetime, and the
  /// number of commits in which the cap was hit. Both stay 0 at the default
  /// (unlimited) setting; the engine surfaces the fleet sums as the
  /// "tree/branches_dropped" / "tree/cap_hits" run counters.
  std::uint64_t branches_dropped() const { return branches_dropped_; }
  std::uint64_t cap_hits() const { return cap_hits_; }

  // --- Matching. ---

  /// Enumerates all valid insertions of `request` into every branch,
  /// subject to the pruning hooks. Requires !stale(). Candidates are
  /// deduplicated by stop sequence. `direct_dist` is dist(s, d).
  std::vector<InsertionCandidate> EnumerateInsertions(
      const Request& request, Distance direct_dist, const DistFn& dist,
      const InsertionHooks& hooks) const;

  /// Assigns the request: replaces the branch set with every valid new
  /// schedule (full, unpruned enumeration per the paper's definition of
  /// c.S_tr) and records the waiting deadline from `planned_pickup_dist`.
  /// When a cap is configured and the fan-out exceeds it, retention keeps
  /// the active (shortest) branch and the (total, first-leg) Pareto set,
  /// fills the rest in deterministic shortest-first order, and counts the
  /// drops. Fails if no valid schedule exists. Requires !stale().
  Status Commit(const Request& request, Distance direct_dist,
                Distance planned_pickup_dist, const DistFn& dist);

  // --- Movement (driven by the simulator). ---

  /// The vehicle moved `driven` meters and is now at `new_location`, which
  /// must lie on the shortest path of the active branch's first leg (or be
  /// any vertex if the vehicle is idle). The active first-leg node shrinks
  /// in place (shared by every branch through the same first stop);
  /// branches through other first stops go stale.
  void MoveTo(VertexId new_location, Distance driven);

  struct StopEvent {
    RequestId request = kInvalidRequest;
    StopType type = StopType::kPickup;
    int riders = 0;
  };

  /// Serves the active schedule's first stop. The vehicle must be located
  /// exactly at it. Branches that begin with a different stop are pruned
  /// (their subtrees recycled into the arena); matching branches advance
  /// with the root — no copies. Returns what happened.
  StatusOr<StopEvent> ArriveAtNextStop();

  /// Repairs stale first legs with exact distances — one distance query per
  /// distinct non-active first stop, shared by all branches through it —
  /// and drops branches that became invalid; recomputes the active branch.
  void Refresh(const DistFn& dist);

  // --- Audit & repair (kinetic/tree_auditor, src/check fault injection). ---

  /// Rebuilds the branch set from scratch: recomputes every leg of every
  /// branch exactly via `dist`, drops branches that are unreachable or fail
  /// Definition 2, deduplicates by stop sequence, and recomputes the active
  /// branch. Clears stale(). A healthy tree is semantically unchanged; a
  /// corrupted one (e.g. legs poisoned by an injected oracle fault) is
  /// restored in place. Fails iff no valid branch survives.
  Status RebuildBranches(const DistFn& dist);

  /// Test seam for the auditor/fault-injection suites: overwrites one leg
  /// distance so corruption detection has something to find. Because legs
  /// of a shared prefix live once in the arena, corrupting branch b's leg l
  /// also corrupts every sibling branch sharing that node — which is what a
  /// real memory fault would do. CHECKs bounds.
  void CorruptLegForTest(std::size_t branch, std::size_t leg, Distance value);

  // --- Derived data for the grid index. ---

  /// Builds the (cell, edge entry) registrations for every branch edge
  /// <o_x, o_y> including the tail edge. Edges are registered in the cells
  /// of both endpoints; exact duplicates are merged.
  std::vector<std::pair<CellId, KineticEdgeEntry>> BuildRegistration(
      const GridIndex& grid) const;

  // --- Validation (also used heavily by tests). ---

  /// Exhaustively checks Definition 2 for `schedule` given the current
  /// assigned set plus optionally one extra (not yet assigned) request.
  /// All legs must already be exact. Allocation-free (thread-local
  /// scratch), so the per-candidate enumeration path can afford it.
  bool IsValidSchedule(const Schedule& schedule,
                       const AssignedRequest* extra) const;

  /// Detour slack of each insertion gap j (0..stops; gap j sits between
  /// point j and point j+1 of the branch; the last gap is the tail). This
  /// is the paper's o_x.detour. Exposed for tests and registration.
  std::vector<Distance> GapSlacks(const Schedule& schedule) const;

  /// Free seats while traversing each gap j (the paper's o_x.capacity).
  std::vector<int> GapFreeSeats(const Schedule& schedule) const;

  // --- Memory accounting (Table IV / table04_memory). ---

  /// Resident memory of the tree: sizeof(*this) plus the exact heap
  /// footprint of the branch arenas and the assigned list. Matches a
  /// malloc-counting allocator on a freshly copied tree (see
  /// kinetic_memory_test); an idle tree owns zero heap.
  std::size_t MemoryBytes() const;

  struct ArenaStats {
    std::size_t heap_bytes = 0;   ///< MemoryBytes() minus the object shell.
    std::size_t live_nodes = 0;   ///< Reachable stop nodes.
    std::size_t node_slots = 0;   ///< Allocated slots (live + free list).
    std::size_t branches = 0;     ///< num_branches().
  };
  /// Arena occupancy for the memory bench (utilization = live/slots).
  ArenaStats arena_stats() const;

 private:
  void RecomputeActive();
  const AssignedRequest* FindAssigned(RequestId id) const;
  int RidersOf(RequestId id) const;
  /// Loads `store_` from `schedules` in order (prefix-shared). Branches
  /// must already be deduplicated by stop sequence; empty schedules are
  /// skipped (the idle branch is implicit).
  void LoadBranches(const std::vector<Schedule>& schedules);

  /// Enumeration core shared by EnumerateInsertions and Commit; `branch`
  /// is one materialized branch (empty for the idle branch).
  void EnumerateIntoBranch(const Schedule& branch, const Request& request,
                           Distance direct_dist, const DistFn& dist,
                           const InsertionHooks& hooks,
                           std::vector<InsertionCandidate>* out) const;

  VehicleId vehicle_;
  VertexId location_;
  int capacity_;
  std::size_t max_branches_;
  int onboard_ = 0;
  Distance odometer_ = 0.0;
  std::vector<AssignedRequest> assigned_;
  /// Arena-backed prefix tree; empty ⟺ assigned_ empty (idle branch is
  /// implicit, so idle vehicles own zero heap).
  BranchStore store_;
  std::size_t active_index_ = 0;
  bool stale_ = false;
  std::uint64_t branches_dropped_ = 0;
  std::uint64_t cap_hits_ = 0;
};

}  // namespace ptar

#endif  // PTAR_KINETIC_KINETIC_TREE_H_
