#include "kinetic/kinetic_tree.h"

#include <algorithm>
#include <limits>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>

namespace ptar {

namespace {

/// Numeric slack for floating-point distance comparisons.
constexpr Distance kDistTolerance = 1e-6;

}  // namespace

KineticTree::KineticTree(VehicleId vehicle, VertexId location, int capacity,
                         std::size_t max_branches)
    : vehicle_(vehicle),
      location_(location),
      capacity_(capacity),
      max_branches_(max_branches) {
  PTAR_CHECK(capacity >= 1);
  PTAR_CHECK(max_branches >= 1);
  schedules_.push_back(Schedule{});  // the idle (empty) schedule
}

namespace {

/// Deterministic branch order: shorter total first, ties by stop sequence.
bool BranchLess(const Schedule& a, const Schedule& b) {
  const Distance ta = a.total();
  const Distance tb = b.total();
  if (ta != tb) return ta < tb;
  const std::size_t n = std::min(a.stops.size(), b.stops.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Stop& x = a.stops[i];
    const Stop& y = b.stops[i];
    if (x.request != y.request) return x.request < y.request;
    if (x.type != y.type) return x.type < y.type;
    if (x.location != y.location) return x.location < y.location;
  }
  return a.stops.size() < b.stops.size();
}

}  // namespace

const Schedule& KineticTree::ActiveSchedule() const {
  PTAR_DCHECK(active_index_ < schedules_.size());
  return schedules_[active_index_];
}

VertexId KineticTree::NextStopLocation() const {
  const Schedule& active = ActiveSchedule();
  return active.stops.empty() ? kInvalidVertex : active.stops[0].location;
}

void KineticTree::RecomputeActive() {
  PTAR_CHECK(!schedules_.empty());
  active_index_ = 0;
  Distance best = schedules_[0].total();
  for (std::size_t i = 1; i < schedules_.size(); ++i) {
    const Distance t = schedules_[i].total();
    if (t < best) {
      best = t;
      active_index_ = i;
    }
  }
}

const AssignedRequest* KineticTree::FindAssigned(RequestId id) const {
  for (const AssignedRequest& a : assigned_) {
    if (a.request.id == id) return &a;
  }
  return nullptr;
}

bool KineticTree::IsValidSchedule(const Schedule& schedule,
                                  const AssignedRequest* extra) const {
  PTAR_DCHECK(schedule.stops.size() == schedule.legs.size());

  // Locate every request's stops; reject strays and duplicates.
  struct StopIndex {
    int pickup = -1;
    int dropoff = -1;
  };
  std::map<RequestId, StopIndex> positions;
  for (std::size_t i = 0; i < schedule.stops.size(); ++i) {
    const Stop& stop = schedule.stops[i];
    StopIndex& pos = positions[stop.request];
    if (stop.type == StopType::kPickup) {
      if (pos.pickup != -1) return false;  // duplicate pickup
      pos.pickup = static_cast<int>(i);
    } else {
      if (pos.dropoff != -1) return false;  // duplicate dropoff
      pos.dropoff = static_cast<int>(i);
    }
  }

  auto check_request = [&](const AssignedRequest& a) {
    auto it = positions.find(a.request.id);
    if (it == positions.end()) return false;  // request missing entirely
    const StopIndex& pos = it->second;
    if (pos.dropoff == -1) return false;
    if (a.picked_up) {
      // Riders on board: only a dropoff may appear.
      if (pos.pickup != -1) return false;
      // Service constraint from the actual pickup point.
      const Distance travelled = odometer_ - a.pickup_odometer;
      if (travelled + schedule.PrefixDistance(pos.dropoff) >
          (1.0 + a.request.epsilon) * a.direct_dist + kDistTolerance) {
        return false;
      }
    } else {
      // Point order: pickup exists and precedes the dropoff.
      if (pos.pickup == -1 || pos.pickup > pos.dropoff) return false;
      // Waiting-time constraint (odometer form).
      if (odometer_ + schedule.PrefixDistance(pos.pickup) >
          a.deadline_odometer + kDistTolerance) {
        return false;
      }
      // Service constraint.
      if (schedule.PrefixDistance(pos.dropoff) -
              schedule.PrefixDistance(pos.pickup) >
          (1.0 + a.request.epsilon) * a.direct_dist + kDistTolerance) {
        return false;
      }
    }
    return true;
  };

  std::size_t expected_stops = 0;
  for (const AssignedRequest& a : assigned_) {
    if (!check_request(a)) return false;
    expected_stops += a.picked_up ? 1 : 2;
  }
  if (extra != nullptr) {
    if (!check_request(*extra)) return false;
    expected_stops += extra->picked_up ? 1 : 2;
  }
  if (schedule.stops.size() != expected_stops) return false;  // strays

  // Capacity along the whole schedule.
  int onboard = onboard_;
  for (const Stop& stop : schedule.stops) {
    const AssignedRequest* a =
        (extra != nullptr && extra->request.id == stop.request) ? extra
        : FindAssigned(stop.request);
    if (a == nullptr) return false;
    if (stop.type == StopType::kPickup) {
      onboard += a->request.riders;
      if (onboard > capacity_) return false;
    } else {
      onboard -= a->request.riders;
      if (onboard < 0) return false;
    }
  }
  return true;
}

std::vector<Distance> KineticTree::GapSlacks(const Schedule& schedule) const {
  const std::size_t k = schedule.stops.size();
  std::vector<Distance> prefix(k);
  {
    Distance acc = 0;
    for (std::size_t m = 0; m < k; ++m) {
      acc += schedule.legs[m];
      prefix[m] = acc;
    }
  }
  std::vector<Distance> slack(k + 1, kInfDistance);

  for (const AssignedRequest& a : assigned_) {
    int mp = -1;
    int mq = -1;
    for (std::size_t m = 0; m < k; ++m) {
      if (schedule.stops[m].request == a.request.id) {
        if (schedule.stops[m].type == StopType::kPickup) {
          mp = static_cast<int>(m);
        } else {
          mq = static_cast<int>(m);
        }
      }
    }
    if (mq == -1) continue;  // not in this schedule (shouldn't happen)
    if (!a.picked_up && mp != -1) {
      // Waiting slack constrains every gap up to and including the pickup.
      const Distance sw = a.deadline_odometer - odometer_ - prefix[mp];
      for (int j = 0; j <= mp; ++j) slack[j] = std::min(slack[j], sw);
      // Service slack constrains gaps strictly after the pickup, up to the
      // dropoff.
      const Distance ss = (1.0 + a.request.epsilon) * a.direct_dist -
                          (prefix[mq] - prefix[mp]);
      for (int j = mp + 1; j <= mq; ++j) slack[j] = std::min(slack[j], ss);
    } else if (a.picked_up) {
      const Distance travelled = odometer_ - a.pickup_odometer;
      const Distance ss = (1.0 + a.request.epsilon) * a.direct_dist -
                          travelled - prefix[mq];
      for (int j = 0; j <= mq; ++j) slack[j] = std::min(slack[j], ss);
    }
  }
  return slack;
}

std::vector<int> KineticTree::GapFreeSeats(const Schedule& schedule) const {
  const std::size_t k = schedule.stops.size();
  std::vector<int> free(k + 1, 0);
  int onboard = onboard_;
  free[0] = capacity_ - onboard;
  for (std::size_t m = 0; m < k; ++m) {
    const Stop& stop = schedule.stops[m];
    const AssignedRequest* a = FindAssigned(stop.request);
    const int riders = (a != nullptr) ? a->request.riders : 0;
    onboard += (stop.type == StopType::kPickup) ? riders : -riders;
    free[m + 1] = capacity_ - onboard;
  }
  return free;
}

void KineticTree::EnumerateIntoBranch(
    const Schedule& branch, const Request& request, Distance direct_dist,
    const DistFn& dist, const InsertionHooks& hooks,
    std::vector<InsertionCandidate>* out) const {
  const std::size_t k = branch.stops.size();
  const std::vector<Distance> slacks = GapSlacks(branch);
  const std::vector<int> seats = GapFreeSeats(branch);

  // prefix_point[j]: trip distance from the current location to point j
  // (point 0 = location, point m = stops[m-1]).
  std::vector<Distance> prefix_point(k + 1, 0.0);
  for (std::size_t m = 0; m < k; ++m) {
    prefix_point[m + 1] = prefix_point[m] + branch.legs[m];
  }
  auto point = [&](std::size_t j) -> VertexId {
    return j == 0 ? location_ : branch.stops[j - 1].location;
  };

  const VertexId s = request.start;
  const VertexId d = request.destination;

  // Hypothetical assignment used for exact validation of candidates. The
  // new request's waiting constraint is trivially satisfied at creation
  // (planned == actual), hence the unbounded deadline.
  AssignedRequest extra;
  extra.request = request;
  extra.direct_dist = direct_dist;
  extra.deadline_odometer = kInfDistance;

  for (std::size_t i = 0; i <= k; ++i) {
    const bool s_tail = (i == k);
    if (seats[i] < request.riders) continue;  // capacity at the s-gap

    if (hooks.prune_s) {
      SPositionContext ctx;
      ctx.ox = point(i);
      ctx.oy = s_tail ? kInvalidVertex : branch.stops[i].location;
      ctx.tail = s_tail;
      ctx.dist_tr_ox = prefix_point[i];
      ctx.leg_dist = s_tail ? 0.0 : branch.legs[i];
      ctx.detour_slack = slacks[i];
      ctx.free_seats = seats[i];
      if (hooks.prune_s(ctx)) continue;
    }

    const Distance a = dist(point(i), s);
    const Distance b = s_tail ? 0.0 : dist(s, branch.stops[i].location);
    const Distance delta_s =
        s_tail ? a : a + b - branch.legs[i];
    if (delta_s > slacks[i] + kDistTolerance) continue;  // exact feasibility
    const Distance pickup_dist = prefix_point[i] + a;

    for (std::size_t j = i; j <= k; ++j) {
      const bool d_tail = (j == k);
      // The new riders occupy every gap from i through j; stop extending
      // once a gap cannot carry them.
      if (j > i && seats[j] < request.riders) break;

      if (hooks.prune_d) {
        DPositionContext ctx;
        ctx.ox = point(j);
        ctx.oy = d_tail ? kInvalidVertex : branch.stops[j].location;
        ctx.tail = d_tail;
        ctx.dist_tr_ox = (j == i) ? pickup_dist : prefix_point[j] + delta_s;
        ctx.leg_dist = d_tail ? 0.0 : branch.legs[j];
        ctx.detour_slack = slacks[j];
        ctx.pickup_dist = pickup_dist;
        ctx.delta_s = delta_s;
        ctx.same_gap = (j == i);
        ctx.dist_ox_s = a;
        if (hooks.prune_d(ctx)) continue;
      }

      // Assemble the candidate schedule by splicing the branch's exact leg
      // values with the handful of newly computed distances, so no already-
      // known pair is recomputed.
      Schedule candidate;
      candidate.stops.reserve(k + 2);
      candidate.legs.reserve(k + 2);
      const Stop s_stop{StopType::kPickup, request.id, s};
      const Stop d_stop{StopType::kDropoff, request.id, d};

      if (j == i) {
        const Distance c1 = dist(s, d);
        const Distance c2 =
            d_tail ? 0.0 : dist(d, branch.stops[i].location);
        candidate.stops.assign(branch.stops.begin(),
                               branch.stops.begin() + i);
        candidate.legs.assign(branch.legs.begin(), branch.legs.begin() + i);
        candidate.stops.push_back(s_stop);
        candidate.legs.push_back(a);
        candidate.stops.push_back(d_stop);
        candidate.legs.push_back(c1);
        if (!d_tail) {
          candidate.stops.insert(candidate.stops.end(),
                                 branch.stops.begin() + i,
                                 branch.stops.end());
          candidate.legs.push_back(c2);
          candidate.legs.insert(candidate.legs.end(),
                                branch.legs.begin() + i + 1,
                                branch.legs.end());
        }
      } else {
        const Distance e1 = dist(branch.stops[j - 1].location, d);
        const Distance e2 =
            d_tail ? 0.0 : dist(d, branch.stops[j].location);
        candidate.stops.assign(branch.stops.begin(),
                               branch.stops.begin() + i);
        candidate.legs.assign(branch.legs.begin(), branch.legs.begin() + i);
        candidate.stops.push_back(s_stop);
        candidate.legs.push_back(a);
        candidate.stops.insert(candidate.stops.end(),
                               branch.stops.begin() + i,
                               branch.stops.begin() + j);
        candidate.legs.push_back(b);
        candidate.legs.insert(candidate.legs.end(),
                              branch.legs.begin() + i + 1,
                              branch.legs.begin() + j);
        candidate.stops.push_back(d_stop);
        candidate.legs.push_back(e1);
        if (!d_tail) {
          candidate.stops.insert(candidate.stops.end(),
                                 branch.stops.begin() + j,
                                 branch.stops.end());
          candidate.legs.push_back(e2);
          candidate.legs.insert(candidate.legs.end(),
                                branch.legs.begin() + j + 1,
                                branch.legs.end());
        }
      }
      PTAR_DCHECK(candidate.stops.size() == k + 2);
      PTAR_DCHECK(candidate.legs.size() == k + 2);

      if (!IsValidSchedule(candidate, &extra)) continue;

      InsertionCandidate result;
      result.pickup_dist = pickup_dist;
      result.total_dist = candidate.total();
      result.schedule = std::move(candidate);
      out->push_back(std::move(result));
    }
  }
}

std::vector<InsertionCandidate> KineticTree::EnumerateInsertions(
    const Request& request, Distance direct_dist, const DistFn& dist,
    const InsertionHooks& hooks) const {
  PTAR_CHECK(!stale_) << "Refresh() the tree before enumerating insertions";
  std::vector<InsertionCandidate> out;
  for (const Schedule& branch : schedules_) {
    EnumerateIntoBranch(branch, request, direct_dist, dist, hooks, &out);
  }
  // Deduplicate by stop sequence (identical insertions can arise from
  // branches sharing prefixes).
  std::set<std::vector<std::uint64_t>> seen;
  std::vector<InsertionCandidate> unique;
  unique.reserve(out.size());
  for (auto& cand : out) {
    std::vector<std::uint64_t> key;
    key.reserve(2 * cand.schedule.stops.size());
    for (const Stop& stop : cand.schedule.stops) {
      key.push_back((static_cast<std::uint64_t>(stop.type) << 32) |
                    stop.request);
      key.push_back(stop.location);
    }
    if (seen.insert(std::move(key)).second) {
      unique.push_back(std::move(cand));
    }
  }
  return unique;
}

Status KineticTree::Commit(const Request& request, Distance direct_dist,
                           Distance planned_pickup_dist, const DistFn& dist) {
  PTAR_CHECK(!stale_) << "Refresh() the tree before committing";
  // Per the paper's definition of c.S_tr, the tree keeps *all* valid
  // schedules, so the commit enumeration runs without pruning hooks.
  std::vector<InsertionCandidate> candidates =
      EnumerateInsertions(request, direct_dist, /*dist=*/dist,
                          InsertionHooks{});
  // Enforce the new request's own waiting constraint against the planned
  // pickup the rider was quoted.
  const Distance deadline = planned_pickup_dist + request.max_wait_dist;
  std::erase_if(candidates, [&](const InsertionCandidate& c) {
    return c.pickup_dist > deadline + 1e-6;
  });
  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "no valid schedule can serve the request within its constraints");
  }
  AssignedRequest assigned;
  assigned.request = request;
  assigned.direct_dist = direct_dist;
  assigned.deadline_odometer = odometer_ + deadline;
  assigned_.push_back(assigned);

  schedules_.clear();
  schedules_.reserve(candidates.size());
  for (auto& c : candidates) {
    schedules_.push_back(std::move(c.schedule));
  }
  // Bound the branch set: keep the max_branches_ shortest schedules
  // (deterministic order). The active branch is by definition among them.
  if (schedules_.size() > max_branches_) {
    std::sort(schedules_.begin(), schedules_.end(), BranchLess);
    schedules_.resize(max_branches_);
  }
  RecomputeActive();
  return Status::OK();
}

void KineticTree::MoveTo(VertexId new_location, Distance driven) {
  PTAR_DCHECK(driven >= 0.0);
  odometer_ += driven;
  location_ = new_location;
  Schedule& active = schedules_[active_index_];
  if (!active.stops.empty()) {
    active.legs[0] = std::max<Distance>(0.0, active.legs[0] - driven);
    if (schedules_.size() > 1) stale_ = true;
  }
}

StatusOr<KineticTree::StopEvent> KineticTree::ArriveAtNextStop() {
  Schedule& active = schedules_[active_index_];
  if (active.stops.empty()) {
    return Status::FailedPrecondition("vehicle has no scheduled stop");
  }
  const Stop served = active.stops[0];
  if (served.location != location_) {
    return Status::FailedPrecondition(
        "vehicle is not at the next scheduled stop");
  }

  StopEvent event;
  event.request = served.request;
  event.type = served.type;

  // Update rider bookkeeping.
  bool found = false;
  for (std::size_t idx = 0; idx < assigned_.size(); ++idx) {
    AssignedRequest& a = assigned_[idx];
    if (a.request.id != served.request) continue;
    found = true;
    event.riders = a.request.riders;
    if (served.type == StopType::kPickup) {
      PTAR_CHECK(!a.picked_up);
      a.picked_up = true;
      a.pickup_odometer = odometer_;
      onboard_ += a.request.riders;
      PTAR_CHECK(onboard_ <= capacity_);
    } else {
      PTAR_CHECK(a.picked_up);
      onboard_ -= a.request.riders;
      PTAR_CHECK(onboard_ >= 0);
      assigned_.erase(assigned_.begin() + idx);
    }
    break;
  }
  PTAR_CHECK(found) << "served stop references an unknown request";

  // Branch surgery: keep only branches that begin with the served stop and
  // pop their head. The popped first leg was (approximately) zero; the new
  // first leg dist(stop, stops[1]) was already exact.
  std::vector<Schedule> survivors;
  for (Schedule& schedule : schedules_) {
    if (schedule.stops.empty() || !(schedule.stops[0] == served)) continue;
    schedule.stops.erase(schedule.stops.begin());
    schedule.legs.erase(schedule.legs.begin());
    bool duplicate = false;
    for (const Schedule& kept : survivors) {
      if (kept.SameStops(schedule)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) survivors.push_back(std::move(schedule));
  }
  PTAR_CHECK(!survivors.empty()) << "active branch must survive its own stop";

  // Re-validate (non-active branches may have drifted out of budget while
  // the vehicle drove).
  std::vector<Schedule> valid;
  for (Schedule& schedule : survivors) {
    if (IsValidSchedule(schedule, nullptr)) valid.push_back(std::move(schedule));
  }
  PTAR_CHECK(!valid.empty()) << "no valid schedule after serving a stop";
  schedules_ = std::move(valid);

  if (assigned_.empty()) {
    PTAR_CHECK(schedules_.size() == 1 && schedules_[0].stops.empty());
  }
  stale_ = false;
  RecomputeActive();
  return event;
}

void KineticTree::Refresh(const DistFn& dist) {
  if (!stale_) return;
  std::vector<Schedule> valid;
  valid.reserve(schedules_.size());
  for (std::size_t i = 0; i < schedules_.size(); ++i) {
    Schedule& schedule = schedules_[i];
    if (i != active_index_ && !schedule.stops.empty()) {
      schedule.legs[0] = dist(location_, schedule.stops[0].location);
    }
    if (IsValidSchedule(schedule, nullptr)) {
      valid.push_back(std::move(schedule));
    } else {
      PTAR_CHECK(i != active_index_) << "active branch became invalid";
    }
  }
  PTAR_CHECK(!valid.empty());
  schedules_ = std::move(valid);
  stale_ = false;
  RecomputeActive();
}

Status KineticTree::RebuildBranches(const DistFn& dist) {
  if (assigned_.empty()) {
    // Canonical empty-tree shape regardless of how corrupted it was.
    schedules_.clear();
    schedules_.push_back(Schedule{});
    active_index_ = 0;
    stale_ = false;
    return Status::OK();
  }
  std::vector<Schedule> rebuilt;
  rebuilt.reserve(schedules_.size());
  for (Schedule& branch : schedules_) {
    branch.legs.clear();
    branch.legs.reserve(branch.stops.size());
    VertexId prev = location_;
    bool reachable = true;
    for (const Stop& stop : branch.stops) {
      const Distance leg = dist(prev, stop.location);
      if (leg == kInfDistance) {
        reachable = false;
        break;
      }
      branch.legs.push_back(leg);
      prev = stop.location;
    }
    if (!reachable || !IsValidSchedule(branch, nullptr)) continue;
    bool duplicate = false;
    for (const Schedule& kept : rebuilt) {
      if (kept.SameStops(branch)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) rebuilt.push_back(std::move(branch));
  }
  if (rebuilt.empty()) {
    return Status::Internal("no valid branch survived rebuild for vehicle " +
                            std::to_string(vehicle_));
  }
  std::sort(rebuilt.begin(), rebuilt.end(), BranchLess);
  schedules_ = std::move(rebuilt);
  stale_ = false;
  RecomputeActive();
  return Status::OK();
}

void KineticTree::CorruptLegForTest(std::size_t branch, std::size_t leg,
                                    Distance value) {
  PTAR_CHECK(branch < schedules_.size());
  PTAR_CHECK(leg < schedules_[branch].legs.size());
  schedules_[branch].legs[leg] = value;
}

std::vector<std::pair<CellId, KineticEdgeEntry>>
KineticTree::BuildRegistration(const GridIndex& grid) const {
  // Merge duplicate (cell, o_x, o_y) entries conservatively: max capacity,
  // max detour, min dist_tr — every merge direction keeps the cell-level
  // pruning lemmas sound.
  std::map<std::tuple<CellId, VertexId, VertexId>, KineticEdgeEntry> merged;
  auto add = [&](CellId cell, const KineticEdgeEntry& entry) {
    auto [it, inserted] =
        merged.try_emplace({cell, entry.ox, entry.oy}, entry);
    if (!inserted) {
      KineticEdgeEntry& e = it->second;
      e.capacity = std::max(e.capacity, entry.capacity);
      e.detour = std::max(e.detour, entry.detour);
      e.dist_tr = std::min(e.dist_tr, entry.dist_tr);
    }
  };

  for (const Schedule& branch : schedules_) {
    if (branch.stops.empty()) continue;
    const std::size_t k = branch.stops.size();
    const std::vector<Distance> slacks = GapSlacks(branch);
    const std::vector<int> seats = GapFreeSeats(branch);
    Distance prefix = 0.0;
    for (std::size_t j = 0; j <= k; ++j) {
      KineticEdgeEntry entry;
      entry.vehicle = vehicle_;
      entry.capacity = seats[j];
      entry.detour = slacks[j];
      entry.dist_tr = prefix;
      entry.tail = (j == k);
      entry.ox = (j == 0) ? location_ : branch.stops[j - 1].location;
      entry.oy = entry.tail ? kInvalidVertex : branch.stops[j].location;
      entry.leg_dist = entry.tail ? 0.0 : branch.legs[j];
      add(grid.CellOfVertex(entry.ox), entry);
      if (!entry.tail) add(grid.CellOfVertex(entry.oy), entry);
      if (j < k) prefix += branch.legs[j];
    }
  }

  std::vector<std::pair<CellId, KineticEdgeEntry>> out;
  out.reserve(merged.size());
  for (const auto& [key, entry] : merged) {
    out.emplace_back(std::get<0>(key), entry);
  }
  return out;
}

std::size_t KineticTree::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const Schedule& schedule : schedules_) {
    bytes += schedule.stops.capacity() * sizeof(Stop) +
             schedule.legs.capacity() * sizeof(Distance);
  }
  bytes += assigned_.capacity() * sizeof(AssignedRequest);
  return bytes;
}

}  // namespace ptar
