#include "kinetic/kinetic_tree.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>
#include <utility>

namespace ptar {

namespace {

/// Numeric slack for floating-point distance comparisons.
constexpr Distance kDistTolerance = 1e-6;

/// Deterministic branch order: shorter total first, ties by stop sequence.
bool BranchLess(const Schedule& a, const Schedule& b) {
  const Distance ta = a.total();
  const Distance tb = b.total();
  if (ta != tb) return ta < tb;
  const std::size_t n = std::min(a.stops.size(), b.stops.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Stop& x = a.stops[i];
    const Stop& y = b.stops[i];
    if (x.request != y.request) return x.request < y.request;
    if (x.type != y.type) return x.type < y.type;
    if (x.location != y.location) return x.location < y.location;
  }
  return a.stops.size() < b.stops.size();
}

/// FNV-1a over the stop sequence (legs excluded, like Schedule::SameStops).
std::uint64_t StopsHash(const Schedule& schedule) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Stop& stop : schedule.stops) {
    mix(static_cast<std::uint64_t>(stop.type));
    mix(stop.request);
    mix(stop.location);
  }
  return h;
}

/// Open-addressed first-occurrence filter keyed by stop sequence. Collisions
/// fall back to an exact SameStops comparison against the kept candidate, so
/// the verdict never depends on the hash. Allocation-free once warmed up
/// (lives in thread_local storage; enumeration runs concurrently on a frozen
/// tree from matcher workers).
class StopSeqDedup {
 public:
  void Reset(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, kEmptySlot);
    hashes_.resize(cap);
    mask_ = cap - 1;
  }

  /// True iff `schedule` (about to become unique[unique.size()]) has not
  /// been seen; records it when new.
  bool FirstOccurrence(const Schedule& schedule,
                       const std::vector<InsertionCandidate>& unique) {
    const std::uint64_t hash = StopsHash(schedule);
    std::size_t i = hash & mask_;
    while (slots_[i] != kEmptySlot) {
      if (hashes_[i] == hash &&
          unique[slots_[i]].schedule.SameStops(schedule)) {
        return false;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = static_cast<std::uint32_t>(unique.size());
    hashes_[i] = hash;
    return true;
  }

 private:
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;
  std::vector<std::uint32_t> slots_;
  std::vector<std::uint64_t> hashes_;
  std::size_t mask_ = 0;
};

}  // namespace

KineticTree::KineticTree(VehicleId vehicle, VertexId location, int capacity,
                         std::size_t max_branches)
    : vehicle_(vehicle),
      location_(location),
      capacity_(capacity),
      max_branches_(max_branches) {
  PTAR_CHECK(capacity >= 1);
  PTAR_CHECK(max_branches >= 1);
  // The idle (empty) schedule is implicit: the store stays empty, so an
  // idle vehicle owns zero heap.
}

Schedule KineticTree::BranchSchedule(std::size_t b) const {
  Schedule out;
  if (store_.empty()) {
    PTAR_DCHECK(b == 0);
    return out;  // the idle branch
  }
  PTAR_CHECK(b < store_.num_leaves());
  store_.Materialize(store_.leaf(b), &out);
  return out;
}

std::vector<Schedule> KineticTree::Schedules() const {
  std::vector<Schedule> out(num_branches());
  if (store_.empty()) return out;  // one empty schedule
  for (std::size_t b = 0; b < out.size(); ++b) {
    store_.Materialize(store_.leaf(b), &out[b]);
  }
  return out;
}

Distance KineticTree::CurrentTotal() const {
  return store_.empty() ? 0.0 : store_.PathTotal(store_.leaf(active_index_));
}

VertexId KineticTree::NextStopLocation() const {
  if (store_.empty()) return kInvalidVertex;
  return store_.location(store_.FirstOnPath(store_.leaf(active_index_)));
}

void KineticTree::RecomputeActive() {
  if (store_.empty()) {
    active_index_ = 0;
    return;
  }
  active_index_ = 0;
  Distance best = store_.PathTotal(store_.leaf(0));
  for (std::size_t i = 1; i < store_.num_leaves(); ++i) {
    const Distance t = store_.PathTotal(store_.leaf(i));
    if (t < best) {
      best = t;
      active_index_ = i;
    }
  }
}

const AssignedRequest* KineticTree::FindAssigned(RequestId id) const {
  for (const AssignedRequest& a : assigned_) {
    if (a.request.id == id) return &a;
  }
  return nullptr;
}

int KineticTree::RidersOf(RequestId id) const {
  const AssignedRequest* a = FindAssigned(id);
  return a != nullptr ? a->request.riders : 0;
}

void KineticTree::LoadBranches(const std::vector<Schedule>& schedules) {
  store_.Clear();
  for (const Schedule& schedule : schedules) {
    if (schedule.stops.empty()) continue;  // the idle branch is implicit
    store_.AddBranch(schedule,
                     [this](RequestId id) { return RidersOf(id); });
  }
}

bool KineticTree::IsValidSchedule(const Schedule& schedule,
                                  const AssignedRequest* extra) const {
  PTAR_DCHECK(schedule.stops.size() == schedule.legs.size());
  const std::size_t k = schedule.stops.size();
  const std::size_t num_requests = assigned_.size() + (extra != nullptr);

  // Scratch is thread-local, not a member: this runs per candidate on the
  // enumeration hot path, concurrently on the same (frozen) tree from
  // matcher workers.
  thread_local std::vector<Distance> prefix;
  thread_local std::vector<int> pickup_pos;
  thread_local std::vector<int> dropoff_pos;
  thread_local std::vector<int> stop_slot;
  prefix.resize(k);
  stop_slot.resize(k);
  pickup_pos.assign(num_requests, -1);
  dropoff_pos.assign(num_requests, -1);

  // Requests are addressed by slot: position in assigned_, extra last.
  auto slot_of = [&](RequestId id) -> int {
    for (std::size_t i = 0; i < assigned_.size(); ++i) {
      if (assigned_[i].request.id == id) return static_cast<int>(i);
    }
    if (extra != nullptr && extra->request.id == id) {
      return static_cast<int>(assigned_.size());
    }
    return -1;
  };
  auto request_at = [&](std::size_t slot) -> const AssignedRequest& {
    return slot < assigned_.size() ? assigned_[slot] : *extra;
  };

  // One pass: prefix distances, each request's stop positions, and slot of
  // every stop. Strays (stops of unknown requests) and duplicate stops
  // reject immediately.
  {
    Distance acc = 0;
    for (std::size_t i = 0; i < k; ++i) {
      acc += schedule.legs[i];
      prefix[i] = acc;
      const Stop& stop = schedule.stops[i];
      const int slot = slot_of(stop.request);
      if (slot < 0) return false;  // stray
      stop_slot[i] = slot;
      if (stop.type == StopType::kPickup) {
        if (pickup_pos[slot] != -1) return false;  // duplicate pickup
        pickup_pos[slot] = static_cast<int>(i);
      } else {
        if (dropoff_pos[slot] != -1) return false;  // duplicate dropoff
        dropoff_pos[slot] = static_cast<int>(i);
      }
    }
  }

  std::size_t expected_stops = 0;
  for (std::size_t slot = 0; slot < num_requests; ++slot) {
    const AssignedRequest& a = request_at(slot);
    const int mp = pickup_pos[slot];
    const int mq = dropoff_pos[slot];
    if (mq == -1) return false;  // dropoff missing
    if (a.picked_up) {
      // Riders on board: only a dropoff may appear.
      if (mp != -1) return false;
      // Service constraint from the actual pickup point.
      const Distance travelled = odometer_ - a.pickup_odometer;
      if (travelled + prefix[mq] >
          (1.0 + a.request.epsilon) * a.direct_dist + kDistTolerance) {
        return false;
      }
      expected_stops += 1;
    } else {
      // Point order: pickup exists and precedes the dropoff.
      if (mp == -1 || mp > mq) return false;
      // Waiting-time constraint (odometer form).
      if (odometer_ + prefix[mp] > a.deadline_odometer + kDistTolerance) {
        return false;
      }
      // Service constraint.
      if (prefix[mq] - prefix[mp] >
          (1.0 + a.request.epsilon) * a.direct_dist + kDistTolerance) {
        return false;
      }
      expected_stops += 2;
    }
  }
  if (k != expected_stops) return false;  // strays

  // Capacity along the whole schedule.
  int onboard = onboard_;
  for (std::size_t i = 0; i < k; ++i) {
    const AssignedRequest& a = request_at(stop_slot[i]);
    if (schedule.stops[i].type == StopType::kPickup) {
      onboard += a.request.riders;
      if (onboard > capacity_) return false;
    } else {
      onboard -= a.request.riders;
      if (onboard < 0) return false;
    }
  }
  return true;
}

std::vector<Distance> KineticTree::GapSlacks(const Schedule& schedule) const {
  const std::size_t k = schedule.stops.size();
  std::vector<Distance> prefix(k);
  {
    Distance acc = 0;
    for (std::size_t m = 0; m < k; ++m) {
      acc += schedule.legs[m];
      prefix[m] = acc;
    }
  }
  std::vector<Distance> slack(k + 1, kInfDistance);

  for (const AssignedRequest& a : assigned_) {
    int mp = -1;
    int mq = -1;
    for (std::size_t m = 0; m < k; ++m) {
      if (schedule.stops[m].request == a.request.id) {
        if (schedule.stops[m].type == StopType::kPickup) {
          mp = static_cast<int>(m);
        } else {
          mq = static_cast<int>(m);
        }
      }
    }
    if (mq == -1) continue;  // not in this schedule (shouldn't happen)
    if (!a.picked_up && mp != -1) {
      // Waiting slack constrains every gap up to and including the pickup.
      const Distance sw = a.deadline_odometer - odometer_ - prefix[mp];
      for (int j = 0; j <= mp; ++j) slack[j] = std::min(slack[j], sw);
      // Service slack constrains gaps strictly after the pickup, up to the
      // dropoff.
      const Distance ss = (1.0 + a.request.epsilon) * a.direct_dist -
                          (prefix[mq] - prefix[mp]);
      for (int j = mp + 1; j <= mq; ++j) slack[j] = std::min(slack[j], ss);
    } else if (a.picked_up) {
      const Distance travelled = odometer_ - a.pickup_odometer;
      const Distance ss = (1.0 + a.request.epsilon) * a.direct_dist -
                          travelled - prefix[mq];
      for (int j = 0; j <= mq; ++j) slack[j] = std::min(slack[j], ss);
    }
  }
  return slack;
}

std::vector<int> KineticTree::GapFreeSeats(const Schedule& schedule) const {
  const std::size_t k = schedule.stops.size();
  std::vector<int> free(k + 1, 0);
  int onboard = onboard_;
  free[0] = capacity_ - onboard;
  for (std::size_t m = 0; m < k; ++m) {
    const Stop& stop = schedule.stops[m];
    const AssignedRequest* a = FindAssigned(stop.request);
    const int riders = (a != nullptr) ? a->request.riders : 0;
    onboard += (stop.type == StopType::kPickup) ? riders : -riders;
    free[m + 1] = capacity_ - onboard;
  }
  return free;
}

void KineticTree::EnumerateIntoBranch(
    const Schedule& branch, const Request& request, Distance direct_dist,
    const DistFn& dist, const InsertionHooks& hooks,
    std::vector<InsertionCandidate>* out) const {
  const std::size_t k = branch.stops.size();
  const std::vector<Distance> slacks = GapSlacks(branch);
  const std::vector<int> seats = GapFreeSeats(branch);

  // prefix_point[j]: trip distance from the current location to point j
  // (point 0 = location, point m = stops[m-1]).
  std::vector<Distance> prefix_point(k + 1, 0.0);
  for (std::size_t m = 0; m < k; ++m) {
    prefix_point[m + 1] = prefix_point[m] + branch.legs[m];
  }
  auto point = [&](std::size_t j) -> VertexId {
    return j == 0 ? location_ : branch.stops[j - 1].location;
  };

  const VertexId s = request.start;
  const VertexId d = request.destination;

  // Hypothetical assignment used for exact validation of candidates. The
  // new request's waiting constraint is trivially satisfied at creation
  // (planned == actual), hence the unbounded deadline.
  AssignedRequest extra;
  extra.request = request;
  extra.direct_dist = direct_dist;
  extra.deadline_odometer = kInfDistance;

  for (std::size_t i = 0; i <= k; ++i) {
    const bool s_tail = (i == k);
    if (seats[i] < request.riders) continue;  // capacity at the s-gap

    if (hooks.prune_s) {
      SPositionContext ctx;
      ctx.ox = point(i);
      ctx.oy = s_tail ? kInvalidVertex : branch.stops[i].location;
      ctx.tail = s_tail;
      ctx.dist_tr_ox = prefix_point[i];
      ctx.leg_dist = s_tail ? 0.0 : branch.legs[i];
      ctx.detour_slack = slacks[i];
      ctx.free_seats = seats[i];
      if (hooks.prune_s(ctx)) continue;
    }

    const Distance a = dist(point(i), s);
    const Distance b = s_tail ? 0.0 : dist(s, branch.stops[i].location);
    const Distance delta_s =
        s_tail ? a : a + b - branch.legs[i];
    if (delta_s > slacks[i] + kDistTolerance) continue;  // exact feasibility
    const Distance pickup_dist = prefix_point[i] + a;

    for (std::size_t j = i; j <= k; ++j) {
      const bool d_tail = (j == k);
      // The new riders occupy every gap from i through j; stop extending
      // once a gap cannot carry them.
      if (j > i && seats[j] < request.riders) break;

      if (hooks.prune_d) {
        DPositionContext ctx;
        ctx.ox = point(j);
        ctx.oy = d_tail ? kInvalidVertex : branch.stops[j].location;
        ctx.tail = d_tail;
        ctx.dist_tr_ox = (j == i) ? pickup_dist : prefix_point[j] + delta_s;
        ctx.leg_dist = d_tail ? 0.0 : branch.legs[j];
        ctx.detour_slack = slacks[j];
        ctx.pickup_dist = pickup_dist;
        ctx.delta_s = delta_s;
        ctx.same_gap = (j == i);
        ctx.dist_ox_s = a;
        if (hooks.prune_d(ctx)) continue;
      }

      // Assemble the candidate schedule by splicing the branch's exact leg
      // values with the handful of newly computed distances, so no already-
      // known pair is recomputed.
      Schedule candidate;
      candidate.stops.reserve(k + 2);
      candidate.legs.reserve(k + 2);
      const Stop s_stop{StopType::kPickup, request.id, s};
      const Stop d_stop{StopType::kDropoff, request.id, d};

      if (j == i) {
        const Distance c1 = dist(s, d);
        const Distance c2 =
            d_tail ? 0.0 : dist(d, branch.stops[i].location);
        candidate.stops.assign(branch.stops.begin(),
                               branch.stops.begin() + i);
        candidate.legs.assign(branch.legs.begin(), branch.legs.begin() + i);
        candidate.stops.push_back(s_stop);
        candidate.legs.push_back(a);
        candidate.stops.push_back(d_stop);
        candidate.legs.push_back(c1);
        if (!d_tail) {
          candidate.stops.insert(candidate.stops.end(),
                                 branch.stops.begin() + i,
                                 branch.stops.end());
          candidate.legs.push_back(c2);
          candidate.legs.insert(candidate.legs.end(),
                                branch.legs.begin() + i + 1,
                                branch.legs.end());
        }
      } else {
        const Distance e1 = dist(branch.stops[j - 1].location, d);
        const Distance e2 =
            d_tail ? 0.0 : dist(d, branch.stops[j].location);
        candidate.stops.assign(branch.stops.begin(),
                               branch.stops.begin() + i);
        candidate.legs.assign(branch.legs.begin(), branch.legs.begin() + i);
        candidate.stops.push_back(s_stop);
        candidate.legs.push_back(a);
        candidate.stops.insert(candidate.stops.end(),
                               branch.stops.begin() + i,
                               branch.stops.begin() + j);
        candidate.legs.push_back(b);
        candidate.legs.insert(candidate.legs.end(),
                              branch.legs.begin() + i + 1,
                              branch.legs.begin() + j);
        candidate.stops.push_back(d_stop);
        candidate.legs.push_back(e1);
        if (!d_tail) {
          candidate.stops.insert(candidate.stops.end(),
                                 branch.stops.begin() + j,
                                 branch.stops.end());
          candidate.legs.push_back(e2);
          candidate.legs.insert(candidate.legs.end(),
                                branch.legs.begin() + j + 1,
                                branch.legs.end());
        }
      }
      PTAR_DCHECK(candidate.stops.size() == k + 2);
      PTAR_DCHECK(candidate.legs.size() == k + 2);

      if (!IsValidSchedule(candidate, &extra)) continue;

      InsertionCandidate result;
      result.pickup_dist = pickup_dist;
      result.total_dist = candidate.total();
      result.schedule = std::move(candidate);
      out->push_back(std::move(result));
    }
  }
}

std::vector<InsertionCandidate> KineticTree::EnumerateInsertions(
    const Request& request, Distance direct_dist, const DistFn& dist,
    const InsertionHooks& hooks) const {
  PTAR_CHECK(!stale_) << "Refresh() the tree before enumerating insertions";
  std::vector<InsertionCandidate> out;
  if (store_.empty()) {
    EnumerateIntoBranch(Schedule{}, request, direct_dist, dist, hooks, &out);
  } else {
    thread_local Schedule branch;
    for (std::size_t b = 0; b < store_.num_leaves(); ++b) {
      store_.Materialize(store_.leaf(b), &branch);
      EnumerateIntoBranch(branch, request, direct_dist, dist, hooks, &out);
    }
  }
  // Deduplicate by stop sequence (identical insertions can arise from
  // branches sharing prefixes), keeping the first occurrence.
  thread_local StopSeqDedup seen;
  seen.Reset(out.size());
  std::vector<InsertionCandidate> unique;
  unique.reserve(out.size());
  for (auto& cand : out) {
    if (seen.FirstOccurrence(cand.schedule, unique)) {
      unique.push_back(std::move(cand));
    }
  }
  return unique;
}

Status KineticTree::Commit(const Request& request, Distance direct_dist,
                           Distance planned_pickup_dist, const DistFn& dist) {
  PTAR_CHECK(!stale_) << "Refresh() the tree before committing";
  // Per the paper's definition of c.S_tr, the tree keeps *all* valid
  // schedules, so the commit enumeration runs without pruning hooks.
  std::vector<InsertionCandidate> candidates =
      EnumerateInsertions(request, direct_dist, /*dist=*/dist,
                          InsertionHooks{});
  // Enforce the new request's own waiting constraint against the planned
  // pickup the rider was quoted.
  const Distance deadline = planned_pickup_dist + request.max_wait_dist;
  std::erase_if(candidates, [&](const InsertionCandidate& c) {
    return c.pickup_dist > deadline + 1e-6;
  });
  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "no valid schedule can serve the request within its constraints");
  }
  AssignedRequest assigned;
  assigned.request = request;
  assigned.direct_dist = direct_dist;
  assigned.deadline_odometer = odometer_ + deadline;
  assigned_.push_back(assigned);

  std::vector<Schedule> branches;
  branches.reserve(candidates.size());
  for (auto& c : candidates) {
    branches.push_back(std::move(c.schedule));
  }
  if (branches.size() > max_branches_) {
    // Bounded enumeration with best-branch retention (DESIGN.md §14): keep
    // every skyline-supporting branch under (total, first-leg) — any
    // branch some rider-facing tradeoff could prefer — then fill with the
    // shortest remaining schedules in deterministic order. The active
    // (shortest) branch sorts first and is always on the skyline.
    ++cap_hits_;
    branches_dropped_ += branches.size() - max_branches_;
    std::sort(branches.begin(), branches.end(), BranchLess);
    std::vector<char> skyline(branches.size(), 0);
    std::size_t num_skyline = 0;
    Distance best_first_leg = kInfDistance;
    for (std::size_t i = 0; i < branches.size(); ++i) {
      const Distance first_leg =
          branches[i].legs.empty() ? 0.0 : branches[i].legs[0];
      if (first_leg < best_first_leg) {
        skyline[i] = 1;
        best_first_leg = first_leg;
        ++num_skyline;
      }
    }
    std::vector<Schedule> kept;
    kept.reserve(max_branches_);
    std::size_t fill =
        max_branches_ > num_skyline ? max_branches_ - num_skyline : 0;
    for (std::size_t i = 0;
         i < branches.size() && kept.size() < max_branches_; ++i) {
      if (skyline[i]) {
        kept.push_back(std::move(branches[i]));
      } else if (fill > 0) {
        kept.push_back(std::move(branches[i]));
        --fill;
      }
    }
    branches = std::move(kept);
  }
  LoadBranches(branches);
  RecomputeActive();
  return Status::OK();
}

void KineticTree::MoveTo(VertexId new_location, Distance driven) {
  PTAR_DCHECK(driven >= 0.0);
  odometer_ += driven;
  location_ = new_location;
  if (!store_.empty()) {
    // One in-place write updates the shared first-leg node: every branch
    // driving through the same first stop sees the new distance. Branches
    // through a *different* first stop still measure from the old
    // location and go stale until Refresh().
    const BranchStore::NodeId first =
        store_.FirstOnPath(store_.leaf(active_index_));
    store_.set_leg(first,
                   std::max<Distance>(0.0, store_.leg(first) - driven));
    if (store_.num_leaves() > 1) stale_ = true;
  }
}

StatusOr<KineticTree::StopEvent> KineticTree::ArriveAtNextStop() {
  using NodeId = BranchStore::NodeId;
  if (store_.empty()) {
    return Status::FailedPrecondition("vehicle has no scheduled stop");
  }
  const NodeId active_first = store_.FirstOnPath(store_.leaf(active_index_));
  const Stop served = store_.StopOf(active_first);
  if (served.location != location_) {
    return Status::FailedPrecondition(
        "vehicle is not at the next scheduled stop");
  }

  StopEvent event;
  event.request = served.request;
  event.type = served.type;

  // Update rider bookkeeping.
  bool found = false;
  for (std::size_t idx = 0; idx < assigned_.size(); ++idx) {
    AssignedRequest& a = assigned_[idx];
    if (a.request.id != served.request) continue;
    found = true;
    event.riders = a.request.riders;
    if (served.type == StopType::kPickup) {
      PTAR_CHECK(!a.picked_up);
      a.picked_up = true;
      a.pickup_odometer = odometer_;
      onboard_ += a.request.riders;
      PTAR_CHECK(onboard_ <= capacity_);
    } else {
      PTAR_CHECK(a.picked_up);
      onboard_ -= a.request.riders;
      PTAR_CHECK(onboard_ >= 0);
      assigned_.erase(assigned_.begin() + idx);
    }
    break;
  }
  PTAR_CHECK(found) << "served stop references an unknown request";

  // Branch surgery. Fast (normal) path: the served stop maps to exactly one
  // root child, so advancing is copy-free — drop the leaves of the other
  // subtrees, recycle those subtrees into the arena, and promote the served
  // node's children to root children in place.
  bool unique_match = true;
  for (NodeId c = store_.root_child_head(); c != BranchStore::kNilNode;
       c = store_.next_sibling(c)) {
    if (c != active_first && store_.StopOf(c) == served) {
      unique_match = false;
      break;
    }
  }
  if (unique_match) {
    store_.RemoveLeavesNotUnder(active_first);
    PTAR_CHECK(store_.num_leaves() > 0)
        << "active branch must survive its own stop";
    store_.AdvanceRoot(active_first);
  } else {
    // Defensive slow path: several root children carry the served stop by
    // value (bit-different first legs — does not arise from the normal
    // commit/refresh flow). Fall back to surgery on materialized branches.
    std::vector<Schedule> survivors;
    Schedule scratch;
    for (std::size_t b = 0; b < store_.num_leaves(); ++b) {
      store_.Materialize(store_.leaf(b), &scratch);
      if (scratch.stops.empty() || !(scratch.stops[0] == served)) continue;
      scratch.stops.erase(scratch.stops.begin());
      scratch.legs.erase(scratch.legs.begin());
      bool duplicate = false;
      for (const Schedule& kept : survivors) {
        if (kept.SameStops(scratch)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) survivors.push_back(scratch);
    }
    PTAR_CHECK(!survivors.empty())
        << "active branch must survive its own stop";
    LoadBranches(survivors);
  }

  // Re-validate (non-active branches may have drifted out of budget while
  // the vehicle drove).
  thread_local Schedule branch;
  for (std::size_t b = store_.num_leaves(); b-- > 0;) {
    store_.Materialize(store_.leaf(b), &branch);
    if (!IsValidSchedule(branch, nullptr)) store_.RemoveLeaf(b);
  }
  if (assigned_.empty()) {
    // Canonical idle shape: nothing left to drive, zero heap branches.
    PTAR_CHECK(store_.empty());
  } else {
    PTAR_CHECK(!store_.empty()) << "no valid schedule after serving a stop";
  }
  stale_ = false;
  RecomputeActive();
  return event;
}

void KineticTree::Refresh(const DistFn& dist) {
  using NodeId = BranchStore::NodeId;
  if (!stale_) return;
  if (store_.empty()) {
    stale_ = false;
    return;
  }
  // Repair shared first legs in place: one distance per distinct non-active
  // root child, not one per branch. The active root child's leg is already
  // exact (MoveTo shrinks it along the driven path).
  const NodeId active_first = store_.FirstOnPath(store_.leaf(active_index_));
  for (NodeId c = store_.root_child_head(); c != BranchStore::kNilNode;
       c = store_.next_sibling(c)) {
    if (c == active_first) continue;
    store_.set_leg(c, dist(location_, store_.location(c)));
  }
  // Drop branches that drifted out of budget; the driven branch must stay.
  const NodeId active_leaf = store_.leaf(active_index_);
  thread_local Schedule branch;
  for (std::size_t b = store_.num_leaves(); b-- > 0;) {
    store_.Materialize(store_.leaf(b), &branch);
    if (IsValidSchedule(branch, nullptr)) continue;
    PTAR_CHECK(store_.leaf(b) != active_leaf)
        << "active branch became invalid";
    store_.RemoveLeaf(b);
  }
  PTAR_CHECK(!store_.empty());
  stale_ = false;
  RecomputeActive();
}

Status KineticTree::RebuildBranches(const DistFn& dist) {
  if (assigned_.empty()) {
    // Canonical empty-tree shape regardless of how corrupted it was.
    store_.Clear();
    active_index_ = 0;
    stale_ = false;
    return Status::OK();
  }
  std::vector<Schedule> branches = Schedules();
  std::vector<Schedule> rebuilt;
  rebuilt.reserve(branches.size());
  for (Schedule& branch : branches) {
    branch.legs.clear();
    branch.legs.reserve(branch.stops.size());
    VertexId prev = location_;
    bool reachable = true;
    for (const Stop& stop : branch.stops) {
      const Distance leg = dist(prev, stop.location);
      if (leg == kInfDistance) {
        reachable = false;
        break;
      }
      branch.legs.push_back(leg);
      prev = stop.location;
    }
    if (!reachable || !IsValidSchedule(branch, nullptr)) continue;
    bool duplicate = false;
    for (const Schedule& kept : rebuilt) {
      if (kept.SameStops(branch)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) rebuilt.push_back(std::move(branch));
  }
  if (rebuilt.empty()) {
    return Status::Internal("no valid branch survived rebuild for vehicle " +
                            std::to_string(vehicle_));
  }
  std::sort(rebuilt.begin(), rebuilt.end(), BranchLess);
  LoadBranches(rebuilt);
  stale_ = false;
  RecomputeActive();
  return Status::OK();
}

void KineticTree::CorruptLegForTest(std::size_t branch, std::size_t leg,
                                    Distance value) {
  PTAR_CHECK(branch < num_branches());
  PTAR_CHECK(!store_.empty());
  std::vector<BranchStore::NodeId> path;
  store_.MaterializePath(store_.leaf(branch), &path);
  PTAR_CHECK(leg < path.size());
  store_.set_leg(path[leg], value);
}

std::vector<std::pair<CellId, KineticEdgeEntry>>
KineticTree::BuildRegistration(const GridIndex& grid) const {
  // Merge duplicate (cell, o_x, o_y) entries conservatively: max capacity,
  // max detour, min dist_tr — every merge direction keeps the cell-level
  // pruning lemmas sound.
  std::map<std::tuple<CellId, VertexId, VertexId>, KineticEdgeEntry> merged;
  auto add = [&](CellId cell, const KineticEdgeEntry& entry) {
    auto [it, inserted] =
        merged.try_emplace({cell, entry.ox, entry.oy}, entry);
    if (!inserted) {
      KineticEdgeEntry& e = it->second;
      e.capacity = std::max(e.capacity, entry.capacity);
      e.detour = std::max(e.detour, entry.detour);
      e.dist_tr = std::min(e.dist_tr, entry.dist_tr);
    }
  };

  Schedule branch;
  for (std::size_t b = 0; b < store_.num_leaves(); ++b) {
    store_.Materialize(store_.leaf(b), &branch);
    if (branch.stops.empty()) continue;
    const std::size_t k = branch.stops.size();
    const std::vector<Distance> slacks = GapSlacks(branch);
    const std::vector<int> seats = GapFreeSeats(branch);
    Distance prefix = 0.0;
    for (std::size_t j = 0; j <= k; ++j) {
      KineticEdgeEntry entry;
      entry.vehicle = vehicle_;
      entry.capacity = seats[j];
      entry.detour = slacks[j];
      entry.dist_tr = prefix;
      entry.tail = (j == k);
      entry.ox = (j == 0) ? location_ : branch.stops[j - 1].location;
      entry.oy = entry.tail ? kInvalidVertex : branch.stops[j].location;
      entry.leg_dist = entry.tail ? 0.0 : branch.legs[j];
      add(grid.CellOfVertex(entry.ox), entry);
      if (!entry.tail) add(grid.CellOfVertex(entry.oy), entry);
      if (j < k) prefix += branch.legs[j];
    }
  }

  std::vector<std::pair<CellId, KineticEdgeEntry>> out;
  out.reserve(merged.size());
  for (const auto& [key, entry] : merged) {
    out.emplace_back(std::get<0>(key), entry);
  }
  return out;
}

std::size_t KineticTree::MemoryBytes() const {
  return sizeof(*this) + store_.HeapBytes() +
         assigned_.capacity() * sizeof(AssignedRequest);
}

KineticTree::ArenaStats KineticTree::arena_stats() const {
  ArenaStats stats;
  stats.heap_bytes = MemoryBytes() - sizeof(*this);
  stats.live_nodes = store_.live_nodes();
  stats.node_slots = store_.slots();
  stats.branches = num_branches();
  return stats;
}

}  // namespace ptar
