// City day: replay a synthetic morning of ridesharing demand over a whole
// city and compare the three matchers (BA / SSA / DSA) request-by-request on
// identical fleet state — the same shadow-evaluation methodology the bench
// suite uses, at example scale.
//
//   $ ./city_day [num_requests] [num_vehicles]

#include <cstdio>
#include <cstdlib>

#include "graph/generators.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

using namespace ptar;

int main(int argc, char** argv) {
  const std::size_t num_requests =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const int num_vehicles = argc > 2 ? std::atoi(argv[2]) : 200;

  GridCityOptions copts;
  copts.rows = 30;
  copts.cols = 30;
  copts.spacing_meters = 150.0;
  copts.seed = 77;
  auto graph = MakeGridCity(copts);
  PTAR_CHECK_OK(graph.status());
  std::printf("city: %zu intersections, %zu road segments\n",
              graph->num_vertices(), graph->num_edges());

  auto grid = GridIndex::Build(&*graph, {.cell_size_meters = 400.0});
  PTAR_CHECK_OK(grid.status());
  std::printf("grid index: %zu active cells, %.2f MB\n",
              grid->num_active_cells(), grid->MemoryBytes() / 1048576.0);

  WorkloadOptions wopts;
  wopts.num_requests = num_requests;
  wopts.duration_seconds = 1800.0;
  wopts.epsilon = 0.3;
  wopts.waiting_minutes = 3.0;
  wopts.seed = 99;
  auto requests = GenerateWorkload(*graph, wopts);
  PTAR_CHECK_OK(requests.status());

  EngineOptions eopts;
  eopts.num_vehicles = num_vehicles;
  eopts.policy = ChoicePolicy::kBalanced;
  eopts.seed = 3;
  Engine engine(&*graph, &*grid, eopts);

  BaselineMatcher ba;
  SsaMatcher ssa(0.16);
  DsaMatcher dsa(0.16);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};

  std::printf("replaying %zu requests over %d vehicles...\n\n",
              requests->size(), num_vehicles);
  const RunStats stats = engine.Run(*requests, matchers);

  std::printf("%-5s %10s %10s %10s %10s %12s %9s %10s %8s\n", "algo",
              "mean(ms)", "p50(ms)", "p95(ms)", "verified", "compdists",
              "options", "precision", "recall");
  for (const MatcherAggregate& agg : stats.matchers) {
    std::printf("%-5s %10.3f %10.3f %10.3f %10.1f %12.1f %9.2f %10.4f "
                "%8.4f\n",
                agg.name.c_str(), agg.MeanMillis(),
                agg.latency_ms.Percentile(50), agg.latency_ms.Percentile(95),
                agg.MeanVerified(), agg.MeanCompdists(), agg.MeanOptions(),
                agg.MeanPrecision(), agg.MeanRecall());
  }
  std::printf("\nserved %llu / %zu requests, sharing rate %.3f\n",
              static_cast<unsigned long long>(stats.served),
              requests->size(), stats.SharingRate());
  std::printf("kinetic trees: %.3f MB across the fleet\n",
              engine.KineticTreeMemoryBytes() / 1048576.0);
  return 0;
}
