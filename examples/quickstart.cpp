// Quickstart: build a tiny road network by hand, place three vehicles,
// issue one ridesharing request, and print every non-dominated
// (pickup time, price) option — the core loop of the public API.
//
//   $ ./quickstart

#include <cstdio>

#include "graph/distance_oracle.h"
#include "graph/road_network.h"
#include "grid/grid_index.h"
#include "grid/vehicle_registry.h"
#include "kinetic/kinetic_tree.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/ssa_matcher.h"

using namespace ptar;

int main() {
  // 1. A 4 x 4 Manhattan block grid, 500 m blocks.
  RoadNetwork::Builder builder;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      builder.AddVertex(Coord{c * 500.0, r * 500.0});
    }
  }
  auto at = [](int r, int c) { return static_cast<VertexId>(r * 4 + c); };
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (c + 1 < 4) builder.AddEdge(at(r, c), at(r, c + 1), 500.0);
      if (r + 1 < 4) builder.AddEdge(at(r, c), at(r + 1, c), 500.0);
    }
  }
  auto graph = std::move(builder).Build();
  PTAR_CHECK_OK(graph.status());

  // 2. Index the network with a 500 m grid.
  auto grid = GridIndex::Build(&*graph, {.cell_size_meters = 500.0});
  PTAR_CHECK_OK(grid.status());

  // 3. Three taxis: two idle, one already carrying a request.
  std::vector<KineticTree> fleet;
  fleet.emplace_back(0, at(0, 0), /*capacity=*/4);
  fleet.emplace_back(1, at(0, 3), /*capacity=*/4);
  fleet.emplace_back(2, at(1, 1), /*capacity=*/4);

  DistanceOracle maintenance(&*graph);
  auto dist = [&maintenance](VertexId a, VertexId b) {
    return maintenance.Dist(a, b);
  };
  Request onboard;
  onboard.id = 100;
  onboard.start = at(1, 2);
  onboard.destination = at(3, 2);
  onboard.riders = 1;
  onboard.max_wait_dist = 2000.0;
  onboard.epsilon = 0.6;
  PTAR_CHECK_OK(fleet[2].Commit(onboard,
                                maintenance.Dist(onboard.start,
                                                 onboard.destination),
                                /*planned_pickup_dist=*/
                                maintenance.Dist(fleet[2].location(),
                                                 onboard.start),
                                dist));

  // 4. Register the fleet in the grid.
  VehicleRegistry registry(&*grid);
  registry.AddEmptyVehicle(0, fleet[0].location());
  registry.AddEmptyVehicle(1, fleet[1].location());
  registry.SetVehicleEdges(2, fleet[2].BuildRegistration(*grid));

  // 5. A new request: two riders from (1,3) to (3,0), willing to wait the
  // equivalent of 1.5 km, accepting 40 % detour.
  Request request;
  request.id = 1;
  request.start = at(1, 3);
  request.destination = at(3, 0);
  request.riders = 2;
  request.max_wait_dist = 1500.0;
  request.epsilon = 0.4;

  DistanceOracle match_oracle(&*graph);
  MatchContext ctx;
  ctx.grid = &*grid;
  ctx.registry = &registry;
  ctx.fleet = &fleet;
  ctx.oracle = &match_oracle;

  std::printf("request: %d riders from vertex %u to vertex %u\n",
              request.riders, request.start, request.destination);

  for (Matcher* matcher :
       std::initializer_list<Matcher*>{new BaselineMatcher,
                                       new SsaMatcher(1.0)}) {
    const MatchResult result = matcher->Match(request, ctx);
    std::printf("\n%s found %zu non-dominated option(s) "
                "(%llu compdists, %llu vehicles verified):\n",
                matcher->name().c_str(), result.options.size(),
                static_cast<unsigned long long>(result.stats.compdists),
                static_cast<unsigned long long>(
                    result.stats.verified_vehicles));
    for (const Option& option : result.options) {
      std::printf("  vehicle %u: pickup in %6.0f m (%4.1f min), price %.2f\n",
                  option.vehicle, option.pickup_dist,
                  option.pickup_dist / kDefaultSpeedMetersPerSec / 60.0,
                  option.price);
    }
    delete matcher;
  }
  std::printf("\nEach rider picks the option matching their own time/price "
              "preference.\n");
  return 0;
}
