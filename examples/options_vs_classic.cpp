// Options vs. classic dispatch: what does the price-and-time-aware skyline
// buy riders? Replays the identical demand trace through two systems:
//
//   classic   every rider is assigned the single system-optimal vehicle
//             (minimal travel increase — what T-share-style dispatchers do)
//   options   every rider sees the non-dominated (time, price) skyline and
//             picks by their own preference (cheapest here)
//
// and compares rider-facing outcomes: mean fare, mean pickup time, sharing.
//
//   $ ./options_vs_classic

#include <cstdio>

#include "common/stats.h"
#include "graph/generators.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/classic_dispatcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

using namespace ptar;

namespace {

struct Outcome {
  SampleSummary fares;
  SampleSummary pickup_minutes;
  double sharing_rate = 0.0;
  std::uint64_t served = 0;
};

Outcome Replay(const RoadNetwork& graph, const GridIndex& grid,
               const std::vector<Request>& requests, Matcher* matcher,
               ChoicePolicy policy) {
  EngineOptions eopts;
  eopts.num_vehicles = 150;
  eopts.seed = 21;
  eopts.policy = policy;
  Engine engine(&graph, &grid, eopts);
  std::vector<Matcher*> matchers = {matcher};

  Outcome outcome;
  std::uint64_t served = 0;
  for (const Request& request : requests) {
    const auto result = engine.ProcessRequest(request, matchers);
    if (!result.served) continue;
    ++served;
    outcome.fares.Add(result.chosen.price);
    outcome.pickup_minutes.Add(result.chosen.pickup_dist /
                               kDefaultSpeedMetersPerSec / 60.0);
  }
  // Let every trip finish.
  engine.AdvanceTo(engine.now() + 7200.0);
  outcome.served = served;
  return outcome;
}

void Print(const char* label, const Outcome& o) {
  std::printf("%-8s served %3llu | fare mean %8.1f p50 %8.1f p95 %8.1f | "
              "pickup mean %5.2f min p95 %5.2f min\n",
              label, static_cast<unsigned long long>(o.served),
              o.fares.Mean(), o.fares.Percentile(50), o.fares.Percentile(95),
              o.pickup_minutes.Mean(), o.pickup_minutes.Percentile(95));
}

}  // namespace

int main() {
  GridCityOptions copts;
  copts.rows = 25;
  copts.cols = 25;
  copts.spacing_meters = 150.0;
  copts.seed = 404;
  auto graph = MakeGridCity(copts);
  PTAR_CHECK_OK(graph.status());
  auto grid = GridIndex::Build(&*graph, {.cell_size_meters = 400.0});
  PTAR_CHECK_OK(grid.status());

  WorkloadOptions wopts;
  wopts.num_requests = 120;
  wopts.duration_seconds = 1500.0;
  wopts.epsilon = 0.5;
  wopts.waiting_minutes = 5.0;
  wopts.seed = 11;
  auto requests = GenerateWorkload(*graph, wopts);
  PTAR_CHECK_OK(requests.status());

  std::printf("replaying %zu requests through both systems...\n\n",
              requests->size());

  ClassicDispatcher classic;
  const Outcome classic_outcome =
      Replay(*graph, *grid, *requests, &classic, ChoicePolicy::kMinPrice);

  BaselineMatcher skyline;  // exact option set; riders choose cheapest
  const Outcome cheap_outcome =
      Replay(*graph, *grid, *requests, &skyline, ChoicePolicy::kMinPrice);

  BaselineMatcher skyline2;  // riders choose fastest pickup instead
  const Outcome fast_outcome =
      Replay(*graph, *grid, *requests, &skyline2, ChoicePolicy::kMinTime);

  Print("classic", classic_outcome);
  Print("cheap", cheap_outcome);
  Print("fast", fast_outcome);

  // Under the paper's price model, price = f_n * (travel increase +
  // direct), so the classic minimal-increase assignment coincides with the
  // cheapest option (the first two rows match). What riders gain from the
  // skyline is the *time* side of the trade-off.
  const double fare_premium =
      fast_outcome.fares.Mean() - classic_outcome.fares.Mean();
  const double p95_saving = classic_outcome.pickup_minutes.Percentile(95) -
                            fast_outcome.pickup_minutes.Percentile(95);
  std::printf(
      "\nClassic dispatch already gives the cheapest ride (its objective "
      "is the price model's\nnumerator), but it forces everyone onto it: "
      "the p95 pickup is %.1f minutes. With the\noption skyline, "
      "time-sensitive riders cut the p95 pickup by %.1f minutes for a "
      "%.0f%%\nfare premium — one system-optimal assignment cannot serve "
      "both preferences.\n",
      classic_outcome.pickup_minutes.Percentile(95), p95_saving,
      100.0 * fare_premium / classic_outcome.fares.Mean());
  return 0;
}
