// Evening rush: the paper's motivating story. A couple finishes dinner at
// the seaside — far from downtown where most taxis roam — and wants to get
// home. Getting a car quickly costs extra (big pickup detour); waiting for a
// car that will pass nearby later is cheaper. The skyline of
// (pickup time, price) options makes that trade-off explicit.
//
//   $ ./evening_rush

#include <cstdio>

#include "common/random.h"
#include "graph/generators.h"
#include "rideshare/baseline_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

using namespace ptar;

int main() {
  // A ring-radial downtown with long radial avenues: the "seaside" is the
  // outer end of one avenue, downtown is the hub.
  RingRadialCityOptions copts;
  copts.rings = 10;
  copts.spokes = 16;
  copts.ring_spacing_meters = 400.0;
  copts.seed = 2026;
  auto graph = MakeRingRadialCity(copts);
  PTAR_CHECK_OK(graph.status());

  auto grid = GridIndex::Build(&*graph, {.cell_size_meters = 800.0});
  PTAR_CHECK_OK(grid.status());

  EngineOptions eopts;
  eopts.num_vehicles = 28;
  eopts.seed = 5;
  eopts.policy = ChoicePolicy::kMinPrice;
  Engine engine(&*graph, &*grid, eopts);

  // Background demand: mostly downtown-to-downtown trips, plus a steady
  // trickle of evening traffic heading out toward the seaside spoke — the
  // vehicles that will pass near the couple "later on".
  Rng rng(8);
  auto ring_vertex = [&](int ring_lo, int ring_hi, int spoke_lo,
                         int spoke_hi) {
    const int ring = static_cast<int>(
        rng.UniformInt(ring_lo, ring_hi));
    const int spoke = static_cast<int>(
        rng.UniformInt(spoke_lo, spoke_hi)) % copts.spokes;
    return static_cast<VertexId>(1 + ring * copts.spokes + spoke);
  };
  std::vector<Request> background;
  for (int i = 0; i < 140; ++i) {
    Request r;
    r.id = static_cast<RequestId>(i);
    r.start = ring_vertex(0, 3, 0, copts.spokes - 1);  // downtown
    if (i % 3 == 0) {
      // Outbound toward the seaside end of spoke 0 (+/- one spoke).
      r.destination = ring_vertex(7, 9, copts.spokes - 1, copts.spokes + 1);
    } else {
      r.destination = ring_vertex(0, 4, 0, copts.spokes - 1);
    }
    if (r.destination == r.start) r.destination = (r.destination % 160) + 1;
    r.riders = 1;
    r.max_wait_dist = 6.0 * 60.0 * kDefaultSpeedMetersPerSec;
    r.epsilon = 0.8;
    r.submit_time = i * 8.0;
    background.push_back(r);
  }

  BaselineMatcher exact;
  std::vector<Matcher*> matchers = {&exact};
  engine.Run(background, matchers);

  // Now the couple at the seaside: outer ring vertex on spoke 0, heading to
  // a vertex two rings from the hub on the opposite side.
  const auto seaside = static_cast<VertexId>(1 + 9 * copts.spokes + 0);
  const auto home = static_cast<VertexId>(1 + 1 * copts.spokes +
                                          copts.spokes / 2);
  Request couple;
  couple.id = 9999;
  couple.start = seaside;
  couple.destination = home;
  couple.riders = 2;
  couple.max_wait_dist = 15.0 * 60.0 * kDefaultSpeedMetersPerSec;  // 15 min
  couple.epsilon = 0.8;
  couple.submit_time = engine.now();

  const auto outcome = engine.ProcessRequest(couple, matchers);
  const auto& options = outcome.results[0].options;

  std::printf("The couple at the seaside (vertex %u -> %u) gets %zu "
              "non-dominated offers:\n\n", seaside, home, options.size());
  std::printf("%8s %12s %10s  %s\n", "vehicle", "pickup(min)", "price", "");
  for (std::size_t i = 0; i < options.size(); ++i) {
    const Option& o = options[i];
    const double minutes =
        o.pickup_dist / kDefaultSpeedMetersPerSec / 60.0;
    const char* note = "";
    if (i == 0) note = "<- fastest pickup";
    if (i + 1 == options.size()) note = "<- cheapest ride";
    std::printf("%8u %12.1f %10.2f  %s\n", o.vehicle, minutes, o.price,
                note);
  }
  if (options.size() > 1) {
    const double dt =
        (options.back().pickup_dist - options.front().pickup_dist) /
        kDefaultSpeedMetersPerSec / 60.0;
    const double dp = options.front().price - options.back().price;
    std::printf("\nWaiting %.1f more minutes saves %.2f on the fare — the "
                "rider decides.\n", dt, dp);
  } else {
    std::printf("\n(Only one offer this time — rerun with another seed for "
                "a richer skyline.)\n");
  }
  return 0;
}
