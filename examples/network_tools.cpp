// Network tools: generate a synthetic city, report its statistics, save it
// in the ptar text format, and load it back — the on-ramp for plugging your
// own road network (e.g. an OSM extract converted to an edge list) into the
// library.
//
//   $ ./network_tools [rows] [cols] [out.net]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/io.h"

using namespace ptar;

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 25;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 25;
  const std::string path =
      argc > 3 ? argv[3] : std::string("/tmp/ptar_city.net");

  GridCityOptions opts;
  opts.rows = rows;
  opts.cols = cols;
  opts.seed = 12345;
  auto graph = MakeGridCity(opts);
  PTAR_CHECK_OK(graph.status());

  std::printf("generated city: %zu vertices, %zu edges (largest component "
              "of a %dx%d perturbed grid)\n",
              graph->num_vertices(), graph->num_edges(), rows, cols);
  std::printf("connected: %s\n", IsConnected(*graph) ? "yes" : "no");

  // Degree histogram.
  std::size_t histogram[9] = {};
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    histogram[std::min<std::size_t>(graph->Degree(v), 8)]++;
  }
  std::printf("degree histogram:");
  for (int d = 1; d <= 8; ++d) {
    if (histogram[d] > 0) std::printf("  %d:%zu", d, histogram[d]);
  }
  std::printf("\n");

  // Network diameter estimate from a double-sweep.
  DijkstraEngine engine(&*graph);
  engine.SingleSource(0);
  VertexId far = 0;
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    if (engine.Dist(v) != kInfDistance && engine.Dist(v) > engine.Dist(far)) {
      far = v;
    }
  }
  engine.SingleSource(far);
  Distance diameter = 0;
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    if (engine.Dist(v) != kInfDistance) {
      diameter = std::max(diameter, engine.Dist(v));
    }
  }
  std::printf("diameter (double-sweep lower bound): %.0f m, about %.1f min "
              "at %.0f km/h\n", diameter,
              diameter / kDefaultSpeedMetersPerSec / 60.0,
              kDefaultSpeedMetersPerSec * 3.6);

  // Round-trip through the text format.
  PTAR_CHECK_OK(SaveNetworkToFile(*graph, path));
  auto loaded = LoadNetworkFromFile(path);
  PTAR_CHECK_OK(loaded.status());
  std::printf("saved to %s and reloaded: %zu vertices, %zu edges — %s\n",
              path.c_str(), loaded->num_vertices(), loaded->num_edges(),
              loaded->num_vertices() == graph->num_vertices() &&
                      loaded->num_edges() == graph->num_edges()
                  ? "round-trip OK"
                  : "MISMATCH");
  return 0;
}
