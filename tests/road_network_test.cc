// Tests for the CSR road network and its builder.

#include "graph/road_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(BuilderTest, EmptyGraphBuilds) {
  RoadNetwork::Builder b;
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(BuilderTest, VertexIdsAreSequential) {
  RoadNetwork::Builder b;
  EXPECT_EQ(b.AddVertex(Coord{0, 0}), 0u);
  EXPECT_EQ(b.AddVertex(Coord{1, 0}), 1u);
  EXPECT_EQ(b.AddVertex(Coord{2, 0}), 2u);
  EXPECT_EQ(b.num_vertices(), 3u);
}

TEST(BuilderTest, RejectsUnknownVertex) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddEdge(0, 5, 1.0);
  auto g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, RejectsSelfLoop) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddEdge(0, 0, 1.0);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(BuilderTest, RejectsNonPositiveWeight) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{1, 0});
  b.AddEdge(0, 1, 0.0);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(BuilderTest, RejectsNanWeight) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{1, 0});
  b.AddEdge(0, 1, std::nan(""));
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(RoadNetworkTest, CsrAdjacencyIsComplete) {
  const RoadNetwork g = testing::MakeSmallGrid();
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.num_edges(), 12u);
  // Corner vertex 0 connects to 1 and 3.
  std::vector<VertexId> heads;
  for (const Arc& a : g.OutArcs(0)) heads.push_back(a.head);
  std::sort(heads.begin(), heads.end());
  EXPECT_EQ(heads, (std::vector<VertexId>{1, 3}));
  // Center vertex 4 has degree 4.
  EXPECT_EQ(g.Degree(4), 4u);
}

TEST(RoadNetworkTest, ArcsAreSymmetric) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(30, 40, 99);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.OutArcs(u)) {
      // The reverse arc with the same edge id must exist.
      bool found = false;
      for (const Arc& back : g.OutArcs(a.head)) {
        if (back.head == u && back.edge == a.edge &&
            back.weight == a.weight) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing reverse arc for edge " << a.edge;
    }
  }
}

TEST(RoadNetworkTest, ArcCountMatchesTwiceEdges) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(50, 60, 7);
  std::size_t arc_count = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    arc_count += g.Degree(v);
  }
  EXPECT_EQ(arc_count, 2 * g.num_edges());
}

TEST(RoadNetworkTest, EdgeAccessors) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{3, 4});
  const EdgeId e = b.AddEdge(0, 1, 7.5);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->EdgeU(e), 0u);
  EXPECT_EQ(g->EdgeV(e), 1u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(e), 7.5);
}

TEST(RoadNetworkTest, EuclideanDistance) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{3, 4});
  b.AddEdge(0, 1, 5.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->EuclideanDistance(0, 1), 5.0);
}

TEST(RoadNetworkTest, AddEdgeEuclideanUsesCoordinates) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{6, 8});
  b.AddEdgeEuclidean(0, 1);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0), 10.0);
}

TEST(RoadNetworkTest, ParallelEdgesAreKept) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{1, 0});
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 1, 2.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->Degree(0), 2u);
}

TEST(RoadNetworkTest, MemoryBytesPositiveAndMonotone) {
  const RoadNetwork small = testing::MakeRandomConnectedGraph(10, 5, 1);
  const RoadNetwork large = testing::MakeRandomConnectedGraph(100, 150, 1);
  EXPECT_GT(small.MemoryBytes(), 0u);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace ptar
