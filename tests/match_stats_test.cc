// Tests for the cost-accounting semantics of MatchStats: the counters the
// paper's experiments are built on must mean what they claim.

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace ptar {
namespace {

struct World {
  RoadNetwork graph;
  std::unique_ptr<GridIndex> grid;
  std::vector<Request> requests;
};

World MakeWorld(std::size_t num_requests = 30) {
  World w;
  GridCityOptions copts;
  copts.rows = 14;
  copts.cols = 14;
  copts.seed = 33;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  w.graph = std::move(g).value();
  auto grid = GridIndex::Build(&w.graph, {.cell_size_meters = 250.0});
  PTAR_CHECK(grid.ok());
  w.grid = std::make_unique<GridIndex>(std::move(grid).value());
  WorkloadOptions wopts;
  wopts.num_requests = num_requests;
  wopts.duration_seconds = 600.0;
  wopts.epsilon = 0.4;
  wopts.waiting_minutes = 3.0;
  wopts.seed = 3;
  auto reqs = GenerateWorkload(w.graph, wopts);
  PTAR_CHECK(reqs.ok());
  w.requests = std::move(reqs).value();
  return w;
}

TEST(MatchStatsTest, AccumulateSums) {
  MatchStats a;
  a.verified_vehicles = 3;
  a.compdists = 10;
  a.scanned_cells = 2;
  a.pruned_cells = 1;
  a.pruned_vehicles = 4;
  a.elapsed_micros = 1.5;
  MatchStats b = a;
  b.Accumulate(a);
  EXPECT_EQ(b.verified_vehicles, 6u);
  EXPECT_EQ(b.compdists, 20u);
  EXPECT_EQ(b.scanned_cells, 4u);
  EXPECT_EQ(b.pruned_cells, 2u);
  EXPECT_EQ(b.pruned_vehicles, 8u);
  EXPECT_DOUBLE_EQ(b.elapsed_micros, 3.0);
}

TEST(MatchStatsTest, SsaScansExactlyTheCellBudget) {
  World w = MakeWorld();
  EngineOptions eopts;
  eopts.num_vehicles = 20;
  Engine engine(&w.graph, w.grid.get(), eopts);
  const std::size_t active = w.grid->num_active_cells();
  for (const double fraction : {0.08, 0.25, 1.0}) {
    SsaMatcher ssa(fraction);
    std::vector<Matcher*> matchers = {&ssa};
    const auto outcome = engine.ProcessRequest(
        w.requests[static_cast<std::size_t>(fraction * 10) % w.requests.size()],
        matchers);
    const auto expected = std::min<std::uint64_t>(
        active,
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(fraction * active + 0.999999)));
    EXPECT_EQ(outcome.results[0].stats.scanned_cells, expected)
        << "fraction " << fraction;
  }
}

TEST(MatchStatsTest, DsaScansAtMostTwiceTheBudget) {
  World w = MakeWorld();
  EngineOptions eopts;
  eopts.num_vehicles = 20;
  Engine engine(&w.graph, w.grid.get(), eopts);
  DsaMatcher dsa(0.16);
  std::vector<Matcher*> matchers = {&dsa};
  const auto outcome = engine.ProcessRequest(w.requests[0], matchers);
  const std::size_t active = w.grid->num_active_cells();
  const auto limit = static_cast<std::uint64_t>(0.16 * active + 0.999999);
  EXPECT_LE(outcome.results[0].stats.scanned_cells, 2 * limit);
  EXPECT_GE(outcome.results[0].stats.scanned_cells, limit);
}

TEST(MatchStatsTest, BaselineNeverPrunes) {
  World w = MakeWorld();
  EngineOptions eopts;
  eopts.num_vehicles = 15;
  Engine engine(&w.graph, w.grid.get(), eopts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  for (std::size_t i = 0; i < 10; ++i) {
    const auto outcome = engine.ProcessRequest(w.requests[i], matchers);
    EXPECT_EQ(outcome.results[0].stats.pruned_cells, 0u);
    EXPECT_EQ(outcome.results[0].stats.pruned_vehicles, 0u);
    EXPECT_EQ(outcome.results[0].stats.scanned_cells, 0u);
    EXPECT_EQ(outcome.results[0].stats.verified_vehicles, 15u);
  }
}

TEST(MatchStatsTest, PruningCountersFireOverARun) {
  World w = MakeWorld(50);
  EngineOptions eopts;
  eopts.num_vehicles = 40;
  Engine engine(&w.graph, w.grid.get(), eopts);
  BaselineMatcher ba;
  SsaMatcher ssa(0.5);
  std::vector<Matcher*> matchers = {&ba, &ssa};
  const RunStats stats = engine.Run(w.requests, matchers);
  const MatchStats& totals = stats.matchers[1].totals;
  // A realistic run must exercise both pruning tiers.
  EXPECT_GT(totals.pruned_vehicles, 0u);
  EXPECT_GT(totals.pruned_cells, 0u);
  // And pruning must actually reduce verification below the fleet size.
  EXPECT_LT(stats.matchers[1].MeanVerified(), 40.0);
}

TEST(MatchStatsTest, LatencyDistributionMatchesTotals) {
  World w = MakeWorld();
  EngineOptions eopts;
  eopts.num_vehicles = 10;
  Engine engine(&w.graph, w.grid.get(), eopts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  const RunStats stats = engine.Run(w.requests, matchers);
  const MatcherAggregate& agg = stats.matchers[0];
  ASSERT_EQ(agg.latency_ms.count(), w.requests.size());
  EXPECT_NEAR(agg.latency_ms.Sum(), agg.totals.elapsed_micros / 1e3, 1e-6);
  EXPECT_LE(agg.latency_ms.Percentile(50), agg.latency_ms.Percentile(95));
}

TEST(MatchStatsTest, UnservableRequestIsReportedUnserved) {
  World w = MakeWorld();
  EngineOptions eopts;
  eopts.num_vehicles = 6;
  eopts.vehicle_capacity = 1;  // a 2-rider group can never board
  Engine engine(&w.graph, w.grid.get(), eopts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  Request big = w.requests[0];
  big.riders = 2;
  const auto outcome = engine.ProcessRequest(big, matchers);
  EXPECT_FALSE(outcome.served);
  EXPECT_TRUE(outcome.results[0].options.empty());
  const RunStats stats = engine.Run({&big, 1}, matchers);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.unserved, 1u);
}

}  // namespace
}  // namespace ptar
