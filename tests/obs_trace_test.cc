// Trace-pipeline validity: running an instrumented engine with the
// recorder on must produce Chrome trace-event JSON that (a) parses, (b)
// carries ph/ts/dur/pid/tid on every event, (c) is well-nested per thread
// track, and (d) covers the request phases. Also the determinism contract
// of the metrics registry: a 4-thread run must produce bit-identical
// non-timing metrics to a serial run on the same seed (only "pool/..." and
// the *_us/*_ms/*_micros entries may differ).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "obs/trace.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace ptar {
namespace {

// --- A minimal JSON reader (objects, arrays, strings, numbers) ---------
// Just enough to validate the trace file; rejects anything malformed.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      value = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(value);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(value);
  }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(value);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(value);
  }
  double number() const { return std::get<double>(value); }
  const std::string& string() const { return std::get<std::string>(value); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole document; fails the test on any syntax error.
  JsonValue Parse() {
    const JsonValue v = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage at byte " << pos_;
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      ADD_FAILURE() << "unexpected end of input";
      return '\0';
    }
    return text_[pos_];
  }

  void Expect(char c) {
    const char got = Peek();
    ASSERT_EQ(got, c) << "at byte " << pos_;
    ++pos_;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue{ParseString()};
      case 't':
        pos_ += 4;
        return JsonValue{true};
      case 'f':
        pos_ += 5;
        return JsonValue{false};
      case 'n':
        pos_ += 4;
        return JsonValue{nullptr};
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    auto obj = std::make_shared<JsonObject>();
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      const std::string key = ParseString();
      Expect(':');
      (*obj)[key] = ParseValue();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return JsonValue{obj};
    }
  }

  JsonValue ParseArray() {
    auto arr = std::make_shared<JsonArray>();
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return JsonValue{arr};
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    Expect('"');
    return out;
  }

  JsonValue ParseNumber() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number at byte " << start;
    return JsonValue{std::stod(text_.substr(start, pos_ - start))};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- Shared world fixtures ---------------------------------------------

struct World {
  RoadNetwork graph;
  std::unique_ptr<GridIndex> grid;
};

World MakeWorld() {
  World w;
  GridCityOptions copts;
  copts.rows = 12;
  copts.cols = 12;
  copts.seed = 3;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  w.graph = std::move(g).value();
  auto grid = GridIndex::Build(&w.graph, {.cell_size_meters = 300.0});
  PTAR_CHECK(grid.ok());
  w.grid = std::make_unique<GridIndex>(std::move(grid).value());
  return w;
}

std::vector<Request> MakeRequests(const RoadNetwork& g, std::size_t n) {
  WorkloadOptions opts;
  opts.num_requests = n;
  opts.duration_seconds = 600.0;
  opts.epsilon = 0.5;
  opts.waiting_minutes = 3.0;
  opts.seed = 8;
  auto reqs = GenerateWorkload(g, opts);
  PTAR_CHECK(reqs.ok());
  return std::move(reqs).value();
}

RunStats RunTrio(const World& w, std::span<const Request> requests,
                 int threads, obs::MetricsRegistry* metrics_out) {
  EngineOptions eopts;
  eopts.num_vehicles = 40;
  eopts.seed = 13;
  eopts.threads = threads;
  Engine engine(&w.graph, w.grid.get(), eopts);
  BaselineMatcher ba;
  SsaMatcher ssa(0.5);
  DsaMatcher dsa(0.5);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  RunStats stats = engine.Run(requests, matchers);
  if (metrics_out != nullptr) metrics_out->MergeFrom(engine.metrics());
  return stats;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  PTAR_CHECK(f != nullptr) << path;
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string TempPath(const char* name) {
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  return testing::TempDir() + info->test_suite_name() + "_" +
         info->name() + "_" + name;
}

TEST(TraceRecorderTest, WritesValidWellNestedChromeTrace) {
  World w = MakeWorld();
  const std::vector<Request> requests = MakeRequests(w.graph, 12);

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Start();
  RunTrio(w, requests, /*threads=*/4, nullptr);
  rec.Stop();
  const std::string path = TempPath("trace.json");
  const Status st = rec.WriteJson(path);
  ASSERT_TRUE(st.ok()) << st;

  const std::string text = ReadFile(path);
  JsonParser parser(text);
  const JsonValue doc = parser.Parse();
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.object().contains("traceEvents"));
  const JsonArray& events = doc.object().at("traceEvents").array();
  ASSERT_GT(events.size(), 0u);

  // (b) every event carries the complete-event fields.
  struct Span {
    double ts, dur;
    std::string name;
  };
  std::map<int, std::vector<Span>> by_tid;
  std::set<std::string> names;
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const JsonObject& o = ev.object();
    ASSERT_TRUE(o.contains("name") && o.contains("ph") && o.contains("ts") &&
                o.contains("pid") && o.contains("tid"));
    EXPECT_GE(o.at("ts").number(), 0.0);
    names.insert(o.at("name").string());
    const std::string& ph = o.at("ph").string();
    if (ph == "i") continue;  // instants (queue waits) carry no duration
    ASSERT_EQ(ph, "X");
    ASSERT_TRUE(o.contains("dur"));
    EXPECT_GE(o.at("dur").number(), 0.0);
    by_tid[static_cast<int>(o.at("tid").number())].push_back(
        {o.at("ts").number(), o.at("dur").number(), o.at("name").string()});
  }

  // (d) the phase taxonomy is present: the four engine phases per request
  // plus matcher-level spans.
  for (const char* phase :
       {"request", "advance", "refresh", "shadow_match", "commit"}) {
    EXPECT_TRUE(names.contains(phase)) << phase;
  }
  EXPECT_TRUE(names.contains("match_BA"));
  EXPECT_TRUE(names.contains("match_SSA"));
  EXPECT_TRUE(names.contains("match_DSA"));
  EXPECT_TRUE(names.contains("verify") || names.contains("expand_cell"));

  // With a 4-thread pool at least two tracks must have recorded.
  EXPECT_GE(by_tid.size(), 2u);

  // (c) spans on one track never partially overlap: for any two spans on
  // the same tid, either they are disjoint or one contains the other.
  // RAII construction guarantees this; the check catches serialization
  // bugs (e.g. wrong ts/dur pairing).
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.dur > b.dur;
    });
    std::vector<Span> stack;
    for (const Span& s : spans) {
      while (!stack.empty() &&
             s.ts >= stack.back().ts + stack.back().dur) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        EXPECT_LE(s.ts + s.dur, stack.back().ts + stack.back().dur)
            << "span " << s.name << " on tid " << tid
            << " partially overlaps " << stack.back().name;
      }
      stack.push_back(s);
    }
  }
}

TEST(TraceRecorderTest, DeterministicMetricsMatchAcrossThreadCounts) {
  World w = MakeWorld();
  const std::vector<Request> requests = MakeRequests(w.graph, 12);

  obs::MetricsRegistry serial, pooled;
  const RunStats s1 = RunTrio(w, requests, /*threads=*/1, &serial);
  const RunStats s4 = RunTrio(w, requests, /*threads=*/4, &pooled);
  EXPECT_EQ(s1.served, s4.served);

  // Every deterministic metric must exist in both runs with identical
  // values. Timing metrics and the pool counters are exempt by convention.
  const auto deterministic = [](const std::string& name) {
    return !obs::MetricsRegistry::IsTimingMetric(name) &&
           !name.starts_with("pool/");
  };
  std::size_t compared = 0;
  for (const auto& [name, value] : serial.counters()) {
    if (!deterministic(name)) continue;
    EXPECT_EQ(pooled.Counter(name), value) << name;
    ++compared;
  }
  for (const auto& [name, histogram] : serial.histograms()) {
    if (!deterministic(name)) continue;
    const obs::LatencyHistogram* other = pooled.FindHistogram(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_TRUE(*other == histogram) << name;
    ++compared;
  }
  // The convention must leave real metrics to compare (compdists, options,
  // batch counters) — an empty intersection would make this test vacuous.
  EXPECT_GE(compared, 6u);
  EXPECT_EQ(serial.Counter("matcher/BA/batch/pairs_requested"),
            pooled.Counter("matcher/BA/batch/pairs_requested"));
}

}  // namespace
}  // namespace ptar
