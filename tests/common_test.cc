// Tests for the common runtime: Status/StatusOr, logging, RNG, counters.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/counters.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"

namespace ptar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nothing here");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out.size(), 3u);
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  PTAR_RETURN_IF_ERROR(Succeeds());
  if (fail) PTAR_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

TEST(LoggingTest, ThresholdRoundTrips) {
  const LogLevel old = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(old);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(PTAR_CHECK(1 == 2) << "should die", "Check failed");
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformReal(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) {
    ++seen[rng.UniformIndex(5)];
  }
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(5);
  b.Fork();
  EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  (void)child;
}

TEST(CounterSetTest, AddAndGet) {
  CounterSet c;
  EXPECT_EQ(c.Get("x"), 0u);
  c.Add("x");
  c.Add("x", 4);
  EXPECT_EQ(c.Get("x"), 5u);
}

TEST(CounterSetTest, MergeSums) {
  CounterSet a;
  CounterSet b;
  a.Add("x", 2);
  b.Add("x", 3);
  b.Add("y", 1);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("x"), 5u);
  EXPECT_EQ(a.Get("y"), 1u);
}

TEST(CounterSetTest, ResetClears) {
  CounterSet c;
  c.Add("x");
  c.Reset();
  EXPECT_EQ(c.Get("x"), 0u);
  EXPECT_TRUE(c.counters().empty());
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ::testing::internal::UnitTestImpl* volatile unused = nullptr;
  (void)unused;
  (void)sink;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMicros(), t.ElapsedMillis());
}

}  // namespace
}  // namespace ptar
