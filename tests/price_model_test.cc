// Tests for the price model (paper Definition 3, including its worked
// examples).

#include "rideshare/price_model.h"

#include <gtest/gtest.h>

namespace ptar {
namespace {

TEST(PriceModelTest, PaperRatios) {
  const PriceModel model;
  EXPECT_DOUBLE_EQ(model.Ratio(1), 0.3);
  EXPECT_DOUBLE_EQ(model.Ratio(2), 0.4);
  EXPECT_DOUBLE_EQ(model.Ratio(3), 0.5);
  EXPECT_DOUBLE_EQ(model.Ratio(4), 0.6);
}

TEST(PriceModelTest, CustomRatios) {
  const PriceModel model(0.5, 0.25);
  EXPECT_DOUBLE_EQ(model.Ratio(1), 0.5);
  EXPECT_DOUBLE_EQ(model.Ratio(3), 1.0);
}

TEST(PriceModelTest, PaperSectionIiiDExample) {
  // Inserting R2 into tr1 = <v1, v2, v16> yields tr2 with
  // dist_tr2 - dist_tr1 + dist(v12, v17) summing such that the price is 4
  // with f_2 = 0.4, i.e. the parenthesized sum is 10.
  const PriceModel model;
  EXPECT_DOUBLE_EQ(model.Price(2, /*added_dist=*/10.0 - 4.0,
                               /*direct_dist=*/4.0),
                   4.0);
}

TEST(PriceModelTest, EmptyVehicleFormula) {
  // price = f_n * (dist(c.l, s) + 2 * dist(s, d)).
  const PriceModel model;
  EXPECT_DOUBLE_EQ(model.EmptyVehiclePrice(2, 8.0, 7.0), 0.4 * (8.0 + 14.0));
  // Equivalent through the generic form: added = pickup + direct.
  EXPECT_DOUBLE_EQ(model.Price(2, 8.0 + 7.0, 7.0),
                   model.EmptyVehiclePrice(2, 8.0, 7.0));
}

TEST(PriceModelTest, PriceScalesWithRiders) {
  const PriceModel model;
  const double p1 = model.Price(1, 100.0, 200.0);
  const double p4 = model.Price(4, 100.0, 200.0);
  EXPECT_DOUBLE_EQ(p4, p1 * (0.6 / 0.3));
}

TEST(PriceModelTest, ZeroDetourChargesDirectOnly) {
  const PriceModel model;
  EXPECT_DOUBLE_EQ(model.Price(1, 0.0, 500.0), 0.3 * 500.0);
}

}  // namespace
}  // namespace ptar
