// Tests for the pruning lemmas: hand-computed cases plus randomized
// soundness properties ("pruned implies strictly dominated or infeasible").

#include "rideshare/lemmas.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/differential.h"
#include "check/fault_injection.h"
#include "check/scenario.h"
#include "common/random.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/price_model.h"

namespace ptar {
namespace {

const PriceModel kModel;

TEST(Lemma1Test, PrunesFarEmptyVehicle) {
  // Current result: pickup 100, price for 1 rider with direct 200:
  // price = 0.3 * (100 + 400) = 150 -> price/fn - 2*direct = 500 - 400 = 100.
  const Option r{0, 100.0, 150.0};
  const double fn = kModel.Ratio(1);
  // An empty vehicle at least 101 away loses both dimensions.
  EXPECT_TRUE(lemmas::EmptyVehiclePrunedBy(101.0, r, fn, 200.0));
  EXPECT_FALSE(lemmas::EmptyVehiclePrunedBy(99.0, r, fn, 200.0));
  // Equality must not prune (equal results are not dominated).
  EXPECT_FALSE(lemmas::EmptyVehiclePrunedBy(100.0, r, fn, 200.0));
}

TEST(Lemma1Test, PruneNeedsBothDimensions) {
  // Result with cheap price but late pickup: an empty vehicle nearer than
  // the price threshold can still win on time.
  const Option r{0, 1000.0, 30.0};  // price/fn - 2*direct = 100 - 40 = 60
  const double fn = kModel.Ratio(1);
  EXPECT_FALSE(lemmas::EmptyVehiclePrunedBy(500.0, r, fn, 20.0));
  EXPECT_TRUE(lemmas::EmptyVehiclePrunedBy(1001.0, r, fn, 20.0));
}

TEST(Lemma1Test, SoundnessRandomized) {
  // If the lemma prunes, the exact result of the empty vehicle must be
  // strictly dominated, for any actual distance >= ldist.
  Rng rng(42);
  const double fn = kModel.Ratio(2);
  for (int i = 0; i < 2000; ++i) {
    const Distance direct = rng.UniformReal(10, 500);
    const Distance pickup_existing = rng.UniformReal(0, 800);
    const Option r{0, pickup_existing,
                   kModel.EmptyVehiclePrice(2, rng.UniformReal(0, 800),
                                            direct)};
    const Distance ldist = rng.UniformReal(0, 1000);
    if (!lemmas::EmptyVehiclePrunedBy(ldist, r, fn, direct)) continue;
    // Any true distance is at least the lower bound.
    const Distance actual = ldist + rng.UniformReal(0, 200);
    const Option candidate{1, actual,
                           kModel.EmptyVehiclePrice(2, actual, direct)};
    EXPECT_TRUE(Dominates(r, candidate))
        << "pruned candidate not dominated: ldist=" << ldist;
  }
}

TEST(Lemma1Test, UpperBoundOptionIsAchievable) {
  const double fn = kModel.Ratio(1);
  const Option bound = lemmas::EmptyVehicleUpperBoundOption(7, 50.0, fn, 100.0);
  EXPECT_EQ(bound.vehicle, 7u);
  EXPECT_DOUBLE_EQ(bound.pickup_dist, 50.0);
  EXPECT_DOUBLE_EQ(bound.price, fn * (50.0 + 200.0));
}

TEST(Lemma3Test, HandComputedEdgeCase) {
  // Edge <o_x, o_y> with leg 100, dist_tr(c.l, o_x) = 300.
  // Result r: pickup 350, price/fn - direct = 120.
  const double fn = kModel.Ratio(1);
  const Distance direct = 100.0;
  const Option r{0, 350.0, fn * (120.0 + direct)};
  // ldist(s, o_x) = 60: pickup bound 360 > 350; detour bound needs
  // ldist(s,ox)+ldist(s,oy)-leg = 60 + 170 - 100 = 130 > 120 -> prune.
  EXPECT_TRUE(lemmas::StartEdgePrunedBy(60.0, 170.0, 100.0, false, 300.0, r,
                                        fn, direct));
  // Lower oy bound: 60 + 150 - 100 = 110 < 120 -> keep.
  EXPECT_FALSE(lemmas::StartEdgePrunedBy(60.0, 150.0, 100.0, false, 300.0, r,
                                         fn, direct));
  // Earlier pickup -> keep regardless of price.
  EXPECT_FALSE(lemmas::StartEdgePrunedBy(40.0, 170.0, 100.0, false, 300.0, r,
                                         fn, direct));
}

TEST(Lemma3Test, TailUsesDirectDistance) {
  const double fn = kModel.Ratio(1);
  const Distance direct = 100.0;
  const Option r{0, 10.0, fn * (150.0 + direct)};
  // Tail: detour bound = ldist(s, o_x) + direct = 60 + 100 = 160 > 150 and
  // pickup bound 300 + 60 > 10 -> prune.
  EXPECT_TRUE(
      lemmas::StartEdgePrunedBy(60.0, 0.0, 0.0, true, 300.0, r, fn, direct));
  EXPECT_FALSE(
      lemmas::StartEdgePrunedBy(40.0, 0.0, 0.0, true, 300.0, r, fn, direct));
}

TEST(Lemma3Test, SoundnessRandomized) {
  // When the lemma prunes with lower bounds, the exact result (for any
  // exact distances at or above the bounds) is strictly dominated.
  Rng rng(77);
  const double fn = kModel.Ratio(1);
  for (int i = 0; i < 2000; ++i) {
    const Distance direct = rng.UniformReal(50, 300);
    const Option r{0, rng.UniformReal(0, 600),
                   fn * (rng.UniformReal(0, 400) + direct)};
    const Distance l_ox = rng.UniformReal(0, 400);
    const Distance l_oy = rng.UniformReal(0, 400);
    const Distance leg = rng.UniformReal(0, 200);
    const Distance dist_tr = rng.UniformReal(0, 500);
    if (!lemmas::StartEdgePrunedBy(l_ox, l_oy, leg, false, dist_tr, r, fn,
                                   direct)) {
      continue;
    }
    // Exact distances dominate the bounds.
    const Distance d_ox = l_ox + rng.UniformReal(0, 100);
    const Distance d_oy = l_oy + rng.UniformReal(0, 100);
    // The result produced through this edge: pickup and minimal price.
    const Distance pickup = dist_tr + d_ox;
    const Distance detour = d_ox + d_oy - leg;
    const double price = fn * (detour + direct);
    // Any further d-insertion only increases the price.
    const Option candidate{1, pickup, price};
    EXPECT_TRUE(Dominates(r, candidate) || r.pickup_dist == pickup);
  }
}

TEST(Lemma5Test, CapacityAndDetourClauses) {
  EXPECT_TRUE(lemmas::StartEdgeInfeasible(1, 2, 1000.0, 0, 0, 0, false));
  // Detour required 60 + 70 - 100 = 30 > slack 20.
  EXPECT_TRUE(lemmas::StartEdgeInfeasible(4, 2, 20.0, 60.0, 70.0, 100.0,
                                          false));
  EXPECT_FALSE(lemmas::StartEdgeInfeasible(4, 2, 40.0, 60.0, 70.0, 100.0,
                                           false));
  // Tail: detour clause disabled.
  EXPECT_FALSE(lemmas::StartEdgeInfeasible(4, 2, 0.0, 500.0, 0.0, 0.0, true));
}

TEST(Lemma4And6Test, CellLevelChecks) {
  const double fn = kModel.Ratio(1);
  const Distance direct = 100.0;
  std::vector<Option> results = {{0, 200.0, fn * (150.0 + direct)}};
  // Lemma 4: ldist(s,g) + min_dist_tr = 150 + 100 > 200 and
  // 2*150 - 40 = 260 > 150 -> prune.
  EXPECT_TRUE(lemmas::StartCellPruned(150.0, 100.0, 40.0, false, results, fn,
                                      direct));
  EXPECT_FALSE(lemmas::StartCellPruned(40.0, 100.0, 40.0, false, results, fn,
                                       direct));
  // Lemma 6: capacity.
  EXPECT_TRUE(lemmas::StartCellInfeasible(1, 2, 1000.0, 0.0, 0.0));
  // Lemma 6: detour 2*200 - 100 = 300 > max_detour 250.
  EXPECT_TRUE(lemmas::StartCellInfeasible(4, 2, 250.0, 200.0, 100.0));
  EXPECT_FALSE(lemmas::StartCellInfeasible(4, 2, 350.0, 200.0, 100.0));
}

TEST(Lemma4And6Test, TailEdgesWeakenThePriceClause) {
  // Regression test: a cell holding a tail edge <o_k, empty> admits
  // insertions after the last stop whose detour lower bound is only
  // ldist + direct (s side) or ldist (d side), not 2*ldist - max_leg.
  const double fn = kModel.Ratio(1);
  const Distance direct = 100.0;
  // Interior bound 2*150 - 40 = 260; tail bound 150 + 100 = 250.
  // Threshold between the two: prune only when no tail edge is present.
  std::vector<Option> results = {{0, 200.0, fn * (255.0 + direct)}};
  EXPECT_TRUE(lemmas::StartCellPruned(150.0, 100.0, 40.0, false, results, fn,
                                      direct));
  EXPECT_FALSE(lemmas::StartCellPruned(150.0, 100.0, 40.0, true, results, fn,
                                       direct));
  // Destination side: tail bound is just ldist = 150 (interior 260).
  std::vector<Option> dresults = {{0, 100.0, fn * (200.0 + direct)}};
  EXPECT_TRUE(lemmas::DestCellPruned(150.0, 300.0, 40.0, false, 0.2, direct,
                                     dresults, fn));
  EXPECT_FALSE(lemmas::DestCellPruned(150.0, 300.0, 40.0, true, 0.2, direct,
                                      dresults, fn));
}

TEST(Lemma7Test, MirrorsLemma5WithDestination) {
  EXPECT_TRUE(lemmas::DestEdgeInfeasible(1, 2, 1000.0, 0, 0, 0, false));
  EXPECT_TRUE(lemmas::DestEdgeInfeasible(4, 2, 20.0, 60.0, 70.0, 100.0,
                                         false));
  EXPECT_FALSE(lemmas::DestEdgeInfeasible(4, 2, 40.0, 60.0, 70.0, 100.0,
                                          false));
  EXPECT_FALSE(lemmas::DestEdgeInfeasible(4, 2, 0.0, 500.0, 0.0, 0.0, true));
}

TEST(Lemma9Test, ServiceConstraintPickupBound) {
  const double fn = kModel.Ratio(1);
  const Distance direct = 100.0;
  const double epsilon = 0.2;
  const Option r{0, 150.0, fn * (80.0 + direct)};
  // pickup bound: dist_tr(300) + ldist(ox,d)(40) - 1.2*100 = 220 > 150;
  // price bound: 40 + 150 - 100 = 90 > 80 -> prune.
  EXPECT_TRUE(lemmas::DestEdgePrunedBy(300.0, 40.0, 150.0, 100.0, false,
                                       epsilon, direct, r, fn));
  // Looser epsilon shifts the pickup bound below the result -> keep.
  EXPECT_FALSE(lemmas::DestEdgePrunedBy(300.0, 40.0, 150.0, 100.0, false,
                                        1.5, direct, r, fn));
}

TEST(Lemma8And10Test, CellLevelDestinationChecks) {
  const double fn = kModel.Ratio(1);
  const Distance direct = 100.0;
  std::vector<Option> results = {{0, 100.0, fn * (90.0 + direct)}};
  // Lemma 10: min_dist_tr(300) + ldist(200) - 120 = 380 > 100 and
  // 2*200 - 150 = 250 > 90 -> prune.
  EXPECT_TRUE(lemmas::DestCellPruned(200.0, 300.0, 150.0, false, 0.2, direct,
                                     results, fn));
  EXPECT_FALSE(lemmas::DestCellPruned(10.0, 300.0, 150.0, false, 0.2, direct,
                                      results, fn));
  EXPECT_TRUE(lemmas::DestCellInfeasible(1, 2, 1000.0, 0.0, 0.0));
  EXPECT_TRUE(lemmas::DestCellInfeasible(4, 2, 100.0, 200.0, 100.0));
}

TEST(Def7Test, DetourLowerBoundCases) {
  // Case 1 (different gaps): delta_s + ldist(ox,d) + ldist(oy,d) - leg.
  EXPECT_DOUBLE_EQ(
      lemmas::DetourLowerBound(false, false, 0.0, 50.0, 30.0, 40.0, 20.0,
                               100.0),
      50.0 + 30.0 + 40.0 - 20.0);
  // Case 1, d at tail: delta_s + ldist(ox,d).
  EXPECT_DOUBLE_EQ(
      lemmas::DetourLowerBound(false, true, 0.0, 50.0, 30.0, 0.0, 0.0,
                               100.0),
      80.0);
  // Case 2 (same gap): dist(ox,s) + ldist(oy,d) + direct - leg.
  EXPECT_DOUBLE_EQ(
      lemmas::DetourLowerBound(true, false, 60.0, 0.0, 0.0, 40.0, 20.0,
                               100.0),
      60.0 + 40.0 + 100.0 - 20.0);
  // Case 2, tail: dist(ox,s) + direct.
  EXPECT_DOUBLE_EQ(
      lemmas::DetourLowerBound(true, true, 60.0, 0.0, 0.0, 0.0, 0.0, 100.0),
      160.0);
}

TEST(Lemma11Test, PrunesWhenBothBoundsLose) {
  const double fn = kModel.Ratio(1);
  const Distance direct = 100.0;
  std::vector<Option> results = {{0, 200.0, fn * (120.0 + direct)}};
  EXPECT_TRUE(lemmas::AfterStartPruned(250.0, 130.0, results, fn, direct));
  EXPECT_FALSE(lemmas::AfterStartPruned(150.0, 130.0, results, fn, direct));
  EXPECT_FALSE(lemmas::AfterStartPruned(250.0, 110.0, results, fn, direct));
}

TEST(Lemma11Test, SoundnessRandomized) {
  // If Lemma 11 prunes, any exact result with pickup == pickup_dist and
  // detour >= detour_lb is strictly dominated.
  Rng rng(99);
  const double fn = kModel.Ratio(3);
  for (int i = 0; i < 2000; ++i) {
    const Distance direct = rng.UniformReal(50, 300);
    std::vector<Option> results = {
        {0, rng.UniformReal(0, 500), fn * (rng.UniformReal(0, 300) + direct)}};
    const Distance pickup = rng.UniformReal(0, 600);
    const Distance detour_lb = rng.UniformReal(0, 400);
    if (!lemmas::AfterStartPruned(pickup, detour_lb, results, fn, direct)) {
      continue;
    }
    const Distance actual_detour = detour_lb + rng.UniformReal(0, 100);
    const Option candidate{1, pickup, fn * (actual_detour + direct)};
    EXPECT_TRUE(Dominates(results[0], candidate));
  }
}

TEST(LemmasTest, EmptyResultSetNeverPrunesDominance) {
  const double fn = kModel.Ratio(1);
  const std::vector<Option> none;
  EXPECT_FALSE(lemmas::EmptyVehiclePruned(1e9, none, fn, 10.0));
  EXPECT_FALSE(lemmas::StartEdgePruned(1e9, 1e9, 0.0, false, 1e9, none, fn,
                                       10.0));
  EXPECT_FALSE(lemmas::DestEdgePruned(1e9, 1e9, 1e9, 0.0, false, 0.2, 10.0,
                                      none, fn));
  EXPECT_FALSE(lemmas::AfterStartPruned(1e9, 1e9, none, fn, 10.0));
  EXPECT_FALSE(lemmas::StartCellPruned(1e9, 1e9, 0.0, true, none, fn, 10.0));
  EXPECT_FALSE(lemmas::DestCellPruned(1e9, 1e9, 0.0, true, 0.2, 10.0, none, fn));
}

// --------------------------------------------------------------------------
// End-to-end lemma soundness against the brute-force reference matcher:
// the predicates above check the formulas in isolation; these runs check
// the lemmas as wired into SSA/DSA, where unsound bound plumbing (stale
// registry values, wrong-vertex lower bounds) would not show up.
// --------------------------------------------------------------------------

// Every lemma family fires at least once across the sweep, and none of the
// firings ever removes an option the exact reference keeps.
TEST(LemmaOracleTest, AllElevenLemmasFireAndStaySound) {
  LemmaCounters dsa_hits;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const check::ScenarioSpec spec = check::MakeRandomSpec(seed);
    auto outcome = check::RunDifferential(spec, {});
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    for (const check::Divergence& d : outcome.value().divergences) {
      ADD_FAILURE() << d.Describe();
    }
    for (const check::MatcherSummary& m : outcome.value().matchers) {
      if (m.name == "DSA") dsa_hits.Accumulate(m.totals.lemma_hits);
    }
  }
  for (std::size_t lemma = 1; lemma <= LemmaCounters::kNumLemmas; ++lemma) {
    EXPECT_GT(dsa_hits[lemma], 0u) << "Lemma " << lemma << " never fired";
  }
}

// A deliberately over-aggressive lemma (bound inflated 3x) must surface as
// divergences attributed to that lemma's counter, including the lost
// option itself as a missing-option divergence.
TEST(LemmaOracleTest, BrokenLemmaIsCaughtAndAttributed) {
  for (const int lemma : {1, 3, 11}) {
    check::DifferentialConfig config;
    config.stop_at_first = true;
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
      auto outcome = check::RunDifferential(
          check::MakeRandomSpec(seed), config, [lemma] {
            std::vector<std::unique_ptr<Matcher>> m;
            m.push_back(std::make_unique<BaselineMatcher>());
            m.push_back(std::make_unique<check::BrokenLemmaMatcher>(lemma));
            return m;
          });
      ASSERT_TRUE(outcome.ok()) << outcome.status().message();
      bool missing = false;
      for (const check::Divergence& d : outcome.value().divergences) {
        EXPECT_NE(d.matcher, "BA") << d.Describe();
        // Pruning a dominating option loses it (missing) and uncovers the
        // option it used to evict (spurious); both trace to the same bug.
        EXPECT_TRUE(d.type == check::DivergenceType::kMissingOption ||
                    d.type == check::DivergenceType::kSpuriousOption)
            << d.Describe();
        missing |= d.type == check::DivergenceType::kMissingOption;
        EXPECT_GT(d.lemma_hits[lemma], 0u) << d.Describe();
        caught = true;
      }
      if (caught) {
        EXPECT_TRUE(missing) << "no missing-option divergence for lemma "
                             << lemma;
      }
    }
    EXPECT_TRUE(caught) << "broken lemma " << lemma
                        << " produced no divergence in 20 seeds";
  }
}

}  // namespace
}  // namespace ptar
