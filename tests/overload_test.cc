// Robustness suite: deterministic work budgets, the overload controller's
// degradation ladder, engine-level shedding/partial skylines, and the
// schema-v2 run report that carries the robustness block. Registered under
// the compound `robustness-tsan` label so `ctest -L robustness` and the
// sanitize config's `ctest -L tsan` both pick it up; everything here is
// work-count-driven (no wall-clock deadlines), so results are bit-identical
// across thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/report.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "rideshare/work_budget.h"
#include "scenario_builder.h"
#include "sim/engine.h"
#include "sim/overload.h"
#include "sim/run_report.h"

namespace ptar {
namespace {

using testing::GridWorld;
using testing::MakeGridWorld;
using testing::MakeRequestStream;

TEST(WorkBudgetTest, DefaultIsUnlimited) {
  WorkBudget budget;
  EXPECT_FALSE(budget.limited());
  budget.Charge(1'000'000);
  EXPECT_FALSE(budget.Exhausted());
}

TEST(WorkBudgetTest, WorkUnitsExhaustDeterministically) {
  WorkBudget budget(10);
  EXPECT_TRUE(budget.limited());
  budget.Arm();
  budget.Charge(9);
  EXPECT_FALSE(budget.Exhausted());
  budget.Charge(1);
  EXPECT_TRUE(budget.Exhausted());
  // Arm() resets the spend but not the limit.
  budget.Arm();
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_EQ(budget.max_units(), 10u);
}

TEST(WorkBudgetTest, DeadlineLatchesOnceHit) {
  // A 1 us deadline armed in the past is immediately exhausted, and stays
  // exhausted (the latch) on every later check.
  WorkBudget budget(0, /*deadline_micros=*/1.0);
  budget.Arm();
  while (!budget.Exhausted()) {
  }
  EXPECT_TRUE(budget.deadline_hit());
  EXPECT_TRUE(budget.Exhausted());
}

TEST(OverloadControllerTest, DisabledWithoutBudgetOrDeadline) {
  OverloadController controller(OverloadOptions{});
  EXPECT_FALSE(controller.enabled());
  OverloadOptions with_budget;
  with_budget.request_budget = 100;
  EXPECT_TRUE(OverloadController(with_budget).enabled());
  OverloadOptions with_deadline;
  with_deadline.deadline_ms = 5.0;
  EXPECT_TRUE(OverloadController(with_deadline).enabled());
  EXPECT_DOUBLE_EQ(OverloadController(with_deadline).DeadlineMicros(),
                   5000.0);
}

TEST(OverloadControllerTest, LevelBudgetHalvesWithFloorOne) {
  OverloadOptions options;
  options.request_budget = 8;
  options.degrade_after = 1;
  options.recover_after = 1;
  OverloadController controller(options);
  EXPECT_EQ(controller.LevelBudget(), 8u);
  controller.Observe(0.0, /*budget_exhausted=*/true);
  EXPECT_EQ(controller.LevelBudget(), 4u);
  controller.Observe(0.0, true);
  EXPECT_EQ(controller.LevelBudget(), 2u);
  controller.Observe(0.0, true);
  EXPECT_EQ(controller.level(), DegradeLevel::kShed);
  // A deeper shift can never degrade a configured budget back to 0
  // ("unlimited"): the floor is 1.
  EXPECT_GE(controller.LevelBudget(), 1u);
}

TEST(OverloadControllerTest, BudgetForLevelFollowsHalvingSchedule) {
  OverloadOptions options;
  options.request_budget = 8;
  const OverloadController controller(options);
  // Explicit-level query (the pipeline arms a wave's requests at their
  // admission level even after the ladder moves): same halving schedule as
  // LevelBudget, floor 1, independent of the controller's current level.
  EXPECT_EQ(controller.BudgetForLevel(DegradeLevel::kFull), 8u);
  EXPECT_EQ(controller.BudgetForLevel(DegradeLevel::kSsa), 4u);
  EXPECT_EQ(controller.BudgetForLevel(DegradeLevel::kGridScan), 2u);
  EXPECT_EQ(controller.BudgetForLevel(DegradeLevel::kShed), 1u);
  // No configured budget stays "unlimited" at every level.
  OverloadOptions deadline_only;
  deadline_only.deadline_ms = 1.0;
  EXPECT_EQ(OverloadController(deadline_only)
                .BudgetForLevel(DegradeLevel::kGridScan),
            0u);
}

TEST(OverloadControllerTest, WorkerDeadlineHitIsBadWithoutGlobalClock) {
  // Pipeline regime: many requests match concurrently, so the controller
  // cannot infer overruns from one global wall clock. The worker budget's
  // latched deadline signal alone must mark the request bad — even with a
  // tiny elapsed time and an unexhausted work budget.
  OverloadOptions options;
  options.request_budget = 100;
  options.degrade_after = 1;
  OverloadController controller(options);
  const auto obs = controller.Observe(/*elapsed_micros=*/0.0,
                                      /*budget_exhausted=*/false,
                                      /*worker_deadline_hit=*/true);
  EXPECT_TRUE(obs.bad);
  EXPECT_TRUE(obs.deadline_missed);
  EXPECT_EQ(controller.level(), DegradeLevel::kSsa);
  // And the default (no worker signal) stays good.
  const auto ok = controller.Observe(0.0, false);
  EXPECT_FALSE(ok.bad);
}

TEST(OverloadControllerTest, LadderDegradesAndRecoversWithHysteresis) {
  OverloadOptions options;
  options.request_budget = 100;
  options.degrade_after = 2;
  options.recover_after = 3;
  OverloadController controller(options);

  // One bad request is not enough.
  controller.Observe(0.0, true);
  EXPECT_EQ(controller.level(), DegradeLevel::kFull);
  // A good request resets the bad streak.
  controller.Observe(0.0, false);
  controller.Observe(0.0, true);
  EXPECT_EQ(controller.level(), DegradeLevel::kFull);
  // Two consecutive bad requests move exactly one level.
  const auto obs = controller.Observe(0.0, true);
  EXPECT_EQ(obs.level_delta, 1);
  EXPECT_EQ(controller.level(), DegradeLevel::kSsa);

  // Degrade all the way; the ladder saturates at kShed.
  for (int i = 0; i < 10; ++i) controller.Observe(0.0, true);
  EXPECT_EQ(controller.level(), DegradeLevel::kShed);

  // Recovery needs `recover_after` consecutive good requests per level.
  controller.Observe(0.0, false);
  controller.Observe(0.0, false);
  EXPECT_EQ(controller.level(), DegradeLevel::kShed);
  const auto up = controller.Observe(0.0, false);
  EXPECT_EQ(up.level_delta, -1);
  EXPECT_EQ(controller.level(), DegradeLevel::kGridScan);
  // The streak reset on the transition: two good requests do not yet
  // recover the next level.
  controller.Observe(0.0, false);
  controller.Observe(0.0, false);
  EXPECT_EQ(controller.level(), DegradeLevel::kGridScan);
  controller.Observe(0.0, false);
  EXPECT_EQ(controller.level(), DegradeLevel::kSsa);
}

TEST(OverloadControllerTest, DeadlineMissIsBad) {
  OverloadOptions options;
  options.deadline_ms = 1.0;  // 1000 us
  options.degrade_after = 1;
  OverloadController controller(options);
  const auto ok = controller.Observe(/*elapsed_micros=*/900.0, false);
  EXPECT_FALSE(ok.bad);
  const auto missed = controller.Observe(/*elapsed_micros=*/1100.0, false);
  EXPECT_TRUE(missed.bad);
  EXPECT_TRUE(missed.deadline_missed);
  EXPECT_EQ(controller.level(), DegradeLevel::kSsa);
}

TEST(OverloadControllerTest, LevelNames) {
  EXPECT_STREQ(DegradeLevelName(DegradeLevel::kFull), "full");
  EXPECT_STREQ(DegradeLevelName(DegradeLevel::kSsa), "ssa");
  EXPECT_STREQ(DegradeLevelName(DegradeLevel::kGridScan), "grid_scan");
  EXPECT_STREQ(DegradeLevelName(DegradeLevel::kShed), "shed");
}

TEST(OverloadControllerTest, SloAloneEnablesTheController) {
  OverloadOptions options;
  options.slo_p99_us = 5000.0;
  OverloadController controller(options);
  EXPECT_TRUE(controller.enabled());
  EXPECT_EQ(controller.LevelBudget(), 0u);  // Still no work budget.
}

TEST(OverloadControllerTest, ObserveWindowDegradesOnViolation) {
  OverloadOptions options;
  options.slo_p99_us = 1000.0;
  OverloadController controller(options);

  // A violating window degrades immediately — no streak needed.
  const auto violated = controller.ObserveWindow(
      /*p99_commit_us=*/1500.0, /*shed_rate=*/0.0, /*window_requests=*/20);
  EXPECT_TRUE(violated.bad);
  EXPECT_TRUE(violated.deadline_missed);
  EXPECT_EQ(violated.level_delta, 1);
  EXPECT_EQ(controller.level(), DegradeLevel::kSsa);

  // A merely-OK window (between slo/2 and slo) holds the level.
  const auto held = controller.ObserveWindow(800.0, 0.0, 20);
  EXPECT_EQ(held.level_delta, 0);
  EXPECT_EQ(controller.level(), DegradeLevel::kSsa);

  // A clearly healthy window (p99 < slo/2, nothing shed) recovers
  // immediately.
  const auto healthy = controller.ObserveWindow(300.0, 0.0, 20);
  EXPECT_EQ(healthy.level_delta, -1);
  EXPECT_EQ(controller.level(), DegradeLevel::kFull);

  // Healthy latency but shed traffic does not recover.
  controller.ObserveWindow(1500.0, 0.0, 20);
  ASSERT_EQ(controller.level(), DegradeLevel::kSsa);
  const auto still_shedding = controller.ObserveWindow(300.0, 0.1, 20);
  EXPECT_EQ(still_shedding.level_delta, 0);
  EXPECT_EQ(controller.level(), DegradeLevel::kSsa);
}

TEST(OverloadControllerTest, ObserveWindowSaturatesAndIgnoresEmptyWindows) {
  OverloadOptions options;
  options.slo_p99_us = 1000.0;
  OverloadController controller(options);

  for (int i = 0; i < 6; ++i) controller.ObserveWindow(5000.0, 0.5, 10);
  EXPECT_EQ(controller.level(), DegradeLevel::kShed);  // Saturated.

  // Empty windows (a quiet stream) carry no signal either way.
  const auto empty = controller.ObserveWindow(0.0, 0.0, 0);
  EXPECT_EQ(empty.level_delta, 0);
  EXPECT_EQ(controller.level(), DegradeLevel::kShed);

  // With slo_p99_us unset the window path is inert even when enabled via
  // a work budget.
  OverloadOptions budget_only;
  budget_only.request_budget = 100;
  OverloadController inert(budget_only);
  const auto noop = inert.ObserveWindow(1e9, 1.0, 100);
  EXPECT_EQ(noop.level_delta, 0);
  EXPECT_EQ(inert.level(), DegradeLevel::kFull);
}

TEST(OverloadControllerTest, ObserveWindowResetsRequestStreaks) {
  OverloadOptions options;
  options.request_budget = 100;
  options.slo_p99_us = 1000.0;
  options.degrade_after = 2;
  OverloadController controller(options);

  // One bad request, then a violating window: the window takes the level
  // and resets the per-request streak, so the next bad request starts a
  // fresh streak instead of compounding into a double degrade.
  controller.Observe(0.0, true);
  controller.ObserveWindow(2000.0, 0.0, 10);
  ASSERT_EQ(controller.level(), DegradeLevel::kSsa);
  controller.Observe(0.0, true);
  EXPECT_EQ(controller.level(), DegradeLevel::kSsa) << "streak leaked";
}

// --- Engine-level determinism and degradation. ---

struct ReplayResult {
  std::vector<Engine::RequestOutcome> outcomes;
  RunStats stats;
};

ReplayResult ReplayWithBudget(const GridWorld& world,
                              const std::vector<Request>& requests,
                              int threads, std::uint64_t request_budget) {
  EngineOptions eopts;
  eopts.num_vehicles = 25;
  eopts.seed = 5;
  eopts.threads = threads;
  eopts.overload.request_budget = request_budget;
  eopts.audit_after_commit = false;  // Keep runs comparable across builds.
  Engine engine(world.graph.get(), world.grid.get(), eopts);
  BaselineMatcher ba;
  SsaMatcher ssa(1.0);
  DsaMatcher dsa(1.0);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};

  ReplayResult result;
  for (const Request& request : requests) {
    result.outcomes.push_back(engine.ProcessRequest(request, matchers));
    const Engine::RequestOutcome& outcome = result.outcomes.back();
    result.stats.ladder_requests[static_cast<int>(outcome.degrade_level)]++;
    if (outcome.shed) ++result.stats.shed_requests;
  }
  return result;
}

TEST(EngineOverloadTest, FixedBudgetIsBitIdenticalAcrossThreadCounts) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 25, .seed = 11});

  // A budget small enough that many results truncate, so the comparison
  // covers the partial-skyline path, not just the complete one.
  const ReplayResult serial = ReplayWithBudget(world, requests, 1, 60);
  const ReplayResult pooled = ReplayWithBudget(world, requests, 4, 60);

  ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
  std::uint64_t partial = 0;
  for (std::size_t r = 0; r < serial.outcomes.size(); ++r) {
    const Engine::RequestOutcome& a = serial.outcomes[r];
    const Engine::RequestOutcome& b = pooled.outcomes[r];
    ASSERT_EQ(a.results.size(), b.results.size()) << "request " << r;
    EXPECT_EQ(a.degrade_level, b.degrade_level) << "request " << r;
    EXPECT_EQ(a.shed, b.shed) << "request " << r;
    EXPECT_EQ(a.served, b.served) << "request " << r;
    for (std::size_t m = 0; m < a.results.size(); ++m) {
      EXPECT_EQ(a.evaluated[m], b.evaluated[m]);
      if (!a.evaluated[m]) continue;
      const MatchResult& ra = a.results[m];
      const MatchResult& rb = b.results[m];
      EXPECT_EQ(ra.complete, rb.complete) << "request " << r << " slot " << m;
      if (!ra.complete) ++partial;
      ASSERT_EQ(ra.options.size(), rb.options.size())
          << "request " << r << " slot " << m;
      for (std::size_t i = 0; i < ra.options.size(); ++i) {
        EXPECT_EQ(ra.options[i].vehicle, rb.options[i].vehicle);
        // Bit-identical, not merely close: per-slot serial execution with
        // deterministic budgets must not depend on the thread count.
        EXPECT_EQ(ra.options[i].pickup_dist, rb.options[i].pickup_dist);
        EXPECT_EQ(ra.options[i].price, rb.options[i].price);
      }
    }
  }
  EXPECT_GT(partial, 0u) << "budget 400 never truncated: test is vacuous";
  EXPECT_EQ(serial.stats.shed_requests, pooled.stats.shed_requests);
  EXPECT_EQ(serial.stats.ladder_requests, pooled.stats.ladder_requests);
}

TEST(EngineOverloadTest, TinyBudgetWalksLadderToShedAndRecovers) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 40, .seed = 4});

  EngineOptions eopts;
  eopts.num_vehicles = 25;
  eopts.seed = 5;
  eopts.overload.request_budget = 1;  // Every matched request exhausts.
  eopts.overload.degrade_after = 1;
  eopts.overload.recover_after = 2;
  eopts.audit_after_commit = false;
  Engine engine(world.graph.get(), world.grid.get(), eopts);
  SsaMatcher ssa(0.16);
  std::vector<Matcher*> matchers = {&ssa};

  const RunStats stats = engine.Run(requests, matchers);

  // The ladder was actually walked: some requests ran degraded, some were
  // shed, and sheds count as unserved.
  EXPECT_GT(stats.ladder_requests[static_cast<int>(DegradeLevel::kSsa)], 0u);
  EXPECT_GT(stats.shed_requests, 0u);
  EXPECT_EQ(stats.shed_requests,
            stats.ladder_requests[static_cast<int>(DegradeLevel::kShed)]);
  EXPECT_GT(stats.partial_skylines, 0u);
  std::uint64_t ladder_total = 0;
  for (const std::uint64_t n : stats.ladder_requests) ladder_total += n;
  EXPECT_EQ(ladder_total, requests.size());
  // recover_after=2 consecutive sheds step the ladder back, so shedding
  // cannot absorb the whole tail of the stream.
  EXPECT_LT(stats.shed_requests, requests.size());
  EXPECT_EQ(stats.served + stats.unserved, requests.size());

  // degrade/* counters mirror the stats.
  EXPECT_EQ(engine.metrics().Counter("degrade/shed_requests"),
            stats.shed_requests);
  EXPECT_GT(engine.metrics().Counter("degrade/level_up"), 0u);
  EXPECT_GT(engine.metrics().Counter("degrade/level_down"), 0u);
}

TEST(EngineOverloadTest, ShedRequestCarriesExplicitStatus) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 30, .seed = 4});

  EngineOptions eopts;
  eopts.num_vehicles = 25;
  eopts.seed = 5;
  eopts.overload.request_budget = 1;
  eopts.overload.degrade_after = 1;
  eopts.overload.recover_after = 100;  // Stay shedding once there.
  eopts.audit_after_commit = false;
  Engine engine(world.graph.get(), world.grid.get(), eopts);
  SsaMatcher ssa(0.16);
  std::vector<Matcher*> matchers = {&ssa};

  bool saw_shed = false;
  for (const Request& request : requests) {
    const Engine::RequestOutcome outcome =
        engine.ProcessRequest(request, matchers);
    if (!outcome.shed) {
      EXPECT_TRUE(outcome.status.ok());
      continue;
    }
    saw_shed = true;
    EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
    EXPECT_FALSE(outcome.served);
    EXPECT_EQ(outcome.degrade_level, DegradeLevel::kShed);
    for (const char evaluated : outcome.evaluated) {
      EXPECT_FALSE(evaluated);
    }
  }
  ASSERT_TRUE(saw_shed);
  EXPECT_EQ(engine.degrade_level(), DegradeLevel::kShed);
}

// --- Schema-v2 report round-trip and back-compat. ---

TEST(ReportRobustnessTest, RunReportRoundTripsThroughSummary) {
  obs::RunReport report;
  report.tool = "overload_test";
  report.served = 31;
  report.unserved = 9;
  report.shared = 12;
  report.shed_requests = 7;
  report.partial_skylines = 5;
  report.ladder_requests = {20, 10, 6, 4};

  const std::string json = obs::RunReportToJson(report);
  const auto summary = obs::ParseReportSummary(json);
  ASSERT_TRUE(summary.ok()) << summary.status().message();
  EXPECT_EQ(summary->schema_version, obs::kReportSchemaVersion);
  EXPECT_EQ(summary->served, 31u);
  EXPECT_EQ(summary->unserved, 9u);
  EXPECT_EQ(summary->shared, 12u);
  EXPECT_EQ(summary->shed_requests, 7u);
  EXPECT_EQ(summary->partial_skylines, 5u);
  EXPECT_EQ(summary->ladder_requests,
            (std::array<std::uint64_t, 4>{20, 10, 6, 4}));
}

TEST(ReportRobustnessTest, EngineRunFeedsRobustnessBlock) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 30, .seed = 4});
  EngineOptions eopts;
  eopts.num_vehicles = 25;
  eopts.overload.request_budget = 1;
  eopts.overload.degrade_after = 1;
  eopts.audit_after_commit = false;
  Engine engine(world.graph.get(), world.grid.get(), eopts);
  SsaMatcher ssa(0.16);
  std::vector<Matcher*> matchers = {&ssa};
  const RunStats stats = engine.Run(requests, matchers);

  const obs::RunReport report =
      BuildRunReport(stats, engine.metrics(), "overload_test");
  const auto summary = obs::ParseReportSummary(obs::RunReportToJson(report));
  ASSERT_TRUE(summary.ok()) << summary.status().message();
  EXPECT_EQ(summary->shed_requests, stats.shed_requests);
  EXPECT_EQ(summary->partial_skylines, stats.partial_skylines);
  EXPECT_EQ(summary->ladder_requests, stats.ladder_requests);
}

TEST(ReportRobustnessTest, V1ReportParsesWithZeroRobustness) {
  // Golden v1 fragment (pre-robustness schema): the reader must accept it
  // and default the whole robustness block to zero.
  const std::string v1 =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"tool\": \"ptar_cli simulate\",\n"
      "  \"served\": 42,\n"
      "  \"unserved\": 3,\n"
      "  \"shared\": 17,\n"
      "  \"matchers\": [],\n"
      "  \"metrics\": {\"counters\": {}, \"histograms\": {}}\n"
      "}\n";
  const auto summary = obs::ParseReportSummary(v1);
  ASSERT_TRUE(summary.ok()) << summary.status().message();
  EXPECT_EQ(summary->schema_version, 1);
  EXPECT_EQ(summary->served, 42u);
  EXPECT_EQ(summary->unserved, 3u);
  EXPECT_EQ(summary->shared, 17u);
  EXPECT_EQ(summary->shed_requests, 0u);
  EXPECT_EQ(summary->partial_skylines, 0u);
  EXPECT_EQ(summary->ladder_requests, (std::array<std::uint64_t, 4>{}));
}

TEST(ReportRobustnessTest, RejectsMissingOrNewerSchema) {
  EXPECT_FALSE(obs::ParseReportSummary("{\"served\": 1}").ok());
  EXPECT_FALSE(
      obs::ParseReportSummary("{\"schema_version\": 99, \"served\": 1}")
          .ok());
}

}  // namespace
}  // namespace ptar
