// Tests for road-network text serialization.

#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(GraphIoTest, RoundTripSmallGrid) {
  const RoadNetwork g = testing::MakeSmallGrid();
  std::stringstream buffer;
  ASSERT_TRUE(SaveNetwork(g, buffer).ok());
  auto loaded = LoadNetwork(buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded->num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded->position(v), g.position(v));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded->EdgeU(e), g.EdgeU(e));
    EXPECT_EQ(loaded->EdgeV(e), g.EdgeV(e));
    EXPECT_DOUBLE_EQ(loaded->EdgeWeight(e), g.EdgeWeight(e));
  }
}

TEST(GraphIoTest, RoundTripPreservesExactDoubles) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0.1234567890123456, -9876.54321});
  b.AddVertex(Coord{1e-7, 3.333333333333333});
  b.AddEdge(0, 1, 0.3333333333333333);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveNetwork(*g, buffer).ok());
  auto loaded = LoadNetwork(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->position(0).x, 0.1234567890123456);
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(0), 0.3333333333333333);
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in;
  in << "# a comment\n\nptar-network 1\n# sizes\n2 1\nv 0 0\nv 1 1\n"
     << "# the edge\ne 0 1 2.5\n";
  auto g = LoadNetwork(in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 2u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0), 2.5);
}

TEST(GraphIoTest, RejectsBadMagic) {
  std::stringstream in;
  in << "wrong-magic 1\n0 0\n";
  EXPECT_FALSE(LoadNetwork(in).ok());
}

TEST(GraphIoTest, RejectsBadVersion) {
  std::stringstream in;
  in << "ptar-network 99\n0 0\n";
  EXPECT_FALSE(LoadNetwork(in).ok());
}

TEST(GraphIoTest, RejectsTruncatedFile) {
  std::stringstream in;
  in << "ptar-network 1\n3 1\nv 0 0\nv 1 1\n";  // missing vertex + edge
  EXPECT_FALSE(LoadNetwork(in).ok());
}

TEST(GraphIoTest, RejectsMalformedRecord) {
  std::stringstream in;
  in << "ptar-network 1\n1 0\nx 0 0\n";
  EXPECT_FALSE(LoadNetwork(in).ok());
}

TEST(GraphIoTest, RejectsInvalidEdgeAtBuild) {
  std::stringstream in;
  in << "ptar-network 1\n2 1\nv 0 0\nv 1 1\ne 0 5 1.0\n";
  EXPECT_FALSE(LoadNetwork(in).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(20, 10, 5);
  const std::string path = ::testing::TempDir() + "/ptar_io_test.net";
  ASSERT_TRUE(SaveNetworkToFile(g, path).ok());
  auto loaded = LoadNetworkFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
}

TEST(GraphIoTest, MissingFileFails) {
  auto loaded = LoadNetworkFromFile("/nonexistent/path/file.net");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ptar
