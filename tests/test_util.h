// Shared helpers for the test suites: small deterministic graphs, random
// connected graphs, and a Floyd-Warshall reference oracle.

#ifndef PTAR_TESTS_TEST_UTIL_H_
#define PTAR_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/road_network.h"

namespace ptar::testing {

/// Derives an independent RNG stream from a base seed and a stream tag
/// (SplitMix64 finalizer). The affine forms previously used for this
/// (`seed * 3 + 1`, `seed * 7 + 3`, ...) collide across parameterized
/// cases — e.g. workload seed 7*1+3 = city seed 3*3+1 — silently reusing
/// one random stream for two supposedly independent inputs.
inline std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// 3x3 grid graph with unit coordinates spaced `spacing` apart and edge
/// weights equal to `spacing`:
///   6-7-8
///   | | |
///   3-4-5
///   | | |
///   0-1-2
inline RoadNetwork MakeSmallGrid(double spacing = 100.0) {
  RoadNetwork::Builder b;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      b.AddVertex(Coord{c * spacing, r * spacing});
    }
  }
  auto at = [](int r, int c) { return static_cast<VertexId>(r * 3 + c); };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) b.AddEdge(at(r, c), at(r, c + 1), spacing);
      if (r + 1 < 3) b.AddEdge(at(r, c), at(r + 1, c), spacing);
    }
  }
  auto result = std::move(b).Build();
  PTAR_CHECK(result.ok());
  return std::move(result).value();
}

/// Random connected graph: a random spanning tree plus `extra_edges` random
/// chords, random positive weights, random coordinates in a box.
inline RoadNetwork MakeRandomConnectedGraph(int num_vertices, int extra_edges,
                                            std::uint64_t seed,
                                            double box = 1000.0) {
  PTAR_CHECK(num_vertices >= 2);
  Rng rng(seed);
  RoadNetwork::Builder b;
  for (int i = 0; i < num_vertices; ++i) {
    b.AddVertex(Coord{rng.UniformReal(0, box), rng.UniformReal(0, box)});
  }
  for (int i = 1; i < num_vertices; ++i) {
    const auto parent = static_cast<VertexId>(rng.UniformIndex(i));
    b.AddEdge(static_cast<VertexId>(i), parent, rng.UniformReal(1.0, 50.0));
  }
  for (int e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<VertexId>(rng.UniformIndex(num_vertices));
    auto v = static_cast<VertexId>(rng.UniformIndex(num_vertices));
    if (u == v) continue;
    b.AddEdge(u, v, rng.UniformReal(1.0, 50.0));
  }
  auto result = std::move(b).Build();
  PTAR_CHECK(result.ok());
  return std::move(result).value();
}

/// Exact all-pairs shortest paths by Floyd-Warshall (reference oracle for
/// Dijkstra and the grid-index bounds). O(V^3): keep graphs small.
inline std::vector<std::vector<Distance>> FloydWarshall(
    const RoadNetwork& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::vector<Distance>> dist(
      n, std::vector<Distance>(n, kInfDistance));
  for (std::size_t v = 0; v < n; ++v) dist[v][v] = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const VertexId u = g.EdgeU(e);
    const VertexId v = g.EdgeV(e);
    const Distance w = g.EdgeWeight(e);
    dist[u][v] = std::min(dist[u][v], w);
    dist[v][u] = std::min(dist[v][u], w);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i][k] == kInfDistance) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (dist[k][j] == kInfDistance) continue;
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  return dist;
}

}  // namespace ptar::testing

#endif  // PTAR_TESTS_TEST_UTIL_H_
