// Engine-level lifecycle contract: the sampled JSONL log is byte-identical
// across engine_threads values (at a pinned wave_size — the same
// determinism contract CommitRecords carry), the classic serial engine
// attributes every request, and the disabled path costs (near) nothing.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "gtest/gtest.h"
#include "obs/lifecycle.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "tests/scenario_builder.h"

namespace ptar {
namespace {

using testing::GridWorld;
using testing::MakeGridWorld;
using testing::MakeRequestStream;

std::string PipelinedLifecycleBuffer(const GridWorld& world,
                                     const std::vector<Request>& requests,
                                     int engine_threads,
                                     double sample_rate) {
  EngineOptions eopts;
  eopts.num_vehicles = 12;
  eopts.seed = 13;
  eopts.engine_threads = engine_threads;
  // The auto wave size depends on engine_threads, so cross-thread-count
  // byte comparisons require pinning it — same contract as CommitRecord
  // equality (see EngineOptions::wave_size).
  eopts.wave_size = 8;
  Engine engine(world.graph.get(), world.grid.get(), eopts);

  obs::LifecycleOptions lopts;
  lopts.path = ::testing::TempDir() + "/engine_lifecycle_t" +
               std::to_string(engine_threads) + ".jsonl";
  lopts.sample_rate = sample_rate;
  lopts.seed = 99;
  obs::LifecycleRecorder recorder(lopts);
  engine.SetLifecycleRecorder(&recorder);

  engine.RunPipelined(requests,
                      [] { return std::make_unique<SsaMatcher>(0.5); });
  return recorder.buffered();
}

TEST(EngineLifecycleTest, PipelinedLogByteIdenticalAcrossThreadCounts) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests =
      MakeRequestStream(*world.graph, {.num_requests = 60});

  const std::string log1 = PipelinedLifecycleBuffer(world, requests, 1, 1.0);
  const std::string log4 = PipelinedLifecycleBuffer(world, requests, 4, 1.0);
  const std::string log8 = PipelinedLifecycleBuffer(world, requests, 8, 1.0);
  ASSERT_FALSE(log1.empty());
  EXPECT_EQ(log1, log4);
  EXPECT_EQ(log1, log8);

  // Every request appears exactly once. (The log is NOT globally id-sorted:
  // conflict losers are recorded after their re-match round resolves — but
  // that order is itself deterministic, which the byte equality above
  // already proved.)
  std::size_t lines = 0;
  for (const char c : log1) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, requests.size());
  for (std::size_t id = 0; id < requests.size(); ++id) {
    const std::string needle = "\"req\":" + std::to_string(id) + ",";
    const std::size_t first = log1.find(needle);
    ASSERT_NE(first, std::string::npos) << "request " << id << " missing";
    EXPECT_EQ(log1.find(needle, first + 1), std::string::npos)
        << "request " << id << " recorded twice";
  }
}

TEST(EngineLifecycleTest, SampledLogIsDeterministicSubsetAcrossThreads) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests =
      MakeRequestStream(*world.graph, {.num_requests = 60});

  const std::string half1 = PipelinedLifecycleBuffer(world, requests, 1, 0.5);
  const std::string half8 = PipelinedLifecycleBuffer(world, requests, 8, 0.5);
  EXPECT_EQ(half1, half8);

  const std::string full = PipelinedLifecycleBuffer(world, requests, 1, 1.0);
  EXPECT_LT(half1.size(), full.size());
  EXPECT_FALSE(half1.empty());  // 60 draws at rate .5 never all miss.
}

TEST(EngineLifecycleTest, ClassicEngineAttributesEveryRequest) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests =
      MakeRequestStream(*world.graph, {.num_requests = 30});

  EngineOptions eopts;
  eopts.num_vehicles = 12;
  eopts.seed = 13;
  Engine engine(world.graph.get(), world.grid.get(), eopts);

  obs::LifecycleOptions lopts;
  lopts.path = ::testing::TempDir() + "/engine_lifecycle_classic.jsonl";
  obs::LifecycleRecorder recorder(lopts);
  engine.SetLifecycleRecorder(&recorder);

  SsaMatcher ssa(0.5);
  std::vector<Matcher*> matchers = {&ssa};
  const RunStats stats = engine.Run(requests, matchers);

  EXPECT_EQ(recorder.events_recorded(), requests.size());
  const std::string& log = recorder.buffered();
  std::size_t served = 0;
  std::size_t unserved = 0;
  for (std::size_t pos = 0;
       (pos = log.find("\"disposition\":\"served\"", pos)) !=
       std::string::npos;
       ++pos) {
    ++served;
  }
  for (std::size_t pos = 0;
       (pos = log.find("\"disposition\":\"unserved\"", pos)) !=
       std::string::npos;
       ++pos) {
    ++unserved;
  }
  EXPECT_EQ(served, stats.served);
  EXPECT_EQ(unserved, stats.unserved);
  // Classic runs have no waves; every event carries wave 0 and the SSA
  // matcher attribution.
  EXPECT_EQ(log.find("\"wave\":1"), std::string::npos);
  EXPECT_NE(log.find("\"matcher\":\"SSA\""), std::string::npos);
  // The deterministic log never carries the wall-clock overlay.
  EXPECT_EQ(log.find("match_us"), std::string::npos);
}

TEST(EngineLifecycleTest, DisabledLifecycleCostsNothingMeasurable) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests =
      MakeRequestStream(*world.graph, {.num_requests = 80});

  const auto run_once = [&](bool telemetry_enabled) {
    EngineOptions eopts;
    eopts.num_vehicles = 12;
    eopts.seed = 13;
    if (!telemetry_enabled) eopts.telemetry.window_seconds = 0.0;
    Engine engine(world.graph.get(), world.grid.get(), eopts);
    // Lifecycle stays unset — the --lifecycle_out-unset configuration.
    SsaMatcher ssa(0.5);
    std::vector<Matcher*> matchers = {&ssa};
    Timer timer;
    engine.Run(requests, matchers);
    return timer.ElapsedMillis();
  };

  // Median of 5 interleaved runs each; the design budget for the whole
  // disabled observability layer is < 2% wall-clock, but a unit test
  // asserting 1.02 on a shared CI box would be noise — the bound here is
  // slack for scheduler jitter while still catching a real per-request
  // regression (which shows up as 2x, not 1.2x).
  std::vector<double> off;
  std::vector<double> on;
  run_once(true);  // Warm caches before timing.
  for (int rep = 0; rep < 5; ++rep) {
    off.push_back(run_once(false));
    on.push_back(run_once(true));
  }
  std::sort(off.begin(), off.end());
  std::sort(on.begin(), on.end());
  const double ratio = on[2] / off[2];
  EXPECT_LT(ratio, 1.20) << "telemetry-on median " << on[2]
                         << " ms vs telemetry-off median " << off[2]
                         << " ms";

  // And the structural half of the guarantee: no recorder attached means
  // nothing is buffered anywhere (checked via a fresh disabled recorder).
  obs::LifecycleRecorder disabled;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.events_recorded(), 0u);
}

}  // namespace
}  // namespace ptar
