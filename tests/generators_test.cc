// Tests for the synthetic road-network generators and component tools.

#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(GridCityTest, DefaultsBuildConnectedCity) {
  GridCityOptions options;
  options.rows = 20;
  options.cols = 20;
  auto g = MakeGridCity(options);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->num_vertices(), 300u);  // most of 400 survive
  EXPECT_TRUE(IsConnected(*g));
}

TEST(GridCityTest, DeterministicForSameSeed) {
  GridCityOptions options;
  options.rows = 15;
  options.cols = 15;
  options.seed = 77;
  auto a = MakeGridCity(options);
  auto b = MakeGridCity(options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_vertices(), b->num_vertices());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  for (EdgeId e = 0; e < a->num_edges(); ++e) {
    EXPECT_EQ(a->EdgeU(e), b->EdgeU(e));
    EXPECT_EQ(a->EdgeV(e), b->EdgeV(e));
    EXPECT_DOUBLE_EQ(a->EdgeWeight(e), b->EdgeWeight(e));
  }
}

TEST(GridCityTest, DifferentSeedsDiffer) {
  GridCityOptions a_opts;
  a_opts.seed = 1;
  GridCityOptions b_opts;
  b_opts.seed = 2;
  auto a = MakeGridCity(a_opts);
  auto b = MakeGridCity(b_opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->num_vertices() != b->num_vertices() ||
              a->num_edges() != b->num_edges() ||
              a->position(0).x != b->position(0).x);
}

TEST(GridCityTest, RejectsTinyGrid) {
  GridCityOptions options;
  options.rows = 1;
  EXPECT_FALSE(MakeGridCity(options).ok());
}

TEST(GridCityTest, RejectsNonPositiveSpacing) {
  GridCityOptions options;
  options.spacing_meters = 0.0;
  EXPECT_FALSE(MakeGridCity(options).ok());
}

TEST(GridCityTest, NoRemovalKeepsFullGrid) {
  GridCityOptions options;
  options.rows = 10;
  options.cols = 12;
  options.removal_prob = 0.0;
  options.diagonal_prob = 0.0;
  auto g = MakeGridCity(options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 120u);
  EXPECT_EQ(g->num_edges(), 10u * 11u + 12u * 9u);
}

TEST(RingRadialTest, BuildsConnectedCity) {
  RingRadialCityOptions options;
  auto g = MakeRingRadialCity(options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(),
            1u + static_cast<std::size_t>(options.rings * options.spokes));
  EXPECT_TRUE(IsConnected(*g));
}

TEST(RingRadialTest, HubReachesOuterRing) {
  RingRadialCityOptions options;
  options.rings = 5;
  options.spokes = 8;
  options.weight_jitter = 0.0;
  auto g = MakeRingRadialCity(options);
  ASSERT_TRUE(g.ok());
  DijkstraEngine engine(&*g);
  // Straight out along a spoke: 5 rings * 250 m.
  const VertexId outer = 1 + 4 * 8 + 0;
  EXPECT_NEAR(engine.PointToPoint(0, outer), 5 * 250.0, 1e-9);
}

TEST(RingRadialTest, RejectsBadShape) {
  RingRadialCityOptions options;
  options.spokes = 2;
  EXPECT_FALSE(MakeRingRadialCity(options).ok());
}

TEST(ComponentsTest, CountsComponents) {
  RoadNetwork::Builder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(Coord{double(i), 0});
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(3, 4, 1.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  const ComponentLabels labels = ConnectedComponents(*g);
  EXPECT_EQ(labels.count, 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(labels.label[0], labels.label[2]);
  EXPECT_NE(labels.label[0], labels.label[3]);
  EXPECT_FALSE(IsConnected(*g));
}

TEST(ComponentsTest, LargestComponentExtractsAndRemaps) {
  RoadNetwork::Builder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(Coord{double(i), 0});
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.5);
  b.AddEdge(3, 4, 1.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> mapping;
  auto lc = LargestComponent(*g, &mapping);
  ASSERT_TRUE(lc.ok());
  EXPECT_EQ(lc->num_vertices(), 3u);
  EXPECT_EQ(lc->num_edges(), 2u);
  EXPECT_TRUE(IsConnected(*lc));
  EXPECT_NE(mapping[0], kInvalidVertex);
  EXPECT_EQ(mapping[5], kInvalidVertex);
  // Edge weights survive the remap.
  DijkstraEngine engine(&*lc);
  EXPECT_NEAR(engine.PointToPoint(mapping[0], mapping[2]), 2.5, 1e-9);
}

TEST(ComponentsTest, EmptyGraphIsConnected) {
  RoadNetwork g;
  EXPECT_TRUE(IsConnected(g));
}

}  // namespace
}  // namespace ptar
