// Tests for the Dijkstra engine, including a randomized property sweep
// against a Floyd-Warshall oracle.

#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(DijkstraTest, TrivialSameVertex) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DijkstraEngine engine(&g);
  EXPECT_DOUBLE_EQ(engine.PointToPoint(4, 4), 0.0);
}

TEST(DijkstraTest, GridDistances) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DijkstraEngine engine(&g);
  EXPECT_DOUBLE_EQ(engine.PointToPoint(0, 8), 400.0);  // corner to corner
  EXPECT_DOUBLE_EQ(engine.PointToPoint(0, 4), 200.0);
  EXPECT_DOUBLE_EQ(engine.PointToPoint(3, 5), 200.0);
}

TEST(DijkstraTest, UnreachableReturnsInfinity) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{1, 0});
  b.AddVertex(Coord{2, 0});
  b.AddEdge(0, 1, 1.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  DijkstraEngine engine(&*g);
  EXPECT_EQ(engine.PointToPoint(0, 2), kInfDistance);
}

TEST(DijkstraTest, SingleSourceMatchesPointToPoint) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(40, 60, 3);
  DijkstraEngine full(&g);
  DijkstraEngine p2p(&g);
  full.SingleSource(0);
  // Snapshot before p2p runs invalidate nothing (separate engines).
  for (VertexId t = 0; t < g.num_vertices(); ++t) {
    EXPECT_DOUBLE_EQ(full.Dist(t), p2p.PointToPoint(0, t)) << "t=" << t;
  }
}

TEST(DijkstraTest, PathReconstructionIsConsistent) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(30, 40, 11);
  DijkstraEngine engine(&g);
  const Distance d = engine.PointToPoint(0, 17);
  const std::vector<VertexId> path = engine.PathTo(17);
  ASSERT_GE(path.size(), 1u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 17u);
  // Sum of edge weights along the path equals the reported distance.
  Distance sum = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Distance best = kInfDistance;
    for (const Arc& a : g.OutArcs(path[i])) {
      if (a.head == path[i + 1]) best = std::min(best, a.weight);
    }
    ASSERT_NE(best, kInfDistance);
    sum += best;
  }
  EXPECT_NEAR(sum, d, 1e-9);
}

TEST(DijkstraTest, PathToUnreachedIsEmpty) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{1, 0});
  b.AddVertex(Coord{2, 0});
  b.AddEdge(0, 1, 1.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  DijkstraEngine engine(&*g);
  engine.PointToPoint(0, 2);
  EXPECT_TRUE(engine.PathTo(2).empty());
}

TEST(DijkstraTest, TargetsStopEarlyButAreExact) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(60, 80, 5);
  DijkstraEngine engine(&g);
  DijkstraEngine reference(&g);
  reference.SingleSource(3);
  const std::vector<VertexId> targets = {7, 19, 42};
  engine.SingleSourceToTargets(3, targets);
  for (const VertexId t : targets) {
    EXPECT_DOUBLE_EQ(engine.Dist(t), reference.Dist(t));
    EXPECT_TRUE(engine.Settled(t));
  }
}

TEST(DijkstraTest, TargetsWithDuplicates) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DijkstraEngine engine(&g);
  const std::vector<VertexId> targets = {8, 8, 8};
  engine.SingleSourceToTargets(0, targets);
  EXPECT_DOUBLE_EQ(engine.Dist(8), 400.0);
}

TEST(DijkstraTest, TargetsDisconnectedAreInfinity) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{1, 0});
  b.AddVertex(Coord{2, 0});  // isolated
  b.AddVertex(Coord{3, 0});  // isolated
  b.AddEdge(0, 1, 5.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  DijkstraEngine engine(&*g);
  // The run must terminate (heap exhaustion) even though two targets can
  // never be settled, and reachable targets must still be exact.
  const std::vector<VertexId> targets = {1, 2, 3};
  engine.SingleSourceToTargets(0, targets);
  EXPECT_DOUBLE_EQ(engine.Dist(1), 5.0);
  EXPECT_TRUE(engine.Settled(1));
  EXPECT_EQ(engine.Dist(2), kInfDistance);
  EXPECT_FALSE(engine.Settled(2));
  EXPECT_EQ(engine.Dist(3), kInfDistance);
  EXPECT_FALSE(engine.Settled(3));
}

TEST(DijkstraTest, TargetsContainingSource) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DijkstraEngine engine(&g);
  const std::vector<VertexId> targets = {0, 8};
  engine.SingleSourceToTargets(0, targets);
  EXPECT_DOUBLE_EQ(engine.Dist(0), 0.0);
  EXPECT_TRUE(engine.Settled(0));
  EXPECT_DOUBLE_EQ(engine.Dist(8), 400.0);
  EXPECT_TRUE(engine.Settled(8));
}

TEST(DijkstraTest, TargetsOnlySource) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DijkstraEngine engine(&g);
  const std::vector<VertexId> targets = {4, 4};
  engine.SingleSourceToTargets(4, targets);
  EXPECT_DOUBLE_EQ(engine.Dist(4), 0.0);
  EXPECT_TRUE(engine.Settled(4));
  // A later unrelated run must not be confused by the degenerate one.
  engine.SingleSourceToTargets(0, std::vector<VertexId>{8});
  EXPECT_DOUBLE_EQ(engine.Dist(8), 400.0);
}

TEST(DijkstraTest, TargetsMixedDuplicatesSourceAndUnreachable) {
  RoadNetwork::Builder b;
  for (int i = 0; i < 5; ++i) b.AddVertex(Coord{double(i), 0});
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 2.0);
  b.AddEdge(3, 4, 1.0);  // separate component
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  DijkstraEngine engine(&*g);
  const std::vector<VertexId> targets = {2, 0, 2, 4, 0, 4};
  engine.SingleSourceToTargets(0, targets);
  EXPECT_DOUBLE_EQ(engine.Dist(0), 0.0);
  EXPECT_DOUBLE_EQ(engine.Dist(2), 3.0);
  EXPECT_EQ(engine.Dist(4), kInfDistance);
}

TEST(DijkstraTest, TargetsMatchBitIdenticalPointToPoint) {
  // The batched distance engine relies on a sweep settling every target
  // with exactly the value an early-terminated point-to-point run reports.
  const RoadNetwork g = testing::MakeRandomConnectedGraph(60, 90, 29);
  DijkstraEngine sweep(&g);
  DijkstraEngine p2p(&g);
  const VertexId source = 31;
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < g.num_vertices(); t += 4) targets.push_back(t);
  sweep.SingleSourceToTargets(source, targets);
  std::vector<Distance> swept;
  swept.reserve(targets.size());
  for (const VertexId t : targets) swept.push_back(sweep.Dist(t));
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const Distance direct = p2p.PointToPoint(source, targets[i]);
    EXPECT_EQ(swept[i], direct) << "t=" << targets[i];  // exact bits
  }
}

TEST(DijkstraTest, BoundedStopsAtRadius) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DijkstraEngine engine(&g);
  engine.BoundedSingleSource(0, 150.0);
  EXPECT_TRUE(engine.Settled(1));
  EXPECT_TRUE(engine.Settled(3));
  EXPECT_FALSE(engine.Settled(8));  // 400 away
}

TEST(DijkstraTest, MultiSourceMinimum) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DijkstraEngine engine(&g);
  const std::vector<DijkstraSource> sources = {{0, 0.0, 1}, {8, 0.0, 2}};
  engine.MultiSource(sources);
  // Vertex 1 is 100 from source 0 and 300 from source 8.
  EXPECT_DOUBLE_EQ(engine.Dist(1), 100.0);
  EXPECT_EQ(engine.SourceLabel(1), 1u);
  EXPECT_DOUBLE_EQ(engine.Dist(7), 100.0);
  EXPECT_EQ(engine.SourceLabel(7), 2u);
}

TEST(DijkstraTest, MultiSourceOffsets) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DijkstraEngine engine(&g);
  // Source 0 handicapped by 500: source 8 wins everywhere.
  const std::vector<DijkstraSource> sources = {{0, 500.0, 1}, {8, 0.0, 2}};
  engine.MultiSource(sources);
  EXPECT_EQ(engine.SourceLabel(0), 2u);
  EXPECT_DOUBLE_EQ(engine.Dist(0), 400.0);
}

TEST(DijkstraTest, ReuseAcrossManyRuns) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(25, 30, 17);
  DijkstraEngine engine(&g);
  DijkstraEngine reference(&g);
  const auto fw = testing::FloydWarshall(g);
  // Interleave run types to exercise the stamp machinery.
  for (int round = 0; round < 50; ++round) {
    const VertexId s = round % g.num_vertices();
    const VertexId t = (round * 7 + 3) % g.num_vertices();
    EXPECT_NEAR(engine.PointToPoint(s, t), fw[s][t], 1e-9);
    engine.SingleSource(t);
    EXPECT_NEAR(engine.Dist(s), fw[t][s], 1e-9);
  }
}

TEST(DijkstraTest, MultiSourceWithNoSourcesReachesNothing) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DijkstraEngine engine(&g);
  engine.MultiSource({});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(engine.Dist(v), kInfDistance);
    EXPECT_FALSE(engine.Settled(v));
  }
}

TEST(DijkstraTest, BoundedRadiusZeroSettlesOnlySource) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DijkstraEngine engine(&g);
  engine.BoundedSingleSource(4, 0.0);
  EXPECT_TRUE(engine.Settled(4));
  EXPECT_DOUBLE_EQ(engine.Dist(4), 0.0);
  EXPECT_FALSE(engine.Settled(1));
}

TEST(DijkstraTest, SettledCountTracksWork) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DijkstraEngine engine(&g);
  engine.SingleSource(0);
  EXPECT_EQ(engine.last_settled_count(), g.num_vertices());
  engine.PointToPoint(0, 1);  // adjacent: stops early
  EXPECT_LT(engine.last_settled_count(), g.num_vertices());
}

TEST(DijkstraTest, ParallelEdgesUseTheCheapest) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{1, 0});
  b.AddEdge(0, 1, 10.0);
  b.AddEdge(0, 1, 3.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  DijkstraEngine engine(&*g);
  EXPECT_DOUBLE_EQ(engine.PointToPoint(0, 1), 3.0);
}

// Property sweep: Dijkstra (all variants) vs. Floyd-Warshall on random
// connected graphs of varying density.
class DijkstraPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(DijkstraPropertyTest, MatchesFloydWarshall) {
  const auto [n, extra, seed] = GetParam();
  const RoadNetwork g = testing::MakeRandomConnectedGraph(n, extra, seed);
  const auto fw = testing::FloydWarshall(g);
  DijkstraEngine engine(&g);
  for (VertexId s = 0; s < g.num_vertices(); s += 3) {
    engine.SingleSource(s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      EXPECT_NEAR(engine.Dist(t), fw[s][t], 1e-9)
          << "s=" << s << " t=" << t;
    }
  }
  for (VertexId s = 1; s < g.num_vertices(); s += 7) {
    for (VertexId t = 0; t < g.num_vertices(); t += 5) {
      EXPECT_NEAR(engine.PointToPoint(s, t), fw[s][t], 1e-9)
          << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, DijkstraPropertyTest,
    ::testing::Values(std::make_tuple(15, 0, 1),    // tree
                      std::make_tuple(20, 10, 2),   // sparse
                      std::make_tuple(25, 60, 3),   // dense
                      std::make_tuple(40, 40, 4),
                      std::make_tuple(50, 120, 5),
                      std::make_tuple(30, 30, 6),
                      std::make_tuple(35, 200, 7)));  // very dense

}  // namespace
}  // namespace ptar
