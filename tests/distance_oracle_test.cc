// Tests for the counting, caching distance oracle.

#include "graph/distance_oracle.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(DistanceOracleTest, ExactDistances) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DistanceOracle oracle(&g);
  EXPECT_DOUBLE_EQ(oracle.Dist(0, 8), 400.0);
  EXPECT_DOUBLE_EQ(oracle.Dist(0, 0), 0.0);
}

TEST(DistanceOracleTest, CountsOnlyRealComputations) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  EXPECT_EQ(oracle.compdists(), 0u);
  oracle.Dist(0, 8);
  EXPECT_EQ(oracle.compdists(), 1u);
  oracle.Dist(0, 8);  // cache hit
  EXPECT_EQ(oracle.compdists(), 1u);
  oracle.Dist(8, 0);  // symmetric cache hit
  EXPECT_EQ(oracle.compdists(), 1u);
  oracle.Dist(1, 2);
  EXPECT_EQ(oracle.compdists(), 2u);
}

TEST(DistanceOracleTest, SameVertexIsFree) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  EXPECT_DOUBLE_EQ(oracle.Dist(3, 3), 0.0);
  EXPECT_EQ(oracle.compdists(), 0u);
}

TEST(DistanceOracleTest, ClearCacheForcesRecount) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  oracle.Dist(0, 8);
  oracle.ClearCache();
  oracle.Dist(0, 8);
  EXPECT_EQ(oracle.compdists(), 2u);
}

TEST(DistanceOracleTest, ResetStatsKeepsCache) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  oracle.Dist(0, 8);
  oracle.ResetStats();
  EXPECT_EQ(oracle.compdists(), 0u);
  oracle.Dist(0, 8);  // still cached
  EXPECT_EQ(oracle.compdists(), 0u);
}

TEST(DistanceOracleTest, PathMatchesDistance) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(30, 50, 9);
  DistanceOracle oracle(&g);
  const std::vector<VertexId> path = oracle.Path(2, 21);
  ASSERT_GE(path.size(), 1u);
  EXPECT_EQ(path.front(), 2u);
  EXPECT_EQ(path.back(), 21u);
  const std::uint64_t before = oracle.compdists();
  const Distance d = oracle.Dist(2, 21);  // cached by Path
  EXPECT_EQ(oracle.compdists(), before);
  Distance sum = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Distance best = kInfDistance;
    for (const Arc& a : g.OutArcs(path[i])) {
      if (a.head == path[i + 1]) best = std::min(best, a.weight);
    }
    sum += best;
  }
  EXPECT_NEAR(sum, d, 1e-9);
}

TEST(DistanceOracleTest, AgreesWithFloydWarshall) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(25, 35, 21);
  const auto fw = testing::FloydWarshall(g);
  DistanceOracle oracle(&g);
  for (VertexId a = 0; a < g.num_vertices(); a += 2) {
    for (VertexId b = 1; b < g.num_vertices(); b += 3) {
      EXPECT_NEAR(oracle.Dist(a, b), fw[a][b], 1e-9);
    }
  }
}

TEST(DistanceOracleTest, ClearCacheKeepsBucketCapacity) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(40, 60, 5);
  DistanceOracle oracle(&g);
  for (VertexId t = 1; t < g.num_vertices(); ++t) oracle.Dist(0, t);
  const std::size_t buckets = oracle.cache_bucket_count();
  EXPECT_GT(buckets, 0u);
  oracle.ClearCache();
  EXPECT_EQ(oracle.cache_size(), 0u);
  // Steady-state request processing must not rehash from scratch.
  EXPECT_EQ(oracle.cache_bucket_count(), buckets);
}

TEST(BatchDistTest, MatchesSerialDistBitForBit) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(50, 80, 17);
  DistanceOracle serial(&g);
  DistanceOracle batched(&g);
  const VertexId source = 23;
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < g.num_vertices(); t += 3) targets.push_back(t);
  std::vector<Distance> expected;
  for (const VertexId t : targets) expected.push_back(serial.Dist(source, t));
  std::vector<Distance> got;
  batched.BatchDist(source, targets, &got);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "i=" << i;  // exact bits, not NEAR
  }
  EXPECT_EQ(batched.compdists(), serial.compdists());
}

TEST(BatchDistTest, CountsEachUncachedPairOnce) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  std::vector<Distance> out;
  // 5 requested pairs: one duplicate, one source==target.
  const std::vector<VertexId> targets = {8, 2, 8, 0, 6};
  oracle.BatchDist(0, targets, &out);
  EXPECT_EQ(oracle.compdists(), 3u);  // {8, 2, 6}
  EXPECT_DOUBLE_EQ(out[3], 0.0);
  EXPECT_EQ(out[0], out[2]);
  EXPECT_EQ(oracle.batch_stats().sweeps, 1u);
  EXPECT_EQ(oracle.batch_stats().pairs_swept, 3u);
  // Re-batching the same targets is all cache hits: no sweep, no count.
  oracle.BatchDist(0, targets, &out);
  EXPECT_EQ(oracle.compdists(), 3u);
  EXPECT_EQ(oracle.batch_stats().sweeps, 1u);
}

TEST(BatchDistTest, MixedCachedAndUncached) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DistanceOracle oracle(&g);
  const Distance d8 = oracle.Dist(0, 8);
  EXPECT_EQ(oracle.compdists(), 1u);
  std::vector<Distance> out;
  const std::vector<VertexId> targets = {8, 4, 2};
  oracle.BatchDist(0, targets, &out);
  EXPECT_EQ(out[0], d8);  // served from cache, identical bits
  EXPECT_DOUBLE_EQ(out[1], 200.0);
  EXPECT_DOUBLE_EQ(out[2], 200.0);
  EXPECT_EQ(oracle.compdists(), 3u);
  EXPECT_EQ(oracle.batch_stats().pairs_from_cache, 1u);
}

TEST(BatchDistTest, UnreachableTargetIsInfinity) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{1, 0});
  b.AddVertex(Coord{2, 0});
  b.AddEdge(0, 1, 1.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  DistanceOracle oracle(&*g);
  std::vector<Distance> out;
  const std::vector<VertexId> targets = {1, 2};
  oracle.BatchDist(0, targets, &out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], kInfDistance);
  EXPECT_EQ(oracle.compdists(), 2u);  // unreachable still counts, like Dist
  EXPECT_EQ(oracle.Dist(0, 2), kInfDistance);
  EXPECT_EQ(oracle.compdists(), 2u);  // ... and is cached
}

TEST(WarmFromTest, CountsOnlyOnUse) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DistanceOracle oracle(&g);
  const std::vector<VertexId> targets = {8, 4, 2};
  oracle.WarmFrom(0, targets);
  EXPECT_EQ(oracle.compdists(), 0u);  // speculative: nothing counted yet
  EXPECT_EQ(oracle.batch_stats().sweeps, 1u);
  EXPECT_DOUBLE_EQ(oracle.Dist(8, 0), 400.0);  // promoted (either direction)
  EXPECT_EQ(oracle.compdists(), 1u);
  EXPECT_EQ(oracle.batch_stats().warm_hits, 1u);
  oracle.Dist(0, 8);  // now a plain cache hit
  // Pairs never asked for ({0,4}, {0,2}) are never counted.
  EXPECT_EQ(oracle.compdists(), 1u);
}

TEST(WarmFromTest, WarmValueMatchesFreshSweepBits) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(40, 70, 9);
  DistanceOracle warmed(&g);
  DistanceOracle batched(&g);
  const VertexId source = 11;
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < g.num_vertices(); t += 2) targets.push_back(t);
  warmed.WarmFrom(source, targets);
  std::vector<Distance> direct;
  batched.BatchDist(source, targets, &direct);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] == source) continue;
    EXPECT_EQ(warmed.Dist(source, targets[i]), direct[i]) << "i=" << i;
  }
  EXPECT_EQ(warmed.compdists(), batched.compdists());
}

TEST(WarmFromTest, ClearCacheDropsWarmStore) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  oracle.WarmFrom(0, std::vector<VertexId>{8});
  oracle.ClearCache();
  oracle.Dist(0, 8);
  EXPECT_EQ(oracle.compdists(), 1u);
  EXPECT_EQ(oracle.batch_stats().warm_hits, 0u);  // computed, not promoted
}

}  // namespace
}  // namespace ptar
