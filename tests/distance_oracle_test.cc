// Tests for the counting, caching distance oracle.

#include "graph/distance_oracle.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(DistanceOracleTest, ExactDistances) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  DistanceOracle oracle(&g);
  EXPECT_DOUBLE_EQ(oracle.Dist(0, 8), 400.0);
  EXPECT_DOUBLE_EQ(oracle.Dist(0, 0), 0.0);
}

TEST(DistanceOracleTest, CountsOnlyRealComputations) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  EXPECT_EQ(oracle.compdists(), 0u);
  oracle.Dist(0, 8);
  EXPECT_EQ(oracle.compdists(), 1u);
  oracle.Dist(0, 8);  // cache hit
  EXPECT_EQ(oracle.compdists(), 1u);
  oracle.Dist(8, 0);  // symmetric cache hit
  EXPECT_EQ(oracle.compdists(), 1u);
  oracle.Dist(1, 2);
  EXPECT_EQ(oracle.compdists(), 2u);
}

TEST(DistanceOracleTest, SameVertexIsFree) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  EXPECT_DOUBLE_EQ(oracle.Dist(3, 3), 0.0);
  EXPECT_EQ(oracle.compdists(), 0u);
}

TEST(DistanceOracleTest, ClearCacheForcesRecount) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  oracle.Dist(0, 8);
  oracle.ClearCache();
  oracle.Dist(0, 8);
  EXPECT_EQ(oracle.compdists(), 2u);
}

TEST(DistanceOracleTest, ResetStatsKeepsCache) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  oracle.Dist(0, 8);
  oracle.ResetStats();
  EXPECT_EQ(oracle.compdists(), 0u);
  oracle.Dist(0, 8);  // still cached
  EXPECT_EQ(oracle.compdists(), 0u);
}

TEST(DistanceOracleTest, PathMatchesDistance) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(30, 50, 9);
  DistanceOracle oracle(&g);
  const std::vector<VertexId> path = oracle.Path(2, 21);
  ASSERT_GE(path.size(), 1u);
  EXPECT_EQ(path.front(), 2u);
  EXPECT_EQ(path.back(), 21u);
  const std::uint64_t before = oracle.compdists();
  const Distance d = oracle.Dist(2, 21);  // cached by Path
  EXPECT_EQ(oracle.compdists(), before);
  Distance sum = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Distance best = kInfDistance;
    for (const Arc& a : g.OutArcs(path[i])) {
      if (a.head == path[i + 1]) best = std::min(best, a.weight);
    }
    sum += best;
  }
  EXPECT_NEAR(sum, d, 1e-9);
}

TEST(DistanceOracleTest, AgreesWithFloydWarshall) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(25, 35, 21);
  const auto fw = testing::FloydWarshall(g);
  DistanceOracle oracle(&g);
  for (VertexId a = 0; a < g.num_vertices(); a += 2) {
    for (VertexId b = 1; b < g.num_vertices(); b += 3) {
      EXPECT_NEAR(oracle.Dist(a, b), fw[a][b], 1e-9);
    }
  }
}

}  // namespace
}  // namespace ptar
