// Verifies KineticTree::MemoryBytes (and the legacy tree's honest
// accounting) against a malloc-counting global allocator: the reported
// figure for a freshly copied tree must equal the bytes the copy actually
// allocated, to the byte. A copy is the right subject because vector copy
// constructors allocate exactly size() elements, making capacity
// bookkeeping deterministic.
//
// The binary overrides global operator new/delete, so it must stay out of
// the sanitizer sweeps (allocator interposition would double-count); see
// tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "check/tree_twin.h"
#include "graph/distance_oracle.h"
#include "kinetic/kinetic_tree.h"
#include "tests/test_util.h"

namespace {

// Live requested-byte counter. Every allocation carries a 16-byte header
// holding its requested size so deallocation can subtract exactly.
std::atomic<std::int64_t> g_live_bytes{0};
constexpr std::size_t kHeader = 16;
static_assert(kHeader >= sizeof(std::size_t));
static_assert(kHeader % alignof(std::max_align_t) == 0);

void* CountingAlloc(std::size_t n) {
  void* raw = std::malloc(n + kHeader);
  if (raw == nullptr) return nullptr;
  *static_cast<std::size_t*>(raw) = n;
  g_live_bytes.fetch_add(static_cast<std::int64_t>(n),
                         std::memory_order_relaxed);
  return static_cast<char*>(raw) + kHeader;
}

void CountingFree(void* p) {
  if (p == nullptr) return;
  void* raw = static_cast<char*>(p) - kHeader;
  g_live_bytes.fetch_sub(
      static_cast<std::int64_t>(*static_cast<std::size_t*>(raw)),
      std::memory_order_relaxed);
  std::free(raw);
}

std::int64_t LiveBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = CountingAlloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return CountingAlloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t& tag) noexcept {
  return operator new(n, tag);
}
void operator delete(void* p) noexcept { CountingFree(p); }
void operator delete[](void* p) noexcept { CountingFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountingFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountingFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  CountingFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountingFree(p);
}

namespace ptar {
namespace {

using check::LegacyKineticTree;

/// Grows matching legacy/arena trees with a few committed requests on the
/// small grid so both hold a real multi-branch state.
struct TwinTrees {
  DistanceOracle oracle;
  KineticTree::DistFn dist;
  LegacyKineticTree legacy;
  KineticTree arena;

  explicit TwinTrees(const RoadNetwork* g)
      : oracle(g),
        dist([this](VertexId a, VertexId b) { return oracle.Dist(a, b); }),
        legacy(0, 0, 4),
        arena(0, 0, 4) {}
};

void GrowTrees(TwinTrees* t) {
  RequestId next_id = 1;
  const std::pair<VertexId, VertexId> trips[] = {{1, 8}, {3, 5}, {6, 2}};
  for (const auto& [s, d] : trips) {
    Request r;
    r.id = next_id++;
    r.start = s;
    r.destination = d;
    r.riders = 1;
    r.max_wait_dist = 1500.0;
    r.epsilon = 1.5;
    const Distance direct = t->dist(s, d);
    ASSERT_TRUE(t->legacy.Commit(r, direct, direct, t->dist).ok());
    ASSERT_TRUE(t->arena.Commit(r, direct, direct, t->dist).ok());
  }
  ASSERT_GT(t->arena.num_branches(), 1u);
}

TEST(KineticMemoryTest, ArenaMemoryBytesMatchesAllocatorExactly) {
  const RoadNetwork g = testing::MakeSmallGrid();
  TwinTrees t(&g);
  GrowTrees(&t);

  const std::int64_t before = LiveBytes();
  KineticTree copy(t.arena);
  const std::int64_t after = LiveBytes();

  EXPECT_EQ(after - before,
            static_cast<std::int64_t>(copy.MemoryBytes() -
                                      sizeof(KineticTree)));
  EXPECT_GT(copy.MemoryBytes(), sizeof(KineticTree));
}

TEST(KineticMemoryTest, LegacyHonestAccountingMatchesAllocatorExactly) {
  const RoadNetwork g = testing::MakeSmallGrid();
  TwinTrees t(&g);
  GrowTrees(&t);

  const std::int64_t before = LiveBytes();
  LegacyKineticTree copy(t.legacy);
  const std::int64_t after = LiveBytes();

  // alloc_overhead=0 isolates the requested-byte figure the counting
  // allocator sees; the default 16 adds the real-world malloc header the
  // bench uses for the honest baseline.
  EXPECT_EQ(after - before,
            static_cast<std::int64_t>(copy.MemoryBytes(0) -
                                      sizeof(LegacyKineticTree)));
  EXPECT_GT(copy.MemoryBytes(16), copy.MemoryBytes(0));
}

TEST(KineticMemoryTest, ArenaIsSmallerThanLegacyOnSharedBranches) {
  const RoadNetwork g = testing::MakeSmallGrid();
  TwinTrees t(&g);
  GrowTrees(&t);

  // Copies normalize capacity to size, so this compares intrinsic
  // representation cost, not growth slack.
  const KineticTree arena_copy(t.arena);
  const LegacyKineticTree legacy_copy(t.legacy);
  EXPECT_LT(arena_copy.MemoryBytes(), legacy_copy.MemoryBytes());
}

TEST(KineticMemoryTest, IdleArenaTreeOwnsNoHeap) {
  KineticTree idle(7, 3, 4);
  const std::int64_t before = LiveBytes();
  KineticTree copy(idle);
  const std::int64_t after = LiveBytes();
  EXPECT_EQ(after - before, 0);
  EXPECT_EQ(copy.MemoryBytes(), sizeof(KineticTree));
}

}  // namespace
}  // namespace ptar
