// Schema-evolution contract for run reports: fixture documents for every
// historical version (v1-v4) must keep parsing, with missing blocks
// reading as zero/empty, and documents from the future must be rejected
// with a friendly error naming the version — never misparsed.

#include <string>

#include "gtest/gtest.h"
#include "obs/report.h"

namespace ptar::obs {
namespace {

// A v1 report as the original writer emitted it: headline counts,
// matchers, metrics — no robustness / pipeline / timeseries blocks.
constexpr const char* kV1Fixture = R"({
  "schema_version": 1,
  "git_describe": "v1-fixture",
  "tool": "ptar_cli simulate",
  "served": 10,
  "unserved": 2,
  "shared": 4,
  "matchers": [],
  "metrics": {"counters": {}, "histograms": {}}
})";

// v2 added the "robustness" object.
constexpr const char* kV2Fixture = R"({
  "schema_version": 2,
  "git_describe": "v2-fixture",
  "tool": "ptar_cli simulate",
  "served": 20,
  "unserved": 5,
  "shared": 8,
  "robustness": {
    "shed_requests": 3,
    "partial_skylines": 2,
    "ladder_requests": [15, 5, 2, 3]
  },
  "matchers": [],
  "metrics": {"counters": {}, "histograms": {}}
})";

// v3 added the "pipeline" object.
constexpr const char* kV3Fixture = R"({
  "schema_version": 3,
  "git_describe": "v3-fixture",
  "tool": "ptar_cli simulate",
  "served": 30,
  "unserved": 1,
  "shared": 12,
  "robustness": {
    "shed_requests": 0,
    "partial_skylines": 0,
    "ladder_requests": [31, 0, 0, 0]
  },
  "pipeline": {
    "waves": 7,
    "conflicts": 5,
    "rematches": 4,
    "serial_rematches": 1
  },
  "matchers": [],
  "metrics": {"counters": {}, "histograms": {}}
})";

TEST(ReportCompatTest, V1FixtureParsesWithLaterBlocksZero) {
  const auto summary = ParseReportSummary(kV1Fixture);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->schema_version, 1);
  EXPECT_EQ(summary->served, 10u);
  EXPECT_EQ(summary->unserved, 2u);
  EXPECT_EQ(summary->shared, 4u);
  EXPECT_EQ(summary->shed_requests, 0u);
  EXPECT_EQ(summary->partial_skylines, 0u);
  EXPECT_EQ(summary->waves, 0u);
  EXPECT_EQ(summary->conflicts, 0u);

  const auto timeseries = ParseTimeseries(kV1Fixture);
  ASSERT_TRUE(timeseries.ok()) << timeseries.status();
  EXPECT_TRUE(timeseries->windows.empty());
}

TEST(ReportCompatTest, V2FixtureParsesRobustnessBlock) {
  const auto summary = ParseReportSummary(kV2Fixture);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->schema_version, 2);
  EXPECT_EQ(summary->shed_requests, 3u);
  EXPECT_EQ(summary->partial_skylines, 2u);
  EXPECT_EQ(summary->ladder_requests[0], 15u);
  EXPECT_EQ(summary->ladder_requests[3], 3u);
  EXPECT_EQ(summary->waves, 0u);

  const auto timeseries = ParseTimeseries(kV2Fixture);
  ASSERT_TRUE(timeseries.ok()) << timeseries.status();
  EXPECT_TRUE(timeseries->windows.empty());
}

TEST(ReportCompatTest, V3FixtureParsesPipelineBlock) {
  const auto summary = ParseReportSummary(kV3Fixture);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->schema_version, 3);
  EXPECT_EQ(summary->waves, 7u);
  EXPECT_EQ(summary->conflicts, 5u);
  EXPECT_EQ(summary->rematches, 4u);
  EXPECT_EQ(summary->serial_rematches, 1u);

  const auto timeseries = ParseTimeseries(kV3Fixture);
  ASSERT_TRUE(timeseries.ok()) << timeseries.status();
  EXPECT_TRUE(timeseries->windows.empty());
}

TEST(ReportCompatTest, CurrentWriterRoundTripsAsV4) {
  RunReport report;
  report.tool = "compat_test";
  report.served = 40;
  report.shed_requests = 2;
  report.waves = 3;
  report.timeseries.window_seconds = 60.0;
  WindowExport w;
  w.start = 0.0;
  w.requests = 42;
  report.timeseries.windows.push_back(w);

  const std::string json = RunReportToJson(report);
  const auto summary = ParseReportSummary(json);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->schema_version, kReportSchemaVersion);
  EXPECT_EQ(summary->schema_version, 4);
  EXPECT_EQ(summary->served, 40u);
  EXPECT_EQ(summary->shed_requests, 2u);
  EXPECT_EQ(summary->waves, 3u);

  const auto timeseries = ParseTimeseries(json);
  ASSERT_TRUE(timeseries.ok()) << timeseries.status();
  ASSERT_EQ(timeseries->windows.size(), 1u);
  EXPECT_EQ(timeseries->windows[0].requests, 42u);
}

TEST(ReportCompatTest, FutureVersionRejectedWithFriendlyError) {
  std::string json = kV3Fixture;
  const std::size_t pos = json.find("\"schema_version\": 3");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 19, "\"schema_version\": 99");

  for (const auto& status :
       {ParseReportSummary(json).status(), ParseTimeseries(json).status()}) {
    ASSERT_FALSE(status.ok());
    const std::string message = status.ToString();
    // The rejection must name the offending version and the supported
    // range — a consumer reading the error should know what to upgrade.
    EXPECT_NE(message.find("unsupported report schema_version 99"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("1..4"), std::string::npos) << message;
  }
}

TEST(ReportCompatTest, GarbledVersionRejected) {
  const auto summary = ParseReportSummary("{\"schema_version\": \"x\"}");
  ASSERT_FALSE(summary.ok());
  EXPECT_NE(summary.status().ToString().find("schema_version"),
            std::string::npos);
  const auto timeseries = ParseTimeseries("{}");
  ASSERT_FALSE(timeseries.ok());
}

}  // namespace
}  // namespace ptar::obs
