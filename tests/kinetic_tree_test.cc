// Tests for the kinetic tree: insertion enumeration (checked against an
// independent brute-force oracle), constraint enforcement, movement,
// arrivals, and grid registration.

#include "kinetic/kinetic_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "graph/distance_oracle.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

constexpr double kEps = 1e-9;

Request MakeRequest(RequestId id, VertexId s, VertexId d, int riders,
                    Distance max_wait, double epsilon) {
  Request r;
  r.id = id;
  r.start = s;
  r.destination = d;
  r.riders = riders;
  r.max_wait_dist = max_wait;
  r.epsilon = epsilon;
  return r;
}

/// Independent re-validation of a candidate schedule (parallel
/// implementation of Definition 2, deliberately not calling
/// KineticTree::IsValidSchedule).
bool OracleValid(const KineticTree& tree, const std::vector<Stop>& stops,
                 const std::vector<Distance>& legs,
                 const AssignedRequest& extra) {
  // Gather all requests.
  std::vector<AssignedRequest> all(tree.assigned().begin(),
                                   tree.assigned().end());
  all.push_back(extra);

  // Prefix distances.
  std::vector<Distance> prefix(stops.size());
  Distance acc = 0;
  for (std::size_t i = 0; i < stops.size(); ++i) {
    acc += legs[i];
    prefix[i] = acc;
  }

  int onboard = tree.onboard();
  for (const Stop& stop : stops) {
    const auto it = std::find_if(all.begin(), all.end(),
                                 [&](const AssignedRequest& a) {
                                   return a.request.id == stop.request;
                                 });
    if (it == all.end()) return false;
    onboard += (stop.type == StopType::kPickup) ? it->request.riders
                                                : -it->request.riders;
    if (onboard > tree.capacity() || onboard < 0) return false;
  }

  for (const AssignedRequest& a : all) {
    int pickup = -1;
    int dropoff = -1;
    for (std::size_t i = 0; i < stops.size(); ++i) {
      if (stops[i].request != a.request.id) continue;
      if (stops[i].type == StopType::kPickup) pickup = static_cast<int>(i);
      if (stops[i].type == StopType::kDropoff) dropoff = static_cast<int>(i);
    }
    if (a.picked_up) {
      if (pickup != -1 || dropoff == -1) return false;
      const Distance travelled = tree.odometer() - a.pickup_odometer;
      if (travelled + prefix[dropoff] >
          (1.0 + a.request.epsilon) * a.direct_dist + 1e-6) {
        return false;
      }
    } else {
      if (pickup == -1 || dropoff == -1 || pickup > dropoff) return false;
      if (tree.odometer() + prefix[pickup] > a.deadline_odometer + 1e-6) {
        return false;
      }
      if (prefix[dropoff] - prefix[pickup] >
          (1.0 + a.request.epsilon) * a.direct_dist + 1e-6) {
        return false;
      }
    }
  }
  return true;
}

/// Comparable encoding of a stop sequence.
using StopKey = std::vector<std::tuple<int, RequestId, VertexId>>;

StopKey MakeKey(const std::vector<Stop>& stops) {
  StopKey key;
  key.reserve(stops.size());
  for (const Stop& s : stops) {
    key.emplace_back(static_cast<int>(s.type), s.request, s.location);
  }
  return key;
}

/// Brute-force oracle: every (i, j) splice of (pickup, dropoff) into every
/// branch, with legs recomputed from scratch and constraints checked by
/// OracleValid. Returns the set of valid stop sequences.
std::set<StopKey> BruteForceStopSets(const KineticTree& tree,
                                     const Request& request, Distance direct,
                                     DistanceOracle& oracle) {
  std::set<StopKey> result;
  AssignedRequest extra;
  extra.request = request;
  extra.direct_dist = direct;
  extra.deadline_odometer = kInfDistance;

  const std::vector<Schedule> branches = tree.Schedules();
  for (const Schedule& branch : branches) {
    const std::size_t k = branch.stops.size();
    for (std::size_t i = 0; i <= k; ++i) {
      for (std::size_t j = i; j <= k; ++j) {
        std::vector<Stop> stops(branch.stops.begin(), branch.stops.end());
        stops.insert(stops.begin() + i,
                     Stop{StopType::kPickup, request.id, request.start});
        stops.insert(stops.begin() + j + 1,
                     Stop{StopType::kDropoff, request.id,
                          request.destination});
        std::vector<Distance> legs(stops.size());
        VertexId prev = tree.location();
        for (std::size_t m = 0; m < stops.size(); ++m) {
          legs[m] = oracle.Dist(prev, stops[m].location);
          prev = stops[m].location;
        }
        if (OracleValid(tree, stops, legs, extra)) {
          result.insert(MakeKey(stops));
        }
      }
    }
  }
  return result;
}

std::set<StopKey> CandidateStopSets(
    const std::vector<InsertionCandidate>& candidates) {
  std::set<StopKey> result;
  for (const InsertionCandidate& c : candidates) {
    result.insert(MakeKey(c.schedule.stops));
  }
  return result;
}

class KineticTreeTest : public ::testing::Test {
 protected:
  KineticTreeTest()
      : graph_(testing::MakeSmallGrid(100.0)), oracle_(&graph_) {}

  KineticTree::DistFn Dist() {
    return [this](VertexId a, VertexId b) { return oracle_.Dist(a, b); };
  }

  RoadNetwork graph_;
  DistanceOracle oracle_;
};

TEST_F(KineticTreeTest, FreshTreeIsIdle) {
  const KineticTree tree(0, 4, 4);
  EXPECT_TRUE(tree.IsEmpty());
  EXPECT_EQ(tree.num_branches(), 1u);
  EXPECT_TRUE(tree.ActiveSchedule().stops.empty());
  EXPECT_EQ(tree.NextStopLocation(), kInvalidVertex);
  EXPECT_DOUBLE_EQ(tree.CurrentTotal(), 0.0);
  EXPECT_EQ(tree.onboard(), 0);
  EXPECT_FALSE(tree.stale());
}

TEST_F(KineticTreeTest, FirstInsertionIntoEmptyVehicle) {
  KineticTree tree(0, 0, 4);  // at corner vertex 0
  const Request r = MakeRequest(1, 4, 8, 2, 1000.0, 0.5);
  const Distance direct = oracle_.Dist(4, 8);
  const auto candidates =
      tree.EnumerateInsertions(r, direct, Dist(), InsertionHooks{});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_DOUBLE_EQ(candidates[0].pickup_dist, 200.0);  // dist(0, 4)
  EXPECT_DOUBLE_EQ(candidates[0].total_dist, 200.0 + 200.0);
  ASSERT_EQ(candidates[0].schedule.stops.size(), 2u);
  EXPECT_EQ(candidates[0].schedule.stops[0].type, StopType::kPickup);
  EXPECT_EQ(candidates[0].schedule.stops[1].type, StopType::kDropoff);
}

TEST_F(KineticTreeTest, CommitRecordsAssignmentAndDeadline) {
  KineticTree tree(0, 0, 4);
  const Request r = MakeRequest(1, 4, 8, 2, 300.0, 0.5);
  const Distance direct = oracle_.Dist(4, 8);
  ASSERT_TRUE(tree.Commit(r, direct, /*planned_pickup_dist=*/200.0, Dist())
                  .ok());
  EXPECT_FALSE(tree.IsEmpty());
  ASSERT_EQ(tree.assigned().size(), 1u);
  EXPECT_DOUBLE_EQ(tree.assigned()[0].deadline_odometer, 200.0 + 300.0);
  EXPECT_EQ(tree.NextStopLocation(), 4u);
}

TEST_F(KineticTreeTest, CapacityBlocksInsertion) {
  KineticTree tree(0, 0, 2);
  const Request r = MakeRequest(1, 4, 8, 3, 1000.0, 0.5);  // 3 riders > cap 2
  const auto candidates = tree.EnumerateInsertions(r, oracle_.Dist(4, 8),
                                                   Dist(), InsertionHooks{});
  EXPECT_TRUE(candidates.empty());
}

TEST_F(KineticTreeTest, SecondInsertionMatchesBruteForce) {
  KineticTree tree(0, 0, 4);
  const Request r1 = MakeRequest(1, 1, 7, 2, 1000.0, 1.0);
  ASSERT_TRUE(
      tree.Commit(r1, oracle_.Dist(1, 7), oracle_.Dist(0, 1), Dist()).ok());

  const Request r2 = MakeRequest(2, 3, 5, 2, 1000.0, 1.0);
  const Distance direct = oracle_.Dist(3, 5);
  const auto candidates =
      tree.EnumerateInsertions(r2, direct, Dist(), InsertionHooks{});
  EXPECT_EQ(CandidateStopSets(candidates),
            BruteForceStopSets(tree, r2, direct, oracle_));
  EXPECT_FALSE(candidates.empty());
}

// Property sweep: enumeration equals the brute-force oracle across random
// graphs, loads, and constraint tightness.
class InsertionPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double,
                                                 double>> {};

TEST_P(InsertionPropertyTest, EnumerationMatchesBruteForce) {
  const auto [seed, epsilon, wait] = GetParam();
  const RoadNetwork g = testing::MakeRandomConnectedGraph(40, 60, seed);
  DistanceOracle oracle(&g);
  auto dist = [&oracle](VertexId a, VertexId b) {
    return oracle.Dist(a, b);
  };
  Rng rng(seed * 977 + 5);

  KineticTree tree(0, static_cast<VertexId>(rng.UniformIndex(40)), 4);
  // Commit up to three requests to grow a multi-branch tree, then compare
  // enumeration with brute force for a fourth.
  RequestId next_id = 1;
  for (int round = 0; round < 3; ++round) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(40));
    auto d = static_cast<VertexId>(rng.UniformIndex(40));
    if (d == s) d = (d + 1) % 40;
    const Request r =
        MakeRequest(next_id++, s, d, 1 + static_cast<int>(rng.UniformIndex(2)),
                    wait, epsilon);
    const Distance direct = oracle.Dist(s, d);
    const auto candidates =
        tree.EnumerateInsertions(r, direct, dist, InsertionHooks{});
    EXPECT_EQ(CandidateStopSets(candidates),
              BruteForceStopSets(tree, r, direct, oracle))
        << "round " << round;
    if (candidates.empty()) continue;
    // Commit using the earliest-pickup candidate as the planned option.
    const auto best = std::min_element(
        candidates.begin(), candidates.end(),
        [](const InsertionCandidate& a, const InsertionCandidate& b) {
          return a.pickup_dist < b.pickup_dist;
        });
    ASSERT_TRUE(tree.Commit(r, direct, best->pickup_dist, dist).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomScenarios, InsertionPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.2, 0.6, 2.0),
                       ::testing::Values(100.0, 500.0, 1e9)));

TEST_F(KineticTreeTest, GapSlacksHandComputed) {
  KineticTree tree(0, 0, 4);
  // Request 1: pickup at 1 (100 away), dropoff at 8 (direct 300,
  // eps 0.2 -> budget 360), waiting 150 past planned 100.
  const Request r1 = MakeRequest(1, 1, 8, 1, 150.0, 0.2);
  const Distance direct = oracle_.Dist(1, 8);
  ASSERT_DOUBLE_EQ(direct, 300.0);
  ASSERT_TRUE(tree.Commit(r1, direct, 100.0, Dist()).ok());

  // Active schedule is <pickup@1, dropoff@7> with legs 100, 300.
  const Schedule& active = tree.ActiveSchedule();
  ASSERT_EQ(active.stops.size(), 2u);
  const std::vector<Distance> slacks = tree.GapSlacks(active);
  ASSERT_EQ(slacks.size(), 3u);
  // Gap 0 (before pickup): waiting slack = (100 + 150) - 0 - 100 = 150.
  EXPECT_DOUBLE_EQ(slacks[0], 150.0);
  // Gap 1 (between pickup and dropoff): service slack = 360 - 300 = 60.
  EXPECT_NEAR(slacks[1], 60.0, kEps);
  // Gap 2 (tail): unconstrained.
  EXPECT_EQ(slacks[2], kInfDistance);

  const std::vector<int> seats = tree.GapFreeSeats(active);
  ASSERT_EQ(seats.size(), 3u);
  EXPECT_EQ(seats[0], 4);
  EXPECT_EQ(seats[1], 3);  // rider on board
  EXPECT_EQ(seats[2], 4);
}

TEST_F(KineticTreeTest, MovementConsumesLegAndOdometer) {
  KineticTree tree(0, 0, 4);
  const Request r = MakeRequest(1, 2, 8, 1, 1000.0, 0.5);
  ASSERT_TRUE(tree.Commit(r, oracle_.Dist(2, 8), 200.0, Dist()).ok());
  // Drive one edge toward vertex 1 (on the shortest path 0-1-2).
  tree.MoveTo(1, 100.0);
  EXPECT_DOUBLE_EQ(tree.odometer(), 100.0);
  EXPECT_DOUBLE_EQ(tree.ActiveSchedule().legs[0], 100.0);
  EXPECT_EQ(tree.location(), 1u);
}

TEST_F(KineticTreeTest, ArrivalServesPickupThenDropoff) {
  KineticTree tree(0, 0, 4);
  const Request r = MakeRequest(1, 1, 2, 2, 1000.0, 0.5);
  ASSERT_TRUE(tree.Commit(r, oracle_.Dist(1, 2), 100.0, Dist()).ok());

  tree.MoveTo(1, 100.0);
  auto ev1 = tree.ArriveAtNextStop();
  ASSERT_TRUE(ev1.ok());
  EXPECT_EQ(ev1->type, StopType::kPickup);
  EXPECT_EQ(ev1->request, 1u);
  EXPECT_EQ(tree.onboard(), 2);
  ASSERT_EQ(tree.assigned().size(), 1u);
  EXPECT_TRUE(tree.assigned()[0].picked_up);

  tree.MoveTo(2, 100.0);
  auto ev2 = tree.ArriveAtNextStop();
  ASSERT_TRUE(ev2.ok());
  EXPECT_EQ(ev2->type, StopType::kDropoff);
  EXPECT_EQ(tree.onboard(), 0);
  EXPECT_TRUE(tree.IsEmpty());
  EXPECT_TRUE(tree.ActiveSchedule().stops.empty());
}

TEST_F(KineticTreeTest, ArrivalAtWrongPlaceFails) {
  KineticTree tree(0, 0, 4);
  const Request r = MakeRequest(1, 4, 8, 1, 1000.0, 0.5);
  ASSERT_TRUE(tree.Commit(r, oracle_.Dist(4, 8), 200.0, Dist()).ok());
  auto ev = tree.ArriveAtNextStop();  // still at 0, stop is at 4
  EXPECT_FALSE(ev.ok());
}

TEST_F(KineticTreeTest, IdleArrivalFails) {
  KineticTree tree(0, 0, 4);
  EXPECT_FALSE(tree.ArriveAtNextStop().ok());
}

TEST_F(KineticTreeTest, RefreshDropsBranchesThatDriftedOutOfBudget) {
  KineticTree tree(0, 0, 4);
  // Tight waiting budget: planned exactly dist(0, 2) = 200 with zero wait.
  const Request r = MakeRequest(1, 2, 8, 1, 0.0, 0.5);
  ASSERT_TRUE(tree.Commit(r, oracle_.Dist(2, 8), 200.0, Dist()).ok());
  // Drive the wrong way: 0 -> 3 (away from 2). The active branch cannot be
  // driven away from by the engine, but simulate the tree math directly.
  tree.MoveTo(3, 100.0);
  // Now dist(3, 2) = 300, odometer 100: pickup at 400 > deadline 200.
  // The active branch's first leg was force-decremented (it assumes driving
  // along the route), so refresh only repairs non-active branches; with one
  // branch the tree stays consistent only when driven correctly. This test
  // documents that misuse is caught by validation in Refresh for non-active
  // branches; here we just ensure no crash and state stays queryable.
  EXPECT_EQ(tree.location(), 3u);
}

TEST_F(KineticTreeTest, CommitFiltersSchedulesBeyondPlannedWait) {
  KineticTree tree(0, 0, 4);
  const Request r1 = MakeRequest(1, 1, 2, 1, 50.0, 0.0);
  ASSERT_TRUE(tree.Commit(r1, oracle_.Dist(1, 2), oracle_.Dist(0, 1), Dist())
                  .ok());
  // Every surviving schedule must respect pickup <= planned + wait.
  const std::vector<Schedule> schedules = tree.Schedules();
  for (const Schedule& s : schedules) {
    Distance prefix = 0;
    for (std::size_t i = 0; i < s.stops.size(); ++i) {
      prefix += s.legs[i];
      if (s.stops[i].type == StopType::kPickup) {
        EXPECT_LE(prefix, 100.0 + 50.0 + 1e-6);
        break;
      }
    }
  }
}

TEST_F(KineticTreeTest, CommitImpossibleRequestFails) {
  KineticTree tree(0, 0, 1);
  const Request r1 = MakeRequest(1, 1, 2, 1, 1000.0, 0.0);
  ASSERT_TRUE(tree.Commit(r1, oracle_.Dist(1, 2), 100.0, Dist()).ok());
  // Second request with 0 epsilon and a pickup requiring a detour from the
  // committed exact-route schedule; capacity 1 also blocks overlap.
  const Request r2 = MakeRequest(2, 6, 8, 1, 0.0, 0.0);
  const Status st = tree.Commit(r2, oracle_.Dist(6, 8), 0.0, Dist());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(KineticTreeTest, RegistrationCoversAllBranchEdges) {
  auto grid = GridIndex::Build(&graph_, {.cell_size_meters = 100.0});
  ASSERT_TRUE(grid.ok());
  KineticTree tree(7, 0, 4);
  const Request r = MakeRequest(1, 4, 8, 2, 1000.0, 0.5);
  ASSERT_TRUE(tree.Commit(r, oracle_.Dist(4, 8), 200.0, Dist()).ok());

  const auto entries = tree.BuildRegistration(*grid);
  ASSERT_FALSE(entries.empty());
  bool found_tail = false;
  for (const auto& [cell, entry] : entries) {
    EXPECT_EQ(entry.vehicle, 7u);
    EXPECT_GE(entry.capacity, 0);
    EXPECT_GE(entry.dist_tr, 0.0);
    if (entry.tail) {
      found_tail = true;
      EXPECT_EQ(entry.oy, kInvalidVertex);
      EXPECT_DOUBLE_EQ(entry.leg_dist, 0.0);
    } else {
      // Edge registered in the cells of its endpoints.
      EXPECT_TRUE(cell == grid->CellOfVertex(entry.ox) ||
                  cell == grid->CellOfVertex(entry.oy));
    }
  }
  EXPECT_TRUE(found_tail);
}

TEST_F(KineticTreeTest, RegistrationEmptyForIdleVehicle) {
  auto grid = GridIndex::Build(&graph_, {.cell_size_meters = 100.0});
  ASSERT_TRUE(grid.ok());
  const KineticTree tree(0, 4, 4);
  EXPECT_TRUE(tree.BuildRegistration(*grid).empty());
}

TEST_F(KineticTreeTest, IsValidScheduleRejectsBadShapes) {
  KineticTree tree(0, 0, 4);
  const Request r = MakeRequest(1, 1, 2, 2, 1000.0, 0.5);
  ASSERT_TRUE(tree.Commit(r, oracle_.Dist(1, 2), 100.0, Dist()).ok());

  // Valid: the active schedule itself.
  EXPECT_TRUE(tree.IsValidSchedule(tree.ActiveSchedule(), nullptr));

  // Dropoff before pickup.
  Schedule bad1;
  bad1.stops = {Stop{StopType::kDropoff, 1, 2}, Stop{StopType::kPickup, 1, 1}};
  bad1.legs = {200.0, 100.0};
  EXPECT_FALSE(tree.IsValidSchedule(bad1, nullptr));

  // Missing dropoff.
  Schedule bad2;
  bad2.stops = {Stop{StopType::kPickup, 1, 1}};
  bad2.legs = {100.0};
  EXPECT_FALSE(tree.IsValidSchedule(bad2, nullptr));

  // Stray request not assigned.
  Schedule bad3 = tree.ActiveSchedule();
  bad3.stops.push_back(Stop{StopType::kPickup, 99, 3});
  bad3.legs.push_back(100.0);
  EXPECT_FALSE(tree.IsValidSchedule(bad3, nullptr));

  // Duplicate pickup.
  Schedule bad4;
  bad4.stops = {Stop{StopType::kPickup, 1, 1}, Stop{StopType::kPickup, 1, 1},
                Stop{StopType::kDropoff, 1, 2}};
  bad4.legs = {100.0, 0.0, 100.0};
  EXPECT_FALSE(tree.IsValidSchedule(bad4, nullptr));
}

TEST_F(KineticTreeTest, BranchCapKeepsShortestSchedules) {
  // With max_branches = 1 the tree degenerates to "always keep only the
  // shortest valid schedule" — the active branch.
  KineticTree capped(0, 0, 4, /*max_branches=*/1);
  KineticTree full(0, 0, 4);  // unlimited by default
  const Request r1 = MakeRequest(1, 1, 7, 1, 1000.0, 1.0);
  const Request r2 = MakeRequest(2, 3, 5, 1, 1000.0, 1.0);
  for (KineticTree* tree : {&capped, &full}) {
    ASSERT_TRUE(
        tree->Commit(r1, oracle_.Dist(1, 7), oracle_.Dist(0, 1), Dist())
            .ok());
    ASSERT_TRUE(
        tree->Commit(r2, oracle_.Dist(3, 5), 1e9, Dist()).ok());
  }
  EXPECT_EQ(capped.num_branches(), 1u);
  EXPECT_GT(full.num_branches(), 1u);
  EXPECT_GT(capped.branches_dropped(), 0u);
  EXPECT_GT(capped.cap_hits(), 0u);
  EXPECT_EQ(full.branches_dropped(), 0u);
  EXPECT_EQ(full.cap_hits(), 0u);
  // The capped tree kept exactly the shortest schedule of the full tree.
  EXPECT_DOUBLE_EQ(capped.ActiveSchedule().total(),
                   full.ActiveSchedule().total());
}

TEST_F(KineticTreeTest, InsertionWithRidersOnBoardMatchesBruteForce) {
  // Exercise the picked_up code paths: commit, drive to the pickup, serve
  // it, then enumerate a second request against the brute-force oracle.
  KineticTree tree(0, 0, 4);
  const Request r1 = MakeRequest(1, 1, 8, 2, 1000.0, 1.5);
  ASSERT_TRUE(
      tree.Commit(r1, oracle_.Dist(1, 8), oracle_.Dist(0, 1), Dist()).ok());
  tree.MoveTo(1, 100.0);
  ASSERT_TRUE(tree.ArriveAtNextStop().ok());
  ASSERT_EQ(tree.onboard(), 2);
  ASSERT_TRUE(tree.assigned()[0].picked_up);

  const Request r2 = MakeRequest(2, 4, 7, 1, 1000.0, 1.5);
  const Distance direct = oracle_.Dist(4, 7);
  const auto candidates =
      tree.EnumerateInsertions(r2, direct, Dist(), InsertionHooks{});
  EXPECT_EQ(CandidateStopSets(candidates),
            BruteForceStopSets(tree, r2, direct, oracle_));
  EXPECT_FALSE(candidates.empty());
}

TEST_F(KineticTreeTest, RefreshDropsExactlyTheInvalidBranches) {
  // Multi-branch tree; drive along the active branch; Refresh must keep a
  // branch iff it is still a valid schedule with its first leg recomputed.
  KineticTree tree(0, 4, 4);  // center of the 3x3 grid
  const Request r1 = MakeRequest(1, 3, 5, 1, 600.0, 3.0);
  ASSERT_TRUE(
      tree.Commit(r1, oracle_.Dist(3, 5), oracle_.Dist(4, 3), Dist()).ok());
  const Request r2 = MakeRequest(2, 1, 7, 1, 600.0, 3.0);
  {
    const auto candidates = tree.EnumerateInsertions(
        r2, oracle_.Dist(1, 7), Dist(), InsertionHooks{});
    ASSERT_FALSE(candidates.empty());
    const auto best = std::min_element(
        candidates.begin(), candidates.end(),
        [](const InsertionCandidate& a, const InsertionCandidate& b) {
          return a.pickup_dist < b.pickup_dist;
        });
    ASSERT_TRUE(
        tree.Commit(r2, oracle_.Dist(1, 7), best->pickup_dist, Dist()).ok());
  }
  ASSERT_GT(tree.num_branches(), 1u) << "need a multi-branch tree";

  // Drive one edge along the shortest path toward the active first stop.
  DijkstraEngine engine(&graph_);
  const VertexId target = tree.NextStopLocation();
  engine.PointToPoint(tree.location(), target);
  const std::vector<VertexId> path = engine.PathTo(target);
  ASSERT_GE(path.size(), 2u);
  Distance hop = kInfDistance;
  for (const Arc& a : graph_.OutArcs(path[0])) {
    if (a.head == path[1]) hop = std::min(hop, a.weight);
  }
  std::vector<Schedule> before = tree.Schedules();
  const std::size_t active_before = tree.active_index();
  tree.MoveTo(path[1], hop);
  ASSERT_TRUE(tree.stale());
  tree.Refresh(Dist());

  // Survivors are exactly the branches that remain valid after the move.
  for (Schedule& old : before) {
    old.legs[0] = oracle_.Dist(tree.location(), old.stops[0].location);
    const bool still_valid = tree.IsValidSchedule(old, nullptr);
    bool survived = false;
    for (const Schedule& kept : tree.Schedules()) {
      if (kept.SameStops(old)) survived = true;
    }
    EXPECT_EQ(survived, still_valid);
  }
  // The previously active branch always survives.
  bool active_survived = false;
  for (const Schedule& kept : tree.Schedules()) {
    if (kept.SameStops(before[active_before])) active_survived = true;
  }
  EXPECT_TRUE(active_survived);
}

TEST_F(KineticTreeTest, MemoryGrowsWithBranches) {
  KineticTree tree(0, 0, 4);
  const std::size_t empty_bytes = tree.MemoryBytes();
  const Request r = MakeRequest(1, 4, 8, 1, 1000.0, 0.5);
  ASSERT_TRUE(tree.Commit(r, oracle_.Dist(4, 8), 200.0, Dist()).ok());
  EXPECT_GT(tree.MemoryBytes(), empty_bytes);
}

TEST_F(KineticTreeTest, SharedRideTwoRequestsFullLifecycle) {
  KineticTree tree(0, 0, 4);
  // Both requests travel roughly the same corridor 0 -> 2 -> 8.
  const Request r1 = MakeRequest(1, 1, 5, 1, 1000.0, 1.0);
  ASSERT_TRUE(
      tree.Commit(r1, oracle_.Dist(1, 5), oracle_.Dist(0, 1), Dist()).ok());
  const Request r2 = MakeRequest(2, 2, 8, 1, 1000.0, 1.0);
  const auto candidates = tree.EnumerateInsertions(r2, oracle_.Dist(2, 8),
                                                   Dist(), InsertionHooks{});
  ASSERT_FALSE(candidates.empty());
  const auto best = std::min_element(
      candidates.begin(), candidates.end(),
      [](const InsertionCandidate& a, const InsertionCandidate& b) {
        return a.total_dist < b.total_dist;
      });
  ASSERT_TRUE(
      tree.Commit(r2, oracle_.Dist(2, 8), best->pickup_dist, Dist()).ok());
  EXPECT_EQ(tree.assigned().size(), 2u);

  // Drive the active schedule to completion, serving every stop.
  int safety = 0;
  DijkstraEngine engine(&graph_);
  while (!tree.IsEmpty() && safety++ < 100) {
    const VertexId target = tree.NextStopLocation();
    if (target == tree.location()) {
      ASSERT_TRUE(tree.ArriveAtNextStop().ok());
      continue;
    }
    engine.PointToPoint(tree.location(), target);
    const std::vector<VertexId> path = engine.PathTo(target);
    ASSERT_GE(path.size(), 2u);
    Distance hop = kInfDistance;
    for (const Arc& a : graph_.OutArcs(path[0])) {
      if (a.head == path[1]) hop = std::min(hop, a.weight);
    }
    tree.MoveTo(path[1], hop);
    if (tree.stale()) tree.Refresh(Dist());
  }
  EXPECT_TRUE(tree.IsEmpty());
  EXPECT_EQ(tree.onboard(), 0);
}

}  // namespace
}  // namespace ptar
