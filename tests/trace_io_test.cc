// Tests for request-trace CSV serialization.

#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/workload.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

std::vector<Request> SampleRequests() {
  std::vector<Request> requests;
  Request a;
  a.id = 0;
  a.submit_time = 1.5;
  a.start = 0;
  a.destination = 8;
  a.riders = 2;
  a.max_wait_dist = 1600.0;
  a.epsilon = 0.2;
  Request b = a;
  b.id = 1;
  b.submit_time = 10.25;
  b.start = 3;
  b.destination = 5;
  b.riders = 1;
  requests.push_back(a);
  requests.push_back(b);
  return requests;
}

TEST(TraceIoTest, RoundTrip) {
  const RoadNetwork g = testing::MakeSmallGrid();
  const std::vector<Request> original = SampleRequests();
  std::stringstream buffer;
  ASSERT_TRUE(SaveRequests(original, buffer).ok());
  auto loaded = LoadRequests(buffer, g);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, original[i].id);
    EXPECT_DOUBLE_EQ((*loaded)[i].submit_time, original[i].submit_time);
    EXPECT_EQ((*loaded)[i].start, original[i].start);
    EXPECT_EQ((*loaded)[i].destination, original[i].destination);
    EXPECT_EQ((*loaded)[i].riders, original[i].riders);
    EXPECT_DOUBLE_EQ((*loaded)[i].max_wait_dist, original[i].max_wait_dist);
    EXPECT_DOUBLE_EQ((*loaded)[i].epsilon, original[i].epsilon);
  }
}

TEST(TraceIoTest, RoundTripGeneratedWorkload) {
  GridCityOptions copts;
  copts.rows = 10;
  copts.cols = 10;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  WorkloadOptions wopts;
  wopts.num_requests = 100;
  auto requests = GenerateWorkload(*g, wopts);
  ASSERT_TRUE(requests.ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveRequests(*requests, buffer).ok());
  auto loaded = LoadRequests(buffer, *g);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), requests->size());
}

TEST(TraceIoTest, SortsBySubmitTime) {
  const RoadNetwork g = testing::MakeSmallGrid();
  std::vector<Request> shuffled = SampleRequests();
  std::swap(shuffled[0], shuffled[1]);  // out of order now
  std::stringstream buffer;
  ASSERT_TRUE(SaveRequests(shuffled, buffer).ok());
  auto loaded = LoadRequests(buffer, g);
  ASSERT_TRUE(loaded.ok());
  EXPECT_LE((*loaded)[0].submit_time, (*loaded)[1].submit_time);
}

TEST(TraceIoTest, CommentsIgnored) {
  const RoadNetwork g = testing::MakeSmallGrid();
  std::stringstream in;
  in << "# preamble\n"
     << "id,submit_time,start,destination,riders,max_wait_dist,epsilon\n"
     << "# a comment between rows\n"
     << "5,3.5,0,8,1,100,0.3\n";
  auto loaded = LoadRequests(in, g);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].id, 5u);
}

TEST(TraceIoTest, RejectsBadHeader) {
  const RoadNetwork g = testing::MakeSmallGrid();
  std::stringstream in;
  in << "wrong,header\n";
  EXPECT_FALSE(LoadRequests(in, g).ok());
}

TEST(TraceIoTest, RejectsMalformedRow) {
  const RoadNetwork g = testing::MakeSmallGrid();
  std::stringstream in;
  in << "id,submit_time,start,destination,riders,max_wait_dist,epsilon\n"
     << "1,oops,0,8,1,100,0.3\n";
  EXPECT_FALSE(LoadRequests(in, g).ok());
}

TEST(TraceIoTest, RejectsUnknownVertex) {
  const RoadNetwork g = testing::MakeSmallGrid();  // 9 vertices
  std::stringstream in;
  in << "id,submit_time,start,destination,riders,max_wait_dist,epsilon\n"
     << "1,2.0,0,99,1,100,0.3\n";
  auto loaded = LoadRequests(in, g);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
}

TEST(TraceIoTest, RejectsDegenerateTrip) {
  const RoadNetwork g = testing::MakeSmallGrid();
  std::stringstream in;
  in << "id,submit_time,start,destination,riders,max_wait_dist,epsilon\n"
     << "1,2.0,4,4,1,100,0.3\n";
  EXPECT_FALSE(LoadRequests(in, g).ok());
}

TEST(TraceIoTest, RejectsInvalidParameters) {
  const RoadNetwork g = testing::MakeSmallGrid();
  for (const char* row :
       {"1,2.0,0,8,0,100,0.3",     // zero riders
        "1,2.0,0,8,1,-5,0.3",      // negative wait
        "1,2.0,0,8,1,100,-0.1",    // negative epsilon
        "1,-2.0,0,8,1,100,0.3"}) {  // negative submit time
    std::stringstream in;
    in << "id,submit_time,start,destination,riders,max_wait_dist,epsilon\n"
       << row << "\n";
    EXPECT_FALSE(LoadRequests(in, g).ok()) << row;
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  const RoadNetwork g = testing::MakeSmallGrid();
  const std::string path = ::testing::TempDir() + "/ptar_trace_test.csv";
  ASSERT_TRUE(SaveRequestsToFile(SampleRequests(), path).ok());
  auto loaded = LoadRequestsFromFile(path, g);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST(TraceIoTest, MissingFileFails) {
  const RoadNetwork g = testing::MakeSmallGrid();
  EXPECT_FALSE(LoadRequestsFromFile("/no/such/file.csv", g).ok());
}

}  // namespace
}  // namespace ptar
