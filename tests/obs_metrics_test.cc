// LatencyHistogram bucket math, merging, and percentiles; MetricsRegistry
// counter/histogram bookkeeping and the CounterSet/BatchStats fold-ins;
// the timing-metric naming convention.

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/counters.h"
#include "obs/metrics.h"

namespace ptar::obs {
namespace {

TEST(LatencyHistogramTest, EmptyIsZeroEverywhere) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(LatencyHistogramTest, TracksExactSumMinMax) {
  LatencyHistogram h;
  h.Add(3.0);
  h.Add(1.0);
  h.Add(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 14.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 10.0);
}

TEST(LatencyHistogramTest, BucketBoundsGrowGeometrically) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketLowerBound(0), 0.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketLowerBound(1),
                   LatencyHistogram::kFirstBound);
  for (int i = 2; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_NEAR(LatencyHistogram::BucketLowerBound(i) /
                    LatencyHistogram::BucketLowerBound(i - 1),
                LatencyHistogram::kGrowth, 1e-9)
        << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, SamplesLandInTheirBucket) {
  // A value inside bucket i must raise exactly bucket i.
  for (int i : {0, 1, 5, 64, LatencyHistogram::kNumBuckets - 1}) {
    LatencyHistogram one;
    const double lo = LatencyHistogram::BucketLowerBound(i);
    const double hi = i + 1 < LatencyHistogram::kNumBuckets
                          ? LatencyHistogram::BucketLowerBound(i + 1)
                          : lo * 2.0;
    const double v = lo + (hi - lo) / 2.0;
    one.Add(v);
    EXPECT_EQ(one.buckets()[i], 1u) << "value " << v << " bucket " << i;
  }
}

TEST(LatencyHistogramTest, OverflowGoesToLastBucket) {
  LatencyHistogram h;
  h.Add(1e300);
  EXPECT_EQ(h.buckets()[LatencyHistogram::kNumBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(h.Max(), 1e300);
}

TEST(LatencyHistogramTest, PercentileWithinOneBucketWidth) {
  LatencyHistogram h;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(i * 0.5);  // 0.5 .. 500
  for (double v : values) h.Add(v);
  // Exact percentiles of the uniform ramp, tolerance one bucket (~19%).
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double exact = values[static_cast<std::size_t>(
        p / 100.0 * (values.size() - 1) + 0.5)];
    const double approx = h.Percentile(p);
    EXPECT_GE(approx, exact / (LatencyHistogram::kGrowth * 1.0001))
        << "p" << p;
    EXPECT_LE(approx, exact * LatencyHistogram::kGrowth * 1.0001)
        << "p" << p;
  }
  // Extremes clamp to the exact tracked min / max (within one bucket).
  EXPECT_NEAR(h.Percentile(0), 0.5, 0.5 * (LatencyHistogram::kGrowth - 1));
  EXPECT_DOUBLE_EQ(h.Percentile(100), 500.0);
}

TEST(LatencyHistogramTest, PercentileIsMonotone) {
  LatencyHistogram h;
  for (int i = 0; i < 200; ++i) h.Add(std::pow(1.3, i % 37));
  double prev = -1.0;
  for (int p = 0; p <= 100; p += 5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(LatencyHistogramTest, MergeMatchesBulkAdd) {
  LatencyHistogram a, b, all;
  for (int i = 1; i <= 50; ++i) {
    a.Add(i * 0.7);
    all.Add(i * 0.7);
  }
  for (int i = 1; i <= 80; ++i) {
    b.Add(i * 3.1);
    all.Add(i * 3.1);
  }
  a.MergeFrom(b);
  EXPECT_TRUE(a == all);
}

TEST(LatencyHistogramTest, MergeFromEmptyIsIdentity) {
  LatencyHistogram a, empty;
  a.Add(2.0);
  LatencyHistogram before = a;
  a.MergeFrom(empty);
  EXPECT_TRUE(a == before);
  empty.MergeFrom(a);
  EXPECT_TRUE(empty == a);
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.Counter("x"), 0u);
  reg.AddCounter("x");
  reg.AddCounter("x", 4);
  EXPECT_EQ(reg.Counter("x"), 5u);
}

TEST(MetricsRegistryTest, HistogramIsAddressStable) {
  MetricsRegistry reg;
  LatencyHistogram* h = &reg.Histogram("engine/advance_us");
  for (int i = 0; i < 100; ++i) reg.Histogram("other" + std::to_string(i));
  EXPECT_EQ(h, &reg.Histogram("engine/advance_us"));
  h->Add(1.0);
  ASSERT_NE(reg.FindHistogram("engine/advance_us"), nullptr);
  EXPECT_EQ(reg.FindHistogram("engine/advance_us")->count(), 1u);
  EXPECT_EQ(reg.FindHistogram("never_touched"), nullptr);
}

TEST(MetricsRegistryTest, MergeCounterSetPrefixesNames) {
  CounterSet set;
  set.Add("compdists", 7);
  set.Add("verified", 2);
  MetricsRegistry reg;
  reg.MergeCounterSet("matcher/ssa", set);
  EXPECT_EQ(reg.Counter("matcher/ssa/compdists"), 7u);
  EXPECT_EQ(reg.Counter("matcher/ssa/verified"), 2u);
  reg.MergeCounterSet("matcher/ssa", set);
  EXPECT_EQ(reg.Counter("matcher/ssa/compdists"), 14u);
}

TEST(MetricsRegistryTest, MergeCounterSetFromMergingThread) {
  // The sanctioned hand-off: a worker fills its own CounterSet, the
  // merging thread folds it into the registry after the join. The worker
  // set's ownership pin must not fire on the (read-only) merge.
  CounterSet set;
  std::thread worker([&set] { set.Add("filled_on_worker", 3); });
  worker.join();
  MetricsRegistry reg;
  reg.MergeCounterSet("w", set);
  EXPECT_EQ(reg.Counter("w/filled_on_worker"), 3u);
}

TEST(MetricsRegistryTest, MergeBatchStatsOneCounterPerField) {
  BatchStats stats;
  stats.batch_calls = 1;
  stats.sweeps = 2;
  stats.pairs_requested = 3;
  stats.pairs_from_cache = 4;
  stats.pairs_swept = 5;
  stats.warm_hits = 6;
  MetricsRegistry reg;
  reg.MergeBatchStats("matcher/ba/batch", stats);
  EXPECT_EQ(reg.Counter("matcher/ba/batch/batch_calls"), 1u);
  EXPECT_EQ(reg.Counter("matcher/ba/batch/sweeps"), 2u);
  EXPECT_EQ(reg.Counter("matcher/ba/batch/pairs_requested"), 3u);
  EXPECT_EQ(reg.Counter("matcher/ba/batch/pairs_from_cache"), 4u);
  EXPECT_EQ(reg.Counter("matcher/ba/batch/pairs_swept"), 5u);
  EXPECT_EQ(reg.Counter("matcher/ba/batch/warm_hits"), 6u);
}

TEST(MetricsRegistryTest, MergeFromSumsBothKinds) {
  MetricsRegistry a, b;
  a.AddCounter("c", 1);
  b.AddCounter("c", 2);
  b.AddCounter("only_b", 9);
  a.Histogram("h").Add(1.0);
  b.Histogram("h").Add(3.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.Counter("c"), 3u);
  EXPECT_EQ(a.Counter("only_b"), 9u);
  EXPECT_EQ(a.Histogram("h").count(), 2u);
  EXPECT_DOUBLE_EQ(a.Histogram("h").Sum(), 4.0);
}

TEST(MetricsRegistryTest, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.AddCounter("c", 5);
  reg.Histogram("h").Add(1.0);
  reg.Reset();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.histograms().empty());
}

TEST(MetricsRegistryTest, TimingMetricNamingConvention) {
  EXPECT_TRUE(MetricsRegistry::IsTimingMetric("engine/advance_us"));
  EXPECT_TRUE(MetricsRegistry::IsTimingMetric("matcher/ssa/latency_us"));
  EXPECT_TRUE(MetricsRegistry::IsTimingMetric("x/latency_ms"));
  EXPECT_TRUE(MetricsRegistry::IsTimingMetric("pool/queue_wait_micros"));
  EXPECT_FALSE(MetricsRegistry::IsTimingMetric("matcher/ssa/compdists"));
  EXPECT_FALSE(MetricsRegistry::IsTimingMetric("matcher/ssa/options"));
  EXPECT_FALSE(MetricsRegistry::IsTimingMetric("pool/tasks_run"));
  EXPECT_FALSE(MetricsRegistry::IsTimingMetric("versus"));  // not a suffix
}

// Regression: Percentile on a degenerate histogram used to be undefined
// (empty read past the bucket array's intent; one sample interpolated
// inside its bucket instead of returning the sample). Sentinels are now
// part of the documented contract.
TEST(LatencyHistogramTest, PercentileEmptyHistogramReturnsZeroSentinel) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 0.0);
}

TEST(LatencyHistogramTest, PercentileSingleSampleReturnsThatSample) {
  LatencyHistogram h;
  h.Add(123.456);
  // Exact, not bucket-interpolated: every percentile of one sample IS the
  // sample.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 123.456);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 123.456);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 123.456);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 123.456);
}

TEST(LatencyHistogramTest, PercentileOutOfRangePIsClampedInRelease) {
  LatencyHistogram h;
  h.Add(10.0);
  h.Add(20.0);
#ifdef NDEBUG
  // Release builds clamp instead of UB; debug builds DCHECK (covered by
  // the death-test-free contract: we only exercise the clamp here).
  EXPECT_DOUBLE_EQ(h.Percentile(-5.0), h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(h.Percentile(150.0), h.Percentile(100.0));
#endif
  // Monotone within range, clamped to the extrema.
  EXPECT_LE(h.Percentile(0.0), h.Percentile(50.0));
  EXPECT_LE(h.Percentile(50.0), h.Percentile(100.0));
  EXPECT_GE(h.Percentile(0.0), h.Min());
  EXPECT_LE(h.Percentile(100.0), h.Max());
}

}  // namespace
}  // namespace ptar::obs
