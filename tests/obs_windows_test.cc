// Unit tests for the windowed telemetry aggregator (obs/windows.h) and the
// schema-v4 "timeseries" report block round-trip (obs/report.h).

#include "obs/windows.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/json_writer.h"
#include "obs/report.h"

namespace ptar::obs {
namespace {

TEST(WindowedTelemetryTest, DisabledAggregatorIsInert) {
  WindowedTelemetry telemetry;
  EXPECT_FALSE(telemetry.enabled());
  EXPECT_EQ(telemetry.At(10.0), nullptr);
  EXPECT_FALSE(telemetry.WouldOpenNew(10.0));
  EXPECT_EQ(telemetry.Export().window_seconds, 0.0);
  EXPECT_TRUE(telemetry.Export().windows.empty());
  EXPECT_EQ(telemetry.CurrentSlo().requests, 0u);
}

TEST(WindowedTelemetryTest, AssignsTimesToWindowsAndSkipsGaps) {
  WindowedTelemetry telemetry(TelemetryOptions{10.0, 256});
  ASSERT_TRUE(telemetry.enabled());
  telemetry.At(1.0)->AddCounter(kWindowRequests);
  telemetry.At(9.9)->AddCounter(kWindowRequests);
  telemetry.At(10.0)->AddCounter(kWindowRequests);
  // A long quiet gap: windows 2..9 are never materialized.
  telemetry.At(95.0)->AddCounter(kWindowRequests);
  EXPECT_EQ(telemetry.num_windows(), 3u);

  const TimeseriesExport exported = telemetry.Export();
  ASSERT_EQ(exported.windows.size(), 3u);
  EXPECT_DOUBLE_EQ(exported.windows[0].start, 0.0);
  EXPECT_EQ(exported.windows[0].requests, 2u);
  EXPECT_DOUBLE_EQ(exported.windows[1].start, 10.0);
  EXPECT_EQ(exported.windows[1].requests, 1u);
  EXPECT_DOUBLE_EQ(exported.windows[2].start, 90.0);
  EXPECT_EQ(exported.windows[2].requests, 1u);
}

TEST(WindowedTelemetryTest, WouldOpenNewFlagsWindowTransitions) {
  WindowedTelemetry telemetry(TelemetryOptions{10.0, 256});
  EXPECT_TRUE(telemetry.WouldOpenNew(0.0));  // First window counts as new.
  telemetry.At(0.0);
  EXPECT_FALSE(telemetry.WouldOpenNew(5.0));
  EXPECT_TRUE(telemetry.WouldOpenNew(10.0));
  telemetry.At(10.0);
  EXPECT_FALSE(telemetry.WouldOpenNew(19.9));
  EXPECT_FALSE(telemetry.WouldOpenNew(3.0));  // Out-of-order never opens.
}

TEST(WindowedTelemetryTest, CoalescingDoublesWidthAndPreservesTotals) {
  WindowedTelemetry telemetry(TelemetryOptions{1.0, 4});
  for (int t = 0; t < 16; ++t) {
    MetricsRegistry* w = telemetry.At(static_cast<double>(t) + 0.5);
    ASSERT_NE(w, nullptr);
    w->AddCounter(kWindowRequests);
    w->Histogram(kWindowCommitLatencyUs).Add(100.0);
  }
  EXPECT_LE(telemetry.num_windows(), 4u);
  EXPECT_GE(telemetry.window_seconds(), 4.0);  // Doubled at least twice.

  const TimeseriesExport exported = telemetry.Export();
  std::uint64_t total_requests = 0;
  std::uint64_t total_latency_samples = 0;
  for (const WindowExport& w : exported.windows) {
    total_requests += w.requests;
    total_latency_samples += w.commit_latency_us.count();
  }
  EXPECT_EQ(total_requests, 16u);
  EXPECT_EQ(total_latency_samples, 16u);
  EXPECT_DOUBLE_EQ(exported.window_seconds, telemetry.window_seconds());
}

TEST(WindowedTelemetryTest, CurrentSloReadsTheNewestWindow) {
  WindowedTelemetry telemetry(TelemetryOptions{10.0, 256});
  MetricsRegistry* w0 = telemetry.At(5.0);
  w0->AddCounter(kWindowRequests, 10);
  w0->AddCounter(kWindowShed, 5);
  w0->Histogram(kWindowCommitLatencyUs).Add(9000.0);

  MetricsRegistry* w1 = telemetry.At(15.0);
  w1->AddCounter(kWindowRequests, 4);
  w1->AddCounter(kWindowShed, 1);
  w1->Histogram(kWindowCommitLatencyUs).Add(100.0);

  const WindowSlo slo = telemetry.CurrentSlo();
  EXPECT_EQ(slo.requests, 4u);
  EXPECT_DOUBLE_EQ(slo.shed_rate, 0.25);
  EXPECT_GT(slo.p99_commit_us, 90.0);
  EXPECT_LT(slo.p99_commit_us, 200.0);
}

// --- Report round-trip -----------------------------------------------------

RunReport ReportWithTimeseries() {
  RunReport report;
  report.tool = "windows_test";
  report.served = 12;
  report.unserved = 3;
  report.timeseries.window_seconds = 10.0;
  for (int i = 0; i < 2; ++i) {
    WindowExport w;
    w.start = 10.0 * i;
    w.requests = 8 - static_cast<std::uint64_t>(i);
    w.served = 6;
    w.unserved = 1;
    w.shed = static_cast<std::uint64_t>(i);
    w.conflicts = 2;
    w.rematches = 1;
    w.partial = 1;
    w.ladder = {5, 2, 1, static_cast<std::uint64_t>(i)};
    w.commit_latency_us.Add(50.0);
    w.commit_latency_us.Add(150.0);
    w.commit_latency_us.Add(5000.0);
    report.timeseries.windows.push_back(w);
  }
  return report;
}

TEST(TimeseriesReportTest, RoundTripsThroughParser) {
  const std::string json = RunReportToJson(ReportWithTimeseries());
  const auto parsed = ParseTimeseries(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->window_seconds, 10.0);
  ASSERT_EQ(parsed->windows.size(), 2u);
  const WindowSummary& w0 = parsed->windows[0];
  EXPECT_DOUBLE_EQ(w0.start, 0.0);
  EXPECT_EQ(w0.requests, 8u);
  EXPECT_EQ(w0.served, 6u);
  EXPECT_EQ(w0.unserved, 1u);
  EXPECT_EQ(w0.shed, 0u);
  EXPECT_EQ(w0.conflicts, 2u);
  EXPECT_EQ(w0.rematches, 1u);
  EXPECT_EQ(w0.partial, 1u);
  EXPECT_EQ(w0.ladder[0], 5u);
  EXPECT_EQ(w0.ladder[3], 0u);
  EXPECT_EQ(w0.commit_count, 3u);
  EXPECT_GT(w0.commit_p99_us, w0.commit_p50_us);
  const WindowSummary& w1 = parsed->windows[1];
  EXPECT_DOUBLE_EQ(w1.start, 10.0);
  EXPECT_EQ(w1.shed, 1u);
  EXPECT_EQ(w1.ladder[3], 1u);
}

TEST(TimeseriesReportTest, MissingBlockParsesAsEmpty) {
  // A minimal (pre-v4 style) report without the block: OK + empty, so old
  // artifacts keep working through new consumers.
  RunReport report;
  report.tool = "windows_test";
  const std::string json = RunReportToJson(report);
  EXPECT_EQ(json.find("timeseries"), std::string::npos);
  const auto parsed = ParseTimeseries(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->window_seconds, 0.0);
  EXPECT_TRUE(parsed->windows.empty());
}

TEST(TimeseriesReportTest, RejectsUnknownMajorVersion) {
  std::string json = RunReportToJson(ReportWithTimeseries());
  const std::size_t pos = json.find("\"schema_version\": 4");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 19, "\"schema_version\": 99");
  const auto parsed = ParseTimeseries(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("99"), std::string::npos);
}

}  // namespace
}  // namespace ptar::obs
