// End-to-end integration: a mid-sized city, all three matchers evaluated in
// shadow on the same request stream, checking the paper's qualitative
// relationships (pruning reduces verified vehicles and compdists; partial
// search keeps precision/recall within bounds; the system stays consistent).

#include <gtest/gtest.h>

#include <memory>

#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "tests/scenario_builder.h"

namespace ptar {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing::GridWorldOptions copts;
    copts.rows = 18;
    copts.cols = 18;
    copts.seed = 101;
    world_ = testing::MakeGridWorld(copts);

    testing::RequestStreamOptions wopts;
    wopts.num_requests = 60;
    wopts.duration_seconds = 1200.0;
    wopts.epsilon = 0.4;
    wopts.waiting_minutes = 3.0;
    wopts.seed = 55;
    requests_ = testing::MakeRequestStream(*world_.graph, wopts);
  }

  // The grid holds a pointer into world_.graph, so the pair moves as one.
  testing::GridWorld world_;
  std::vector<Request> requests_;
};

TEST_F(IntegrationTest, ShadowComparisonReproducesPaperRelationships) {
  EngineOptions eopts;
  eopts.num_vehicles = 40;
  eopts.seed = 9;
  Engine engine(world_.graph.get(), world_.grid.get(), eopts);

  BaselineMatcher ba;
  SsaMatcher ssa(0.16);
  DsaMatcher dsa(0.16);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  const RunStats stats = engine.Run(requests_, matchers);

  ASSERT_EQ(stats.matchers.size(), 3u);
  const MatcherAggregate& agg_ba = stats.matchers[0];
  const MatcherAggregate& agg_ssa = stats.matchers[1];
  const MatcherAggregate& agg_dsa = stats.matchers[2];

  // Everyone answered every request.
  EXPECT_EQ(agg_ba.requests, requests_.size());
  EXPECT_EQ(agg_ssa.requests, requests_.size());
  EXPECT_GT(stats.served, requests_.size() * 3 / 4);

  // BA verifies the whole fleet on every request; the index-based searches
  // verify fewer vehicles and compute fewer distances (the paper's headline
  // relationship).
  EXPECT_DOUBLE_EQ(agg_ba.MeanVerified(), 40.0);
  EXPECT_LT(agg_ssa.MeanVerified(), agg_ba.MeanVerified());
  EXPECT_LT(agg_dsa.MeanVerified(), agg_ba.MeanVerified() + 1e-9);
  EXPECT_LT(agg_ssa.MeanCompdists(), agg_ba.MeanCompdists());
  EXPECT_LT(agg_dsa.MeanCompdists(), agg_ba.MeanCompdists());

  // DSA's dual-side filter verifies no more vehicles than SSA on average.
  EXPECT_LE(agg_dsa.MeanVerified(), agg_ssa.MeanVerified() + 1e-9);

  // Quality bounds (Table III): precision/recall are probabilities; the
  // reference matcher scores exactly 1.
  EXPECT_DOUBLE_EQ(agg_ba.MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(agg_ba.MeanRecall(), 1.0);
  for (const MatcherAggregate* agg : {&agg_ssa, &agg_dsa}) {
    EXPECT_GE(agg->MeanPrecision(), 0.0);
    EXPECT_LE(agg->MeanPrecision(), 1.0);
    EXPECT_GE(agg->MeanRecall(), 0.0);
    EXPECT_LE(agg->MeanRecall(), 1.0);
    // Partial search still finds the bulk of the exact skyline in practice.
    EXPECT_GT(agg->MeanRecall(), 0.5);
  }
}

TEST_F(IntegrationTest, FullCoverageSearchIsExactOverWholeRun) {
  EngineOptions eopts;
  eopts.num_vehicles = 30;
  eopts.seed = 4;
  Engine engine(world_.graph.get(), world_.grid.get(), eopts);

  BaselineMatcher ba;
  SsaMatcher ssa(1.0);
  DsaMatcher dsa(1.0);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  const RunStats stats = engine.Run(requests_, matchers);

  // Full-coverage SSA and DSA agree with BA on every request, so their
  // aggregate precision and recall are exactly 1.
  EXPECT_DOUBLE_EQ(stats.matchers[1].MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.matchers[1].MeanRecall(), 1.0);
  EXPECT_DOUBLE_EQ(stats.matchers[2].MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.matchers[2].MeanRecall(), 1.0);
  EXPECT_EQ(stats.matchers[1].options_sum, stats.matchers[0].options_sum);
  EXPECT_EQ(stats.matchers[2].options_sum, stats.matchers[0].options_sum);
}

TEST_F(IntegrationTest, GridAndTreeMemoryAccountingBehaveLikeTableIV) {
  auto coarse = GridIndex::Build(world_.graph.get(), {.cell_size_meters = 600.0});
  auto fine = GridIndex::Build(world_.graph.get(), {.cell_size_meters = 150.0});
  ASSERT_TRUE(coarse.ok() && fine.ok());
  // Grid-index memory grows steeply as cells shrink.
  EXPECT_GT(fine->MemoryBytes(), coarse->MemoryBytes());

  // Kinetic-tree memory is independent of the grid resolution.
  EngineOptions eopts;
  eopts.num_vehicles = 20;
  Engine coarse_engine(world_.graph.get(), &*coarse, eopts);
  Engine fine_engine(world_.graph.get(), &*fine, eopts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  coarse_engine.Run(requests_, matchers);
  const std::size_t coarse_tree_bytes =
      coarse_engine.KineticTreeMemoryBytes();
  fine_engine.Run(requests_, matchers);
  const std::size_t fine_tree_bytes = fine_engine.KineticTreeMemoryBytes();
  // Same fleet, same workload: tree memory within a small factor.
  EXPECT_LT(
      std::abs(static_cast<double>(coarse_tree_bytes) -
               static_cast<double>(fine_tree_bytes)),
      0.5 * static_cast<double>(coarse_tree_bytes) + 4096.0);
}

}  // namespace
}  // namespace ptar
