// Overhead guard: with tracing disabled (the default), instrumented code
// must not touch the recorder — no events appended, no thread buffers
// registered, and TraceSpan construction must stay a single branch. The
// test drives a real engine workload through every instrumented layer
// (engine phases, matchers, oracle, thread pool) and asserts the recorder
// state is bit-for-bit unchanged.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "obs/trace.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace ptar {
namespace {

TEST(TraceOverheadTest, DisabledRecorderStaysUntouched) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  ASSERT_FALSE(rec.enabled()) << "tracing must be off by default";
  // Deltas, not absolutes: other tests in this process may have recorded.
  const std::uint64_t events_before = rec.events_recorded();
  const std::size_t buffers_before = rec.buffer_count();

  GridCityOptions copts;
  copts.rows = 10;
  copts.cols = 10;
  copts.seed = 5;
  auto graph = MakeGridCity(copts);
  ASSERT_TRUE(graph.ok());
  auto grid = GridIndex::Build(&*graph, {.cell_size_meters = 300.0});
  ASSERT_TRUE(grid.ok());

  WorkloadOptions wopts;
  wopts.num_requests = 10;
  wopts.duration_seconds = 600.0;
  wopts.seed = 8;
  auto requests = GenerateWorkload(*graph, wopts);
  ASSERT_TRUE(requests.ok());

  // Pooled run: covers the pool-queue-wait observer too.
  EngineOptions eopts;
  eopts.num_vehicles = 30;
  eopts.seed = 13;
  eopts.threads = 4;
  Engine engine(&*graph, &*grid, eopts);
  BaselineMatcher ba;
  SsaMatcher ssa(0.5);
  DsaMatcher dsa(0.5);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  const RunStats stats = engine.Run(*requests, matchers);
  EXPECT_GT(stats.served + stats.unserved, 0u);

  EXPECT_EQ(rec.events_recorded(), events_before)
      << "disabled tracing wrote events";
  EXPECT_EQ(rec.buffer_count(), buffers_before)
      << "disabled tracing registered thread buffers";
}

TEST(TraceOverheadTest, InactiveSpanIgnoresArgs) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  ASSERT_FALSE(rec.enabled());
  const std::uint64_t before = rec.events_recorded();
  {
    obs::TraceSpan span("never_recorded");
    span.AddArg("x", 1);
  }
  EXPECT_EQ(rec.events_recorded(), before);
}

}  // namespace
}  // namespace ptar
