// Tests for the grid index: geometry, borders, and — critically — the
// soundness of the lower / upper distance bounds against a Floyd-Warshall
// oracle across random graphs and cell sizes.

#include "grid/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(GridGeometryTest, CellOfPointRowMajor) {
  const GridGeometry geo(0.0, 0.0, 10.0, 4, 3);
  EXPECT_EQ(geo.num_cells(), 12u);
  EXPECT_EQ(geo.CellOfPoint(Coord{5, 5}), 0u);
  EXPECT_EQ(geo.CellOfPoint(Coord{15, 5}), 1u);
  EXPECT_EQ(geo.CellOfPoint(Coord{5, 15}), 4u);
  EXPECT_EQ(geo.CellOfPoint(Coord{35, 25}), 11u);
}

TEST(GridGeometryTest, OutOfBoxClamps) {
  const GridGeometry geo(0.0, 0.0, 10.0, 4, 3);
  EXPECT_EQ(geo.CellOfPoint(Coord{-100, -100}), 0u);
  EXPECT_EQ(geo.CellOfPoint(Coord{1000, 1000}), 11u);
}

TEST(GridIndexTest, RejectsBadInput) {
  const RoadNetwork g = testing::MakeSmallGrid();
  EXPECT_FALSE(GridIndex::Build(nullptr, {.cell_size_meters = 10}).ok());
  EXPECT_FALSE(GridIndex::Build(&g, {.cell_size_meters = 0}).ok());
  RoadNetwork empty;
  EXPECT_FALSE(GridIndex::Build(&empty, {.cell_size_meters = 10}).ok());
}

TEST(GridIndexTest, SmallGridStructure) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);  // 200 x 200 box
  auto index = GridIndex::Build(&g, {.cell_size_meters = 100.0});
  ASSERT_TRUE(index.ok());
  // Every vertex belongs to a cell; all cells with vertices are active.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(index->IsActive(index->CellOfVertex(v)));
  }
  // Vertices grouped by cell partition the vertex set.
  std::size_t total = 0;
  for (const CellId cell : index->active_cells()) {
    total += index->CellVertices(cell).size();
    for (const VertexId v : index->CellVertices(cell)) {
      EXPECT_EQ(index->CellOfVertex(v), cell);
    }
  }
  EXPECT_EQ(total, g.num_vertices());
}

TEST(GridIndexTest, BorderVerticesAreEndpointsOfCrossingEdges) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  auto index = GridIndex::Build(&g, {.cell_size_meters = 100.0});
  ASSERT_TRUE(index.ok());
  for (const CellId cell : index->active_cells()) {
    for (const VertexId b : index->BorderVertices(cell)) {
      EXPECT_EQ(index->CellOfVertex(b), cell);
      bool crossing = false;
      for (const Arc& a : g.OutArcs(b)) {
        if (index->CellOfVertex(a.head) != cell) crossing = true;
      }
      EXPECT_TRUE(crossing) << "vertex " << b << " is not on a crossing edge";
    }
  }
}

TEST(GridIndexTest, SingleCellDegeneratesGracefully) {
  const RoadNetwork g = testing::MakeSmallGrid(1.0);  // tiny box
  auto index = GridIndex::Build(&g, {.cell_size_meters = 1000.0});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_active_cells(), 1u);
  // Same cell: ldist 0; no borders so udist is unknown (infinite).
  EXPECT_DOUBLE_EQ(index->LowerBound(0, 8), 0.0);
  EXPECT_EQ(index->UpperBound(0, 8), kInfDistance);
  EXPECT_DOUBLE_EQ(index->UpperBound(4, 4), 0.0);
}

TEST(GridIndexTest, CellListsSortedAndComplete) {
  GridCityOptions copts;
  copts.rows = 12;
  copts.cols = 12;
  copts.seed = 3;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::Build(&*g, {.cell_size_meters = 250.0});
  ASSERT_TRUE(index.ok());
  for (const CellId cell : index->active_cells()) {
    const std::span<const CellId> list = index->CellsByDistance(cell);
    ASSERT_EQ(list.size(), index->num_active_cells());
    EXPECT_EQ(list[0], cell);  // self first (D = 0)
    for (std::size_t i = 0; i + 1 < list.size(); ++i) {
      EXPECT_LE(index->CellPairLowerBound(cell, list[i]),
                index->CellPairLowerBound(cell, list[i + 1]));
    }
  }
}

TEST(GridIndexTest, MemoryGrowsAsCellsShrink) {
  GridCityOptions copts;
  copts.rows = 15;
  copts.cols = 15;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  auto coarse = GridIndex::Build(&*g, {.cell_size_meters = 700.0});
  auto fine = GridIndex::Build(&*g, {.cell_size_meters = 150.0});
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_GT(fine->num_active_cells(), coarse->num_active_cells());
  EXPECT_GT(fine->MemoryBytes(), coarse->MemoryBytes());
}

TEST(GridIndexTest, CollectCellsDeduplicates) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  auto index = GridIndex::Build(&g, {.cell_size_meters = 100.0});
  ASSERT_TRUE(index.ok());
  std::vector<CellId> out;
  const std::vector<VertexId> path = {0, 1, 2, 5, 8};
  index->CollectCells(path, &out);
  // No duplicates.
  std::vector<CellId> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  // Covers the cells of all path vertices.
  for (const VertexId v : path) {
    EXPECT_TRUE(std::find(out.begin(), out.end(), index->CellOfVertex(v)) !=
                out.end());
  }
}

// The central property: for every vertex pair,
//   ldist(u, v) <= dist(u, v) <= udist(u, v),
// and for every (vertex, cell): ldist(u, g) <= min distance into the cell.
class GridBoundsPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(GridBoundsPropertyTest, BoundsAreSound) {
  const auto [seed, cell_size] = GetParam();
  const RoadNetwork g = testing::MakeRandomConnectedGraph(60, 90, seed);
  const auto fw = testing::FloydWarshall(g);
  auto index = GridIndex::Build(&g, {.cell_size_meters = cell_size});
  ASSERT_TRUE(index.ok());

  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const Distance exact = fw[u][v];
      const Distance lo = index->LowerBound(u, v);
      const Distance hi = index->UpperBound(u, v);
      EXPECT_LE(lo, exact + 1e-9) << "u=" << u << " v=" << v;
      if (exact != kInfDistance) {
        EXPECT_GE(hi, exact - 1e-9) << "u=" << u << " v=" << v;
      }
    }
  }

  for (VertexId u = 0; u < g.num_vertices(); u += 5) {
    for (const CellId cell : index->active_cells()) {
      Distance exact_min = kInfDistance;
      for (const VertexId w : index->CellVertices(cell)) {
        exact_min = std::min(exact_min, fw[u][w]);
      }
      EXPECT_LE(index->LowerBoundToCell(u, cell), exact_min + 1e-9)
          << "u=" << u << " cell=" << cell;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCellSizes, GridBoundsPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(150.0, 300.0, 600.0)));

// Same soundness on structured (grid-city) networks where borders are dense.
TEST(GridIndexTest, BoundsSoundOnGridCity) {
  GridCityOptions copts;
  copts.rows = 10;
  copts.cols = 10;
  copts.seed = 9;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  const auto fw = testing::FloydWarshall(*g);
  auto index = GridIndex::Build(&*g, {.cell_size_meters = 230.0});
  ASSERT_TRUE(index.ok());
  int tight = 0;
  int pairs = 0;
  for (VertexId u = 0; u < g->num_vertices(); u += 3) {
    for (VertexId v = 0; v < g->num_vertices(); v += 7) {
      const Distance exact = fw[u][v];
      EXPECT_LE(index->LowerBound(u, v), exact + 1e-9);
      EXPECT_GE(index->UpperBound(u, v), exact - 1e-9);
      ++pairs;
      if (index->LowerBound(u, v) > 0.5 * exact) ++tight;
    }
  }
  // The bounds should be non-trivial (tight for a decent share of pairs).
  EXPECT_GT(tight, pairs / 4);
}

}  // namespace
}  // namespace ptar
