// Kinetic-tree auditor suite: the invariants the matchers rely on are
// checked against a trusted oracle, injected corruption is detected and
// repaired in place, and the engine's post-commit audit hook repairs
// poisoned trees before they can mis-serve a later request. Part of the
// `robustness` label (and the sanitize config via the compound label).

#include "kinetic/tree_auditor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/fault_injection.h"
#include "graph/distance_oracle.h"
#include "rideshare/baseline_matcher.h"
#include "scenario_builder.h"
#include "sim/engine.h"

namespace ptar {
namespace {

using testing::GridWorld;
using testing::MakeGridWorld;
using testing::MakeRequestStream;

/// Engine with a few commits applied, so the fleet holds non-empty trees
/// with real schedules to audit.
struct BusyWorld {
  GridWorld world;
  std::unique_ptr<Engine> engine;
  BaselineMatcher ba;

  explicit BusyWorld(bool audit_after_commit = false) {
    world = MakeGridWorld();
    EngineOptions eopts;
    eopts.num_vehicles = 20;
    eopts.seed = 5;
    eopts.audit_after_commit = audit_after_commit;
    engine =
        std::make_unique<Engine>(world.graph.get(), world.grid.get(), eopts);
    const std::vector<Request> requests =
        MakeRequestStream(*world.graph, {.num_requests = 15, .seed = 11});
    std::vector<Matcher*> matchers = {&ba};
    for (const Request& request : requests) {
      engine->ProcessRequest(request, matchers);
    }
  }

  KineticTree::DistFn TrustedDist() {
    auto oracle = std::make_shared<DistanceOracle>(world.graph.get());
    return [oracle](VertexId a, VertexId b) { return oracle->Dist(a, b); };
  }
};

TEST(TreeAuditorTest, HealthyFleetAuditsClean) {
  BusyWorld busy;
  const AuditReport report = busy.engine->AuditFleet();
  EXPECT_TRUE(report.ok()) << report.findings.front();
  EXPECT_EQ(report.trees_checked, busy.engine->fleet().size());
  EXPECT_GT(report.branches_checked, 0u);
  EXPECT_GT(report.aggregate_cells_checked, 0u);
}

TEST(TreeAuditorTest, DetectsAndRepairsCorruptedLeg) {
  BusyWorld busy;
  std::vector<KineticTree>& fleet = busy.engine->fleet();
  const VehicleId corrupted = check::CorruptRandomLeg(fleet, /*seed=*/3);
  ASSERT_NE(corrupted, kInvalidVehicle)
      << "no non-empty tree to corrupt: scenario too small";

  const KineticTreeAuditor auditor(busy.TrustedDist());
  const AuditReport before = auditor.AuditTree(fleet[corrupted]);
  ASSERT_FALSE(before.ok());
  // The finding names the vehicle, so a post-commit log line is actionable.
  EXPECT_NE(before.findings.front().find(std::to_string(corrupted)),
            std::string::npos)
      << before.findings.front();

  ASSERT_TRUE(auditor.RepairTree(fleet[corrupted]).ok());
  const AuditReport after = auditor.AuditTree(fleet[corrupted]);
  EXPECT_TRUE(after.ok()) << after.findings.front();
}

TEST(TreeAuditorTest, FleetAuditCoversRegistryAggregates) {
  BusyWorld busy;
  const KineticTreeAuditor auditor(busy.TrustedDist());
  // Commits leave their cells' aggregates dirty (lazily rebuilt before the
  // next matching use); the aggregate audit only covers clean cells, so
  // rebuild first — exactly what Engine::AuditFleet does internally.
  busy.engine->registry().RebuildDirtyAggregates();
  const AuditReport report =
      auditor.AuditFleet(busy.engine->fleet(), &busy.engine->registry());
  EXPECT_TRUE(report.ok()) << report.findings.front();
  EXPECT_GT(report.aggregate_cells_checked, 0u);

  // Registry self-audit agrees (and is idempotent).
  std::vector<std::string> findings;
  busy.engine->registry().AuditAggregates(&findings);
  EXPECT_TRUE(findings.empty()) << findings.front();
}

TEST(TreeAuditorTest, EngineFleetAuditCountsFindings) {
  BusyWorld busy;
  const VehicleId corrupted =
      check::CorruptRandomLeg(busy.engine->fleet(), /*seed=*/3);
  ASSERT_NE(corrupted, kInvalidVehicle);
  const AuditReport report = busy.engine->AuditFleet();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(busy.engine->metrics().Counter("audit/findings"), 1u);
  EXPECT_GE(busy.engine->metrics().Counter("audit/trees_checked"),
            busy.engine->fleet().size());
}

TEST(TreeAuditorTest, PostCommitAuditingKeepsFleetClean) {
  BusyWorld busy(/*audit_after_commit=*/true);
  // The initial commits already ran the post-commit hook.
  const std::uint64_t audited_trees =
      busy.engine->metrics().Counter("audit/trees_checked");
  EXPECT_GT(audited_trees, 0u);

  const VehicleId corrupted =
      check::CorruptRandomLeg(busy.engine->fleet(), /*seed=*/3);
  ASSERT_NE(corrupted, kInvalidVehicle);
  EXPECT_FALSE(busy.engine->AuditFleet().ok()) << "corruption not detected";

  // Keep the simulation running. Corruption cannot survive normal
  // operation: a commit on the vehicle re-enumerates its schedules, a
  // movement refresh recomputes its legs, and a post-commit audit repairs
  // whatever those two miss.
  const std::vector<Request> more =
      MakeRequestStream(*busy.world.graph, {.num_requests = 30, .seed = 23});
  std::vector<Matcher*> matchers = {&busy.ba};
  for (const Request& request : more) {
    busy.engine->ProcessRequest(request, matchers);
  }
  EXPECT_GT(busy.engine->metrics().Counter("audit/trees_checked"),
            audited_trees)
      << "post-commit audit hook never ran";
  const AuditReport report = busy.engine->AuditFleet();
  EXPECT_TRUE(report.ok()) << report.findings.front();
}

TEST(TreeAuditorTest, RepairPreservesActiveBranchMinimality) {
  BusyWorld busy;
  std::vector<KineticTree>& fleet = busy.engine->fleet();
  const VehicleId corrupted = check::CorruptRandomLeg(fleet, /*seed=*/7);
  ASSERT_NE(corrupted, kInvalidVehicle);
  const KineticTreeAuditor auditor(busy.TrustedDist());
  ASSERT_TRUE(auditor.RepairTree(fleet[corrupted]).ok());
  // The repaired tree's active branch is the shortest valid schedule —
  // re-auditing checks exactly that invariant.
  EXPECT_TRUE(auditor.AuditTree(fleet[corrupted]).ok());
}

}  // namespace
}  // namespace ptar
