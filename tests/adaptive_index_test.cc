// Tests for the quadtree (adaptive) partition variant of the grid index —
// the paper's future-work direction. The bound properties and the full
// matcher-equivalence guarantee must hold exactly as for the uniform grid.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "graph/generators.h"
#include "grid/grid_index.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(AdaptiveIndexTest, RejectsBadOptions) {
  const RoadNetwork g = testing::MakeSmallGrid();
  EXPECT_FALSE(
      GridIndex::BuildAdaptive(nullptr, {.max_vertices_per_cell = 8}).ok());
  EXPECT_FALSE(
      GridIndex::BuildAdaptive(&g, {.max_vertices_per_cell = 0}).ok());
  EXPECT_FALSE(GridIndex::BuildAdaptive(
                   &g, {.max_vertices_per_cell = 8,
                        .min_cell_size_meters = 0.0})
                   .ok());
}

TEST(AdaptiveIndexTest, PartitionsAllVerticesIntoBoundedLeaves) {
  GridCityOptions copts;
  copts.rows = 20;
  copts.cols = 20;
  copts.seed = 5;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::BuildAdaptive(
      &*g, {.max_vertices_per_cell = 16, .min_cell_size_meters = 10.0});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->partition_kind(), GridIndex::PartitionKind::kQuadtree);

  std::size_t total = 0;
  for (const CellId cell : index->active_cells()) {
    const std::size_t count = index->CellVertices(cell).size();
    EXPECT_LE(count, 16u);
    EXPECT_GE(count, 1u);
    total += count;
    for (const VertexId v : index->CellVertices(cell)) {
      EXPECT_EQ(index->CellOfVertex(v), cell);
    }
  }
  EXPECT_EQ(total, g->num_vertices());
}

TEST(AdaptiveIndexTest, DensityAdaptsLeafCount) {
  // The ring-radial city is dense near the hub: an adaptive partition
  // should use far fewer cells than a uniform grid of the smallest leaf
  // size, while still keeping leaves small.
  RingRadialCityOptions copts;
  copts.rings = 14;
  copts.spokes = 28;
  auto g = MakeRingRadialCity(copts);
  ASSERT_TRUE(g.ok());
  auto adaptive = GridIndex::BuildAdaptive(
      &*g, {.max_vertices_per_cell = 24, .min_cell_size_meters = 20.0});
  ASSERT_TRUE(adaptive.ok());
  auto fine_uniform = GridIndex::Build(&*g, {.cell_size_meters = 220.0});
  ASSERT_TRUE(fine_uniform.ok());
  EXPECT_LT(adaptive->num_active_cells(), fine_uniform->num_active_cells());
  EXPECT_GT(adaptive->num_active_cells(), 4u);
}

class AdaptiveBoundsPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(AdaptiveBoundsPropertyTest, BoundsAreSound) {
  const auto [seed, max_per_cell] = GetParam();
  const RoadNetwork g = testing::MakeRandomConnectedGraph(60, 90, seed);
  const auto fw = testing::FloydWarshall(g);
  auto index = GridIndex::BuildAdaptive(
      &g, {.max_vertices_per_cell = static_cast<std::size_t>(max_per_cell),
           .min_cell_size_meters = 5.0});
  ASSERT_TRUE(index.ok());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const Distance exact = fw[u][v];
      EXPECT_LE(index->LowerBound(u, v), exact + 1e-9)
          << "u=" << u << " v=" << v;
      if (exact != kInfDistance) {
        EXPECT_GE(index->UpperBound(u, v), exact - 1e-9)
            << "u=" << u << " v=" << v;
      }
    }
  }
  for (VertexId u = 0; u < g.num_vertices(); u += 5) {
    for (const CellId cell : index->active_cells()) {
      Distance exact_min = kInfDistance;
      for (const VertexId w : index->CellVertices(cell)) {
        exact_min = std::min(exact_min, fw[u][w]);
      }
      EXPECT_LE(index->LowerBoundToCell(u, cell), exact_min + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndLeafSizes, AdaptiveBoundsPropertyTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(4, 16, 64)));

TEST(AdaptiveIndexTest, FullCoverageMatchersStayExact) {
  GridCityOptions copts;
  copts.rows = 12;
  copts.cols = 12;
  copts.seed = 21;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::BuildAdaptive(
      &*g, {.max_vertices_per_cell = 12, .min_cell_size_meters = 20.0});
  ASSERT_TRUE(index.ok());

  WorkloadOptions wopts;
  wopts.num_requests = 40;
  wopts.duration_seconds = 800.0;
  wopts.epsilon = 0.5;
  wopts.waiting_minutes = 3.0;
  wopts.seed = 9;
  auto requests = GenerateWorkload(*g, wopts);
  ASSERT_TRUE(requests.ok());

  EngineOptions eopts;
  eopts.num_vehicles = 20;
  eopts.seed = 11;
  Engine engine(&*g, &*index, eopts);
  BaselineMatcher ba;
  SsaMatcher ssa(1.0);
  DsaMatcher dsa(1.0);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  const RunStats stats = engine.Run(*requests, matchers);
  EXPECT_DOUBLE_EQ(stats.matchers[1].MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.matchers[1].MeanRecall(), 1.0);
  EXPECT_DOUBLE_EQ(stats.matchers[2].MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.matchers[2].MeanRecall(), 1.0);
  EXPECT_GT(stats.served, 30u);
}

TEST(AdaptiveIndexTest, CellListsSortedByLowerBound) {
  GridCityOptions copts;
  copts.rows = 14;
  copts.cols = 14;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::BuildAdaptive(
      &*g, {.max_vertices_per_cell = 20, .min_cell_size_meters = 20.0});
  ASSERT_TRUE(index.ok());
  for (const CellId cell : index->active_cells()) {
    const auto list = index->CellsByDistance(cell);
    ASSERT_EQ(list.size(), index->num_active_cells());
    EXPECT_EQ(list[0], cell);
    for (std::size_t i = 0; i + 1 < list.size(); ++i) {
      EXPECT_LE(index->CellPairLowerBound(cell, list[i]),
                index->CellPairLowerBound(cell, list[i + 1]));
    }
  }
}

}  // namespace
}  // namespace ptar
