// Randomized end-to-end invariant checks ("fuzz-lite"): many seeded
// scenarios with varying fleet sizes, constraint tightness, policies, and
// matchers, verifying deep system invariants after (and during) each run:
//
//  * every kinetic-tree branch of every vehicle is a valid schedule;
//  * onboard rider counts are within capacity and consistent with the
//    assigned set;
//  * every assigned request appears in every branch of its vehicle, and in
//    no other vehicle;
//  * after draining the simulation, the fleet is empty and all riders were
//    delivered.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "tests/scenario_builder.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

struct FuzzParam {
  std::uint64_t seed;
  double epsilon;
  double waiting_minutes;
  int vehicles;
  int capacity;
  ChoicePolicy policy;
  double fraction;  // SSA fraction; 0 means commit with BA instead
};

class EngineFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

void CheckFleetInvariants(const Engine& engine) {
  std::set<RequestId> seen_requests;
  for (const KineticTree& tree : engine.fleet()) {
    // Capacity / onboard consistency.
    EXPECT_GE(tree.onboard(), 0);
    EXPECT_LE(tree.onboard(), tree.capacity());
    int onboard_from_assigned = 0;
    for (const AssignedRequest& a : tree.assigned()) {
      if (a.picked_up) onboard_from_assigned += a.request.riders;
      // A request is assigned to exactly one vehicle.
      EXPECT_TRUE(seen_requests.insert(a.request.id).second)
          << "request " << a.request.id << " assigned twice";
    }
    EXPECT_EQ(tree.onboard(), onboard_from_assigned);

    // Every branch is a valid schedule containing every assigned request.
    EXPECT_GE(tree.num_branches(), 1u);
    const std::vector<Schedule> schedules = tree.Schedules();
    for (const Schedule& schedule : schedules) {
      if (tree.IsEmpty()) {
        EXPECT_TRUE(schedule.stops.empty());
        continue;
      }
      if (!tree.stale()) {
        EXPECT_TRUE(tree.IsValidSchedule(schedule, nullptr))
            << "invalid branch on vehicle " << tree.vehicle();
      }
      std::set<RequestId> in_branch;
      for (const Stop& stop : schedule.stops) {
        in_branch.insert(stop.request);
      }
      EXPECT_EQ(in_branch.size(), tree.assigned().size());
    }
  }
}

TEST_P(EngineFuzzTest, InvariantsHoldThroughoutARun) {
  const FuzzParam param = GetParam();

  testing::GridWorldOptions copts;
  copts.rows = 14;
  copts.cols = 14;
  copts.seed = testing::DeriveSeed(param.seed, /*stream=*/0);
  copts.cell_size_meters = 350.0;
  testing::GridWorld world = testing::MakeGridWorld(copts);

  testing::RequestStreamOptions wopts;
  wopts.num_requests = 60;
  wopts.duration_seconds = 700.0;
  wopts.epsilon = param.epsilon;
  wopts.waiting_minutes = param.waiting_minutes;
  wopts.peak_sharpness = (param.seed % 2 == 0) ? 0.0 : 6.0;
  wopts.seed = testing::DeriveSeed(param.seed, /*stream=*/1);
  const std::vector<Request> requests =
      testing::MakeRequestStream(*world.graph, wopts);

  EngineOptions eopts;
  eopts.num_vehicles = param.vehicles;
  eopts.vehicle_capacity = param.capacity;
  eopts.policy = param.policy;
  eopts.seed = param.seed;
  Engine engine(world.graph.get(), world.grid.get(), eopts);

  BaselineMatcher ba;
  SsaMatcher ssa(param.fraction > 0 ? param.fraction : 0.16);
  Matcher* committer = param.fraction > 0
                           ? static_cast<Matcher*>(&ssa)
                           : static_cast<Matcher*>(&ba);
  std::vector<Matcher*> matchers = {committer};

  std::uint64_t served = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto outcome = engine.ProcessRequest(requests[i], matchers);
    if (outcome.served) ++served;
    if (i % 10 == 0) CheckFleetInvariants(engine);
  }
  CheckFleetInvariants(engine);
  EXPECT_GT(served, requests.size() / 2);

  // Drain: everyone gets delivered eventually.
  engine.AdvanceTo(engine.now() + 30000.0);
  for (const KineticTree& tree : engine.fleet()) {
    EXPECT_TRUE(tree.IsEmpty());
    EXPECT_EQ(tree.onboard(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EngineFuzzTest,
    ::testing::Values(
        FuzzParam{1, 0.2, 2.0, 12, 4, ChoicePolicy::kMinPrice, 0.0},
        FuzzParam{2, 0.6, 5.0, 8, 4, ChoicePolicy::kMinTime, 0.16},
        FuzzParam{3, 1.0, 8.0, 5, 6, ChoicePolicy::kBalanced, 0.32},
        FuzzParam{4, 0.3, 3.0, 20, 2, ChoicePolicy::kRandom, 0.16},
        FuzzParam{5, 0.8, 6.0, 6, 5, ChoicePolicy::kMinPrice, 0.08},
        FuzzParam{6, 0.4, 4.0, 15, 3, ChoicePolicy::kMinTime, 0.0},
        FuzzParam{7, 1.2, 10.0, 4, 6, ChoicePolicy::kBalanced, 0.64},
        FuzzParam{8, 0.25, 2.5, 25, 4, ChoicePolicy::kRandom, 1.0}));

}  // namespace
}  // namespace ptar
