// Tests for the sample-summary helper.

#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ptar {
namespace {

TEST(SampleSummaryTest, EmptyIsZero) {
  const SampleSummary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(SampleSummaryTest, BasicMoments) {
  SampleSummary s;
  for (const double v : {4.0, 1.0, 3.0, 2.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(SampleSummaryTest, PercentilesInterpolate) {
  SampleSummary s;
  for (const double v : {10.0, 20.0, 30.0, 40.0, 50.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(12.5), 15.0);  // between first two
}

TEST(SampleSummaryTest, SingleSample) {
  SampleSummary s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
}

TEST(SampleSummaryTest, AddAfterPercentileQuery) {
  SampleSummary s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 1.0);
  s.Add(3.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.Percentile(50), 2.0);
}

TEST(SampleSummaryTest, MergeFromCombines) {
  SampleSummary a;
  SampleSummary b;
  a.Add(1.0);
  b.Add(3.0);
  b.Add(5.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 3.0);
}

TEST(SampleSummaryTest, InterleavedAddAndQueryMatchesBulk) {
  // The sorted cache grows incrementally (sort the new suffix, then an
  // inplace_merge) instead of a full re-sort per invalidation; heavy
  // interleaving of Add and Percentile must still match a bulk-built
  // summary exactly.
  SampleSummary interleaved;
  SampleSummary bulk;
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.UniformReal(0, 100));
  for (std::size_t i = 0; i < values.size(); ++i) {
    interleaved.Add(values[i]);
    if (i % 3 == 0) {
      // Query mid-stream: forces the incremental path on the next Add.
      (void)interleaved.Percentile(50);
    }
  }
  for (double v : values) bulk.Add(v);
  for (double p = 0; p <= 100; p += 7) {
    EXPECT_DOUBLE_EQ(interleaved.Percentile(p), bulk.Percentile(p)) << p;
  }
}

TEST(SampleSummaryTest, QueryAfterMergeSeesAllSamples) {
  SampleSummary a;
  SampleSummary b;
  a.Add(10.0);
  (void)a.Percentile(50);  // populate a's sorted cache before the merge
  b.Add(2.0);
  b.Add(4.0);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.Percentile(0), 2.0);
  EXPECT_DOUBLE_EQ(a.Percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(a.Percentile(50), 4.0);
}

TEST(SampleSummaryTest, PercentileOrderIsMonotone) {
  SampleSummary s;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) s.Add(rng.UniformReal(0, 1000));
  double prev = s.Percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = s.Percentile(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace ptar
