// Tests for the command-line flag parser.

#include "common/flags.h"

#include <gtest/gtest.h>

#include "graph/distance_oracle.h"

namespace ptar {
namespace {

StatusOr<FlagParser> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return FlagParser::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, EmptyArgs) {
  auto flags = ParseArgs({});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->Has("anything"));
  EXPECT_TRUE(flags->positional().empty());
  EXPECT_TRUE(flags->UnusedFlags().empty());
}

TEST(FlagParserTest, KeyValueForm) {
  auto flags = ParseArgs({"--name=value", "--count=42"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("name", ""), "value");
  auto count = flags->GetInt("count", 0);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 42);
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  auto flags = ParseArgs({});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(*flags->GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(*flags->GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(*flags->GetBool("missing", true));
}

TEST(FlagParserTest, BareSwitchIsTrue) {
  auto flags = ParseArgs({"--verbose"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("verbose"));
  EXPECT_TRUE(*flags->GetBool("verbose", false));
}

TEST(FlagParserTest, ExplicitBooleans) {
  auto flags = ParseArgs({"--a=true", "--b=false", "--c=1", "--d=0"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(*flags->GetBool("a", false));
  EXPECT_FALSE(*flags->GetBool("b", true));
  EXPECT_TRUE(*flags->GetBool("c", false));
  EXPECT_FALSE(*flags->GetBool("d", true));
}

TEST(FlagParserTest, TypeErrorsAreStatuses) {
  auto flags = ParseArgs({"--count=abc", "--rate=x.y", "--flag=maybe"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->GetInt("count", 0).ok());
  EXPECT_FALSE(flags->GetDouble("rate", 0).ok());
  EXPECT_FALSE(flags->GetBool("flag", false).ok());
}

TEST(FlagParserTest, NegativeAndFloatValues) {
  auto flags = ParseArgs({"--offset=-12", "--ratio=0.25"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags->GetInt("offset", 0), -12);
  EXPECT_DOUBLE_EQ(*flags->GetDouble("ratio", 0), 0.25);
}

TEST(FlagParserTest, PositionalsCollected) {
  auto flags = ParseArgs({"alpha", "--k=v", "beta"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->positional(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(FlagParserTest, DoubleDashEndsFlags) {
  auto flags = ParseArgs({"--k=v", "--", "--not-a-flag"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagParserTest, MalformedFlagRejected) {
  EXPECT_FALSE(ParseArgs({"--=x"}).ok());
}

TEST(FlagParserTest, RepeatedFlagRejected) {
  EXPECT_FALSE(ParseArgs({"--k=1", "--k=2"}).ok());
}

TEST(FlagParserTest, UnusedFlagsTracked) {
  auto flags = ParseArgs({"--used=1", "--typo=2"});
  ASSERT_TRUE(flags.ok());
  (void)flags->GetInt("used", 0);
  EXPECT_EQ(flags->UnusedFlags(), std::vector<std::string>{"typo"});
  // Reading it clears the report.
  (void)flags->GetInt("typo", 0);
  EXPECT_TRUE(flags->UnusedFlags().empty());
}

// Round-trip of the shared CLI flag validators: every bad value must come
// back as a Status (which the CLIs turn into a nonzero exit), never crash.
TEST(FlagValidatorsTest, ThreadsFlagRejectsNonPositive) {
  auto zero = ParseArgs({"--threads=0"});
  ASSERT_TRUE(zero.ok());
  EXPECT_FALSE(GetThreadsFlag(*zero).ok());
  auto negative = ParseArgs({"--threads=-4"});
  ASSERT_TRUE(negative.ok());
  EXPECT_FALSE(GetThreadsFlag(*negative).ok());
  auto garbage = ParseArgs({"--threads=many"});
  ASSERT_TRUE(garbage.ok());
  EXPECT_FALSE(GetThreadsFlag(*garbage).ok());
  auto good = ParseArgs({"--threads=4"});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*GetThreadsFlag(*good), 4);
}

TEST(FlagValidatorsTest, DistanceBackendRejectsUnknownNames) {
  EXPECT_FALSE(ParseDistanceBackend("bogus").ok());
  EXPECT_FALSE(ParseDistanceBackend("").ok());
  ASSERT_TRUE(ParseDistanceBackend("dijkstra").ok());
  ASSERT_TRUE(ParseDistanceBackend("ch").ok());
  EXPECT_EQ(*ParseDistanceBackend("dijkstra"), DistanceBackend::kDijkstra);
  EXPECT_EQ(*ParseDistanceBackend("ch"), DistanceBackend::kCH);
}

TEST(FlagParserTest, EmptyStringValue) {
  auto flags = ParseArgs({"--name="});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->Has("name"));
  EXPECT_EQ(flags->GetString("name", "default"), "");
}

}  // namespace
}  // namespace ptar
