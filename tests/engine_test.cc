// Tests for the fleet simulation engine: movement, commitment, choice
// policies, conservation invariants, and determinism.

#include "sim/engine.h"

#include <gtest/gtest.h>

#include "rideshare/baseline_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "tests/scenario_builder.h"

namespace ptar {
namespace {

using testing::GridWorld;

GridWorld MakeWorld(std::uint64_t seed = 3) {
  testing::GridWorldOptions copts;
  copts.seed = seed;
  return testing::MakeGridWorld(copts);
}

std::vector<Request> MakeRequests(const RoadNetwork& g, std::size_t n,
                                  std::uint64_t seed = 8) {
  testing::RequestStreamOptions opts;
  opts.num_requests = n;
  opts.seed = seed;
  return testing::MakeRequestStream(g, opts);
}

TEST(EngineTest, FleetStartsIdleAndRegistered) {
  GridWorld w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 10;
  Engine engine(w.graph.get(), w.grid.get(), opts);
  EXPECT_EQ(engine.fleet().size(), 10u);
  std::size_t registered = 0;
  for (const CellId cell : w.grid->active_cells()) {
    registered += engine.registry().EmptyVehicles(cell).size();
  }
  EXPECT_EQ(registered, 10u);
  for (const KineticTree& tree : engine.fleet()) {
    EXPECT_TRUE(tree.IsEmpty());
    EXPECT_EQ(tree.onboard(), 0);
  }
}

TEST(EngineTest, IdleVehiclesWanderButStayRegistered) {
  GridWorld w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 8;
  Engine engine(w.graph.get(), w.grid.get(), opts);
  engine.AdvanceTo(120.0);
  EXPECT_DOUBLE_EQ(engine.now(), 120.0);
  std::size_t registered = 0;
  for (const CellId cell : w.grid->active_cells()) {
    registered += engine.registry().EmptyVehicles(cell).size();
  }
  EXPECT_EQ(registered, 8u);
  // Vehicles actually moved (odometers advanced roughly speed * time).
  for (const KineticTree& tree : engine.fleet()) {
    EXPECT_GT(tree.odometer(), 0.0);
    EXPECT_LE(tree.odometer(), 120.0 * kDefaultSpeedMetersPerSec + 1e-6);
  }
}

TEST(EngineTest, ServesRequestsEndToEnd) {
  GridWorld w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 20;
  Engine engine(w.graph.get(), w.grid.get(), opts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  const std::vector<Request> requests = MakeRequests(*w.graph, 30);
  const RunStats stats = engine.Run(requests, matchers);

  EXPECT_EQ(stats.served + stats.unserved, 30u);
  EXPECT_GT(stats.served, 25u);  // plenty of fleet for 30 requests
  ASSERT_EQ(stats.matchers.size(), 1u);
  EXPECT_EQ(stats.matchers[0].requests, 30u);
  EXPECT_GT(stats.matchers[0].MeanOptions(), 0.0);
  // The committing matcher is its own reference: precision/recall 1.
  EXPECT_DOUBLE_EQ(stats.matchers[0].MeanPrecision(), 1.0);
  EXPECT_DOUBLE_EQ(stats.matchers[0].MeanRecall(), 1.0);
  EXPECT_GE(stats.SharingRate(), 0.0);
  EXPECT_LE(stats.SharingRate(), 1.0);
}

TEST(EngineTest, AllRequestsEventuallyCompleted) {
  GridWorld w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 15;
  Engine engine(w.graph.get(), w.grid.get(), opts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  const std::vector<Request> requests = MakeRequests(*w.graph, 20);
  engine.Run(requests, matchers);
  // Give the fleet ample time to finish every trip.
  engine.AdvanceTo(20000.0);
  for (const KineticTree& tree : engine.fleet()) {
    EXPECT_TRUE(tree.IsEmpty());
    EXPECT_EQ(tree.onboard(), 0);
  }
}

TEST(EngineTest, DeterministicRuns) {
  GridWorld w = MakeWorld();
  const std::vector<Request> requests = MakeRequests(*w.graph, 25);
  RunStats a;
  RunStats b;
  for (int trial = 0; trial < 2; ++trial) {
    EngineOptions opts;
    opts.num_vehicles = 15;
    opts.seed = 77;
    Engine engine(w.graph.get(), w.grid.get(), opts);
    BaselineMatcher ba;
    std::vector<Matcher*> matchers = {&ba};
    (trial == 0 ? a : b) = engine.Run(requests, matchers);
  }
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.shared, b.shared);
  EXPECT_EQ(a.matchers[0].totals.compdists, b.matchers[0].totals.compdists);
  EXPECT_EQ(a.matchers[0].totals.verified_vehicles,
            b.matchers[0].totals.verified_vehicles);
  EXPECT_EQ(a.matchers[0].options_sum, b.matchers[0].options_sum);
}

TEST(EngineTest, ChoicePoliciesAllRun) {
  for (const ChoicePolicy policy :
       {ChoicePolicy::kMinPrice, ChoicePolicy::kMinTime,
        ChoicePolicy::kBalanced, ChoicePolicy::kRandom}) {
    GridWorld w = MakeWorld();
    EngineOptions opts;
    opts.num_vehicles = 10;
    opts.policy = policy;
    Engine engine(w.graph.get(), w.grid.get(), opts);
    BaselineMatcher ba;
    std::vector<Matcher*> matchers = {&ba};
    const std::vector<Request> requests = MakeRequests(*w.graph, 10);
    const RunStats stats = engine.Run(requests, matchers);
    EXPECT_GT(stats.served, 0u) << "policy " << static_cast<int>(policy);
  }
}

TEST(EngineTest, MinPriceVsMinTimeChooseDifferently) {
  GridWorld w = MakeWorld();
  const std::vector<Request> requests = MakeRequests(*w.graph, 25);
  std::vector<double> chosen_prices[2];
  int idx = 0;
  for (const ChoicePolicy policy :
       {ChoicePolicy::kMinPrice, ChoicePolicy::kMinTime}) {
    EngineOptions opts;
    opts.num_vehicles = 20;
    opts.policy = policy;
    opts.seed = 5;
    Engine engine(w.graph.get(), w.grid.get(), opts);
    BaselineMatcher ba;
    std::vector<Matcher*> matchers = {&ba};
    for (const Request& r : requests) {
      const auto outcome = engine.ProcessRequest(r, matchers);
      if (outcome.served) chosen_prices[idx].push_back(outcome.chosen.price);
    }
    ++idx;
  }
  double sum0 = 0;
  double sum1 = 0;
  for (double p : chosen_prices[0]) sum0 += p;
  for (double p : chosen_prices[1]) sum1 += p;
  // Min-price accumulates no more total price than min-time.
  EXPECT_LE(sum0, sum1 + 1e-6);
}

TEST(EngineTest, SharingHappensWithConcentratedDemand) {
  GridWorld w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 5;  // scarce fleet forces sharing
  // Concentrated demand on a scarce fleet is exactly the workload where
  // unbounded enumeration goes factorial (every rider fits every gap of
  // the hot vehicle); the test is about sharing, so pin the bounded mode.
  opts.tree_max_branches = 64;
  Engine engine(w.graph.get(), w.grid.get(), opts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  WorkloadOptions wopts;
  wopts.num_requests = 40;
  wopts.duration_seconds = 300.0;
  wopts.epsilon = 1.0;       // generous detours
  wopts.waiting_minutes = 8.0;
  wopts.num_hotspots = 1;    // everyone travels the same corridor
  wopts.hotspot_prob = 1.0;
  wopts.seed = 12;
  auto requests = GenerateWorkload(*w.graph, wopts);
  ASSERT_TRUE(requests.ok());
  const RunStats stats = engine.Run(*requests, matchers);
  EXPECT_GT(stats.served, 0u);
  EXPECT_GT(stats.shared, 0u) << "no sharing in a forced-sharing scenario";
}

TEST(EngineTest, PartialCoverageSsaCanCommit) {
  // The committing matcher does not have to be exact: options from a
  // partial-coverage SSA are still achievable and the engine must commit
  // them without violating any invariant.
  GridWorld w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 15;
  Engine engine(w.graph.get(), w.grid.get(), opts);
  SsaMatcher ssa(0.16);
  std::vector<Matcher*> matchers = {&ssa};
  const std::vector<Request> requests = MakeRequests(*w.graph, 25);
  const RunStats stats = engine.Run(requests, matchers);
  EXPECT_GT(stats.served, 20u);
  engine.AdvanceTo(20000.0);
  for (const KineticTree& tree : engine.fleet()) {
    EXPECT_TRUE(tree.IsEmpty());
  }
}

TEST(EngineTest, KineticMemoryTracksLoad) {
  GridWorld w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 10;
  Engine engine(w.graph.get(), w.grid.get(), opts);
  const std::size_t before = engine.KineticTreeMemoryBytes();
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  const std::vector<Request> requests = MakeRequests(*w.graph, 10);
  engine.Run(requests, matchers);
  EXPECT_GT(engine.KineticTreeMemoryBytes(), 0u);
  EXPECT_GE(engine.KineticTreeMemoryBytes(), before);
}

}  // namespace
}  // namespace ptar
