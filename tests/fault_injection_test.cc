// Fault-injection suite: --inject spec parsing, the determinism contract of
// compiled fault hooks (same pair -> same decision, across oracles and
// directions), and the harness-level guarantee that faulted matchers only
// ever *lose* options — a faulted result is a subset of the clean
// reference, never a wrong price or pickup distance.

#include "check/fault_injection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "check/differential.h"
#include "check/scenario.h"
#include "graph/distance_oracle.h"
#include "test_util.h"

namespace ptar::check {
namespace {

TEST(ParseFaultPlanTest, ParsesFullSpec) {
  const auto plan = ParseFaultPlan(
      "fail_rate=0.25,seed=7,slow_us=50,stall_every=16,stall_us=200");
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_DOUBLE_EQ(plan->fail_rate, 0.25);
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->slow_micros, 50.0);
  EXPECT_EQ(plan->stall_every, 16u);
  EXPECT_DOUBLE_EQ(plan->stall_micros, 200.0);
  EXPECT_TRUE(plan->active());
}

TEST(ParseFaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultPlan("bogus_key=1").ok());
  EXPECT_FALSE(ParseFaultPlan("fail_rate=notanumber").ok());
  EXPECT_FALSE(ParseFaultPlan("fail_rate=1.5").ok());  // out of [0, 1]
  EXPECT_FALSE(ParseFaultPlan("fail_rate=-0.1").ok());
  EXPECT_FALSE(ParseFaultPlan("fail_rate").ok());  // no '='
  EXPECT_FALSE(ParseFaultPlan("slow_us=-3").ok());
}

TEST(ParseFaultPlanTest, InactivePlanCompilesToNullHook) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(static_cast<bool>(MakeFaultHook(plan)));
}

TEST(FaultHookTest, DecisionsAreDeterministicAcrossOraclesAndDirections) {
  const RoadNetwork graph = testing::MakeRandomConnectedGraph(60, 40, 17);
  FaultPlan plan;
  plan.fail_rate = 0.5;
  plan.seed = 11;

  DistanceOracle first(&graph);
  DistanceOracle second(&graph);
  first.SetFaultHook(MakeFaultHook(plan));
  second.SetFaultHook(MakeFaultHook(plan));

  std::uint64_t failed = 0;
  std::uint64_t fine = 0;
  for (VertexId a = 0; a < 20; ++a) {
    for (VertexId b = 20; b < 40; ++b) {
      const Distance forward = first.Dist(a, b);
      // Same pair, independent oracle: identical decision and value.
      EXPECT_EQ(forward, second.Dist(a, b));
      // Same pair, opposite direction: the decision hashes the *sorted*
      // pair, so symmetric queries fail together.
      EXPECT_EQ(std::isinf(forward), std::isinf(second.Dist(b, a)));
      (std::isinf(forward) ? failed : fine) += 1;
    }
  }
  // fail_rate=0.5 over 400 pairs: both outcomes must occur.
  EXPECT_GT(failed, 0u);
  EXPECT_GT(fine, 0u);
  EXPECT_GT(first.faults(), 0u);
}

TEST(FaultHookTest, FailRateOneFailsEverything) {
  const RoadNetwork graph = testing::MakeSmallGrid();
  FaultPlan plan;
  plan.fail_rate = 1.0;
  DistanceOracle oracle(&graph);
  oracle.SetFaultHook(MakeFaultHook(plan));
  for (VertexId a = 0; a < 9; ++a) {
    for (VertexId b = 0; b < 9; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(std::isinf(oracle.Dist(a, b)));
    }
  }
}

TEST(FaultyDifferentialTest, FaultedResultsAreSubsetsOfReference) {
  DifferentialConfig config;
  config.faults.fail_rate = 0.3;
  config.faults.seed = 9;
  std::size_t partials = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ScenarioSpec spec = MakeRandomSpec(seed);
    const auto outcome = RunDifferential(spec, config);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    for (const Divergence& d : outcome->divergences) {
      ADD_FAILURE() << "seed " << seed << ": " << d.Describe();
    }
    partials += outcome->partial_results;
  }
  // fail_rate=0.3 must actually have truncated results; otherwise the
  // subset property was never exercised.
  EXPECT_GT(partials, 0u);
}

TEST(FaultyDifferentialTest, FaultedOptionsStayFinite) {
  // Regression: a failed oracle computation answers kInfDistance; pricing
  // an insertion off it must drop the option, not emit price=inf.
  DifferentialConfig config;
  config.faults.fail_rate = 0.4;
  config.faults.seed = 5;
  const ScenarioSpec spec = MakeRandomSpec(2);
  auto built = BuildScenario(spec);
  ASSERT_TRUE(built.ok());
  const auto outcome = RunDifferential(spec, config);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_TRUE(outcome->ok());
}

TEST(CorruptRandomLegTest, IsDeterministicPerSeed) {
  // Build two identical fleets via the differential scenario machinery and
  // corrupt both with the same seed: same vehicle every time.
  const ScenarioSpec spec = MakeRandomSpec(3);
  auto make_fleet = [&spec] {
    auto built = BuildScenario(spec);
    EXPECT_TRUE(built.ok());
    std::vector<KineticTree> fleet;
    DistanceOracle oracle(built->graph.get());
    const auto dist = [&oracle](VertexId a, VertexId b) {
      return oracle.Dist(a, b);
    };
    for (std::size_t i = 0; i < spec.vehicle_starts.size(); ++i) {
      fleet.emplace_back(static_cast<VehicleId>(i), spec.vehicle_starts[i],
                         spec.vehicle_capacity);
    }
    // Occupy one vehicle so there is a leg to corrupt.
    if (!spec.requests.empty()) {
      const Request& request = spec.requests.front();
      const Distance direct = oracle.Dist(request.start, request.destination);
      EXPECT_TRUE(fleet[0]
                      .Commit(request, direct,
                              oracle.Dist(fleet[0].location(), request.start),
                              dist)
                      .ok());
    }
    return fleet;
  };
  std::vector<KineticTree> a = make_fleet();
  std::vector<KineticTree> b = make_fleet();
  EXPECT_EQ(CorruptRandomLeg(a, 41), CorruptRandomLeg(b, 41));
}

}  // namespace
}  // namespace ptar::check
