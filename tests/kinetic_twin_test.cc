// In-tree slice of the kinetic-tree representation twin: the legacy
// (flat-vector) implementation and the arena/SoA implementation driven
// through identical seeded op sequences must be observably identical, and
// the capped rider must stay subset-sound with attributed drops. The
// heavyweight 200-seed sweep lives in `ptar_check --tree_twin` (run by
// differential-nightly on both backends); this test keeps a fast slice in
// every ctest run, including the sanitizer sweeps (`-L kinetic`, `-L tsan`).

#include "check/tree_twin.h"

#include <gtest/gtest.h>

#include "graph/distance_oracle.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

using check::LegacyKineticTree;
using check::RunTreeTwin;
using check::TreeTwinOutcome;

TEST(KineticTwinTest, DijkstraSeedsAgree) {
  TreeTwinOutcome total;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    total.Fold(RunTreeTwin(seed, DistanceBackend::kDijkstra, /*cap=*/8));
  }
  for (const std::string& finding : total.findings) {
    ADD_FAILURE() << finding;
  }
  EXPECT_EQ(total.divergences, 0u);
  // The op mix must actually exercise the tree, not idle through it.
  EXPECT_GT(total.commits, 0u);
  EXPECT_GT(total.arrivals, 0u);
}

TEST(KineticTwinTest, CHBackendAgrees) {
  TreeTwinOutcome total;
  for (std::uint64_t seed = 7; seed <= 9; ++seed) {
    total.Fold(RunTreeTwin(seed, DistanceBackend::kCH, /*cap=*/8));
  }
  for (const std::string& finding : total.findings) {
    ADD_FAILURE() << finding;
  }
  EXPECT_EQ(total.divergences, 0u);
  EXPECT_GT(total.commits, 0u);
}

TEST(KineticTwinTest, TightCapDropsBranchesButStaysSubsetSound) {
  // cap=2 forces heavy dropping; subset soundness and loss attribution are
  // asserted inside RunTreeTwin after the first drop.
  TreeTwinOutcome total;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    total.Fold(RunTreeTwin(seed, DistanceBackend::kDijkstra, /*cap=*/2));
  }
  for (const std::string& finding : total.findings) {
    ADD_FAILURE() << finding;
  }
  EXPECT_EQ(total.divergences, 0u);
  EXPECT_GT(total.capped_drops, 0u);
}

TEST(KineticTwinTest, UncappedTwinReportsNoDrops) {
  const TreeTwinOutcome one =
      RunTreeTwin(3, DistanceBackend::kDijkstra, /*cap=*/0);
  EXPECT_EQ(one.divergences, 0u);
  EXPECT_EQ(one.capped_drops, 0u);
  EXPECT_EQ(one.capped_losses, 0u);
}

// Direct spot-check that the two representations expose identical matching
// behavior on a hand-built world (independent of the fuzz harness).
TEST(KineticTwinTest, HandBuiltCommitSequenceMatches) {
  const RoadNetwork g = testing::MakeSmallGrid();
  DistanceOracle oracle(&g);
  const KineticTree::DistFn dist = [&oracle](VertexId a, VertexId b) {
    return oracle.Dist(a, b);
  };

  LegacyKineticTree legacy(0, 0, 4);
  KineticTree tree(0, 0, 4);

  Request r1;
  r1.id = 1;
  r1.start = 1;
  r1.destination = 8;
  r1.riders = 1;
  r1.max_wait_dist = 1000.0;
  r1.epsilon = 1.0;
  Request r2 = r1;
  r2.id = 2;
  r2.start = 3;
  r2.destination = 5;

  for (const Request& r : {r1, r2}) {
    const Distance direct = dist(r.start, r.destination);
    const auto legacy_cands =
        legacy.EnumerateInsertions(r, direct, dist, InsertionHooks{});
    const auto arena_cands =
        tree.EnumerateInsertions(r, direct, dist, InsertionHooks{});
    ASSERT_EQ(legacy_cands.size(), arena_cands.size());
    for (std::size_t i = 0; i < legacy_cands.size(); ++i) {
      EXPECT_TRUE(
          legacy_cands[i].schedule.SameStops(arena_cands[i].schedule));
      EXPECT_DOUBLE_EQ(legacy_cands[i].total_dist, arena_cands[i].total_dist);
      EXPECT_DOUBLE_EQ(legacy_cands[i].pickup_dist,
                       arena_cands[i].pickup_dist);
    }
    Distance planned = legacy_cands[0].pickup_dist;
    for (const auto& c : legacy_cands) {
      planned = std::min(planned, c.pickup_dist);
    }
    ASSERT_TRUE(legacy.Commit(r, direct, planned, dist).ok());
    ASSERT_TRUE(tree.Commit(r, direct, planned, dist).ok());
  }

  const std::vector<Schedule>& lb = legacy.schedules();
  const std::vector<Schedule> nb = tree.Schedules();
  ASSERT_EQ(lb.size(), nb.size());
  for (std::size_t b = 0; b < lb.size(); ++b) {
    EXPECT_TRUE(lb[b].SameStops(nb[b]));
    EXPECT_DOUBLE_EQ(lb[b].total(), nb[b].total());
  }
  EXPECT_DOUBLE_EQ(legacy.CurrentTotal(), tree.CurrentTotal());
}

}  // namespace
}  // namespace ptar
