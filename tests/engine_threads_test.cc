// Determinism of pooled shadow-matcher evaluation: running the BA/SSA/DSA
// trio with --threads=4 must be bit-identical to --threads=1 on the same
// seed — same served/unserved/shared totals, same per-matcher counters
// (compdists in particular), same chosen options, and same skyline contents
// for every request. Matchers only read shared world state and write into
// pre-assigned result slots, and each matcher slot gets its own
// DistanceOracle, so the parallel schedule cannot influence any value.

#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace ptar {
namespace {

struct World {
  RoadNetwork graph;
  std::unique_ptr<GridIndex> grid;
};

World MakeWorld(std::uint64_t seed = 3) {
  World w;
  GridCityOptions copts;
  copts.rows = 12;
  copts.cols = 12;
  copts.seed = seed;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  w.graph = std::move(g).value();
  auto grid = GridIndex::Build(&w.graph, {.cell_size_meters = 300.0});
  PTAR_CHECK(grid.ok());
  w.grid = std::make_unique<GridIndex>(std::move(grid).value());
  return w;
}

std::vector<Request> MakeRequests(const RoadNetwork& g, std::size_t n,
                                  std::uint64_t seed = 8) {
  WorkloadOptions opts;
  opts.num_requests = n;
  opts.duration_seconds = 600.0;
  opts.epsilon = 0.5;
  opts.waiting_minutes = 3.0;
  opts.seed = seed;
  auto reqs = GenerateWorkload(g, opts);
  PTAR_CHECK(reqs.ok());
  return std::move(reqs).value();
}

/// Per-request observables that must not depend on the thread count.
struct RequestTrace {
  bool served = false;
  Option chosen;
  std::vector<std::vector<Option>> skylines;  ///< One per matcher.
  std::vector<std::uint64_t> compdists;       ///< One per matcher.
};

std::vector<RequestTrace> TraceRun(const World& w,
                                   std::span<const Request> requests,
                                   int threads) {
  EngineOptions opts;
  opts.num_vehicles = 20;
  opts.seed = 13;
  opts.threads = threads;
  Engine engine(&w.graph, w.grid.get(), opts);
  BaselineMatcher ba;
  SsaMatcher ssa;
  DsaMatcher dsa;
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  std::vector<RequestTrace> traces;
  traces.reserve(requests.size());
  for (const Request& r : requests) {
    auto outcome = engine.ProcessRequest(r, matchers);
    RequestTrace t;
    t.served = outcome.served;
    t.chosen = outcome.chosen;
    for (const MatchResult& res : outcome.results) {
      t.skylines.push_back(res.options);
      t.compdists.push_back(res.stats.compdists);
    }
    traces.push_back(std::move(t));
  }
  return traces;
}

RunStats StatsRun(const World& w, std::span<const Request> requests,
                  int threads) {
  EngineOptions opts;
  opts.num_vehicles = 20;
  opts.seed = 13;
  opts.threads = threads;
  Engine engine(&w.graph, w.grid.get(), opts);
  BaselineMatcher ba;
  SsaMatcher ssa;
  DsaMatcher dsa;
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  return engine.Run(requests, matchers);
}

TEST(EngineThreadsTest, PerRequestOutcomesBitIdenticalAcrossThreadCounts) {
  const World w = MakeWorld();
  const std::vector<Request> requests = MakeRequests(w.graph, 25);
  const auto serial = TraceRun(w, requests, 1);
  const auto pooled = TraceRun(w, requests, 4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(serial[i].served, pooled[i].served);
    EXPECT_EQ(serial[i].chosen, pooled[i].chosen);
    ASSERT_EQ(serial[i].skylines.size(), pooled[i].skylines.size());
    for (std::size_t m = 0; m < serial[i].skylines.size(); ++m) {
      SCOPED_TRACE("matcher " + std::to_string(m));
      // Option operator== is exact (==, not NEAR): skyline contents, order
      // included, are bitwise identical.
      EXPECT_EQ(serial[i].skylines[m], pooled[i].skylines[m]);
      EXPECT_EQ(serial[i].compdists[m], pooled[i].compdists[m]);
    }
  }
}

TEST(EngineThreadsTest, RunStatsIdenticalAcrossThreadCounts) {
  const World w = MakeWorld();
  const std::vector<Request> requests = MakeRequests(w.graph, 25);
  const RunStats serial = StatsRun(w, requests, 1);
  const RunStats pooled = StatsRun(w, requests, 4);

  EXPECT_EQ(serial.served, pooled.served);
  EXPECT_EQ(serial.unserved, pooled.unserved);
  EXPECT_EQ(serial.shared, pooled.shared);
  ASSERT_EQ(serial.matchers.size(), pooled.matchers.size());
  for (std::size_t m = 0; m < serial.matchers.size(); ++m) {
    SCOPED_TRACE("matcher " + serial.matchers[m].name);
    const MatcherAggregate& a = serial.matchers[m];
    const MatcherAggregate& b = pooled.matchers[m];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.options_sum, b.options_sum);
    // Exact bits: precision/recall are sums of ratios of identical counts.
    EXPECT_EQ(a.precision_sum, b.precision_sum);
    EXPECT_EQ(a.recall_sum, b.recall_sum);
    // Every non-timing counter, compdists above all (the paper's metric).
    EXPECT_EQ(a.totals.compdists, b.totals.compdists);
    EXPECT_EQ(a.totals.verified_vehicles, b.totals.verified_vehicles);
    EXPECT_EQ(a.totals.scanned_cells, b.totals.scanned_cells);
    EXPECT_EQ(a.totals.pruned_cells, b.totals.pruned_cells);
    EXPECT_EQ(a.totals.pruned_vehicles, b.totals.pruned_vehicles);
  }
  // Sanity: the run actually exercised the matchers.
  EXPECT_EQ(serial.served + serial.unserved, requests.size());
  EXPECT_GT(serial.matchers[0].totals.compdists, 0u);
}

TEST(EngineThreadsTest, OversizedPoolIsHarmless) {
  // More threads than matchers: extra workers just idle.
  const World w = MakeWorld(5);
  const std::vector<Request> requests = MakeRequests(w.graph, 10, 21);
  const RunStats serial = StatsRun(w, requests, 1);
  const RunStats pooled = StatsRun(w, requests, 8);
  EXPECT_EQ(serial.served, pooled.served);
  ASSERT_EQ(serial.matchers.size(), pooled.matchers.size());
  for (std::size_t m = 0; m < serial.matchers.size(); ++m) {
    EXPECT_EQ(serial.matchers[m].totals.compdists,
              pooled.matchers[m].totals.compdists);
  }
}

}  // namespace
}  // namespace ptar
