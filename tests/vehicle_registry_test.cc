// Tests for the per-cell vehicle registry and its lazy aggregates.

#include "grid/vehicle_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace ptar {
namespace {

class VehicleRegistryTest : public ::testing::Test {
 protected:
  VehicleRegistryTest() : graph_(testing::MakeSmallGrid(100.0)) {
    auto index = GridIndex::Build(&graph_, {.cell_size_meters = 100.0});
    PTAR_CHECK(index.ok());
    grid_ = std::make_unique<GridIndex>(std::move(index).value());
    registry_ = std::make_unique<VehicleRegistry>(grid_.get());
  }

  KineticEdgeEntry Entry(VehicleId v, int capacity, Distance detour,
                         Distance dist_tr, Distance leg, VertexId ox,
                         VertexId oy) {
    KineticEdgeEntry e;
    e.vehicle = v;
    e.capacity = capacity;
    e.detour = detour;
    e.dist_tr = dist_tr;
    e.leg_dist = leg;
    e.ox = ox;
    e.oy = oy;
    return e;
  }

  RoadNetwork graph_;
  std::unique_ptr<GridIndex> grid_;
  std::unique_ptr<VehicleRegistry> registry_;
};

TEST_F(VehicleRegistryTest, EmptyVehicleLifecycle) {
  const CellId c0 = grid_->CellOfVertex(0);
  const CellId c8 = grid_->CellOfVertex(8);
  ASSERT_NE(c0, c8);

  registry_->AddEmptyVehicle(1, 0);
  registry_->AddEmptyVehicle(2, 0);
  EXPECT_EQ(registry_->EmptyVehicles(c0).size(), 2u);
  EXPECT_TRUE(registry_->EmptyVehicles(c8).empty());

  registry_->MoveEmptyVehicle(1, 8);
  EXPECT_EQ(registry_->EmptyVehicles(c0).size(), 1u);
  EXPECT_EQ(registry_->EmptyVehicles(c8).size(), 1u);
  EXPECT_EQ(registry_->EmptyVehicles(c8)[0], 1u);

  registry_->RemoveEmptyVehicle(2);
  EXPECT_TRUE(registry_->EmptyVehicles(c0).empty());
}

TEST_F(VehicleRegistryTest, MoveWithinSameCellIsNoop) {
  registry_->AddEmptyVehicle(5, 0);
  const CellId c0 = grid_->CellOfVertex(0);
  registry_->MoveEmptyVehicle(5, 0);
  EXPECT_EQ(registry_->EmptyVehicles(c0).size(), 1u);
}

TEST_F(VehicleRegistryTest, DoubleAddDies) {
  registry_->AddEmptyVehicle(1, 0);
  EXPECT_DEATH(registry_->AddEmptyVehicle(1, 4), "already registered");
}

TEST_F(VehicleRegistryTest, RemoveUnknownDies) {
  EXPECT_DEATH(registry_->RemoveEmptyVehicle(9), "not registered");
}

TEST_F(VehicleRegistryTest, EdgeRegistrationAndAggregates) {
  const CellId c0 = grid_->CellOfVertex(0);
  std::vector<std::pair<CellId, KineticEdgeEntry>> entries;
  // ox = 0 lies in c0; oy is outside, so the aggregates apply the
  // triangle-inequality corrections from the CellAggregates contract.
  entries.emplace_back(c0, Entry(3, 2, 100.0, 50.0, 80.0, 0, 1));
  entries.emplace_back(c0, Entry(3, 4, 60.0, 20.0, 120.0, 0, 2));
  registry_->SetVehicleEdges(3, entries);

  EXPECT_EQ(registry_->NonEmptyEntries(c0).size(), 2u);
  const CellAggregates& agg = registry_->Aggregates(c0);
  EXPECT_TRUE(agg.any);
  EXPECT_EQ(agg.max_capacity, 4);
  EXPECT_DOUBLE_EQ(agg.max_detour, 100.0);
  EXPECT_DOUBLE_EQ(agg.min_dist_tr, 20.0);       // ox in cell: unadjusted
  EXPECT_DOUBLE_EQ(agg.max_leg_dist, 2 * 120.0);  // one endpoint outside
}

TEST_F(VehicleRegistryTest, SetReplacesOldRegistrations) {
  const CellId c0 = grid_->CellOfVertex(0);
  const CellId c8 = grid_->CellOfVertex(8);
  std::vector<std::pair<CellId, KineticEdgeEntry>> first;
  first.emplace_back(c0, Entry(7, 2, 10.0, 5.0, 8.0, 0, 1));
  registry_->SetVehicleEdges(7, first);

  std::vector<std::pair<CellId, KineticEdgeEntry>> second;
  second.emplace_back(c8, Entry(7, 3, 20.0, 6.0, 9.0, 8, 7));
  registry_->SetVehicleEdges(7, second);

  EXPECT_TRUE(registry_->NonEmptyEntries(c0).empty());
  EXPECT_EQ(registry_->NonEmptyEntries(c8).size(), 1u);
  EXPECT_FALSE(registry_->Aggregates(c0).any);
}

TEST_F(VehicleRegistryTest, ClearRemovesEverywhere) {
  const CellId c0 = grid_->CellOfVertex(0);
  const CellId c8 = grid_->CellOfVertex(8);
  std::vector<std::pair<CellId, KineticEdgeEntry>> entries;
  entries.emplace_back(c0, Entry(2, 2, 10.0, 5.0, 8.0, 0, 8));
  entries.emplace_back(c8, Entry(2, 2, 10.0, 5.0, 8.0, 0, 8));
  registry_->SetVehicleEdges(2, entries);
  registry_->ClearVehicleEdges(2);
  EXPECT_TRUE(registry_->NonEmptyEntries(c0).empty());
  EXPECT_TRUE(registry_->NonEmptyEntries(c8).empty());
}

TEST_F(VehicleRegistryTest, AggregatesMixMultipleVehicles) {
  const CellId c0 = grid_->CellOfVertex(0);
  std::vector<std::pair<CellId, KineticEdgeEntry>> a;
  a.emplace_back(c0, Entry(1, 1, 30.0, 40.0, 10.0, 0, 1));
  registry_->SetVehicleEdges(1, a);
  std::vector<std::pair<CellId, KineticEdgeEntry>> b;
  b.emplace_back(c0, Entry(2, 5, 10.0, 90.0, 70.0, 1, 0));
  registry_->SetVehicleEdges(2, b);

  const CellAggregates& agg = registry_->Aggregates(c0);
  EXPECT_EQ(agg.max_capacity, 5);
  EXPECT_DOUBLE_EQ(agg.max_detour, 30.0);
  // Vehicle 2's edge enters c0 through oy: its dist_tr is corrected by the
  // leg length (90 - 70 = 20).
  EXPECT_DOUBLE_EQ(agg.min_dist_tr, 20.0);
  EXPECT_DOUBLE_EQ(agg.max_leg_dist, 2 * 70.0);

  registry_->ClearVehicleEdges(2);
  const CellAggregates& after = registry_->Aggregates(c0);
  EXPECT_EQ(after.max_capacity, 1);
  EXPECT_DOUBLE_EQ(after.min_dist_tr, 40.0);
}

TEST_F(VehicleRegistryTest, AdjustDistTrLowersAndClamps) {
  const CellId c0 = grid_->CellOfVertex(0);
  std::vector<std::pair<CellId, KineticEdgeEntry>> entries;
  entries.emplace_back(c0, Entry(4, 2, 10.0, 50.0, 8.0, 0, 1));
  entries.emplace_back(c0, Entry(4, 2, 10.0, 5.0, 8.0, 1, 2));
  registry_->SetVehicleEdges(4, entries);

  registry_->AdjustVehicleDistTr(4, 20.0);
  const auto after = registry_->NonEmptyEntries(c0);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_DOUBLE_EQ(after[0].dist_tr, 30.0);
  EXPECT_DOUBLE_EQ(after[1].dist_tr, 0.0);  // clamped
  // Entry 1 has ox = 1 outside c0, so the aggregate corrects its clamped
  // dist_tr by the leg length: 0 - 8 = -8.
  EXPECT_DOUBLE_EQ(registry_->Aggregates(c0).min_dist_tr, -8.0);
}

TEST_F(VehicleRegistryTest, AdjustUnknownVehicleIsNoop) {
  registry_->AdjustVehicleDistTr(42, 10.0);  // must not crash
}

TEST_F(VehicleRegistryTest, EmptyCellAggregates) {
  const CellAggregates& agg = registry_->Aggregates(grid_->CellOfVertex(4));
  EXPECT_FALSE(agg.any);
  EXPECT_EQ(agg.min_dist_tr, kInfDistance);
}

// --- Sharding & epoch snapshots (request-parallel engine). ---

TEST_F(VehicleRegistryTest, SnapshotIsIsolatedFromLaterWrites) {
  const CellId c0 = grid_->CellOfVertex(0);
  const CellId c8 = grid_->CellOfVertex(8);
  registry_->AddEmptyVehicle(1, 0);

  const RegistrySnapshot snap = registry_->TakeSnapshot();
  ASSERT_EQ(snap.EmptyVehicles(c0).size(), 1u);

  // Mutate the live registry every way the engine does; the open snapshot
  // must keep showing the captured view (COW clones the touched shards).
  registry_->AddEmptyVehicle(2, 0);
  registry_->MoveEmptyVehicle(1, 8);
  std::vector<std::pair<CellId, KineticEdgeEntry>> entries;
  entries.emplace_back(c0, Entry(3, 2, 100.0, 50.0, 80.0, 0, 1));
  registry_->SetVehicleEdges(3, entries);

  ASSERT_EQ(snap.EmptyVehicles(c0).size(), 1u);
  EXPECT_EQ(snap.EmptyVehicles(c0)[0], 1u);
  EXPECT_TRUE(snap.EmptyVehicles(c8).empty());
  EXPECT_TRUE(snap.NonEmptyEntries(c0).empty());
  // The live registry moved on.
  ASSERT_EQ(registry_->EmptyVehicles(c0).size(), 1u);
  EXPECT_EQ(registry_->EmptyVehicles(c0)[0], 2u);
  EXPECT_EQ(registry_->EmptyVehicles(c8).size(), 1u);
  EXPECT_EQ(registry_->NonEmptyEntries(c0).size(), 1u);
}

TEST_F(VehicleRegistryTest, SnapshotAggregatesAreFrozenAndClean) {
  const CellId c0 = grid_->CellOfVertex(0);
  std::vector<std::pair<CellId, KineticEdgeEntry>> entries;
  entries.emplace_back(c0, Entry(3, 4, 60.0, 20.0, 120.0, 0, 2));
  registry_->SetVehicleEdges(3, entries);  // c0 is now dirty.

  // TakeSnapshot rebuilds dirty aggregates first; snapshot reads are pure
  // (a dirty cell in a snapshot would be a contract violation).
  const RegistrySnapshot snap = registry_->TakeSnapshot();
  const CellAggregates before = snap.Aggregates(c0);
  EXPECT_TRUE(before.any);
  EXPECT_EQ(before.max_capacity, 4);

  registry_->ClearVehicleEdges(3);
  EXPECT_FALSE(registry_->Aggregates(c0).any);
  EXPECT_EQ(snap.Aggregates(c0), before);
  EXPECT_EQ(snap.NonEmptyEntries(c0).size(), 1u);
}

TEST_F(VehicleRegistryTest, EpochsBumpOnlyOnTouchedShards) {
  const CellId c0 = grid_->CellOfVertex(0);
  const CellId c8 = grid_->CellOfVertex(8);
  const std::uint64_t before = registry_->GlobalEpoch();
  registry_->AddEmptyVehicle(1, 0);
  EXPECT_GT(registry_->GlobalEpoch(), before);

  const int shard0 = registry_->ShardOfCell(c0);
  const int shard8 = registry_->ShardOfCell(c8);
  const std::uint64_t epoch0 = registry_->ShardEpoch(shard0);
  const RegistrySnapshot snap = registry_->TakeSnapshot();
  // Capture-time epochs, and capture costs no epoch bump of its own.
  EXPECT_EQ(snap.global_epoch(), registry_->GlobalEpoch());
  EXPECT_EQ(snap.ShardEpoch(shard0), epoch0);
  EXPECT_EQ(registry_->TakeSnapshot().global_epoch(), snap.global_epoch());

  registry_->MoveEmptyVehicle(1, 8);
  EXPECT_GT(registry_->ShardEpoch(shard0), epoch0);
  EXPECT_GT(registry_->GlobalEpoch(), snap.global_epoch());
  // The snapshot's epochs are frozen; untouched shards keep theirs.
  EXPECT_EQ(snap.ShardEpoch(shard0), epoch0);
  for (int s = 0; s < registry_->num_shards(); ++s) {
    if (s == shard0 || s == shard8) continue;
    EXPECT_EQ(registry_->ShardEpoch(s), snap.ShardEpoch(s)) << "shard " << s;
  }
}

TEST_F(VehicleRegistryTest, MemoryBytesReflectsContents) {
  const std::size_t before = registry_->MemoryBytes();
  std::vector<std::pair<CellId, KineticEdgeEntry>> entries;
  for (int i = 0; i < 50; ++i) {
    entries.emplace_back(grid_->CellOfVertex(0),
                         Entry(9, 2, 10.0, 5.0, 8.0, 0, 1));
  }
  registry_->SetVehicleEdges(9, entries);
  EXPECT_GT(registry_->MemoryBytes(), before);
}

}  // namespace
}  // namespace ptar
