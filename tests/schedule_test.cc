// Tests for the Schedule value type.

#include "kinetic/schedule.h"

#include <gtest/gtest.h>

namespace ptar {
namespace {

Schedule MakeSchedule() {
  Schedule s;
  s.stops = {Stop{StopType::kPickup, 1, 10}, Stop{StopType::kDropoff, 1, 20},
             Stop{StopType::kPickup, 2, 30}};
  s.legs = {100.0, 250.0, 50.0};
  return s;
}

TEST(ScheduleTest, TotalSumsLegs) {
  EXPECT_DOUBLE_EQ(MakeSchedule().total(), 400.0);
  EXPECT_DOUBLE_EQ(Schedule{}.total(), 0.0);
}

TEST(ScheduleTest, PrefixDistanceIsInclusive) {
  const Schedule s = MakeSchedule();
  EXPECT_DOUBLE_EQ(s.PrefixDistance(0), 100.0);
  EXPECT_DOUBLE_EQ(s.PrefixDistance(1), 350.0);
  EXPECT_DOUBLE_EQ(s.PrefixDistance(2), 400.0);
}

TEST(ScheduleTest, SameStopsIgnoresLegs) {
  Schedule a = MakeSchedule();
  Schedule b = MakeSchedule();
  b.legs[0] = 999.0;
  EXPECT_TRUE(a.SameStops(b));
  b.stops[0].location = 11;
  EXPECT_FALSE(a.SameStops(b));
}

TEST(ScheduleTest, StopEquality) {
  const Stop a{StopType::kPickup, 1, 10};
  EXPECT_TRUE((a == Stop{StopType::kPickup, 1, 10}));
  EXPECT_FALSE((a == Stop{StopType::kDropoff, 1, 10}));
  EXPECT_FALSE((a == Stop{StopType::kPickup, 2, 10}));
  EXPECT_FALSE((a == Stop{StopType::kPickup, 1, 11}));
}

TEST(ScheduleTest, DifferentLengthStopsDiffer) {
  Schedule a = MakeSchedule();
  Schedule b = MakeSchedule();
  b.stops.pop_back();
  b.legs.pop_back();
  EXPECT_FALSE(a.SameStops(b));
}

}  // namespace
}  // namespace ptar
