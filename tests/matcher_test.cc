// Matching-algorithm tests. The central property: with 100 % of grid cells
// verified, SSA and DSA return exactly the baseline's non-dominated option
// set on every request of a dynamic scenario — the pruning lemmas never
// change results, only work.

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace ptar {
namespace {

struct Scenario {
  RoadNetwork graph;
  std::unique_ptr<GridIndex> grid;
  std::vector<Request> requests;
};

Scenario MakeScenario(std::uint64_t seed, int rows, int cols,
                      std::size_t num_requests, double cell_size,
                      double epsilon = 0.5, double waiting_minutes = 3.0) {
  Scenario sc;
  GridCityOptions copts;
  copts.rows = rows;
  copts.cols = cols;
  copts.seed = seed;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  sc.graph = std::move(g).value();
  auto grid = GridIndex::Build(&sc.graph, {.cell_size_meters = cell_size});
  PTAR_CHECK(grid.ok());
  sc.grid = std::make_unique<GridIndex>(std::move(grid).value());
  WorkloadOptions wopts;
  wopts.num_requests = num_requests;
  wopts.duration_seconds = 900.0;
  wopts.epsilon = epsilon;
  wopts.waiting_minutes = waiting_minutes;
  wopts.seed = seed + 1;
  auto reqs = GenerateWorkload(sc.graph, wopts);
  PTAR_CHECK(reqs.ok());
  sc.requests = std::move(reqs).value();
  return sc;
}

std::string Describe(const Option& o) {
  return "vehicle " + std::to_string(o.vehicle) + " pickup " +
         std::to_string(o.pickup_dist) + " price " + std::to_string(o.price);
}

class MatcherEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MatcherEquivalenceTest, FullSearchMatchesBaselineOnEveryRequest) {
  Scenario sc = MakeScenario(GetParam(), 12, 12, 50, 300.0);
  EngineOptions eopts;
  eopts.num_vehicles = 25;
  eopts.seed = GetParam() * 31 + 7;
  Engine engine(&sc.graph, sc.grid.get(), eopts);

  BaselineMatcher ba;
  SsaMatcher ssa(1.0);
  DsaMatcher dsa(1.0);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};

  std::size_t nonempty_results = 0;
  std::size_t multi_option_results = 0;
  for (const Request& request : sc.requests) {
    const Engine::RequestOutcome outcome =
        engine.ProcessRequest(request, matchers);
    const auto& exact = outcome.results[0].options;
    if (!exact.empty()) ++nonempty_results;
    if (exact.size() > 1) ++multi_option_results;
    for (std::size_t m = 1; m < outcome.results.size(); ++m) {
      const auto& approx = outcome.results[m].options;
      ASSERT_EQ(approx.size(), exact.size())
          << "request " << request.id << " matcher " << m;
      for (std::size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ(approx[i].vehicle, exact[i].vehicle)
            << "request " << request.id << ": " << Describe(approx[i])
            << " vs " << Describe(exact[i]);
        EXPECT_NEAR(approx[i].pickup_dist, exact[i].pickup_dist, 1e-6);
        EXPECT_NEAR(approx[i].price, exact[i].price, 1e-6);
      }
    }
    // Pruning can only reduce work, never add it.
    EXPECT_LE(outcome.results[1].stats.compdists,
              outcome.results[0].stats.compdists);
    EXPECT_LE(outcome.results[1].stats.verified_vehicles,
              outcome.results[0].stats.verified_vehicles);
  }
  // The scenario must be non-trivial.
  EXPECT_GT(nonempty_results, sc.requests.size() / 2);
  EXPECT_GT(multi_option_results, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(MatcherTest, BaselineVerifiesWholeFleet) {
  Scenario sc = MakeScenario(9, 10, 10, 10, 250.0);
  EngineOptions eopts;
  eopts.num_vehicles = 15;
  Engine engine(&sc.graph, sc.grid.get(), eopts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  for (const Request& request : sc.requests) {
    const auto outcome = engine.ProcessRequest(request, matchers);
    EXPECT_EQ(outcome.results[0].stats.verified_vehicles, 15u);
  }
}

TEST(MatcherTest, PartialSearchNeverInventsOptions) {
  // At partial coverage, every option a partial search returns must be an
  // exactly achievable (vehicle, pickup, price) triple — i.e. present in
  // the baseline's *pre-skyline* candidate space. We verify the weaker but
  // still strong form: each returned option is not strictly better than
  // the exact skyline (nothing dominates an exact-skyline member).
  Scenario sc = MakeScenario(11, 12, 12, 40, 300.0);
  EngineOptions eopts;
  eopts.num_vehicles = 25;
  Engine engine(&sc.graph, sc.grid.get(), eopts);
  BaselineMatcher ba;
  SsaMatcher ssa(0.16);
  DsaMatcher dsa(0.16);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  for (const Request& request : sc.requests) {
    const auto outcome = engine.ProcessRequest(request, matchers);
    for (std::size_t m = 1; m < outcome.results.size(); ++m) {
      for (const Option& o : outcome.results[m].options) {
        for (const Option& e : outcome.results[0].options) {
          EXPECT_FALSE(Dominates(o, e))
              << Describe(o) << " dominates exact " << Describe(e);
        }
      }
    }
  }
}

TEST(MatcherTest, DeterministicAcrossIdenticalRuns) {
  for (int trial = 0; trial < 2; ++trial) {
    static std::vector<double> first_prices;
    Scenario sc = MakeScenario(21, 10, 10, 20, 250.0);
    EngineOptions eopts;
    eopts.num_vehicles = 12;
    eopts.seed = 5;
    Engine engine(&sc.graph, sc.grid.get(), eopts);
    BaselineMatcher ba;
    std::vector<Matcher*> matchers = {&ba};
    std::vector<double> prices;
    for (const Request& request : sc.requests) {
      const auto outcome = engine.ProcessRequest(request, matchers);
      for (const Option& o : outcome.results[0].options) {
        prices.push_back(o.price);
      }
    }
    if (trial == 0) {
      first_prices = prices;
    } else {
      EXPECT_EQ(prices, first_prices);
    }
  }
}

TEST(MatcherTest, NamesAreStable) {
  EXPECT_EQ(BaselineMatcher().name(), "BA");
  EXPECT_EQ(SsaMatcher().name(), "SSA");
  EXPECT_EQ(DsaMatcher().name(), "DSA");
  EXPECT_DOUBLE_EQ(SsaMatcher().fraction(), 0.16);
  EXPECT_DOUBLE_EQ(DsaMatcher(0.5).fraction(), 0.5);
}

}  // namespace
}  // namespace ptar
