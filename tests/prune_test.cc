// GeoPrune property tests: ellipse-containment axioms, a brute-force fuzz
// of the fast-reject containment predicate, calibration soundness of the
// Euclidean lower bound against exact shortest paths, candidate-enumeration
// parity between the matchers and the grid-scan ladder, and end-to-end
// prune-soundness (pruned and unpruned skylines must be identical — and a
// deliberately shrunk ellipse must diverge and be attributed to the prune
// stage). Registered under the compound `prune-tsan` CTest label.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "check/differential.h"
#include "common/random.h"
#include "graph/generators.h"
#include "grid/grid_index.h"
#include "prune/ellipse.h"
#include "prune/ellipse_prefilter.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ellipse_matcher.h"
#include "rideshare/matcher_internal.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

using prune::Contains;
using prune::Ellipse;
using prune::EllipsePrefilter;
using prune::EuclideanDistance;
using prune::FocalDistance;
using prune::FocalSum;
using prune::IsEmpty;
using prune::kContainmentTolerance;

constexpr double kTol = kContainmentTolerance;

// ---------------------------------------------------------------------------
// Containment axioms (pure geometry).

TEST(EllipseTest, FociAreSymmetric) {
  const Ellipse e{{10.0, 20.0}, {110.0, -40.0}, 150.0};
  const Ellipse swapped{e.f2, e.f1, e.sum_bound};
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const Coord p{rng.UniformReal(-200.0, 300.0),
                  rng.UniformReal(-200.0, 300.0)};
    EXPECT_EQ(Contains(e, p), Contains(swapped, p));
    EXPECT_DOUBLE_EQ(FocalSum(e, p), FocalSum(swapped, p));
  }
}

TEST(EllipseTest, ContainmentIsMonotoneInSlack) {
  // Growing sum_bound never evicts a point: the feasible set is nested in
  // the detour allowance, which is what lets the matcher check the
  // tightest bound first.
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    Ellipse e{{rng.UniformReal(0.0, 100.0), rng.UniformReal(0.0, 100.0)},
              {rng.UniformReal(0.0, 100.0), rng.UniformReal(0.0, 100.0)},
              rng.UniformReal(0.0, 300.0)};
    const Coord p{rng.UniformReal(-100.0, 200.0),
                  rng.UniformReal(-100.0, 200.0)};
    if (!Contains(e, p)) continue;
    e.sum_bound += rng.UniformReal(0.0, 100.0);
    EXPECT_TRUE(Contains(e, p));
  }
}

TEST(EllipseTest, BoundaryPointsAreInsideWithinTolerance) {
  // Foci (0,0) and (100,0), bound 140: the major axis crosses x = 120
  // exactly on the boundary (focal sum 120 + 20 = 140).
  const Ellipse e{{0.0, 0.0}, {100.0, 0.0}, 140.0};
  EXPECT_TRUE(Contains(e, Coord{120.0, 0.0}));
  EXPECT_TRUE(Contains(e, Coord{-20.0, 0.0}));
  // Both foci are always inside a non-empty ellipse.
  EXPECT_TRUE(Contains(e, e.f1));
  EXPECT_TRUE(Contains(e, e.f2));
  // Beyond the tolerance cushion the point is out.
  EXPECT_FALSE(Contains(e, Coord{120.001, 0.0}));
}

TEST(EllipseTest, FuzzContainsAgreesWithBruteForceFocalSum) {
  // The fast-reject in Contains (bail on |p-f1| alone) must be invisible:
  // 10k random (ellipse, point) pairs against the unshortcut definition.
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const Ellipse e{{rng.UniformReal(-500.0, 500.0),
                     rng.UniformReal(-500.0, 500.0)},
                    {rng.UniformReal(-500.0, 500.0),
                     rng.UniformReal(-500.0, 500.0)},
                    rng.UniformReal(0.0, 1500.0)};
    const Coord p{rng.UniformReal(-1000.0, 1000.0),
                  rng.UniformReal(-1000.0, 1000.0)};
    const bool brute = FocalSum(e, p) <= e.sum_bound + kTol;
    EXPECT_EQ(Contains(e, p), brute)
        << "focal sum " << FocalSum(e, p) << " vs bound " << e.sum_bound;
  }
}

TEST(EllipseTest, CoincidentFociGiveDisc) {
  // src == dst degenerates to a disc of radius sum_bound / 2.
  const Ellipse disc{{50.0, 50.0}, {50.0, 50.0}, 10.0};
  EXPECT_FALSE(IsEmpty(disc));
  EXPECT_TRUE(Contains(disc, Coord{50.0, 54.9}));
  EXPECT_TRUE(Contains(disc, Coord{55.0, 50.0}));  // boundary
  EXPECT_FALSE(Contains(disc, Coord{50.0, 55.1}));
}

TEST(EllipseTest, ZeroSlackGivesFocalSegment) {
  // sum_bound == |f1 - f2|: exactly the segment between the foci survives.
  const Ellipse seg{{0.0, 0.0}, {100.0, 0.0}, 100.0};
  EXPECT_FALSE(IsEmpty(seg));
  EXPECT_TRUE(Contains(seg, Coord{0.0, 0.0}));
  EXPECT_TRUE(Contains(seg, Coord{50.0, 0.0}));
  EXPECT_TRUE(Contains(seg, Coord{100.0, 0.0}));
  EXPECT_FALSE(Contains(seg, Coord{50.0, 1.0}));
  EXPECT_FALSE(Contains(seg, Coord{-1.0, 0.0}));
}

TEST(EllipseTest, SubFocalBoundIsEmpty) {
  const Ellipse empty{{0.0, 0.0}, {100.0, 0.0}, 99.0};
  EXPECT_TRUE(IsEmpty(empty));
  // No point can have a focal sum below the focal distance.
  EXPECT_FALSE(Contains(empty, Coord{50.0, 0.0}));
  EXPECT_FALSE(Contains(empty, empty.f1));
}

// ---------------------------------------------------------------------------
// Calibration soundness: alpha * euc must never exceed the true network
// distance, on jittered grid cities and on random connected graphs.

void ExpectLowerBoundSound(const RoadNetwork& g) {
  const EllipsePrefilter filter = EllipsePrefilter::Build(g);
  const std::vector<std::vector<Distance>> dist = testing::FloydWarshall(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (dist[u][v] == kInfDistance) continue;  // trivially consistent
      ASSERT_LE(filter.LowerBound(u, v), dist[u][v] + 1e-9)
          << "u=" << u << " v=" << v << " alpha=" << filter.alpha();
    }
  }
}

TEST(EllipsePrefilterTest, LowerBoundNeverExceedsNetworkDistanceOnGridCity) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    GridCityOptions copts;
    copts.rows = 6;
    copts.cols = 6;
    copts.seed = seed;
    auto g = MakeGridCity(copts);
    ASSERT_TRUE(g.ok());
    ExpectLowerBoundSound(g.value());
  }
}

TEST(EllipsePrefilterTest, LowerBoundNeverExceedsNetworkDistanceOnRandom) {
  // Random weights are uncorrelated with the embedding, so alpha has to do
  // all the work here.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ExpectLowerBoundSound(testing::MakeRandomConnectedGraph(
        40, 30, testing::DeriveSeed(seed, 1)));
  }
}

TEST(EllipsePrefilterTest, FeasibleEllipseMatchesDetourLowerBound) {
  // Containment of position(via) in FeasibleEllipse(a, b, B) must be the
  // same predicate as DetourLowerBound(a, via, b) <= B — the matcher uses
  // the latter form, the ablation suite the former.
  const RoadNetwork g = testing::MakeRandomConnectedGraph(30, 20, 99);
  const EllipsePrefilter filter = EllipsePrefilter::Build(g);
  ASSERT_GT(filter.alpha(), 0.0);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<VertexId>(rng.UniformIndex(g.num_vertices()));
    const auto b = static_cast<VertexId>(rng.UniformIndex(g.num_vertices()));
    const auto via =
        static_cast<VertexId>(rng.UniformIndex(g.num_vertices()));
    const double budget = rng.UniformReal(0.0, 2000.0);
    const Ellipse e = filter.FeasibleEllipse(a, b, budget);
    // The ellipse lives in raw coordinate space with the budget divided by
    // the calibration scale; tolerance scales the same way.
    const bool by_ellipse = Contains(e, g.position(via), kTol);
    const bool by_bound =
        filter.DetourLowerBound(a, via, b) <=
        budget + kTol * (filter.alpha() / filter.shrink_factor());
    EXPECT_EQ(by_ellipse, by_bound) << "a=" << a << " b=" << b
                                    << " via=" << via;
  }
}

TEST(EllipsePrefilterTest, ShrinkFactorInflatesTheBound) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(20, 10, 7);
  EllipsePrefilter::Options shrunk;
  shrunk.shrink_factor = 0.5;
  const EllipsePrefilter sound = EllipsePrefilter::Build(g);
  const EllipsePrefilter faulty = EllipsePrefilter::Build(g, shrunk);
  EXPECT_DOUBLE_EQ(sound.alpha(), faulty.alpha());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_DOUBLE_EQ(faulty.LowerBound(0, u), 2.0 * sound.LowerBound(0, u));
  }
}

TEST(EllipsePrefilterTest, DegenerateGraphDisablesFilterSoundly) {
  // Every vertex at the same coordinate: no edge has a positive chord, so
  // calibration is impossible and the filter must fall back to the trivial
  // lower bound 0 (never pruning) instead of crashing or over-pruning.
  RoadNetwork::Builder b;
  b.AddVertex(Coord{5.0, 5.0});
  b.AddVertex(Coord{5.0, 5.0});
  b.AddEdge(0, 1, 42.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  const EllipsePrefilter filter = EllipsePrefilter::Build(g.value());
  EXPECT_EQ(filter.alpha(), 0.0);
  EXPECT_EQ(filter.LowerBound(0, 1), 0.0);
  const Ellipse e = filter.FeasibleEllipse(0, 1, 10.0);
  EXPECT_FALSE(IsEmpty(e));
  EXPECT_TRUE(Contains(e, Coord{1e9, -1e9}));  // all-containing
}

// ---------------------------------------------------------------------------
// Candidate-enumeration parity: the matchers' empty-vehicle base set and
// the grid-scan ladder must come from the same helper, so the helper must
// agree exactly with the spelled-out capacity filter on live fleet state.

struct Scenario {
  RoadNetwork graph;
  std::unique_ptr<GridIndex> grid;
  std::vector<Request> requests;
};

Scenario MakeScenario(std::uint64_t seed) {
  Scenario sc;
  GridCityOptions copts;
  copts.rows = 8;
  copts.cols = 8;
  copts.seed = seed;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  sc.graph = std::move(g).value();
  auto grid = GridIndex::Build(&sc.graph, {.cell_size_meters = 300.0});
  PTAR_CHECK(grid.ok());
  sc.grid = std::make_unique<GridIndex>(std::move(grid).value());
  WorkloadOptions wopts;
  wopts.num_requests = 15;
  wopts.duration_seconds = 600.0;
  wopts.epsilon = 0.5;
  wopts.waiting_minutes = 3.0;
  wopts.seed = testing::DeriveSeed(seed, 2);
  auto reqs = GenerateWorkload(sc.graph, wopts);
  PTAR_CHECK(reqs.ok());
  sc.requests = std::move(reqs).value();
  return sc;
}

TEST(CandidateParityTest, HelperMatchesManualCapacityFilterAcross20Seeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Scenario sc = MakeScenario(seed);
    EngineOptions eopts;
    eopts.num_vehicles = 12;
    eopts.seed = testing::DeriveSeed(seed, 3);
    Engine engine(&sc.graph, sc.grid.get(), eopts);
    SsaMatcher ssa(1.0);
    std::vector<Matcher*> matchers = {&ssa};

    for (const Request& request : sc.requests) {
      MatchContext ctx;
      ctx.grid = sc.grid.get();
      ctx.registry = &engine.registry();
      ctx.fleet = &engine.fleet();
      internal::RequestEnv env;
      env.request = &request;

      std::vector<char> emitted(engine.fleet().size(), 0);
      if (!engine.fleet().empty()) emitted[0] = 1;  // exercise dedup skip
      for (const CellId cell : sc.grid->active_cells()) {
        std::vector<VehicleId> manual;
        std::size_t manual_skipped = 0;
        for (const VehicleId v : CtxEmptyVehicles(ctx, cell)) {
          if (emitted[v]) continue;
          if ((*ctx.fleet)[v].capacity() < request.riders) {
            ++manual_skipped;
            continue;
          }
          manual.push_back(v);
        }
        std::vector<VehicleId> helper;
        const std::size_t helper_skipped = internal::AppendBoardableEmpties(
            cell, env, ctx, emitted, &helper);
        ASSERT_EQ(helper, manual) << "seed " << seed << " cell " << cell;
        ASSERT_EQ(helper_skipped, manual_skipped);

        // Grid-scan ladder path: empty `emitted` span means no dedup.
        std::vector<VehicleId> no_dedup;
        internal::AppendBoardableEmpties(cell, env, ctx, {}, &no_dedup);
        std::vector<VehicleId> manual_all;
        for (const VehicleId v : CtxEmptyVehicles(ctx, cell)) {
          if ((*ctx.fleet)[v].capacity() >= request.riders) {
            manual_all.push_back(v);
          }
        }
        ASSERT_EQ(no_dedup, manual_all);
      }
      engine.ProcessRequest(request, matchers);  // evolve fleet state
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end prune soundness via the differential harness.

check::MatcherFactory PrunedFactory(double shrink_factor) {
  return [shrink_factor] {
    EllipsePrefilter::Options popts;
    popts.shrink_factor = shrink_factor;
    std::vector<std::unique_ptr<Matcher>> matchers;
    matchers.push_back(std::make_unique<BaselineMatcher>());
    matchers.push_back(std::make_unique<PrunedMatcher>(
        std::make_unique<BaselineMatcher>(), popts));
    matchers.push_back(std::make_unique<PrunedMatcher>(
        std::make_unique<SsaMatcher>(1.0), popts));
    matchers.push_back(std::make_unique<PrunedMatcher>(
        std::make_unique<DsaMatcher>(1.0), popts));
    matchers.push_back(std::make_unique<EllipseMatcher>(popts));
    return matchers;
  };
}

TEST(PruneSoundnessTest, PrunedSkylinesMatchUnprunedReference) {
  const check::DifferentialConfig config;
  const check::MatcherFactory factory = PrunedFactory(1.0);
  std::uint64_t ellipse_checked = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const check::ScenarioSpec spec = check::MakeRandomSpec(seed);
    auto outcome = check::RunDifferential(spec, config, factory);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    for (const check::Divergence& d : outcome.value().divergences) {
      ADD_FAILURE() << "seed " << seed << ": " << d.Describe();
    }
    for (const check::MatcherSummary& m : outcome.value().matchers) {
      ellipse_checked += m.totals.ellipse_checked;
    }
  }
  // The sweep only means something if the prefilter actually ran.
  EXPECT_GT(ellipse_checked, 0u);
}

TEST(PruneSoundnessTest, ShrunkEllipseIsCaughtAndAttributed) {
  // The ShrinkEllipse fault makes the bound inflate past the true network
  // distance, so options go missing — and the divergence must carry the
  // ellipse_pruned counter that pins the loss on the prune stage.
  const check::DifferentialConfig config;
  const check::MatcherFactory factory = PrunedFactory(0.5);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const check::ScenarioSpec spec = check::MakeRandomSpec(seed);
    auto outcome = check::RunDifferential(spec, config, factory);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome.value().ok()) continue;
    const check::Divergence& first = outcome.value().divergences.front();
    EXPECT_EQ(first.type, check::DivergenceType::kMissingOption)
        << first.Describe();
    EXPECT_GT(first.ellipse_pruned, 0u) << first.Describe();
    return;  // caught — done
  }
  FAIL() << "ShrinkEllipse(0.5) produced no divergence in 20 seeds";
}

}  // namespace
}  // namespace ptar
