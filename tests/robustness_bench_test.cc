// Deadline-enforcement bench (acceptance criterion for graceful
// degradation): with every matching-oracle computation slowed ~10x, the
// engine must degrade and shed instead of blowing its per-request deadline
// — p99 request latency stays under 2x the configured deadline. Emits
// BENCH_robustness.json next to the test binary for trend tracking.
//
// This test measures wall-clock time, so it carries the plain `robustness`
// label (it is NOT in the tsan label set: sanitizer slowdown would measure
// the sanitizer, not the engine).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "check/fault_injection.h"
#include "common/timer.h"
#include "rideshare/ssa_matcher.h"
#include "scenario_builder.h"
#include "sim/engine.h"

namespace ptar {
namespace {

using testing::GridWorld;
using testing::MakeGridWorld;
using testing::MakeRequestStream;

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t index = static_cast<std::size_t>(
      std::min(sorted.size() - 1.0, p / 100.0 * sorted.size()));
  return sorted[index];
}

TEST(RobustnessBenchTest, DeadlineHeldUnderSlowOracleFaults) {
  // A 12x12 city with an unfaulted engine answers a request in well under a
  // millisecond (~30 oracle computations); slow_us=2000 per computation
  // makes matching one request cost ~60 ms if run to completion — 3x over
  // the 20 ms deadline. The deadline is armed into the per-slot work
  // budget, so matchers stop cooperatively, and repeated overruns walk the
  // overload ladder.
  constexpr double kDeadlineMs = 20.0;
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 60, .seed = 11});

  EngineOptions eopts;
  eopts.num_vehicles = 30;
  eopts.seed = 5;
  eopts.overload.deadline_ms = kDeadlineMs;
  eopts.audit_after_commit = false;
  // Bound per-vehicle fan-out: the bench measures deadline adherence, and
  // the engine's tree maintenance between requests is not deadline-armed,
  // so an unbounded tree on an adversarial seed would dominate p99.
  eopts.tree_max_branches = 64;
  Engine engine(world.graph.get(), world.grid.get(), eopts);

  check::FaultPlan plan;
  plan.slow_micros = 2000.0;
  engine.SetFaultHookFactory(
      [plan](std::size_t) { return check::MakeFaultHook(plan); });

  SsaMatcher ssa(0.16);
  std::vector<Matcher*> matchers = {&ssa};

  std::vector<double> latencies_ms;
  RunStats stats;
  for (const Request& request : requests) {
    Timer timer;
    const Engine::RequestOutcome outcome =
        engine.ProcessRequest(request, matchers);
    latencies_ms.push_back(timer.ElapsedMicros() / 1e3);
    stats.ladder_requests[static_cast<int>(outcome.degrade_level)]++;
    if (outcome.shed) ++stats.shed_requests;
    if (!outcome.shed && !outcome.results[0].complete) {
      ++stats.partial_skylines;
    }
  }

  const double p50 = Percentile(latencies_ms, 50);
  const double p99 = Percentile(latencies_ms, 99);
  const double worst =
      *std::max_element(latencies_ms.begin(), latencies_ms.end());

  std::FILE* out = std::fopen("BENCH_robustness.json", "w");
  ASSERT_NE(out, nullptr);
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"deadline_under_slow_oracle\",\n"
      "  \"deadline_ms\": %.1f,\n"
      "  \"slow_us_per_compdist\": %.1f,\n"
      "  \"requests\": %zu,\n"
      "  \"p50_ms\": %.3f,\n"
      "  \"p99_ms\": %.3f,\n"
      "  \"max_ms\": %.3f,\n"
      "  \"shed_requests\": %llu,\n"
      "  \"partial_skylines\": %llu,\n"
      "  \"ladder_requests\": [%llu, %llu, %llu, %llu]\n"
      "}\n",
      kDeadlineMs, plan.slow_micros, requests.size(), p50, p99, worst,
      static_cast<unsigned long long>(stats.shed_requests),
      static_cast<unsigned long long>(stats.partial_skylines),
      static_cast<unsigned long long>(stats.ladder_requests[0]),
      static_cast<unsigned long long>(stats.ladder_requests[1]),
      static_cast<unsigned long long>(stats.ladder_requests[2]),
      static_cast<unsigned long long>(stats.ladder_requests[3]));
  std::fclose(out);

  // The acceptance criterion: degrade/shed instead of overrunning. The
  // budget is checked at safe points (between vehicles), so one in-flight
  // verification may overshoot the deadline slightly — 2x bounds that.
  EXPECT_LE(p99, 2.0 * kDeadlineMs)
      << "p50=" << p50 << " p99=" << p99 << " max=" << worst;
  // Degradation actually engaged: the ladder left level 0 or results were
  // truncated by the deadline-armed budget.
  const std::uint64_t degraded = stats.ladder_requests[1] +
                                 stats.ladder_requests[2] +
                                 stats.ladder_requests[3];
  EXPECT_GT(degraded + stats.partial_skylines, 0u)
      << "slow faults never stressed the engine: bench is vacuous";
}

}  // namespace
}  // namespace ptar
