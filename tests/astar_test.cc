// Tests for the grid-guided A* engine: exactness against Dijkstra (the
// heuristic is admissible, so results must match bit-for-bit shapes) and
// the goal-directed work saving.

#include "grid/astar.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

TEST(AStarTest, SameVertexIsZero) {
  const RoadNetwork g = testing::MakeSmallGrid();
  auto grid = GridIndex::Build(&g, {.cell_size_meters = 100.0});
  ASSERT_TRUE(grid.ok());
  AStarEngine astar(&g, &*grid);
  EXPECT_DOUBLE_EQ(astar.PointToPoint(4, 4), 0.0);
  EXPECT_EQ(astar.LastPath(), std::vector<VertexId>{4});
}

TEST(AStarTest, UnreachableIsInfinite) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0, 0});
  b.AddVertex(Coord{10, 0});
  b.AddVertex(Coord{500, 0});
  b.AddEdge(0, 1, 10.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  auto grid = GridIndex::Build(&*g, {.cell_size_meters = 100.0});
  ASSERT_TRUE(grid.ok());
  AStarEngine astar(&*g, &*grid);
  EXPECT_EQ(astar.PointToPoint(0, 2), kInfDistance);
  EXPECT_TRUE(astar.LastPath().empty());
}

TEST(AStarTest, PathIsConsistentWithDistance) {
  GridCityOptions copts;
  copts.rows = 12;
  copts.cols = 12;
  copts.seed = 31;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  auto grid = GridIndex::Build(&*g, {.cell_size_meters = 250.0});
  ASSERT_TRUE(grid.ok());
  AStarEngine astar(&*g, &*grid);
  const Distance d = astar.PointToPoint(0, 100);
  const std::vector<VertexId> path = astar.LastPath();
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 100u);
  Distance sum = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Distance best = kInfDistance;
    for (const Arc& a : g->OutArcs(path[i])) {
      if (a.head == path[i + 1]) best = std::min(best, a.weight);
    }
    ASSERT_NE(best, kInfDistance);
    sum += best;
  }
  EXPECT_NEAR(sum, d, 1e-9);
}

class AStarPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(AStarPropertyTest, MatchesDijkstraEverywhere) {
  const auto [seed, cell_size] = GetParam();
  const RoadNetwork g = testing::MakeRandomConnectedGraph(80, 120, seed);
  auto grid = GridIndex::Build(&g, {.cell_size_meters = cell_size});
  ASSERT_TRUE(grid.ok());
  AStarEngine astar(&g, &*grid);
  DijkstraEngine dijkstra(&g);
  for (VertexId s = 0; s < g.num_vertices(); s += 7) {
    for (VertexId t = 1; t < g.num_vertices(); t += 5) {
      EXPECT_NEAR(astar.PointToPoint(s, t), dijkstra.PointToPoint(s, t),
                  1e-9)
          << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCells, AStarPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(150.0, 400.0)));

TEST(AStarTest, ExactOverQuadtreeIndexToo) {
  // The heuristic only needs admissibility, which holds for any partition;
  // verify exactness when A* is driven by the adaptive index.
  const RoadNetwork g = testing::MakeRandomConnectedGraph(70, 100, 9);
  auto grid = GridIndex::BuildAdaptive(
      &g, {.max_vertices_per_cell = 12, .min_cell_size_meters = 5.0});
  ASSERT_TRUE(grid.ok());
  AStarEngine astar(&g, &*grid);
  DijkstraEngine dijkstra(&g);
  for (VertexId s = 0; s < g.num_vertices(); s += 6) {
    for (VertexId t = 2; t < g.num_vertices(); t += 7) {
      EXPECT_NEAR(astar.PointToPoint(s, t), dijkstra.PointToPoint(s, t),
                  1e-9);
    }
  }
}

TEST(AStarTest, RejectsMismatchedGraph) {
  const RoadNetwork a = testing::MakeSmallGrid();
  const RoadNetwork b = testing::MakeSmallGrid();
  auto grid = GridIndex::Build(&a, {.cell_size_meters = 100.0});
  ASSERT_TRUE(grid.ok());
  EXPECT_DEATH(AStarEngine(&b, &*grid), "different graph");
}

TEST(AStarTest, GoalDirectionSavesWorkOnCityGrids) {
  GridCityOptions copts;
  copts.rows = 30;
  copts.cols = 30;
  copts.seed = 77;
  auto g = MakeGridCity(copts);
  ASSERT_TRUE(g.ok());
  auto grid = GridIndex::Build(&*g, {.cell_size_meters = 300.0});
  ASSERT_TRUE(grid.ok());
  AStarEngine astar(&*g, &*grid);
  DijkstraEngine dijkstra(&*g);

  std::size_t astar_settled = 0;
  std::size_t dijkstra_settled = 0;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto s = static_cast<VertexId>(rng.UniformIndex(g->num_vertices()));
    const auto t = static_cast<VertexId>(rng.UniformIndex(g->num_vertices()));
    ASSERT_NEAR(astar.PointToPoint(s, t), dijkstra.PointToPoint(s, t), 1e-9);
    astar_settled += astar.last_settled_count();
    dijkstra_settled += dijkstra.last_settled_count();
  }
  // The admissible heuristic must cut the average settled set noticeably.
  EXPECT_LT(astar_settled, dijkstra_settled * 3 / 4);
}

}  // namespace
}  // namespace ptar
