// Shared scenario construction for the engine-level suites: a grid city
// with its spatial index, plus a seeded request stream. Keeps the world
// parameters the suites care about (size, seeds, constraint tightness) in
// one place so the engine, fuzz, and integration tests stay comparable.

#ifndef PTAR_TESTS_SCENARIO_BUILDER_H_
#define PTAR_TESTS_SCENARIO_BUILDER_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "graph/generators.h"
#include "grid/grid_index.h"
#include "kinetic/request.h"
#include "sim/workload.h"

namespace ptar::testing {

/// Both parts live on the heap: the grid stores a pointer into the graph,
/// so the pair must stay address-stable under moves.
struct GridWorld {
  std::unique_ptr<RoadNetwork> graph;
  std::unique_ptr<GridIndex> grid;
};

struct GridWorldOptions {
  int rows = 12;
  int cols = 12;
  std::uint64_t seed = 3;
  double cell_size_meters = 300.0;
};

/// Perturbed grid city plus its grid index.
inline GridWorld MakeGridWorld(const GridWorldOptions& options = {}) {
  GridWorld w;
  GridCityOptions copts;
  copts.rows = options.rows;
  copts.cols = options.cols;
  copts.seed = options.seed;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  w.graph = std::make_unique<RoadNetwork>(std::move(g).value());
  auto grid = GridIndex::Build(
      w.graph.get(), {.cell_size_meters = options.cell_size_meters});
  PTAR_CHECK(grid.ok());
  w.grid = std::make_unique<GridIndex>(std::move(grid).value());
  return w;
}

struct RequestStreamOptions {
  std::size_t num_requests = 30;
  double duration_seconds = 600.0;
  double epsilon = 0.5;
  double waiting_minutes = 3.0;
  double peak_sharpness = 0.0;
  std::uint64_t seed = 8;
};

/// Seeded request stream over the world's graph (ids 0..n-1, sorted by
/// submit time).
inline std::vector<Request> MakeRequestStream(
    const RoadNetwork& graph, const RequestStreamOptions& options = {}) {
  WorkloadOptions wopts;
  wopts.num_requests = options.num_requests;
  wopts.duration_seconds = options.duration_seconds;
  wopts.epsilon = options.epsilon;
  wopts.waiting_minutes = options.waiting_minutes;
  wopts.peak_sharpness = options.peak_sharpness;
  wopts.seed = options.seed;
  auto reqs = GenerateWorkload(graph, wopts);
  PTAR_CHECK(reqs.ok());
  return std::move(reqs).value();
}

}  // namespace ptar::testing

#endif  // PTAR_TESTS_SCENARIO_BUILDER_H_
