// Tests for the classic single-option dispatcher used as a comparison
// point in examples.

#include "rideshare/classic_dispatcher.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "graph/generators.h"
#include "rideshare/baseline_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace ptar {
namespace {

struct World {
  RoadNetwork graph;
  std::unique_ptr<GridIndex> grid;
};

World MakeWorld() {
  World w;
  GridCityOptions copts;
  copts.rows = 12;
  copts.cols = 12;
  copts.seed = 6;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  w.graph = std::move(g).value();
  auto grid = GridIndex::Build(&w.graph, {.cell_size_meters = 300.0});
  PTAR_CHECK(grid.ok());
  w.grid = std::make_unique<GridIndex>(std::move(grid).value());
  return w;
}

TEST(ClassicDispatcherTest, ReturnsAtMostOneOption) {
  World w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 12;
  Engine engine(&w.graph, w.grid.get(), opts);
  ClassicDispatcher classic;
  std::vector<Matcher*> matchers = {&classic};

  WorkloadOptions wopts;
  wopts.num_requests = 20;
  wopts.seed = 4;
  auto requests = GenerateWorkload(w.graph, wopts);
  ASSERT_TRUE(requests.ok());
  for (const Request& r : *requests) {
    const auto outcome = engine.ProcessRequest(r, matchers);
    EXPECT_LE(outcome.results[0].options.size(), 1u);
    EXPECT_EQ(outcome.results[0].stats.verified_vehicles, 12u);
  }
}

TEST(ClassicDispatcherTest, ChoiceIsCheapestExactOption) {
  // Under the paper's price model, minimal travel increase <=> minimal
  // price, so the classic choice must match the cheapest option of the
  // exact skyline.
  World w = MakeWorld();
  EngineOptions opts;
  opts.num_vehicles = 15;
  opts.seed = 2;
  Engine engine(&w.graph, w.grid.get(), opts);
  ClassicDispatcher classic;
  BaselineMatcher exact;
  // Evaluate both on identical state; commit from the classic result.
  std::vector<Matcher*> matchers = {&classic, &exact};

  WorkloadOptions wopts;
  wopts.num_requests = 25;
  wopts.seed = 9;
  auto requests = GenerateWorkload(w.graph, wopts);
  ASSERT_TRUE(requests.ok());
  for (const Request& r : *requests) {
    const auto outcome = engine.ProcessRequest(r, matchers);
    if (outcome.results[0].options.empty()) continue;
    const Option& chosen = outcome.results[0].options[0];
    double min_price = std::numeric_limits<double>::infinity();
    for (const Option& o : outcome.results[1].options) {
      min_price = std::min(min_price, o.price);
    }
    EXPECT_NEAR(chosen.price, min_price, 1e-6) << "request " << r.id;
  }
}

TEST(ClassicDispatcherTest, NameIsStable) {
  EXPECT_EQ(ClassicDispatcher().name(), "CLASSIC");
}

}  // namespace
}  // namespace ptar
