// Tests for the option dominance relation and the maintained skyline.

#include "rideshare/skyline.h"

#include <gtest/gtest.h>

#include <vector>

#include "check/reference_matcher.h"
#include "common/random.h"

namespace ptar {
namespace {

Option Opt(VehicleId v, Distance pickup, double price) {
  return Option{v, pickup, price};
}

TEST(DominanceTest, StrictDominance) {
  EXPECT_TRUE(Dominates(Opt(1, 5, 10), Opt(2, 6, 11)));
  EXPECT_TRUE(Dominates(Opt(1, 5, 10), Opt(2, 5, 11)));  // equal time
  EXPECT_TRUE(Dominates(Opt(1, 5, 10), Opt(2, 6, 10)));  // equal price
}

TEST(DominanceTest, EqualPairsDoNotDominate) {
  EXPECT_FALSE(Dominates(Opt(1, 5, 10), Opt(2, 5, 10)));
  EXPECT_FALSE(Dominates(Opt(2, 5, 10), Opt(1, 5, 10)));
}

TEST(DominanceTest, IncomparableOptions) {
  EXPECT_FALSE(Dominates(Opt(1, 5, 12), Opt(2, 6, 10)));
  EXPECT_FALSE(Dominates(Opt(2, 6, 10), Opt(1, 5, 12)));
}

TEST(SkylineTest, InsertKeepsNonDominated) {
  SkylineSet s;
  EXPECT_TRUE(s.Insert(Opt(1, 5, 10)));
  EXPECT_TRUE(s.Insert(Opt(2, 3, 20)));  // incomparable
  EXPECT_EQ(s.size(), 2u);
}

TEST(SkylineTest, InsertRejectsDominated) {
  SkylineSet s;
  s.Insert(Opt(1, 5, 10));
  EXPECT_FALSE(s.Insert(Opt(2, 6, 11)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(SkylineTest, InsertEvictsDominated) {
  SkylineSet s;
  s.Insert(Opt(1, 5, 10));
  s.Insert(Opt(2, 3, 20));
  EXPECT_TRUE(s.Insert(Opt(3, 3, 9)));  // dominates both
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.options()[0].vehicle, 3u);
}

TEST(SkylineTest, KeepsEqualDuplicates) {
  SkylineSet s;
  s.Insert(Opt(1, 5, 10));
  EXPECT_TRUE(s.Insert(Opt(2, 5, 10)));  // equal in both dims: kept
  EXPECT_EQ(s.size(), 2u);
}

TEST(SkylineTest, RemoveDominatedBy) {
  SkylineSet s;
  s.Insert(Opt(1, 5, 10));
  s.Insert(Opt(2, 3, 20));
  s.RemoveDominatedBy(Opt(9, 4, 9));  // dominates (5, 10), not (3, 20)
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.options()[0].vehicle, 2u);
}

TEST(SkylineTest, SortedOutput) {
  SkylineSet s;
  s.Insert(Opt(3, 9, 1));
  s.Insert(Opt(1, 1, 9));
  s.Insert(Opt(2, 5, 5));
  const std::vector<Option> sorted = s.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].vehicle, 1u);
  EXPECT_EQ(sorted[1].vehicle, 2u);
  EXPECT_EQ(sorted[2].vehicle, 3u);
}

TEST(SkylineTest, ClearEmpties) {
  SkylineSet s;
  s.Insert(Opt(1, 1, 1));
  s.Clear();
  EXPECT_TRUE(s.empty());
}

// Property: after any insertion sequence, no member of the skyline dominates
// another, and every rejected/evicted option is dominated by some member.
TEST(SkylineTest, InvariantUnderRandomInsertions) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    SkylineSet s;
    std::vector<Option> all;
    for (int i = 0; i < 200; ++i) {
      const Option o = Opt(static_cast<VehicleId>(i),
                           rng.UniformReal(0, 100),
                           rng.UniformReal(0, 100));
      all.push_back(o);
      s.Insert(o);
    }
    const auto members = s.options();
    for (const Option& a : members) {
      for (const Option& b : members) {
        EXPECT_FALSE(Dominates(a, b));
      }
    }
    for (const Option& o : all) {
      bool in_skyline = false;
      for (const Option& m : members) {
        if (m == o) in_skyline = true;
      }
      if (!in_skyline) {
        bool dominated = false;
        for (const Option& m : members) {
          if (Dominates(m, o)) dominated = true;
        }
        // Exact duplicates of a member are the one non-dominated drop.
        bool duplicate = false;
        for (const Option& m : members) {
          if (m == o) duplicate = true;
        }
        EXPECT_TRUE(dominated || duplicate)
            << "dropped option is not dominated";
      }
    }
  }
}

// Options on a small integer lattice so exact ties, duplicate values, and
// duplicate (vehicle, time, price) triples all actually occur.
std::vector<Option> LatticeOptions(Rng& rng, int count) {
  std::vector<Option> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    out.push_back(Opt(static_cast<VehicleId>(rng.UniformIndex(4)),
                      static_cast<Distance>(rng.UniformIndex(6)),
                      static_cast<double>(rng.UniformIndex(6))));
  }
  return out;
}

void ShuffleOptions(Rng& rng, std::vector<Option>& options) {
  for (std::size_t i = options.size(); i > 1; --i) {
    std::swap(options[i - 1], options[rng.UniformIndex(i)]);
  }
}

TEST(DominanceTest, IrreflexiveOnRandomOptions) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const Option o = Opt(static_cast<VehicleId>(i),
                         rng.UniformReal(0, 100), rng.UniformReal(0, 100));
    EXPECT_FALSE(Dominates(o, o));
  }
}

TEST(DominanceTest, AntisymmetricOnRandomPairs) {
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    const Option a = Opt(1, static_cast<Distance>(rng.UniformIndex(5)),
                         static_cast<double>(rng.UniformIndex(5)));
    const Option b = Opt(2, static_cast<Distance>(rng.UniformIndex(5)),
                         static_cast<double>(rng.UniformIndex(5)));
    EXPECT_FALSE(Dominates(a, b) && Dominates(b, a))
        << "a=(" << a.pickup_dist << "," << a.price << ") b=("
        << b.pickup_dist << "," << b.price << ")";
  }
}

// Property: the skyline is a pure function of the option multiset — any
// insertion order yields the same sorted result.
TEST(SkylineTest, InsertionOrderDoesNotMatter) {
  Rng rng(13);
  for (int round = 0; round < 30; ++round) {
    std::vector<Option> pool = LatticeOptions(rng, 40);
    SkylineSet first;
    for (const Option& o : pool) first.Insert(o);
    const std::vector<Option> expected = first.Sorted();
    for (int shuffle = 0; shuffle < 5; ++shuffle) {
      ShuffleOptions(rng, pool);
      SkylineSet s;
      for (const Option& o : pool) s.Insert(o);
      EXPECT_EQ(s.Sorted(), expected) << "round " << round;
    }
  }
}

TEST(SkylineTest, ExactDuplicateTriplesAreDeduped) {
  SkylineSet s;
  EXPECT_TRUE(s.Insert(Opt(1, 5, 10)));
  EXPECT_FALSE(s.Insert(Opt(1, 5, 10)));  // same vehicle, time, and price
  EXPECT_EQ(s.size(), 1u);

  // Randomized: no two identical triples survive any insertion sequence.
  Rng rng(14);
  for (int round = 0; round < 20; ++round) {
    SkylineSet set;
    for (const Option& o : LatticeOptions(rng, 60)) set.Insert(o);
    const std::vector<Option> sorted = set.Sorted();
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      EXPECT_FALSE(sorted[i - 1] == sorted[i]) << "duplicate survived";
    }
  }
}

// The maintained skyline agrees with the brute-force quadratic filter used
// by the differential reference matcher.
TEST(SkylineTest, MatchesNaiveReferenceSkyline) {
  Rng rng(15);
  for (int round = 0; round < 30; ++round) {
    const std::vector<Option> pool = LatticeOptions(rng, 50);
    SkylineSet s;
    for (const Option& o : pool) s.Insert(o);
    EXPECT_EQ(s.Sorted(), check::NaiveSkyline(pool)) << "round " << round;
  }
}

}  // namespace
}  // namespace ptar
