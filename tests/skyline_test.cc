// Tests for the option dominance relation and the maintained skyline.

#include "rideshare/skyline.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ptar {
namespace {

Option Opt(VehicleId v, Distance pickup, double price) {
  return Option{v, pickup, price};
}

TEST(DominanceTest, StrictDominance) {
  EXPECT_TRUE(Dominates(Opt(1, 5, 10), Opt(2, 6, 11)));
  EXPECT_TRUE(Dominates(Opt(1, 5, 10), Opt(2, 5, 11)));  // equal time
  EXPECT_TRUE(Dominates(Opt(1, 5, 10), Opt(2, 6, 10)));  // equal price
}

TEST(DominanceTest, EqualPairsDoNotDominate) {
  EXPECT_FALSE(Dominates(Opt(1, 5, 10), Opt(2, 5, 10)));
  EXPECT_FALSE(Dominates(Opt(2, 5, 10), Opt(1, 5, 10)));
}

TEST(DominanceTest, IncomparableOptions) {
  EXPECT_FALSE(Dominates(Opt(1, 5, 12), Opt(2, 6, 10)));
  EXPECT_FALSE(Dominates(Opt(2, 6, 10), Opt(1, 5, 12)));
}

TEST(SkylineTest, InsertKeepsNonDominated) {
  SkylineSet s;
  EXPECT_TRUE(s.Insert(Opt(1, 5, 10)));
  EXPECT_TRUE(s.Insert(Opt(2, 3, 20)));  // incomparable
  EXPECT_EQ(s.size(), 2u);
}

TEST(SkylineTest, InsertRejectsDominated) {
  SkylineSet s;
  s.Insert(Opt(1, 5, 10));
  EXPECT_FALSE(s.Insert(Opt(2, 6, 11)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(SkylineTest, InsertEvictsDominated) {
  SkylineSet s;
  s.Insert(Opt(1, 5, 10));
  s.Insert(Opt(2, 3, 20));
  EXPECT_TRUE(s.Insert(Opt(3, 3, 9)));  // dominates both
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.options()[0].vehicle, 3u);
}

TEST(SkylineTest, KeepsEqualDuplicates) {
  SkylineSet s;
  s.Insert(Opt(1, 5, 10));
  EXPECT_TRUE(s.Insert(Opt(2, 5, 10)));  // equal in both dims: kept
  EXPECT_EQ(s.size(), 2u);
}

TEST(SkylineTest, RemoveDominatedBy) {
  SkylineSet s;
  s.Insert(Opt(1, 5, 10));
  s.Insert(Opt(2, 3, 20));
  s.RemoveDominatedBy(Opt(9, 4, 9));  // dominates (5, 10), not (3, 20)
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.options()[0].vehicle, 2u);
}

TEST(SkylineTest, SortedOutput) {
  SkylineSet s;
  s.Insert(Opt(3, 9, 1));
  s.Insert(Opt(1, 1, 9));
  s.Insert(Opt(2, 5, 5));
  const std::vector<Option> sorted = s.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].vehicle, 1u);
  EXPECT_EQ(sorted[1].vehicle, 2u);
  EXPECT_EQ(sorted[2].vehicle, 3u);
}

TEST(SkylineTest, ClearEmpties) {
  SkylineSet s;
  s.Insert(Opt(1, 1, 1));
  s.Clear();
  EXPECT_TRUE(s.empty());
}

// Property: after any insertion sequence, no member of the skyline dominates
// another, and every rejected/evicted option is dominated by some member.
TEST(SkylineTest, InvariantUnderRandomInsertions) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    SkylineSet s;
    std::vector<Option> all;
    for (int i = 0; i < 200; ++i) {
      const Option o = Opt(static_cast<VehicleId>(i),
                           rng.UniformReal(0, 100),
                           rng.UniformReal(0, 100));
      all.push_back(o);
      s.Insert(o);
    }
    const auto members = s.options();
    for (const Option& a : members) {
      for (const Option& b : members) {
        EXPECT_FALSE(Dominates(a, b));
      }
    }
    for (const Option& o : all) {
      bool in_skyline = false;
      for (const Option& m : members) {
        if (m == o) in_skyline = true;
      }
      if (!in_skyline) {
        bool dominated = false;
        for (const Option& m : members) {
          if (Dominates(m, o)) dominated = true;
        }
        EXPECT_TRUE(dominated) << "dropped option is not dominated";
      }
    }
  }
}

}  // namespace
}  // namespace ptar
