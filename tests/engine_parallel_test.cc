// Request-parallel pipeline suite (DESIGN.md §12): commit parity between
// thread counts on many seeds (the `--serial_check` contract as a unit
// test), equivalence of the wave_size=1 pipeline with the classic serial
// engine, deterministic id-ordered conflict arbitration when two requests
// want the same vehicle, overload-ladder accounting under waved admission,
// mid-run fleet audits against the quiesce lock, and the schema-v3
// pipeline report block. Registered under the compound
// `engine-parallel-tsan` label so both `ctest -L engine-parallel` and the
// sanitize config's `ctest -L tsan` select it; everything except the
// audit test is single-seeded deterministic work (no wall-clock
// deadlines), and the audit test is the one that genuinely races an
// auditor thread against the pipeline for tsan to chew on.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/report.h"
#include "rideshare/ssa_matcher.h"
#include "scenario_builder.h"
#include "sim/engine.h"
#include "sim/run_report.h"

namespace ptar {
namespace {

using testing::GridWorld;
using testing::MakeGridWorld;
using testing::MakeRequestStream;

MatcherFactory SsaFactory() {
  // Fraction 1.0: verify every candidate, so skylines (and hence conflicts)
  // are as dense as the tiny worlds allow.
  return [] { return std::make_unique<SsaMatcher>(1.0); };
}

struct PipeRun {
  RunStats stats;
  std::vector<CommitRecord> log;
};

PipeRun RunPipe(const GridWorld& world, std::span<const Request> requests,
                int threads, int wave_size,
                const std::function<void(EngineOptions&)>& tweak = {}) {
  EngineOptions eopts;
  eopts.num_vehicles = 8;
  eopts.seed = 7;
  eopts.engine_threads = threads;
  eopts.wave_size = wave_size;
  eopts.audit_after_commit = false;  // Keep runs comparable across builds.
  if (tweak) tweak(eopts);
  Engine engine(world.graph.get(), world.grid.get(), eopts);
  PipeRun run;
  run.stats = engine.RunPipelined(requests, SsaFactory(), &run.log);
  return run;
}

// --- The serial_check contract, as a many-seed unit test. ---

TEST(EngineParallelTest, CommitParityAcrossThreadCountsOn50Seeds) {
  const GridWorld world = MakeGridWorld();
  std::uint64_t total_conflicts = 0;
  for (int seed = 0; seed < 50; ++seed) {
    SCOPED_TRACE("stream seed " + std::to_string(seed));
    // Short duration: a wave of 6 holds near-simultaneous requests, so
    // the same few vehicles are contested and conflicts actually happen.
    const std::vector<Request> requests =
        MakeRequestStream(*world.graph, {.num_requests = 12,
                                         .duration_seconds = 120.0,
                                         .seed = 100u + seed});
    // wave_size pinned, never auto: auto resolves to 2 * engine_threads
    // and the determinism contract only holds for a fixed wave size.
    const PipeRun serial = RunPipe(world, requests, /*threads=*/1,
                                   /*wave_size=*/6);
    ASSERT_EQ(serial.log.size(), requests.size());
    total_conflicts += serial.stats.conflicts;
    for (const int threads : {4, 8}) {
      SCOPED_TRACE(std::to_string(threads) + " threads");
      const PipeRun parallel = RunPipe(world, requests, threads, 6);
      // CommitRecord operator== is exact (==, not NEAR): served flag,
      // vehicle, pickup distance, and price must all be bit-identical.
      EXPECT_EQ(parallel.log, serial.log);
      EXPECT_EQ(parallel.stats.served, serial.stats.served);
      EXPECT_EQ(parallel.stats.unserved, serial.stats.unserved);
      EXPECT_EQ(parallel.stats.waves, serial.stats.waves);
      EXPECT_EQ(parallel.stats.conflicts, serial.stats.conflicts);
      EXPECT_EQ(parallel.stats.rematches, serial.stats.rematches);
      EXPECT_EQ(parallel.stats.serial_rematches,
                serial.stats.serial_rematches);
    }
  }
  // The sweep must actually exercise arbitration somewhere, or the parity
  // comparison above proves nothing about conflicts.
  EXPECT_GT(total_conflicts, 0u);
}

TEST(EngineParallelTest, MatcherAggregatesIdenticalAcrossThreadCounts) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 24, .duration_seconds = 200.0,
                     .seed = 31});
  const PipeRun serial = RunPipe(world, requests, 1, 8);
  const PipeRun parallel = RunPipe(world, requests, 4, 8);
  ASSERT_EQ(serial.stats.matchers.size(), 1u);
  ASSERT_EQ(parallel.stats.matchers.size(), 1u);
  const MatcherAggregate& a = serial.stats.matchers[0];
  const MatcherAggregate& b = parallel.stats.matchers[0];
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.options_sum, b.options_sum);
  // Matchers ClearCache()/ResetStats() per request, so work counters are a
  // per-request property — worker assignment cannot change them.
  EXPECT_EQ(a.totals.compdists, b.totals.compdists);
  EXPECT_EQ(a.totals.verified_vehicles, b.totals.verified_vehicles);
  EXPECT_EQ(a.totals.scanned_cells, b.totals.scanned_cells);
  EXPECT_EQ(a.totals.pruned_cells, b.totals.pruned_cells);
  EXPECT_EQ(a.totals.pruned_vehicles, b.totals.pruned_vehicles);
  EXPECT_GT(a.totals.compdists, 0u);
}

// --- wave_size=1 degenerates to the classic serial engine. ---

TEST(EngineParallelTest, WaveSizeOneMatchesClassicSerialEngine) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 20, .seed = 9});

  // Classic per-request loop, same matcher configuration.
  EngineOptions copts;
  copts.num_vehicles = 8;
  copts.seed = 7;
  copts.audit_after_commit = false;
  Engine classic(world.graph.get(), world.grid.get(), copts);
  SsaMatcher ssa(1.0);
  std::vector<Matcher*> matchers = {&ssa};
  std::vector<CommitRecord> expected;
  for (const Request& request : requests) {
    const Engine::RequestOutcome outcome =
        classic.ProcessRequest(request, matchers);
    CommitRecord record;
    record.request = request.id;
    if (outcome.served) {
      record.served = true;
      record.vehicle = outcome.chosen.vehicle;
      record.pickup_dist = outcome.chosen.pickup_dist;
      record.price = outcome.chosen.price;
    }
    expected.push_back(record);
  }

  // One request per wave: admission, advance, snapshot, match, commit —
  // the same world evolution as ProcessRequest, so commits are identical
  // whatever the worker count.
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const PipeRun run = RunPipe(world, requests, threads, /*wave_size=*/1);
    EXPECT_EQ(run.log, expected);
    EXPECT_EQ(run.stats.waves, requests.size());
    EXPECT_EQ(run.stats.conflicts, 0u);  // A 1-wave cannot self-conflict.
  }
}

// --- Forced conflict: two requests, one vehicle. ---

class ConflictScenarioTest : public ::testing::Test {
 protected:
  ConflictScenarioTest() : world_(MakeGridWorld()) {
    requests_ = MakeRequestStream(*world_.graph, {.num_requests = 2,
                                                  .seed = 17});
    for (Request& r : requests_) {
      r.submit_time = 0.0;  // Same instant: both land in one wave.
      r.epsilon = 1.0;
      r.max_wait_dist = 1e7;  // Generous: the single vehicle matches both.
    }
  }

  std::function<void(EngineOptions&)> Tweak(int max_rematch_rounds = 3) {
    return [this, max_rematch_rounds](EngineOptions& eopts) {
      eopts.start_vertices = {requests_[0].start};  // One vehicle, id 0.
      eopts.max_rematch_rounds = max_rematch_rounds;
    };
  }

  GridWorld world_;
  std::vector<Request> requests_;
};

TEST_F(ConflictScenarioTest, ArbitrationIsDeterministicAndIdOrdered) {
  const PipeRun ref =
      RunPipe(world_, requests_, /*threads=*/1, /*wave_size=*/2, Tweak());
  ASSERT_EQ(ref.log.size(), 2u);
  // The lower id wins the only vehicle; the higher id loses round 0.
  ASSERT_TRUE(ref.log[0].served);
  EXPECT_EQ(ref.log[0].request, requests_[0].id);
  EXPECT_EQ(ref.log[0].vehicle, 0u);
  EXPECT_EQ(ref.stats.conflicts, 1u);
  EXPECT_EQ(ref.stats.rematches, 1u);
  EXPECT_EQ(ref.stats.serial_rematches, 0u);
  for (const int threads : {2, 4}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const PipeRun run = RunPipe(world_, requests_, threads, 2, Tweak());
    EXPECT_EQ(run.log, ref.log);
    EXPECT_EQ(run.stats.conflicts, 1u);
    EXPECT_EQ(run.stats.rematches, 1u);
  }
}

TEST_F(ConflictScenarioTest, ExhaustedRematchBoundFallsBackToSerialTail) {
  const PipeRun bounded =
      RunPipe(world_, requests_, /*threads=*/2, /*wave_size=*/2, Tweak());
  // max_rematch_rounds=0: the loser goes straight to the serial tail. The
  // tail matches against the same post-commit state a round-1 re-match
  // would see, so the final dispositions are identical.
  const PipeRun tail = RunPipe(world_, requests_, /*threads=*/2,
                               /*wave_size=*/2, Tweak(0));
  EXPECT_EQ(tail.stats.conflicts, 1u);
  EXPECT_EQ(tail.stats.rematches, 0u);
  EXPECT_EQ(tail.stats.serial_rematches, 1u);
  EXPECT_EQ(tail.log, bounded.log);
}

// --- Overload ladder under waved admission. ---

TEST(EngineParallelTest, LadderOccupancyTotalsEqualProcessedRequests) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 40, .seed = 4});
  const auto tweak = [](EngineOptions& eopts) {
    eopts.num_vehicles = 12;
    eopts.overload.request_budget = 1;  // Every matched request exhausts.
    eopts.overload.degrade_after = 1;
    eopts.overload.recover_after = 2;
  };

  const PipeRun serial = RunPipe(world, requests, 1, /*wave_size=*/4, tweak);
  std::uint64_t ladder_total = 0;
  for (const std::uint64_t n : serial.stats.ladder_requests) {
    ladder_total += n;
  }
  // Every request occupies exactly one ladder slot, and every request is
  // either served or unserved — waved admission loses none.
  EXPECT_EQ(ladder_total, requests.size());
  EXPECT_EQ(serial.stats.served + serial.stats.unserved, requests.size());
  EXPECT_EQ(serial.log.size(), requests.size());
  EXPECT_EQ(serial.stats.shed_requests,
            serial.stats.ladder_requests[static_cast<int>(
                DegradeLevel::kShed)]);
  // The aggregate counts only full-level requests (degraded ones ran the
  // engine-owned fallbacks, not the configured matcher).
  EXPECT_EQ(serial.stats.matchers[0].requests,
            serial.stats.ladder_requests[static_cast<int>(
                DegradeLevel::kFull)]);
  // Non-vacuous: the ladder actually walked. (Admission levels move only
  // between observations, which happen wave-wise in the commit pass, so a
  // whole wave of bad requests can step Full -> Shed without any request
  // being *admitted* at kSsa; assert the intermediate levels jointly.)
  EXPECT_GT(serial.stats.shed_requests, 0u);
  EXPECT_GT(
      serial.stats.ladder_requests[static_cast<int>(DegradeLevel::kSsa)] +
          serial.stats
              .ladder_requests[static_cast<int>(DegradeLevel::kGridScan)],
      0u);
  EXPECT_GT(serial.stats.partial_skylines, 0u);

  // Work-count signals only, so the ladder walk is thread-count-invariant.
  const PipeRun parallel = RunPipe(world, requests, 4, 4, tweak);
  EXPECT_EQ(parallel.log, serial.log);
  EXPECT_EQ(parallel.stats.ladder_requests, serial.stats.ladder_requests);
  EXPECT_EQ(parallel.stats.shed_requests, serial.stats.shed_requests);
  EXPECT_EQ(parallel.stats.partial_skylines,
            serial.stats.partial_skylines);
}

// --- Mid-run audits take the quiesce lock. ---

TEST(EngineParallelTest, AuditMidRunNeitherDeadlocksNorSeesTornState) {
  const GridWorld world = MakeGridWorld();
  const std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 120, .seed = 6});
  EngineOptions eopts;
  eopts.num_vehicles = 10;
  eopts.seed = 7;
  eopts.engine_threads = 2;
  eopts.audit_after_commit = false;
  Engine engine(world.graph.get(), world.grid.get(), eopts);

  std::atomic<bool> done{false};
  std::thread runner([&engine, &requests, &done] {
    engine.RunPipelined(requests, SsaFactory());
    done.store(true, std::memory_order_release);
  });
  // Audit continuously while the pipeline runs: each call must block until
  // a wave boundary (the quiesced epoch) and then see a consistent fleet —
  // exact legs, valid branches, aggregates matching a fresh rebuild.
  std::uint64_t audits = 0;
  while (!done.load(std::memory_order_acquire)) {
    const AuditReport report = engine.AuditFleet();
    EXPECT_TRUE(report.ok()) << report.findings.front();
    ++audits;
  }
  runner.join();
  EXPECT_GE(audits, 1u);
  const AuditReport final_report = engine.AuditFleet();
  EXPECT_TRUE(final_report.ok());
  EXPECT_EQ(final_report.trees_checked, 10u);
}

// --- Schema-v3 pipeline report block. ---

TEST(PipelineReportTest, PipelineBlockRoundTripsThroughSummary) {
  obs::RunReport report;
  report.tool = "engine_parallel_test";
  report.waves = 11;
  report.conflicts = 4;
  report.rematches = 3;
  report.serial_rematches = 2;
  // A metric counter sharing the field's suffix must not shadow the block:
  // the parser matches keys with their opening quote.
  report.metrics.AddCounter("pipeline/conflicts", 999);

  const auto summary = obs::ParseReportSummary(obs::RunReportToJson(report));
  ASSERT_TRUE(summary.ok()) << summary.status().message();
  EXPECT_EQ(summary->schema_version, obs::kReportSchemaVersion);
  EXPECT_EQ(summary->waves, 11u);
  EXPECT_EQ(summary->conflicts, 4u);
  EXPECT_EQ(summary->rematches, 3u);
  EXPECT_EQ(summary->serial_rematches, 2u);
}

TEST(PipelineReportTest, V2ReportParsesWithZeroPipeline) {
  // Golden v2 fragment (pre-pipeline schema): accepted, robustness block
  // parsed, pipeline block defaulted to zero.
  const std::string v2 =
      "{\n"
      "  \"schema_version\": 2,\n"
      "  \"tool\": \"ptar_cli simulate\",\n"
      "  \"served\": 40,\n"
      "  \"unserved\": 2,\n"
      "  \"shared\": 15,\n"
      "  \"robustness\": {\"shed_requests\": 1, \"partial_skylines\": 2,\n"
      "                   \"ladder_requests\": [30, 8, 3, 1]},\n"
      "  \"matchers\": [],\n"
      "  \"metrics\": {\"counters\": {}, \"histograms\": {}}\n"
      "}\n";
  const auto summary = obs::ParseReportSummary(v2);
  ASSERT_TRUE(summary.ok()) << summary.status().message();
  EXPECT_EQ(summary->schema_version, 2);
  EXPECT_EQ(summary->served, 40u);
  EXPECT_EQ(summary->shed_requests, 1u);
  EXPECT_EQ(summary->ladder_requests,
            (std::array<std::uint64_t, 4>{30, 8, 3, 1}));
  EXPECT_EQ(summary->waves, 0u);
  EXPECT_EQ(summary->conflicts, 0u);
  EXPECT_EQ(summary->rematches, 0u);
  EXPECT_EQ(summary->serial_rematches, 0u);
}

TEST(PipelineReportTest, RunPipelinedFeedsPipelineBlock) {
  const GridWorld world = MakeGridWorld();
  std::vector<Request> requests = MakeRequestStream(
      *world.graph, {.num_requests = 2, .seed = 17});
  for (Request& r : requests) {
    r.submit_time = 0.0;
    r.epsilon = 1.0;
    r.max_wait_dist = 1e7;
  }
  EngineOptions eopts;
  eopts.start_vertices = {requests[0].start};
  eopts.engine_threads = 2;
  eopts.wave_size = 2;
  eopts.audit_after_commit = false;
  Engine engine(world.graph.get(), world.grid.get(), eopts);
  const RunStats stats = engine.RunPipelined(requests, SsaFactory());

  const obs::RunReport report =
      BuildRunReport(stats, engine.metrics(), "engine_parallel_test");
  const auto summary = obs::ParseReportSummary(obs::RunReportToJson(report));
  ASSERT_TRUE(summary.ok()) << summary.status().message();
  EXPECT_EQ(summary->waves, 1u);
  EXPECT_EQ(summary->conflicts, 1u);
  EXPECT_EQ(summary->rematches, 1u);
  EXPECT_EQ(summary->serial_rematches, 0u);
  // The pipeline/* counters mirror the report block.
  EXPECT_EQ(engine.metrics().Counter("pipeline/conflicts"), 1u);
  EXPECT_EQ(engine.metrics().Counter("pipeline/waves"), 1u);
}

}  // namespace
}  // namespace ptar
