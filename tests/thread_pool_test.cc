// Tests for the fixed-size worker pool backing shadow-matcher evaluation.

#include "common/thread_pool.h"

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ptar {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, FuturePropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives the throwing task.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.Submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();
  }  // join happens here; no task may be lost or double-run
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, ManySmallTasksFromManySubmitters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  // Tasks that themselves submit more work must not deadlock as long as
  // nobody blocks a worker on a future of a queued task; here the inner
  // submissions are fire-and-forget via shared futures collected outside.
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 256; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 256);
}

}  // namespace
}  // namespace ptar
